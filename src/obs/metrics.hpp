// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// Every metric is registered under a `module.metric` name, optionally
// suffixed with `{label=value,...}` (DESIGN.md §10 has the naming
// scheme). Handles returned by the registry are stable for the
// registry's lifetime, so hot paths look a metric up once and then just
// bump the handle. All values are simulation-derived quantities; the
// registry never reads the host clock, so a snapshot taken at the same
// sim time in two same-seed runs is byte-identical (the determinism
// tests in tests/obs_test.cpp assert exactly this).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "sim/time.hpp"
#include "stats/histogram.hpp"

namespace tmg::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void add(std::uint64_t n) { value_ += n; }
  void inc() { ++value_; }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value (queue depths, table sizes).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const { return value_; }
  void reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Find-or-create. The returned reference stays valid for the
  /// registry's lifetime. Names must satisfy valid_name(); asking for an
  /// existing histogram with different bucket parameters is an error.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  stats::Histogram& histogram(const std::string& name, double lo, double hi,
                              std::size_t bins);

  /// `module.metric` in [a-z0-9_.], at least one dot, with an optional
  /// trailing `{label=value,...}` selector.
  [[nodiscard]] static bool valid_name(const std::string& name);

  [[nodiscard]] std::size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Byte-stable JSON snapshot: keys sorted (std::map order), fixed
  /// printf formats, trailing newline. Safe to diff across runs.
  [[nodiscard]] std::string to_json(sim::SimTime at) const;

  /// Byte-stable CSV snapshot: `type,name,field,value` rows after an
  /// `# at_ns=<t>` header comment.
  [[nodiscard]] std::string to_csv(sim::SimTime at) const;

  /// Zero every counter/gauge and empty every histogram (bucket layouts
  /// are kept). Used by the trial-reset path so a reused registry never
  /// leaks one trial's totals into the next.
  void reset();

 private:
  struct HistEntry {
    double lo = 0.0;
    double hi = 1.0;
    std::size_t bins = 1;
    std::unique_ptr<stats::Histogram> hist;
  };

  // std::map: deterministic export order by construction.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, HistEntry> histograms_;
};

}  // namespace tmg::obs
