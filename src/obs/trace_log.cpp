#include "obs/trace_log.hpp"

#include <cstdio>

namespace tmg::obs {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_args(
    std::string& out,
    const std::vector<std::pair<std::string, std::string>>& args) {
  out += "\"args\":{";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i != 0) out += ",";
    out += "\"" + json_escape(args[i].first) + "\":\"" +
           json_escape(args[i].second) + "\"";
  }
  out += "}";
}

}  // namespace

TraceLog::TraceLog(std::size_t max_records) : max_records_{max_records} {}

TraceLog::Record* TraceLog::find(SpanId id) {
  if (id == 0 || id > records_.size()) return nullptr;
  return &records_[id - 1];
}

SpanId TraceLog::begin_span(sim::SimTime at, std::string category,
                            std::string name, SpanId parent) {
  ++name_counts_[category + '\x1f' + name];
  ++category_counts_[category];
  if (records_.size() >= max_records_) {
    ++dropped_;
    return 0;
  }
  Record r;
  r.id = records_.size() + 1;
  r.parent = parent;
  r.is_span = true;
  r.begin = at;
  r.end = at;
  r.category = std::move(category);
  r.name = std::move(name);
  records_.push_back(std::move(r));
  return records_.back().id;
}

void TraceLog::end_span(SpanId id, sim::SimTime at) {
  Record* r = find(id);
  if (r == nullptr || !r->is_span || r->closed) return;
  r->end = at;
  r->closed = true;
}

void TraceLog::annotate(SpanId id, std::string key, std::string value) {
  Record* r = find(id);
  if (r == nullptr) return;
  r->args.emplace_back(std::move(key), std::move(value));
}

SpanId TraceLog::instant(sim::SimTime at, std::string category,
                         std::string name, std::string detail, SpanId parent) {
  ++name_counts_[category + '\x1f' + name];
  ++category_counts_[category];
  if (records_.size() >= max_records_) {
    ++dropped_;
    return 0;
  }
  Record r;
  r.id = records_.size() + 1;
  r.parent = parent;
  r.is_span = false;
  r.closed = true;
  r.begin = at;
  r.end = at;
  r.category = std::move(category);
  r.name = std::move(name);
  if (!detail.empty()) r.args.emplace_back("detail", std::move(detail));
  records_.push_back(std::move(r));
  return records_.back().id;
}

std::uint64_t TraceLog::count(const std::string& category,
                              const std::string& name) const {
  const auto it = name_counts_.find(category + '\x1f' + name);
  return it == name_counts_.end() ? 0 : it->second;
}

std::uint64_t TraceLog::category_total(const std::string& category) const {
  const auto it = category_counts_.find(category);
  return it == category_counts_.end() ? 0 : it->second;
}

std::string TraceLog::to_jsonl() const {
  std::string out;
  char buf[256];
  for (const Record& r : records_) {
    if (r.is_span) {
      std::snprintf(buf, sizeof buf,
                    "{\"ph\":\"span\",\"id\":%llu,\"parent\":%llu,",
                    static_cast<unsigned long long>(r.id),
                    static_cast<unsigned long long>(r.parent));
      out += buf;
      out += "\"cat\":\"" + json_escape(r.category) + "\",\"name\":\"" +
             json_escape(r.name) + "\",";
      if (r.closed) {
        std::snprintf(buf, sizeof buf, "\"t0_ns\":%lld,\"t1_ns\":%lld,",
                      static_cast<long long>(r.begin.count_nanos()),
                      static_cast<long long>(r.end.count_nanos()));
      } else {
        std::snprintf(buf, sizeof buf, "\"t0_ns\":%lld,\"t1_ns\":null,",
                      static_cast<long long>(r.begin.count_nanos()));
      }
      out += buf;
    } else {
      std::snprintf(buf, sizeof buf,
                    "{\"ph\":\"instant\",\"id\":%llu,\"parent\":%llu,",
                    static_cast<unsigned long long>(r.id),
                    static_cast<unsigned long long>(r.parent));
      out += buf;
      out += "\"cat\":\"" + json_escape(r.category) + "\",\"name\":\"" +
             json_escape(r.name) + "\",";
      std::snprintf(buf, sizeof buf, "\"t_ns\":%lld,",
                    static_cast<long long>(r.begin.count_nanos()));
      out += buf;
    }
    append_args(out, r.args);
    out += "}\n";
  }
  return out;
}

std::string TraceLog::to_chrome_trace() const {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  char buf[256];
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const Record& r = records_[i];
    out += "{\"pid\":1,\"tid\":1,\"cat\":\"" + json_escape(r.category) +
           "\",\"name\":\"" + json_escape(r.name) + "\",";
    if (r.is_span) {
      const double dur_us =
          r.closed ? (r.end - r.begin).to_micros_f() : 0.0;
      std::snprintf(buf, sizeof buf, "\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,",
                    static_cast<double>(r.begin.count_nanos()) / 1e3, dur_us);
    } else {
      std::snprintf(buf, sizeof buf, "\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,",
                    static_cast<double>(r.begin.count_nanos()) / 1e3);
    }
    out += buf;
    std::snprintf(buf, sizeof buf, "\"id\":%llu,",
                  static_cast<unsigned long long>(r.id));
    out += buf;
    // Parent ids ride in args: the Chrome viewer has no span-tree field,
    // but render_timeline.py and humans can still reconstruct the tree.
    std::vector<std::pair<std::string, std::string>> args = r.args;
    if (r.parent != 0) {
      args.emplace_back("parent", std::to_string(r.parent));
    }
    if (r.is_span && !r.closed) args.emplace_back("open", "true");
    append_args(out, args);
    out += i + 1 == records_.size() ? "}\n" : "},\n";
  }
  out += "]}\n";
  return out;
}

void TraceLog::clear() { records_.clear(); }

}  // namespace tmg::obs
