// Causal span tracing over simulated time.
//
// A TraceLog records two record shapes: *spans* (begin/end instants plus
// a parent id, so an LLDP probe round-trip or a hijack race window is
// reconstructable as a tree) and *instants* (point events — the
// trace::Tracer event kinds land here). All timestamps are sim-time
// nanoseconds, never the host clock, so the JSONL and Chrome trace
// exports are deterministic and diffable across runs (the lint has a
// hard wall-clock ban for src/obs/).
//
// Span lifetimes routinely cross simulator events (a probe span opens
// when the probe is sent and closes when the reply arrives), so the API
// is explicit begin/end by id rather than RAII. Ids are sequential
// per-log; 0 means "no span" and every mutator accepts it as a no-op,
// which is what makes the zero-cost-when-disabled call sites trivial.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace tmg::obs {

/// Trace record id; 0 is the null id (dropped record or "no parent").
using SpanId = std::uint64_t;

class TraceLog {
 public:
  /// Record cap: once reached, new records are dropped (counted in
  /// dropped()) but the cumulative per-name counters keep advancing, so
  /// count()/category_total() stay exact regardless of the cap.
  static constexpr std::size_t kDefaultMaxRecords = 1u << 20;

  explicit TraceLog(std::size_t max_records = kDefaultMaxRecords);

  struct Record {
    SpanId id = 0;
    SpanId parent = 0;
    bool is_span = false;
    bool closed = false;  // instants are born closed
    sim::SimTime begin;
    sim::SimTime end;
    std::string category;
    std::string name;
    std::vector<std::pair<std::string, std::string>> args;
  };

  /// Open a span at `at`. Returns 0 when the log is full (callers need
  /// no special casing: end_span/annotate on 0 are no-ops).
  SpanId begin_span(sim::SimTime at, std::string category, std::string name,
                    SpanId parent = 0);
  void end_span(SpanId id, sim::SimTime at);
  /// Attach a key/value argument to a span or instant.
  void annotate(SpanId id, std::string key, std::string value);

  /// Record a point event; `detail` becomes the "detail" argument when
  /// non-empty. Returns the record id (0 when dropped).
  SpanId instant(sim::SimTime at, std::string category, std::string name,
                 std::string detail = "", SpanId parent = 0);

  [[nodiscard]] const std::vector<Record>& records() const { return records_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// Cumulative records ever begun for (category, name) / for category —
  /// unaffected by the record cap or clear() (the Tracer adapter's
  /// count()/total_recorded() delegate here).
  [[nodiscard]] std::uint64_t count(const std::string& category,
                                    const std::string& name) const;
  [[nodiscard]] std::uint64_t category_total(const std::string& category) const;

  /// One JSON object per line, byte-stable. Spans:
  ///   {"ph":"span","id":N,"parent":P,"cat":"...","name":"...",
  ///    "t0_ns":T,"t1_ns":T|null,"args":{...}}
  /// Instants use "ph":"instant" with a single "t_ns".
  [[nodiscard]] std::string to_jsonl() const;

  /// Chrome trace-event format (chrome://tracing / Perfetto): complete
  /// ("X") events for spans, "i" events for instants, ts/dur in
  /// microseconds of sim time.
  [[nodiscard]] std::string to_chrome_trace() const;

  /// Drop the stored records (cumulative counters survive).
  void clear();

 private:
  Record* find(SpanId id);

  std::size_t max_records_;
  std::vector<Record> records_;  // id == index + 1
  std::uint64_t dropped_ = 0;
  std::map<std::string, std::uint64_t> name_counts_;  // "cat\x1fname"
  std::map<std::string, std::uint64_t> category_counts_;
};

}  // namespace tmg::obs
