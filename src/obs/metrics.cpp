#include "obs/metrics.hpp"

#include <cstdarg>
#include <cstdio>

#include "check/assert.hpp"

namespace tmg::obs {

namespace {

/// Escape a metric name for embedding in a JSON string. Names are
/// restricted by valid_name(), but the escaper keeps the exporter safe
/// even for values that bypassed registration.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append_f(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

}  // namespace

bool MetricsRegistry::valid_name(const std::string& name) {
  const std::size_t brace = name.find('{');
  const std::string base =
      brace == std::string::npos ? name : name.substr(0, brace);
  if (base.empty() || base.front() == '.' || base.back() == '.') return false;
  bool has_dot = false;
  for (const char c : base) {
    if (c == '.') {
      has_dot = true;
    } else if ((c < 'a' || c > 'z') && (c < '0' || c > '9') && c != '_') {
      return false;
    }
  }
  if (!has_dot) return false;
  if (brace == std::string::npos) return true;
  // `{label=value,...}`: labels lowercase, values free-form minus the
  // structural characters.
  if (name.back() != '}') return false;
  const std::string labels = name.substr(brace + 1, name.size() - brace - 2);
  if (labels.empty()) return false;
  for (const char c : labels) {
    if (c == '{' || c == '}' || c == '"') return false;
  }
  return labels.find('=') != std::string::npos;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  TMG_ASSERT(valid_name(name), "metric name must be module.metric{label}");
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  TMG_ASSERT(valid_name(name), "metric name must be module.metric{label}");
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

stats::Histogram& MetricsRegistry::histogram(const std::string& name,
                                             double lo, double hi,
                                             std::size_t bins) {
  TMG_ASSERT(valid_name(name), "metric name must be module.metric{label}");
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    HistEntry entry;
    entry.lo = lo;
    entry.hi = hi;
    entry.bins = bins;
    entry.hist = std::make_unique<stats::Histogram>(lo, hi, bins);
    it = histograms_.emplace(name, std::move(entry)).first;
  } else {
    TMG_ASSERT(it->second.lo == lo && it->second.hi == hi &&
                   it->second.bins == bins,
               "histogram re-registered with different buckets");
  }
  return *it->second.hist;
}

std::string MetricsRegistry::to_json(sim::SimTime at) const {
  std::string out;
  append_f(out, "{\n  \"at_ns\": %lld,\n",
           static_cast<long long>(at.count_nanos()));
  out += "  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    append_f(out, "%s\n    \"%s\": %llu", first ? "" : ",",
             json_escape(name).c_str(),
             static_cast<unsigned long long>(c->value()));
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    append_f(out, "%s\n    \"%s\": %.6f", first ? "" : ",",
             json_escape(name).c_str(), g->value());
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    append_f(out, "%s\n    \"%s\": {\"lo\": %.6f, \"hi\": %.6f, \"total\": %llu, \"bins\": [",
             first ? "" : ",", json_escape(name).c_str(), h.lo, h.hi,
             static_cast<unsigned long long>(h.hist->total()));
    for (std::size_t b = 0; b < h.hist->bin_count(); ++b) {
      append_f(out, "%s%llu", b == 0 ? "" : ",",
               static_cast<unsigned long long>(h.hist->count(b)));
    }
    out += "]}";
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

std::string MetricsRegistry::to_csv(sim::SimTime at) const {
  std::string out;
  append_f(out, "# at_ns=%lld\ntype,name,field,value\n",
           static_cast<long long>(at.count_nanos()));
  for (const auto& [name, c] : counters_) {
    append_f(out, "counter,%s,value,%llu\n", name.c_str(),
             static_cast<unsigned long long>(c->value()));
  }
  for (const auto& [name, g] : gauges_) {
    append_f(out, "gauge,%s,value,%.6f\n", name.c_str(), g->value());
  }
  for (const auto& [name, h] : histograms_) {
    append_f(out, "histogram,%s,total,%llu\n", name.c_str(),
             static_cast<unsigned long long>(h.hist->total()));
    for (std::size_t b = 0; b < h.hist->bin_count(); ++b) {
      append_f(out, "histogram,%s,bin[%.6f:%.6f],%llu\n", name.c_str(),
               h.hist->bin_lo(b), h.hist->bin_hi(b),
               static_cast<unsigned long long>(h.hist->count(b)));
    }
  }
  return out;
}

void MetricsRegistry::reset() {
  // In-place resets: handles held by hot paths (the loop probe, the
  // pipeline) stay valid across a trial reset.
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h.hist->reset();
}

}  // namespace tmg::obs
