// Observability façade: one object bundling the metrics registry, the
// span trace log, and the EventLoop profiling probe.
//
// Consumers (Controller, the services, both attacks, the testbeds) hold
// a borrowed `obs::Observability*` that is null by default — the null
// check is the zero-cost-when-disabled guard the fastpath-equivalence
// CI leg relies on. Everything recorded here is sim-time derived, so a
// run's exports are byte-identical across repetitions and `--jobs`
// counts (tests/obs_test.cpp).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace_log.hpp"
#include "sim/event_loop.hpp"
#include "stats/flow_stats.hpp"

namespace tmg::obs {

struct ObsConfig {
  /// Trace record cap (see TraceLog); cumulative counters are exact
  /// regardless.
  std::size_t max_trace_records = TraceLog::kDefaultMaxRecords;
  /// Open a span tree around every MessagePipeline dispatch (per-listener
  /// child spans). Turn off for long runs that only need metrics.
  bool trace_dispatch = true;
};

class Observability {
 public:
  explicit Observability(ObsConfig config = {});
  ~Observability();
  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
  [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
  [[nodiscard]] TraceLog& trace() { return trace_; }
  [[nodiscard]] const TraceLog& trace() const { return trace_; }

  /// Streaming per-port/per-switch traffic statistics, fed by the
  /// controller's Packet-In dispatch when observability is attached
  /// (null obs pointer = nothing recorded, preserving the zero-cost
  /// guard). Detail export via stats::FlowStats::to_json; summary
  /// gauges are mirrored into the registry by a controller collector.
  [[nodiscard]] stats::FlowStats& flow_stats() { return flow_stats_; }
  [[nodiscard]] const stats::FlowStats& flow_stats() const {
    return flow_stats_;
  }
  [[nodiscard]] bool trace_dispatch() const { return config_.trace_dispatch; }

  /// Export-time metric mirroring: collectors run right before a
  /// snapshot, copying module counters (pipeline stats, LLDP accounting,
  /// alert totals) into the registry without touching any hot path.
  /// Collectors borrow whatever they capture — unregister by reset(), or
  /// keep the captured objects alive until the last export.
  using Collector = std::function<void(MetricsRegistry&, sim::SimTime)>;
  void add_collector(Collector fn);
  void collect(sim::SimTime at);

  /// collect() + byte-stable export (see MetricsRegistry).
  [[nodiscard]] std::string metrics_json(sim::SimTime at);
  [[nodiscard]] std::string metrics_csv(sim::SimTime at);

  /// Run the collectors one final time and drop them. The experiment
  /// drivers call this before tearing down the testbed: the mirrored
  /// gauges survive in the registry, and later metrics_json()/collect()
  /// calls cannot chase references into destroyed objects. Also
  /// remembers `at` so a caller with no live loop can export the final
  /// snapshot (final_time()).
  void finalize(sim::SimTime at);
  [[nodiscard]] sim::SimTime final_time() const { return final_time_; }

  /// The EventLoop profiling probe: records `sim.queue_depth` and
  /// `sim.advance_ms` histograms plus a `sim.events` counter. Attach
  /// with loop.set_probe(&obs.loop_probe()).
  [[nodiscard]] sim::LoopProbe& loop_probe();

  /// Trial-reset path: zero metrics, drop trace records, forget
  /// collectors. A shared Observability reused across trials must go
  /// through here so no trial starts with a predecessor's totals.
  void reset();

 private:
  class LoopObserver final : public sim::LoopProbe {
   public:
    explicit LoopObserver(MetricsRegistry& metrics);
    void on_event_executed(sim::SimTime now, sim::Duration advanced,
                           std::size_t live_after) override;

   private:
    Counter& events_;
    stats::Histogram& queue_depth_;
    stats::Histogram& advance_ms_;
  };

  ObsConfig config_;
  MetricsRegistry metrics_;
  TraceLog trace_;
  stats::FlowStats flow_stats_;
  LoopObserver loop_observer_;
  std::vector<Collector> collectors_;
  sim::SimTime final_time_;
};

/// Write `content` to `path` (truncating). Returns false (with a stderr
/// note) when the file cannot be opened; shared by --obs-out/--trace-out.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace tmg::obs
