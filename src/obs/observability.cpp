#include "obs/observability.hpp"

#include <cstdio>

namespace tmg::obs {

Observability::LoopObserver::LoopObserver(MetricsRegistry& metrics)
    : events_{metrics.counter("sim.events")},
      queue_depth_{metrics.histogram("sim.queue_depth", 0.0, 4096.0, 64)},
      advance_ms_{metrics.histogram("sim.advance_ms", 0.0, 100.0, 50)} {}

void Observability::LoopObserver::on_event_executed(sim::SimTime /*now*/,
                                                    sim::Duration advanced,
                                                    std::size_t live_after) {
  events_.inc();
  queue_depth_.add(static_cast<double>(live_after));
  advance_ms_.add(advanced.to_millis_f());
}

Observability::Observability(ObsConfig config)
    : config_{config},
      trace_{config.max_trace_records},
      loop_observer_{metrics_} {}

Observability::~Observability() = default;

void Observability::add_collector(Collector fn) {
  collectors_.push_back(std::move(fn));
}

void Observability::collect(sim::SimTime at) {
  for (const Collector& c : collectors_) c(metrics_, at);
}

std::string Observability::metrics_json(sim::SimTime at) {
  collect(at);
  return metrics_.to_json(at);
}

std::string Observability::metrics_csv(sim::SimTime at) {
  collect(at);
  return metrics_.to_csv(at);
}

void Observability::finalize(sim::SimTime at) {
  collect(at);
  collectors_.clear();
  final_time_ = at;
}

sim::LoopProbe& Observability::loop_probe() { return loop_observer_; }

void Observability::reset() {
  collectors_.clear();
  metrics_.reset();
  trace_.clear();
  flow_stats_.reset();
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot write %s\n", path.c_str());
    return false;
  }
  const std::size_t n = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return n == content.size();
}

}  // namespace tmg::obs
