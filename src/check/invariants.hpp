// Runtime invariant checker for the simulator's control-plane state.
//
// The event loop, topology graph, host tracker, and discovery ledger
// carry implicit invariants that every experiment (and every defense
// verdict built on top of them) silently assumes. This checker makes
// them explicit and machine-checked, in the spirit of sOFTDP's pairing
// of discovery with integrity verification:
//
//   1. Clock monotonicity — simulated time never moves backwards.
//   2. Topology link symmetry — every switch-to-switch link is indexed
//      in both orientations, with no dangling adjacency entries.
//   3. Discovery/topology coherence — the link-discovery ledger and the
//      topology graph describe the same link set.
//   4. Host binding sanity — one location per MAC (the paper's HTS
//      semantics), records keyed by their own MAC, and timestamps
//      ordered first_seen <= last_seen <= now.
//   5. Port-profile legality — TopoGuard profiles move HOST<->SWITCH or
//      back to ANY only across a Port-Down reset (the Port Amnesia
//      model); any other transition is a corrupted state machine.
//   6. LLDP conservation — every probe emitted is matched, expired, or
//      still outstanding exactly once, and every reception falls in
//      exactly one classification bucket.
//   7. Cache coherence — every fast-path structure must agree with the
//      naive recomputation it replaces: the routing service's path cache
//      against fresh BFS, each defense module's internal caches (LLI's
//      incremental order statistics), and any externally registered
//      audits (the Testbed wires in each switch's indexed flow table).
//   8. Pipeline/registry coherence — the message pipeline's listener
//      chain is priority-sorted with unique names and sane counters
//      (delegated to MessagePipeline::audit), the chain matches the
//      active ControllerProfile's PipelineLayout (fixed listeners at
//      their slots, the verdict gate only where the layout keeps one,
//      defense adapters in the band progression with the profile's
//      subscription mask), and the service registry still exposes the
//      three core services every listener resolves lazily
//      (link-discovery, host-tracking, routing).
//
// Violations are raised on the controller's AlertBus as
// AlertType::InvariantViolation (mirrored into an attached tracer) —
// a violation means the *simulator* is broken, never the network.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ctrl/controller.hpp"
#include "defense/topoguard.hpp"

namespace tmg::check {

struct InvariantOptions {
  /// Run the full check battery after every N executed events (via the
  /// EventLoop post-event hook). 0 disables periodic checking; manual
  /// run_checks() / final_check() still work.
  std::uint64_t check_every_events = 256;
  /// Also fail hard through TMG_ASSERT on the first violation. Off by
  /// default so tests can observe violations as alerts.
  bool assert_on_violation = false;
};

class InvariantChecker {
 public:
  /// Attaches to `ctrl`'s event loop (unless check_every_events == 0).
  /// The checker must not outlive the controller.
  explicit InvariantChecker(ctrl::Controller& ctrl,
                            InvariantOptions options = {});
  ~InvariantChecker();
  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  /// Validate TopoGuard port-profile transitions (invariant 5).
  void watch_topoguard(const defense::TopoGuard& tg);

  /// Generic profile source for invariant 5; lets tests inject arbitrary
  /// (including deliberately illegal) transition sequences.
  using ProfileSnapshot = std::map<of::Location, defense::TopoGuard::PortType>;
  using SnapshotFn = std::function<ProfileSnapshot()>;
  using ResetTimeFn =
      std::function<std::optional<sim::SimTime>(of::Location)>;
  void watch_port_profiles(SnapshotFn snapshot, ResetTimeFn last_reset);

  /// Register an external coherence audit (invariant 7) run on every
  /// check round; `fn` returns violation descriptions, empty = healthy.
  /// `name` prefixes each violation for attribution.
  using AuditFn = std::function<std::vector<std::string>()>;
  void add_audit(std::string name, AuditFn fn);

  /// Run every invariant now. Returns the violations found this round
  /// (also raised as alerts). Deterministic order.
  std::vector<std::string> run_checks();

  /// Teardown validation; called by Testbed on destruction and by tests.
  void final_check() { run_checks(); }

  [[nodiscard]] std::uint64_t checks_run() const { return checks_run_; }
  [[nodiscard]] std::uint64_t violation_count() const { return violations_; }

 private:
  void report(std::vector<std::string>& out, std::string what,
              std::optional<of::Location> loc = std::nullopt);

  void check_clock(std::vector<std::string>& out);
  void check_topology(std::vector<std::string>& out);
  void check_discovery_coherence(std::vector<std::string>& out);
  void check_hosts(std::vector<std::string>& out);
  void check_profiles(std::vector<std::string>& out);
  void check_lldp_conservation(std::vector<std::string>& out);
  void check_caches(std::vector<std::string>& out);
  void check_pipeline(std::vector<std::string>& out);

  ctrl::Controller& ctrl_;
  InvariantOptions options_;
  sim::SimTime last_seen_now_ = sim::SimTime::zero();
  SnapshotFn profile_snapshot_;
  ResetTimeFn profile_reset_;
  ProfileSnapshot last_profiles_;
  sim::SimTime last_profile_check_ = sim::SimTime::zero();
  bool have_profile_baseline_ = false;
  std::vector<std::pair<std::string, AuditFn>> audits_;
  std::uint64_t checks_run_ = 0;
  std::uint64_t violations_ = 0;
};

}  // namespace tmg::check
