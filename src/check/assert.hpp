// Always-on and debug-only assertion macros for simulator internals.
//
// TMG_ASSERT fires in every build type (the simulator's correctness
// contract is the product; stripping checks in release would defeat the
// point of the tooling layer). TMG_DCHECK compiles out under NDEBUG for
// hot paths. Both route through a replaceable failure handler so tests
// can observe failures instead of dying.
#pragma once

#include <functional>
#include <string>

namespace tmg::check {

/// Called on assertion failure. The default prints to stderr and aborts.
using FailureHandler = std::function<void(
    const char* file, int line, const char* condition, const std::string& msg)>;

/// Install `handler` (tests install a recorder; pass nullptr to restore
/// the abort default). Returns the previous handler.
FailureHandler set_failure_handler(FailureHandler handler);

/// Invoke the current failure handler. Not for direct use; call through
/// the macros so file/line/condition are captured.
void assert_fail(const char* file, int line, const char* condition,
                 const std::string& msg);

}  // namespace tmg::check

/// Fatal unless a non-aborting handler is installed. Enabled in all
/// build types.
#define TMG_ASSERT(cond, msg)                                      \
  do {                                                             \
    if (!(cond)) {                                                 \
      ::tmg::check::assert_fail(__FILE__, __LINE__, #cond, (msg)); \
    }                                                              \
  } while (0)

/// Debug-only variant for hot paths; compiles to nothing under NDEBUG
/// (the condition is not evaluated).
#ifdef NDEBUG
#define TMG_DCHECK(cond, msg) \
  do {                        \
    (void)sizeof((cond));     \
  } while (0)
#else
#define TMG_DCHECK(cond, msg) TMG_ASSERT(cond, msg)
#endif
