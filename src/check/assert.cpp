#include "check/assert.hpp"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace tmg::check {

namespace {

void default_handler(const char* file, int line, const char* condition,
                     const std::string& msg) {
  std::fprintf(stderr, "TMG_ASSERT failed at %s:%d: %s\n  %s\n", file, line,
               condition, msg.c_str());
  std::abort();
}

FailureHandler& current_handler() {
  static FailureHandler handler = default_handler;
  return handler;
}

}  // namespace

FailureHandler set_failure_handler(FailureHandler handler) {
  FailureHandler previous = std::move(current_handler());
  current_handler() = handler ? std::move(handler) : default_handler;
  return previous;
}

void assert_fail(const char* file, int line, const char* condition,
                 const std::string& msg) {
  current_handler()(file, line, condition, msg);
}

}  // namespace tmg::check
