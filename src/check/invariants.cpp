#include "check/invariants.hpp"

#include <algorithm>

#include "check/assert.hpp"
#include "ctrl/host_tracker.hpp"
#include "ctrl/link_discovery.hpp"
#include "ctrl/routing.hpp"

namespace tmg::check {

InvariantChecker::InvariantChecker(ctrl::Controller& ctrl,
                                   InvariantOptions options)
    : ctrl_{ctrl}, options_{options} {
  last_seen_now_ = ctrl_.loop().now();
  if (options_.check_every_events > 0) {
    ctrl_.loop().set_post_event_hook(options_.check_every_events,
                                     [this] { run_checks(); });
  }
}

InvariantChecker::~InvariantChecker() {
  if (options_.check_every_events > 0) {
    ctrl_.loop().set_post_event_hook(0, nullptr);
  }
}

void InvariantChecker::watch_topoguard(const defense::TopoGuard& tg) {
  // Reconstruct the profile map from every (dpid, port) the controller
  // manages; ports never observed stay ANY and need no entry.
  watch_port_profiles(
      [this, &tg] {
        ProfileSnapshot snap;
        for (const of::Dpid dpid : ctrl_.switch_dpids()) {
          for (const of::PortNo port : ctrl_.switch_ports(dpid)) {
            const of::Location loc{dpid, port};
            const auto type = tg.port_type(loc);
            if (type != defense::TopoGuard::PortType::Any) snap[loc] = type;
          }
        }
        return snap;
      },
      [&tg](of::Location loc) { return tg.last_reset(loc); });
}

void InvariantChecker::watch_port_profiles(SnapshotFn snapshot,
                                           ResetTimeFn last_reset) {
  profile_snapshot_ = std::move(snapshot);
  profile_reset_ = std::move(last_reset);
  have_profile_baseline_ = false;
}

void InvariantChecker::add_audit(std::string name, AuditFn fn) {
  audits_.emplace_back(std::move(name), std::move(fn));
}

void InvariantChecker::report(std::vector<std::string>& out, std::string what,
                              std::optional<of::Location> loc) {
  ++violations_;
  ctrl_.alerts().raise(ctrl::Alert{ctrl_.loop().now(), "InvariantChecker",
                                   ctrl::AlertType::InvariantViolation, what,
                                   loc});
  if (options_.assert_on_violation) {
    TMG_ASSERT(false, what);
  }
  out.push_back(std::move(what));
}

void InvariantChecker::check_clock(std::vector<std::string>& out) {
  const sim::SimTime now = ctrl_.loop().now();
  if (now < last_seen_now_) {
    report(out, "clock moved backwards: " + sim::to_string(now) +
                    " after " + sim::to_string(last_seen_now_));
  }
  last_seen_now_ = now;
}

void InvariantChecker::check_topology(std::vector<std::string>& out) {
  for (std::string& issue : ctrl_.topology().audit()) {
    report(out, "topology: " + issue);
  }
}

void InvariantChecker::check_discovery_coherence(
    std::vector<std::string>& out) {
  const auto states = ctrl_.link_discovery().link_states();
  for (const auto& state : states) {
    if (!ctrl_.topology().has_link(state.link.a, state.link.b)) {
      report(out,
             "discovery ledger holds " + state.link.to_string() +
                 " but the topology graph does not",
             state.link.a);
    }
  }
  const std::size_t graph_links = ctrl_.topology().link_count();
  if (graph_links != states.size()) {
    report(out, "topology graph has " + std::to_string(graph_links) +
                    " links but the discovery ledger has " +
                    std::to_string(states.size()));
  }
}

void InvariantChecker::check_hosts(std::vector<std::string>& out) {
  const sim::SimTime now = ctrl_.loop().now();
  std::vector<std::pair<std::string, of::Location>> found;
  // hosts_sorted() is already MAC-ordered, so findings come out sorted
  // without depending on the sharded table's physical layout.
  for (const auto& rec : ctrl_.host_tracker().hosts_sorted()) {
    if (rec.first_seen > rec.last_seen) {
      found.emplace_back("host " + rec.mac.to_string() + " first_seen " +
                             sim::to_string(rec.first_seen) +
                             " after last_seen " +
                             sim::to_string(rec.last_seen),
                         rec.loc);
    }
    if (rec.last_seen > now) {
      found.emplace_back("host " + rec.mac.to_string() + " last_seen " +
                             sim::to_string(rec.last_seen) +
                             " is in the future (now " + sim::to_string(now) +
                             ")",
                         rec.loc);
    }
  }
  // Structural audit of the sharded open-addressed store itself (probe
  // reachability, shard assignment, load bounds).
  for (const std::string& what : ctrl_.host_tracker().audit_table()) {
    found.emplace_back("host table: " + what, of::Location{});
  }
  std::sort(found.begin(), found.end());
  for (auto& [what, loc] : found) report(out, std::move(what), loc);
}

void InvariantChecker::check_profiles(std::vector<std::string>& out) {
  if (!profile_snapshot_) return;
  const sim::SimTime now = ctrl_.loop().now();
  ProfileSnapshot current = profile_snapshot_();
  if (!have_profile_baseline_) {
    last_profiles_ = std::move(current);
    last_profile_check_ = now;
    have_profile_baseline_ = true;
    return;
  }

  using PortType = defense::TopoGuard::PortType;
  const auto type_of = [](const ProfileSnapshot& snap, of::Location loc) {
    const auto it = snap.find(loc);
    return it == snap.end() ? PortType::Any : it->second;
  };
  const auto reset_since_last = [&](of::Location loc) {
    if (!profile_reset_) return false;
    const auto reset = profile_reset_(loc);
    return reset && *reset >= last_profile_check_;
  };

  // Union of both ordered snapshots, walked in key order.
  std::vector<of::Location> locations;
  for (const auto& [loc, _] : last_profiles_) locations.push_back(loc);
  for (const auto& [loc, _] : current) locations.push_back(loc);
  std::sort(locations.begin(), locations.end());
  locations.erase(std::unique(locations.begin(), locations.end()),
                  locations.end());

  for (const of::Location loc : locations) {
    const PortType before = type_of(last_profiles_, loc);
    const PortType after = type_of(current, loc);
    if (before == after || before == PortType::Any) continue;
    // HOST->SWITCH, SWITCH->HOST, and X->ANY are only legal across a
    // Port-Down reset (the Port Amnesia model: ANY is re-entered via
    // the defined reset, then reclassified by first traffic).
    if (!reset_since_last(loc)) {
      report(out,
             std::string{"port profile "} + defense::to_string(before) +
                 "->" + defense::to_string(after) + " on " + loc.to_string() +
                 " without a Port-Down reset",
             loc);
    }
  }
  last_profiles_ = std::move(current);
  last_profile_check_ = now;
}

void InvariantChecker::check_lldp_conservation(
    std::vector<std::string>& out) {
  const auto acc = ctrl_.link_discovery().lldp_accounting();
  const std::uint64_t accounted =
      acc.matched + acc.expired + acc.outstanding_unmatched;
  if (acc.emitted != accounted) {
    report(out, "LLDP conservation: " + std::to_string(acc.emitted) +
                    " probes emitted but " + std::to_string(accounted) +
                    " accounted for (matched " + std::to_string(acc.matched) +
                    " + expired " + std::to_string(acc.expired) +
                    " + outstanding " +
                    std::to_string(acc.outstanding_unmatched) + ")");
  }
  const std::uint64_t receptions = ctrl_.link_discovery().receptions();
  const std::uint64_t classified = acc.matched + acc.duplicate +
                                   acc.unsolicited + acc.reflected +
                                   acc.invalid_signature;
  if (receptions != classified) {
    report(out, "LLDP conservation: " + std::to_string(receptions) +
                    " receptions but " + std::to_string(classified) +
                    " classified");
  }
}

void InvariantChecker::check_caches(std::vector<std::string>& out) {
  // Routing path cache: every memoized path must equal a fresh BFS.
  for (std::string& issue : ctrl_.routing().path_cache().audit()) {
    report(out, "cache: routing: " + issue);
  }
  // Defense-module internal caches (e.g. LLI's incremental statistics).
  for (const auto& module : ctrl_.defense_modules()) {
    for (std::string& issue : module->audit()) {
      report(out, "cache: " + module->name() + ": " + issue);
    }
  }
  // Externally registered audits (indexed switch flow tables, etc.).
  for (const auto& [name, fn] : audits_) {
    for (std::string& issue : fn()) {
      report(out, "cache: " + name + ": " + issue);
    }
  }
}

void InvariantChecker::check_pipeline(std::vector<std::string>& out) {
  for (std::string& issue : ctrl_.pipeline().audit()) {
    report(out, "pipeline: " + issue);
  }
  for (const char* service :
       {ctrl::kLinkDiscoveryServiceName, ctrl::kHostTrackingServiceName,
        ctrl::kRoutingServiceName}) {
    if (!ctrl_.services().has(service)) {
      report(out, std::string{"registry: core service '"} + service +
                      "' is not registered");
    }
  }

  // The chain must match the active profile's slot table: every fixed
  // listener at its layout slot (the verdict gate only when the layout
  // keeps one), every defense adapter in the band progression with the
  // profile's subscription mask.
  const ctrl::ControllerProfile& profile = ctrl_.config().profile;
  const ctrl::PipelineLayout& layout = profile.layout;
  const auto stats = ctrl_.pipeline().stats();
  const auto slot_of = [&](const std::string& name) -> const auto* {
    for (const auto& s : stats) {
      if (s.name == name) return &s;
    }
    return static_cast<const ctrl::MessagePipeline::ListenerStats*>(nullptr);
  };
  const auto expect_slot = [&](const char* name, int slot) {
    const auto* s = slot_of(name);
    if (s == nullptr) {
      report(out, std::string{"pipeline: profile "} + profile.name +
                      ": listener '" + name + "' missing from the chain");
    } else if (s->priority != slot) {
      report(out, std::string{"pipeline: profile "} + profile.name +
                      ": listener '" + name + "' at priority " +
                      std::to_string(s->priority) + ", layout says " +
                      std::to_string(slot));
    }
  };
  expect_slot("controller-core", layout.core);
  expect_slot(ctrl::kLinkDiscoveryServiceName, layout.link_discovery);
  expect_slot(ctrl::kHostTrackingServiceName, layout.host_tracking);
  expect_slot(ctrl::kRoutingServiceName, layout.routing);
  if (layout.verdict_gate >= 0) {
    expect_slot("verdict-gate", layout.verdict_gate);
  } else if (slot_of("verdict-gate") != nullptr) {
    report(out, std::string{"pipeline: profile "} + profile.name +
                    ": layout omits the verdict gate but one is installed");
  }
  if (layout.anomaly_ids >= 0) {
    expect_slot("anomaly-ids", layout.anomaly_ids);
  } else if (slot_of("anomaly-ids") != nullptr) {
    report(out, std::string{"pipeline: profile "} + profile.name +
                    ": layout omits the anomaly IDS but one is installed");
  }
  const auto& modules = ctrl_.defense_modules();
  for (std::size_t i = 0; i < modules.size(); ++i) {
    const auto* s = slot_of(modules[i]->name());
    const int slot = layout.defense_base +
                     layout.defense_step * static_cast<int>(i);
    if (s == nullptr) {
      report(out, std::string{"pipeline: profile "} + profile.name +
                      ": defense '" + modules[i]->name() +
                      "' missing from the chain");
      continue;
    }
    if (s->priority != slot) {
      report(out, std::string{"pipeline: profile "} + profile.name +
                      ": defense '" + modules[i]->name() + "' at priority " +
                      std::to_string(s->priority) + ", band slot is " +
                      std::to_string(slot));
    }
    if (s->subscriptions != profile.defense_subscriptions) {
      report(out, std::string{"pipeline: profile "} + profile.name +
                      ": defense '" + modules[i]->name() +
                      "' subscription mask diverges from the profile");
    }
  }
}

std::vector<std::string> InvariantChecker::run_checks() {
  ++checks_run_;
  std::vector<std::string> out;
  check_clock(out);
  check_topology(out);
  check_discovery_coherence(out);
  check_hosts(out);
  check_profiles(out);
  check_lldp_conservation(out);
  check_caches(out);
  check_pipeline(out);
  return out;
}

}  // namespace tmg::check
