// Structured controller event tracing.
//
// An optional ring buffer of typed control-plane events (Packet-In,
// Flow-Mod, Port-Status, link/host changes, alerts, ...). Attached to a
// Controller it yields the "controller console" view the paper's
// figures 12-13 screenshot, and gives tests/examples a queryable record
// of what the control plane actually did.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "of/messages.hpp"
#include "sim/time.hpp"

namespace tmg::trace {

enum class EventKind {
  PacketIn,
  PacketOut,
  FlowMod,
  PortUp,
  PortDown,
  LinkAdded,
  LinkRemoved,
  HostNew,
  HostMoved,
  HostBlocked,
  Alert,
  EchoRtt,
};

const char* to_string(EventKind kind);

struct Event {
  sim::SimTime at;
  EventKind kind = EventKind::PacketIn;
  std::string detail;
  std::optional<of::Location> loc;
};

class Tracer {
 public:
  using Listener = std::function<void(const Event&)>;

  explicit Tracer(std::size_t capacity = 65536);

  void record(sim::SimTime at, EventKind kind, std::string detail,
              std::optional<of::Location> loc = std::nullopt);

  [[nodiscard]] const std::deque<Event>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] std::uint64_t total_recorded() const { return recorded_; }
  [[nodiscard]] std::size_t count(EventKind kind) const;
  [[nodiscard]] std::vector<Event> of_kind(EventKind kind) const;

  /// Console-style rendering of the most recent `last_n` events.
  [[nodiscard]] std::string render(std::size_t last_n = 50) const;

  /// CSV rows: "t_s,kind,location,detail".
  [[nodiscard]] std::string to_csv() const;

  /// Live listener invoked on every recorded event.
  void subscribe(Listener listener);

  void clear();

 private:
  std::size_t capacity_;
  std::deque<Event> events_;
  std::vector<Listener> listeners_;
  std::uint64_t recorded_ = 0;
};

}  // namespace tmg::trace
