// Structured controller event tracing.
//
// An optional ring buffer of typed control-plane events (Packet-In,
// Flow-Mod, Port-Status, link/host changes, alerts, ...). Attached to a
// Controller it yields the "controller console" view the paper's
// figures 12-13 screenshot, and gives tests/examples a queryable record
// of what the control plane actually did.
//
// The Tracer is a thin adapter over obs::TraceLog: every record()
// lands as an instant in the log (category "ctrl", name = the event
// kind), and count()/total_recorded() delegate to the log's cumulative
// counters — the Tracer keeps only the bounded console ring for
// render()/to_csv(). bind() points several Tracers (or a Tracer and
// the observability layer) at one shared log so controller events
// interleave with pipeline spans in the same JSONL export.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace_log.hpp"
#include "of/messages.hpp"
#include "sim/time.hpp"

namespace tmg::trace {

enum class EventKind {
  PacketIn,
  PacketOut,
  FlowMod,
  PortUp,
  PortDown,
  LinkAdded,
  LinkRemoved,
  HostNew,
  HostMoved,
  HostMoveRejected,
  HostBlocked,
  Alert,
  EchoRtt,
};

const char* to_string(EventKind kind);

struct Event {
  sim::SimTime at;
  EventKind kind = EventKind::PacketIn;
  std::string detail;
  std::optional<of::Location> loc;
};

class Tracer {
 public:
  using Listener = std::function<void(const Event&)>;

  /// Category every Tracer instant is filed under in the TraceLog.
  static constexpr const char* kCategory = "ctrl";

  explicit Tracer(std::size_t capacity = 65536);

  /// Rebind to a shared TraceLog (borrowed; must outlive the Tracer).
  /// Until then the Tracer records into a private log of its own.
  void bind(obs::TraceLog& log) { log_ = &log; }
  [[nodiscard]] obs::TraceLog& log() { return *log_; }
  [[nodiscard]] const obs::TraceLog& log() const { return *log_; }

  void record(sim::SimTime at, EventKind kind, std::string detail,
              std::optional<of::Location> loc = std::nullopt);

  [[nodiscard]] const std::deque<Event>& events() const { return events_; }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] std::uint64_t total_recorded() const {
    return log_->category_total(kCategory);
  }
  [[nodiscard]] std::size_t count(EventKind kind) const {
    return static_cast<std::size_t>(log_->count(kCategory, to_string(kind)));
  }
  [[nodiscard]] std::vector<Event> of_kind(EventKind kind) const;

  /// Console-style rendering of the most recent `last_n` events.
  [[nodiscard]] std::string render(std::size_t last_n = 50) const;

  /// CSV rows: "t_s,kind,location,detail".
  [[nodiscard]] std::string to_csv() const;

  /// Live listener invoked on every recorded event.
  void subscribe(Listener listener);

  /// Drop the console ring. Cumulative counters live in the TraceLog
  /// and survive (count()/total_recorded() keep their totals).
  void clear();

 private:
  std::size_t capacity_;
  std::deque<Event> events_;
  std::vector<Listener> listeners_;
  obs::TraceLog own_log_;
  obs::TraceLog* log_ = &own_log_;
};

}  // namespace tmg::trace
