#include "trace/tracer.hpp"

#include <cassert>
#include <cstdio>

namespace tmg::trace {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::PacketIn: return "PACKET_IN";
    case EventKind::PacketOut: return "PACKET_OUT";
    case EventKind::FlowMod: return "FLOW_MOD";
    case EventKind::PortUp: return "PORT_UP";
    case EventKind::PortDown: return "PORT_DOWN";
    case EventKind::LinkAdded: return "LINK_ADDED";
    case EventKind::LinkRemoved: return "LINK_REMOVED";
    case EventKind::HostNew: return "HOST_NEW";
    case EventKind::HostMoved: return "HOST_MOVED";
    case EventKind::HostMoveRejected: return "HOST_MOVE_REJECTED";
    case EventKind::HostBlocked: return "HOST_BLOCKED";
    case EventKind::Alert: return "ALERT";
    case EventKind::EchoRtt: return "ECHO_RTT";
  }
  return "?";
}

Tracer::Tracer(std::size_t capacity) : capacity_{capacity} {
  assert(capacity_ > 0);
}

void Tracer::record(sim::SimTime at, EventKind kind, std::string detail,
                    std::optional<of::Location> loc) {
  const obs::SpanId id = log_->instant(at, kCategory, to_string(kind), detail);
  if (id != 0 && loc) log_->annotate(id, "loc", loc->to_string());
  events_.push_back(Event{at, kind, std::move(detail), loc});
  while (events_.size() > capacity_) events_.pop_front();
  for (const auto& l : listeners_) l(events_.back());
}

std::vector<Event> Tracer::of_kind(EventKind kind) const {
  std::vector<Event> out;
  for (const auto& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

std::string Tracer::render(std::size_t last_n) const {
  std::string out;
  char line[512];
  const std::size_t start =
      events_.size() > last_n ? events_.size() - last_n : 0;
  for (std::size_t i = start; i < events_.size(); ++i) {
    const Event& e = events_[i];
    std::snprintf(line, sizeof line, "[%10.3fs] %-12s %-10s %s\n",
                  e.at.to_seconds_f(), to_string(e.kind),
                  e.loc ? e.loc->to_string().c_str() : "-",
                  e.detail.c_str());
    out += line;
  }
  return out;
}

std::string Tracer::to_csv() const {
  std::string out;
  char line[512];
  for (const Event& e : events_) {
    std::snprintf(line, sizeof line, "%.6f,%s,%s,\"%s\"\n",
                  e.at.to_seconds_f(), to_string(e.kind),
                  e.loc ? e.loc->to_string().c_str() : "",
                  e.detail.c_str());
    out += line;
  }
  return out;
}

void Tracer::subscribe(Listener listener) {
  listeners_.push_back(std::move(listener));
}

void Tracer::clear() { events_.clear(); }

}  // namespace tmg::trace
