// Trace-profile anomaly IDS (DESIGN.md §14).
//
// ProfileAnomalyService is the learned complement to the hand-written
// defenses: instead of encoding TopoGuard-style invariants, it replays
// the BehaviorProfile featurization against the live pipeline dispatch
// stream and scores deviations — an unseen per-port message transition,
// a rate-envelope breach, an LLDP source the port never saw in
// training, a span duration beyond the trained quantiles. It hangs off
// the controller's always-present "anomaly-ids" chain slot
// (Controller::set_anomaly_detector), after the defense band and before
// the verdict gate: observe-only under BroadcastObserve profiles,
// veto-capable (AnomalyConfig::veto) under OrderedStop ones.
//
// Everything is simulated-time derived (the obs wall-clock ban
// applies): with the same profile and seed, a run's deviation stream,
// metrics, and alerts are byte-identical across repetitions and
// --jobs counts.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "ctrl/alert_bus.hpp"
#include "ctrl/defense_module.hpp"
#include "ids/behavior_profile.hpp"
#include "obs/observability.hpp"
#include "sim/event_loop.hpp"

namespace tmg::ids {

struct AnomalyConfig {
  /// Return Block from verdict-bearing hooks on alert-grade deviations
  /// (only bites under OrderedStop profiles with a verdict gate).
  bool veto = false;
  /// Rate breach: events in one sim-second bucket exceed
  /// trained_peak * rate_multiplier + rate_margin. The margin absorbs
  /// small-sample training peaks on quiet ports.
  double rate_multiplier = 2.0;
  std::uint64_t rate_margin = 8;
  /// Duration outlier: a span runs past
  /// max(trained_max * duration_multiplier, trained_p99).
  double duration_multiplier = 2.0;
  /// Treat events at ports absent from the profile as deviations.
  bool alert_unseen_port = true;
};

/// Deviation + bookkeeping totals (mirrored into ids.anomaly.* when
/// observability is attached; harvested into bench/scenario outcomes).
struct AnomalyCounters {
  std::uint64_t scored = 0;  // events featurized in Detect mode
  std::uint64_t unseen_port = 0;
  std::uint64_t unseen_transition = 0;
  std::uint64_t unseen_trigram = 0;
  std::uint64_t lldp_src_violation = 0;
  std::uint64_t rate_breach = 0;
  std::uint64_t duration_outlier = 0;
  std::uint64_t alerts = 0;  // AlertBus raises (per-port/reason deduped)
  std::uint64_t vetoes = 0;  // Block verdicts returned
  [[nodiscard]] std::uint64_t deviations() const {
    return unseen_port + unseen_transition + unseen_trigram +
           lldp_src_violation + rate_breach + duration_outlier;
  }
};

class ProfileAnomalyService final : public ctrl::DefenseModule {
 public:
  explicit ProfileAnomalyService(sim::EventLoop& loop,
                                 AnomalyConfig config = {});

  /// Detect mode: score against `profile` (borrowed; nullptr disables).
  void set_profile(const BehaviorProfile* profile) { profile_ = profile; }
  /// Train mode: forward the live featurization into `trainer`
  /// (borrowed; takes precedence over Detect when both are set).
  void set_trainer(ProfileTrainer* trainer) { trainer_ = trainer; }
  /// Alert sink (borrowed). Alerts are deduplicated per (port, reason)
  /// so a sustained attack cannot flood the bus (paper Sec. IV-B).
  void set_alert_bus(ctrl::AlertBus* alerts) { alerts_ = alerts; }
  /// Metrics + ANOMALY_* trace instants (borrowed; nullptr detaches).
  /// Scoring behavior is identical with or without observability.
  void set_observability(obs::Observability* obs);

  [[nodiscard]] const AnomalyCounters& counters() const { return counters_; }

  /// Drop per-run state (sequences, buckets, dedup, counters); the
  /// profile, trainer, and sinks stay attached.
  void reset();

  // --- ctrl::DefenseModule ---
  [[nodiscard]] std::string name() const override { return "AnomalyIDS"; }
  ctrl::Verdict on_packet_in(const of::PacketIn& pi) override;
  void on_port_status(const of::PortStatus& ps) override;
  ctrl::Verdict on_lldp_observation(
      const ctrl::LldpObservation& obs) override;
  void on_link_removed(const topo::Link& link) override;
  ctrl::Verdict on_host_event(const ctrl::HostEvent& ev) override;

 private:
  enum class Deviation {
    UnseenPort,
    UnseenTransition,
    UnseenTrigram,  // counter-only: the sparser table would alert-flood
    LldpSrc,
    RateBreach,
    DurationOutlier,
  };
  struct PortState {
    Symbol s1 = Symbol::Start;
    Symbol s2 = Symbol::Start;
    std::int64_t bucket = -1;
    std::uint64_t in_bucket = 0;
  };

  /// Feed one symbol at one port; returns the hook verdict.
  ctrl::Verdict score(PortKey port, Symbol sym);
  /// Record a deviation (counters, trace instant, deduped alert).
  /// Returns true when the deviation is alert-grade.
  bool deviate(Deviation kind, PortKey port, std::string message);
  [[nodiscard]] const PortProfile* baseline(PortKey port) const;
  void bump(obs::Counter* counter) {
    if (counter != nullptr) counter->add(1);
  }

  sim::EventLoop& loop_;
  AnomalyConfig config_;
  const BehaviorProfile* profile_ = nullptr;
  ProfileTrainer* trainer_ = nullptr;
  ctrl::AlertBus* alerts_ = nullptr;
  obs::Observability* obs_ = nullptr;

  std::map<PortKey, PortState> state_;
  std::set<std::pair<PortKey, int>> alerted_;  // (port, Deviation) dedup
  AnomalyCounters counters_;

  // Cached metric handles (registry-owned; valid until obs reset).
  obs::Counter* c_scored_ = nullptr;
  obs::Counter* c_unseen_port_ = nullptr;
  obs::Counter* c_unseen_transition_ = nullptr;
  obs::Counter* c_unseen_trigram_ = nullptr;
  obs::Counter* c_lldp_src_ = nullptr;
  obs::Counter* c_rate_breach_ = nullptr;
  obs::Counter* c_duration_outlier_ = nullptr;
  obs::Counter* c_alerts_ = nullptr;
  obs::Counter* c_vetoes_ = nullptr;
  obs::Gauge* g_score_ = nullptr;
  obs::Gauge* g_ports_ = nullptr;
};

}  // namespace tmg::ids
