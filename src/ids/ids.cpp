#include "ids/ids.hpp"

#include <algorithm>

namespace tmg::ids {

Ids::Ids(sim::EventLoop& loop) : loop_{loop} {}

void Ids::install_default_rules() {
  add_rule(std::make_unique<TcpSynScanRule>());
  add_rule(std::make_unique<IcmpSweepRule>());
  add_rule(std::make_unique<ArpDiscoveryFloodRule>());
}

void Ids::add_rule(std::unique_ptr<Rule> rule) {
  rules_.push_back(std::move(rule));
}

void Ids::monitor(of::DataLink& link) {
  link.set_tap([this](const net::Packet& pkt, of::Side) { observe(pkt); });
}

void Ids::observe(const net::Packet& pkt) {
  ++inspected_;
  const auto sink = [this](IdsAlert alert) {
    alerts_.push_back(std::move(alert));
  };
  for (const auto& rule : rules_) {
    rule->on_packet(loop_.now(), pkt, sink);
  }
}

std::size_t Ids::alert_count(const std::string& rule) const {
  return static_cast<std::size_t>(
      std::count_if(alerts_.begin(), alerts_.end(),
                    [&](const IdsAlert& a) { return a.rule == rule; }));
}

}  // namespace tmg::ids
