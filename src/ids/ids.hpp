// Network IDS (Snort surrogate).
//
// Monitors one or more data links through passive taps, feeds every
// observed packet to its rule set, and records alerts. Used to
// reproduce the paper's scan-stealth findings (Table I "Stealth" column
// and Sec. V-B2's 2-scans-per-second SYN threshold).
#pragma once

#include <memory>
#include <vector>

#include "ids/rules.hpp"
#include "of/data_link.hpp"
#include "sim/event_loop.hpp"

namespace tmg::ids {

class Ids {
 public:
  explicit Ids(sim::EventLoop& loop);

  /// Install the paper's rule set (SYN-rate, ICMP-rate, ARP discovery).
  void install_default_rules();

  void add_rule(std::unique_ptr<Rule> rule);

  /// Tap a link: every packet delivered over it is inspected.
  void monitor(of::DataLink& link);

  /// Feed one packet directly (unit tests, offline traces).
  void observe(const net::Packet& pkt);

  [[nodiscard]] const std::vector<IdsAlert>& alerts() const {
    return alerts_;
  }
  [[nodiscard]] std::size_t alert_count() const { return alerts_.size(); }
  [[nodiscard]] std::size_t alert_count(const std::string& rule) const;
  [[nodiscard]] std::uint64_t packets_inspected() const { return inspected_; }

  void clear_alerts() { alerts_.clear(); }

 private:
  sim::EventLoop& loop_;
  std::vector<std::unique_ptr<Rule>> rules_;
  std::vector<IdsAlert> alerts_;
  std::uint64_t inspected_ = 0;
};

}  // namespace tmg::ids
