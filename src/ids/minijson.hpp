// Minimal JSON reader for the anomaly IDS (DESIGN.md §14).
//
// The trainer consumes two JSON dialects the repo itself emits — the
// TraceLog's JSONL export and the BehaviorProfile interchange format —
// so this parser covers exactly RFC 8259 minus float exponent corner
// cases the exporters never produce. It exists because the tree has no
// external JSON dependency and the obs exporters are write-only; keep
// it boring and allocation-heavy, it only runs offline (training) or
// once at startup (profile load), never on a simulated hot path.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace tmg::ids::minijson {

class Value {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;  // insertion order

  [[nodiscard]] bool is_object() const { return kind == Kind::Object; }
  [[nodiscard]] bool is_array() const { return kind == Kind::Array; }
  [[nodiscard]] bool is_string() const { return kind == Kind::String; }
  [[nodiscard]] bool is_number() const { return kind == Kind::Number; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* get(const std::string& key) const;
  /// Typed member shortcuts (fallback when absent / wrong type).
  [[nodiscard]] std::string get_string(const std::string& key,
                                       std::string fallback = "") const;
  [[nodiscard]] double get_number(const std::string& key,
                                  double fallback = 0.0) const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback = 0) const;
};

/// Parse one JSON document. On failure returns nullopt and, when
/// `error` is non-null, a one-line description with a byte offset.
std::optional<Value> parse(const std::string& text, std::string* error);

}  // namespace tmg::ids::minijson
