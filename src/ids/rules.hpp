// IDS detection rules (Snort + Proofpoint ET surrogate, paper Sec. V-B2).
//
// Three rules model the detection landscape the paper measured:
//  * TCP SYN scans: zero-data SYN probes above 2 per second alert
//    (Proofpoint ET ruleset behavior).
//  * ICMP sweeps: sustained echo-request rates alert (standard Snort).
//  * ARP: only network-wide discovery floods (many distinct targets)
//    alert; targeted ARP liveness pings never do — matching the paper's
//    finding that neither Snort nor Bro detects ARP scanning.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace tmg::ids {

struct IdsAlert {
  sim::SimTime time;
  std::string rule;
  std::string message;
  net::Ipv4Address offender;
};

/// A detection rule. Implementations are fed every monitored packet and
/// report alerts through the sink callback.
class Rule {
 public:
  using AlertSink = std::function<void(IdsAlert)>;

  virtual ~Rule() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual void on_packet(sim::SimTime now, const net::Packet& pkt,
                         const AlertSink& sink) = 0;
};

/// ET SCAN-style rule: more than `max_per_window` zero-data TCP SYNs
/// from one source within `window`.
class TcpSynScanRule final : public Rule {
 public:
  explicit TcpSynScanRule(double max_per_second = 2.0,
                          sim::Duration window = sim::Duration::seconds(1));
  [[nodiscard]] std::string name() const override { return "ET_SCAN_SYN"; }
  void on_packet(sim::SimTime now, const net::Packet& pkt,
                 const AlertSink& sink) override;

 private:
  double max_per_second_;
  sim::Duration window_;
  std::unordered_map<net::Ipv4Address, std::deque<sim::SimTime>> history_;
};

/// Sustained ICMP echo-request rate from one source.
class IcmpSweepRule final : public Rule {
 public:
  explicit IcmpSweepRule(double max_per_second = 2.0,
                         sim::Duration window = sim::Duration::seconds(1));
  [[nodiscard]] std::string name() const override { return "ICMP_SWEEP"; }
  void on_packet(sim::SimTime now, const net::Packet& pkt,
                 const AlertSink& sink) override;

 private:
  double max_per_second_;
  sim::Duration window_;
  std::unordered_map<net::Ipv4Address, std::deque<sim::SimTime>> history_;
};

/// ARP discovery flood: many *distinct* target IPs from one source in a
/// window. A targeted liveness probe (one repeated target) never fires.
class ArpDiscoveryFloodRule final : public Rule {
 public:
  explicit ArpDiscoveryFloodRule(
      std::size_t max_distinct_targets = 20,
      sim::Duration window = sim::Duration::seconds(5));
  [[nodiscard]] std::string name() const override { return "ARP_DISCOVERY"; }
  void on_packet(sim::SimTime now, const net::Packet& pkt,
                 const AlertSink& sink) override;

 private:
  struct SourceState {
    std::deque<std::pair<sim::SimTime, net::Ipv4Address>> recent;
  };
  std::size_t max_distinct_;
  sim::Duration window_;
  std::unordered_map<net::Ipv4Address, SourceState> history_;
};

}  // namespace tmg::ids
