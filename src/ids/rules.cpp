#include "ids/rules.hpp"

namespace tmg::ids {

namespace {

/// Push `now` into a per-source deque, prune entries older than
/// `window`, and return the surviving count.
std::size_t rate_update(std::deque<sim::SimTime>& q, sim::SimTime now,
                        sim::Duration window) {
  q.push_back(now);
  // Half-open window: an event exactly `window` old has rotated out, so
  // a steady rate of exactly max_per_second never alerts ("above 2
  // scans per second", paper Sec. V-B2).
  while (!q.empty() && now - q.front() >= window) q.pop_front();
  return q.size();
}

}  // namespace

TcpSynScanRule::TcpSynScanRule(double max_per_second, sim::Duration window)
    : max_per_second_{max_per_second}, window_{window} {}

void TcpSynScanRule::on_packet(sim::SimTime now, const net::Packet& pkt,
                               const AlertSink& sink) {
  const auto* tcp = pkt.tcp();
  if (!tcp || !pkt.ip) return;
  // Zero-data SYN probes are the scan signature; SYNs that carry decoy
  // data (nmap's evasion mode) do not match the rule.
  if (!(tcp->flags.syn && !tcp->flags.ack) || tcp->data_len > 0) return;
  auto& q = history_[pkt.ip->src];
  const std::size_t n = rate_update(q, now, window_);
  const double allowed = max_per_second_ * window_.to_seconds_f();
  if (static_cast<double>(n) > allowed) {
    sink(IdsAlert{now, name(),
                  "zero-data SYN rate above " +
                      std::to_string(max_per_second_) + "/s from " +
                      pkt.ip->src.to_string(),
                  pkt.ip->src});
    q.clear();  // re-arm after alert
  }
}

IcmpSweepRule::IcmpSweepRule(double max_per_second, sim::Duration window)
    : max_per_second_{max_per_second}, window_{window} {}

void IcmpSweepRule::on_packet(sim::SimTime now, const net::Packet& pkt,
                              const AlertSink& sink) {
  const auto* icmp = pkt.icmp();
  if (!icmp || !pkt.ip) return;
  if (icmp->type != net::IcmpPayload::Type::EchoRequest) return;
  auto& q = history_[pkt.ip->src];
  const std::size_t n = rate_update(q, now, window_);
  const double allowed = max_per_second_ * window_.to_seconds_f();
  if (static_cast<double>(n) > allowed) {
    sink(IdsAlert{now, name(),
                  "ICMP echo-request rate above " +
                      std::to_string(max_per_second_) + "/s from " +
                      pkt.ip->src.to_string(),
                  pkt.ip->src});
    q.clear();
  }
}

ArpDiscoveryFloodRule::ArpDiscoveryFloodRule(std::size_t max_distinct_targets,
                                             sim::Duration window)
    : max_distinct_{max_distinct_targets}, window_{window} {}

void ArpDiscoveryFloodRule::on_packet(sim::SimTime now,
                                      const net::Packet& pkt,
                                      const AlertSink& sink) {
  const auto* arp = pkt.arp();
  if (!arp || arp->op != net::ArpPayload::Op::Request) return;
  auto& state = history_[arp->sender_ip];
  state.recent.emplace_back(now, arp->target_ip);
  while (!state.recent.empty() &&
         now - state.recent.front().first > window_) {
    state.recent.pop_front();
  }
  std::unordered_set<net::Ipv4Address> distinct;
  for (const auto& [_, target] : state.recent) distinct.insert(target);
  if (distinct.size() > max_distinct_) {
    sink(IdsAlert{now, name(),
                  "ARP discovery flood (" + std::to_string(distinct.size()) +
                      " distinct targets) from " + arp->sender_ip.to_string(),
                  arp->sender_ip});
    state.recent.clear();
  }
}

}  // namespace tmg::ids
