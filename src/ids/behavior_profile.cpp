#include "ids/behavior_profile.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "ids/minijson.hpp"

namespace tmg::ids {

namespace {

/// The controller's virtual identity (Controller::ip()). Packet-Ins the
/// core consumes before the anomaly slot — probe replies addressed to
/// this IP and ARP requests resolving it — must be filtered from traces
/// to keep the offline feature stream identical to the online one.
constexpr const char* kControllerIpSuffix = "-> 10.255.255.254";

/// in_port values at or above the reserved-port range never reach the
/// anomaly slot (bounced LLI probes arrive as of::kPortController).
constexpr std::uint16_t kReservedPortFloor = 0xfffb;

bool starts_with(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  out += buf;
}

/// "PktArp>PktIp" / "Start>PktArp>PktIp" transition labels.
std::string bigram_label(std::uint32_t key) {
  const auto prev = static_cast<Symbol>(key / kSymbolCount);
  const auto cur = static_cast<Symbol>(key % kSymbolCount);
  return std::string{to_string(prev)} + ">" + to_string(cur);
}

std::string trigram_label(std::uint32_t key) {
  const auto cur = static_cast<Symbol>(key % kSymbolCount);
  return bigram_label(key / kSymbolCount) + ">" + to_string(cur);
}

std::optional<std::uint32_t> bigram_key_from_label(const std::string& label) {
  const std::size_t sep = label.find('>');
  if (sep == std::string::npos) return std::nullopt;
  const auto prev = symbol_from_string(label.substr(0, sep));
  const auto cur = symbol_from_string(label.substr(sep + 1));
  if (!prev || !cur) return std::nullopt;
  return bigram_key(*prev, *cur);
}

std::optional<std::uint32_t> trigram_key_from_label(
    const std::string& label) {
  const std::size_t s1 = label.find('>');
  if (s1 == std::string::npos) return std::nullopt;
  const std::size_t s2 = label.find('>', s1 + 1);
  if (s2 == std::string::npos) return std::nullopt;
  const auto p2 = symbol_from_string(label.substr(0, s1));
  const auto p1 = symbol_from_string(label.substr(s1 + 1, s2 - s1 - 1));
  const auto cur = symbol_from_string(label.substr(s2 + 1));
  if (!p2 || !p1 || !cur) return std::nullopt;
  return trigram_key(*p2, *p1, *cur);
}

}  // namespace

const char* to_string(Symbol s) {
  switch (s) {
    case Symbol::Start: return "Start";
    case Symbol::PktArp: return "PktArp";
    case Symbol::PktIp: return "PktIp";
    case Symbol::PktLldp: return "PktLldp";
    case Symbol::PktOther: return "PktOther";
    case Symbol::PortUp: return "PortUp";
    case Symbol::PortDown: return "PortDown";
    case Symbol::HostNew: return "HostNew";
    case Symbol::HostMoved: return "HostMoved";
    case Symbol::LinkRemoved: return "LinkRemoved";
  }
  return "Unknown";
}

std::optional<Symbol> symbol_from_string(const std::string& name) {
  for (std::size_t i = 0; i < kSymbolCount; ++i) {
    const auto s = static_cast<Symbol>(i);
    if (name == to_string(s)) return s;
  }
  return std::nullopt;
}

PortKey port_key(of::Location loc) {
  return stats::FlowStats::port_key(loc.dpid, loc.port);
}

of::Location port_key_location(PortKey key) {
  return of::Location{key >> 16, static_cast<of::PortNo>(key & 0xffff)};
}

std::string port_key_to_string(PortKey key) {
  return port_key_location(key).to_string();
}

std::optional<PortKey> port_key_from_string(const std::string& text) {
  if (!starts_with(text, "0x")) return std::nullopt;
  char* end = nullptr;
  const unsigned long long dpid = std::strtoull(text.c_str() + 2, &end, 16);
  if (end == text.c_str() + 2 || *end != ':') return std::nullopt;
  const char* port_begin = end + 1;
  const unsigned long port = std::strtoul(port_begin, &end, 10);
  if (end == port_begin || *end != '\0' || port > 0xffff) return std::nullopt;
  return stats::FlowStats::port_key(dpid, static_cast<std::uint16_t>(port));
}

bool BehaviorProfile::has_bigram(PortKey port, Symbol prev,
                                 Symbol cur) const {
  const auto it = ports.find(port);
  return it != ports.end() &&
         it->second.bigrams.count(bigram_key(prev, cur)) != 0;
}

std::string BehaviorProfile::to_json() const {
  std::string out = "{\"format\":\"tmg-behavior-profile-v1\",\"trials\":";
  append_u64(out, trials);
  out += ",\"events\":";
  append_u64(out, events);
  out += ",\"ports\":[";
  bool first_port = true;
  for (const auto& [key, p] : ports) {
    if (!first_port) out += ",";
    first_port = false;
    out += "{\"port\":\"" + port_key_to_string(key) + "\",\"events\":";
    append_u64(out, p.events);
    out += ",\"peak_rate_per_s\":";
    append_u64(out, p.peak_rate_per_s);
    out += ",\"mean_rate_per_s\":";
    append_double(out, p.mean_rate_per_s);
    out += ",\"bigrams\":{";
    bool first = true;
    for (const auto& [k, n] : p.bigrams) {
      if (!first) out += ",";
      first = false;
      out += "\"" + bigram_label(k) + "\":";
      append_u64(out, n);
    }
    out += "},\"trigrams\":{";
    first = true;
    for (const auto& [k, n] : p.trigrams) {
      if (!first) out += ",";
      first = false;
      out += "\"" + trigram_label(k) + "\":";
      append_u64(out, n);
    }
    out += "},\"lldp_srcs\":[";
    first = true;
    for (const PortKey src : p.lldp_srcs) {
      if (!first) out += ",";
      first = false;
      out += "\"" + port_key_to_string(src) + "\"";
    }
    out += "]}";
  }
  out += "],\"durations\":[";
  bool first_dur = true;
  for (const auto& [kind, d] : durations) {
    if (!first_dur) out += ",";
    first_dur = false;
    out += "{\"kind\":\"" + kind + "\",\"count\":";
    append_u64(out, d.count);
    out += ",\"p50_ns\":";
    append_double(out, d.p50_ns);
    out += ",\"p90_ns\":";
    append_double(out, d.p90_ns);
    out += ",\"p99_ns\":";
    append_double(out, d.p99_ns);
    out += ",\"max_ns\":";
    append_double(out, d.max_ns);
    out += "}";
  }
  out += "]}";
  return out;
}

std::optional<BehaviorProfile> BehaviorProfile::from_json(
    const std::string& text, std::string* error) {
  const auto fail =
      [&](const std::string& msg) -> std::optional<BehaviorProfile> {
    if (error != nullptr && error->empty()) *error = msg;
    return std::nullopt;
  };
  const auto doc = minijson::parse(text, error);
  if (!doc) return std::nullopt;
  if (!doc->is_object()) return fail("profile: not a JSON object");
  if (doc->get_string("format") != "tmg-behavior-profile-v1") {
    return fail("profile: unknown format (want tmg-behavior-profile-v1)");
  }
  BehaviorProfile profile;
  profile.trials = doc->get_u64("trials");
  profile.events = doc->get_u64("events");
  const minijson::Value* ports = doc->get("ports");
  if (ports == nullptr || !ports->is_array()) {
    return fail("profile: missing \"ports\" array");
  }
  for (const auto& entry : ports->array) {
    if (!entry.is_object()) return fail("profile: port entry not an object");
    const auto key = port_key_from_string(entry.get_string("port"));
    if (!key) {
      return fail("profile: bad port key \"" + entry.get_string("port") +
                  "\"");
    }
    PortProfile p;
    p.events = entry.get_u64("events");
    p.peak_rate_per_s = entry.get_u64("peak_rate_per_s");
    p.mean_rate_per_s = entry.get_number("mean_rate_per_s");
    if (const minijson::Value* bi = entry.get("bigrams");
        bi != nullptr && bi->is_object()) {
      for (const auto& [label, count] : bi->object) {
        const auto k = bigram_key_from_label(label);
        if (!k) return fail("profile: bad bigram label \"" + label + "\"");
        if (!count.is_number()) {
          return fail("profile: bigram count not a number");
        }
        p.bigrams[*k] = static_cast<std::uint64_t>(count.number);
      }
    }
    if (const minijson::Value* tri = entry.get("trigrams");
        tri != nullptr && tri->is_object()) {
      for (const auto& [label, count] : tri->object) {
        const auto k = trigram_key_from_label(label);
        if (!k) return fail("profile: bad trigram label \"" + label + "\"");
        if (!count.is_number()) {
          return fail("profile: trigram count not a number");
        }
        p.trigrams[*k] = static_cast<std::uint64_t>(count.number);
      }
    }
    if (const minijson::Value* srcs = entry.get("lldp_srcs");
        srcs != nullptr && srcs->is_array()) {
      for (const auto& src : srcs->array) {
        if (!src.is_string()) return fail("profile: lldp_src not a string");
        const auto sk = port_key_from_string(src.string);
        if (!sk) return fail("profile: bad lldp_src \"" + src.string + "\"");
        p.lldp_srcs.insert(*sk);
      }
    }
    profile.ports[*key] = std::move(p);
  }
  if (const minijson::Value* durs = doc->get("durations");
      durs != nullptr && durs->is_array()) {
    for (const auto& entry : durs->array) {
      if (!entry.is_object()) {
        return fail("profile: duration entry not an object");
      }
      const std::string kind = entry.get_string("kind");
      if (kind.empty()) return fail("profile: duration entry without kind");
      DurationEnvelope d;
      d.count = entry.get_u64("count");
      d.p50_ns = entry.get_number("p50_ns");
      d.p90_ns = entry.get_number("p90_ns");
      d.p99_ns = entry.get_number("p99_ns");
      d.max_ns = entry.get_number("max_ns");
      profile.durations[kind] = d;
    }
  }
  return profile;
}

// ---------------------------------------------------------------------
// Featurization (the DESIGN.md §14 contract)
// ---------------------------------------------------------------------

std::optional<FeaturizedInstant> featurize_ctrl_instant(
    const std::string& name, const std::string& detail,
    const std::string& loc) {
  FeaturizedInstant out;
  const auto with_loc = [&](Symbol s) -> std::optional<FeaturizedInstant> {
    const auto key = port_key_from_string(loc);
    if (!key) return std::nullopt;
    if ((*key & 0xffff) >= kReservedPortFloor) return std::nullopt;
    out.symbol = s;
    out.ports[0] = *key;
    out.port_count = 1;
    return out;
  };
  if (name == "PACKET_IN") {
    if (starts_with(detail, "ARP ")) {
      // Requests resolving the controller's identity are answered (and
      // stopped) by the core listener; the anomaly slot never sees them.
      if (starts_with(detail, "ARP who-has ") &&
          ends_with(detail, kControllerIpSuffix)) {
        return std::nullopt;
      }
      return with_loc(Symbol::PktArp);
    }
    if (starts_with(detail, "ICMP ")) {
      // Probe replies to the controller are consumed by the core.
      if (detail.find("echo-rep") != std::string::npos &&
          ends_with(detail, kControllerIpSuffix)) {
        return std::nullopt;
      }
      return with_loc(Symbol::PktIp);
    }
    if (starts_with(detail, "TCP ")) return with_loc(Symbol::PktIp);
    if (starts_with(detail, "LLDP ")) {
      auto f = with_loc(Symbol::PktLldp);
      if (!f) return std::nullopt;
      // "LLDP chassis=0x<hex> port=<dec>..." — the advertised source.
      const std::size_t chassis = detail.find("chassis=0x");
      const std::size_t port = detail.find(" port=");
      if (chassis != std::string::npos && port != std::string::npos) {
        char* end = nullptr;
        const unsigned long long dpid =
            std::strtoull(detail.c_str() + chassis + 10, &end, 16);
        const unsigned long p =
            std::strtoul(detail.c_str() + port + 6, nullptr, 10);
        if (end != detail.c_str() + chassis + 10 && p <= 0xffff) {
          f->lldp_src =
              stats::FlowStats::port_key(dpid, static_cast<std::uint16_t>(p));
        }
      }
      return f;
    }
    return with_loc(Symbol::PktOther);
  }
  if (name == "PORT_UP") return with_loc(Symbol::PortUp);
  if (name == "PORT_DOWN") return with_loc(Symbol::PortDown);
  if (name == "HOST_NEW") return with_loc(Symbol::HostNew);
  if (name == "HOST_MOVED") return with_loc(Symbol::HostMoved);
  if (name == "LINK_REMOVED") {
    // detail: "<a><-><b> (<reason>)" — attribute to both endpoints (the
    // online hook sees the whole topo::Link; the instant's loc names
    // only one side).
    const std::size_t sep = detail.find("<->");
    if (sep == std::string::npos) return std::nullopt;
    const std::size_t space = detail.find(' ', sep + 3);
    const auto a = port_key_from_string(detail.substr(0, sep));
    const auto b = port_key_from_string(
        space == std::string::npos ? detail.substr(sep + 3)
                                   : detail.substr(sep + 3, space - sep - 3));
    if (!a || !b) return std::nullopt;
    out.symbol = Symbol::LinkRemoved;
    out.ports[0] = *a;
    out.ports[1] = *b;
    out.port_count = 2;
    return out;
  }
  return std::nullopt;
}

// ---------------------------------------------------------------------
// ProfileTrainer
// ---------------------------------------------------------------------

ProfileTrainer::ProfileTrainer() = default;

void ProfileTrainer::begin_trial() {
  ++trials_;
  trial_max_ = sim::SimTime{};
  for (auto& [key, state] : ports_) {
    state.s1 = Symbol::Start;
    state.s2 = Symbol::Start;
    state.peak = std::max(state.peak, state.in_bucket);
    state.bucket = -1;
    state.in_bucket = 0;
  }
}

void ProfileTrainer::end_trial() {
  for (auto& [key, state] : ports_) {
    state.peak = std::max(state.peak, state.in_bucket);
    state.bucket = -1;
    state.in_bucket = 0;
  }
  total_seconds_ += trial_max_.to_seconds_f();
  trial_max_ = sim::SimTime{};
}

void ProfileTrainer::observe(PortKey port, Symbol s, sim::SimTime at) {
  PortState& state = ports_[port];
  state.acc.bigrams[bigram_key(state.s1, s)] += 1;
  state.acc.trigrams[trigram_key(state.s2, state.s1, s)] += 1;
  state.s2 = state.s1;
  state.s1 = s;
  state.acc.events += 1;
  ++events_;
  const std::int64_t bucket = at.count_nanos() / 1'000'000'000;
  if (bucket != state.bucket) {
    state.peak = std::max(state.peak, state.in_bucket);
    state.bucket = bucket;
    state.in_bucket = 0;
  }
  state.in_bucket += 1;
  state.peak = std::max(state.peak, state.in_bucket);
  rates_.record(port >> 16, port, 1);
  if (at.count_nanos() > trial_max_.count_nanos()) trial_max_ = at;
}

void ProfileTrainer::observe_lldp_src(PortKey dst_port, PortKey src_port) {
  ports_[dst_port].acc.lldp_srcs.insert(src_port);
}

void ProfileTrainer::observe_duration(const std::string& kind,
                                      std::uint64_t ns) {
  auto [it, inserted] = durations_.try_emplace(kind);
  DurationAcc& acc = it->second;
  const auto v = static_cast<double>(ns);
  acc.p50.add(v);
  acc.p90.add(v);
  acc.p99.add(v);
  acc.max_ns = std::max(acc.max_ns, v);
  acc.count += 1;
}

bool ProfileTrainer::add_trace_jsonl(const std::string& jsonl,
                                     std::string* error) {
  begin_trial();
  std::istringstream in{jsonl};
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::string parse_error;
    const auto rec = minijson::parse(line, &parse_error);
    if (!rec || !rec->is_object()) {
      if (error != nullptr) {
        *error = "line " + std::to_string(lineno) + ": " +
                 (parse_error.empty() ? "not a JSON object" : parse_error);
      }
      return false;
    }
    const std::string ph = rec->get_string("ph");
    const std::string cat = rec->get_string("cat");
    const minijson::Value* args = rec->get("args");
    if (ph == "instant" && cat == "ctrl") {
      const std::string name = rec->get_string("name");
      const std::string detail =
          args != nullptr ? args->get_string("detail") : "";
      const std::string loc = args != nullptr ? args->get_string("loc") : "";
      const auto f = featurize_ctrl_instant(name, detail, loc);
      if (!f) continue;
      const auto at =
          sim::SimTime::from_nanos(static_cast<std::int64_t>(
              rec->get_number("t_ns")));
      for (std::size_t i = 0; i < f->port_count; ++i) {
        observe(f->ports[i], f->symbol, at);
      }
      if (f->lldp_src) observe_lldp_src(f->ports[0], *f->lldp_src);
      continue;
    }
    if (ph == "span" && cat == "lldp" && rec->get_string("name") == "rtt" &&
        args != nullptr && args->get_string("outcome") == "matched") {
      const minijson::Value* t1 = rec->get("t1_ns");
      if (t1 == nullptr || !t1->is_number()) continue;
      const double t0 = rec->get_number("t0_ns");
      if (t1->number < t0) continue;
      observe_duration("lldp.rtt",
                       static_cast<std::uint64_t>(t1->number - t0));
      const auto at = sim::SimTime::from_nanos(
          static_cast<std::int64_t>(t1->number));
      if (at.count_nanos() > trial_max_.count_nanos()) trial_max_ = at;
    }
  }
  end_trial();
  return true;
}

BehaviorProfile ProfileTrainer::finalize() const {
  BehaviorProfile profile;
  profile.trials = trials_;
  profile.events = events_;
  for (const auto& [key, state] : ports_) {
    PortProfile p = state.acc;
    p.peak_rate_per_s = std::max(state.peak, state.in_bucket);
    const stats::FlowStats::Cell* cell = rates_.find_port(key);
    const double open_span = trial_max_.to_seconds_f();
    const double seconds = total_seconds_ + open_span;
    p.mean_rate_per_s =
        cell != nullptr && seconds > 0.0
            ? static_cast<double>(cell->packets) / seconds
            : 0.0;
    profile.ports[key] = std::move(p);
  }
  for (const auto& [kind, acc] : durations_) {
    DurationEnvelope d;
    d.count = acc.count;
    if (acc.count > 0) {
      d.p50_ns = acc.p50.value();
      d.p90_ns = acc.p90.value();
      d.p99_ns = acc.p99.value();
      d.max_ns = acc.max_ns;
    }
    profile.durations[kind] = d;
  }
  return profile;
}

}  // namespace tmg::ids
