// Learned control-plane behavior profiles (DESIGN.md §14).
//
// A BehaviorProfile is the trained baseline the anomaly IDS scores
// against: per-(switch,port) message-symbol transition tables (bigram
// and trigram counts over the pre-commit pipeline event stream), the
// set of LLDP source ports ever seen arriving at each port, per-port
// rate envelopes, and per-span-kind duration quantiles. Profiles are
// deterministic — training the same trials in the same order yields a
// byte-identical JSON serialization — and controller-profile specific
// (ONOS's event-triggered probing is normal for ONOS, anomalous for
// Floodlight).
//
// The same ProfileTrainer backs both training paths:
//   - in-process: ProfileAnomalyService in Train mode forwards its live
//     featurization straight into a trainer, so online and trained
//     feature streams are identical by construction;
//   - offline: add_trace_jsonl() replays a TraceLog JSONL export
//     (tools/train_profile), reproducing the online featurization from
//     the "ctrl" instants — the featurization contract in DESIGN.md §14
//     pins the two paths to each other, and tests/anomaly_ids_test.cpp
//     asserts they produce the same profile.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "of/messages.hpp"
#include "sim/time.hpp"
#include "stats/flow_stats.hpp"
#include "stats/streaming_quantile.hpp"

namespace tmg::ids {

/// Alphabet of the per-port message-sequence model. Start is the
/// virtual sequence anchor (a port's first event forms the bigram
/// Start -> first). Packet-Ins the controller core consumes before the
/// anomaly slot (probe replies, controller-identity ARP, bounced LLI
/// probes) are NOT part of the alphabet — the online listener never
/// sees them, and the offline trainer filters them from traces.
enum class Symbol : std::uint8_t {
  Start = 0,
  PktArp,      // ARP Packet-In
  PktIp,       // ICMP/TCP Packet-In
  PktLldp,     // LLDP Packet-In
  PktOther,    // raw/unclassified Packet-In
  PortUp,
  PortDown,
  HostNew,
  HostMoved,
  LinkRemoved,
};
inline constexpr std::size_t kSymbolCount = 10;

const char* to_string(Symbol s);
std::optional<Symbol> symbol_from_string(const std::string& name);

/// (dpid << 16) | port — the stats::FlowStats cell packing.
using PortKey = std::uint64_t;
[[nodiscard]] PortKey port_key(of::Location loc);
[[nodiscard]] of::Location port_key_location(PortKey key);
/// "0x<dpid hex>:<port>", matching of::Location::to_string().
[[nodiscard]] std::string port_key_to_string(PortKey key);
[[nodiscard]] std::optional<PortKey> port_key_from_string(
    const std::string& text);

/// Transition-table keys: bigram prev->cur, trigram p2->p1->cur.
[[nodiscard]] constexpr std::uint32_t bigram_key(Symbol prev, Symbol cur) {
  return static_cast<std::uint32_t>(prev) * kSymbolCount +
         static_cast<std::uint32_t>(cur);
}
[[nodiscard]] constexpr std::uint32_t trigram_key(Symbol p2, Symbol p1,
                                                  Symbol cur) {
  return bigram_key(p2, p1) * kSymbolCount + static_cast<std::uint32_t>(cur);
}

/// Baseline for one (switch, port).
struct PortProfile {
  std::map<std::uint32_t, std::uint64_t> bigrams;
  std::map<std::uint32_t, std::uint64_t> trigrams;
  /// LLDP source (chassis, port) keys ever seen arriving here.
  std::set<PortKey> lldp_srcs;
  std::uint64_t events = 0;
  /// Busiest one-second sim-time bucket across all training trials.
  std::uint64_t peak_rate_per_s = 0;
  double mean_rate_per_s = 0.0;
};

/// Trained quantile snapshot for one span kind (e.g. "lldp.rtt").
struct DurationEnvelope {
  std::uint64_t count = 0;
  double p50_ns = 0.0;
  double p90_ns = 0.0;
  double p99_ns = 0.0;
  double max_ns = 0.0;
};

struct BehaviorProfile {
  std::map<PortKey, PortProfile> ports;
  std::map<std::string, DurationEnvelope> durations;
  std::uint64_t trials = 0;
  std::uint64_t events = 0;

  [[nodiscard]] bool has_bigram(PortKey port, Symbol prev, Symbol cur) const;

  /// Byte-stable interchange format ("tmg-behavior-profile-v1"): maps
  /// sorted by key, symbols spelled out, %.9g doubles. Round-trips
  /// through from_json exactly (tools/check_trace_schema.py --profile
  /// validates the same shape).
  [[nodiscard]] std::string to_json() const;
  static std::optional<BehaviorProfile> from_json(const std::string& text,
                                                  std::string* error);
};

/// Accumulates clean-run feature streams into a BehaviorProfile.
/// Deterministic: the finalized profile is a pure function of the
/// observe() call sequence (StreamingQuantile merge order never arises
/// — a trainer is fed serially).
class ProfileTrainer {
 public:
  ProfileTrainer();

  /// Start a new clean trial: sequence anchors and rate buckets reset,
  /// accumulated tables persist.
  void begin_trial();
  /// Close the current trial, crediting its sim-time span to the mean
  /// rate denominators. add_trace_jsonl() brackets itself.
  void end_trial();

  void observe(PortKey port, Symbol s, sim::SimTime at);
  void observe_lldp_src(PortKey dst_port, PortKey src_port);
  void observe_duration(const std::string& kind, std::uint64_t ns);

  /// Replay one clean trial from a TraceLog JSONL export. Applies the
  /// featurization contract (DESIGN.md §14): "ctrl" instants become
  /// symbols, controller-consumed Packet-Ins are filtered, LinkRemoved
  /// is attributed to both endpoints, matched "lldp/rtt" spans feed the
  /// duration envelope. Returns false (with `error`) on malformed
  /// input; unknown records are skipped, not errors.
  bool add_trace_jsonl(const std::string& jsonl, std::string* error);

  [[nodiscard]] std::uint64_t trials() const { return trials_; }
  [[nodiscard]] std::uint64_t events() const { return events_; }

  [[nodiscard]] BehaviorProfile finalize() const;

 private:
  struct PortState {
    Symbol s1 = Symbol::Start;  // previous symbol
    Symbol s2 = Symbol::Start;  // symbol before that
    std::int64_t bucket = -1;   // current one-second bucket index
    std::uint64_t in_bucket = 0;
    std::uint64_t peak = 0;
    PortProfile acc;
  };
  struct DurationAcc {
    stats::StreamingQuantile p50{0.5};
    stats::StreamingQuantile p90{0.9};
    stats::StreamingQuantile p99{0.99};
    double max_ns = 0.0;
    std::uint64_t count = 0;
  };

  std::map<PortKey, PortState> ports_;
  std::map<std::string, DurationAcc> durations_;
  stats::FlowStats rates_;  // per-port event totals (mean-rate numerator)
  std::uint64_t trials_ = 0;
  std::uint64_t events_ = 0;
  sim::SimTime trial_max_;       // latest timestamp seen this trial
  double total_seconds_ = 0.0;   // closed trials' summed spans
};

/// Featurization of one "ctrl" trace instant, shared by the offline
/// trainer and the schema tests. Returns nullopt for instants outside
/// the alphabet or filtered by the controller-consumption rules.
/// LinkRemoved yields two ports (both endpoints); everything else one.
struct FeaturizedInstant {
  Symbol symbol = Symbol::Start;
  PortKey ports[2] = {0, 0};
  std::size_t port_count = 0;
  /// For LLDP Packet-Ins: the advertised (chassis, port) source.
  std::optional<PortKey> lldp_src;
};
std::optional<FeaturizedInstant> featurize_ctrl_instant(
    const std::string& name, const std::string& detail,
    const std::string& loc);

}  // namespace tmg::ids
