#include "ids/minijson.hpp"

#include <cctype>
#include <cstdlib>

namespace tmg::ids::minijson {

const Value* Value::get(const std::string& key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string Value::get_string(const std::string& key,
                              std::string fallback) const {
  const Value* v = get(key);
  return v != nullptr && v->kind == Kind::String ? v->string
                                                 : std::move(fallback);
}

double Value::get_number(const std::string& key, double fallback) const {
  const Value* v = get(key);
  return v != nullptr && v->kind == Kind::Number ? v->number : fallback;
}

std::uint64_t Value::get_u64(const std::string& key,
                             std::uint64_t fallback) const {
  const Value* v = get(key);
  if (v == nullptr || v->kind != Kind::Number || v->number < 0) {
    return fallback;
  }
  return static_cast<std::uint64_t>(v->number);
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_{text}, error_{error} {}

  std::optional<Value> run() {
    skip_ws();
    Value v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      return std::nullopt;
    }
    return v;
  }

 private:
  void fail(const std::string& msg) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = msg + " at byte " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(const char* word, std::size_t len) {
    if (text_.compare(pos_, len, word) != 0) {
      fail(std::string{"expected '"} + word + "'");
      return false;
    }
    pos_ += len;
    return true;
  }

  bool parse_value(Value& out) {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return false;
    }
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"':
        out.kind = Value::Kind::String;
        return parse_string(out.string);
      case 't':
        out.kind = Value::Kind::Bool;
        out.boolean = true;
        return literal("true", 4);
      case 'f':
        out.kind = Value::Kind::Bool;
        out.boolean = false;
        return literal("false", 5);
      case 'n':
        out.kind = Value::Kind::Null;
        return literal("null", 4);
      default: return parse_number(out);
    }
  }

  bool parse_object(Value& out) {
    out.kind = Value::Kind::Object;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        fail("expected ':' in object");
        return false;
      }
      ++pos_;
      skip_ws();
      Value member;
      if (!parse_value(member)) return false;
      out.object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (pos_ >= text_.size()) {
        fail("unterminated object");
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      fail("expected ',' or '}' in object");
      return false;
    }
  }

  bool parse_array(Value& out) {
    out.kind = Value::Kind::Array;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      Value element;
      if (!parse_value(element)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (pos_ >= text_.size()) {
        fail("unterminated array");
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      fail("expected ',' or ']' in array");
      return false;
    }
  }

  bool parse_string(std::string& out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      fail("expected string");
      return false;
    }
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c != '\\') {
        out.push_back(c);
        ++pos_;
        continue;
      }
      if (pos_ + 1 >= text_.size()) break;
      const char esc = text_[pos_ + 1];
      pos_ += 2;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // The repo's exporters escape control bytes as \u00XX only;
          // decode the low byte and reject anything wider.
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return false;
          }
          const std::string hex = text_.substr(pos_, 4);
          char* end = nullptr;
          const unsigned long cp = std::strtoul(hex.c_str(), &end, 16);
          if (end != hex.c_str() + 4 || cp > 0xff) {
            fail("unsupported \\u escape");
            return false;
          }
          pos_ += 4;
          out.push_back(static_cast<char>(cp));
          break;
        }
        default: fail("unknown escape"); return false;
      }
    }
    fail("unterminated string");
    return false;
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected value");
      return false;
    }
    const std::string lexeme = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(lexeme.c_str(), &end);
    if (end != lexeme.c_str() + lexeme.size()) {
      fail("malformed number");
      return false;
    }
    out.kind = Value::Kind::Number;
    out.number = v;
    return true;
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Value> parse(const std::string& text, std::string* error) {
  return Parser{text, error}.run();
}

}  // namespace tmg::ids::minijson
