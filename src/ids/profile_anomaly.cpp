#include "ids/profile_anomaly.hpp"

#include <algorithm>

namespace tmg::ids {

namespace {

/// Reserved OpenFlow port range (kPortFlood and up). Packet-Ins from
/// these never reach the anomaly slot (the core consumes bounced
/// probes); the guard keeps the online stream aligned with the offline
/// featurization even if that ever changes.
constexpr std::uint16_t kReservedPortFloor = 0xfffb;

const char* instant_name(int kind) {
  switch (kind) {
    case 0: return "ANOMALY_PORT";
    case 1: return "ANOMALY_TRANSITION";
    case 2: return "ANOMALY_TRIGRAM";
    case 3: return "ANOMALY_LLDP_SRC";
    case 4: return "ANOMALY_RATE";
    case 5: return "ANOMALY_DURATION";
    default: return "ANOMALY";
  }
}

Symbol classify(const net::Packet& pkt) {
  if (pkt.arp() != nullptr) return Symbol::PktArp;
  if (pkt.icmp() != nullptr || pkt.tcp() != nullptr) return Symbol::PktIp;
  if (pkt.lldp() != nullptr) return Symbol::PktLldp;
  return Symbol::PktOther;
}

}  // namespace

ProfileAnomalyService::ProfileAnomalyService(sim::EventLoop& loop,
                                             AnomalyConfig config)
    : loop_{loop}, config_{config} {}

void ProfileAnomalyService::set_observability(obs::Observability* obs) {
  obs_ = obs;
  if (obs_ == nullptr) {
    c_scored_ = c_unseen_port_ = c_unseen_transition_ = c_unseen_trigram_ =
        c_lldp_src_ = c_rate_breach_ = c_duration_outlier_ = c_alerts_ =
            c_vetoes_ = nullptr;
    g_score_ = g_ports_ = nullptr;
    return;
  }
  obs::MetricsRegistry& m = obs_->metrics();
  c_scored_ = &m.counter("ids.anomaly.scored");
  c_unseen_port_ = &m.counter("ids.anomaly.unseen_port");
  c_unseen_transition_ = &m.counter("ids.anomaly.unseen_transition");
  c_unseen_trigram_ = &m.counter("ids.anomaly.unseen_trigram");
  c_lldp_src_ = &m.counter("ids.anomaly.lldp_src");
  c_rate_breach_ = &m.counter("ids.anomaly.rate_breach");
  c_duration_outlier_ = &m.counter("ids.anomaly.duration_outlier");
  c_alerts_ = &m.counter("ids.anomaly.alerts");
  c_vetoes_ = &m.counter("ids.anomaly.vetoes");
  g_score_ = &m.gauge("ids.anomaly.score");
  g_ports_ = &m.gauge("ids.anomaly.ports_tracked");
}

void ProfileAnomalyService::reset() {
  state_.clear();
  alerted_.clear();
  counters_ = AnomalyCounters{};
  if (g_score_ != nullptr) g_score_->set(0.0);
  if (g_ports_ != nullptr) g_ports_->set(0.0);
}

const PortProfile* ProfileAnomalyService::baseline(PortKey port) const {
  if (profile_ == nullptr) return nullptr;
  const auto it = profile_->ports.find(port);
  return it == profile_->ports.end() ? nullptr : &it->second;
}

bool ProfileAnomalyService::deviate(Deviation kind, PortKey port,
                                    std::string message) {
  const int k = static_cast<int>(kind);
  obs::Counter* per_kind = nullptr;
  switch (kind) {
    case Deviation::UnseenPort:
      ++counters_.unseen_port;
      per_kind = c_unseen_port_;
      break;
    case Deviation::UnseenTransition:
      ++counters_.unseen_transition;
      per_kind = c_unseen_transition_;
      break;
    case Deviation::UnseenTrigram:
      ++counters_.unseen_trigram;
      per_kind = c_unseen_trigram_;
      break;
    case Deviation::LldpSrc:
      ++counters_.lldp_src_violation;
      per_kind = c_lldp_src_;
      break;
    case Deviation::RateBreach:
      ++counters_.rate_breach;
      per_kind = c_rate_breach_;
      break;
    case Deviation::DurationOutlier:
      ++counters_.duration_outlier;
      per_kind = c_duration_outlier_;
      break;
  }
  bump(per_kind);
  if (obs_ != nullptr) {
    const obs::SpanId id =
        obs_->trace().instant(loop_.now(), "ids", instant_name(k), message);
    obs_->trace().annotate(id, "loc", port_key_to_string(port));
    if (g_score_ != nullptr) {
      g_score_->set(static_cast<double>(counters_.deviations()));
    }
  }
  const bool alert_grade = kind != Deviation::UnseenTrigram;
  if (alert_grade && alerts_ != nullptr &&
      alerted_.emplace(port, k).second) {
    alerts_->raise(ctrl::Alert{loop_.now(), name(),
                               ctrl::AlertType::AnomalyDeviation,
                               std::move(message),
                               port_key_location(port)});
    ++counters_.alerts;
    bump(c_alerts_);
  }
  return alert_grade;
}

ctrl::Verdict ProfileAnomalyService::score(PortKey port, Symbol sym) {
  if (trainer_ != nullptr) {
    trainer_->observe(port, sym, loop_.now());
    return ctrl::Verdict::Allow;
  }
  if (profile_ == nullptr) return ctrl::Verdict::Allow;
  ++counters_.scored;
  bump(c_scored_);
  const bool fresh_port = state_.count(port) == 0;
  PortState& st = state_[port];
  if (fresh_port && g_ports_ != nullptr) {
    g_ports_->set(static_cast<double>(state_.size()));
  }
  bool flagged = false;
  const PortProfile* base = baseline(port);
  if (base == nullptr) {
    if (config_.alert_unseen_port) {
      flagged |= deviate(Deviation::UnseenPort, port,
                         "event at port with no trained baseline");
    }
  } else {
    if (base->bigrams.count(bigram_key(st.s1, sym)) == 0) {
      flagged |= deviate(
          Deviation::UnseenTransition, port,
          std::string{"unseen transition "} + to_string(st.s1) + ">" +
              to_string(sym));
    } else if (base->trigrams.count(trigram_key(st.s2, st.s1, sym)) == 0) {
      deviate(Deviation::UnseenTrigram, port,
              std::string{"unseen trigram "} + to_string(st.s2) + ">" +
                  to_string(st.s1) + ">" + to_string(sym));
    }
  }
  st.s2 = st.s1;
  st.s1 = sym;

  const std::int64_t bucket = loop_.now().count_nanos() / 1'000'000'000;
  if (bucket != st.bucket) {
    st.bucket = bucket;
    st.in_bucket = 0;
  }
  st.in_bucket += 1;
  if (base != nullptr) {
    const double limit =
        static_cast<double>(base->peak_rate_per_s) * config_.rate_multiplier +
        static_cast<double>(config_.rate_margin);
    if (static_cast<double>(st.in_bucket) > limit) {
      flagged |= deviate(
          Deviation::RateBreach, port,
          "rate envelope breach: " + std::to_string(st.in_bucket) +
              " events/s vs trained peak " +
              std::to_string(base->peak_rate_per_s));
    }
  }
  if (flagged && config_.veto) {
    ++counters_.vetoes;
    bump(c_vetoes_);
    return ctrl::Verdict::Block;
  }
  return ctrl::Verdict::Allow;
}

ctrl::Verdict ProfileAnomalyService::on_packet_in(const of::PacketIn& pi) {
  if (pi.in_port >= kReservedPortFloor) return ctrl::Verdict::Allow;
  const PortKey port = port_key(of::Location{pi.dpid, pi.in_port});
  const Symbol sym = classify(pi.packet);
  ctrl::Verdict v = score(port, sym);
  if (const auto* lldp = pi.packet.lldp(); lldp != nullptr) {
    const PortKey src =
        stats::FlowStats::port_key(lldp->chassis_id(), lldp->port_id());
    if (trainer_ != nullptr) {
      trainer_->observe_lldp_src(port, src);
    } else if (const PortProfile* base = baseline(port);
               base != nullptr && base->lldp_srcs.count(src) == 0) {
      const bool alert_grade = deviate(
          Deviation::LldpSrc, port,
          "LLDP from untrained source " + port_key_to_string(src));
      if (alert_grade && config_.veto) {
        ++counters_.vetoes;
        bump(c_vetoes_);
        v = ctrl::Verdict::Block;
      }
    }
  }
  return v;
}

void ProfileAnomalyService::on_port_status(const of::PortStatus& ps) {
  const PortKey port = port_key(of::Location{ps.dpid, ps.port});
  score(port, ps.reason == of::PortStatus::Reason::Down ? Symbol::PortDown
                                                        : Symbol::PortUp);
}

ctrl::Verdict ProfileAnomalyService::on_lldp_observation(
    const ctrl::LldpObservation& obs) {
  // Sequence symbols come from the LLDP Packet-In itself; the completed
  // observation contributes only the round-trip duration, mirroring the
  // "lldp/rtt" spans the offline trainer reads.
  const auto rtt = obs.received_at - obs.emitted_at;
  if (rtt.count_nanos() <= 0) return ctrl::Verdict::Allow;
  const auto ns = static_cast<std::uint64_t>(rtt.count_nanos());
  if (trainer_ != nullptr) {
    trainer_->observe_duration("lldp.rtt", ns);
    return ctrl::Verdict::Allow;
  }
  if (profile_ == nullptr) return ctrl::Verdict::Allow;
  const auto it = profile_->durations.find("lldp.rtt");
  if (it == profile_->durations.end() || it->second.count == 0) {
    return ctrl::Verdict::Allow;
  }
  const DurationEnvelope& env = it->second;
  const double limit =
      std::max(env.max_ns * config_.duration_multiplier, env.p99_ns);
  if (static_cast<double>(ns) > limit) {
    const PortKey port = port_key(obs.dst);
    const bool alert_grade = deviate(
        Deviation::DurationOutlier, port,
        "lldp.rtt " + std::to_string(ns) + "ns beyond trained envelope");
    if (alert_grade && config_.veto) {
      ++counters_.vetoes;
      bump(c_vetoes_);
      return ctrl::Verdict::Block;
    }
  }
  return ctrl::Verdict::Allow;
}

void ProfileAnomalyService::on_link_removed(const topo::Link& link) {
  score(port_key(link.a), Symbol::LinkRemoved);
  score(port_key(link.b), Symbol::LinkRemoved);
}

ctrl::Verdict ProfileAnomalyService::on_host_event(
    const ctrl::HostEvent& ev) {
  const PortKey port = port_key(ev.new_loc);
  return score(port, ev.kind == ctrl::HostEvent::Kind::New
                         ? Symbol::HostNew
                         : Symbol::HostMoved);
}

}  // namespace tmg::ids
