#include "defense/secure_binding.hpp"

#include <memory>

namespace tmg::defense {

using ctrl::Alert;
using ctrl::AlertType;
using ctrl::Verdict;

SecureBinding::SecureBinding(ctrl::Controller& ctrl,
                             SecureBindingConfig config)
    : ctrl_{ctrl}, config_{std::move(config)} {}

const Enrollment* SecureBinding::authenticated_device(
    of::Location loc) const {
  const auto it = port_device_.find(loc);
  if (it == port_device_.end()) return nullptr;
  const auto reg = config_.registry.find(it->second);
  return reg == config_.registry.end() ? nullptr : &reg->second;
}

Verdict SecureBinding::on_packet_in(const of::PacketIn& pi) {
  const auto maybe_token = net::auth_token_of(pi.packet);
  if (!maybe_token) return Verdict::Allow;
  const std::uint64_t token = *maybe_token;

  const of::Location loc{pi.dpid, pi.in_port};
  if (config_.registry.contains(token)) {
    ++auth_ok_;
    port_device_[loc] = token;
  } else {
    ++auth_fail_;
    ctrl_.alerts().raise(Alert{
        ctrl_.loop().now(), name(), AlertType::SecureBindingViolation,
        "authentication with unknown credential at " + loc.to_string(), loc});
  }
  return Verdict::Allow;
}

void SecureBinding::on_port_status(const of::PortStatus& ps) {
  // A downed port loses its authentication session (the supplicant must
  // re-run 802.1x on link-up, exactly as real deployments behave).
  if (ps.reason == of::PortStatus::Reason::Down) {
    port_device_.erase(of::Location{ps.dpid, ps.port});
  }
}

Verdict SecureBinding::on_host_event(const ctrl::HostEvent& ev) {
  const Enrollment* device = authenticated_device(ev.new_loc);
  const bool identifiers_match =
      device != nullptr && device->mac == ev.mac &&
      (ev.ip == net::Ipv4Address::any() || device->ip == ev.ip);
  if (identifiers_match) return Verdict::Allow;

  ctrl_.alerts().raise(Alert{
      ctrl_.loop().now(), name(), AlertType::SecureBindingViolation,
      device == nullptr
          ? "host " + ev.mac.to_string() + " on unauthenticated port " +
                ev.new_loc.to_string()
          : "identifiers " + ev.mac.to_string() + "/" + ev.ip.to_string() +
                " not bound to credential '" + device->device_name +
                "' on " + ev.new_loc.to_string(),
      ev.new_loc});
  if (config_.block) {
    ++blocked_;
    return Verdict::Block;
  }
  return Verdict::Allow;
}

SecureBinding& install_secure_binding(ctrl::Controller& ctrl,
                                      SecureBindingConfig config) {
  auto module = std::make_unique<SecureBinding>(ctrl, std::move(config));
  SecureBinding& ref = *module;
  ctrl.add_defense(std::move(module));
  ctrl.services().offer("SecureBinding", &ref);
  return ref;
}

}  // namespace tmg::defense
