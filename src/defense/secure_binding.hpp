// Secure identifier binding (paper Sec. VI-A).
//
// The paper's prescribed defense against Port Probing: extend
// 802.1x-style network access control so that a device's *network
// identifiers* (MAC, IP) are cryptographically bound to its credential
// (Jero et al., USENIX Security'17). A port only accepts host bindings
// for identifiers registered to the credential that authenticated on
// that port; an attacker can flap, spoof and win races all it likes —
// it cannot claim the victim's identifiers without the victim's
// credential.
//
// Model: hosts carry an auth token (HostConfig::auth_token) and emit an
// EAPOL-like frame to the 802.1x PAE group address whenever their
// interface comes up. This module consumes those frames, resolves the
// token against its enrollment registry, and records which device is
// authenticated on which port. Host (re)bindings are then vetoed unless
// the claimed MAC belongs to that port's authenticated device.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>

#include "ctrl/controller.hpp"
#include "ctrl/defense_module.hpp"

namespace tmg::defense {

struct Enrollment {
  std::string device_name;
  net::MacAddress mac;
  net::Ipv4Address ip;
};

struct SecureBindingConfig {
  /// token -> enrolled identity (provisioned out of band).
  std::map<std::uint64_t, Enrollment> registry;
  /// Reject bindings on ports with no authenticated device. Disabling
  /// this yields a monitor-only deployment (alerts, no vetoes).
  bool block = true;
};

class SecureBinding : public ctrl::DefenseModule {
 public:
  SecureBinding(ctrl::Controller& ctrl, SecureBindingConfig config);

  [[nodiscard]] std::string name() const override { return "SecureBinding"; }

  ctrl::Verdict on_packet_in(const of::PacketIn& pi) override;
  void on_port_status(const of::PortStatus& ps) override;
  ctrl::Verdict on_host_event(const ctrl::HostEvent& ev) override;

  /// The device currently authenticated on `loc` (nullptr if none).
  [[nodiscard]] const Enrollment* authenticated_device(
      of::Location loc) const;

  [[nodiscard]] std::uint64_t auth_successes() const { return auth_ok_; }
  [[nodiscard]] std::uint64_t auth_failures() const { return auth_fail_; }
  [[nodiscard]] std::uint64_t bindings_blocked() const { return blocked_; }

 private:
  ctrl::Controller& ctrl_;
  SecureBindingConfig config_;
  std::unordered_map<of::Location, std::uint64_t> port_device_;  // -> token
  std::uint64_t auth_ok_ = 0;
  std::uint64_t auth_fail_ = 0;
  std::uint64_t blocked_ = 0;
};

/// Install the module; the registry is usually built from the testbed's
/// legitimate hosts.
SecureBinding& install_secure_binding(ctrl::Controller& ctrl,
                                      SecureBindingConfig config);

}  // namespace tmg::defense
