// Active link verification — a prototype of the "active, dynamic
// defenses" the paper's conclusion argues topology tampering ultimately
// requires (Sec. I, X).
//
// Passive defenses watch what the dataplane volunteers; Port Amnesia
// exploits exactly that. This module instead *challenges* every newly
// advertised link before admitting it: the link is held out of the
// topology while the controller injects nonce-carrying probe frames at
// the claimed source port and times their arrival at the claimed
// destination. A genuine wire returns every probe at wire latency. A
// relay either drops the probes (fails closed) or forwards them and
// unavoidably adds its channel latency (fails the bound) — the same
// physical argument as the LLI, but on-demand, per-link, and without
// requiring calibration history or timestamp TLVs.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "ctrl/controller.hpp"
#include "ctrl/defense_module.hpp"

namespace tmg::defense {

struct ActiveProbeConfig {
  /// Challenge probes per link verification.
  int probes = 3;
  /// Gap between successive probes.
  sim::Duration probe_gap = sim::Duration::millis(50);
  /// The *minimum* of the K probe RTTs must be at or below this. Using
  /// the minimum is the verifier's edge over passive measurement:
  /// queueing micro-bursts are transient (one clean sample suffices),
  /// while a relay's channel latency is a hard floor no sample can
  /// dip under. Set to the deployment's nominal wire latency plus
  /// margin (Fig. 9 wires are 5 ms nominal).
  sim::Duration max_link_latency = sim::Duration::millis(8);
  /// Per-probe loss timeout.
  sim::Duration probe_timeout = sim::Duration::millis(200);
  /// Wait before re-challenging a failed link.
  sim::Duration retry_cooldown = sim::Duration::seconds(60);
};

class ActiveLinkVerifier : public ctrl::DefenseModule {
 public:
  ActiveLinkVerifier(ctrl::Controller& ctrl, ActiveProbeConfig config);

  [[nodiscard]] std::string name() const override { return "ActiveProbe"; }

  ctrl::Verdict on_lldp_observation(const ctrl::LldpObservation& obs) override;
  ctrl::Verdict on_packet_in(const of::PacketIn& pi) override;
  void on_port_status(const of::PortStatus& ps) override;

  enum class State { Probing, Verified, Failed };
  [[nodiscard]] std::optional<State> state_of(const topo::Link& link) const;
  [[nodiscard]] std::uint64_t verifications() const { return verified_; }
  [[nodiscard]] std::uint64_t failures() const { return failed_; }
  [[nodiscard]] std::uint64_t probes_sent() const { return probes_sent_; }

 private:
  struct Verification {
    State state = State::Probing;
    of::Location src;
    of::Location dst;
    int sent = 0;
    std::vector<double> rtts_ms;
    std::map<std::uint64_t, sim::SimTime> outstanding;  // nonce -> sent at
    sim::SimTime last_transition;
  };

  void begin(const topo::Link& link, of::Location src, of::Location dst);
  void send_probe(const topo::Link& link);
  void conclude(const topo::Link& link, Verification& v, bool ok,
                const std::string& why);

  ctrl::Controller& ctrl_;
  ActiveProbeConfig config_;
  std::map<topo::Link, Verification> links_;
  std::uint64_t next_nonce_ = 1;
  std::uint64_t verified_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t probes_sent_ = 0;
};

ActiveLinkVerifier& install_active_probe(ctrl::Controller& ctrl,
                                         ActiveProbeConfig config = {});

}  // namespace tmg::defense
