// Control Message Monitor (TOPOGUARD+, paper Sec. VI-C).
//
// In-band port amnesia must flap the attacker's port *while* the relayed
// LLDP probe is in flight (the flap is what flips the behavioral profile
// between HOST and SWITCH mid-propagation). The CMM logs Port-Up/Down
// events and, when an LLDP propagation completes, retroactively checks
// whether either endpoint's port generated such an event inside the
// [emitted, received] window; if so, it raises an alert and blocks the
// topology update.
#pragma once

#include <deque>

#include "ctrl/controller.hpp"
#include "ctrl/defense_module.hpp"

namespace tmg::defense {

struct CmmConfig {
  /// Block topology updates whose propagation window contained a port
  /// event on an involved port.
  bool block = true;
  /// How much port-event history to retain (events older than this
  /// cannot overlap any live LLDP window).
  sim::Duration history = sim::Duration::seconds(60);
};

class Cmm : public ctrl::DefenseModule {
 public:
  Cmm(ctrl::Controller& ctrl, CmmConfig config = {});

  [[nodiscard]] std::string name() const override { return "CMM"; }

  void on_port_status(const of::PortStatus& ps) override;
  ctrl::Verdict on_lldp_observation(const ctrl::LldpObservation& obs) override;

  [[nodiscard]] std::uint64_t detections() const { return detections_; }

 private:
  struct PortEvent {
    of::Location loc;
    sim::SimTime at;
    of::PortStatus::Reason reason;
  };

  [[nodiscard]] bool port_event_in_window(of::Location loc, sim::SimTime from,
                                          sim::SimTime to) const;
  void prune(sim::SimTime now);

  ctrl::Controller& ctrl_;
  CmmConfig config_;
  std::deque<PortEvent> events_;
  std::uint64_t detections_ = 0;
};

}  // namespace tmg::defense
