// SPHINX surrogate (Dhawan et al., NDSS'15).
//
// The paper's authors could not obtain SPHINX and built a surrogate
// implementing its published invariants (Sec. IV); we do the same:
//  * Flow graphs: per destination-MAC, the waypoints declared by
//    (trusted) Flow-Mod messages.
//  * Identifier-binding invariant: the same MAC live at two network
//    locations within a short window -> alert. A single, quiescent move
//    is accepted silently, which is exactly the race Port Probing wins.
//  * Flow-counter consistency: byte counts for the same flow at
//    successive waypoints must agree within a similarity factor tau;
//    a blackholing fabricated link diverges, a faithful MITM does not.
//  * Waypoint deviation: a packet of a declared flow appearing at a
//    switch not on the declared path -> alert.
// SPHINX trusts new links (Sec. V-A), so link fabrication itself raises
// nothing here.
#pragma once

#include <map>

#include "ctrl/controller.hpp"
#include "ctrl/defense_module.hpp"

namespace tmg::defense {

struct SphinxConfig {
  /// Period of flow-stats polling.
  sim::Duration stats_poll = sim::Duration::seconds(1);
  /// Similarity factor: counters diverge if max > tau * min + slack.
  double tau = 1.5;
  /// Absolute slack for in-flight packets (bytes).
  std::uint64_t byte_slack = 16384;
  /// Two sightings of one MAC at different locations within this window
  /// are a binding conflict.
  sim::Duration conflict_window = sim::Duration::seconds(1);
  /// SPHINX raises alerts but does not alter network state (paper
  /// Sec. IV-B).
  bool block = false;
  /// EXTENSION (off by default, not in the paper's surrogate): verify
  /// per-link port-counter symmetry — bytes transmitted into a link
  /// must reappear at its far end. Catches lossy links and, notably,
  /// in-band fabricated links whose endpoints carry asymmetric covert
  /// traffic. See EXPERIMENTS.md.
  bool check_link_symmetry = false;
};

class Sphinx : public ctrl::DefenseModule {
 public:
  Sphinx(ctrl::Controller& ctrl, SphinxConfig config = {});

  [[nodiscard]] std::string name() const override { return "SPHINX"; }

  /// Begin periodic flow-stats polling.
  void start();

  ctrl::Verdict on_packet_in(const of::PacketIn& pi) override;
  void on_flow_mod(of::Dpid dpid, const of::FlowMod& fm) override;
  void on_flow_stats(const of::FlowStatsReply& fsr) override;
  void on_port_stats(const of::PortStatsReply& psr) override;

  [[nodiscard]] std::uint64_t conflicts_detected() const { return conflicts_; }

 private:
  struct Binding {
    of::Location loc;
    sim::SimTime last_seen;
  };
  /// Flow graph for one destination MAC: the declared forwarding
  /// waypoints and the freshest counters seen at each.
  struct FlowGraph {
    std::map<of::Dpid, of::PortNo> waypoints;  // dpid -> declared out port
    std::map<of::Dpid, std::uint64_t> bytes;   // dpid -> latest byte count
    sim::SimTime last_flow_mod;
  };

  void poll_stats();
  void check_counters(const net::MacAddress& dst, const FlowGraph& fg);
  void check_link_symmetry();

  ctrl::Controller& ctrl_;
  SphinxConfig config_;
  // Ordered maps: on_flow_stats iterates flows_ and raises alerts, so
  // iteration order must be stable for bit-reproducible alert streams.
  std::map<net::MacAddress, Binding> bindings_;
  std::map<net::MacAddress, FlowGraph> flows_;
  std::map<of::Location, of::PortStatsEntry> port_stats_;
  std::uint64_t conflicts_ = 0;
  bool started_ = false;
};

}  // namespace tmg::defense
