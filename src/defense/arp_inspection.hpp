// Dynamic ARP Inspection (the conventional anti-ARP-spoofing defense,
// paper Sec. III-A.2).
//
// Deploys high-priority punt rules so every ARP packet traverses the
// controller, then validates the ARP sender fields against the Host
// Tracking Service's IP bindings: a reply claiming an IP that is bound
// to a different MAC is dropped and alerted.
//
// The paper's point, which the tests reproduce: DAI kills classic ARP
// cache poisoning but is *ineffective against Host Location Hijacking*,
// because HLH presents a perfectly consistent IP-to-MAC pair (the
// victim's own) — it is the MAC-to-port binding that it corrupts.
#pragma once

#include "ctrl/controller.hpp"
#include "ctrl/defense_module.hpp"

namespace tmg::defense {

struct ArpInspectionConfig {
  /// Priority of the ARP punt rules (above reactive routing's rules).
  std::uint16_t punt_priority = 500;
  /// Drop violating ARP packets (DAI always drops in real deployments).
  bool block = true;
};

class DynamicArpInspection : public ctrl::DefenseModule {
 public:
  DynamicArpInspection(ctrl::Controller& ctrl, ArpInspectionConfig config);

  [[nodiscard]] std::string name() const override { return "DAI"; }

  /// Install the ARP punt rules on every connected switch. Call after
  /// the testbed has started (switches must be registered).
  void deploy();

  ctrl::Verdict on_packet_in(const of::PacketIn& pi) override;

  [[nodiscard]] std::uint64_t inspected() const { return inspected_; }
  [[nodiscard]] std::uint64_t violations() const { return violations_; }

 private:
  /// HTS binding view, resolved through the service registry (defenses
  /// never reach peer services through Controller accessors).
  [[nodiscard]] const ctrl::HostTrackingService& host_tracking();

  ctrl::Controller& ctrl_;
  const ctrl::HostTrackingService* hosts_ = nullptr;  // cached lookup
  ArpInspectionConfig config_;
  std::uint64_t inspected_ = 0;
  std::uint64_t violations_ = 0;
  bool deployed_ = false;
};

/// Install the module on the controller and return a handle; call
/// deploy() on it after Testbed::start().
DynamicArpInspection& install_arp_inspection(
    ctrl::Controller& ctrl, ArpInspectionConfig config = {});

}  // namespace tmg::defense
