// TOPOGUARD+ — the paper's defense contribution (Sec. VI).
//
// TOPOGUARD+ = TopoGuard + Control Message Monitor + Link Latency
// Inspector. This header provides a one-call installer that wires all
// three modules into a controller and returns typed handles to each.
// The controller must have been configured with `authenticate_lldp` and
// `lldp_timestamps` enabled (the scenario builders do this).
#pragma once

#include "defense/cmm.hpp"
#include "defense/lli.hpp"
#include "defense/sphinx.hpp"
#include "defense/topoguard.hpp"

namespace tmg::defense {

struct TopoGuardPlusConfig {
  TopoGuardConfig topoguard;
  CmmConfig cmm;
  LliConfig lli;
};

/// Handles to the installed modules (owned by the controller).
struct TopoGuardPlus {
  TopoGuard* topoguard = nullptr;
  Cmm* cmm = nullptr;
  Lli* lli = nullptr;
};

/// Install TopoGuard, CMM and LLI on `ctrl` (in that order).
TopoGuardPlus install_topoguard_plus(ctrl::Controller& ctrl,
                                     TopoGuardPlusConfig config = {});

/// Install only the original TopoGuard.
TopoGuard& install_topoguard(ctrl::Controller& ctrl,
                             TopoGuardConfig config = {});

/// Install and start the SPHINX surrogate.
Sphinx& install_sphinx(ctrl::Controller& ctrl, SphinxConfig config = {});

}  // namespace tmg::defense
