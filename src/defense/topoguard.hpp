// TopoGuard (Hong et al., NDSS'15), re-implemented from the paper's
// description in Sec. III-B.
//
// Two components:
//  * Behavioral profiler — classifies each switch port as ANY, HOST, or
//    SWITCH based on first-seen traffic; the classification is reset to
//    ANY on Port-Down. (That reset is the lever Port Amnesia pulls.)
//  * Policy enforcer —
//      - Link Fabrication: alert when LLDP arrives from a HOST port or
//        when first-hop traffic originates from a SWITCH port. LLDP
//        authentication itself is enforced by link discovery when the
//        controller's `authenticate_lldp` flag is on.
//      - Host Migration Verification: precondition (a Port-Down preceded
//        the move away from the old location) and postcondition (the
//        host is unreachable at the old location, checked with a
//        controller-originated ping).
#pragma once

#include <map>
#include <optional>

#include "ctrl/controller.hpp"
#include "ctrl/defense_module.hpp"

namespace tmg::defense {

struct TopoGuardConfig {
  /// Block poisoned topology updates (LLDP from HOST ports). TopoGuard
  /// rejects these updates; alerts are raised either way.
  bool block_link_violations = true;
  /// Block host migrations that fail the precondition. The paper
  /// (Sec. IV-B) notes the deployed system only alerts, leaving state
  /// unchanged — which is what enables alert-flood abuse — so the
  /// faithful default is false.
  bool block_host_violations = false;
};

class TopoGuard : public ctrl::DefenseModule {
 public:
  enum class PortType { Any, Host, Switch };

  TopoGuard(ctrl::Controller& ctrl, TopoGuardConfig config = {});

  [[nodiscard]] std::string name() const override { return "TopoGuard"; }

  ctrl::Verdict on_packet_in(const of::PacketIn& pi) override;
  void on_port_status(const of::PortStatus& ps) override;
  ctrl::Verdict on_host_event(const ctrl::HostEvent& ev) override;

  /// Current classification of a port (ANY if never seen).
  [[nodiscard]] PortType port_type(of::Location loc) const;

  /// Time of the most recent Port-Down on `loc` — the only legal way a
  /// HOST/SWITCH profile returns to ANY (the Port Amnesia model). The
  /// invariant checker uses this to validate profile transitions.
  [[nodiscard]] std::optional<sim::SimTime> last_reset(of::Location loc) const;

  /// Number of profile resets caused by Port-Down events — the paper
  /// notes the reset count is observable at the controller (Sec. IV-A)
  /// even though stock TopoGuard raises no alert for it.
  [[nodiscard]] std::uint64_t profile_resets() const { return resets_; }

 private:
  ctrl::Controller& ctrl_;
  TopoGuardConfig config_;
  std::map<of::Location, PortType> types_;
  std::map<of::Location, sim::SimTime> last_port_down_;
  std::uint64_t resets_ = 0;
};

const char* to_string(TopoGuard::PortType t);

}  // namespace tmg::defense
