#include "defense/lli.hpp"

#include <cstdio>

namespace tmg::defense {

using ctrl::Alert;
using ctrl::AlertType;
using ctrl::Verdict;

Lli::Lli(ctrl::Controller& ctrl, LliConfig config)
    : ctrl_{ctrl},
      config_{config},
      window_{config.window_capacity, config.iqr_k, config.min_samples} {}

Verdict Lli::on_lldp_observation(const ctrl::LldpObservation& obs) {
  const sim::SimTime now = ctrl_.loop().now();

  if (!obs.link_latency) {
    if (!config_.require_timestamp) return Verdict::Allow;
    ctrl_.alerts().raise(Alert{
        now, name(), AlertType::LliMissingTimestamp,
        "LLDP for " + obs.src.to_string() + " -> " + obs.dst.to_string() +
            " lacks a decryptable departure timestamp",
        obs.dst});
    return config_.block ? Verdict::Block : Verdict::Allow;
  }

  const double latency_ms = obs.link_latency->to_millis_f();
  const auto threshold = window_.threshold();
  const bool flagged = window_.is_outlier(latency_ms);

  log_.push_back(Measurement{now, topo::Link{obs.src, obs.dst}, latency_ms,
                             threshold, flagged});

  if (flagged) {
    ++detections_;
    char msg[192];
    std::snprintf(msg, sizeof msg,
                  "link delay is abnormal. delay:%.0fms, threshold:%.0fms "
                  "(%s -> %s)",
                  latency_ms, threshold.value_or(0.0),
                  obs.src.to_string().c_str(), obs.dst.to_string().c_str());
    ctrl_.alerts().raise(
        Alert{now, name(), AlertType::LliAbnormalLatency, msg, obs.dst});
    return config_.block ? Verdict::Block : Verdict::Allow;
  }

  // Verified sample: feeds the calibration store.
  window_.add(latency_ms);
  return Verdict::Allow;
}

std::vector<std::string> Lli::audit() const {
  std::vector<std::string> issues;
  for (std::string& issue : window_.audit()) {
    issues.push_back("LLI: " + issue);
  }
  return issues;
}

}  // namespace tmg::defense
