#include "defense/topoguard_plus.hpp"

#include <memory>

#include "defense/sphinx.hpp"

namespace tmg::defense {

TopoGuardPlus install_topoguard_plus(ctrl::Controller& ctrl,
                                     TopoGuardPlusConfig config) {
  TopoGuardPlus handles;
  auto tg = std::make_unique<TopoGuard>(ctrl, config.topoguard);
  handles.topoguard = tg.get();
  ctrl.add_defense(std::move(tg));
  auto cmm = std::make_unique<Cmm>(ctrl, config.cmm);
  handles.cmm = cmm.get();
  ctrl.add_defense(std::move(cmm));
  auto lli = std::make_unique<Lli>(ctrl, config.lli);
  handles.lli = lli.get();
  ctrl.add_defense(std::move(lli));
  return handles;
}

TopoGuard& install_topoguard(ctrl::Controller& ctrl, TopoGuardConfig config) {
  auto tg = std::make_unique<TopoGuard>(ctrl, config);
  TopoGuard& ref = *tg;
  ctrl.add_defense(std::move(tg));
  return ref;
}

Sphinx& install_sphinx(ctrl::Controller& ctrl, SphinxConfig config) {
  auto sphinx = std::make_unique<Sphinx>(ctrl, config);
  Sphinx& ref = *sphinx;
  ctrl.add_defense(std::move(sphinx));
  ref.start();
  return ref;
}

}  // namespace tmg::defense
