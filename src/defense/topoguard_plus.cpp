#include "defense/topoguard_plus.hpp"

#include <memory>

#include "defense/sphinx.hpp"

namespace tmg::defense {

TopoGuardPlus install_topoguard_plus(ctrl::Controller& ctrl,
                                     TopoGuardPlusConfig config) {
  TopoGuardPlus handles;
  handles.topoguard = &install_topoguard(ctrl, config.topoguard);
  auto cmm = std::make_unique<Cmm>(ctrl, config.cmm);
  handles.cmm = cmm.get();
  ctrl.add_defense(std::move(cmm));
  ctrl.services().offer("CMM", handles.cmm);
  auto lli = std::make_unique<Lli>(ctrl, config.lli);
  handles.lli = lli.get();
  ctrl.add_defense(std::move(lli));
  ctrl.services().offer("LLI", handles.lli);
  return handles;
}

TopoGuard& install_topoguard(ctrl::Controller& ctrl, TopoGuardConfig config) {
  auto tg = std::make_unique<TopoGuard>(ctrl, config);
  TopoGuard& ref = *tg;
  ctrl.add_defense(std::move(tg));
  // Published so peers (e.g. the invariant checker's port-profile watch)
  // resolve the typed handle without Controller friend-access.
  ctrl.services().offer("TopoGuard", &ref);
  return ref;
}

Sphinx& install_sphinx(ctrl::Controller& ctrl, SphinxConfig config) {
  auto sphinx = std::make_unique<Sphinx>(ctrl, config);
  Sphinx& ref = *sphinx;
  ctrl.add_defense(std::move(sphinx));
  ctrl.services().offer("SPHINX", &ref);
  ref.start();
  return ref;
}

}  // namespace tmg::defense
