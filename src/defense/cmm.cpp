#include "defense/cmm.hpp"

#include <algorithm>

namespace tmg::defense {

using ctrl::Alert;
using ctrl::AlertType;
using ctrl::Verdict;

Cmm::Cmm(ctrl::Controller& ctrl, CmmConfig config)
    : ctrl_{ctrl}, config_{config} {}

void Cmm::on_port_status(const of::PortStatus& ps) {
  const sim::SimTime now = ctrl_.loop().now();
  events_.push_back(
      PortEvent{of::Location{ps.dpid, ps.port}, now, ps.reason});
  prune(now);
}

void Cmm::prune(sim::SimTime now) {
  while (!events_.empty() && now - events_.front().at > config_.history) {
    events_.pop_front();
  }
}

bool Cmm::port_event_in_window(of::Location loc, sim::SimTime from,
                               sim::SimTime to) const {
  return std::any_of(events_.begin(), events_.end(),
                     [&](const PortEvent& e) {
                       return e.loc == loc && e.at >= from && e.at <= to;
                     });
}

Verdict Cmm::on_lldp_observation(const ctrl::LldpObservation& obs) {
  // Retroactive check over the propagation window, applied to both the
  // advertised (sender) and receiving port (paper Sec. VI-C: the
  // receiver is not known in advance, so events are logged and checked
  // on receipt).
  const bool hit =
      port_event_in_window(obs.src, obs.emitted_at, obs.received_at) ||
      port_event_in_window(obs.dst, obs.emitted_at, obs.received_at);
  if (!hit) return Verdict::Allow;

  ++detections_;
  ctrl_.alerts().raise(Alert{
      ctrl_.loop().now(), name(), AlertType::CmmControlMessage,
      "Port-Up/Down during LLDP propagation " + obs.src.to_string() + " -> " +
          obs.dst.to_string() + " (suspected in-band port amnesia)",
      obs.dst});
  return config_.block ? Verdict::Block : Verdict::Allow;
}

}  // namespace tmg::defense
