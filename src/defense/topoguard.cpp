#include "defense/topoguard.hpp"

namespace tmg::defense {

using ctrl::Alert;
using ctrl::AlertType;
using ctrl::Verdict;

const char* to_string(TopoGuard::PortType t) {
  switch (t) {
    case TopoGuard::PortType::Any: return "ANY";
    case TopoGuard::PortType::Host: return "HOST";
    case TopoGuard::PortType::Switch: return "SWITCH";
  }
  return "?";
}

TopoGuard::TopoGuard(ctrl::Controller& ctrl, TopoGuardConfig config)
    : ctrl_{ctrl}, config_{config} {}

TopoGuard::PortType TopoGuard::port_type(of::Location loc) const {
  const auto it = types_.find(loc);
  return it == types_.end() ? PortType::Any : it->second;
}

std::optional<sim::SimTime> TopoGuard::last_reset(of::Location loc) const {
  const auto it = last_port_down_.find(loc);
  if (it == last_port_down_.end()) return std::nullopt;
  return it->second;
}

Verdict TopoGuard::on_packet_in(const of::PacketIn& pi) {
  // Controller-originated frames (reachability pings, active link
  // probes) are not host traffic and never drive classification.
  if (pi.packet.src_mac == ctrl_.mac()) return Verdict::Allow;

  const of::Location loc{pi.dpid, pi.in_port};
  const PortType type = port_type(loc);

  if (pi.packet.is_lldp()) {
    if (type == PortType::Host) {
      ctrl_.alerts().raise(Alert{
          ctrl_.loop().now(), name(), AlertType::LldpFromHostPort,
          "LLDP received from HOST-classified port " + loc.to_string(), loc});
      return config_.block_link_violations ? Verdict::Block : Verdict::Allow;
    }
    types_[loc] = PortType::Switch;
    return Verdict::Allow;
  }

  // Non-LLDP dataplane traffic. Packets punted from topology-internal
  // ports (flooded broadcast/unknown-unicast copies crossing real
  // links) are transit, not first-hop originations: Floodlight's
  // topology module consumes them before the device-learning path
  // TopoGuard hooks. Note this never shields an attacker origination
  // for long — any amnesia flap tears the port's links down
  // (LinkDiscoveryService::handle_port_down), making it an attachment
  // port again.
  if (ctrl_.topology().is_switch_port(loc)) return Verdict::Allow;
  if (type == PortType::Switch) {
    ctrl_.alerts().raise(Alert{
        ctrl_.loop().now(), name(), AlertType::FirstHopFromSwitchPort,
        "first-hop traffic from SWITCH-classified port " + loc.to_string(),
        loc});
    return config_.block_link_violations ? Verdict::Block : Verdict::Allow;
  }
  if (type == PortType::Any) types_[loc] = PortType::Host;
  return Verdict::Allow;
}

void TopoGuard::on_port_status(const of::PortStatus& ps) {
  const of::Location loc{ps.dpid, ps.port};
  if (ps.reason == of::PortStatus::Reason::Down) {
    last_port_down_[loc] = ctrl_.loop().now();
    // The forgetting at the heart of Port Amnesia: topology may be
    // dynamic, so the profile must reset when the port goes down.
    const auto it = types_.find(loc);
    if (it != types_.end() && it->second != PortType::Any) {
      it->second = PortType::Any;
      ++resets_;
    }
  }
}

Verdict TopoGuard::on_host_event(const ctrl::HostEvent& ev) {
  if (ev.kind != ctrl::HostEvent::Kind::Moved || !ev.old_loc) {
    return Verdict::Allow;
  }

  // Precondition: the host must have disconnected from its original
  // location, i.e. a Port-Down was observed there after its last traffic.
  const auto down = last_port_down_.find(*ev.old_loc);
  const bool precondition_ok =
      down != last_port_down_.end() && down->second >= ev.old_last_seen;
  if (!precondition_ok) {
    ctrl_.alerts().raise(Alert{
        ctrl_.loop().now(), name(), AlertType::HostMigrationPrecondition,
        "host " + ev.mac.to_string() + " moved from " +
            ev.old_loc->to_string() + " to " + ev.new_loc.to_string() +
            " without a prior Port-Down",
        ev.new_loc});
    return config_.block_host_violations ? Verdict::Block : Verdict::Allow;
  }

  // Postcondition: the host must be unreachable at its previous
  // location. Checked asynchronously with a controller ping; the move is
  // committed meanwhile (stock TopoGuard behavior — the race the Port
  // Probing attack wins is unaffected by this check).
  const of::Location old_loc = *ev.old_loc;
  const auto mac = ev.mac;
  ctrl_.probe_reachability(
      old_loc, mac, ev.ip, [this, old_loc, mac](bool reachable) {
        if (!reachable) return;
        ctrl_.alerts().raise(Alert{
            ctrl_.loop().now(), name(), AlertType::HostMigrationPostcondition,
            "host " + mac.to_string() + " still reachable at " +
                old_loc.to_string() + " after migration",
            old_loc});
      });
  return Verdict::Allow;
}

}  // namespace tmg::defense
