#include "defense/active_probe.hpp"

#include <algorithm>
#include <memory>

namespace tmg::defense {

using ctrl::Alert;
using ctrl::AlertType;
using ctrl::Verdict;

namespace {

constexpr const char* kProbeLabel = "link-verify";

const net::MacAddress kProbeDstMac{{0x02, 0xc0, 0xff, 0xee, 0x00, 0x02}};

std::uint64_t nonce_of(const net::RawPayload& raw) {
  std::uint64_t n = 0;
  for (std::uint8_t b : raw.bytes) n = (n << 8) | b;
  return n;
}

}  // namespace

ActiveLinkVerifier::ActiveLinkVerifier(ctrl::Controller& ctrl,
                                       ActiveProbeConfig config)
    : ctrl_{ctrl}, config_{config} {}

std::optional<ActiveLinkVerifier::State> ActiveLinkVerifier::state_of(
    const topo::Link& link) const {
  const auto it = links_.find(link);
  if (it == links_.end()) return std::nullopt;
  return it->second.state;
}

Verdict ActiveLinkVerifier::on_lldp_observation(
    const ctrl::LldpObservation& obs) {
  const topo::Link link{obs.src, obs.dst};
  auto it = links_.find(link);
  if (it == links_.end()) {
    begin(link, obs.src, obs.dst);
    return Verdict::Block;  // held until challenged successfully
  }
  Verification& v = it->second;
  switch (v.state) {
    case State::Verified:
      return Verdict::Allow;
    case State::Probing:
      return Verdict::Block;
    case State::Failed:
      if (ctrl_.loop().now() - v.last_transition > config_.retry_cooldown) {
        links_.erase(it);
        begin(link, obs.src, obs.dst);
      }
      return Verdict::Block;
  }
  return Verdict::Block;
}

void ActiveLinkVerifier::begin(const topo::Link& link, of::Location src,
                               of::Location dst) {
  Verification v;
  v.src = src;
  v.dst = dst;
  v.last_transition = ctrl_.loop().now();
  links_.emplace(link, std::move(v));
  send_probe(link);
}

void ActiveLinkVerifier::send_probe(const topo::Link& link) {
  auto it = links_.find(link);
  if (it == links_.end() || it->second.state != State::Probing) return;
  Verification& v = it->second;
  if (v.sent >= config_.probes) return;
  ++v.sent;
  ++probes_sent_;

  const std::uint64_t nonce = next_nonce_++;
  net::Packet probe = net::make_raw(ctrl_.mac(), ctrl_.ip(), kProbeDstMac,
                                    net::Ipv4Address::any(), kProbeLabel, 64);
  auto& bytes = std::get<net::RawPayload>(probe.payload).bytes;
  bytes.resize(8);
  for (int i = 0; i < 8; ++i) {
    bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(nonce >> (56 - 8 * i));
  }
  v.outstanding.emplace(nonce, ctrl_.loop().now());
  ctrl_.send_packet_out(v.src.dpid, v.src.port, std::move(probe));

  // Loss detection.
  ctrl_.loop().post_after(config_.probe_timeout, [this, link, nonce] {
    auto vit = links_.find(link);
    if (vit == links_.end() || vit->second.state != State::Probing) return;
    if (vit->second.outstanding.erase(nonce) > 0) {
      conclude(link, vit->second, false, "challenge probe lost");
    }
  });
  // Next probe.
  if (v.sent < config_.probes) {
    ctrl_.loop().post_after(config_.probe_gap,
                                [this, link] { send_probe(link); });
  }
}

Verdict ActiveLinkVerifier::on_packet_in(const of::PacketIn& pi) {
  const auto* raw = pi.packet.raw();
  if (!raw || raw->label != kProbeLabel) return Verdict::Allow;

  // Probe frames are controller-internal: always consumed.
  const std::uint64_t nonce = nonce_of(*raw);
  const of::Location at{pi.dpid, pi.in_port};
  for (auto& [link, v] : links_) {
    if (v.state != State::Probing) continue;
    const auto out = v.outstanding.find(nonce);
    if (out == v.outstanding.end()) continue;
    if (at != v.dst) {
      // Probe surfaced somewhere other than the advertised far end: the
      // claimed link does not exist as described.
      v.outstanding.erase(out);
      conclude(link, v, false,
               "challenge probe surfaced at " + at.to_string() +
                   " instead of " + v.dst.to_string());
      return Verdict::Block;
    }
    const double rtt_ms = (ctrl_.loop().now() - out->second).to_millis_f() -
                          // subtract the control legs (out + in), as LLI does
                          ctrl_.control_rtt(v.src.dpid)
                              .value_or(sim::Duration::zero())
                              .to_millis_f() / 2.0 -
                          ctrl_.control_rtt(v.dst.dpid)
                              .value_or(sim::Duration::zero())
                              .to_millis_f() / 2.0;
    v.outstanding.erase(out);
    v.rtts_ms.push_back(rtt_ms);
    if (static_cast<int>(v.rtts_ms.size()) == config_.probes) {
      // Judge on the fastest sample: micro-bursts can slow individual
      // probes, but a relay cannot make any probe beat its channel.
      const double best =
          *std::min_element(v.rtts_ms.begin(), v.rtts_ms.end());
      if (best <= config_.max_link_latency.to_millis_f()) {
        conclude(link, v, true, "");
      } else {
        conclude(link, v, false,
                 "fastest challenge probe took " + std::to_string(best) +
                     " ms (bound " +
                     std::to_string(config_.max_link_latency.to_millis_f()) +
                     " ms)");
      }
    }
    return Verdict::Block;
  }
  return Verdict::Block;  // stale/unknown probe: still ours, consume
}

void ActiveLinkVerifier::conclude(const topo::Link& link, Verification& v,
                                  bool ok, const std::string& why) {
  v.last_transition = ctrl_.loop().now();
  if (ok) {
    v.state = State::Verified;
    ++verified_;
    return;
  }
  v.state = State::Failed;
  v.outstanding.clear();
  ++failed_;
  ctrl_.alerts().raise(Alert{ctrl_.loop().now(), name(),
                             AlertType::ActiveProbeViolation,
                             "link " + link.to_string() +
                                 " failed active verification: " + why,
                             v.dst});
}

void ActiveLinkVerifier::on_port_status(const of::PortStatus& ps) {
  if (ps.reason != of::PortStatus::Reason::Down) return;
  const of::Location loc{ps.dpid, ps.port};
  // An endpoint went down: any verification state for its links is
  // stale (the physical situation may have changed entirely).
  auto it = links_.begin();
  while (it != links_.end()) {
    if (it->first.a == loc || it->first.b == loc) {
      it = links_.erase(it);
    } else {
      ++it;
    }
  }
}

ActiveLinkVerifier& install_active_probe(ctrl::Controller& ctrl,
                                         ActiveProbeConfig config) {
  auto module = std::make_unique<ActiveLinkVerifier>(ctrl, config);
  ActiveLinkVerifier& ref = *module;
  ctrl.add_defense(std::move(module));
  ctrl.services().offer("ActiveProbe", &ref);
  return ref;
}

}  // namespace tmg::defense
