#include "defense/arp_inspection.hpp"

#include <memory>

#include "ctrl/host_tracker.hpp"

namespace tmg::defense {

using ctrl::Alert;
using ctrl::AlertType;
using ctrl::Verdict;

DynamicArpInspection::DynamicArpInspection(ctrl::Controller& ctrl,
                                           ArpInspectionConfig config)
    : ctrl_{ctrl}, config_{config} {}

const ctrl::HostTrackingService& DynamicArpInspection::host_tracking() {
  if (hosts_ == nullptr) {
    hosts_ = &ctrl_.services().require<ctrl::HostTrackingService>(
        ctrl::kHostTrackingServiceName);
  }
  return *hosts_;
}

void DynamicArpInspection::deploy() {
  if (deployed_) return;
  deployed_ = true;
  for (const of::Dpid dpid : ctrl_.switch_dpids()) {
    of::FlowMod punt;
    punt.command = of::FlowMod::Command::Add;
    punt.match.ethertype = net::EtherType::Arp;
    punt.action = of::FlowAction::to_controller();
    punt.priority = config_.punt_priority;
    punt.notify_on_removal = false;
    ctrl_.send_flow_mod(dpid, punt);
  }
}

Verdict DynamicArpInspection::on_packet_in(const of::PacketIn& pi) {
  const auto* arp = pi.packet.arp();
  if (!arp) return Verdict::Allow;
  ++inspected_;

  // Validate the claimed sender binding against the HTS view: an IP
  // already bound to a different MAC is being spoofed.
  const auto known = host_tracking().find_by_ip(arp->sender_ip);
  const bool violation = known.has_value() && known->mac != arp->sender_mac;
  if (!violation) return Verdict::Allow;

  ++violations_;
  ctrl_.alerts().raise(Alert{
      ctrl_.loop().now(), name(), AlertType::ArpInspectionViolation,
      "ARP claims " + arp->sender_ip.to_string() + " is-at " +
          arp->sender_mac.to_string() + " but it is bound to " +
          known->mac.to_string(),
      of::Location{pi.dpid, pi.in_port}});
  return config_.block ? Verdict::Block : Verdict::Allow;
}

DynamicArpInspection& install_arp_inspection(ctrl::Controller& ctrl,
                                             ArpInspectionConfig config) {
  auto module = std::make_unique<DynamicArpInspection>(ctrl, config);
  DynamicArpInspection& ref = *module;
  ctrl.add_defense(std::move(module));
  ctrl.services().offer("DAI", &ref);
  return ref;
}

}  // namespace tmg::defense
