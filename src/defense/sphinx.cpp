#include "defense/sphinx.hpp"

#include <algorithm>

namespace tmg::defense {

using ctrl::Alert;
using ctrl::AlertType;
using ctrl::Verdict;

Sphinx::Sphinx(ctrl::Controller& ctrl, SphinxConfig config)
    : ctrl_{ctrl}, config_{config} {}

void Sphinx::start() {
  if (started_) return;
  started_ = true;
  poll_stats();
}

void Sphinx::poll_stats() {
  for (const of::Dpid dpid : ctrl_.switch_dpids()) {
    ctrl_.request_flow_stats(dpid);
    if (config_.check_link_symmetry) ctrl_.request_port_stats(dpid);
  }
  ctrl_.loop().post_after(config_.stats_poll, [this] { poll_stats(); });
}

void Sphinx::on_port_stats(const of::PortStatsReply& psr) {
  if (!config_.check_link_symmetry) return;
  for (const auto& entry : psr.entries) {
    port_stats_[of::Location{psr.dpid, entry.port}] = entry;
  }
  check_link_symmetry();
}

void Sphinx::check_link_symmetry() {
  const auto lookup = [&](of::Location loc) -> const of::PortStatsEntry* {
    const auto it = port_stats_.find(loc);
    return it == port_stats_.end() ? nullptr : &it->second;
  };
  const auto asymmetric = [&](std::uint64_t tx, std::uint64_t rx) {
    const std::uint64_t lo = std::min(tx, rx);
    const std::uint64_t hi = std::max(tx, rx);
    return hi > static_cast<std::uint64_t>(static_cast<double>(lo) *
                                           config_.tau) +
                    config_.byte_slack;
  };
  for (const auto& link : ctrl_.topology().links_view()) {
    const of::PortStatsEntry* a = lookup(link.a);
    const of::PortStatsEntry* b = lookup(link.b);
    if (!a || !b) continue;  // not all counters sampled yet
    if (asymmetric(a->tx_bytes, b->rx_bytes) ||
        asymmetric(b->tx_bytes, a->rx_bytes)) {
      ctrl_.alerts().raise(Alert{
          ctrl_.loop().now(), name(), AlertType::SphinxLinkAsymmetry,
          "link " + link.to_string() + " ingress/egress bytes diverge (" +
              std::to_string(a->tx_bytes) + "/" +
              std::to_string(b->rx_bytes) + " and " +
              std::to_string(b->tx_bytes) + "/" +
              std::to_string(a->rx_bytes) + ")",
          link.a});
    }
  }
}

Verdict Sphinx::on_packet_in(const of::PacketIn& pi) {
  const net::Packet& pkt = pi.packet;
  if (pkt.is_lldp() || pkt.src_mac.is_multicast()) return Verdict::Allow;
  const of::Location loc{pi.dpid, pi.in_port};
  const sim::SimTime now = ctrl_.loop().now();

  // Waypoint deviation: a packet of a declared unicast flow surfacing at
  // a switch that is not on the declared path.
  if (!pkt.dst_mac.is_broadcast() && !pkt.dst_mac.is_multicast()) {
    const auto fit = flows_.find(pkt.dst_mac);
    if (fit != flows_.end() && !fit->second.waypoints.empty() &&
        !fit->second.waypoints.contains(pi.dpid) &&
        ctrl_.topology().is_switch_port(loc)) {
      ctrl_.alerts().raise(
          Alert{now, name(), AlertType::SphinxWaypointChange,
                "flow to " + pkt.dst_mac.to_string() +
                    " observed off its declared path at " + loc.to_string(),
                loc});
    }
  }

  // Identifier-binding invariant. Transit (switch-internal) ports carry
  // everyone's packets and are excluded, as in SPHINX's own
  // attachment-point inference.
  if (ctrl_.topology().is_switch_port(loc)) return Verdict::Allow;

  auto it = bindings_.find(pkt.src_mac);
  if (it == bindings_.end()) {
    bindings_.emplace(pkt.src_mac, Binding{loc, now});
    return Verdict::Allow;
  }
  Binding& b = it->second;
  if (b.loc == loc) {
    b.last_seen = now;
    return Verdict::Allow;
  }
  const bool old_loc_recently_live =
      now - b.last_seen < config_.conflict_window;
  if (old_loc_recently_live) {
    ++conflicts_;
    ctrl_.alerts().raise(
        Alert{now, name(), AlertType::SphinxIdentifierConflict,
              "MAC " + pkt.src_mac.to_string() + " live at " +
                  b.loc.to_string() + " and " + loc.to_string(),
              loc});
    if (config_.block) return Verdict::Block;
  }
  b.loc = loc;
  b.last_seen = now;
  return Verdict::Allow;
}

void Sphinx::on_flow_mod(of::Dpid dpid, const of::FlowMod& fm) {
  if (!fm.match.dst_mac) return;
  FlowGraph& fg = flows_[*fm.match.dst_mac];
  if (fm.command == of::FlowMod::Command::DeleteMatching) {
    fg.waypoints.clear();
    fg.bytes.clear();
    return;
  }
  if (fm.action.kind == of::FlowAction::Kind::Output) {
    const sim::SimTime now = ctrl_.loop().now();
    // Flow-Mods for one path install within milliseconds of each other.
    // A later batch is a re-route (the controller is trusted): start a
    // fresh flow graph, otherwise stale waypoints from the old path
    // would diverge from the live counters and raise false alarms.
    if (!fg.waypoints.empty() &&
        now - fg.last_flow_mod > sim::Duration::seconds(1)) {
      fg.waypoints.clear();
      fg.bytes.clear();
    }
    fg.waypoints[dpid] = fm.action.out_port;
    fg.last_flow_mod = now;
  }
}

void Sphinx::on_flow_stats(const of::FlowStatsReply& fsr) {
  for (const auto& entry : fsr.entries) {
    if (!entry.match.dst_mac) continue;
    const auto fit = flows_.find(*entry.match.dst_mac);
    if (fit == flows_.end()) continue;
    fit->second.bytes[fsr.dpid] = entry.byte_count;
  }
  // Check all graphs this switch participates in.
  for (const auto& [dst, fg] : flows_) {
    if (fg.bytes.contains(fsr.dpid)) check_counters(dst, fg);
  }
}

void Sphinx::check_counters(const net::MacAddress& dst, const FlowGraph& fg) {
  // All waypoints must have reported at least once.
  if (fg.waypoints.size() < 2) return;
  std::uint64_t lo = UINT64_MAX, hi = 0;
  for (const auto& [dpid, _] : fg.waypoints) {
    const auto it = fg.bytes.find(dpid);
    if (it == fg.bytes.end()) return;  // not all counters seen yet
    lo = std::min(lo, it->second);
    hi = std::max(hi, it->second);
  }
  if (hi > static_cast<std::uint64_t>(static_cast<double>(lo) * config_.tau) +
               config_.byte_slack) {
    ctrl_.alerts().raise(Alert{
        ctrl_.loop().now(), name(), AlertType::SphinxFlowInconsistency,
        "flow to " + dst.to_string() + " byte counters diverge along path (" +
            std::to_string(lo) + " vs " + std::to_string(hi) + ")",
        std::nullopt});
  }
}

}  // namespace tmg::defense
