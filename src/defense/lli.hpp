// Link Latency Inspector (TOPOGUARD+, paper Sec. VI-D).
//
// Out-of-band port amnesia needs no in-window port flap, but the relay
// channel (wireless hop + re-encoding) unavoidably adds latency that a
// genuine switch-to-switch wire does not have. The LLI estimates each
// link's latency from the encrypted departure-timestamp TLV minus the
// control-link delays, keeps verified samples in a fixed-size store, and
// flags any measurement above Q3 + 3*IQR.
#pragma once

#include <vector>

#include "ctrl/controller.hpp"
#include "ctrl/defense_module.hpp"
#include "stats/latency_window.hpp"

namespace tmg::defense {

struct LliConfig {
  /// Fixed-size data store of verified link latencies (paper Sec. VI-D).
  std::size_t window_capacity = 100;
  /// IQR fence multiplier (paper: 3).
  double iqr_k = 3.0;
  /// Samples required before the threshold is enforced.
  std::size_t min_samples = 10;
  /// An LLDP without a decryptable timestamp cannot be latency-verified.
  bool require_timestamp = true;
  /// Block anomalous topology updates ("may optionally block", paper).
  bool block = true;
};

class Lli : public ctrl::DefenseModule {
 public:
  Lli(ctrl::Controller& ctrl, LliConfig config = {});

  [[nodiscard]] std::string name() const override { return "LLI"; }

  ctrl::Verdict on_lldp_observation(const ctrl::LldpObservation& obs) override;

  /// Cache-coherence self-check: the latency window's incremental
  /// threshold must match the naive sort-based recompute.
  [[nodiscard]] std::vector<std::string> audit() const override;

  /// Current anomaly threshold in ms (Fig. 11's upper series).
  [[nodiscard]] std::optional<double> threshold_ms() const {
    return window_.threshold();
  }

  /// Full measurement log, for regenerating Figs. 10 and 11.
  struct Measurement {
    sim::SimTime at;
    topo::Link link;
    double latency_ms = 0.0;
    std::optional<double> threshold_ms;
    bool flagged = false;
  };
  [[nodiscard]] const std::vector<Measurement>& measurements() const {
    return log_;
  }

  [[nodiscard]] std::uint64_t detections() const { return detections_; }

 private:
  ctrl::Controller& ctrl_;
  LliConfig config_;
  stats::LatencyWindow window_;
  std::vector<Measurement> log_;
  std::uint64_t detections_ = 0;
};

}  // namespace tmg::defense
