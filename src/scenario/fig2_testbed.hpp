// Paper Fig. 2 topology (host-location hijacking): victim 10.0.0.1 on
// (0x1, 2), attacker 10.0.0.2 on (0x2, 5), and an empty access port
// (0x2, 4) the victim intends to migrate to.
#pragma once

#include <memory>

#include "scenario/testbed.hpp"

namespace tmg::scenario {

struct Fig2Testbed {
  std::unique_ptr<Testbed> tb;
  attack::Host* victim = nullptr;    // 10.0.0.1 on (0x1, 2)
  attack::Host* attacker = nullptr;  // 10.0.0.2 on (0x2, 5)
  attack::Host* peer = nullptr;      // a client that talks to the victim
  of::DataLink* migration_target = nullptr;  // access link at (0x2, 4)

  of::Location victim_loc{0x1, 2};
  of::Location attacker_loc{0x2, 5};
  of::Location new_victim_loc{0x2, 4};
  of::Location peer_loc{0x1, 3};

  net::MacAddress victim_mac;
  net::Ipv4Address victim_ip;

  /// 802.1x-style credentials, for the SecureBinding defense.
  static constexpr std::uint64_t kVictimToken = 0xA11CE;
  static constexpr std::uint64_t kAttackerToken = 0xBADC0DE;
  static constexpr std::uint64_t kPeerToken = 0x9EE9;
};

/// Build (but do not start) the Fig. 2 testbed.
Fig2Testbed make_fig2_testbed(TestbedOptions options = {});

/// Register everyone with the HTS (call after start()).
void fig2_warm_hosts(Fig2Testbed& f);

}  // namespace tmg::scenario
