#include "scenario/trial_arena.hpp"

#include "check/assert.hpp"

namespace tmg::scenario {

sim::EventLoop& TrialArena::acquire() {
  loop_.reset();
  // Invariant audit: everything a simulation can observe about a loop
  // must read exactly as a default-constructed one. The capacity the
  // reset kept is deliberately *not* observable.
  TMG_ASSERT(loop_.now() == sim::SimTime::zero(),
             "arena reset left the clock non-zero");
  TMG_ASSERT(loop_.pending_events() == 0 && loop_.live_events() == 0,
             "arena reset left pending events");
  TMG_ASSERT(loop_.events_executed() == 0,
             "arena reset left a non-zero executed count");
  TMG_ASSERT(loop_.probe() == nullptr, "arena reset left a probe attached");
  ++trials_served_;
  return loop_;
}

}  // namespace tmg::scenario
