#include "scenario/trial_runner.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <exception>

#include "net/packet.hpp"
#include "sim/thread_pool.hpp"

namespace tmg::scenario {

TrialRunner::TrialRunner(TrialRunnerOptions options)
    : jobs_{options.jobs == 0 ? sim::ThreadPool::hardware_jobs()
                              : options.jobs} {}

std::uint64_t TrialRunner::trial_seed(std::uint64_t base_seed,
                                      std::size_t trial_index) {
  // SplitMix64 finalizer over base ^ index: consecutive indices map to
  // decorrelated seeds, and the result depends only on (base, index).
  std::uint64_t z = base_seed ^ static_cast<std::uint64_t>(trial_index);
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

/// Per-trial isolation: whatever ran on this worker thread before must
/// not show through in the trial's packet trace ids.
void run_one_trial(const std::function<void(std::size_t)>& fn,
                   std::size_t index) {
  net::reset_trace_ids();
  fn(index);
}

}  // namespace

void TrialRunner::run_indexed(
    std::size_t trials, const std::function<void(std::size_t)>& fn) const {
  if (trials == 0) return;

  const std::size_t workers = jobs_ < trials ? jobs_ : trials;
  if (workers <= 1) {
    // Legacy serial path: same per-trial isolation, no threads at all.
    for (std::size_t i = 0; i < trials; ++i) run_one_trial(fn, i);
    return;
  }

  std::vector<std::exception_ptr> errors(trials);
  std::atomic<bool> failed{false};
  {
    sim::ThreadPool pool{workers};
    for (std::size_t i = 0; i < trials; ++i) {
      pool.submit([&, i] {
        if (failed.load(std::memory_order_relaxed)) return;  // fail fast
        try {
          run_one_trial(fn, i);
        } catch (...) {
          errors[i] = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      });
    }
    pool.wait_idle();
  }
  if (failed.load(std::memory_order_relaxed)) {
    for (std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }
}

std::size_t parse_jobs_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      return static_cast<std::size_t>(std::strtoul(argv[i + 1], nullptr, 10));
    }
    if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      return static_cast<std::size_t>(std::strtoul(argv[i] + 7, nullptr, 10));
    }
  }
  return 0;
}

}  // namespace tmg::scenario
