#include "scenario/trial_runner.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <limits>
#include <mutex>

#include "net/packet.hpp"
#include "sim/thread_pool.hpp"

namespace tmg::scenario {

TrialRunner::TrialRunner(TrialRunnerOptions options)
    : jobs_{options.jobs == 0 ? sim::ThreadPool::hardware_jobs()
                              : options.jobs},
      legacy_{options.legacy} {}

std::uint64_t TrialRunner::trial_seed(std::uint64_t base_seed,
                                      std::size_t trial_index) {
  // SplitMix64 finalizer over base ^ index: consecutive indices map to
  // decorrelated seeds, and the result depends only on (base, index).
  std::uint64_t z = base_seed ^ static_cast<std::uint64_t>(trial_index);
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::size_t TrialRunner::worker_slot() {
  return sim::ThreadPool::worker_index();
}

void TrialRunner::reset_trial_thread_state() { net::reset_trace_ids(); }

std::size_t TrialRunner::chunk_size(std::size_t trials) {
  return (trials + kMaxChunks - 1) / kMaxChunks;
}

std::size_t TrialRunner::chunk_count(std::size_t trials) {
  if (trials == 0) return 0;
  const std::size_t size = chunk_size(trials);
  return (trials + size - 1) / size;
}

namespace {

/// Internal carrier pairing a thrown exception with the exact trial
/// index it came from; unwrapped before anything leaves the runner.
struct TrialIndexedError {
  std::size_t index;
  std::exception_ptr inner;
};

/// Per-trial isolation: whatever ran on this worker thread before must
/// not show through in the trial's packet trace ids.
void run_one_trial(const std::function<void(std::size_t)>& fn,
                   std::size_t index) {
  TrialRunner::reset_trial_thread_state();
  fn(index);
}

/// Constant-space replacement for the old O(trials) exception_ptr
/// vector: workers race to record failures, the mutex arbitrates, and
/// only the lowest trial index wins — so the rethrown exception is the
/// lowest-numbered one that actually failed, at any job count.
struct LowestErrorSlot {
  std::mutex mu;
  std::size_t index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr error;
  /// Lock-free mirror of `index` for the workers' skip decision.
  std::atomic<std::size_t> lowest{std::numeric_limits<std::size_t>::max()};

  void record(std::size_t i, std::exception_ptr e) {
    std::lock_guard<std::mutex> lock{mu};
    if (i < index) {
      index = i;
      error = std::move(e);
      lowest.store(i, std::memory_order_relaxed);
    }
  }

  [[nodiscard]] bool any() const {
    return lowest.load(std::memory_order_relaxed) !=
           std::numeric_limits<std::size_t>::max();
  }
};

}  // namespace

void TrialRunner::run_chunks(
    std::size_t trials,
    const std::function<void(std::size_t, std::size_t, std::size_t)>&
        chunk_fn) const {
  if (trials == 0) return;
  if (legacy_) {
    run_chunks_legacy(trials, chunk_fn);
    return;
  }

  const std::size_t size = chunk_size(trials);
  const std::size_t n_chunks = chunk_count(trials);
  const std::size_t workers = jobs_ < n_chunks ? jobs_ : n_chunks;

  if (workers <= 1) {
    // Serial path: same chunk geometry (so reduce() merges the exact
    // same partial sequence), no threads at all. The first failing
    // trial is the lowest-index one by construction.
    for (std::size_t c = 0; c < n_chunks; ++c) {
      const std::size_t begin = c * size;
      const std::size_t end = begin + size < trials ? begin + size : trials;
      try {
        chunk_fn(c, begin, end);
      } catch (TrialIndexedError& te) {
        std::rethrow_exception(te.inner);
      }
    }
    return;
  }

  // Shared drain state; one no-allocation drainer task per worker. The
  // cursor hands out chunk indices in order, so early chunks start
  // first, but completion order is scheduling-dependent — which is
  // fine, because every result is keyed by chunk/trial index, never by
  // worker.
  struct Drain {
    const std::function<void(std::size_t, std::size_t, std::size_t)>* fn;
    std::size_t trials, size, n_chunks;
    std::atomic<std::size_t> cursor{0};
    LowestErrorSlot error{};

    void run() {
      std::size_t c;
      while ((c = cursor.fetch_add(1, std::memory_order_relaxed)) <
             n_chunks) {
        const std::size_t begin = c * size;
        // Fail fast, but deterministically: skip a chunk only when a
        // *lower-indexed* trial already failed. A chunk below the
        // recorded failure still runs, so it can claim the slot if it
        // fails too — the rethrown index never depends on timing.
        if (error.lowest.load(std::memory_order_relaxed) < begin) return;
        const std::size_t end =
            begin + size < trials ? begin + size : trials;
        try {
          (*fn)(c, begin, end);
        } catch (TrialIndexedError& te) {
          error.record(te.index, std::move(te.inner));
        } catch (...) {
          // Untagged (reduce's fold path): key by the chunk's first
          // trial — still ordered correctly relative to other chunks.
          error.record(begin, std::current_exception());
        }
      }
    }
  } drain{&chunk_fn, trials, size, n_chunks};

  {
    sim::ThreadPool pool{workers};
    for (std::size_t w = 0; w < workers; ++w) {
      pool.submit([&drain] { drain.run(); });
    }
    pool.wait_idle();
  }
  if (drain.error.any()) {
    std::rethrow_exception(drain.error.error);
  }
}

void TrialRunner::run_chunks_legacy(
    std::size_t trials,
    const std::function<void(std::size_t, std::size_t, std::size_t)>&
        chunk_fn) const {
  // Pre-chunking scheduler, preserved verbatim as the --speedup A/B
  // baseline: one pool task and one exception_ptr slot per trial.
  const std::size_t workers = jobs_ < trials ? jobs_ : trials;
  if (workers <= 1) {
    for (std::size_t i = 0; i < trials; ++i) {
      try {
        chunk_fn(i, i, i + 1);
      } catch (TrialIndexedError& te) {
        std::rethrow_exception(te.inner);
      }
    }
    return;
  }
  std::vector<std::exception_ptr> errors(trials);
  std::atomic<bool> failed{false};
  {
    sim::ThreadPool pool{workers};
    for (std::size_t i = 0; i < trials; ++i) {
      pool.submit([&, i] {
        if (failed.load(std::memory_order_relaxed)) return;  // fail fast
        try {
          chunk_fn(i, i, i + 1);
        } catch (TrialIndexedError& te) {
          errors[i] = std::move(te.inner);
          failed.store(true, std::memory_order_relaxed);
        } catch (...) {
          errors[i] = std::current_exception();
          failed.store(true, std::memory_order_relaxed);
        }
      });
    }
    pool.wait_idle();
  }
  if (failed.load(std::memory_order_relaxed)) {
    for (std::exception_ptr& e : errors) {
      if (e) std::rethrow_exception(e);
    }
  }
}

void TrialRunner::run_indexed(
    std::size_t trials, const std::function<void(std::size_t)>& fn) const {
  run_chunks(trials, [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      try {
        run_one_trial(fn, i);
      } catch (TrialIndexedError&) {
        throw;
      } catch (...) {
        // Tag the failing trial so a multi-trial chunk reports the
        // exact index, not just its chunk's first trial.
        throw TrialIndexedError{i, std::current_exception()};
      }
    }
  });
}

std::optional<std::size_t> parse_jobs_value(const char* text) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  // Digits only: reject signs, whitespace and unit suffixes outright
  // (strtoul would accept "-1" by wrapping it into a huge unsigned).
  for (const char* p = text; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return std::nullopt;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (errno == ERANGE || end == text || *end != '\0') return std::nullopt;
  if (v > std::numeric_limits<std::size_t>::max()) return std::nullopt;
  return static_cast<std::size_t>(v);
}

namespace {

[[noreturn]] void bad_jobs(const char* value) {
  std::fprintf(stderr,
               "error: invalid --jobs value '%s' (expected a "
               "non-negative integer; 0 = hardware default)\n",
               value);
  std::exit(2);
}

}  // namespace

std::size_t parse_jobs_arg(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* value = nullptr;
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      value = argv[i + 1];
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      value = argv[i] + 7;
    } else {
      continue;
    }
    const std::optional<std::size_t> parsed = parse_jobs_value(value);
    if (!parsed) bad_jobs(value);
    return *parsed;
  }
  return 0;
}

}  // namespace tmg::scenario
