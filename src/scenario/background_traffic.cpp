#include "scenario/background_traffic.hpp"

#include <algorithm>

#include "check/assert.hpp"

namespace tmg::scenario {

using sim::Duration;

BackgroundTraffic::BackgroundTraffic(Testbed& tb, sim::Rng rng,
                                     BackgroundTrafficConfig config)
    : tb_{tb}, loop_{tb.loop()}, rng_{rng}, config_{config} {}

void BackgroundTraffic::add_endpoint(attack::Host& host, of::DataLink* link) {
  TMG_ASSERT(!running_, "background traffic: population is fixed at start()");
  endpoints_.push_back(Endpoint{&host, link});
}

void BackgroundTraffic::add_spare_link(of::DataLink& link) {
  TMG_ASSERT(!running_, "background traffic: spare pool is fixed at start()");
  spare_links_.push_back(&link);
}

void BackgroundTraffic::start() {
  if (running_) return;
  TMG_ASSERT(endpoints_.size() >= 2,
             "background traffic: need at least two endpoints");
  running_ = true;
  if (config_.mean_flow_interarrival > Duration::zero()) schedule_flow();
  if (config_.arp_churn_period > Duration::zero()) schedule_arp();
  if (config_.mobility_period > Duration::zero() && !spare_links_.empty()) {
    bool anyone_mobile = false;
    for (const Endpoint& ep : endpoints_) anyone_mobile |= ep.link != nullptr;
    if (anyone_mobile) schedule_mobility();
  }
}

sim::Duration BackgroundTraffic::jittered(Duration period) {
  const double f = rng_.uniform(0.75, 1.25);
  return Duration::nanos(static_cast<std::int64_t>(
      static_cast<double>(period.count_nanos()) * f));
}

void BackgroundTraffic::schedule_flow() {
  const double mean_ns =
      static_cast<double>(config_.mean_flow_interarrival.count_nanos());
  // Clamp the exponential's near-zero tail so two flows never collapse
  // onto the same instant (keeps per-flow trace ordering obvious).
  const Duration gap = std::max(
      Duration::micros(1),
      Duration::nanos(static_cast<std::int64_t>(rng_.exponential(mean_ns))));
  loop_.post_after(gap, [this] {
    if (!running_) return;
    const std::int64_t n = static_cast<std::int64_t>(endpoints_.size());
    const std::int64_t src = rng_.uniform_int(0, n - 1);
    const std::int64_t dst =
        (src + 1 + rng_.uniform_int(0, n - 2)) % n;  // != src
    attack::Host* from = endpoints_[static_cast<std::size_t>(src)].host;
    const attack::Host* to = endpoints_[static_cast<std::size_t>(dst)].host;
    ++stats_.flows_started;
    const net::MacAddress dst_mac = to->mac();
    const net::Ipv4Address dst_ip = to->ip();
    for (int p = 0; p < config_.packets_per_flow; ++p) {
      loop_.post_after(config_.packet_gap * p, [this, from, dst_mac, dst_ip] {
        if (!running_) return;
        from->send_raw(dst_mac, dst_ip, "bg-flow", config_.flow_bytes);
        ++stats_.packets_offered;
      });
    }
    schedule_flow();
  });
}

void BackgroundTraffic::schedule_arp() {
  loop_.post_after(jittered(config_.arp_churn_period), [this] {
    if (!running_) return;
    const std::int64_t n = static_cast<std::int64_t>(endpoints_.size());
    attack::Host* h =
        endpoints_[static_cast<std::size_t>(rng_.uniform_int(0, n - 1))].host;
    // Gratuitous announcement: a broadcast flood plus an HTS refresh of
    // the sender's binding — the fleet's dominant broadcast load.
    h->send_arp_request(h->ip());
    ++stats_.arp_announcements;
    schedule_arp();
  });
}

void BackgroundTraffic::schedule_mobility() {
  loop_.post_after(jittered(config_.mobility_period), [this] {
    if (!running_) return;
    // Pick among the mobile endpoints only (deterministic: the k-th
    // mobile endpoint in registration order).
    std::int64_t mobile = 0;
    for (const Endpoint& ep : endpoints_) mobile += ep.link != nullptr;
    std::int64_t pick = rng_.uniform_int(0, mobile - 1);
    Endpoint* chosen = nullptr;
    for (Endpoint& ep : endpoints_) {
      if (ep.link == nullptr) continue;
      if (pick-- == 0) {
        chosen = &ep;
        break;
      }
    }
    const std::size_t spare_idx = static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(spare_links_.size()) - 1));
    of::DataLink* target = spare_links_[spare_idx];
    migrate_host(tb_, *chosen->host, *target, config_.mobility_downtime);
    // The vacated port becomes the new spare.
    spare_links_[spare_idx] = chosen->link;
    chosen->link = target;
    ++stats_.migrations;
    // On rejoin the host announces itself so the HTS observes the move.
    attack::Host* h = chosen->host;
    loop_.post_after(config_.mobility_downtime + Duration::millis(10),
                     [this, h] {
                       if (!running_ || !h->attached()) return;
                       h->send_arp_request(h->ip());
                     });
    schedule_mobility();
  });
}

}  // namespace tmg::scenario
