// Per-worker trial arena: a warm event-loop slab reused across trials.
//
// The parallel trial runner executes thousands-to-millions of short
// experiments, each of which used to construct (and tear down) a fresh
// sim::EventLoop — re-growing the event heap and callback slab from
// zero every time. A TrialArena keeps one EventLoop per worker alive
// for the whole sweep; acquire() hands it out freshly reset, with the
// vector capacity of the previous trial still in place.
//
// The reset contract (DESIGN.md §7): a reset arena must be
// *observationally identical* to a fresh one — clock at zero, empty
// queue, zero executed count, no hook/probe — so running a trial in an
// arena cannot change any simulated number. acquire() audits the
// contract on every call (TMG_ASSERT), and
// tests/trial_runner_test.cpp proves the stronger end-to-end property:
// experiment outcomes through a recycled arena are byte-identical to
// fresh-testbed runs.
//
// Threading: an arena is single-threaded by construction — each worker
// indexes its own slot in a per-sweep arena vector with
// TrialRunner::worker_slot(), so no arena is ever shared between
// threads.
#pragma once

#include <cstdint>

#include "sim/event_loop.hpp"

namespace tmg::scenario {

class TrialArena {
 public:
  TrialArena() = default;
  TrialArena(const TrialArena&) = delete;
  TrialArena& operator=(const TrialArena&) = delete;

  /// Reset the warm loop and audit that it is observationally fresh.
  /// Pass the result to TestbedOptions::loop (the testbed borrows it;
  /// it must not outlive the arena).
  sim::EventLoop& acquire();

  /// The arena's loop as-is, without reset (post-trial inspection).
  [[nodiscard]] sim::EventLoop& loop() { return loop_; }

  /// Trials served so far (acquire() calls).
  [[nodiscard]] std::uint64_t trials_served() const {
    return trials_served_;
  }

 private:
  sim::EventLoop loop_;
  std::uint64_t trials_served_ = 0;
};

}  // namespace tmg::scenario
