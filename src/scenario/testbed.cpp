#include "scenario/testbed.hpp"

#include <stdexcept>

#include "obs/observability.hpp"

namespace tmg::scenario {

Testbed::Testbed(TestbedOptions options)
    : options_{std::move(options)},
      owned_loop_{options_.loop == nullptr
                      ? std::make_unique<sim::EventLoop>()
                      : nullptr},
      loop_{options_.loop == nullptr ? *owned_loop_ : *options_.loop},
      rng_{options_.seed} {
  controller_ = std::make_unique<ctrl::Controller>(loop_, rng_.fork(),
                                                   options_.controller);
}

Testbed::~Testbed() {
  // Teardown validation: whatever state the experiment left behind must
  // still satisfy every invariant.
  if (checker_) checker_->final_check();
}

void Testbed::set_observability(obs::Observability* obs) {
  controller_->set_observability(obs);
  loop_.set_probe(obs == nullptr ? nullptr : &obs->loop_probe());
}

check::InvariantChecker& Testbed::enable_invariant_checker(
    const defense::TopoGuard* topoguard) {
  if (!checker_) {
    check::InvariantOptions opts;
    opts.check_every_events = options_.check_every_events;
    // Fail fast: a violation in a testbed run means the simulator is
    // broken, and every downstream number is garbage. Tests that study
    // violations on purpose construct their own InvariantChecker.
    opts.assert_on_violation = true;
    checker_ =
        std::make_unique<check::InvariantChecker>(*controller_, opts);
    // Cache-coherence audits: each switch's indexed flow table must keep
    // agreeing with the plain priority-sorted vector it accelerates.
    for (auto& [dpid, entry] : switches_) {
      of::Switch* sw = entry.sw.get();
      checker_->add_audit("flow table dpid " + std::to_string(dpid),
                          [sw] { return sw->flow_table().audit(); });
    }
  }
  // No explicit handle: fall back to the service registry, where the
  // TopoGuard installer publishes itself.
  if (!topoguard) {
    topoguard = controller_->services().find<defense::TopoGuard>("TopoGuard");
  }
  if (topoguard) checker_->watch_topoguard(*topoguard);
  return *checker_;
}

std::unique_ptr<sim::LatencyModel> Testbed::dataplane_model() {
  return sim::make_microburst(options_.dataplane_latency,
                              options_.dataplane_jitter,
                              options_.microburst_p, options_.microburst_mean);
}

std::unique_ptr<sim::LatencyModel> Testbed::access_model() {
  return sim::make_normal(options_.access_latency, options_.access_jitter);
}

std::unique_ptr<sim::LatencyModel> Testbed::control_model() {
  return sim::make_normal(options_.control_latency, options_.control_jitter);
}

of::Switch& Testbed::add_switch(of::Dpid dpid) {
  if (started_) throw std::logic_error("testbed already started");
  auto [it, inserted] = switches_.try_emplace(dpid);
  if (!inserted) throw std::logic_error("duplicate dpid");
  SwitchEntry& entry = it->second;
  entry.channel = std::make_unique<of::ControlChannel>(loop_, rng_.fork(),
                                                       control_model());
  of::Switch::Config cfg = options_.switch_template;
  cfg.dpid = dpid;
  entry.sw =
      std::make_unique<of::Switch>(loop_, rng_.fork(), cfg, *entry.channel);
  return *entry.sw;
}

of::Switch& Testbed::get_switch(of::Dpid dpid) {
  return *switches_.at(dpid).sw;
}

of::ControlChannel& Testbed::control_channel(of::Dpid dpid) {
  return *switches_.at(dpid).channel;
}

of::DataLink& Testbed::connect_switches(of::Dpid a, of::PortNo pa, of::Dpid b,
                                        of::PortNo pb) {
  auto link =
      std::make_unique<of::DataLink>(loop_, rng_.fork(), dataplane_model());
  switches_.at(a).sw->attach_link(pa, *link, of::Side::A);
  switches_.at(a).ports.push_back(pa);
  switches_.at(b).sw->attach_link(pb, *link, of::Side::B);
  switches_.at(b).ports.push_back(pb);
  links_.push_back(std::move(link));
  return *links_.back();
}

of::DataLink& Testbed::add_access_link(of::Dpid dpid, of::PortNo port) {
  auto link =
      std::make_unique<of::DataLink>(loop_, rng_.fork(), access_model());
  // No host yet: the far side has no carrier until someone plugs in.
  link->set_carrier(of::Side::B, false);
  switches_.at(dpid).sw->attach_link(port, *link, of::Side::A);
  switches_.at(dpid).ports.push_back(port);
  links_.push_back(std::move(link));
  return *links_.back();
}

attack::Host& Testbed::add_host(of::Dpid dpid, of::PortNo port,
                                attack::HostConfig config) {
  auto link =
      std::make_unique<of::DataLink>(loop_, rng_.fork(), access_model());
  switches_.at(dpid).sw->attach_link(port, *link, of::Side::A);
  switches_.at(dpid).ports.push_back(port);
  auto host =
      std::make_unique<attack::Host>(loop_, rng_.fork(), std::move(config));
  host->attach_link(*link, of::Side::B);
  links_.push_back(std::move(link));
  hosts_.push_back(std::move(host));
  return *hosts_.back();
}

attack::Host& Testbed::add_host_on(of::DataLink& link,
                                   attack::HostConfig config) {
  auto host =
      std::make_unique<attack::Host>(loop_, rng_.fork(), std::move(config));
  host->attach_link(link, of::Side::B);
  hosts_.push_back(std::move(host));
  return *hosts_.back();
}

attack::OutOfBandChannel& Testbed::add_oob_channel(
    attack::OobChannelConfig config) {
  oobs_.push_back(std::make_unique<attack::OutOfBandChannel>(
      loop_, rng_.fork(), config));
  return *oobs_.back();
}

void Testbed::start(sim::Duration warmup) {
  if (started_) return;
  started_ = true;
  for (auto& [dpid, entry] : switches_) {
    controller_->connect_switch(dpid, *entry.channel, entry.ports);
  }
  if (options_.check_invariants) enable_invariant_checker();
  controller_->start();
  run_for(warmup);
}

void Testbed::run_for(sim::Duration d) {
  loop_.run_until(loop_.now() + d);
}

void Testbed::run_until(sim::SimTime t) { loop_.run_until(t); }

void migrate_host(Testbed& tb, attack::Host& host, of::DataLink& target,
                  sim::Duration downtime) {
  host.detach_link();
  // tmglint: allow(callback-lifetime) fixture owns host+target all trial
  tb.loop().post_after(downtime, [&host, &target] {
    host.attach_link(target, of::Side::B);
  });
}

}  // namespace tmg::scenario
