#include "scenario/fig2_testbed.hpp"

namespace tmg::scenario {

Fig2Testbed make_fig2_testbed(TestbedOptions options) {
  Fig2Testbed f;
  f.tb = std::make_unique<Testbed>(std::move(options));
  Testbed& tb = *f.tb;

  tb.add_switch(0x1);
  tb.add_switch(0x2);
  tb.connect_switches(0x1, 10, 0x2, 10);

  attack::HostConfig victim_cfg;
  victim_cfg.mac = *net::MacAddress::parse("aa:aa:aa:aa:aa:aa");
  victim_cfg.ip = *net::Ipv4Address::parse("10.0.0.1");
  victim_cfg.open_tcp_ports = {80};
  victim_cfg.auth_token = Fig2Testbed::kVictimToken;
  f.victim = &tb.add_host(0x1, 2, victim_cfg);
  f.victim_mac = victim_cfg.mac;
  f.victim_ip = victim_cfg.ip;

  attack::HostConfig attacker_cfg;
  // The paper's figure uses BB:BB:...; that address has the multicast
  // bit set (0xBB is odd) and a real device manager would ignore it, so
  // we flip to the nearest unicast equivalent.
  attacker_cfg.mac = *net::MacAddress::parse("ba:bb:bb:bb:bb:bb");
  attacker_cfg.ip = *net::Ipv4Address::parse("10.0.0.2");
  // The attacker is a legitimately enrolled device (it has *a*
  // credential — just not the victim's).
  attacker_cfg.auth_token = Fig2Testbed::kAttackerToken;
  f.attacker = &tb.add_host(0x2, 5, attacker_cfg);

  attack::HostConfig peer_cfg;
  peer_cfg.mac = net::MacAddress::host(3);
  peer_cfg.ip = *net::Ipv4Address::parse("10.0.0.3");
  peer_cfg.auth_token = Fig2Testbed::kPeerToken;
  f.peer = &tb.add_host(0x1, 3, peer_cfg);

  f.migration_target = &tb.add_access_link(0x2, 4);
  return f;
}

void fig2_warm_hosts(Fig2Testbed& f) {
  f.victim->send_arp_request(f.peer->ip());
  f.attacker->send_arp_request(f.victim->ip());
  f.peer->send_arp_request(f.victim->ip());
  f.tb->run_for(sim::Duration::millis(500));
}

}  // namespace tmg::scenario
