// Fleet-scale testbed + attack drivers (DESIGN.md §12).
//
// make_fleet_testbed instantiates a generated fabric (topo::generate)
// as a live simulated network: every switch, every fabric link, and one
// access link + host per attachment (capped by max_hosts), identities
// assigned by topo::fleet_mac / fleet_ip in attachment order. Four
// population slots double as experiment roles — victim and peer on the
// first edge switch, two colluding attackers on distinct edge switches
// further out — and the tail attachments stay vacant access links for
// background mobility plus the victim's migration target.
//
// run_fleet_hijack / run_fleet_link_attack mirror the paper-testbed
// drivers (experiments.hpp) but execute under deterministic background
// load (scenario::BackgroundTraffic) and report fleet observables
// (hosts tracked by the HTS, background stats) alongside the Fig. 5-8
// race windows and detection results. Same (config, seed) -> byte-
// identical outcome, which bench_fleet pins across --jobs counts.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "scenario/background_traffic.hpp"
#include "scenario/experiments.hpp"
#include "scenario/testbed.hpp"
#include "topo/generate.hpp"

namespace tmg::scenario {

struct FleetTestbedConfig {
  /// Fabric to instantiate (family, size, generator seed).
  topo::GeneratorConfig topology;
  /// Cap on instantiated hosts; 0 = one host per attachment. At least 4
  /// hosts are required for the role slots.
  std::size_t max_hosts = 0;
  /// Vacant access links (mobility pool + migration target), placed on
  /// fresh ports above the generator's per-switch budget, round-robin
  /// over the edge switches. At least 1 is required.
  std::size_t spare_access_links = 4;
  /// Base testbed options (latency profile, controller config, arena
  /// loop); usually suite_options(suite, seed) plus driver overrides.
  TestbedOptions options;
};

struct FleetTestbed {
  std::unique_ptr<Testbed> tb;
  topo::GeneratedTopology topo;

  /// Instantiated hosts in attachment order; population[i] carries
  /// fleet_mac(i)/fleet_ip(i) and auth token kTokenBase + i.
  std::vector<attack::Host*> population;
  /// population[i]'s access link (switch side A, host side B).
  std::vector<of::DataLink*> population_links;
  /// Vacant access links on ports above the generated attachments.
  /// spare_links[0] is reserved as the victim's migration target; the
  /// rest feed background mobility.
  std::vector<of::DataLink*> spare_links;

  // Role aliases into the population (never migrated by background
  // traffic; the drivers own their movement).
  attack::Host* victim = nullptr;      // population[0]
  attack::Host* peer = nullptr;        // population[1]
  attack::Host* attacker = nullptr;    // population[n/2]
  attack::Host* attacker_b = nullptr;  // population[n-1]
  of::Location victim_loc;
  of::Location peer_loc;
  of::Location attacker_loc;
  of::Location attacker_b_loc;
  of::DataLink* migration_target = nullptr;
  attack::OutOfBandChannel* oob = nullptr;

  /// 802.1x token of population[i] (SecureBinding enrollment).
  static constexpr std::uint64_t kTokenBase = 0x5EED'0000;
  [[nodiscard]] static std::uint64_t token_of(std::size_t index) {
    return kTokenBase + index;
  }

  [[nodiscard]] topo::Link fabricated_link() const {
    return topo::Link{attacker_loc, attacker_b_loc};
  }
  [[nodiscard]] bool fabricated_link_present() const {
    return tb->controller().topology().has_link(attacker_loc, attacker_b_loc);
  }
};

/// Build (but do not start) the fleet testbed.
FleetTestbed make_fleet_testbed(const FleetTestbedConfig& config);

/// Enrollment registry covering the whole population (SecureBinding).
[[nodiscard]] defense::SecureBindingConfig fleet_enrollment(
    const FleetTestbed& f);

/// Register every host with the HTS (call after start()): the victim
/// announces itself, then the rest unicast a join packet toward it,
/// staggered so the Packet-In stream is spread over `stagger` per host.
void fleet_warm_hosts(FleetTestbed& f,
                      sim::Duration stagger = sim::Duration::micros(500));

/// Attach background traffic to the whole population: every host is a
/// flow endpoint; every non-role host may migrate; spare links beyond
/// the reserved migration target feed the mobility pool.
void fleet_attach_background(FleetTestbed& f, BackgroundTraffic& bg);

// ---------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------

struct FleetHijackConfig {
  topo::GeneratorConfig topology;
  DefenseSuite suite = DefenseSuite::None;
  std::uint64_t seed = 1;
  std::size_t max_hosts = 0;
  std::size_t spare_access_links = 4;

  /// Background load; background_on=false runs the identical timeline
  /// on an idle fabric (the control cell benches compare against).
  bool background_on = true;
  BackgroundTrafficConfig background;

  // Probe engine. The cadence follows the paper (Figs. 5-8) but the
  // timeout is re-derived for fleet geometry: an inter-pod fat-tree
  // round trip crosses up to 8 fabric hops at 5 ms each (~41 ms RTT,
  // plus micro-burst tail), so the paper's 35 ms two-switch timeout
  // would declare a *live* victim down on every probe.
  attack::ProbeType probe_type = attack::ProbeType::ArpPing;
  sim::Duration probe_period = sim::Duration::millis(100);
  sim::Duration probe_timeout = sim::Duration::millis(80);
  int confirm_failures = 1;
  bool nmap_overhead = false;

  /// Steady probing + background before the victim's move; kept short
  /// relative to run_hijack because every fleet second is expensive.
  sim::Duration settle_window = sim::Duration::seconds(4);
  sim::Duration victim_downtime = sim::Duration::seconds(3);

  bool check_invariants = true;
  bool collect_pipeline_stats = false;
  std::optional<ctrl::ControllerProfile> profile;
  obs::Observability* obs = nullptr;
  TrialArena* arena = nullptr;
};

struct FleetHijackOutcome {
  bool hijack_succeeded = false;
  bool traffic_redirected = false;
  // Race windows relative to the victim's down instant (Figs. 5-8).
  std::optional<double> down_to_final_probe_start_ms;
  std::optional<double> down_to_declared_down_ms;
  std::optional<double> down_to_iface_up_ms;
  std::optional<double> down_to_confirmed_ms;

  /// HTS population at the end of the run (the fleet-scale observable:
  /// the race must be won against a full host table, not three hosts).
  std::size_t hosts_tracked = 0;
  BackgroundTraffic::Stats background;

  std::uint64_t alerts_total = 0;
  std::uint64_t invariant_sweeps = 0;
  std::uint64_t invariant_violations = 0;
  std::uint64_t events_executed = 0;
  std::vector<ctrl::MessagePipeline::ListenerStats> pipeline_stats;
};

FleetHijackOutcome run_fleet_hijack(const FleetHijackConfig& config);

struct FleetLinkAttackConfig {
  topo::GeneratorConfig topology;
  LinkAttackKind kind = LinkAttackKind::ClassicRelay;
  DefenseSuite suite = DefenseSuite::None;
  std::uint64_t seed = 1;
  std::size_t max_hosts = 0;
  std::size_t spare_access_links = 4;

  bool background_on = true;
  BackgroundTrafficConfig background;

  /// Benign settle before the attack; the attack window must exceed the
  /// ~32 s two-LLDP-round registration horizon (run_link_attack).
  sim::Duration benign_window = sim::Duration::seconds(8);
  sim::Duration attack_window = sim::Duration::seconds(40);
  bool blackhole = false;

  bool check_invariants = true;
  bool collect_pipeline_stats = false;
  std::optional<ctrl::ControllerProfile> profile;
  obs::Observability* obs = nullptr;
  TrialArena* arena = nullptr;
};

struct FleetLinkAttackOutcome {
  bool link_registered = false;
  bool link_present_at_end = false;
  bool mitm_traffic = false;
  std::uint64_t lldp_relayed = 0;
  std::uint64_t transit_bridged = 0;
  std::uint64_t flaps = 0;

  std::size_t hosts_tracked = 0;
  BackgroundTraffic::Stats background;

  std::uint64_t alerts_before_attack = 0;
  std::uint64_t alerts_total = 0;
  std::uint64_t alerts_topoguard = 0;
  std::uint64_t invariant_sweeps = 0;
  std::uint64_t invariant_violations = 0;
  std::uint64_t events_executed = 0;
  std::vector<ctrl::MessagePipeline::ListenerStats> pipeline_stats;

  [[nodiscard]] bool detected() const {
    return alerts_total > alerts_before_attack;
  }
};

FleetLinkAttackOutcome run_fleet_link_attack(
    const FleetLinkAttackConfig& config);

}  // namespace tmg::scenario
