// Experiment drivers shared by the benchmarks, integration tests, and
// examples. Each driver builds a canned testbed, runs one experiment
// from the paper's evaluation, and returns a plain result struct.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "attack/oob_channel.hpp"
#include "attack/port_probing.hpp"
#include "attack/probes.hpp"
#include "ctrl/message_pipeline.hpp"
#include "ctrl/profiles.hpp"
#include "defense/secure_binding.hpp"
#include "defense/topoguard_plus.hpp"
#include "ids/profile_anomaly.hpp"
#include "scenario/fig1_testbed.hpp"
#include "scenario/fig2_testbed.hpp"
#include "scenario/fig9_testbed.hpp"
#include "scenario/trial_arena.hpp"
#include "stats/descriptive.hpp"

namespace tmg::scenario {

// ---------------------------------------------------------------------
// Defense suites
// ---------------------------------------------------------------------

enum class DefenseSuite {
  None,
  TopoGuard,
  Sphinx,
  TopoGuardAndSphinx,
  TopoGuardPlus,
  /// TopoGuard + cryptographic identifier binding (paper Sec. VI-A).
  SecureBinding,
  /// Every detection defense at once — TopoGuard, SPHINX, and the
  /// TOPOGUARD+ extensions (CMM + LLI) — stacked as ordered pipeline
  /// listeners. Verdicts accumulate: each module sees every event and
  /// a single Block wins (paper Sec. IV-B composition semantics).
  Stacked,
};
const char* to_string(DefenseSuite s);

struct DefenseHandles {
  defense::TopoGuard* topoguard = nullptr;
  defense::Sphinx* sphinx = nullptr;
  defense::Cmm* cmm = nullptr;
  defense::Lli* lli = nullptr;
  defense::SecureBinding* secure_binding = nullptr;
};

/// Controller options required by a suite (LLDP auth / timestamps).
TestbedOptions suite_options(DefenseSuite suite, std::uint64_t seed);

/// Install the suite's modules on a controller (before Testbed::start).
/// `enrollment` provides the credential registry for SecureBinding
/// (ignored by the other suites).
DefenseHandles install_suite(
    ctrl::Controller& ctrl, DefenseSuite suite,
    const defense::SecureBindingConfig* enrollment = nullptr);

// ---------------------------------------------------------------------
// Link fabrication / port amnesia (paper Sec. V-A, Figs. 10-13)
// ---------------------------------------------------------------------

enum class LinkAttackKind {
  ClassicRelay,     // plain LLDP relay, no amnesia (pre-paper baseline)
  OobAmnesia,       // out-of-band, prepositioned flap (CMM-evasive)
  OobAmnesiaNaive,  // out-of-band, flap during propagation (Fig. 1 flow)
  InBandAmnesia,    // covert in-band relay with context switching
  FlowRuleRelay,    // LLDP-splicing flow rules on a transit switch,
                    // no hosts involved (attack::FlowRuleRelay)
};
const char* to_string(LinkAttackKind k);

struct LinkAttackOutcome {
  bool link_registered = false;      // fabricated link entered topology
  bool link_present_at_end = false;  // still poisoned at the end
  bool mitm_traffic = false;         // h1<->h2 flow crossed the attackers
  std::uint64_t lldp_relayed = 0;
  std::uint64_t transit_bridged = 0;
  std::uint64_t flaps = 0;
  std::size_t alerts_before_attack = 0;  // false positives during benign run
  std::size_t alerts_total = 0;
  std::size_t alerts_topoguard = 0;
  std::size_t alerts_sphinx = 0;
  std::size_t alerts_cmm = 0;
  std::size_t alerts_lli = 0;
  std::size_t alerts_anomaly = 0;  // ProfileAnomalyService raises
  /// Anomaly IDS deviation totals (zero-initialized when no IDS ran).
  ids::AnomalyCounters anomaly;
  /// Runtime invariant checker (src/check): battery runs and violations
  /// over the whole experiment. Violations indicate a simulator bug.
  std::uint64_t invariant_sweeps = 0;
  std::uint64_t invariant_violations = 0;
  /// Simulator events executed by this trial's loop (bench throughput).
  std::uint64_t events_executed = 0;
  /// Per-listener dispatch counters (filled when the config asks).
  std::vector<ctrl::MessagePipeline::ListenerStats> pipeline_stats;
  [[nodiscard]] bool detected() const {
    return alerts_total > alerts_before_attack;
  }
};

struct LinkAttackConfig {
  LinkAttackKind kind = LinkAttackKind::OobAmnesia;
  DefenseSuite suite = DefenseSuite::TopoGuard;
  std::uint64_t seed = 42;
  /// Benign run before the attack starts (paper: 1 minute).
  sim::Duration benign_window = sim::Duration::seconds(60);
  /// Attack phase duration (covers several LLDP rounds).
  sim::Duration attack_window = sim::Duration::seconds(60);
  /// Drop MITM transit instead of bridging it (SPHINX-visible DoS).
  bool blackhole = false;
  /// Capture per-listener pipeline counters into the outcome.
  bool collect_pipeline_stats = false;
  /// Observability layer to attach (borrowed; nullptr runs unobserved).
  /// Wires the testbed (pipeline spans, loop probe) and the attack's
  /// flap/relay spans, and emits "scenario" phase instants.
  obs::Observability* obs = nullptr;
  /// Attach the runtime invariant checker. Tests keep the default;
  /// benches pass false so the measured hot path excludes the (read-
  /// only, result-neutral) periodic audit battery.
  bool check_invariants = true;
  /// Per-worker arena to run in (borrowed; nullptr builds a private
  /// event loop). Reusing an arena is observationally neutral — see
  /// trial_arena.hpp.
  TrialArena* arena = nullptr;
  /// Controller pipeline profile (see HijackConfig::profile). Unset
  /// keeps the testbed default (Floodlight).
  std::optional<ctrl::ControllerProfile> profile;
  /// Run the full scenario timeline WITHOUT launching the attack
  /// (clean-baseline runs: anomaly training and false-alert scoring).
  bool attack_enabled = true;
  /// Detect mode: install a ProfileAnomalyService scoring against this
  /// trained baseline (borrowed; shared read-only across trials).
  const ids::BehaviorProfile* anomaly_profile = nullptr;
  /// Train mode: install the IDS forwarding its featurization into this
  /// trainer (borrowed; overrides anomaly_profile). Serial runs only.
  ids::ProfileTrainer* anomaly_trainer = nullptr;
  /// Let the IDS veto (only bites under OrderedStop profiles).
  bool anomaly_veto = false;
};

LinkAttackOutcome run_link_attack(const LinkAttackConfig& config);

// ---------------------------------------------------------------------
// Port probing / host-location hijack (paper Sec. V-B, Figs. 3-8)
// ---------------------------------------------------------------------

struct HijackConfig {
  DefenseSuite suite = DefenseSuite::TopoGuard;
  std::uint64_t seed = 42;
  attack::ProbeType probe_type = attack::ProbeType::ArpPing;
  sim::Duration probe_period = sim::Duration::millis(50);
  sim::Duration probe_timeout = sim::Duration::millis(35);
  int confirm_failures = 1;
  bool nmap_overhead = false;
  /// Victim downtime window (VM live migration: seconds).
  sim::Duration victim_downtime = sim::Duration::seconds(3);
  bool victim_rejoins = true;
  /// Capture per-listener pipeline counters into the outcome.
  bool collect_pipeline_stats = false;
  /// Observability layer to attach (borrowed; nullptr runs unobserved).
  /// Wires the testbed and the attack's probe/race span tree, and emits
  /// the "scenario/victim.down" instant the race windows are measured
  /// against (tools/render_timeline.py reconstructs Figs. 5-8 from it).
  obs::Observability* obs = nullptr;
  /// Attach the runtime invariant checker (see LinkAttackConfig).
  bool check_invariants = true;
  /// Per-worker arena to run in (see LinkAttackConfig).
  TrialArena* arena = nullptr;
  /// Controller pipeline profile: Table III timers plus the listener
  /// layout, dispatch discipline, host-migration policy, and discovery
  /// strategy of one controller family (profiles.hpp). Unset keeps the
  /// testbed default (Floodlight); bench_montecarlo sweeps
  /// all_profiles() to map how each controller's cadence *and*
  /// processing model shift the race windows (ONOS's probe-before-move
  /// delays or rejects the rebind entirely).
  std::optional<ctrl::ControllerProfile> profile;
  /// Run the scenario without probing or hijacking (clean baseline for
  /// anomaly training / false-alert scoring; victim stays up).
  bool attack_enabled = true;
  /// Anomaly IDS hooks (see LinkAttackConfig).
  const ids::BehaviorProfile* anomaly_profile = nullptr;
  ids::ProfileTrainer* anomaly_trainer = nullptr;
  bool anomaly_veto = false;
};

struct HijackOutcome {
  bool hijack_succeeded = false;  // HTS re-bound victim's MAC to attacker
  bool traffic_redirected = false;  // peer's victim-bound ping hit attacker
  // All durations in ms, measured from the instant the victim unplugged.
  std::optional<double> down_to_final_probe_start_ms;  // Fig. 7
  std::optional<double> down_to_declared_down_ms;      // Fig. 8
  std::optional<double> down_to_iface_up_ms;           // Fig. 5
  std::optional<double> down_to_confirmed_ms;          // Fig. 6
  std::optional<double> ident_change_ms;               // Fig. 4 component
  std::size_t alerts_before_rejoin = 0;
  std::size_t alerts_after_rejoin = 0;
  std::size_t alerts_anomaly = 0;  // ProfileAnomalyService raises
  /// Anomaly IDS deviation totals (zero-initialized when no IDS ran).
  ids::AnomalyCounters anomaly;
  /// Full alert log (diagnostics and the alert-flood experiment).
  std::vector<ctrl::Alert> alerts;
  /// Runtime invariant checker counters (see LinkAttackOutcome).
  std::uint64_t invariant_sweeps = 0;
  std::uint64_t invariant_violations = 0;
  /// Simulator events executed by this trial's loop (bench throughput).
  std::uint64_t events_executed = 0;
  /// Per-listener dispatch counters (filled when the config asks).
  std::vector<ctrl::MessagePipeline::ListenerStats> pipeline_stats;
};

HijackOutcome run_hijack(const HijackConfig& config);

// ---------------------------------------------------------------------
// LLI latency series (paper Figs. 10-11, 13)
// ---------------------------------------------------------------------

struct LliSeries {
  struct Point {
    double t_s = 0.0;
    std::string link;
    double latency_ms = 0.0;
    std::optional<double> threshold_ms;
    bool flagged = false;
    bool fake = false;  // measurement belongs to the fabricated link
  };
  std::vector<Point> points;
  std::size_t fake_attempts = 0;
  std::size_t fake_detections = 0;
  bool fake_link_ever_registered = false;
  /// Fig. 10: per-real-link latency summaries.
  std::vector<std::pair<std::string, stats::Summary>> per_link;
  /// Simulator events executed by this trial's loop (bench throughput).
  std::uint64_t events_executed = 0;
};

struct LliExperimentConfig {
  std::uint64_t seed = 42;
  sim::Duration benign_window = sim::Duration::seconds(60);
  sim::Duration attack_window = sim::Duration::seconds(120);
  bool launch_attack = true;
  /// Out-of-band relay channel parameters (ablation: how fast must the
  /// attacker's side channel be before the LLI stops seeing it? The
  /// paper scopes out "point-to-point laser" hardware relays).
  attack::OobChannelConfig channel;
  /// Observability layer to attach (borrowed; nullptr runs unobserved).
  obs::Observability* obs = nullptr;
};

LliSeries run_lli_experiment(const LliExperimentConfig& config);

// ---------------------------------------------------------------------
// Probe timing & scan detection (paper Table I, Sec. V-B2)
// ---------------------------------------------------------------------

struct ProbeTimingRow {
  attack::ProbeType type;
  attack::Stealth stealth;
  const char* requirements = "";
  stats::Summary tool_overhead_ms;  // Table I "Timing" column model
  stats::Summary end_to_end_ms;     // full in-sim exchange incl. RTT
  std::size_t alive_detected = 0;   // sanity: probes that saw the target
  /// Simulator events executed by this trial's loop (bench throughput).
  std::uint64_t events_executed = 0;
};

ProbeTimingRow measure_probe_timing(attack::ProbeType type, std::size_t n,
                                    std::uint64_t seed);

struct ScanDetectionResult {
  attack::ProbeType type;
  double rate_per_s = 0.0;
  std::uint64_t probes_sent = 0;
  std::size_t ids_alerts = 0;
  /// Runtime invariant checker counters (see LinkAttackOutcome).
  std::uint64_t invariant_sweeps = 0;
  std::uint64_t invariant_violations = 0;
  /// Simulator events executed by this trial's loop (bench throughput).
  std::uint64_t events_executed = 0;
  /// Per-listener dispatch counters (always filled: the chain is tiny).
  std::vector<ctrl::MessagePipeline::ListenerStats> pipeline_stats;
  [[nodiscard]] bool detected() const { return ids_alerts > 0; }
};

/// `obs` (borrowed, may be null) attaches the observability layer to the
/// lab testbed for the duration of the scan.
ScanDetectionResult run_scan_detection(attack::ProbeType type,
                                       double rate_per_s,
                                       sim::Duration window,
                                       std::uint64_t seed,
                                       obs::Observability* obs = nullptr);

}  // namespace tmg::scenario
