#include "scenario/hypervisor.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace tmg::scenario {

Hypervisor::Hypervisor(sim::EventLoop& loop, sim::Rng rng,
                       HypervisorConfig config)
    : loop_{loop}, rng_{std::move(rng)}, config_{config} {}

void Hypervisor::add_server(ServerId id, double capacity,
                            std::vector<of::DataLink*> slots) {
  assert(capacity > 0.0);
  Server server;
  server.capacity = capacity;
  server.slot_used.assign(slots.size(), false);
  server.slots = std::move(slots);
  const auto [_, inserted] = servers_.emplace(id, std::move(server));
  if (!inserted) throw std::logic_error("duplicate server id");
}

std::size_t Hypervisor::free_slot(ServerId id) const {
  const Server& server = servers_.at(id);
  for (std::size_t i = 0; i < server.slot_used.size(); ++i) {
    if (!server.slot_used[i]) return i;
  }
  return server.slot_used.size();  // none
}

void Hypervisor::place_vm(std::string name, attack::Host& vm, ServerId server,
                          VmOptions options) {
  Server& srv = servers_.at(server);
  const std::size_t slot = free_slot(server);
  if (slot >= srv.slots.size()) throw std::logic_error("server full");
  srv.slot_used[slot] = true;
  vm.attach_link(*srv.slots[slot], of::Side::B);
  Vm record;
  record.name = name;
  record.host = &vm;
  record.server = server;
  record.slot = slot;
  record.load = options.load;
  record.migratable = options.migratable;
  const auto [_, inserted] = vms_.emplace(std::move(name), record);
  if (!inserted) throw std::logic_error("duplicate vm name");
}

void Hypervisor::set_load(const std::string& vm_name, double load) {
  vms_.at(vm_name).load = std::max(0.0, load);
}

double Hypervisor::load_of(ServerId id) const {
  double total = 0.0;
  for (const auto& [_, vm] : vms_) {
    if (vm.server == id) total += vm.load;
  }
  return total;
}

double Hypervisor::server_utilization(ServerId id) const {
  return load_of(id) / servers_.at(id).capacity;
}

ServerId Hypervisor::server_of(const std::string& vm_name) const {
  return vms_.at(vm_name).server;
}

void Hypervisor::start() {
  if (started_) return;
  started_ = true;
  tick();
}

void Hypervisor::tick() {
  const sim::SimTime now = loop_.now();
  if (!migrating_) {
    for (auto& [id, server] : servers_) {
      if (server_utilization(id) < config_.saturation_threshold) {
        saturated_since_.erase(id);
        continue;
      }
      auto [it, fresh] = saturated_since_.try_emplace(id, now);
      if (now - it->second < config_.sustain) continue;

      // Persistent saturation: evict the most expensive migratable VM
      // to the least-utilized server with a free slot.
      Vm* candidate = nullptr;
      for (auto& [_, vm] : vms_) {
        if (vm.server != id || !vm.migratable) continue;
        if (!candidate || vm.load > candidate->load) candidate = &vm;
      }
      if (!candidate) continue;
      ServerId best = id;
      double best_util = std::numeric_limits<double>::max();
      for (const auto& [other_id, other] : servers_) {
        if (other_id == id || free_slot(other_id) >= other.slots.size()) {
          continue;
        }
        const double util = server_utilization(other_id);
        if (util < best_util) {
          best_util = util;
          best = other_id;
        }
      }
      if (best != id) {
        migrate(*candidate, best);
        saturated_since_.erase(id);
        break;  // one migration at a time
      }
    }
  }
  loop_.post_after(config_.tick, [this] { tick(); });
}

void Hypervisor::migrate(Vm& vm, ServerId to) {
  migrating_ = true;
  ++migrations_;
  Server& src = servers_.at(vm.server);
  Server& dst = servers_.at(to);
  const std::size_t dst_slot = free_slot(to);
  assert(dst_slot < dst.slots.size());

  const double downtime_s =
      std::exp(rng_.normal(config_.downtime_mu_s, config_.downtime_sigma));
  const sim::Duration downtime = sim::Duration::from_seconds_f(downtime_s);
  if (listener_) listener_(vm.name, vm.server, to, downtime);

  // Stop-and-copy: the VM vanishes from its old port...
  vm.host->detach_link();
  src.slot_used[vm.slot] = false;
  dst.slot_used[dst_slot] = true;
  const ServerId from = vm.server;
  (void)from;
  vm.server = to;
  vm.slot = dst_slot;

  // ...and resumes at the destination after the downtime window, where
  // its network stack re-announces itself.
  attack::Host* host = vm.host;
  of::DataLink* link = dst.slots[dst_slot];
  loop_.post_after(downtime, [this, host, link] {
    host->attach_link(*link, of::Side::B);
    migrating_ = false;
    // Gratuitous ARP once the switch has detected the port up (the
    // resumed VM's stack re-announces itself).
    loop_.post_after(sim::Duration::millis(10),
                         [host] { host->send_arp_request(host->ip()); });
  });
}

}  // namespace tmg::scenario
