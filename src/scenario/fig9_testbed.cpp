#include "scenario/fig9_testbed.hpp"

namespace tmg::scenario {

TestbedOptions fig9_options(std::uint64_t seed) {
  TestbedOptions opts;
  opts.seed = seed;
  opts.controller.profile = ctrl::floodlight_profile();
  opts.controller.authenticate_lldp = true;
  opts.controller.lldp_timestamps = true;
  // Experiments on the evaluation network always run self-checked; the
  // checker only raises alerts on *simulator* corruption, so results
  // are unaffected.
  opts.check_invariants = true;
  return opts;
}

Fig9Testbed make_fig9_testbed(TestbedOptions options) {
  Fig9Testbed f;
  f.tb = std::make_unique<Testbed>(std::move(options));
  Testbed& tb = *f.tb;

  for (of::Dpid dpid = 0x1; dpid <= 0x5; ++dpid) tb.add_switch(dpid);
  // Four switch-internal links in a chain (Fig. 10 measures all four).
  for (of::Dpid dpid = 0x1; dpid <= 0x4; ++dpid) {
    tb.connect_switches(dpid, 10, dpid + 1, 11);
    f.real_links.emplace_back(of::Location{dpid, 10},
                              of::Location{dpid + 1, 11});
  }

  attack::HostConfig h1_cfg;
  h1_cfg.mac = net::MacAddress::host(1);
  h1_cfg.ip = net::Ipv4Address::host(1);
  f.h1 = &tb.add_host(0x1, 1, h1_cfg);

  attack::HostConfig h2_cfg;
  h2_cfg.mac = net::MacAddress::host(2);
  h2_cfg.ip = net::Ipv4Address::host(2);
  f.h2 = &tb.add_host(0x5, 1, h2_cfg);

  attack::HostConfig a_cfg;
  a_cfg.mac = net::MacAddress::host(0xA);
  a_cfg.ip = net::Ipv4Address::host(10);
  f.attacker_a = &tb.add_host(0x2, 1, a_cfg);

  attack::HostConfig b_cfg;
  b_cfg.mac = net::MacAddress::host(0xB);
  b_cfg.ip = net::Ipv4Address::host(11);
  f.attacker_b = &tb.add_host(0x4, 1, b_cfg);

  f.oob = &tb.add_oob_channel();  // 10 ms wireless hop
  return f;
}

void fig9_warm_hosts(Fig9Testbed& f) {
  f.h1->send_arp_request(f.h2->ip());
  f.h2->send_arp_request(f.h1->ip());
  f.attacker_a->send_arp_request(f.h1->ip());
  f.attacker_b->send_arp_request(f.h2->ip());
  f.tb->run_for(sim::Duration::millis(500));
}

}  // namespace tmg::scenario
