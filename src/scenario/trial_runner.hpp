// Parallel trial execution for the paper-reproduction benches.
//
// Every figure/table is an aggregate over hundreds of independent seeded
// trials. Each trial builds its own EventLoop/Testbed/Rng, so trials are
// embarrassingly parallel — provided no state crosses trial boundaries.
// The determinism contract (DESIGN.md §7):
//
//   1. No cross-trial state. A trial may only touch objects it created.
//      Process-wide counters that feed trial output (the per-thread
//      trace-id counter) are reset by the runner before every trial.
//   2. Seed derivation. Trial i's seed comes from
//      TrialRunner::trial_seed(base_seed, i) — a pure function of the
//      base seed and the trial index, never of scheduling order.
//   3. Ordered merge. Results land in a vector indexed by trial number;
//      aggregation happens on the caller's thread, in index order.
//
// Under that contract, `--jobs N` produces byte-identical per-trial
// results for every N (the determinism test in
// tests/trial_runner_test.cpp asserts exactly this).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace tmg::scenario {

struct TrialRunnerOptions {
  /// Worker count. 0 = one per hardware thread; 1 = the legacy serial
  /// path (no threads are created at all).
  std::size_t jobs = 0;
};

class TrialRunner {
 public:
  explicit TrialRunner(TrialRunnerOptions options = {});

  /// Effective worker count (never 0).
  [[nodiscard]] std::size_t jobs() const { return jobs_; }

  /// Deterministic per-trial seed: a SplitMix64 scramble of
  /// `base_seed ^ trial_index`, so neighboring trials get decorrelated
  /// streams while the mapping stays a pure function of (base, index).
  static std::uint64_t trial_seed(std::uint64_t base_seed,
                                  std::size_t trial_index);

  /// Run `trials` independent trials of `fn` and return the results in
  /// trial-index order. `fn` must be callable concurrently from multiple
  /// threads and must not share mutable state across invocations.
  template <typename Fn>
  auto map(std::size_t trials, Fn&& fn)
      -> std::vector<decltype(fn(std::size_t{0}))> {
    using Result = decltype(fn(std::size_t{0}));
    std::vector<Result> results(trials);
    run_indexed(trials, [&](std::size_t i) { results[i] = fn(i); });
    return results;
  }

  /// Type-erased core: invoke `fn(i)` once for each i in [0, trials),
  /// possibly concurrently, blocking until all trials finish. Each
  /// invocation runs with a freshly reset trace-id counter. If any trial
  /// throws, the exception from the lowest-numbered failing trial is
  /// rethrown after the batch completes.
  void run_indexed(std::size_t trials,
                   const std::function<void(std::size_t)>& fn) const;

 private:
  std::size_t jobs_;
};

/// Parse `--jobs N` / `--jobs=N` from a command line (0 when absent,
/// meaning "hardware default"). Shared by the benches and examples.
std::size_t parse_jobs_arg(int argc, char** argv);

}  // namespace tmg::scenario
