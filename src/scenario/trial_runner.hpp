// Parallel trial execution for the paper-reproduction benches.
//
// Every figure/table is an aggregate over hundreds (to millions) of
// independent seeded trials. Each trial builds its own
// EventLoop/Testbed/Rng, so trials are embarrassingly parallel —
// provided no state crosses trial boundaries. The determinism contract
// (DESIGN.md §7):
//
//   1. No cross-trial state. A trial may only touch objects it created.
//      Process-wide counters that feed trial output (the per-thread
//      trace-id counter) are reset by the runner before every trial.
//   2. Seed derivation. Trial i's seed comes from
//      TrialRunner::trial_seed(base_seed, i) — a pure function of the
//      base seed and the trial index, never of scheduling order.
//   3. Ordered merge. Results land in a vector indexed by trial number
//      (map), or in per-chunk partial aggregates merged in chunk-index
//      order (reduce); aggregation happens on the caller's thread.
//
// Scheduling is chunked: the index range [0, trials) is cut into
// contiguous chunks whose boundaries depend on the trial count alone —
// never on the worker count — and workers drain chunks from a shared
// cursor. Because chunk boundaries and the merge order are
// jobs-independent, `--jobs N` produces byte-identical results for
// every N, including reduce() over order-sensitive accumulators like
// stats::StreamingQuantile (tests/trial_runner_test.cpp asserts this).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

namespace tmg::scenario {

struct TrialRunnerOptions {
  /// Worker count. 0 = one per hardware thread; 1 = the serial path (no
  /// threads are created at all).
  std::size_t jobs = 0;
  /// Run the pre-chunking scheduler: one pool task per trial and a
  /// per-trial exception vector. Kept as an A/B baseline for
  /// tools/run_bench.py --speedup (--legacy-runner on the benches).
  /// map/run_indexed results are identical either way, only the
  /// scheduling overhead differs. reduce() under legacy holds one
  /// partial per *trial* (merged in trial order — still deterministic
  /// at any jobs value, but O(trials) accumulators, and partial
  /// boundaries differ from the chunked runner, so order-sensitive
  /// accumulators may round differently).
  bool legacy = false;
};

class TrialRunner {
 public:
  explicit TrialRunner(TrialRunnerOptions options = {});

  /// Effective worker count (never 0).
  [[nodiscard]] std::size_t jobs() const { return jobs_; }

  /// Deterministic per-trial seed: a SplitMix64 scramble of
  /// `base_seed ^ trial_index`, so neighboring trials get decorrelated
  /// streams while the mapping stays a pure function of (base, index).
  static std::uint64_t trial_seed(std::uint64_t base_seed,
                                  std::size_t trial_index);

  /// Arena slot for the calling worker thread: 0 on the serial path,
  /// the pool worker index otherwise. Always < jobs(). Trial functions
  /// index per-worker TrialArenas with this.
  static std::size_t worker_slot();

  /// Reset the per-thread state the determinism contract (§7 rule 1)
  /// requires fresh at trial entry — currently the packet trace-id
  /// counter. run_indexed/map and reduce() both apply it before every
  /// trial; exposed for custom drivers built directly on run_indexed.
  static void reset_trial_thread_state();

  /// Run `trials` independent trials of `fn` and return the results in
  /// trial-index order. `fn` must be callable concurrently from multiple
  /// threads and must not share mutable state across invocations.
  template <typename Fn>
  auto map(std::size_t trials, Fn&& fn)
      -> std::vector<decltype(fn(std::size_t{0}))> {
    using Result = decltype(fn(std::size_t{0}));
    std::vector<Result> results(trials);
    run_indexed(trials, [&](std::size_t i) { results[i] = fn(i); });
    return results;
  }

  /// Streaming aggregation: run `trials` trials and fold each into a
  /// per-chunk accumulator, then merge the chunk accumulators on the
  /// caller's thread in chunk-index order. Memory is O(chunks), never
  /// O(trials) — a 10^6-trial sweep holds at most kMaxChunks partial
  /// aggregates and zero per-trial results. (Exception: the legacy
  /// baseline's chunks are single trials, so it keeps one partial per
  /// trial — see TrialRunnerOptions::legacy.)
  ///
  ///   make():            -> Acc        fresh accumulator (per chunk,
  ///                                    plus one for the merged total)
  ///   fold(acc, i):      accumulate trial i into this chunk's acc
  ///   merge(total, acc): absorb a chunk accumulator (chunk order)
  ///
  /// Because chunk boundaries are a function of the trial count alone,
  /// the fold/merge sequence — and therefore the result, bit for bit —
  /// is identical for every jobs value, even when merge() does not
  /// commute or associate (floating-point sums, P² quantile states).
  template <typename MakeFn, typename FoldFn, typename MergeFn>
  auto reduce(std::size_t trials, MakeFn&& make, FoldFn&& fold,
              MergeFn&& merge) const -> decltype(make()) {
    using Acc = decltype(make());
    // Size the partials to the geometry the scheduler actually emits:
    // the legacy baseline schedules one single-trial chunk per trial
    // (chunk index == trial index), not the <= kMaxChunks static grid.
    const std::size_t n_chunks = legacy_ ? trials : chunk_count(trials);
    std::vector<std::optional<Acc>> partials(n_chunks);
    run_chunks(trials,
               [&](std::size_t chunk, std::size_t begin, std::size_t end) {
                 Acc acc = make();
                 for (std::size_t i = begin; i < end; ++i) {
                   reset_trial_thread_state();
                   fold(acc, i);
                 }
                 partials[chunk] = std::move(acc);
               });
    Acc total = make();
    for (std::optional<Acc>& p : partials) {
      merge(total, std::move(*p));
    }
    return total;
  }

  /// Type-erased core: invoke `fn(i)` once for each i in [0, trials),
  /// possibly concurrently, blocking until all trials finish. Each
  /// invocation runs with a freshly reset trace-id counter. If any trial
  /// throws, the exception from the lowest-numbered failing trial is
  /// rethrown after the batch completes.
  void run_indexed(std::size_t trials,
                   const std::function<void(std::size_t)>& fn) const;

  /// Chunk geometry (static, jobs-independent): ceil(trials/kMaxChunks)
  /// trials per chunk, so small batches get one-trial chunks (full
  /// fan-out) and huge batches amortize scheduling over at most
  /// kMaxChunks tasks.
  static constexpr std::size_t kMaxChunks = 64;
  static std::size_t chunk_size(std::size_t trials);
  static std::size_t chunk_count(std::size_t trials);

 private:
  /// Chunked scheduler shared by run_indexed and reduce: invoke
  /// `chunk_fn(chunk, begin, end)` for every chunk, possibly
  /// concurrently. Per-trial trace-id isolation is the chunk_fn's job —
  /// both run_indexed and reduce() call reset_trial_thread_state()
  /// before every trial inside their chunk lambdas.
  void run_chunks(
      std::size_t trials,
      const std::function<void(std::size_t, std::size_t, std::size_t)>&
          chunk_fn) const;

  void run_chunks_legacy(
      std::size_t trials,
      const std::function<void(std::size_t, std::size_t, std::size_t)>&
          chunk_fn) const;

  std::size_t jobs_;
  bool legacy_;
};

/// Parse `--jobs N` / `--jobs=N` from a command line (0 when absent,
/// meaning "hardware default"). Malformed values — non-numeric text,
/// negative numbers, trailing garbage, overflow — are rejected with an
/// error message on stderr and exit(2): a typo must not silently run
/// the hardware-default worker count. Shared by the benches and
/// examples.
std::size_t parse_jobs_arg(int argc, char** argv);

/// Pure parsing core of parse_jobs_arg, exposed for unit tests: returns
/// the parsed value, or std::nullopt if `text` is not a plain
/// non-negative decimal integer in range.
std::optional<std::size_t> parse_jobs_value(const char* text);

}  // namespace tmg::scenario
