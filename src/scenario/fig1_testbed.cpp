#include "scenario/fig1_testbed.hpp"

namespace tmg::scenario {

Fig1Testbed make_fig1_testbed(TestbedOptions options) {
  Fig1Testbed f;
  f.tb = std::make_unique<Testbed>(std::move(options));
  Testbed& tb = *f.tb;

  tb.add_switch(0x1);
  tb.add_switch(0x2);
  tb.connect_switches(0x1, 10, 0x2, 10);

  attack::HostConfig a_cfg;
  a_cfg.mac = net::MacAddress::host(0xA);
  a_cfg.ip = net::Ipv4Address::host(10);
  f.attacker_a = &tb.add_host(0x1, 1, a_cfg);

  attack::HostConfig b_cfg;
  b_cfg.mac = net::MacAddress::host(0xB);
  b_cfg.ip = net::Ipv4Address::host(11);
  f.attacker_b = &tb.add_host(0x2, 1, b_cfg);

  attack::HostConfig h1_cfg;
  h1_cfg.mac = net::MacAddress::host(1);
  h1_cfg.ip = net::Ipv4Address::host(1);
  f.h1 = &tb.add_host(0x1, 2, h1_cfg);

  attack::HostConfig h2_cfg;
  h2_cfg.mac = net::MacAddress::host(2);
  h2_cfg.ip = net::Ipv4Address::host(2);
  f.h2 = &tb.add_host(0x2, 2, h2_cfg);

  f.oob = &tb.add_oob_channel();
  return f;
}

void fig1_warm_hosts(Fig1Testbed& f) {
  // Everyone originates a little traffic: the HTS learns locations and
  // TopoGuard marks the access ports HOST.
  f.h1->send_arp_request(f.h2->ip());
  f.h2->send_arp_request(f.h1->ip());
  f.attacker_a->send_arp_request(f.h1->ip());
  f.attacker_b->send_arp_request(f.h2->ip());
  f.tb->run_for(sim::Duration::millis(500));
}

}  // namespace tmg::scenario
