// Paper Fig. 9 evaluation testbed: a chain of switches with four
// switch-internal links (5 ms each, with micro-bursts), end hosts, two
// attacker-compromised hosts, and a 10 ms out-of-band channel between
// the attackers. Used for the TOPOGUARD+ evaluation (Figs. 10-13).
#pragma once

#include <memory>
#include <vector>

#include "scenario/testbed.hpp"

namespace tmg::scenario {

struct Fig9Testbed {
  std::unique_ptr<Testbed> tb;
  attack::Host* h1 = nullptr;          // on (0x1, 1)
  attack::Host* h2 = nullptr;          // on (0x5, 1)
  attack::Host* attacker_a = nullptr;  // on (0x2, 1)
  attack::Host* attacker_b = nullptr;  // on (0x4, 1)
  attack::OutOfBandChannel* oob = nullptr;

  of::Location a_loc{0x2, 1};
  of::Location b_loc{0x4, 1};

  /// The four genuine switch-internal links.
  std::vector<topo::Link> real_links;

  [[nodiscard]] topo::Link fabricated_link() const {
    return topo::Link{a_loc, b_loc};
  }
  [[nodiscard]] bool fabricated_link_present() const {
    return tb->controller().topology().has_link(a_loc, b_loc);
  }
};

/// Default options matching the paper's setup (Floodlight profile, 5 ms
/// dataplane links, 10 ms out-of-band channel, LLDP auth + timestamps).
TestbedOptions fig9_options(std::uint64_t seed = 42);

/// Build (but do not start) the Fig. 9 testbed. Defaults configure the
/// controller for TOPOGUARD+ (authenticated LLDP + timestamps); pass
/// custom options to override.
Fig9Testbed make_fig9_testbed(TestbedOptions options = fig9_options());

/// Register the benign hosts (call after start()).
void fig9_warm_hosts(Fig9Testbed& f);

}  // namespace tmg::scenario
