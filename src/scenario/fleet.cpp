#include "scenario/fleet.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <string>

#include "attack/flow_rule_relay.hpp"
#include "attack/link_fabrication.hpp"
#include "attack/port_amnesia.hpp"
#include "attack/port_probing.hpp"
#include "check/assert.hpp"
#include "ctrl/host_tracker.hpp"
#include "obs/observability.hpp"

namespace tmg::scenario {

using sim::Duration;
using sim::SimTime;

FleetTestbed make_fleet_testbed(const FleetTestbedConfig& config) {
  FleetTestbed f;
  f.topo = topo::generate(config.topology);
  f.tb = std::make_unique<Testbed>(config.options);
  Testbed& tb = *f.tb;

  for (const auto& tier : f.topo.tiers) {
    for (topo::Dpid dpid : tier) tb.add_switch(dpid);
  }
  // links_view() is canonical-sorted, so the wiring order (and with it
  // every latency-model draw) is a pure function of the topology.
  for (const topo::Link& l : f.topo.graph.links_view()) {
    tb.connect_switches(l.a.dpid, l.a.port, l.b.dpid, l.b.port);
  }

  const std::size_t n_attach = f.topo.hosts.size();
  const std::size_t n_hosts =
      config.max_hosts == 0 ? n_attach : std::min(config.max_hosts, n_attach);
  TMG_ASSERT(n_hosts >= 4, "fleet: need at least 4 hosts for the role slots");
  TMG_ASSERT(config.spare_access_links >= 1,
             "fleet: need a spare access link for migration");

  f.population.reserve(n_hosts);
  f.population_links.reserve(n_hosts);
  for (std::size_t i = 0; i < n_hosts; ++i) {
    const topo::HostAttachment& att = f.topo.hosts[i];
    of::DataLink& link = tb.add_access_link(att.dpid, att.port);
    attack::HostConfig hc;
    hc.mac = topo::fleet_mac(static_cast<std::uint32_t>(i));
    hc.ip = topo::fleet_ip(static_cast<std::uint32_t>(i));
    hc.auth_token = FleetTestbed::token_of(i);
    f.population.push_back(&tb.add_host_on(link, hc));
    f.population_links.push_back(&link);
  }
  // Spare (vacant) access links go on fresh ports *above* the
  // generator's per-switch budget — host ports are the generator's
  // highest, so max attachment port + 1 onward is free — round-robin
  // over the edge switches in first-attachment order. This keeps every
  // generated attachment available for a tracked host (a k=16 fat-tree
  // really does track all 1,024).
  std::vector<std::pair<topo::Dpid, of::PortNo>> edge_top;  // dpid, max port
  for (const topo::HostAttachment& att : f.topo.hosts) {
    bool found = false;
    for (auto& e : edge_top) {
      if (e.first == att.dpid) {
        e.second = std::max(e.second, att.port);
        found = true;
        break;
      }
    }
    if (!found) edge_top.emplace_back(att.dpid, att.port);
  }
  for (std::size_t i = 0; i < config.spare_access_links; ++i) {
    auto& e = edge_top[i % edge_top.size()];
    f.spare_links.push_back(&tb.add_access_link(e.first, ++e.second));
  }

  const auto loc_of = [&](std::size_t i) {
    return of::Location{f.topo.hosts[i].dpid, f.topo.hosts[i].port};
  };
  f.victim = f.population[0];
  f.peer = f.population[1];
  f.attacker = f.population[n_hosts / 2];
  f.attacker_b = f.population[n_hosts - 1];
  f.victim_loc = loc_of(0);
  f.peer_loc = loc_of(1);
  f.attacker_loc = loc_of(n_hosts / 2);
  f.attacker_b_loc = loc_of(n_hosts - 1);
  TMG_ASSERT(f.victim_loc.dpid != f.attacker_loc.dpid &&
                 f.attacker_loc.dpid != f.attacker_b_loc.dpid,
             "fleet: role hosts must land on distinct edge switches "
             "(topology too small for max_hosts)");
  f.migration_target = f.spare_links[0];
  f.oob = &tb.add_oob_channel();  // 10 ms wireless hop for colluders
  return f;
}

defense::SecureBindingConfig fleet_enrollment(const FleetTestbed& f) {
  defense::SecureBindingConfig enrollment;
  for (std::size_t i = 0; i < f.population.size(); ++i) {
    const attack::Host* h = f.population[i];
    enrollment.registry[FleetTestbed::token_of(i)] = defense::Enrollment{
        "host-" + std::to_string(i), h->mac(), h->ip()};
  }
  return enrollment;
}

void fleet_warm_hosts(FleetTestbed& f, Duration stagger) {
  sim::EventLoop& loop = f.tb->loop();
  // The victim announces first (one broadcast flood); everyone else then
  // unicasts a join packet to its *predecessor*. Each join has a unique
  // destination MAC, so no previously installed (dst-matched) flow rule
  // can swallow the table miss — every host is guaranteed a Packet-In
  // and therefore an HTS record, at ~20 events per host instead of a
  // fleet-wide flood per host.
  f.victim->send_arp_request(f.victim->ip());
  f.tb->run_for(Duration::millis(50));
  for (std::size_t i = 1; i < f.population.size(); ++i) {
    attack::Host* h = f.population[i];
    const attack::Host* prev = f.population[i - 1];
    const net::MacAddress dst_mac = prev->mac();
    const net::Ipv4Address dst_ip = prev->ip();
    loop.post_after(stagger * static_cast<std::int64_t>(i - 1),
                    [h, dst_mac, dst_ip] {
                      h->send_raw(dst_mac, dst_ip, "join", 64);
                    });
  }
  f.tb->run_for(stagger * static_cast<std::int64_t>(f.population.size()) +
                Duration::millis(100));
}

void fleet_attach_background(FleetTestbed& f, BackgroundTraffic& bg) {
  for (std::size_t i = 0; i < f.population.size(); ++i) {
    attack::Host* h = f.population[i];
    const bool role = h == f.victim || h == f.peer || h == f.attacker ||
                      h == f.attacker_b;
    bg.add_endpoint(*h, role ? nullptr : f.population_links[i]);
  }
  // spare_links[0] stays reserved as the victim's migration target.
  for (std::size_t i = 1; i < f.spare_links.size(); ++i) {
    bg.add_spare_link(*f.spare_links[i]);
  }
}

namespace {

/// Passive observer that confirms the hijack the moment the HTS re-binds
/// the victim's MAC to the attacker's location (fleet twin of the
/// paper-testbed observer in experiments.cpp).
class FleetHijackObserver final : public ctrl::DefenseModule {
 public:
  FleetHijackObserver(net::MacAddress victim_mac, of::Location attacker_loc,
                      std::function<void()> on_confirm)
      : victim_mac_{victim_mac},
        attacker_loc_{attacker_loc},
        on_confirm_{std::move(on_confirm)} {}

  [[nodiscard]] std::string name() const override { return "observer"; }

  ctrl::Verdict on_host_event(const ctrl::HostEvent& ev) override {
    if (ev.mac == victim_mac_ && ev.new_loc == attacker_loc_ && !confirmed_) {
      confirmed_ = true;
      if (on_confirm_) on_confirm_();
    }
    return ctrl::Verdict::Allow;
  }

 private:
  net::MacAddress victim_mac_;
  of::Location attacker_loc_;
  std::function<void()> on_confirm_;
  bool confirmed_ = false;
};

TestbedOptions fleet_options(DefenseSuite suite, std::uint64_t seed,
                             bool check_invariants,
                             const std::optional<ctrl::ControllerProfile>& prof,
                             TrialArena* arena) {
  TestbedOptions o = suite_options(suite, seed);
  o.check_invariants = check_invariants;
  if (prof) o.controller.profile = *prof;
  if (arena != nullptr) o.loop = &arena->acquire();
  return o;
}

}  // namespace

FleetHijackOutcome run_fleet_hijack(const FleetHijackConfig& config) {
  FleetTestbedConfig ftc;
  ftc.topology = config.topology;
  ftc.max_hosts = config.max_hosts;
  ftc.spare_access_links = config.spare_access_links;
  ftc.options = fleet_options(config.suite, config.seed,
                              config.check_invariants, config.profile,
                              config.arena);
  FleetTestbed f = make_fleet_testbed(ftc);
  ctrl::Controller& ctrl = f.tb->controller();
  sim::EventLoop& loop = f.tb->loop();

  const defense::SecureBindingConfig enrollment = fleet_enrollment(f);
  const DefenseHandles handles = install_suite(ctrl, config.suite, &enrollment);
  if (config.check_invariants) {
    f.tb->enable_invariant_checker(handles.topoguard);
  }
  if (config.obs != nullptr) f.tb->set_observability(config.obs);

  FleetHijackOutcome out;

  attack::PortProbingConfig pc;
  pc.victim_ip = f.victim->ip();
  pc.probe_type = config.probe_type;
  pc.probe_period = config.probe_period;
  pc.probe_timeout = config.probe_timeout;
  pc.confirm_failures = config.confirm_failures;
  pc.nmap_overhead = config.nmap_overhead;
  attack::PortProbingAttack attack{loop, f.tb->fork_rng(), *f.attacker, pc};
  attack.set_observability(config.obs);

  const net::MacAddress victim_mac = f.victim->mac();
  const net::Ipv4Address victim_ip = f.victim->ip();
  auto observer = std::make_unique<FleetHijackObserver>(
      victim_mac, f.attacker_loc, [&]() {
        // The event fires before the HTS commits (a defense may veto),
        // so verify the actual binding one tick later.
        loop.post_after(Duration::zero(), [&] {
          const auto rec = ctrl.host_tracker().find(victim_mac);
          if (rec && rec->loc == f.attacker_loc) {
            attack.mark_hijack_confirmed(loop.now());
            out.hijack_succeeded = true;
          }
        });
      });
  ctrl.add_defense(std::move(observer));

  f.attacker->add_listener([&](const net::Packet& pkt) {
    const auto* icmp = pkt.icmp();
    if (icmp && icmp->type == net::IcmpPayload::Type::EchoRequest &&
        pkt.ip && pkt.ip->dst == victim_ip && attack.identity_claimed()) {
      out.traffic_redirected = true;
    }
  });

  f.tb->start(Duration::seconds(2));
  fleet_warm_hosts(f);

  BackgroundTraffic bg{*f.tb, f.tb->fork_rng(), config.background};
  fleet_attach_background(f, bg);
  if (config.background_on) bg.start();

  // The peer keeps a session toward the victim alive.
  std::uint16_t seq = 0;
  const std::function<void()> peer_ping = [&]() {
    f.peer->send_ping(victim_mac, victim_ip, 0x2222, seq++);
    loop.post_after(Duration::millis(200), [&peer_ping] { peer_ping(); });
  };
  loop.post_after(Duration::zero(), [&peer_ping] { peer_ping(); });

  attack.start();
  f.tb->run_for(config.settle_window);

  // The victim begins a legitimate move at a random phase of the probe
  // cycle (what Figs. 5-8 average over), now raced under fleet load.
  sim::Rng phase_rng = f.tb->fork_rng();
  const Duration phase = Duration::nanos(
      phase_rng.uniform_int(0, config.probe_period.count_nanos()));
  f.tb->run_for(phase);

  const SimTime victim_down = loop.now();
  if (config.obs != nullptr) {
    config.obs->trace().instant(victim_down, "scenario", "victim.down");
  }
  migrate_host(*f.tb, *f.victim, *f.migration_target, config.victim_downtime);
  loop.post_after(config.victim_downtime + Duration::millis(50),
                  [&f, &config, &loop] {
                    f.victim->send_arp_request(f.victim->ip());
                    if (config.obs != nullptr) {
                      config.obs->trace().instant(loop.now(), "scenario",
                                                  "victim.rejoin");
                    }
                  });
  f.tb->run_for(config.victim_downtime + Duration::seconds(3));
  bg.stop();

  const auto& tl = attack.timeline();
  const auto rel = [&](const std::optional<SimTime>& t) {
    return t ? std::optional<double>((*t - victim_down).to_millis_f())
             : std::nullopt;
  };
  out.down_to_final_probe_start_ms = rel(tl.final_probe_start);
  out.down_to_declared_down_ms = rel(tl.victim_declared_down);
  out.down_to_iface_up_ms = rel(tl.interface_up_as_victim);
  out.down_to_confirmed_ms = rel(tl.hijack_confirmed);

  out.hosts_tracked = ctrl.host_tracker().host_count();
  out.background = bg.stats();
  out.alerts_total = ctrl.alerts().count();
  if (check::InvariantChecker* checker = f.tb->invariant_checker()) {
    checker->final_check();
    out.invariant_sweeps = checker->checks_run();
    out.invariant_violations = checker->violation_count();
  }
  out.events_executed = loop.events_executed();
  if (config.collect_pipeline_stats) {
    out.pipeline_stats = ctrl.pipeline().stats();
  }
  if (config.obs != nullptr) config.obs->finalize(loop.now());
  return out;
}

FleetLinkAttackOutcome run_fleet_link_attack(
    const FleetLinkAttackConfig& config) {
  TMG_ASSERT(config.attack_window >= Duration::seconds(32),
             "fleet link attack: window must cover two LLDP rounds");
  FleetTestbedConfig ftc;
  ftc.topology = config.topology;
  ftc.max_hosts = config.max_hosts;
  ftc.spare_access_links = config.spare_access_links;
  ftc.options = fleet_options(config.suite, config.seed,
                              config.check_invariants, config.profile,
                              config.arena);
  FleetTestbed f = make_fleet_testbed(ftc);
  ctrl::Controller& ctrl = f.tb->controller();
  sim::EventLoop& loop = f.tb->loop();

  const defense::SecureBindingConfig enrollment = fleet_enrollment(f);
  const DefenseHandles handles = install_suite(ctrl, config.suite, &enrollment);
  if (config.check_invariants) {
    f.tb->enable_invariant_checker(handles.topoguard);
  }
  if (config.obs != nullptr) f.tb->set_observability(config.obs);

  FleetLinkAttackOutcome out;

  // Flow-rule relay target: the attacker's edge switch when it has two
  // fabric links, else the lowest-dpid switch that does (links_view()
  // is sorted, so the choice is deterministic). Splicing the relay's
  // first two inter-switch ports makes discovery fabricate a direct
  // link between their far ends.
  of::Dpid relay_dpid = 0;
  attack::FlowRuleRelay::Config relay_cfg;
  of::Location fab_a;
  of::Location fab_b;
  if (config.kind == LinkAttackKind::FlowRuleRelay) {
    std::map<of::Dpid, std::vector<topo::Link>> incident;
    for (const topo::Link& l : f.topo.graph.links_view()) {
      incident[l.a.dpid].push_back(l);
      incident[l.b.dpid].push_back(l);
    }
    if (incident[f.attacker_loc.dpid].size() >= 2) {
      relay_dpid = f.attacker_loc.dpid;
    } else {
      for (const auto& [dpid, links] : incident) {
        if (links.size() >= 2) {
          relay_dpid = dpid;
          break;
        }
      }
    }
    TMG_ASSERT(relay_dpid != 0,
               "fleet flow-rule relay: no switch with two fabric links");
    const topo::Link& left = incident[relay_dpid][0];
    const topo::Link& right = incident[relay_dpid][1];
    relay_cfg.left_port =
        left.a.dpid == relay_dpid ? left.a.port : left.b.port;
    fab_a = left.a.dpid == relay_dpid ? left.b : left.a;
    relay_cfg.right_port =
        right.a.dpid == relay_dpid ? right.a.port : right.b.port;
    fab_b = right.a.dpid == relay_dpid ? right.b : right.a;
  }

  // Poll the fabricated link while the sim runs. The flow-rule relay
  // fabricates the link between its spliced ports' far ends; the
  // host-based relays fabricate the attacker-to-attacker access link.
  const auto fabricated_present = [&]() {
    if (config.kind == LinkAttackKind::FlowRuleRelay) {
      return ctrl.topology().has_link(fab_a, fab_b);
    }
    return f.fabricated_link_present();
  };
  const std::function<void()> poll = [&]() {
    if (fabricated_present()) out.link_registered = true;
    loop.post_after(Duration::millis(500), [&poll] { poll(); });
  };

  f.tb->start(Duration::seconds(2));
  fleet_warm_hosts(f);
  loop.post_after(Duration::zero(), [&poll] { poll(); });

  BackgroundTraffic bg{*f.tb, f.tb->fork_rng(), config.background};
  fleet_attach_background(f, bg);
  if (config.background_on) bg.start();

  // A long-lived benign session whose traffic the fabricated link could
  // attract (the MITM observable).
  const net::MacAddress victim_mac = f.victim->mac();
  const net::Ipv4Address victim_ip = f.victim->ip();
  const std::function<void()> ping_loop = [&]() {
    f.peer->send_ping(victim_mac, victim_ip, 0x1111,
                      static_cast<std::uint16_t>(loop.now().count_nanos()));
    f.peer->send_raw(victim_mac, victim_ip, "bulk", 1400);
    loop.post_after(Duration::millis(500), [&ping_loop] { ping_loop(); });
  };
  loop.post_after(Duration::zero(), [&ping_loop] { ping_loop(); });

  f.tb->run_for(config.benign_window);
  out.alerts_before_attack = ctrl.alerts().count();
  if (config.obs != nullptr) {
    config.obs->trace().instant(loop.now(), "scenario", "attack-start",
                                to_string(config.kind));
  }

  std::unique_ptr<attack::ClassicLinkFabrication> classic;
  std::unique_ptr<attack::PortAmnesiaAttack> amnesia;
  std::unique_ptr<attack::FlowRuleRelay> flowrule;
  switch (config.kind) {
    case LinkAttackKind::FlowRuleRelay: {
      flowrule = std::make_unique<attack::FlowRuleRelay>(
          f.tb->control_channel(relay_dpid), relay_cfg);
      flowrule->start();
      break;
    }
    case LinkAttackKind::ClassicRelay: {
      attack::ClassicLinkFabrication::Config cc;
      classic = std::make_unique<attack::ClassicLinkFabrication>(
          loop, *f.attacker, *f.attacker_b, *f.oob, cc);
      classic->start();
      break;
    }
    case LinkAttackKind::OobAmnesia:
    case LinkAttackKind::OobAmnesiaNaive:
    case LinkAttackKind::InBandAmnesia: {
      attack::PortAmnesiaAttack::Config ac;
      ac.mode = config.kind == LinkAttackKind::InBandAmnesia
                    ? attack::PortAmnesiaAttack::Mode::InBand
                    : attack::PortAmnesiaAttack::Mode::OutOfBand;
      ac.preposition_flap = config.kind == LinkAttackKind::OobAmnesia;
      ac.blackhole_transit = config.blackhole;
      ac.bridge_transit = !config.blackhole;
      amnesia = std::make_unique<attack::PortAmnesiaAttack>(
          loop, *f.attacker, *f.attacker_b,
          ac.mode == attack::PortAmnesiaAttack::Mode::OutOfBand ? f.oob
                                                                : nullptr,
          ac);
      amnesia->set_observability(config.obs);
      amnesia->start();
      break;
    }
  }

  f.tb->run_for(config.attack_window);
  bg.stop();

  out.link_present_at_end = fabricated_present();
  if (classic) {
    out.lldp_relayed = classic->lldp_relayed();
    out.transit_bridged = classic->transit_bridged();
  }
  if (amnesia) {
    out.lldp_relayed = amnesia->lldp_relayed();
    out.transit_bridged = amnesia->transit_bridged();
    out.flaps = amnesia->flaps();
  }
  out.mitm_traffic = out.transit_bridged > 0;
  out.hosts_tracked = ctrl.host_tracker().host_count();
  out.background = bg.stats();
  out.alerts_total = ctrl.alerts().count();
  out.alerts_topoguard = ctrl.alerts().count_from("TopoGuard");
  if (check::InvariantChecker* checker = f.tb->invariant_checker()) {
    checker->final_check();
    out.invariant_sweeps = checker->checks_run();
    out.invariant_violations = checker->violation_count();
  }
  out.events_executed = loop.events_executed();
  if (config.collect_pipeline_stats) {
    out.pipeline_stats = ctrl.pipeline().stats();
  }
  if (config.obs != nullptr) config.obs->finalize(loop.now());
  return out;
}

}  // namespace tmg::scenario
