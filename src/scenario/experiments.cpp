#include "scenario/experiments.hpp"

#include <memory>

#include "attack/alert_flood.hpp"
#include "attack/flow_rule_relay.hpp"
#include "attack/link_fabrication.hpp"
#include "attack/port_amnesia.hpp"
#include "ctrl/host_tracker.hpp"
#include "ids/ids.hpp"
#include "obs/observability.hpp"

namespace tmg::scenario {

using sim::Duration;
using sim::SimTime;

const char* to_string(DefenseSuite s) {
  switch (s) {
    case DefenseSuite::None: return "none";
    case DefenseSuite::TopoGuard: return "TopoGuard";
    case DefenseSuite::Sphinx: return "SPHINX";
    case DefenseSuite::TopoGuardAndSphinx: return "TopoGuard+SPHINX";
    case DefenseSuite::TopoGuardPlus: return "TOPOGUARD+";
    case DefenseSuite::SecureBinding: return "TopoGuard+SecureBinding";
    case DefenseSuite::Stacked: return "TopoGuard+SPHINX+TOPOGUARD+";
  }
  return "?";
}

const char* to_string(LinkAttackKind k) {
  switch (k) {
    case LinkAttackKind::ClassicRelay: return "classic-relay";
    case LinkAttackKind::OobAmnesia: return "oob-port-amnesia";
    case LinkAttackKind::OobAmnesiaNaive: return "oob-port-amnesia-naive";
    case LinkAttackKind::InBandAmnesia: return "inband-port-amnesia";
    case LinkAttackKind::FlowRuleRelay: return "flowrule-relay";
  }
  return "?";
}

TestbedOptions suite_options(DefenseSuite suite, std::uint64_t seed) {
  TestbedOptions opts;
  opts.seed = seed;
  opts.check_invariants = true;  // runtime invariant checker (src/check)
  switch (suite) {
    case DefenseSuite::None:
    case DefenseSuite::Sphinx:
      break;
    case DefenseSuite::TopoGuard:
    case DefenseSuite::TopoGuardAndSphinx:
    case DefenseSuite::SecureBinding:
      opts.controller.authenticate_lldp = true;
      break;
    case DefenseSuite::TopoGuardPlus:
    case DefenseSuite::Stacked:
      opts.controller.authenticate_lldp = true;
      opts.controller.lldp_timestamps = true;
      break;
  }
  return opts;
}

DefenseHandles install_suite(ctrl::Controller& ctrl, DefenseSuite suite,
                             const defense::SecureBindingConfig* enrollment) {
  DefenseHandles handles;
  switch (suite) {
    case DefenseSuite::None:
      break;
    case DefenseSuite::SecureBinding:
      handles.topoguard = &defense::install_topoguard(ctrl);
      handles.secure_binding = &defense::install_secure_binding(
          ctrl, enrollment ? *enrollment : defense::SecureBindingConfig{});
      break;
    case DefenseSuite::TopoGuard:
      handles.topoguard = &defense::install_topoguard(ctrl);
      break;
    case DefenseSuite::Sphinx:
      handles.sphinx = &defense::install_sphinx(ctrl);
      break;
    case DefenseSuite::TopoGuardAndSphinx:
      handles.topoguard = &defense::install_topoguard(ctrl);
      handles.sphinx = &defense::install_sphinx(ctrl);
      break;
    case DefenseSuite::TopoGuardPlus: {
      const defense::TopoGuardPlus plus =
          defense::install_topoguard_plus(ctrl);
      handles.topoguard = plus.topoguard;
      handles.cmm = plus.cmm;
      handles.lli = plus.lli;
      break;
    }
    case DefenseSuite::Stacked: {
      // Union of TopoGuardAndSphinx and TopoGuardPlus, installed once
      // each; pipeline priorities preserve this add order.
      handles.topoguard = &defense::install_topoguard(ctrl);
      handles.sphinx = &defense::install_sphinx(ctrl);
      const defense::TopoGuardPlusConfig plus_cfg;
      auto cmm = std::make_unique<defense::Cmm>(ctrl, plus_cfg.cmm);
      handles.cmm = cmm.get();
      ctrl.add_defense(std::move(cmm));
      ctrl.services().offer("CMM", handles.cmm);
      auto lli = std::make_unique<defense::Lli>(ctrl, plus_cfg.lli);
      handles.lli = lli.get();
      ctrl.add_defense(std::move(lli));
      ctrl.services().offer("LLI", handles.lli);
      break;
    }
  }
  return handles;
}

// ---------------------------------------------------------------------
// Link fabrication / port amnesia
// ---------------------------------------------------------------------

namespace {

/// Install the anomaly IDS into the controller's always-present
/// "anomaly-ids" chain slot, in Train mode (trainer set) or Detect mode
/// (profile set). Returns nullptr when the config asked for neither.
/// The caller owns the service and must detach it (set_anomaly_detector
/// (nullptr)) before it is destroyed.
std::unique_ptr<ids::ProfileAnomalyService> install_anomaly_ids(
    Testbed& tb, const ids::BehaviorProfile* profile,
    ids::ProfileTrainer* trainer, bool veto, obs::Observability* obs) {
  if (profile == nullptr && trainer == nullptr) return nullptr;
  ids::AnomalyConfig cfg;
  cfg.veto = veto;
  auto svc = std::make_unique<ids::ProfileAnomalyService>(tb.loop(), cfg);
  if (trainer != nullptr) {
    svc->set_trainer(trainer);
    trainer->begin_trial();  // the driver's harvest calls end_trial()
  } else {
    svc->set_profile(profile);
  }
  svc->set_alert_bus(&tb.controller().alerts());
  svc->set_observability(obs);
  tb.controller().set_anomaly_detector(svc.get());
  return svc;
}

}  // namespace

LinkAttackOutcome run_link_attack(const LinkAttackConfig& config) {
  TestbedOptions opts = suite_options(config.suite, config.seed);
  // The Fig. 9 testbed is the paper's evaluation network for all link
  // attacks; keep its latency profile regardless of suite.
  Fig9Testbed f = make_fig9_testbed([&] {
    TestbedOptions o = fig9_options(config.seed);
    o.controller.authenticate_lldp = opts.controller.authenticate_lldp;
    o.controller.lldp_timestamps = opts.controller.lldp_timestamps;
    if (config.profile) o.controller.profile = *config.profile;
    // Keep start() from auto-attaching the audit battery when the
    // caller opted out (benches); see the explicit enable below.
    o.check_invariants = config.check_invariants;
    if (config.arena != nullptr) o.loop = &config.arena->acquire();
    return o;
  }());
  const DefenseHandles handles = install_suite(f.tb->controller(), config.suite);
  // Machine-checked self-consistency for every experiment run: attacks
  // may poison the controller's *view*, but never the simulator's state.
  // Benches opt out — the audits are read-only, so every simulated
  // number is identical either way; only wall-clock changes.
  if (config.check_invariants) {
    f.tb->enable_invariant_checker(handles.topoguard);
  }
  if (config.obs != nullptr) f.tb->set_observability(config.obs);
  const std::unique_ptr<ids::ProfileAnomalyService> anomaly =
      install_anomaly_ids(*f.tb, config.anomaly_profile,
                          config.anomaly_trainer, config.anomaly_veto,
                          config.obs);

  LinkAttackOutcome out;
  ctrl::Controller& ctrl = f.tb->controller();
  sim::EventLoop& loop = f.tb->loop();

  // Poll the fabricated link while the sim runs. The flow-rule relay
  // fabricates a switch-to-switch link between the relay's neighbors
  // (0x3's rules splice 0x2 port 10 to 0x4 port 11); the host-based
  // relays fabricate the attacker-to-attacker access link.
  const auto fabricated_present = [&]() {
    if (config.kind == LinkAttackKind::FlowRuleRelay) {
      return ctrl.topology().has_link(of::Location{0x2, 10},
                                      of::Location{0x4, 11});
    }
    return f.fabricated_link_present();
  };
  const std::function<void()> poll = [&]() {
    if (fabricated_present()) out.link_registered = true;
    loop.post_after(Duration::millis(500),
                        [&poll] { poll(); });
  };

  f.tb->start(Duration::seconds(2));
  fig9_warm_hosts(f);
  loop.post_after(Duration::zero(), [&poll] { poll(); });

  // Benign phase: periodic h1 <-> h2 traffic until shortly before the
  // attack (then pause so the flow rules idle out and the post-attack
  // traffic re-routes over whatever topology exists).
  bool benign_traffic = true;
  const std::function<void()> ping_loop = [&]() {
    if (benign_traffic) {
      f.h1->send_ping(f.h2->mac(), f.h2->ip(), 0x1111,
                      static_cast<std::uint16_t>(loop.now().count_nanos()));
      // Bulk payload alongside the ping: flow-counter checks (SPHINX)
      // need real volume to distinguish blackholing from jitter.
      f.h1->send_raw(f.h2->mac(), f.h2->ip(), "bulk", 1400);
    }
    loop.post_after(Duration::millis(500), [&ping_loop] { ping_loop(); });
  };
  loop.post_after(Duration::zero(), [&ping_loop] { ping_loop(); });

  f.tb->run_for(config.benign_window - Duration::seconds(10));
  benign_traffic = false;
  f.tb->run_for(Duration::seconds(10));
  out.alerts_before_attack = ctrl.alerts().count();
  if (config.obs != nullptr) {
    config.obs->trace().instant(loop.now(), "scenario", "attack-start",
                                to_string(config.kind));
  }

  // Launch the attack (skipped entirely on clean-baseline runs).
  std::unique_ptr<attack::ClassicLinkFabrication> classic;
  std::unique_ptr<attack::PortAmnesiaAttack> amnesia;
  std::unique_ptr<attack::FlowRuleRelay> flowrule;
  switch (config.kind) {
    case LinkAttackKind::ClassicRelay: {
      if (!config.attack_enabled) break;
      attack::ClassicLinkFabrication::Config cc;
      classic = std::make_unique<attack::ClassicLinkFabrication>(
          loop, *f.attacker_a, *f.attacker_b, *f.oob, cc);
      classic->start();
      break;
    }
    case LinkAttackKind::OobAmnesia:
    case LinkAttackKind::OobAmnesiaNaive:
    case LinkAttackKind::InBandAmnesia: {
      if (!config.attack_enabled) break;
      attack::PortAmnesiaAttack::Config ac;
      ac.mode = config.kind == LinkAttackKind::InBandAmnesia
                    ? attack::PortAmnesiaAttack::Mode::InBand
                    : attack::PortAmnesiaAttack::Mode::OutOfBand;
      ac.preposition_flap = config.kind == LinkAttackKind::OobAmnesia;
      ac.blackhole_transit = config.blackhole;
      ac.bridge_transit = !config.blackhole;
      amnesia = std::make_unique<attack::PortAmnesiaAttack>(
          loop, *f.attacker_a, *f.attacker_b,
          ac.mode == attack::PortAmnesiaAttack::Mode::OutOfBand ? f.oob
                                                                : nullptr,
          ac);
      amnesia->set_observability(config.obs);
      amnesia->start();
      break;
    }
    case LinkAttackKind::FlowRuleRelay: {
      if (!config.attack_enabled) break;
      // The relay switch is 0x3: its port 11 faces 0x2 (port 10), its
      // port 10 faces 0x4 (port 11) — the FlowRuleRelay defaults.
      flowrule = std::make_unique<attack::FlowRuleRelay>(
          f.tb->control_channel(0x3), attack::FlowRuleRelay::Config{});
      flowrule->start();
      break;
    }
  }

  // Give the fabricated link two LLDP rounds to register, then resume
  // fresh flows (which will cross it if it exists).
  f.tb->run_for(Duration::seconds(32));
  benign_traffic = true;
  f.tb->run_for(config.attack_window - Duration::seconds(32));

  out.link_present_at_end = fabricated_present();
  if (classic) {
    out.lldp_relayed = classic->lldp_relayed();
    out.transit_bridged = classic->transit_bridged();
  }
  if (amnesia) {
    out.lldp_relayed = amnesia->lldp_relayed();
    out.transit_bridged = amnesia->transit_bridged();
    out.flaps = amnesia->flaps();
  }
  if (flowrule) {
    // The injected rules' own counters say how many LLDP frames the
    // switch spliced past the controller.
    for (const auto& e : f.tb->get_switch(0x3).flow_table().entries()) {
      if (e.cookie == attack::FlowRuleRelay::Config{}.cookie) {
        out.lldp_relayed += e.packet_count;
      }
    }
  }
  out.mitm_traffic = out.transit_bridged > 0;
  out.alerts_total = ctrl.alerts().count();
  out.alerts_topoguard = ctrl.alerts().count_from("TopoGuard");
  out.alerts_sphinx = ctrl.alerts().count_from("SPHINX");
  out.alerts_cmm = ctrl.alerts().count_from("CMM");
  out.alerts_lli = ctrl.alerts().count_from("LLI");
  out.alerts_anomaly = ctrl.alerts().count_from("AnomalyIDS");
  if (anomaly) {
    out.anomaly = anomaly->counters();
    if (config.anomaly_trainer != nullptr) config.anomaly_trainer->end_trial();
    ctrl.set_anomaly_detector(nullptr);
  }
  if (check::InvariantChecker* checker = f.tb->invariant_checker()) {
    checker->final_check();
    out.invariant_sweeps = checker->checks_run();
    out.invariant_violations = checker->violation_count();
  }
  out.events_executed = loop.events_executed();
  if (config.collect_pipeline_stats) out.pipeline_stats = ctrl.pipeline().stats();
  // Mirror the final module counters into the registry and detach the
  // collectors before the testbed (which they borrow) is destroyed.
  if (config.obs != nullptr) config.obs->finalize(loop.now());
  return out;
}

// ---------------------------------------------------------------------
// Port probing / hijack
// ---------------------------------------------------------------------

namespace {

/// Passive observer that confirms the hijack the moment the HTS re-binds
/// the victim's MAC to the attacker's location.
class HijackObserver final : public ctrl::DefenseModule {
 public:
  HijackObserver(net::MacAddress victim_mac, of::Location attacker_loc,
                 std::function<void()> on_confirm)
      : victim_mac_{victim_mac},
        attacker_loc_{attacker_loc},
        on_confirm_{std::move(on_confirm)} {}

  [[nodiscard]] std::string name() const override { return "observer"; }

  ctrl::Verdict on_host_event(const ctrl::HostEvent& ev) override {
    if (ev.mac == victim_mac_ && ev.new_loc == attacker_loc_ && !confirmed_) {
      confirmed_ = true;
      if (on_confirm_) on_confirm_();
    }
    return ctrl::Verdict::Allow;
  }

 private:
  net::MacAddress victim_mac_;
  of::Location attacker_loc_;
  std::function<void()> on_confirm_;
  bool confirmed_ = false;
};

}  // namespace

HijackOutcome run_hijack(const HijackConfig& config) {
  Fig2Testbed f = make_fig2_testbed([&] {
    TestbedOptions o = suite_options(config.suite, config.seed);
    // Also stops start() from auto-attaching the audit battery when the
    // caller opted out (benches); see the explicit enable below.
    o.check_invariants = config.check_invariants;
    if (config.profile) o.controller.profile = *config.profile;
    if (config.arena != nullptr) o.loop = &config.arena->acquire();
    return o;
  }());
  ctrl::Controller& ctrl = f.tb->controller();
  sim::EventLoop& loop = f.tb->loop();
  defense::SecureBindingConfig enrollment;
  enrollment.registry[Fig2Testbed::kVictimToken] =
      defense::Enrollment{"victim", f.victim->mac(), f.victim->ip()};
  enrollment.registry[Fig2Testbed::kAttackerToken] =
      defense::Enrollment{"attacker-device", f.attacker->mac(),
                          f.attacker->ip()};
  enrollment.registry[Fig2Testbed::kPeerToken] =
      defense::Enrollment{"peer", f.peer->mac(), f.peer->ip()};
  const DefenseHandles handles = install_suite(ctrl, config.suite, &enrollment);
  if (config.check_invariants) {
    f.tb->enable_invariant_checker(handles.topoguard);
  }
  if (config.obs != nullptr) f.tb->set_observability(config.obs);
  const std::unique_ptr<ids::ProfileAnomalyService> anomaly =
      install_anomaly_ids(*f.tb, config.anomaly_profile,
                          config.anomaly_trainer, config.anomaly_veto,
                          config.obs);

  HijackOutcome out;

  attack::PortProbingConfig pc;
  pc.victim_ip = f.victim_ip;
  pc.probe_type = config.probe_type;
  pc.probe_period = config.probe_period;
  pc.probe_timeout = config.probe_timeout;
  pc.confirm_failures = config.confirm_failures;
  pc.nmap_overhead = config.nmap_overhead;
  attack::PortProbingAttack attack{loop, f.tb->fork_rng(), *f.attacker, pc};
  attack.set_observability(config.obs);

  // Observer: confirm when the HTS re-binds the victim to the attacker.
  // The event fires before the HTS commits (and a defense may veto it),
  // so verify the actual binding one tick later.
  auto observer = std::make_unique<HijackObserver>(
      f.victim_mac, f.attacker_loc, [&]() {
        loop.post_after(Duration::zero(), [&] {
          const auto rec = ctrl.host_tracker().find(f.victim_mac);
          if (rec && rec->loc == f.attacker_loc) {
            attack.mark_hijack_confirmed(loop.now());
            out.hijack_succeeded = true;
          }
        });
      });
  ctrl.add_defense(std::move(observer));

  // Redirection check: count victim-bound pings landing on the attacker.
  f.attacker->add_listener([&](const net::Packet& pkt) {
    const auto* icmp = pkt.icmp();
    if (icmp && icmp->type == net::IcmpPayload::Type::EchoRequest &&
        pkt.ip && pkt.ip->dst == f.victim_ip && attack.identity_claimed()) {
      out.traffic_redirected = true;
    }
  });

  f.tb->start(Duration::seconds(2));
  fig2_warm_hosts(f);

  // The peer keeps a session toward the victim alive.
  std::uint16_t seq = 0;
  const std::function<void()> peer_ping = [&]() {
    f.peer->send_ping(f.victim_mac, f.victim_ip, 0x2222, seq++);
    loop.post_after(Duration::millis(200), [&peer_ping] { peer_ping(); });
  };
  loop.post_after(Duration::zero(), [&peer_ping] { peer_ping(); });

  if (config.attack_enabled) attack.start();
  f.tb->run_for(Duration::seconds(2));  // MAC acquisition + steady probing

  // The victim begins a legitimate move at a random phase of the probe
  // cycle (this is what Figs. 5-8 average over).
  sim::Rng phase_rng = f.tb->fork_rng();
  const Duration phase = Duration::nanos(phase_rng.uniform_int(
      0, config.probe_period.count_nanos()));
  f.tb->run_for(phase);

  const SimTime victim_down = loop.now();
  if (config.obs != nullptr && config.attack_enabled) {
    // The reference instant every Fig. 5-8 race window is measured from.
    config.obs->trace().instant(victim_down, "scenario", "victim.down");
  }
  if (!config.attack_enabled) {
    // Clean baseline: the victim never migrates; keep the timeline's
    // total duration identical so training covers the same sim span.
  } else if (config.victim_rejoins) {
    migrate_host(*f.tb, *f.victim, *f.migration_target,
                 config.victim_downtime);
    // On rejoin the victim announces itself (DHCP/ARP chatter).
    loop.post_after(config.victim_downtime + Duration::millis(50),
                    [&f, &config, &loop] {
                      f.victim->send_arp_request(f.victim->ip());
                      if (config.obs != nullptr) {
                        config.obs->trace().instant(loop.now(), "scenario",
                                                    "victim.rejoin");
                      }
                    });
  } else {
    f.victim->detach_link();
  }

  // Sample the alert count just before the victim re-attaches (its
  // 802.1x supplicant announces the rejoin within milliseconds).
  f.tb->run_for(config.victim_downtime - Duration::millis(10));
  out.alerts_before_rejoin = ctrl.alerts().count();
  f.tb->run_for(Duration::seconds(3) + Duration::millis(10));
  out.alerts_after_rejoin = ctrl.alerts().count() - out.alerts_before_rejoin;

  const auto& tl = attack.timeline();
  const auto rel = [&](const std::optional<SimTime>& t) {
    return t ? std::optional<double>((*t - victim_down).to_millis_f())
             : std::nullopt;
  };
  out.down_to_final_probe_start_ms = rel(tl.final_probe_start);
  out.down_to_declared_down_ms = rel(tl.victim_declared_down);
  out.down_to_iface_up_ms = rel(tl.interface_up_as_victim);
  out.down_to_confirmed_ms = rel(tl.hijack_confirmed);
  if (tl.interface_up_as_victim && tl.victim_declared_down) {
    out.ident_change_ms =
        (*tl.interface_up_as_victim - *tl.victim_declared_down).to_millis_f();
  }
  out.alerts = ctrl.alerts().alerts();
  out.alerts_anomaly = ctrl.alerts().count_from("AnomalyIDS");
  if (anomaly) {
    out.anomaly = anomaly->counters();
    if (config.anomaly_trainer != nullptr) config.anomaly_trainer->end_trial();
    ctrl.set_anomaly_detector(nullptr);
  }
  if (check::InvariantChecker* checker = f.tb->invariant_checker()) {
    checker->final_check();
    out.invariant_sweeps = checker->checks_run();
    out.invariant_violations = checker->violation_count();
  }
  out.events_executed = loop.events_executed();
  if (config.collect_pipeline_stats) out.pipeline_stats = ctrl.pipeline().stats();
  // Mirror the final module counters into the registry and detach the
  // collectors before the testbed (which they borrow) is destroyed.
  if (config.obs != nullptr) config.obs->finalize(loop.now());
  return out;
}

// ---------------------------------------------------------------------
// LLI series
// ---------------------------------------------------------------------

LliSeries run_lli_experiment(const LliExperimentConfig& config) {
  Fig9Testbed f = make_fig9_testbed(fig9_options(config.seed));
  const DefenseHandles handles =
      install_suite(f.tb->controller(), DefenseSuite::TopoGuardPlus);
  f.tb->enable_invariant_checker(handles.topoguard);
  if (config.obs != nullptr) f.tb->set_observability(config.obs);

  f.tb->start(Duration::seconds(2));
  fig9_warm_hosts(f);
  f.tb->run_for(config.benign_window);

  std::unique_ptr<attack::PortAmnesiaAttack> amnesia;
  attack::OutOfBandChannel& channel = f.tb->add_oob_channel(config.channel);
  if (config.launch_attack) {
    attack::PortAmnesiaAttack::Config ac;
    ac.mode = attack::PortAmnesiaAttack::Mode::OutOfBand;
    ac.preposition_flap = true;  // CMM-evasive: only the LLI can catch it
    amnesia = std::make_unique<attack::PortAmnesiaAttack>(
        f.tb->loop(), *f.attacker_a, *f.attacker_b, &channel, ac);
    amnesia->set_observability(config.obs);
    amnesia->start();
  }
  f.tb->run_for(config.attack_window);

  LliSeries series;
  series.fake_link_ever_registered = f.fabricated_link_present();
  const topo::Link fake = f.fabricated_link();
  std::map<std::string, std::vector<double>> per_link_samples;
  for (const auto& m : handles.lli->measurements()) {
    LliSeries::Point p;
    p.t_s = m.at.to_seconds_f();
    p.link = m.link.to_string();
    p.latency_ms = m.latency_ms;
    p.threshold_ms = m.threshold_ms;
    p.flagged = m.flagged;
    p.fake = m.link == fake;
    if (p.fake) {
      ++series.fake_attempts;
      if (p.flagged) ++series.fake_detections;
    } else {
      per_link_samples[p.link].push_back(p.latency_ms);
    }
    series.points.push_back(std::move(p));
  }
  for (const auto& [link, samples] : per_link_samples) {
    series.per_link.emplace_back(link, stats::summarize(samples));
  }
  series.events_executed = f.tb->loop().events_executed();
  if (config.obs != nullptr) config.obs->finalize(f.tb->loop().now());
  return series;
}

// ---------------------------------------------------------------------
// Probe timing & scan detection
// ---------------------------------------------------------------------

namespace {

struct ProbeLab {
  Testbed tb;
  attack::Host* attacker = nullptr;
  attack::Host* victim = nullptr;
  attack::Host* zombie = nullptr;
  of::DataLink* victim_link = nullptr;  // IDS tap point

  explicit ProbeLab(std::uint64_t seed) : tb{[&] {
    TestbedOptions o;
    o.seed = seed;
    return o;
  }()} {
    tb.add_switch(0x1);
    attack::HostConfig att;
    att.mac = net::MacAddress::host(0xA);
    att.ip = net::Ipv4Address::host(10);
    attacker = &tb.add_host(0x1, 1, att);

    attack::HostConfig vic;
    vic.mac = net::MacAddress::host(1);
    vic.ip = net::Ipv4Address::host(1);
    vic.open_tcp_ports = {80};
    victim_link = &tb.add_access_link(0x1, 2);
    victim = &tb.add_host_on(*victim_link, vic);

    attack::HostConfig zom;
    zom.mac = net::MacAddress::host(2);
    zom.ip = net::Ipv4Address::host(2);
    zom.idle_scan_zombie = true;
    zombie = &tb.add_host(0x1, 3, zom);
    tb.enable_invariant_checker();
  }
};

const char* requirements_of(attack::ProbeType t) {
  switch (t) {
    case attack::ProbeType::IcmpPing: return "None";
    case attack::ProbeType::TcpSyn: return "Port Known";
    case attack::ProbeType::ArpPing: return "Same subnet";
    case attack::ProbeType::TcpIdleScan: return "Suitable zombie";
  }
  return "";
}

}  // namespace

ProbeTimingRow measure_probe_timing(attack::ProbeType type, std::size_t n,
                                    std::uint64_t seed) {
  ProbeLab lab{seed};
  lab.tb.start(Duration::seconds(1));
  lab.attacker->send_arp_request(lab.victim->ip());
  lab.tb.run_for(Duration::millis(100));

  attack::LivenessProber::Config pc;
  pc.type = type;
  pc.timeout = Duration::millis(200);
  pc.tool_overhead = false;  // end-to-end exchange time, RTT included
  if (type == attack::ProbeType::TcpIdleScan) {
    pc.zombie = attack::ZombieRef{lab.zombie->ip(), lab.zombie->mac()};
  }
  attack::LivenessProber prober{lab.tb.loop(), lab.tb.fork_rng(),
                                *lab.attacker, pc};

  attack::ProbeTarget target;
  target.ip = lab.victim->ip();
  target.mac = lab.victim->mac();
  target.tcp_port = 80;

  ProbeTimingRow row;
  row.type = type;
  row.stealth = attack::stealth_of(type);
  row.requirements = requirements_of(type);

  std::vector<double> end_to_end;
  end_to_end.reserve(n);
  std::size_t alive = 0;
  std::size_t remaining = n;
  std::function<void()> next = [&]() {
    if (remaining == 0) return;
    --remaining;
    prober.probe(target, [&](const attack::ProbeOutcome& outcome) {
      end_to_end.push_back(outcome.duration().to_millis_f());
      if (outcome.alive) ++alive;
      lab.tb.loop().post_after(Duration::millis(1), [&next] { next(); });
    });
  };
  next();
  lab.tb.run_for(Duration::seconds(
      static_cast<std::int64_t>(n) + 60));  // generous; loop drains early

  row.end_to_end_ms = stats::summarize(end_to_end);
  row.alive_detected = alive;

  // Table I "Timing" column: the nmap engine overhead model.
  sim::Rng rng{seed ^ 0x7ab1e1};
  std::vector<double> overhead;
  overhead.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    overhead.push_back(attack::sample_tool_overhead(type, rng).to_millis_f());
  }
  row.tool_overhead_ms = stats::summarize(overhead);
  row.events_executed = lab.tb.loop().events_executed();
  return row;
}

ScanDetectionResult run_scan_detection(attack::ProbeType type,
                                       double rate_per_s,
                                       sim::Duration window,
                                       std::uint64_t seed,
                                       obs::Observability* obs) {
  ProbeLab lab{seed};
  if (obs != nullptr) lab.tb.set_observability(obs);
  ids::Ids ids{lab.tb.loop()};
  ids.install_default_rules();
  // Monitor the victim's access link (the paper ran Snort on the
  // scanned network link).
  ids.monitor(*lab.victim_link);
  lab.tb.start(Duration::seconds(1));
  lab.attacker->send_arp_request(lab.victim->ip());
  lab.tb.run_for(Duration::millis(100));

  attack::LivenessProber::Config pc;
  pc.type = type;
  pc.timeout = Duration::millis(35);
  if (type == attack::ProbeType::TcpIdleScan) {
    pc.zombie = attack::ZombieRef{lab.zombie->ip(), lab.zombie->mac()};
  }
  attack::LivenessProber prober{lab.tb.loop(), lab.tb.fork_rng(),
                                *lab.attacker, pc};

  attack::ProbeTarget target;
  target.ip = lab.victim->ip();
  target.mac = lab.victim->mac();
  target.tcp_port = 80;

  const auto period = Duration::from_seconds_f(1.0 / rate_per_s);
  const std::function<void()> tick = [&]() {
    if (!prober.busy()) {
      prober.probe(target, [](const attack::ProbeOutcome&) {});
    }
    lab.tb.loop().post_after(period, [&tick] { tick(); });
  };
  lab.tb.loop().post_after(Duration::zero(), [&tick] { tick(); });
  lab.tb.run_for(window);

  ScanDetectionResult result;
  result.type = type;
  result.rate_per_s = rate_per_s;
  result.probes_sent = prober.probes_sent();
  result.ids_alerts = ids.alert_count();
  if (check::InvariantChecker* checker = lab.tb.invariant_checker()) {
    checker->final_check();
    result.invariant_sweeps = checker->checks_run();
    result.invariant_violations = checker->violation_count();
  }
  result.events_executed = lab.tb.loop().events_executed();
  result.pipeline_stats = lab.tb.controller().pipeline().stats();
  if (obs != nullptr) obs->finalize(lab.tb.loop().now());
  return result;
}

}  // namespace tmg::scenario
