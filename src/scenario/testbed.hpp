// Testbed builder: wires switches, links, hosts, control channels and a
// controller into one simulated network. The canned paper topologies
// (Figs. 1, 2, 9) are built on top of this.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "attack/host.hpp"
#include "attack/oob_channel.hpp"
#include "check/invariants.hpp"
#include "ctrl/controller.hpp"
#include "of/control_channel.hpp"
#include "of/data_link.hpp"
#include "of/switch.hpp"
#include "sim/event_loop.hpp"
#include "sim/rng.hpp"

namespace tmg::scenario {

struct TestbedOptions {
  std::uint64_t seed = 42;
  ctrl::ControllerConfig controller;
  /// Dataplane link latency model (paper Fig. 9: 5 ms links with
  /// occasional micro-bursts to ~12 ms, Fig. 10).
  sim::Duration dataplane_latency = sim::Duration::millis(5);
  sim::Duration dataplane_jitter = sim::Duration::micros(300);
  double microburst_p = 0.03;
  sim::Duration microburst_mean = sim::Duration::from_millis_f(2.5);
  /// Host access links are short patch cables.
  sim::Duration access_latency = sim::Duration::micros(200);
  sim::Duration access_jitter = sim::Duration::micros(20);
  /// Control channel (switch <-> controller).
  sim::Duration control_latency = sim::Duration::millis(1);
  sim::Duration control_jitter = sim::Duration::micros(100);
  /// Template for switch behavior (dpid is overridden per switch).
  of::Switch::Config switch_template;
  /// Attach the runtime invariant checker (src/check) to the controller.
  /// Integration tests turn this on; benches leave it off to keep the
  /// measured hot path untouched.
  bool check_invariants = false;
  /// Periodic check cadence when the checker is attached (events).
  std::uint64_t check_every_events = 256;
  /// External event loop to build on (borrowed; must outlive the
  /// Testbed and be freshly constructed or reset). Null = the testbed
  /// owns a private loop. Per-worker TrialArenas pass their warm loop
  /// here so repeated trials reuse its allocation slabs (DESIGN.md §7).
  sim::EventLoop* loop = nullptr;
};

class Testbed {
 public:
  explicit Testbed(TestbedOptions options = {});
  ~Testbed();
  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  [[nodiscard]] sim::EventLoop& loop() { return loop_; }
  [[nodiscard]] ctrl::Controller& controller() { return *controller_; }
  [[nodiscard]] const TestbedOptions& options() const { return options_; }
  sim::Rng fork_rng() { return rng_.fork(); }

  /// Attach the observability layer (borrowed; nullptr detaches): wires
  /// the controller (pipeline spans, collectors, echo RTT histogram) and
  /// the event loop's profiling probe. A null pointer restores the
  /// zero-cost unobserved configuration.
  void set_observability(obs::Observability* obs);
  [[nodiscard]] obs::Observability* observability() {
    return controller_->observability();
  }

  of::Switch& add_switch(of::Dpid dpid);
  [[nodiscard]] of::Switch& get_switch(of::Dpid dpid);

  /// The switch's control channel. Attack models with Flow-Mod reach
  /// (compromised app / southbound MITM, e.g. attack::FlowRuleRelay)
  /// inject rules here; the switch cannot tell them from controller
  /// traffic.
  [[nodiscard]] of::ControlChannel& control_channel(of::Dpid dpid);

  /// Inter-switch wire using the dataplane (micro-burst) latency model.
  of::DataLink& connect_switches(of::Dpid a, of::PortNo pa, of::Dpid b,
                                 of::PortNo pb);

  /// Access link on (dpid, port) with no host yet (migration target).
  /// The switch is side A; a host attaches on side B.
  of::DataLink& add_access_link(of::Dpid dpid, of::PortNo port);

  /// Create a host and cable it to (dpid, port).
  attack::Host& add_host(of::Dpid dpid, of::PortNo port,
                         attack::HostConfig config);

  /// Create a host on an existing access link (side B).
  attack::Host& add_host_on(of::DataLink& link, attack::HostConfig config);

  attack::OutOfBandChannel& add_oob_channel(
      attack::OobChannelConfig config = {});

  /// Register all switches with the controller, start its services, and
  /// run the given warm-up (default: long enough for link discovery and
  /// the first control-RTT echoes).
  void start(sim::Duration warmup = sim::Duration::seconds(1));

  void run_for(sim::Duration d);
  void run_until(sim::SimTime t);

  [[nodiscard]] bool started() const { return started_; }

  /// Attach the invariant checker now (idempotent). Called automatically
  /// by start() when options.check_invariants is set; callers that add a
  /// TopoGuard should pass it so profile transitions are validated too.
  check::InvariantChecker& enable_invariant_checker(
      const defense::TopoGuard* topoguard = nullptr);

  /// The attached checker, or nullptr when disabled.
  [[nodiscard]] check::InvariantChecker* invariant_checker() {
    return checker_.get();
  }

 private:
  std::unique_ptr<sim::LatencyModel> dataplane_model();
  std::unique_ptr<sim::LatencyModel> access_model();
  std::unique_ptr<sim::LatencyModel> control_model();

  struct SwitchEntry {
    std::unique_ptr<of::ControlChannel> channel;
    std::unique_ptr<of::Switch> sw;
    std::vector<of::PortNo> ports;
  };

  TestbedOptions options_;
  /// Private loop when options.loop is null; loop_ aliases either this
  /// or the borrowed arena loop.
  std::unique_ptr<sim::EventLoop> owned_loop_;
  sim::EventLoop& loop_;
  sim::Rng rng_;
  std::unique_ptr<ctrl::Controller> controller_;
  std::map<of::Dpid, SwitchEntry> switches_;
  std::vector<std::unique_ptr<of::DataLink>> links_;
  std::vector<std::unique_ptr<attack::Host>> hosts_;
  std::vector<std::unique_ptr<attack::OutOfBandChannel>> oobs_;
  std::unique_ptr<check::InvariantChecker> checker_;
  bool started_ = false;
};

/// Unplug `host` from its link, and plug it into `target` (side B) after
/// `downtime`. Models maintenance reboots and VM live migration.
void migrate_host(Testbed& tb, attack::Host& host, of::DataLink& target,
                  sim::Duration downtime);

}  // namespace tmg::scenario
