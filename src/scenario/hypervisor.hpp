// Hypervisor with automatic live migration.
//
// Paper Sec. IV-B: "Many hypervisors (e.g., VMware) offer services to
// automatically migrate VMs between servers when CPU or memory
// resources become saturated. An attacker could co-locate a host with
// the target VM and mount a denial-of-service attack against those
// resources until the victim was moved by the hypervisor."
//
// This models exactly that: VMs with load figures placed on servers
// with capacity; when a server stays saturated for a sustain period,
// the balancer live-migrates its most expensive *migratable* VM to the
// least-loaded server, unplugging it from its current access link and
// re-plugging it at the destination after a sampled downtime window
// (seconds-scale, per the live-migration literature the paper cites).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "attack/host.hpp"
#include "of/data_link.hpp"
#include "sim/event_loop.hpp"
#include "sim/rng.hpp"

namespace tmg::scenario {

using ServerId = std::uint32_t;

struct HypervisorConfig {
  /// Utilization fraction above which a server is saturated.
  double saturation_threshold = 0.85;
  /// Saturation must persist this long before the balancer acts
  /// (hysteresis against transient spikes).
  sim::Duration sustain = sim::Duration::seconds(5);
  /// Balancer evaluation period.
  sim::Duration tick = sim::Duration::seconds(1);
  /// Live-migration downtime window: log-normal, seconds-scale
  /// (Xen/VMware measurements cited in paper Sec. IV-B2).
  double downtime_mu_s = 0.7;     // exp(mu) ~ 2.0 s median
  double downtime_sigma = 0.35;
};

class Hypervisor {
 public:
  Hypervisor(sim::EventLoop& loop, sim::Rng rng, HypervisorConfig config);

  /// Declare a physical server with the given resource capacity and the
  /// access links (one per VM slot) it offers.
  void add_server(ServerId id, double capacity,
                  std::vector<of::DataLink*> slots);

  struct VmOptions {
    double load = 0.1;
    /// Pinned VMs are never auto-migrated (e.g. the attacker's own VM).
    bool migratable = true;
  };

  /// Place `vm` on `server` (it is cabled into a free slot's link).
  void place_vm(std::string name, attack::Host& vm, ServerId server,
                VmOptions options);

  /// Change a VM's resource consumption (the attacker's lever: a cache-
  /// dirtying / disk-thrashing co-tenant drives this to ~capacity).
  void set_load(const std::string& vm_name, double load);

  /// Start the balancer.
  void start();

  [[nodiscard]] double server_utilization(ServerId id) const;
  [[nodiscard]] ServerId server_of(const std::string& vm_name) const;
  [[nodiscard]] std::uint64_t migrations() const { return migrations_; }
  [[nodiscard]] bool migration_in_progress() const { return migrating_; }

  /// Observer invoked when a migration begins (vm name, from, to,
  /// downtime). The port-probing attacker doesn't get this callback —
  /// it must *detect* the downtime via liveness probes; tests use it.
  using MigrationListener = std::function<void(
      const std::string&, ServerId, ServerId, sim::Duration)>;
  void set_migration_listener(MigrationListener listener) {
    listener_ = std::move(listener);
  }

 private:
  struct Vm {
    std::string name;
    attack::Host* host = nullptr;
    ServerId server = 0;
    std::size_t slot = 0;
    double load = 0.0;
    bool migratable = true;
  };
  struct Server {
    double capacity = 1.0;
    std::vector<of::DataLink*> slots;
    std::vector<bool> slot_used;
  };

  void tick();
  void migrate(Vm& vm, ServerId to);
  [[nodiscard]] double load_of(ServerId id) const;
  [[nodiscard]] std::size_t free_slot(ServerId id) const;

  sim::EventLoop& loop_;
  sim::Rng rng_;
  HypervisorConfig config_;
  std::map<ServerId, Server> servers_;
  std::map<std::string, Vm> vms_;
  std::map<ServerId, sim::SimTime> saturated_since_;
  MigrationListener listener_;
  std::uint64_t migrations_ = 0;
  bool migrating_ = false;
  bool started_ = false;
};

}  // namespace tmg::scenario
