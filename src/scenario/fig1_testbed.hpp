// Paper Fig. 1 topology: two switches joined by a real link, a benign
// host and an attacker host on each, and an out-of-band (wireless)
// channel between the attackers who fabricate a link between
// (0x1, port 1) and (0x2, port 1).
#pragma once

#include <memory>

#include "scenario/testbed.hpp"

namespace tmg::scenario {

struct Fig1Testbed {
  std::unique_ptr<Testbed> tb;
  attack::Host* attacker_a = nullptr;  // on (0x1, 1)
  attack::Host* attacker_b = nullptr;  // on (0x2, 1)
  attack::Host* h1 = nullptr;          // benign, on (0x1, 2)
  attack::Host* h2 = nullptr;          // benign, on (0x2, 2)
  attack::OutOfBandChannel* oob = nullptr;

  of::Location a_loc{0x1, 1};
  of::Location b_loc{0x2, 1};
  of::Location h1_loc{0x1, 2};
  of::Location h2_loc{0x2, 2};
  /// The real inter-switch link's endpoints.
  of::Location real_a{0x1, 10};
  of::Location real_b{0x2, 10};

  /// The link the attackers try to fabricate.
  [[nodiscard]] topo::Link fabricated_link() const {
    return topo::Link{a_loc, b_loc};
  }
  [[nodiscard]] bool fabricated_link_present() const {
    return tb->controller().topology().has_link(a_loc, b_loc);
  }
};

/// Build (but do not start) the Fig. 1 testbed: install defenses on
/// `result.tb->controller()` first, then call `result.tb->start()`.
Fig1Testbed make_fig1_testbed(TestbedOptions options = {});

/// Have the benign hosts exchange a few packets so they register as
/// HOSTs in every profiler (call after start()).
void fig1_warm_hosts(Fig1Testbed& f);

}  // namespace tmg::scenario
