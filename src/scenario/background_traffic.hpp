// Deterministic background workload generator (DESIGN.md §12).
//
// Fleet-scale runs need the controller busy with realistic chatter while
// an attack executes, because every defense and race window in the paper
// behaves differently on a loaded control plane. Three independently
// gated processes drive traffic through the real pipeline:
//
//   flows     — seeded Poisson arrivals of short unicast flows between
//               random population hosts: each first packet is a table
//               miss (Packet-In -> routing -> Flow-Mods), the rest ride
//               the installed rules.
//   ARP churn — rate-limited gratuitous ARP announcements: broadcast
//               floods plus HTS last-seen refreshes.
//   mobility  — hosts migrate to spare access ports (Port-Down, rejoin
//               announcement, Moved host event, route repair).
//
// All scheduling is drawn from one forked Rng against the sim clock, so
// the full event sequence is a pure function of (rng, config, endpoint
// order) — byte-identical across repetitions and --jobs counts.
#pragma once

#include <cstdint>
#include <vector>

#include "scenario/testbed.hpp"

namespace tmg::scenario {

struct BackgroundTrafficConfig {
  /// Mean inter-arrival of new flows (exponential). Zero disables flows.
  sim::Duration mean_flow_interarrival = sim::Duration::millis(20);
  /// Packets per flow and their on-wire spacing; first packet is the
  /// table miss, the rest exercise the installed rules.
  int packets_per_flow = 4;
  sim::Duration packet_gap = sim::Duration::micros(200);
  std::size_t flow_bytes = 512;

  /// Gratuitous-ARP announcement cadence (one random host per tick,
  /// jittered ±25%). Zero disables churn. Broadcasts are the expensive
  /// event class at fleet scale, so this is a period, not a rate per
  /// host.
  sim::Duration arp_churn_period = sim::Duration::seconds(1);

  /// Host mobility cadence (one migration per tick, jittered ±25%).
  /// Zero — or an empty spare-link pool — disables mobility.
  sim::Duration mobility_period = sim::Duration::seconds(10);
  sim::Duration mobility_downtime = sim::Duration::millis(200);
};

/// Drives the configured workload over a population of testbed hosts.
/// Borrow-only: the testbed, hosts, and links must outlive this object,
/// and the event loop must not run past its destruction while started
/// (stop() disarms all pending callbacks' work).
class BackgroundTraffic {
 public:
  struct Stats {
    std::uint64_t flows_started = 0;
    std::uint64_t packets_offered = 0;
    std::uint64_t arp_announcements = 0;
    std::uint64_t migrations = 0;
  };

  BackgroundTraffic(Testbed& tb, sim::Rng rng, BackgroundTrafficConfig config);

  /// Register a traffic endpoint. `link` is the host's access link and
  /// is required for the host to participate in mobility; pass nullptr
  /// to pin the host (role hosts — victim/attacker — stay put so the
  /// experiment's geometry is stable).
  void add_endpoint(attack::Host& host, of::DataLink* link = nullptr);

  /// Donate a vacant access link to the mobility pool.
  void add_spare_link(of::DataLink& link);

  /// Arm the generators (idempotent). Requires at least two endpoints.
  void start();

  /// Disarm: pending callbacks become no-ops and nothing reschedules.
  void stop() { running_ = false; }

  [[nodiscard]] bool running() const { return running_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t endpoint_count() const {
    return endpoints_.size();
  }

 private:
  struct Endpoint {
    attack::Host* host = nullptr;
    of::DataLink* link = nullptr;  // null = pinned (never migrates)
  };

  void schedule_flow();
  void schedule_arp();
  void schedule_mobility();
  [[nodiscard]] sim::Duration jittered(sim::Duration period);

  Testbed& tb_;
  sim::EventLoop& loop_;
  sim::Rng rng_;
  BackgroundTrafficConfig config_;
  std::vector<Endpoint> endpoints_;
  std::vector<of::DataLink*> spare_links_;
  Stats stats_;
  bool running_ = false;
};

}  // namespace tmg::scenario
