// Message pipeline (Floodlight IOFMessageListener chain analogue).
//
// Every consumer of switch-originated OpenFlow messages — link
// discovery, host tracking, routing, each defense module, the
// controller core itself — registers as a MessageListener with a
// declared subscription mask and an explicit priority. Dispatch walks
// the chain in ascending (priority, name) order; a listener may return
// Disposition::Stop to consume the message (Floodlight's
// Command.STOP). The chain order is a pure function of the registered
// (priority, name) pairs, never of registration order, so a shuffled
// setup resolves to the same byte-identical run (DESIGN.md §9 has the
// priority table).
//
// The pipeline also carries the controller-derived events the services
// publish mid-dispatch (LLDP observations, host events, link removals,
// outgoing flow-mods), so defenses subscribe to those exactly like raw
// OpenFlow messages. Defense verdicts accumulate in the
// DispatchContext: every defense sees every event (paper Sec. IV-B —
// alerting and blocking are independent), and the publisher reads the
// final verdict after the dispatch returns.
//
// Observability: per-listener dispatch/stop counters are always on;
// cumulative per-listener wall time is opt-in via set_timing() (the
// --pipeline-stats flag) because it reads the host clock.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ctrl/defense_module.hpp"
#include "obs/trace_log.hpp"
#include "of/messages.hpp"
#include "sim/event_loop.hpp"
#include "topo/graph.hpp"

namespace tmg::obs {
class Observability;
class Counter;
}  // namespace tmg::obs

namespace tmg::stats {
class Histogram;
}  // namespace tmg::stats

namespace tmg::ctrl {

/// Message classes a listener can subscribe to (bitmask values).
enum class MessageType : std::uint32_t {
  PacketIn = 1u << 0,
  PortStatus = 1u << 1,
  EchoReply = 1u << 2,
  FlowRemoved = 1u << 3,
  FlowStats = 1u << 4,
  PortStats = 1u << 5,
  // Controller-derived events, published by the services.
  LldpObservation = 1u << 6,
  HostEvent = 1u << 7,
  LinkRemoved = 1u << 8,
  FlowModOut = 1u << 9,
};

[[nodiscard]] constexpr std::uint32_t mask_of(MessageType t) {
  return static_cast<std::uint32_t>(t);
}
[[nodiscard]] constexpr std::uint32_t operator|(MessageType a, MessageType b) {
  return mask_of(a) | mask_of(b);
}
[[nodiscard]] constexpr std::uint32_t operator|(std::uint32_t a,
                                                MessageType b) {
  return a | mask_of(b);
}
[[nodiscard]] const char* to_string(MessageType t);

/// One message traversing the chain. Exactly one payload pointer is
/// non-null, matching `type`; payloads are borrowed for the duration of
/// the dispatch only.
struct PipelineMessage {
  MessageType type = MessageType::PacketIn;
  of::Dpid dpid = 0;  // originating switch (FlowModOut: target switch)
  const of::PacketIn* packet_in = nullptr;
  const of::PortStatus* port_status = nullptr;
  const of::EchoReply* echo_reply = nullptr;
  const of::FlowRemoved* flow_removed = nullptr;
  const of::FlowStatsReply* flow_stats = nullptr;
  const of::PortStatsReply* port_stats = nullptr;
  const LldpObservation* lldp_observation = nullptr;
  const HostEvent* host_event = nullptr;
  const topo::Link* link_removed = nullptr;
  const of::FlowMod* flow_mod = nullptr;

  static PipelineMessage from(const of::PacketIn& pi);
  static PipelineMessage from(of::Dpid dpid, const of::PortStatus& ps);
  static PipelineMessage from(of::Dpid dpid, const of::EchoReply& er);
  static PipelineMessage from(of::Dpid dpid, const of::FlowRemoved& fr);
  static PipelineMessage from(of::Dpid dpid, const of::FlowStatsReply& fsr);
  static PipelineMessage from(of::Dpid dpid, const of::PortStatsReply& psr);
  static PipelineMessage from(const LldpObservation& obs);
  static PipelineMessage from(const HostEvent& ev);
  static PipelineMessage from(const topo::Link& link);
  static PipelineMessage from(of::Dpid dpid, const of::FlowMod& fm);
};

enum class Disposition { Continue, Stop };

/// Mutable per-dispatch state shared down the chain.
struct DispatchContext {
  /// Accumulated defense verdict; Block never short-circuits sibling
  /// defenses, only the publisher's state commit.
  Verdict verdict = Verdict::Allow;
  /// Listeners the message was delivered to.
  std::size_t visited = 0;
  /// Name of the listener that stopped the chain (nullptr: ran through).
  const char* stopped_by = nullptr;
};

class MessageListener {
 public:
  virtual ~MessageListener() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// OR-mask of MessageType values this listener receives.
  [[nodiscard]] virtual std::uint32_t subscriptions() const = 0;
  virtual Disposition on_message(const PipelineMessage& msg,
                                 DispatchContext& ctx) = 0;
};

class MessagePipeline {
 public:
  /// Per-listener observability snapshot (stats() returns chain order).
  struct ListenerStats {
    std::string name;
    int priority = 0;
    bool enabled = true;
    std::uint32_t subscriptions = 0;
    std::uint64_t dispatches = 0;  // messages delivered
    std::uint64_t stops = 0;       // dispositions that ended the chain
    double wall_ms = 0.0;          // cumulative handler time (timing on)
  };

  /// Register a borrowed listener at `priority` (lower runs first, ties
  /// break on name; duplicate names get a deterministic "#N" suffix).
  void add(int priority, MessageListener& listener);
  /// Register an owned listener (adapter objects, test fixtures).
  MessageListener& add_owned(int priority,
                             std::unique_ptr<MessageListener> listener);

  /// Walk the chain for `msg`; `ctx` accumulates verdicts and records
  /// who stopped the dispatch.
  void dispatch(const PipelineMessage& msg, DispatchContext& ctx);
  /// Convenience: dispatch with a fresh context, return its verdict.
  Verdict dispatch(const PipelineMessage& msg);

  /// Enable/disable a listener by name; returns false for unknown names.
  /// Disabled listeners stay in the chain (order is stable) but receive
  /// nothing.
  bool set_enabled(const std::string& name, bool enabled);
  [[nodiscard]] bool is_enabled(const std::string& name) const;

  /// Opt-in per-listener wall-clock timing (host time; observability
  /// only, never fed back into the simulation).
  void set_timing(bool on) { timing_ = on; }
  [[nodiscard]] bool timing() const { return timing_; }

  /// Attach the observability layer (borrowed; nullptr detaches, which
  /// is the default and the zero-cost path). `loop` supplies sim-time
  /// stamps for dispatch spans and queue-depth readings. With a null
  /// obs pointer dispatch behavior is bit-identical to an unobserved
  /// pipeline — the fastpath-equivalence CI leg holds this to goldens.
  void set_observability(obs::Observability* obs, const sim::EventLoop* loop);
  [[nodiscard]] obs::Observability* observability() const { return obs_; }

  /// Zero every per-listener dispatch/stop/wall-time counter (chain
  /// membership and enabled flags are untouched). The trial-reset path
  /// calls this so a pipeline reused across trials starts from zeroed
  /// counters (tests/obs_test.cpp has the --jobs 8 regression test).
  void reset_stats();

  [[nodiscard]] std::vector<ListenerStats> stats() const;
  /// Listener names in dispatch order.
  [[nodiscard]] std::vector<std::string> chain_names() const;
  [[nodiscard]] std::size_t size() const { return chain_.size(); }

  /// Internal-coherence self-check for the invariant checker: chain
  /// sorted by (priority, name), names unique, counters consistent.
  [[nodiscard]] std::vector<std::string> audit() const;

 private:
  struct Entry {
    int priority = 0;
    std::string name;
    MessageListener* listener = nullptr;
    std::unique_ptr<MessageListener> owned;
    std::uint32_t mask = 0;  // cached subscriptions()
    bool enabled = true;
    std::uint64_t dispatches = 0;
    std::uint64_t stops = 0;
    std::int64_t wall_ns = 0;
  };

  void insert(Entry entry);
  [[nodiscard]] const Entry* find_entry(const std::string& name) const;
  /// Observed-dispatch helpers (only reached when obs_ != nullptr).
  [[nodiscard]] obs::SpanId open_dispatch_span(const PipelineMessage& msg);
  void close_listener_span(obs::SpanId span, const DispatchContext& ctx,
                           Disposition d, Verdict verdict_before);

  std::vector<Entry> chain_;  // sorted by (priority, name)
  bool timing_ = false;
  obs::Observability* obs_ = nullptr;
  const sim::EventLoop* obs_loop_ = nullptr;
  // Metric handles, resolved once at attach (registry handles are stable
  // and survive MetricsRegistry::reset()).
  obs::Counter* obs_dispatches_ = nullptr;
  stats::Histogram* obs_queue_depth_ = nullptr;
  stats::Histogram* obs_visited_ = nullptr;
  /// Innermost open span: dispatch re-enters when a listener publishes a
  /// derived event, and the nested dispatch's span parents here.
  obs::SpanId obs_parent_ = 0;
};

}  // namespace tmg::ctrl
