// Reactive routing (Floodlight Forwarding analogue).
//
// Table-miss Packet-Ins trigger shortest-path computation over the
// (possibly poisoned) topology, Flow-Mod installation along the path,
// and a Packet-Out of the triggering packet. Broadcast and
// unknown-unicast are flooded with controller-side duplicate
// suppression (standing in for Floodlight's broadcast tree).
#pragma once

#include <cstdint>
#include <vector>

#include "ctrl/dedup_ring.hpp"
#include "ctrl/message_pipeline.hpp"
#include "of/messages.hpp"
#include "topo/path_cache.hpp"

namespace tmg::ctrl {

class Controller;
class HostTrackingService;

class RoutingService final : public MessageListener {
 public:
  explicit RoutingService(Controller& ctrl);

  // --- MessageListener (registered at profile layout.routing, last) ---
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint32_t subscriptions() const override;
  Disposition on_message(const PipelineMessage& msg,
                         DispatchContext& ctx) override;

  /// Route or flood a (non-LLDP) Packet-In.
  void handle_packet_in(const of::PacketIn& pi);

  /// Purge rules delivering to a host that moved, so traffic follows the
  /// new binding immediately (Floodlight does the same on device move).
  void on_host_moved(const HostEvent& ev);

  [[nodiscard]] std::uint64_t paths_installed() const { return paths_; }
  [[nodiscard]] std::uint64_t floods() const { return floods_; }

  /// Epoch-keyed shortest-path memo (audited by the invariant checker).
  [[nodiscard]] const topo::PathCache& path_cache() const {
    return path_cache_;
  }

 private:
  /// Hop-by-hop dataplane flooding with per-switch storm suppression:
  /// each switch floods a given packet at most once, so broadcasts
  /// propagate over real links (and pay real link latency) without
  /// looping.
  void flood(const of::PacketIn& pi);
  /// Install per-hop rules toward dst and forward the packet. Returns
  /// false if no path exists.
  bool route(const of::PacketIn& pi, const of::Location& dst_loc);
  /// Peer service, resolved through the registry on first use (the
  /// registry is populated after the services are constructed).
  [[nodiscard]] const HostTrackingService& host_tracking();

  Controller& ctrl_;
  const HostTrackingService* hosts_ = nullptr;  // lazily cached lookup
  /// All shortest-path queries go through the epoch-keyed cache; any
  /// topology mutation (including a fabricated link) invalidates it.
  topo::PathCache path_cache_;
  /// Flood dedup: ring of recent trace ids; flood_seen_[slot] lists the
  /// switches that already flooded that id. Slots are reused on eviction
  /// so steady-state flooding allocates nothing.
  DedupRing flooded_;
  std::vector<std::vector<of::Dpid>> flood_seen_;
  DedupRing routed_;
  std::uint64_t next_cookie_ = 1;
  std::uint64_t paths_ = 0;
  std::uint64_t floods_ = 0;
};

}  // namespace tmg::ctrl
