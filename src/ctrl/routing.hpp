// Reactive routing (Floodlight Forwarding analogue).
//
// Table-miss Packet-Ins trigger shortest-path computation over the
// (possibly poisoned) topology, Flow-Mod installation along the path,
// and a Packet-Out of the triggering packet. Broadcast and
// unknown-unicast are flooded with controller-side duplicate
// suppression (standing in for Floodlight's broadcast tree).
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "of/messages.hpp"

namespace tmg::ctrl {

class Controller;
struct HostEvent;

class RoutingService {
 public:
  explicit RoutingService(Controller& ctrl);

  /// Route or flood a (non-LLDP) Packet-In.
  void handle_packet_in(const of::PacketIn& pi);

  /// Purge rules delivering to a host that moved, so traffic follows the
  /// new binding immediately (Floodlight does the same on device move).
  void on_host_moved(const HostEvent& ev);

  [[nodiscard]] std::uint64_t paths_installed() const { return paths_; }
  [[nodiscard]] std::uint64_t floods() const { return floods_; }

 private:
  /// Hop-by-hop dataplane flooding with per-switch storm suppression:
  /// each switch floods a given packet at most once, so broadcasts
  /// propagate over real links (and pay real link latency) without
  /// looping.
  void flood(const of::PacketIn& pi);
  /// Install per-hop rules toward dst and forward the packet. Returns
  /// false if no path exists.
  bool route(const of::PacketIn& pi, const of::Location& dst_loc);
  void remember(std::unordered_set<std::uint64_t>& set,
                std::deque<std::uint64_t>& order, std::uint64_t id);

  Controller& ctrl_;
  /// trace_id -> switches that already flooded it.
  std::unordered_map<std::uint64_t, std::unordered_set<of::Dpid>>
      flood_state_;
  std::deque<std::uint64_t> flooded_order_;
  std::unordered_set<std::uint64_t> routed_;
  std::deque<std::uint64_t> routed_order_;
  std::uint64_t next_cookie_ = 1;
  std::uint64_t paths_ = 0;
  std::uint64_t floods_ = 0;
};

}  // namespace tmg::ctrl
