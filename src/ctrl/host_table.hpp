// Sharded open-addressed host-record store (DESIGN.md §12).
//
// The Host Tracking Service is the controller's hottest per-packet
// state: every non-LLDP Packet-In probes it, and fleet-scale workloads
// (millions of learned hosts, background ARP churn) made the original
// single unordered_map the bottleneck — per-learn node allocation plus
// full-table rehash pauses on the Packet-In path.
//
// Layout: 16 shards selected by a mixed MAC hash; each shard is a
// power-of-two open-addressed array with linear probing. Host records
// are never erased (bindings are only created or rewritten — exactly
// the property Host Location Hijacking abuses), so there are no
// tombstones and probes stop at the first empty slot. A learn in
// steady state touches one cache-resident probe run and allocates
// nothing; the only allocation is the amortized shard doubling.
//
// Iteration order over shards/slots is hash order and must never reach
// output: callers that export records use sorted() (by MAC), and
// find_by_ip-style scans must be order-free reductions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "net/ipv4_address.hpp"
#include "net/mac_address.hpp"
#include "of/messages.hpp"
#include "sim/time.hpp"

namespace tmg::ctrl {

struct HostRecord {
  net::MacAddress mac;
  net::Ipv4Address ip;
  of::Location loc;
  sim::SimTime first_seen;
  sim::SimTime last_seen;
};

class HostTable {
 public:
  HostTable();

  /// Mutable record for `mac`, or nullptr if never learned.
  [[nodiscard]] HostRecord* find(net::MacAddress mac);
  [[nodiscard]] const HostRecord* find(net::MacAddress mac) const;

  /// Insert a record for `rec.mac` (which must not be present).
  /// Returns the stored record. Pointers are invalidated by the next
  /// insert (shard growth may move records).
  HostRecord& insert(const HostRecord& rec);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Deterministic snapshot: all records sorted by MAC. O(n log n);
  /// for exports and logs, not the packet path.
  [[nodiscard]] std::vector<HostRecord> sorted() const;

  /// Visit every record in shard/slot (hash) order. The order is NOT
  /// deterministic across table histories — callers must only fold
  /// order-free reductions (max/min/count) out of it, never output.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Shard& shard : shards_) {
      for (std::size_t i = 0; i < shard.slots.size(); ++i) {
        if (shard.used[i] != 0) fn(shard.slots[i]);
      }
    }
  }

  /// Self-consistency audit: shard assignment, probe reachability of
  /// every occupied slot, size bookkeeping, and load-factor bounds.
  /// Returns sorted violation strings (empty when healthy).
  [[nodiscard]] std::vector<std::string> audit() const;

 private:
  static constexpr std::size_t kShards = 16;
  static constexpr std::size_t kInitialSlots = 64;  // per shard

  struct Shard {
    std::vector<HostRecord> slots;
    std::vector<std::uint8_t> used;
    std::size_t count = 0;
  };

  /// SplitMix64 finalizer over the 48-bit MAC: the raw value is nearly
  /// sequential for generated fleets, which would cluster probes.
  [[nodiscard]] static std::uint64_t mix(net::MacAddress mac);
  [[nodiscard]] static std::size_t shard_of(std::uint64_t h) {
    return static_cast<std::size_t>(h >> 60) & (kShards - 1);
  }

  static void grow(Shard& shard);
  [[nodiscard]] static HostRecord* probe(Shard& shard, net::MacAddress mac,
                                         std::uint64_t h, bool& found);

  std::vector<Shard> shards_;
  std::size_t size_ = 0;
};

}  // namespace tmg::ctrl
