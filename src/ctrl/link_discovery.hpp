// Link Discovery Service (Floodlight LinkManager analogue).
//
// Three-phase discovery exactly as the paper describes (Sec. III-A.1):
// (1) the controller emits crafted LLDP via Packet-Out to every switch
// port, (2) the switch transmits it on that port, (3) whichever switch
// receives it punts it back via Packet-In, and the controller infers a
// link between the advertised and receiving (switch, port) pairs.
//
// With `authenticate_lldp` the packets carry a truncated HMAC; with
// `lldp_timestamps` they carry an XTEA-sealed departure time used by the
// TOPOGUARD+ LLI to estimate per-link latency.
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "ctrl/message_pipeline.hpp"
#include "net/lldp.hpp"
#include "of/messages.hpp"
#include "sim/time.hpp"
#include "topo/graph.hpp"

namespace tmg::ctrl {

class Controller;

class LinkDiscoveryService final : public MessageListener {
 public:
  explicit LinkDiscoveryService(Controller& ctrl);

  /// Start periodic LLDP rounds and the link-timeout sweep.
  void start();

  // --- MessageListener (registered at profile layout.link_discovery) ---
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint32_t subscriptions() const override;
  /// LLDP Packet-Ins are consumed here (Stop); Port-Down status drops
  /// every link with that endpoint and lets the chain continue. With
  /// the profile's probe_on_port_up knob, Port-Up triggers an immediate
  /// LLDP emission on that port (event-triggered discovery).
  Disposition on_message(const PipelineMessage& msg,
                         DispatchContext& ctx) override;

  /// Handle an LLDP Packet-In (called from on_message).
  void handle_lldp_packet_in(const of::PacketIn& pi);

  /// Port went down: drop every link with that endpoint immediately
  /// (Floodlight behavior). The next LLDP round re-verifies real links;
  /// a fabricated link must be re-relayed by the attacker.
  void handle_port_down(of::Location loc);

  /// Construct the LLDP packet for one (switch, port) emission. Public
  /// so the Table II benchmark can measure construction cost directly.
  [[nodiscard]] net::LldpPacket construct_lldp(of::Dpid dpid, of::PortNo port,
                                               std::uint64_t nonce,
                                               sim::SimTime departure) const;

  /// Emit one full LLDP round immediately (also runs periodically).
  void emit_round();

  /// Emit a single LLDP probe on one (switch, port) — the unit of work
  /// emit_round loops over, also fired directly on Port-Up when the
  /// profile enables probe_on_port_up.
  void emit_port(of::Dpid dpid, of::PortNo port);

  struct LinkState {
    topo::Link link;
    sim::SimTime discovered_at;
    sim::SimTime last_verified;
  };
  [[nodiscard]] std::vector<LinkState> link_states() const;
  [[nodiscard]] std::uint64_t emissions() const { return emissions_; }
  [[nodiscard]] std::uint64_t receptions() const { return receptions_; }

  /// Probe conservation ledger. Every emitted LLDP probe must end up in
  /// exactly one bucket (matched / expired / still outstanding), and
  /// every reception in exactly one of the reception buckets — the
  /// invariant checker (src/check) asserts both sums hold.
  struct LldpAccounting {
    std::uint64_t emitted = 0;
    std::uint64_t matched = 0;      // emissions answered at least once
    std::uint64_t expired = 0;      // superseded before any reception
    std::uint64_t duplicate = 0;    // repeat receptions of a matched probe
    std::uint64_t unsolicited = 0;  // claimed src never emitted (forgery)
    std::uint64_t reflected = 0;    // received on the advertised port
    std::uint64_t invalid_signature = 0;
    std::uint64_t outstanding_unmatched = 0;  // awaiting first reception
  };
  [[nodiscard]] LldpAccounting lldp_accounting() const;

 private:
  struct Emission {
    std::uint64_t nonce = 0;
    sim::SimTime sent_at;
    bool matched = false;  // at least one reception referenced it
    /// Open "lldp/rtt" span covering emission -> first reception (closed
    /// as "expired" when a fresh probe supersedes an unanswered one).
    obs::SpanId span = 0;
  };

  void sweep();
  [[nodiscard]] std::optional<sim::Duration> estimate_link_latency(
      const net::LldpPacket& lldp, of::Dpid src_dpid, of::Dpid dst_dpid,
      sim::SimTime received_at) const;

  Controller& ctrl_;
  std::map<of::Location, Emission> outstanding_;  // last emission per port
  std::map<topo::Link, LinkState> links_;
  std::uint64_t next_nonce_ = 1;
  std::uint64_t emissions_ = 0;
  std::uint64_t receptions_ = 0;
  std::uint64_t matched_ = 0;
  std::uint64_t expired_ = 0;
  std::uint64_t duplicate_ = 0;
  std::uint64_t unsolicited_ = 0;
  std::uint64_t reflected_ = 0;
  std::uint64_t invalid_signature_ = 0;
};

}  // namespace tmg::ctrl
