#include "ctrl/dedup_ring.hpp"

#include <cassert>

namespace tmg::ctrl {

namespace {

constexpr std::size_t kInitialTableSize = 1024;

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

DedupRing::DedupRing(std::size_t capacity)
    : capacity_{capacity == 0 ? 1 : capacity} {
  table_.resize(kInitialTableSize);
  ring_.reserve(64);
}

std::uint64_t DedupRing::mix(std::uint64_t x) {
  // SplitMix64 finalizer: full-avalanche over sequential trace ids.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::size_t DedupRing::find(std::uint64_t id) const {
  const std::size_t mask = table_.size() - 1;
  std::size_t i = mix(id) & mask;
  while (true) {
    const Slot& s = table_[i];
    if (s.state == State::kEmpty) return npos;
    if (s.state == State::kFull && s.key == id) return s.pos;
    i = (i + 1) & mask;
  }
}

void DedupRing::insert(std::uint64_t id, std::size_t pos) {
  if ((used_ + 1) * 4 >= table_.size() * 3) grow();
  const std::size_t mask = table_.size() - 1;
  std::size_t i = mix(id) & mask;
  while (table_[i].state == State::kFull) i = (i + 1) & mask;
  if (table_[i].state == State::kEmpty) ++used_;  // tombstone reuse: no change
  table_[i] = Slot{id, static_cast<std::uint32_t>(pos), State::kFull};
  ++live_;
}

void DedupRing::erase(std::uint64_t id) {
  const std::size_t mask = table_.size() - 1;
  std::size_t i = mix(id) & mask;
  while (true) {
    Slot& s = table_[i];
    if (s.state == State::kEmpty) return;  // duplicate-evict no-op
    if (s.state == State::kFull && s.key == id) {
      s.state = State::kTombstone;
      --live_;
      return;
    }
    i = (i + 1) & mask;
  }
}

void DedupRing::grow() {
  // Rehash live entries into a table that keeps them under half full;
  // tombstones are dropped. Size is bounded by the fixed ring capacity,
  // so steady state performs no further allocation.
  std::vector<Slot> old = std::move(table_);
  table_.assign(next_pow2((live_ + 1) * 4), Slot{});
  used_ = 0;
  live_ = 0;
  const std::size_t mask = table_.size() - 1;
  for (const Slot& s : old) {
    if (s.state != State::kFull) continue;
    std::size_t i = mix(s.key) & mask;
    while (table_[i].state == State::kFull) i = (i + 1) & mask;
    table_[i] = s;
    ++used_;
    ++live_;
  }
}

std::size_t DedupRing::push(std::uint64_t id) {
  assert(!contains(id));
  std::size_t pos;
  if (ring_.size() < capacity_) {
    pos = ring_.size();
    ring_.push_back(id);
  } else {
    pos = head_;
    erase(ring_[pos]);  // evict the oldest id
    ring_[pos] = id;
    head_ = (head_ + 1) % capacity_;
  }
  insert(id, pos);
  return pos;
}

}  // namespace tmg::ctrl
