// Alert collection.
//
// Defenses raise alerts here. Faithfully to the paper (Sec. IV-B "Alert
// Floods"), raising an alert does NOT alter network state: blocking is a
// separate, optional decision made by the module that detected the
// violation.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "of/messages.hpp"
#include "sim/time.hpp"

namespace tmg::ctrl {

enum class AlertType {
  // TopoGuard
  LldpFromHostPort,          // link fabrication: LLDP seen from a HOST port
  FirstHopFromSwitchPort,    // host traffic from a SWITCH port
  InvalidLldpSignature,      // authenticator missing/corrupt
  HostMigrationPrecondition,   // move without prior Port-Down
  HostMigrationPostcondition,  // old location still reachable after move
  // SPHINX surrogate
  SphinxIdentifierConflict,  // same MAC live at two locations
  SphinxFlowInconsistency,   // per-flow byte counters diverge along path
  SphinxWaypointChange,      // existing flow path changed unexpectedly
  SphinxLinkAsymmetry,       // link ingress/egress port counters diverge
  // TOPOGUARD+
  CmmControlMessage,         // Port-Up/Down during LLDP propagation
  LliAbnormalLatency,        // link latency above Q3 + 3*IQR
  LliMissingTimestamp,       // LLDP arrived without a decryptable timestamp
  // Secure identifier binding (paper Sec. VI-A / Jero et al. '17)
  SecureBindingViolation,    // claimed identifiers don't match credential
  // Dynamic ARP inspection (the conventional ARP-spoofing defense the
  // paper contrasts with HLH in Sec. III-A.2)
  ArpInspectionViolation,    // ARP sender fields contradict known binding
  // Active link verification (prototype of the "active, dynamic
  // defenses" the paper's conclusion calls for)
  ActiveProbeViolation,      // challenge probes lost or too slow
  // Runtime invariant checker (src/check): simulator self-consistency,
  // not an attack signal. Any occurrence means corrupted internal state.
  InvariantViolation,
  // Trace-profile anomaly IDS (src/ids): the live control-plane event
  // stream deviated from the trained BehaviorProfile (unseen transition,
  // rate-envelope breach, duration outlier, LLDP source violation).
  AnomalyDeviation,
};

/// Human-readable name of an alert type.
const char* to_string(AlertType t);

struct Alert {
  sim::SimTime time;
  std::string module;   // raising defense module
  AlertType type;
  std::string message;
  std::optional<of::Location> location;  // implicated port, if any
};

class AlertBus {
 public:
  using Listener = std::function<void(const Alert&)>;

  void raise(Alert alert);

  [[nodiscard]] const std::vector<Alert>& alerts() const { return alerts_; }
  [[nodiscard]] std::size_t count() const { return alerts_.size(); }
  [[nodiscard]] std::size_t count(AlertType t) const;
  [[nodiscard]] std::size_t count_from(const std::string& module) const;
  [[nodiscard]] bool any(AlertType t) const { return count(t) > 0; }

  /// Register a listener invoked on every subsequent alert.
  void subscribe(Listener listener);

  void clear() { alerts_.clear(); }

 private:
  std::vector<Alert> alerts_;
  std::vector<Listener> listeners_;
};

}  // namespace tmg::ctrl
