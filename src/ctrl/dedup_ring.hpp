// Fixed-capacity FIFO duplicate-suppression set.
//
// RoutingService remembers the last kDedupCapacity trace ids it routed
// or flooded. The original implementation paired std::unordered_set
// with a std::deque, paying one or two node allocations per packet.
// DedupRing keeps the same observable behavior — membership over the
// most recent `capacity` pushed ids, oldest evicted first — with a flat
// ring buffer plus an open-addressed linear-probe table: zero per-push
// allocations in steady state (storage doubles amortized until the
// fixed capacity is reached, then is reused forever).
//
// push() returns the ring slot index the id landed in. Slots are stable
// until evicted, which lets callers hang per-id payload off a parallel
// array that is cleared and reused instead of reallocated (see the
// flood state in routing.cpp).
#pragma once

#include <cstdint>
#include <vector>

namespace tmg::ctrl {

class DedupRing {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  explicit DedupRing(std::size_t capacity);

  [[nodiscard]] bool contains(std::uint64_t id) const {
    return find(id) != npos;
  }

  /// Ring slot holding `id`, or npos if not present.
  [[nodiscard]] std::size_t find(std::uint64_t id) const;

  /// Record `id`, evicting the oldest id once `capacity` is reached.
  /// Returns the ring slot used. Precondition: !contains(id) — callers
  /// always test membership first.
  std::size_t push(std::uint64_t id);

  [[nodiscard]] std::size_t size() const { return live_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  enum class State : std::uint8_t { kEmpty, kFull, kTombstone };
  struct Slot {
    std::uint64_t key = 0;
    std::uint32_t pos = 0;  // ring index
    State state = State::kEmpty;
  };

  [[nodiscard]] static std::uint64_t mix(std::uint64_t x);
  void insert(std::uint64_t id, std::size_t pos);
  void erase(std::uint64_t id);
  void grow();

  std::size_t capacity_;
  // FIFO of pushed ids; grows to capacity_ then wraps, overwriting the
  // slot at head_ (the oldest entry).
  std::vector<std::uint64_t> ring_;
  std::size_t head_ = 0;
  // Linear-probe table over (key -> ring pos); sized to a power of two,
  // kept under ~3/4 occupancy counting tombstones.
  std::vector<Slot> table_;
  std::size_t live_ = 0;
  std::size_t used_ = 0;  // live + tombstones
};

}  // namespace tmg::ctrl
