#include "ctrl/service_registry.hpp"

namespace tmg::ctrl {

std::vector<std::string> ServiceRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(services_.size());
  for (const auto& [name, _] : services_) out.push_back(name);
  return out;
}

}  // namespace tmg::ctrl
