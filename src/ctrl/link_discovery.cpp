#include "ctrl/link_discovery.hpp"

#include "ctrl/controller.hpp"
#include "obs/observability.hpp"

namespace tmg::ctrl {

LinkDiscoveryService::LinkDiscoveryService(Controller& ctrl) : ctrl_{ctrl} {}

void LinkDiscoveryService::start() {
  emit_round();
  sweep();
}

std::string LinkDiscoveryService::name() const {
  return kLinkDiscoveryServiceName;
}

std::uint32_t LinkDiscoveryService::subscriptions() const {
  return MessageType::PacketIn | MessageType::PortStatus;
}

Disposition LinkDiscoveryService::on_message(const PipelineMessage& msg,
                                             DispatchContext&) {
  if (msg.type == MessageType::PacketIn) {
    if (!msg.packet_in->packet.is_lldp()) return Disposition::Continue;
    handle_lldp_packet_in(*msg.packet_in);
    return Disposition::Stop;  // LLDP never reaches host tracking/routing
  }
  if (msg.type == MessageType::PortStatus) {
    if (msg.port_status->reason == of::PortStatus::Reason::Down) {
      handle_port_down(of::Location{msg.port_status->dpid,
                                    msg.port_status->port});
    } else if (ctrl_.config().profile.probe_on_port_up) {
      // Event-triggered discovery (ONOS / sOFTDP): a port coming up is
      // probed immediately instead of waiting out the periodic round.
      emit_port(msg.port_status->dpid, msg.port_status->port);
    }
  }
  return Disposition::Continue;
}

net::LldpPacket LinkDiscoveryService::construct_lldp(
    of::Dpid dpid, of::PortNo port, std::uint64_t nonce,
    sim::SimTime departure) const {
  net::LldpPacket lldp{dpid, port};
  if (ctrl_.config().lldp_timestamps) {
    lldp.set_encrypted_timestamp(ctrl_.ts_key(), nonce, departure);
  }
  if (ctrl_.config().authenticate_lldp) {
    lldp.sign(ctrl_.lldp_key());
  }
  return lldp;
}

void LinkDiscoveryService::emit_port(of::Dpid dpid, of::PortNo port) {
  const sim::SimTime now = ctrl_.loop().now();
  obs::Observability* obs = ctrl_.observability();
  const std::uint64_t nonce = next_nonce_++;
  net::LldpPacket lldp = construct_lldp(dpid, port, nonce, now);
  auto [slot, first] = outstanding_.try_emplace(of::Location{dpid, port});
  // Superseding a probe that was never answered retires it to the
  // "expired" bucket (LLDP conservation; see lldp_accounting()).
  if (!first && !slot->second.matched) {
    ++expired_;
    if (obs != nullptr && slot->second.span != 0) {
      obs->trace().annotate(slot->second.span, "outcome", "expired");
      obs->trace().end_span(slot->second.span, now);
    }
  }
  obs::SpanId span = 0;
  if (obs != nullptr) {
    span = obs->trace().begin_span(now, "lldp", "rtt");
    obs->trace().annotate(span, "src", of::Location{dpid, port}.to_string());
  }
  slot->second = Emission{nonce, now, false, span};
  ++emissions_;
  ctrl_.send_packet_out(
      dpid, port,
      net::make_lldp_frame(net::MacAddress::lldp_multicast(),
                           std::move(lldp)));
}

void LinkDiscoveryService::emit_round() {
  for (const of::Dpid dpid : ctrl_.switch_dpids()) {
    for (const of::PortNo port : ctrl_.switch_ports(dpid)) {
      emit_port(dpid, port);
    }
  }
  ctrl_.loop().post_after(ctrl_.config().profile.lldp_interval,
                              [this] { emit_round(); });
}

std::optional<sim::Duration> LinkDiscoveryService::estimate_link_latency(
    const net::LldpPacket& lldp, of::Dpid src_dpid, of::Dpid dst_dpid,
    sim::SimTime received_at) const {
  const auto departure = lldp.decrypt_timestamp(ctrl_.ts_key());
  if (!departure) return std::nullopt;
  const auto rtt_src = ctrl_.control_rtt(src_dpid);
  const auto rtt_dst = ctrl_.control_rtt(dst_dpid);
  // T_link = T_LLDP - T_SW1 - T_SW2 (paper Sec. VI-D). The control-link
  // delays are one-way estimates: half the measured echo RTT. Until the
  // first echo completes we conservatively subtract nothing, which only
  // overestimates latency during bootstrap (visible as the Fig. 11
  // startup burst).
  sim::Duration t = received_at - *departure;
  if (rtt_src) t -= *rtt_src / 2;
  if (rtt_dst) t -= *rtt_dst / 2;
  if (t.is_negative()) t = sim::Duration::zero();
  return t;
}

void LinkDiscoveryService::handle_lldp_packet_in(const of::PacketIn& pi) {
  const net::LldpPacket* lldp = pi.packet.lldp();
  if (!lldp) return;
  ++receptions_;
  const sim::SimTime now = ctrl_.loop().now();

  const of::Location src{lldp->chassis_id(), lldp->port_id()};
  const of::Location dst{pi.dpid, pi.in_port};
  if (src == dst) {  // reflection; ignore
    ++reflected_;
    return;
  }

  LldpObservation obs;
  obs.src = src;
  obs.dst = dst;
  obs.received_at = now;

  // Signature check (TopoGuard "authenticated LLDP").
  obs.signature_valid =
      !ctrl_.config().authenticate_lldp || lldp->verify(ctrl_.lldp_key());
  if (!obs.signature_valid) {
    ++invalid_signature_;
    ctrl_.alerts().raise(Alert{now, "LinkDiscovery",
                               AlertType::InvalidLldpSignature,
                               "LLDP authenticator missing or invalid from " +
                                   dst.to_string(),
                               dst});
    return;  // forged LLDP never reaches topology
  }

  // Match against the last emission for the advertised port.
  const auto em = outstanding_.find(src);
  if (em != outstanding_.end()) {
    obs.emitted_at = em->second.sent_at;
    if (em->second.matched) {
      ++duplicate_;
    } else {
      em->second.matched = true;
      ++matched_;
      if (obs::Observability* obs = ctrl_.observability();
          obs != nullptr && em->second.span != 0) {
        obs->trace().annotate(em->second.span, "outcome", "matched");
        obs->trace().annotate(em->second.span, "dst", dst.to_string());
        obs->trace().end_span(em->second.span, now);
      }
    }
  } else {
    obs.emitted_at = now;  // unsolicited (e.g. fully forged chassis/port)
    ++unsolicited_;
  }

  if (ctrl_.config().lldp_timestamps) {
    obs.timestamp_present = lldp->has_timestamp();
    obs.link_latency =
        estimate_link_latency(*lldp, src.dpid, dst.dpid, now);
  }

  const topo::Link link{src, dst};
  const auto existing = links_.find(link);
  obs.is_new_link = existing == links_.end();

  if (ctrl_.notify_lldp_observation(obs) == Verdict::Block) return;

  if (obs.is_new_link) {
    links_.emplace(link, LinkState{link, now, now});
    ctrl_.topology().add_link(src, dst);
    ctrl_.trace_event(trace::EventKind::LinkAdded, link.to_string(), dst);
  } else {
    existing->second.last_verified = now;
  }
}

void LinkDiscoveryService::handle_port_down(of::Location loc) {
  auto it = links_.begin();
  while (it != links_.end()) {
    if (it->first.a == loc || it->first.b == loc) {
      const topo::Link link = it->first;
      it = links_.erase(it);
      ctrl_.topology().remove_link(link.a, link.b);
      ctrl_.trace_event(trace::EventKind::LinkRemoved,
                        link.to_string() + " (port down)", loc);
      ctrl_.notify_link_removed(link);
    } else {
      ++it;
    }
  }
}

void LinkDiscoveryService::sweep() {
  const sim::SimTime now = ctrl_.loop().now();
  const sim::Duration timeout = ctrl_.config().profile.link_timeout;
  auto it = links_.begin();
  while (it != links_.end()) {
    if (now - it->second.last_verified >= timeout) {
      const topo::Link link = it->first;
      it = links_.erase(it);
      ctrl_.topology().remove_link(link.a, link.b);
      ctrl_.trace_event(trace::EventKind::LinkRemoved,
                        link.to_string() + " (timeout)", link.a);
      ctrl_.notify_link_removed(link);
    } else {
      ++it;
    }
  }
  ctrl_.loop().post_after(ctrl_.config().link_sweep_interval,
                              [this] { sweep(); });
}

LinkDiscoveryService::LldpAccounting LinkDiscoveryService::lldp_accounting()
    const {
  LldpAccounting acc;
  acc.emitted = emissions_;
  acc.matched = matched_;
  acc.expired = expired_;
  acc.duplicate = duplicate_;
  acc.unsolicited = unsolicited_;
  acc.reflected = reflected_;
  acc.invalid_signature = invalid_signature_;
  for (const auto& [_, em] : outstanding_) {
    if (!em.matched) ++acc.outstanding_unmatched;
  }
  return acc;
}

std::vector<LinkDiscoveryService::LinkState>
LinkDiscoveryService::link_states() const {
  std::vector<LinkState> out;
  out.reserve(links_.size());
  for (const auto& [_, state] : links_) out.push_back(state);
  return out;
}

}  // namespace tmg::ctrl
