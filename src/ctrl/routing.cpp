#include "ctrl/routing.hpp"

#include <algorithm>

#include "ctrl/controller.hpp"
#include "ctrl/host_tracker.hpp"

namespace tmg::ctrl {

namespace {
constexpr std::size_t kDedupCapacity = 65536;
}

RoutingService::RoutingService(Controller& ctrl)
    : ctrl_{ctrl},
      path_cache_{ctrl.topology()},
      flooded_{kDedupCapacity},
      routed_{kDedupCapacity} {}

std::string RoutingService::name() const { return kRoutingServiceName; }

std::uint32_t RoutingService::subscriptions() const {
  return mask_of(MessageType::PacketIn);
}

Disposition RoutingService::on_message(const PipelineMessage& msg,
                                       DispatchContext&) {
  handle_packet_in(*msg.packet_in);
  return Disposition::Continue;
}

const HostTrackingService& RoutingService::host_tracking() {
  if (hosts_ == nullptr) {
    hosts_ = &ctrl_.services().require<HostTrackingService>(
        kHostTrackingServiceName);
  }
  return *hosts_;
}

void RoutingService::handle_packet_in(const of::PacketIn& pi) {
  const net::Packet& pkt = pi.packet;

  // Bridge-filtered group addresses (EAPOL, STP, ...) are link-local:
  // consumed at the controller, never forwarded.
  if (pkt.dst_mac.is_link_local_group()) return;

  if (pkt.dst_mac.is_broadcast() || pkt.dst_mac.is_multicast()) {
    flood(pi);
    return;
  }

  const auto dst = host_tracking().find(pkt.dst_mac);
  if (!dst) {
    flood(pi);
    return;
  }

  if (routed_.contains(pkt.trace_id)) {
    // The packet outran its Flow-Mods (control-channel race): forward it
    // statelessly along the already-computed direction.
    const auto path = path_cache_.path(pi.dpid, dst->loc.dpid);
    if (path && !path->empty()) {
      ctrl_.send_packet_out(pi.dpid, path->front().from.port, pkt);
    } else if (pi.dpid == dst->loc.dpid) {
      ctrl_.send_packet_out(pi.dpid, dst->loc.port, pkt);
    }
    return;
  }

  if (!route(pi, dst->loc)) flood(pi);
}

bool RoutingService::route(const of::PacketIn& pi, const of::Location& dst) {
  const net::Packet& pkt = pi.packet;
  of::FlowMatch match;
  match.dst_mac = pkt.dst_mac;

  const auto make_mod = [&](of::FlowAction action) {
    of::FlowMod fm;
    fm.command = of::FlowMod::Command::Add;
    fm.cookie = next_cookie_++;
    fm.match = match;
    fm.action = action;
    fm.idle_timeout = ctrl_.config().flow_idle_timeout;
    return fm;
  };

  if (pi.dpid == dst.dpid) {
    ctrl_.send_flow_mod(pi.dpid, make_mod(of::FlowAction::output(dst.port)));
    ctrl_.send_packet_out(pi.dpid, dst.port, pkt);
    routed_.push(pkt.trace_id);
    ++paths_;
    return true;
  }

  const auto path = path_cache_.path(pi.dpid, dst.dpid);
  if (!path || path->empty()) return false;

  // Install from the destination backwards (Floodlight's order, to
  // minimize in-flight misses), then release the packet at the ingress.
  ctrl_.send_flow_mod(dst.dpid, make_mod(of::FlowAction::output(dst.port)));
  for (auto it = path->rbegin(); it != path->rend(); ++it) {
    ctrl_.send_flow_mod(it->from.dpid,
                        make_mod(of::FlowAction::output(it->from.port)));
  }
  ctrl_.send_packet_out(pi.dpid, path->front().from.port, pkt);
  routed_.push(pkt.trace_id);
  ++paths_;
  return true;
}

void RoutingService::flood(const of::PacketIn& pi) {
  const std::uint64_t id = pi.packet.trace_id;
  std::size_t slot = flooded_.find(id);
  if (slot == DedupRing::npos) {
    slot = flooded_.push(id);
    if (slot >= flood_seen_.size()) flood_seen_.resize(slot + 1);
    flood_seen_[slot].clear();  // reuse the evicted id's storage
    ++floods_;
  }
  // Storm suppression: each switch forwards a given packet once. The
  // flood then propagates hop-by-hop over real links, paying real
  // dataplane latency (copies arriving at already-flooded switches die
  // here).
  std::vector<of::Dpid>& seen = flood_seen_[slot];
  if (std::find(seen.begin(), seen.end(), pi.dpid) != seen.end()) return;
  seen.push_back(pi.dpid);
  ctrl_.send_packet_out(pi.dpid, of::kPortFlood, pi.packet, pi.in_port);
}

void RoutingService::on_host_moved(const HostEvent& ev) {
  // Purge stale delivery rules so traffic for this MAC re-routes through
  // the new binding on the next packet.
  of::FlowMatch match;
  match.dst_mac = ev.mac;
  for (const of::Dpid dpid : ctrl_.switch_dpids()) {
    of::FlowMod fm;
    fm.command = of::FlowMod::Command::DeleteMatching;
    fm.match = match;
    ctrl_.send_flow_mod(dpid, fm);
  }
}

}  // namespace tmg::ctrl
