// SDN controller core.
//
// The controller is a thin host for two pieces of machinery (DESIGN.md
// §9): the MessagePipeline — an ordered, observable chain of
// MessageListeners through which every switch-originated message and
// every controller-derived event flows — and the ServiceRegistry, where
// the Floodlight-style services the paper's attacks target (link
// discovery, host tracking, reactive routing) and the installed defense
// modules publish themselves for cross-module lookup. The controller
// also tracks per-switch control-link RTT (average of the latest three
// echo exchanges), which TOPOGUARD+'s LLI subtracts from LLDP
// propagation time (paper Sec. VI-D).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "crypto/hmac.hpp"
#include "crypto/xtea.hpp"
#include "ctrl/alert_bus.hpp"
#include "ctrl/defense_module.hpp"
#include "ctrl/message_pipeline.hpp"
#include "ctrl/profiles.hpp"
#include "ctrl/service_registry.hpp"
#include "of/control_channel.hpp"
#include "of/messages.hpp"
#include "sim/event_loop.hpp"
#include "sim/rng.hpp"
#include "topo/graph.hpp"
#include "trace/tracer.hpp"

namespace tmg::ctrl {

class LinkDiscoveryService;
class HostTrackingService;
class RoutingService;

// Pipeline priorities live in the profile's PipelineLayout (DESIGN.md
// §13 has the full table): lower runs first, and defense module N
// installs at layout.defense_base + N * layout.defense_step,
// preserving installation order. The constructor assembles the chain
// from config.profile instead of hard-coded slots.

struct ControllerConfig {
  ControllerProfile profile = floodlight_profile();
  /// TopoGuard: HMAC-sign LLDP packets and reject invalid signatures.
  bool authenticate_lldp = false;
  /// TOPOGUARD+: embed an encrypted departure timestamp in LLDP.
  bool lldp_timestamps = false;
  /// Idle timeout given to installed flow rules.
  sim::Duration flow_idle_timeout = sim::Duration::seconds(5);
  /// How long a controller-originated reachability probe waits.
  sim::Duration host_probe_timeout = sim::Duration::millis(200);
  /// Period of control-link echo RTT probes (LLI calibration).
  sim::Duration echo_interval = sim::Duration::seconds(2);
  /// Period of the link-timeout sweep.
  sim::Duration link_sweep_interval = sim::Duration::seconds(1);
  /// Seed label for the controller's keys.
  std::string key_seed = "topomirage-controller-key";
};

class Controller {
 public:
  /// Validates `config` (every timeout/interval must be positive; see
  /// ControllerConfig) — a non-positive knob is a TMG_ASSERT failure.
  Controller(sim::EventLoop& loop, sim::Rng rng, ControllerConfig config);
  ~Controller();
  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  /// Register a switch reachable over `channel`. `ports` lists the
  /// switch's dataplane ports (LLDP is emitted to each).
  void connect_switch(of::Dpid dpid, of::ControlChannel& channel,
                      std::vector<of::PortNo> ports);

  /// Begin periodic work: LLDP rounds, echo probes, link sweeps.
  void start();

  /// Install a defense module: wraps it in a pipeline listener at the
  /// next defense priority slot (so modules run in installation order,
  /// between the controller core and the verdict gate).
  DefenseModule& add_defense(std::unique_ptr<DefenseModule> module);

  // --- State accessors ---
  [[nodiscard]] AlertBus& alerts() { return alerts_; }
  [[nodiscard]] const AlertBus& alerts() const { return alerts_; }
  [[nodiscard]] topo::TopologyGraph& topology() { return topology_; }
  [[nodiscard]] const topo::TopologyGraph& topology() const {
    return topology_;
  }
  [[nodiscard]] LinkDiscoveryService& link_discovery() { return *links_; }
  [[nodiscard]] HostTrackingService& host_tracker() { return *hosts_; }
  [[nodiscard]] RoutingService& routing() { return *routing_; }
  [[nodiscard]] const std::vector<std::unique_ptr<DefenseModule>>&
  defense_modules() const {
    return modules_;
  }

  /// Attach the trace-profile anomaly detector (borrowed; nullptr
  /// detaches, the default). The "anomaly-ids" chain slot
  /// (layout.anomaly_ids) is always registered; without a detector it
  /// forwards nothing, so an undetected run is bit-identical to the
  /// pre-IDS controller. Unlike add_defense the detector sits *after*
  /// the defense band — it scores the same pre-commit stream but never
  /// shadows a hand-written defense's verdict.
  void set_anomaly_detector(DefenseModule* detector) { anomaly_ = detector; }
  [[nodiscard]] DefenseModule* anomaly_detector() const { return anomaly_; }
  [[nodiscard]] sim::EventLoop& loop() { return loop_; }
  [[nodiscard]] sim::Rng& rng() { return rng_; }
  [[nodiscard]] const ControllerConfig& config() const { return config_; }
  [[nodiscard]] std::vector<of::Dpid> switch_dpids() const;
  [[nodiscard]] const std::vector<of::PortNo>& switch_ports(
      of::Dpid dpid) const;

  // --- Pipeline & registry ---
  [[nodiscard]] MessagePipeline& pipeline() { return pipeline_; }
  [[nodiscard]] const MessagePipeline& pipeline() const { return pipeline_; }
  [[nodiscard]] ServiceRegistry& services() { return services_; }
  [[nodiscard]] const ServiceRegistry& services() const { return services_; }
  /// Per-listener dispatch/stop/wall-time counters, in chain order
  /// (surfaced by the --pipeline-stats flag in examples and benches).
  [[nodiscard]] std::vector<MessagePipeline::ListenerStats> pipeline_stats()
      const {
    return pipeline_.stats();
  }

  /// Average of the latest three control-link RTTs; nullopt until the
  /// first echo completes.
  [[nodiscard]] std::optional<sim::Duration> control_rtt(of::Dpid dpid) const;

  // --- Controller identity (used for reachability probes) ---
  [[nodiscard]] net::MacAddress mac() const;
  [[nodiscard]] net::Ipv4Address ip() const;
  [[nodiscard]] const crypto::Key& lldp_key() const { return lldp_key_; }
  [[nodiscard]] const crypto::XteaKey& ts_key() const { return ts_key_; }

  // --- Transport (services and defenses send through these) ---
  void send_packet_out(of::Dpid dpid, of::PortNo out_port, net::Packet pkt,
                       of::PortNo in_port = of::kPortNone);
  void send_flow_mod(of::Dpid dpid, of::FlowMod fm);
  void request_flow_stats(of::Dpid dpid);
  void request_port_stats(of::Dpid dpid);

  /// Send an ICMP echo out (dpid, port) and report whether a reply came
  /// back within config().host_probe_timeout. Probe replies are consumed
  /// by the controller-core listener before defenses or services see
  /// them (they are controller-internal traffic).
  void probe_reachability(of::Location loc, net::MacAddress dst_mac,
                          net::Ipv4Address dst_ip,
                          std::function<void(bool reachable)> done);

  /// Same, with an explicit timeout (the host tracker's probe-before-
  /// move policy waits config().profile.migration_probe_timeout).
  void probe_reachability(of::Location loc, net::MacAddress dst_mac,
                          net::Ipv4Address dst_ip,
                          std::function<void(bool reachable)> done,
                          sim::Duration timeout);

  // --- Tracing ---

  /// Attach an event tracer (optional; nullptr detaches). Alerts raised
  /// after attachment are mirrored into it.
  void set_tracer(trace::Tracer* tracer);
  [[nodiscard]] trace::Tracer* tracer() { return tracer_; }

  /// Attach the observability layer (borrowed; nullptr detaches, the
  /// default). Wires the pipeline's dispatch span tree, rebinds an
  /// attached Tracer onto the shared TraceLog, registers the export-time
  /// collector that mirrors pipeline/LLDP/alert totals into the metrics
  /// registry, and starts the control-link echo RTT histogram. With a
  /// null pointer every simulated behavior is bit-identical to an
  /// unobserved controller.
  void set_observability(obs::Observability* obs);
  [[nodiscard]] obs::Observability* observability() const { return obs_; }

  /// Record a trace event if a tracer is attached (used by the services;
  /// cheap no-op otherwise).
  void trace_event(trace::EventKind kind, std::string detail,
                   std::optional<of::Location> loc = std::nullopt);

  // --- Derived-event publication (services dispatch through the
  // pipeline; the returned verdict is the accumulated defense verdict)
  Verdict notify_host_event(const HostEvent& ev);
  Verdict notify_lldp_observation(const LldpObservation& obs);
  void notify_link_removed(const topo::Link& link);

 private:
  struct SwitchConn {
    of::ControlChannel* channel = nullptr;
    std::vector<of::PortNo> ports;
    std::deque<sim::Duration> recent_rtts;  // latest 3
    std::map<std::uint64_t, sim::SimTime> pending_echo;  // token -> sent
  };
  struct PendingProbe {
    std::function<void(bool)> done;
    sim::TimerHandle timeout;
    obs::SpanId span = 0;  // open "ctrl/probe.reachability" span
  };
  class CoreListener;
  class VerdictGate;

  void dispatch(of::Dpid dpid, const of::SwitchToCtrl& msg);
  void subscribe_alert_mirror();
  void finish_probe_span(obs::SpanId span, bool reachable);
  void handle_echo_reply(of::Dpid dpid, const of::EchoReply& er);
  void echo_tick();
  /// True if the packet-in was a reply to a controller probe (consumed).
  bool consume_probe_reply(const of::PacketIn& pi);

  sim::EventLoop& loop_;
  sim::Rng rng_;
  ControllerConfig config_;
  AlertBus alerts_;
  topo::TopologyGraph topology_;
  MessagePipeline pipeline_;
  ServiceRegistry services_;
  std::map<of::Dpid, SwitchConn> switches_;
  std::vector<std::unique_ptr<DefenseModule>> modules_;
  std::unique_ptr<LinkDiscoveryService> links_;
  std::unique_ptr<HostTrackingService> hosts_;
  std::unique_ptr<RoutingService> routing_;
  crypto::Key lldp_key_;
  crypto::XteaKey ts_key_;
  std::uint64_t next_echo_token_ = 1;
  std::uint16_t next_probe_ident_ = 1;
  // Stats-request xids are per-controller (a function-local static here
  // would leak state across trials and break parallel-trial determinism).
  std::uint32_t next_flow_stats_xid_ = 1;
  std::uint32_t next_port_stats_xid_ = 1;
  std::map<std::uint16_t, PendingProbe> pending_probes_;
  DefenseModule* anomaly_ = nullptr;
  trace::Tracer* tracer_ = nullptr;
  obs::Observability* obs_ = nullptr;
  stats::Histogram* obs_echo_rtt_ = nullptr;  // "ctrl.echo_rtt_ms"
  bool alert_mirror_subscribed_ = false;
  bool started_ = false;
};

}  // namespace tmg::ctrl
