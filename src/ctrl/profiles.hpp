// Per-controller pipeline profiles (paper Table III + Sec. VII).
//
// A ControllerProfile is the complete data description of how one
// controller family processes topology-relevant messages: the listener
// slots and priority bands its MessagePipeline is assembled from, the
// dispatch discipline (ordered-with-stop vs broadcast-observe), the
// discovery/timeout timers from Table III, the host-migration policy
// (immediate rebind vs ONOS's probe-before-move), and discovery
// strategy knobs (event-triggered port probing, sOFTDP-style). The
// Controller constructor reads the profile instead of hard-coding any
// of this, so swapping profiles swaps the whole processing model while
// keeping the default Floodlight chain byte-identical.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ctrl/message_pipeline.hpp"
#include "sim/time.hpp"

namespace tmg::ctrl {

/// Pipeline slot table (DESIGN.md §13). Lower runs first; defense
/// module N installs at defense_base + N * defense_step, preserving
/// installation order. A negative slot compiles the listener out of the
/// chain entirely (OpenDaylight has no verdict gate: defenses observe
/// and alert but never suppress a service commit).
struct PipelineLayout {
  int core = 0;
  int defense_base = 100;
  int defense_step = 10;
  /// Trace-profile anomaly IDS: after the defense band (it scores the
  /// same pre-commit event stream the defenses see) and before the
  /// verdict gate (so a veto-enabled detector can still block).
  int anomaly_ids = 800;
  int verdict_gate = 900;
  int link_discovery = 1000;
  int host_tracking = 1100;
  int routing = 1200;
};

/// How the chain treats listener verdicts (DESIGN.md §13).
enum class DispatchDiscipline {
  /// Floodlight IOFMessageListener model: the chain runs in priority
  /// order and a Stop (or a Block verdict at the gate) ends dispatch.
  OrderedStop,
  /// OpenDaylight MD-SAL notification model: every subscriber observes
  /// every message; defense verdicts are advisory (alert-only) and the
  /// derived-event dispatch result is always Allow.
  BroadcastObserve,
};

/// What the host tracker does when a known MAC shows up at a new
/// attachment point (paper Sec. III-A.2 / Sec. VII).
enum class MigrationPolicy {
  /// Floodlight/POX DeviceManager: rebind on first sighting.
  Immediate,
  /// ONOS HostLocationProvider with host move tracking: probe the old
  /// attachment point first; only an unanswered probe commits the move.
  ProbeBeforeMove,
};

struct ControllerProfile {
  std::string name;

  // --- Discovery timers (paper Table III) ---
  /// Period between LLDP emission rounds.
  sim::Duration lldp_interval;
  /// A link is dropped from the topology if not re-verified within this.
  sim::Duration link_timeout;

  // --- Pipeline shape ---
  PipelineLayout layout;
  DispatchDiscipline discipline = DispatchDiscipline::OrderedStop;
  /// Subscription mask handed to every installed defense adapter.
  /// Everything except EchoReply/FlowRemoved, which the core consumes.
  std::uint32_t defense_subscriptions =
      MessageType::PacketIn | MessageType::PortStatus |
      MessageType::FlowStats | MessageType::PortStats |
      MessageType::LldpObservation | MessageType::HostEvent |
      MessageType::LinkRemoved | MessageType::FlowModOut;

  // --- Host-migration policy ---
  MigrationPolicy migration = MigrationPolicy::Immediate;
  /// How long a probe-before-move reachability probe waits before the
  /// old attachment point is declared vacated (ProbeBeforeMove only).
  sim::Duration migration_probe_timeout = sim::Duration::millis(300);

  // --- Discovery strategy ---
  /// Re-probe a port with LLDP as soon as it reports Up, instead of
  /// waiting for the next periodic round (ONOS; sOFTDP-style
  /// event-triggered discovery).
  bool probe_on_port_up = false;
};

/// Floodlight: 15s discovery, 35s timeout, ordered chain with verdict
/// gate, immediate host rebind. This is the repo default; every golden
/// output is pinned against it.
ControllerProfile floodlight_profile();
/// POX: 5s discovery, 10s timeout; same dispatch shape as Floodlight.
ControllerProfile pox_profile();
/// OpenDaylight: 5s discovery, 15s timeout; broadcast-observe dispatch
/// with no verdict gate (defenses alert but never block).
ControllerProfile opendaylight_profile();
/// ONOS: 3s discovery, 10s timeout, probe-before-move host migration,
/// event-triggered port probing.
ControllerProfile onos_profile();

/// All profile rows, Table III order first, then ONOS.
std::vector<ControllerProfile> all_profiles();

/// CLI keys accepted by profile_by_name, in all_profiles() order.
std::vector<std::string> profile_cli_names();

/// Resolve a CLI key ("floodlight", "pox", "opendaylight", "onos") to
/// its profile; nullopt for an unknown key. Matching is exact.
std::optional<ControllerProfile> profile_by_name(const std::string& name);

}  // namespace tmg::ctrl
