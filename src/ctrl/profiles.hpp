// Per-controller discovery timing profiles (paper Table III).
#pragma once

#include <string>
#include <vector>

#include "sim/time.hpp"

namespace tmg::ctrl {

struct ControllerProfile {
  std::string name;
  /// Period between LLDP emission rounds.
  sim::Duration lldp_interval;
  /// A link is dropped from the topology if not re-verified within this.
  sim::Duration link_timeout;
};

/// Floodlight: 15s discovery, 35s timeout.
ControllerProfile floodlight_profile();
/// POX: 5s discovery, 10s timeout.
ControllerProfile pox_profile();
/// OpenDaylight: 5s discovery, 15s timeout.
ControllerProfile opendaylight_profile();

/// All Table III rows, in the paper's order.
std::vector<ControllerProfile> all_profiles();

}  // namespace tmg::ctrl
