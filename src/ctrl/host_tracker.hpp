// Host Tracking Service (Floodlight DeviceManager analogue).
//
// Learns MAC/IP -> (switch, port) bindings from Packet-In source fields,
// exactly the mechanism Host Location Hijacking corrupts (paper Sec.
// III-A.2): whoever originates traffic with the victim's identifiers
// first, from anywhere, owns the binding.
//
// Bindings live in a sharded open-addressed HostTable (host_table.hpp)
// sized for fleet-scale populations: a steady-state learn allocates
// nothing, and enumeration is only exposed as a MAC-sorted snapshot.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "ctrl/host_table.hpp"
#include "ctrl/message_pipeline.hpp"
#include "net/ipv4_address.hpp"
#include "net/mac_address.hpp"
#include "of/messages.hpp"
#include "sim/time.hpp"

namespace tmg::ctrl {

class Controller;
class RoutingService;

class HostTrackingService final : public MessageListener {
 public:
  explicit HostTrackingService(Controller& ctrl);

  // --- MessageListener (registered at profile layout.host_tracking) ---
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint32_t subscriptions() const override;
  Disposition on_message(const PipelineMessage& msg,
                         DispatchContext& ctx) override;

  /// Learn from a (non-LLDP) Packet-In. Ignores multicast sources and
  /// packets arriving on known switch-internal ports.
  void handle_packet_in(const of::PacketIn& pi);

  [[nodiscard]] std::optional<HostRecord> find(net::MacAddress mac) const;
  [[nodiscard]] std::optional<HostRecord> find_by_ip(
      net::Ipv4Address ip) const;

  /// Deterministic snapshot of every binding, sorted by MAC. This is
  /// the only way to enumerate the table: the backing store's physical
  /// order is hash order and must never leak into logs or output.
  [[nodiscard]] std::vector<HostRecord> hosts_sorted() const {
    return hosts_.sorted();
  }
  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }

  /// Structural audit of the sharded table (for the invariant checker).
  [[nodiscard]] std::vector<std::string> audit_table() const {
    return hosts_.audit();
  }

  /// Number of accepted migrations since start (for experiment logs).
  [[nodiscard]] std::uint64_t migrations() const { return migrations_; }
  /// Number of host events suppressed by a defense verdict.
  [[nodiscard]] std::uint64_t blocked_events() const { return blocked_; }
  /// Number of moves rejected because the old attachment point answered
  /// a probe-before-move reachability check (ONOS migration policy).
  [[nodiscard]] std::uint64_t moves_rejected() const {
    return moves_rejected_;
  }
  /// Moves currently awaiting a probe-before-move verdict.
  [[nodiscard]] std::size_t pending_moves() const {
    return pending_moves_.size();
  }

 private:
  /// A sighting at a new location held back while the old attachment
  /// point is probed (MigrationPolicy::ProbeBeforeMove). Further
  /// sightings of the same MAC are ignored until the probe resolves.
  struct PendingMove {
    of::Location old_loc;
    of::Location new_loc;
    net::Ipv4Address ip;
  };

  static net::Ipv4Address source_ip_of(const net::Packet& pkt);
  /// Peer service, resolved through the registry on first use (the
  /// registry is populated after the services are constructed).
  [[nodiscard]] RoutingService& routing_service();
  /// Probe resolution: a reachable old location rejects the move; an
  /// unanswered probe dispatches the Moved event and commits.
  void finish_move(net::MacAddress mac, bool old_loc_reachable);
  /// Dispatch the Moved event through the pipeline and rebind `rec`.
  void commit_move(HostRecord& rec, of::Location new_loc,
                   net::Ipv4Address ip);

  Controller& ctrl_;
  RoutingService* routing_ = nullptr;  // lazily cached registry lookup
  HostTable hosts_;
  // std::map for deterministic iteration/erasure order across trials.
  std::map<net::MacAddress, PendingMove> pending_moves_;
  std::uint64_t migrations_ = 0;
  std::uint64_t blocked_ = 0;
  std::uint64_t moves_rejected_ = 0;
};

}  // namespace tmg::ctrl
