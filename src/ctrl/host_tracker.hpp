// Host Tracking Service (Floodlight DeviceManager analogue).
//
// Learns MAC/IP -> (switch, port) bindings from Packet-In source fields,
// exactly the mechanism Host Location Hijacking corrupts (paper Sec.
// III-A.2): whoever originates traffic with the victim's identifiers
// first, from anywhere, owns the binding.
#pragma once

#include <optional>
#include <unordered_map>

#include "ctrl/message_pipeline.hpp"
#include "net/ipv4_address.hpp"
#include "net/mac_address.hpp"
#include "of/messages.hpp"
#include "sim/time.hpp"

namespace tmg::ctrl {

class Controller;
class RoutingService;

struct HostRecord {
  net::MacAddress mac;
  net::Ipv4Address ip;
  of::Location loc;
  sim::SimTime first_seen;
  sim::SimTime last_seen;
};

class HostTrackingService final : public MessageListener {
 public:
  explicit HostTrackingService(Controller& ctrl);

  // --- MessageListener (registered at kPriorityHostTracking) ---
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint32_t subscriptions() const override;
  Disposition on_message(const PipelineMessage& msg,
                         DispatchContext& ctx) override;

  /// Learn from a (non-LLDP) Packet-In. Ignores multicast sources and
  /// packets arriving on known switch-internal ports.
  void handle_packet_in(const of::PacketIn& pi);

  [[nodiscard]] std::optional<HostRecord> find(net::MacAddress mac) const;
  [[nodiscard]] std::optional<HostRecord> find_by_ip(
      net::Ipv4Address ip) const;
  [[nodiscard]] const std::unordered_map<net::MacAddress, HostRecord>& hosts()
      const {
    return hosts_;
  }

  /// Number of accepted migrations since start (for experiment logs).
  [[nodiscard]] std::uint64_t migrations() const { return migrations_; }
  /// Number of host events suppressed by a defense verdict.
  [[nodiscard]] std::uint64_t blocked_events() const { return blocked_; }

 private:
  static net::Ipv4Address source_ip_of(const net::Packet& pkt);
  /// Peer service, resolved through the registry on first use (the
  /// registry is populated after the services are constructed).
  [[nodiscard]] RoutingService& routing_service();

  Controller& ctrl_;
  RoutingService* routing_ = nullptr;  // lazily cached registry lookup
  std::unordered_map<net::MacAddress, HostRecord> hosts_;
  std::uint64_t migrations_ = 0;
  std::uint64_t blocked_ = 0;
};

}  // namespace tmg::ctrl
