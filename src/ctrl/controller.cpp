#include "ctrl/controller.hpp"

#include <cassert>
#include <stdexcept>

#include "ctrl/host_tracker.hpp"
#include "ctrl/link_discovery.hpp"
#include "ctrl/routing.hpp"

namespace tmg::ctrl {

namespace {
std::vector<std::uint8_t> to_bytes(const std::string& s) {
  return {s.begin(), s.end()};
}
}  // namespace

Controller::Controller(sim::EventLoop& loop, sim::Rng rng,
                       ControllerConfig config)
    : loop_{loop},
      rng_{std::move(rng)},
      config_{std::move(config)},
      lldp_key_{crypto::Key::derive(to_bytes(config_.key_seed + "/lldp"))},
      ts_key_{crypto::XteaKey::derive(to_bytes(config_.key_seed + "/ts"))} {
  links_ = std::make_unique<LinkDiscoveryService>(*this);
  hosts_ = std::make_unique<HostTrackingService>(*this);
  routing_ = std::make_unique<RoutingService>(*this);
}

Controller::~Controller() = default;

void Controller::connect_switch(of::Dpid dpid, of::ControlChannel& channel,
                                std::vector<of::PortNo> ports) {
  auto [it, inserted] = switches_.try_emplace(dpid);
  if (!inserted) throw std::logic_error("switch already connected");
  it->second.channel = &channel;
  it->second.ports = std::move(ports);
  channel.attach_controller(
      [this, dpid](const of::SwitchToCtrl& msg) { dispatch(dpid, msg); });
}

void Controller::start() {
  if (started_) return;
  started_ = true;
  links_->start();
  echo_tick();
}

DefenseModule& Controller::add_defense(std::unique_ptr<DefenseModule> module) {
  assert(module);
  modules_.push_back(std::move(module));
  return *modules_.back();
}

std::vector<of::Dpid> Controller::switch_dpids() const {
  std::vector<of::Dpid> out;
  out.reserve(switches_.size());
  for (const auto& [dpid, _] : switches_) out.push_back(dpid);
  return out;
}

const std::vector<of::PortNo>& Controller::switch_ports(of::Dpid dpid) const {
  return switches_.at(dpid).ports;
}

std::optional<sim::Duration> Controller::control_rtt(of::Dpid dpid) const {
  const auto it = switches_.find(dpid);
  if (it == switches_.end() || it->second.recent_rtts.empty()) {
    return std::nullopt;
  }
  sim::Duration sum = sim::Duration::zero();
  for (const auto d : it->second.recent_rtts) sum += d;
  return sum / static_cast<std::int64_t>(it->second.recent_rtts.size());
}

net::MacAddress Controller::mac() const {
  return net::MacAddress{{0x02, 0xc0, 0xff, 0xee, 0x00, 0x01}};
}

net::Ipv4Address Controller::ip() const {
  return net::Ipv4Address{10, 255, 255, 254};
}

void Controller::send_packet_out(of::Dpid dpid, of::PortNo out_port,
                                 net::Packet pkt, of::PortNo in_port) {
  const auto it = switches_.find(dpid);
  if (it == switches_.end()) return;
  it->second.channel->to_switch(
      of::PacketOut{out_port, in_port, std::move(pkt)});
}

void Controller::send_flow_mod(of::Dpid dpid, of::FlowMod fm) {
  const auto it = switches_.find(dpid);
  if (it == switches_.end()) return;
  for (const auto& m : modules_) m->on_flow_mod(dpid, fm);
  if (tracer_) {
    trace_event(trace::EventKind::FlowMod,
                (fm.command == of::FlowMod::Command::Add ? "add " : "del ") +
                    fm.match.to_string(),
                of::Location{dpid, fm.action.out_port});
  }
  it->second.channel->to_switch(std::move(fm));
}

void Controller::set_tracer(trace::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_) {
    alerts_.subscribe([this](const Alert& alert) {
      if (!tracer_) return;
      trace_event(trace::EventKind::Alert,
                  alert.module + ": " + alert.message, alert.location);
    });
  }
}

void Controller::trace_event(trace::EventKind kind, std::string detail,
                             std::optional<of::Location> loc) {
  if (tracer_) tracer_->record(loop_.now(), kind, std::move(detail), loc);
}

void Controller::request_flow_stats(of::Dpid dpid) {
  const auto it = switches_.find(dpid);
  if (it == switches_.end()) return;
  it->second.channel->to_switch(of::FlowStatsRequest{next_flow_stats_xid_++});
}

void Controller::request_port_stats(of::Dpid dpid) {
  const auto it = switches_.find(dpid);
  if (it == switches_.end()) return;
  it->second.channel->to_switch(of::PortStatsRequest{next_port_stats_xid_++});
}

void Controller::probe_reachability(of::Location loc, net::MacAddress dst_mac,
                                    net::Ipv4Address dst_ip,
                                    std::function<void(bool)> done) {
  const std::uint16_t ident = next_probe_ident_++;
  net::Packet probe =
      net::make_icmp_echo(mac(), ip(), dst_mac, dst_ip, ident, 1);
  PendingProbe pending;
  pending.done = std::move(done);
  pending.timeout =
      loop_.schedule_after(config_.host_probe_timeout, [this, ident] {
        auto it = pending_probes_.find(ident);
        if (it == pending_probes_.end()) return;
        auto cb = std::move(it->second.done);
        pending_probes_.erase(it);
        cb(false);
      });
  pending_probes_.emplace(ident, std::move(pending));
  send_packet_out(loc.dpid, loc.port, std::move(probe));
}

bool Controller::consume_probe_reply(const of::PacketIn& pi) {
  const auto* icmp = pi.packet.icmp();
  if (!icmp || icmp->type != net::IcmpPayload::Type::EchoReply) return false;
  if (pi.packet.dst_mac != mac()) return false;
  auto it = pending_probes_.find(icmp->ident);
  if (it == pending_probes_.end()) return true;  // stale reply: still ours
  auto cb = std::move(it->second.done);
  it->second.timeout.cancel();
  pending_probes_.erase(it);
  cb(true);
  return true;
}

Verdict Controller::notify_host_event(const HostEvent& ev) {
  Verdict verdict = Verdict::Allow;
  for (const auto& m : modules_) {
    if (m->on_host_event(ev) == Verdict::Block) verdict = Verdict::Block;
  }
  return verdict;
}

Verdict Controller::notify_lldp_observation(const LldpObservation& obs) {
  Verdict verdict = Verdict::Allow;
  for (const auto& m : modules_) {
    if (m->on_lldp_observation(obs) == Verdict::Block) {
      verdict = Verdict::Block;
    }
  }
  return verdict;
}

void Controller::notify_link_removed(const topo::Link& link) {
  for (const auto& m : modules_) m->on_link_removed(link);
}

void Controller::notify_port_status(const of::PortStatus& ps) {
  for (const auto& m : modules_) m->on_port_status(ps);
}

void Controller::dispatch(of::Dpid dpid, const of::SwitchToCtrl& msg) {
  struct Visitor {
    Controller& c;
    of::Dpid dpid;
    void operator()(const of::PacketIn& pi) {
      if (c.tracer_) {
        c.trace_event(trace::EventKind::PacketIn, pi.packet.describe(),
                      of::Location{pi.dpid, pi.in_port});
      }
      c.handle_packet_in(pi);
    }
    void operator()(const of::PortStatus& ps) {
      c.trace_event(ps.reason == of::PortStatus::Reason::Down
                        ? trace::EventKind::PortDown
                        : trace::EventKind::PortUp,
                    "", of::Location{ps.dpid, ps.port});
      c.notify_port_status(ps);
      if (ps.reason == of::PortStatus::Reason::Down) {
        c.links_->handle_port_down(of::Location{ps.dpid, ps.port});
      }
    }
    void operator()(const of::EchoReply& er) { c.handle_echo_reply(dpid, er); }
    void operator()(const of::FlowRemoved&) {
      // Flow expiry needs no controller action in this model.
    }
    void operator()(const of::FlowStatsReply& fsr) {
      for (const auto& m : c.modules_) m->on_flow_stats(fsr);
    }
    void operator()(const of::PortStatsReply& psr) {
      for (const auto& m : c.modules_) m->on_port_stats(psr);
    }
  };
  std::visit(Visitor{*this, dpid}, msg);
}

void Controller::handle_packet_in(const of::PacketIn& pi) {
  // Controller-internal probe replies never reach services or defenses.
  if (consume_probe_reply(pi)) return;
  if (pi.in_port == of::kPortController) return;  // bounced LLI probe

  // Answer ARP for the controller's own (virtual) identity, so probed
  // hosts can resolve the source of reachability pings.
  if (const auto* arp = pi.packet.arp();
      arp != nullptr && arp->op == net::ArpPayload::Op::Request &&
      arp->target_ip == ip()) {
    send_packet_out(pi.dpid, pi.in_port,
                    net::make_arp_reply(mac(), ip(), arp->sender_mac,
                                        arp->sender_ip));
    return;
  }

  Verdict verdict = Verdict::Allow;
  for (const auto& m : modules_) {
    if (m->on_packet_in(pi) == Verdict::Block) verdict = Verdict::Block;
  }
  if (verdict == Verdict::Block) return;

  if (pi.packet.is_lldp()) {
    links_->handle_lldp_packet_in(pi);
    return;
  }
  hosts_->handle_packet_in(pi);
  routing_->handle_packet_in(pi);
}

void Controller::handle_echo_reply(of::Dpid dpid, const of::EchoReply& er) {
  auto it = switches_.find(dpid);
  if (it == switches_.end()) return;
  auto& conn = it->second;
  const auto sent = conn.pending_echo.find(er.token);
  if (sent == conn.pending_echo.end()) return;
  const sim::Duration rtt = loop_.now() - sent->second;
  conn.pending_echo.erase(sent);
  conn.recent_rtts.push_back(rtt);
  // Paper Sec. VI-D: average of the latest three measurements.
  while (conn.recent_rtts.size() > 3) conn.recent_rtts.pop_front();
  if (tracer_) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "rtt=%.3fms", rtt.to_millis_f());
    trace_event(trace::EventKind::EchoRtt, buf, of::Location{dpid, 0});
  }
}

void Controller::echo_tick() {
  for (auto& [dpid, conn] : switches_) {
    const std::uint64_t token = next_echo_token_++;
    conn.pending_echo.emplace(token, loop_.now());
    conn.channel->to_switch(of::EchoRequest{token});
  }
  loop_.post_after(config_.echo_interval, [this] { echo_tick(); });
}

}  // namespace tmg::ctrl
