#include "ctrl/controller.hpp"

#include <stdexcept>

#include "check/assert.hpp"
#include "ctrl/host_tracker.hpp"
#include "ctrl/link_discovery.hpp"
#include "ctrl/routing.hpp"
#include "obs/observability.hpp"
#include "stats/flow_stats.hpp"

namespace tmg::ctrl {

namespace {

std::vector<std::uint8_t> to_bytes(const std::string& s) {
  return {s.begin(), s.end()};
}

void validate_config(const ControllerConfig& c) {
  TMG_ASSERT(c.flow_idle_timeout.count_nanos() > 0,
             "ControllerConfig: flow_idle_timeout must be positive");
  TMG_ASSERT(c.host_probe_timeout.count_nanos() > 0,
             "ControllerConfig: host_probe_timeout must be positive");
  TMG_ASSERT(c.echo_interval.count_nanos() > 0,
             "ControllerConfig: echo_interval must be positive");
  TMG_ASSERT(c.link_sweep_interval.count_nanos() > 0,
             "ControllerConfig: link_sweep_interval must be positive");
  TMG_ASSERT(c.profile.lldp_interval.count_nanos() > 0,
             "ControllerConfig: profile.lldp_interval must be positive");
  TMG_ASSERT(c.profile.link_timeout.count_nanos() > 0,
             "ControllerConfig: profile.link_timeout must be positive");
  TMG_ASSERT(c.profile.migration_probe_timeout.count_nanos() > 0,
             "ControllerConfig: profile.migration_probe_timeout must be "
             "positive");
  const PipelineLayout& l = c.profile.layout;
  TMG_ASSERT(l.core >= 0, "PipelineLayout: core slot must exist");
  TMG_ASSERT(l.link_discovery >= 0 && l.host_tracking >= 0 && l.routing >= 0,
             "PipelineLayout: service slots must exist");
  TMG_ASSERT(l.defense_base >= 0 && l.defense_step > 0,
             "PipelineLayout: defense band must be a positive progression");
}

}  // namespace

/// Priority 0: controller-internal consumption. Traces raw messages,
/// answers ARP for the controller's identity, eats probe replies and
/// echo bookkeeping before anything else sees them.
class Controller::CoreListener final : public MessageListener {
 public:
  explicit CoreListener(Controller& c) : c_{c} {}

  [[nodiscard]] std::string name() const override { return "controller-core"; }

  [[nodiscard]] std::uint32_t subscriptions() const override {
    return MessageType::PacketIn | MessageType::PortStatus |
           MessageType::EchoReply | MessageType::FlowRemoved;
  }

  Disposition on_message(const PipelineMessage& msg,
                         DispatchContext&) override {
    switch (msg.type) {
      case MessageType::PacketIn: return on_packet_in(*msg.packet_in);
      case MessageType::PortStatus: {
        const of::PortStatus& ps = *msg.port_status;
        c_.trace_event(ps.reason == of::PortStatus::Reason::Down
                           ? trace::EventKind::PortDown
                           : trace::EventKind::PortUp,
                       "", of::Location{ps.dpid, ps.port});
        return Disposition::Continue;
      }
      case MessageType::EchoReply:
        c_.handle_echo_reply(msg.dpid, *msg.echo_reply);
        return Disposition::Stop;  // controller-internal RTT bookkeeping
      case MessageType::FlowRemoved:
        // Flow expiry needs no controller action in this model.
        return Disposition::Stop;
      default: return Disposition::Continue;
    }
  }

 private:
  Disposition on_packet_in(const of::PacketIn& pi) {
    if (c_.tracer_ != nullptr || c_.obs_ != nullptr) {
      c_.trace_event(trace::EventKind::PacketIn, pi.packet.describe(),
                     of::Location{pi.dpid, pi.in_port});
    }
    // Controller-internal probe replies never reach services or defenses.
    if (c_.consume_probe_reply(pi)) return Disposition::Stop;
    if (pi.in_port == of::kPortController) {
      return Disposition::Stop;  // bounced LLI probe
    }
    // Answer ARP for the controller's own (virtual) identity, so probed
    // hosts can resolve the source of reachability pings.
    if (const auto* arp = pi.packet.arp();
        arp != nullptr && arp->op == net::ArpPayload::Op::Request &&
        arp->target_ip == c_.ip()) {
      c_.send_packet_out(pi.dpid, pi.in_port,
                         net::make_arp_reply(c_.mac(), c_.ip(),
                                             arp->sender_mac, arp->sender_ip));
      return Disposition::Stop;
    }
    return Disposition::Continue;
  }

  Controller& c_;
};

/// Priority 900: between the defense block and the services. Stops a
/// Packet-In whose accumulated verdict is Block — every defense has
/// seen the message by now (paper Sec. IV-B: alerting and blocking are
/// independent), but no service commits state for it.
class Controller::VerdictGate final : public MessageListener {
 public:
  [[nodiscard]] std::string name() const override { return "verdict-gate"; }

  [[nodiscard]] std::uint32_t subscriptions() const override {
    return mask_of(MessageType::PacketIn);
  }

  Disposition on_message(const PipelineMessage&,
                         DispatchContext& ctx) override {
    return ctx.verdict == Verdict::Block ? Disposition::Stop
                                         : Disposition::Continue;
  }
};

namespace {

/// Adapts a DefenseModule's typed hooks onto the listener interface.
/// Always returns Continue: defenses influence the dispatch only
/// through the accumulated context verdict (the gate stops the chain),
/// so sibling defenses never shadow each other. The subscription mask
/// is profile data (ControllerProfile::defense_subscriptions).
class DefenseListenerAdapter final : public MessageListener {
 public:
  DefenseListenerAdapter(DefenseModule& module, std::uint32_t subscriptions)
      : module_{module}, subscriptions_{subscriptions} {}

  [[nodiscard]] std::string name() const override { return module_.name(); }

  [[nodiscard]] std::uint32_t subscriptions() const override {
    return subscriptions_;
  }

  Disposition on_message(const PipelineMessage& msg,
                         DispatchContext& ctx) override {
    switch (msg.type) {
      case MessageType::PacketIn:
        accumulate(module_.on_packet_in(*msg.packet_in), ctx);
        break;
      case MessageType::PortStatus:
        module_.on_port_status(*msg.port_status);
        break;
      case MessageType::FlowStats:
        module_.on_flow_stats(*msg.flow_stats);
        break;
      case MessageType::PortStats:
        module_.on_port_stats(*msg.port_stats);
        break;
      case MessageType::LldpObservation:
        accumulate(module_.on_lldp_observation(*msg.lldp_observation), ctx);
        break;
      case MessageType::HostEvent:
        accumulate(module_.on_host_event(*msg.host_event), ctx);
        break;
      case MessageType::LinkRemoved:
        module_.on_link_removed(*msg.link_removed);
        break;
      case MessageType::FlowModOut:
        module_.on_flow_mod(msg.dpid, *msg.flow_mod);
        break;
      default: break;
    }
    return Disposition::Continue;
  }

 private:
  static void accumulate(Verdict v, DispatchContext& ctx) {
    if (v == Verdict::Block) ctx.verdict = Verdict::Block;
  }

  DefenseModule& module_;
  std::uint32_t subscriptions_;
};

/// Adapts the controller's (optional, borrowed) anomaly detector onto
/// the chain. Registered unconditionally at layout.anomaly_ids so the
/// chain shape is profile data, not detector presence; with no detector
/// attached every dispatch is a subscription-masked no-op. Verdicts
/// accumulate exactly like the defense band's — whether the Block ever
/// bites is the gate's (and the dispatch discipline's) business.
class AnomalyListenerAdapter final : public MessageListener {
 public:
  explicit AnomalyListenerAdapter(const Controller& c) : c_{c} {}

  [[nodiscard]] std::string name() const override { return "anomaly-ids"; }

  [[nodiscard]] std::uint32_t subscriptions() const override {
    return MessageType::PacketIn | MessageType::PortStatus |
           MessageType::LldpObservation | MessageType::HostEvent |
           MessageType::LinkRemoved | MessageType::FlowModOut;
  }

  Disposition on_message(const PipelineMessage& msg,
                         DispatchContext& ctx) override {
    DefenseModule* det = c_.anomaly_detector();
    if (det == nullptr) return Disposition::Continue;
    switch (msg.type) {
      case MessageType::PacketIn:
        accumulate(det->on_packet_in(*msg.packet_in), ctx);
        break;
      case MessageType::PortStatus:
        det->on_port_status(*msg.port_status);
        break;
      case MessageType::LldpObservation:
        accumulate(det->on_lldp_observation(*msg.lldp_observation), ctx);
        break;
      case MessageType::HostEvent:
        accumulate(det->on_host_event(*msg.host_event), ctx);
        break;
      case MessageType::LinkRemoved:
        det->on_link_removed(*msg.link_removed);
        break;
      case MessageType::FlowModOut:
        det->on_flow_mod(msg.dpid, *msg.flow_mod);
        break;
      default: break;
    }
    return Disposition::Continue;
  }

 private:
  static void accumulate(Verdict v, DispatchContext& ctx) {
    if (v == Verdict::Block) ctx.verdict = Verdict::Block;
  }

  const Controller& c_;
};

}  // namespace

Controller::Controller(sim::EventLoop& loop, sim::Rng rng,
                       ControllerConfig config)
    : loop_{loop},
      rng_{std::move(rng)},
      config_{std::move(config)},
      lldp_key_{crypto::Key::derive(to_bytes(config_.key_seed + "/lldp"))},
      ts_key_{crypto::XteaKey::derive(to_bytes(config_.key_seed + "/ts"))} {
  validate_config(config_);
  links_ = std::make_unique<LinkDiscoveryService>(*this);
  hosts_ = std::make_unique<HostTrackingService>(*this);
  routing_ = std::make_unique<RoutingService>(*this);

  services_.provide(kLinkDiscoveryServiceName, links_.get());
  services_.provide(kHostTrackingServiceName, hosts_.get());
  services_.provide(kRoutingServiceName, routing_.get());

  // The chain is assembled from the profile's slot table; a negative
  // slot omits that listener (OpenDaylight runs without a verdict gate).
  const PipelineLayout& layout = config_.profile.layout;
  pipeline_.add_owned(layout.core, std::make_unique<CoreListener>(*this));
  if (layout.anomaly_ids >= 0) {
    pipeline_.add_owned(layout.anomaly_ids,
                        std::make_unique<AnomalyListenerAdapter>(*this));
  }
  if (layout.verdict_gate >= 0) {
    pipeline_.add_owned(layout.verdict_gate, std::make_unique<VerdictGate>());
  }
  pipeline_.add(layout.link_discovery, *links_);
  pipeline_.add(layout.host_tracking, *hosts_);
  pipeline_.add(layout.routing, *routing_);
}

Controller::~Controller() = default;

void Controller::connect_switch(of::Dpid dpid, of::ControlChannel& channel,
                                std::vector<of::PortNo> ports) {
  auto [it, inserted] = switches_.try_emplace(dpid);
  if (!inserted) throw std::logic_error("switch already connected");
  it->second.channel = &channel;
  it->second.ports = std::move(ports);
  channel.attach_controller(
      [this, dpid](const of::SwitchToCtrl& msg) { dispatch(dpid, msg); });
}

void Controller::start() {
  if (started_) return;
  started_ = true;
  links_->start();
  echo_tick();
}

DefenseModule& Controller::add_defense(std::unique_ptr<DefenseModule> module) {
  TMG_ASSERT(module != nullptr, "add_defense: null module");
  modules_.push_back(std::move(module));
  DefenseModule& ref = *modules_.back();
  const PipelineLayout& layout = config_.profile.layout;
  const int priority =
      layout.defense_base +
      layout.defense_step * static_cast<int>(modules_.size() - 1);
  pipeline_.add_owned(priority,
                      std::make_unique<DefenseListenerAdapter>(
                          ref, config_.profile.defense_subscriptions));
  return ref;
}

std::vector<of::Dpid> Controller::switch_dpids() const {
  std::vector<of::Dpid> out;
  out.reserve(switches_.size());
  for (const auto& [dpid, _] : switches_) out.push_back(dpid);
  return out;
}

const std::vector<of::PortNo>& Controller::switch_ports(of::Dpid dpid) const {
  return switches_.at(dpid).ports;
}

std::optional<sim::Duration> Controller::control_rtt(of::Dpid dpid) const {
  const auto it = switches_.find(dpid);
  if (it == switches_.end() || it->second.recent_rtts.empty()) {
    return std::nullopt;
  }
  sim::Duration sum = sim::Duration::zero();
  for (const auto d : it->second.recent_rtts) sum += d;
  return sum / static_cast<std::int64_t>(it->second.recent_rtts.size());
}

net::MacAddress Controller::mac() const {
  return net::MacAddress{{0x02, 0xc0, 0xff, 0xee, 0x00, 0x01}};
}

net::Ipv4Address Controller::ip() const {
  return net::Ipv4Address{10, 255, 255, 254};
}

void Controller::send_packet_out(of::Dpid dpid, of::PortNo out_port,
                                 net::Packet pkt, of::PortNo in_port) {
  const auto it = switches_.find(dpid);
  if (it == switches_.end()) return;
  it->second.channel->to_switch(
      of::PacketOut{out_port, in_port, std::move(pkt)});
}

void Controller::send_flow_mod(of::Dpid dpid, of::FlowMod fm) {
  const auto it = switches_.find(dpid);
  if (it == switches_.end()) return;
  pipeline_.dispatch(PipelineMessage::from(dpid, fm));
  if (tracer_ != nullptr || obs_ != nullptr) {
    trace_event(trace::EventKind::FlowMod,
                (fm.command == of::FlowMod::Command::Add ? "add " : "del ") +
                    fm.match.to_string(),
                of::Location{dpid, fm.action.out_port});
  }
  it->second.channel->to_switch(std::move(fm));
}

void Controller::set_tracer(trace::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_) {
    if (obs_ != nullptr) tracer_->bind(obs_->trace());
    subscribe_alert_mirror();
  }
}

void Controller::set_observability(obs::Observability* obs) {
  obs_ = obs;
  pipeline_.set_observability(obs, &loop_);
  if (obs_ == nullptr) {
    obs_echo_rtt_ = nullptr;
    return;
  }
  if (tracer_ != nullptr) tracer_->bind(obs_->trace());
  subscribe_alert_mirror();
  obs_echo_rtt_ =
      &obs_->metrics().histogram("ctrl.echo_rtt_ms", 0.0, 50.0, 50);
  // Export-time mirror: copies module totals into the registry right
  // before a snapshot, so no hot path pays for bookkeeping it already
  // does for its own accessors. Gauges are set absolutely — collecting
  // twice is idempotent.
  obs_->add_collector([this](obs::MetricsRegistry& m, sim::SimTime) {
    m.gauge("ctrl.alerts_total").set(static_cast<double>(alerts_.count()));
    m.gauge("ctrl.switches").set(static_cast<double>(switches_.size()));
    m.gauge("ctrl.hosts_tracked")
        .set(static_cast<double>(host_tracker().host_count()));
    const auto& flow = obs_->flow_stats();
    m.gauge("flow.packets").set(static_cast<double>(flow.total().packets));
    m.gauge("flow.bytes").set(static_cast<double>(flow.total().bytes));
    m.gauge("flow.mean_packet_bytes").set(flow.total().size.mean);
    m.gauge("flow.switch_cells")
        .set(static_cast<double>(flow.switch_cells()));
    m.gauge("flow.port_cells").set(static_cast<double>(flow.port_cells()));
    const auto acc = links_->lldp_accounting();
    m.gauge("lldp.emitted").set(static_cast<double>(acc.emitted));
    m.gauge("lldp.matched").set(static_cast<double>(acc.matched));
    m.gauge("lldp.expired").set(static_cast<double>(acc.expired));
    m.gauge("lldp.duplicate").set(static_cast<double>(acc.duplicate));
    m.gauge("lldp.unsolicited").set(static_cast<double>(acc.unsolicited));
    m.gauge("lldp.reflected").set(static_cast<double>(acc.reflected));
    m.gauge("lldp.invalid_signature")
        .set(static_cast<double>(acc.invalid_signature));
    m.gauge("lldp.links").set(static_cast<double>(links_->link_states().size()));
    const bool timing = pipeline_.timing();
    for (const auto& s : pipeline_.stats()) {
      m.gauge("pipeline.listener_dispatches{listener=" + s.name + "}")
          .set(static_cast<double>(s.dispatches));
      m.gauge("pipeline.listener_stops{listener=" + s.name + "}")
          .set(static_cast<double>(s.stops));
      // Host wall-clock, so only exported when timing was explicitly
      // opted in — the default snapshot stays byte-deterministic.
      if (timing) {
        m.gauge("pipeline.listener_wall_ms{listener=" + s.name + "}")
            .set(s.wall_ms);
      }
    }
  });
}

void Controller::subscribe_alert_mirror() {
  if (alert_mirror_subscribed_) return;
  alert_mirror_subscribed_ = true;
  alerts_.subscribe([this](const Alert& alert) {
    if (tracer_ == nullptr && obs_ == nullptr) return;
    trace_event(trace::EventKind::Alert, alert.module + ": " + alert.message,
                alert.location);
  });
}

void Controller::trace_event(trace::EventKind kind, std::string detail,
                             std::optional<of::Location> loc) {
  if (tracer_ != nullptr) {
    // The tracer is bound onto the shared TraceLog when obs is attached,
    // so one record covers both sinks.
    tracer_->record(loop_.now(), kind, std::move(detail), loc);
    return;
  }
  if (obs_ != nullptr) {
    const obs::SpanId id = obs_->trace().instant(
        loop_.now(), trace::Tracer::kCategory, trace::to_string(kind), detail);
    if (id != 0 && loc) obs_->trace().annotate(id, "loc", loc->to_string());
  }
}

void Controller::request_flow_stats(of::Dpid dpid) {
  const auto it = switches_.find(dpid);
  if (it == switches_.end()) return;
  it->second.channel->to_switch(of::FlowStatsRequest{next_flow_stats_xid_++});
}

void Controller::request_port_stats(of::Dpid dpid) {
  const auto it = switches_.find(dpid);
  if (it == switches_.end()) return;
  it->second.channel->to_switch(of::PortStatsRequest{next_port_stats_xid_++});
}

void Controller::probe_reachability(of::Location loc, net::MacAddress dst_mac,
                                    net::Ipv4Address dst_ip,
                                    std::function<void(bool)> done) {
  probe_reachability(loc, dst_mac, dst_ip, std::move(done),
                     config_.host_probe_timeout);
}

void Controller::probe_reachability(of::Location loc, net::MacAddress dst_mac,
                                    net::Ipv4Address dst_ip,
                                    std::function<void(bool)> done,
                                    sim::Duration timeout) {
  const std::uint16_t ident = next_probe_ident_++;
  net::Packet probe =
      net::make_icmp_echo(mac(), ip(), dst_mac, dst_ip, ident, 1);
  PendingProbe pending;
  pending.done = std::move(done);
  if (obs_ != nullptr) {
    pending.span =
        obs_->trace().begin_span(loop_.now(), "ctrl", "probe.reachability");
    obs_->trace().annotate(pending.span, "loc", loc.to_string());
  }
  pending.timeout =
      loop_.schedule_after(timeout, [this, ident] {
        auto it = pending_probes_.find(ident);
        if (it == pending_probes_.end()) return;
        auto cb = std::move(it->second.done);
        finish_probe_span(it->second.span, false);
        pending_probes_.erase(it);
        cb(false);
      });
  pending_probes_.emplace(ident, std::move(pending));
  send_packet_out(loc.dpid, loc.port, std::move(probe));
}

bool Controller::consume_probe_reply(const of::PacketIn& pi) {
  const auto* icmp = pi.packet.icmp();
  if (!icmp || icmp->type != net::IcmpPayload::Type::EchoReply) return false;
  if (pi.packet.dst_mac != mac()) return false;
  auto it = pending_probes_.find(icmp->ident);
  if (it == pending_probes_.end()) return true;  // stale reply: still ours
  auto cb = std::move(it->second.done);
  it->second.timeout.cancel();
  finish_probe_span(it->second.span, true);
  pending_probes_.erase(it);
  cb(true);
  return true;
}

void Controller::finish_probe_span(obs::SpanId span, bool reachable) {
  if (span == 0 || obs_ == nullptr) return;
  obs_->trace().annotate(span, "reachable", reachable ? "true" : "false");
  obs_->trace().end_span(span, loop_.now());
}

Verdict Controller::notify_host_event(const HostEvent& ev) {
  const Verdict v = pipeline_.dispatch(PipelineMessage::from(ev));
  // Broadcast-observe controllers (OpenDaylight) treat defense verdicts
  // as advisory: every subscriber has seen the event and any alerts are
  // raised, but the service commit is never suppressed.
  if (config_.profile.discipline == DispatchDiscipline::BroadcastObserve) {
    return Verdict::Allow;
  }
  return v;
}

Verdict Controller::notify_lldp_observation(const LldpObservation& obs) {
  const Verdict v = pipeline_.dispatch(PipelineMessage::from(obs));
  if (config_.profile.discipline == DispatchDiscipline::BroadcastObserve) {
    return Verdict::Allow;
  }
  return v;
}

void Controller::notify_link_removed(const topo::Link& link) {
  pipeline_.dispatch(PipelineMessage::from(link));
}

void Controller::dispatch(of::Dpid dpid, const of::SwitchToCtrl& msg) {
  struct Visitor {
    Controller& c;
    of::Dpid dpid;
    void operator()(const of::PacketIn& pi) {
      // Streaming traffic stats ride the same null-obs guard as every
      // other observability hook: unobserved runs skip the accounting
      // entirely (fastpath equivalence holds because FlowStats feeds no
      // control decision).
      if (c.obs_ != nullptr) {
        c.obs_->flow_stats().record(
            pi.dpid, stats::FlowStats::port_key(pi.dpid, pi.in_port),
            pi.packet.wire_size());
      }
      c.pipeline_.dispatch(PipelineMessage::from(pi));
    }
    void operator()(const of::PortStatus& ps) {
      c.pipeline_.dispatch(PipelineMessage::from(dpid, ps));
    }
    void operator()(const of::EchoReply& er) {
      c.pipeline_.dispatch(PipelineMessage::from(dpid, er));
    }
    void operator()(const of::FlowRemoved& fr) {
      c.pipeline_.dispatch(PipelineMessage::from(dpid, fr));
    }
    void operator()(const of::FlowStatsReply& fsr) {
      c.pipeline_.dispatch(PipelineMessage::from(dpid, fsr));
    }
    void operator()(const of::PortStatsReply& psr) {
      c.pipeline_.dispatch(PipelineMessage::from(dpid, psr));
    }
  };
  std::visit(Visitor{*this, dpid}, msg);
}

void Controller::handle_echo_reply(of::Dpid dpid, const of::EchoReply& er) {
  auto it = switches_.find(dpid);
  if (it == switches_.end()) return;
  auto& conn = it->second;
  const auto sent = conn.pending_echo.find(er.token);
  if (sent == conn.pending_echo.end()) return;
  const sim::Duration rtt = loop_.now() - sent->second;
  conn.pending_echo.erase(sent);
  conn.recent_rtts.push_back(rtt);
  // Paper Sec. VI-D: average of the latest three measurements.
  while (conn.recent_rtts.size() > 3) conn.recent_rtts.pop_front();
  if (obs_echo_rtt_ != nullptr) obs_echo_rtt_->add(rtt.to_millis_f());
  if (tracer_ != nullptr || obs_ != nullptr) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "rtt=%.3fms", rtt.to_millis_f());
    trace_event(trace::EventKind::EchoRtt, buf, of::Location{dpid, 0});
  }
}

void Controller::echo_tick() {
  for (auto& [dpid, conn] : switches_) {
    const std::uint64_t token = next_echo_token_++;
    conn.pending_echo.emplace(token, loop_.now());
    conn.channel->to_switch(of::EchoRequest{token});
  }
  loop_.post_after(config_.echo_interval, [this] { echo_tick(); });
}

}  // namespace tmg::ctrl
