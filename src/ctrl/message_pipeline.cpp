#include "ctrl/message_pipeline.hpp"

#include <algorithm>
#include <chrono>

#include "check/assert.hpp"

namespace tmg::ctrl {

namespace {

/// Host-clock nanoseconds for the opt-in per-listener timing. Purely
/// observability: the value is reported, never fed into the simulation.
std::int64_t wall_now_ns() {
  // determinism-lint: allow(wall-clock) perf observability only, opt-in
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             now.time_since_epoch())
      .count();
}

}  // namespace

const char* to_string(MessageType t) {
  switch (t) {
    case MessageType::PacketIn: return "packet-in";
    case MessageType::PortStatus: return "port-status";
    case MessageType::EchoReply: return "echo-reply";
    case MessageType::FlowRemoved: return "flow-removed";
    case MessageType::FlowStats: return "flow-stats";
    case MessageType::PortStats: return "port-stats";
    case MessageType::LldpObservation: return "lldp-observation";
    case MessageType::HostEvent: return "host-event";
    case MessageType::LinkRemoved: return "link-removed";
    case MessageType::FlowModOut: return "flow-mod-out";
  }
  return "?";
}

PipelineMessage PipelineMessage::from(const of::PacketIn& pi) {
  PipelineMessage m;
  m.type = MessageType::PacketIn;
  m.dpid = pi.dpid;
  m.packet_in = &pi;
  return m;
}

PipelineMessage PipelineMessage::from(of::Dpid dpid,
                                      const of::PortStatus& ps) {
  PipelineMessage m;
  m.type = MessageType::PortStatus;
  m.dpid = dpid;
  m.port_status = &ps;
  return m;
}

PipelineMessage PipelineMessage::from(of::Dpid dpid, const of::EchoReply& er) {
  PipelineMessage m;
  m.type = MessageType::EchoReply;
  m.dpid = dpid;
  m.echo_reply = &er;
  return m;
}

PipelineMessage PipelineMessage::from(of::Dpid dpid,
                                      const of::FlowRemoved& fr) {
  PipelineMessage m;
  m.type = MessageType::FlowRemoved;
  m.dpid = dpid;
  m.flow_removed = &fr;
  return m;
}

PipelineMessage PipelineMessage::from(of::Dpid dpid,
                                      const of::FlowStatsReply& fsr) {
  PipelineMessage m;
  m.type = MessageType::FlowStats;
  m.dpid = dpid;
  m.flow_stats = &fsr;
  return m;
}

PipelineMessage PipelineMessage::from(of::Dpid dpid,
                                      const of::PortStatsReply& psr) {
  PipelineMessage m;
  m.type = MessageType::PortStats;
  m.dpid = dpid;
  m.port_stats = &psr;
  return m;
}

PipelineMessage PipelineMessage::from(const LldpObservation& obs) {
  PipelineMessage m;
  m.type = MessageType::LldpObservation;
  m.dpid = obs.dst.dpid;
  m.lldp_observation = &obs;
  return m;
}

PipelineMessage PipelineMessage::from(const HostEvent& ev) {
  PipelineMessage m;
  m.type = MessageType::HostEvent;
  m.dpid = ev.new_loc.dpid;
  m.host_event = &ev;
  return m;
}

PipelineMessage PipelineMessage::from(const topo::Link& link) {
  PipelineMessage m;
  m.type = MessageType::LinkRemoved;
  m.dpid = link.a.dpid;
  m.link_removed = &link;
  return m;
}

PipelineMessage PipelineMessage::from(of::Dpid dpid, const of::FlowMod& fm) {
  PipelineMessage m;
  m.type = MessageType::FlowModOut;
  m.dpid = dpid;
  m.flow_mod = &fm;
  return m;
}

void MessagePipeline::insert(Entry entry) {
  // Deterministic duplicate-name resolution: the Nth registration of a
  // base name becomes "name#N" (N >= 2).
  std::size_t same = 0;
  const std::string base = entry.name;
  for (const Entry& e : chain_) {
    if (e.name == base ||
        (e.name.size() > base.size() && e.name.compare(0, base.size(), base) == 0 &&
         e.name[base.size()] == '#')) {
      ++same;
    }
  }
  if (same > 0) entry.name = base + "#" + std::to_string(same + 1);
  const auto pos = std::upper_bound(
      chain_.begin(), chain_.end(), entry, [](const Entry& a, const Entry& b) {
        if (a.priority != b.priority) return a.priority < b.priority;
        return a.name < b.name;
      });
  chain_.insert(pos, std::move(entry));
}

void MessagePipeline::add(int priority, MessageListener& listener) {
  Entry e;
  e.priority = priority;
  e.name = listener.name();
  e.listener = &listener;
  e.mask = listener.subscriptions();
  insert(std::move(e));
}

MessageListener& MessagePipeline::add_owned(
    int priority, std::unique_ptr<MessageListener> listener) {
  TMG_ASSERT(listener != nullptr, "MessagePipeline: null listener");
  MessageListener& ref = *listener;
  Entry e;
  e.priority = priority;
  e.name = ref.name();
  e.listener = &ref;
  e.owned = std::move(listener);
  e.mask = ref.subscriptions();
  insert(std::move(e));
  return ref;
}

void MessagePipeline::dispatch(const PipelineMessage& msg,
                               DispatchContext& ctx) {
  const std::uint32_t bit = mask_of(msg.type);
  // Indexed walk: dispatch re-enters when a service publishes a derived
  // event mid-chain, and registration during dispatch is forbidden, so
  // the vector is stable for the whole walk.
  for (std::size_t i = 0; i < chain_.size(); ++i) {
    Entry& e = chain_[i];
    if (!e.enabled || (e.mask & bit) == 0) continue;
    ++e.dispatches;
    ++ctx.visited;
    Disposition d;
    if (timing_) {
      const std::int64_t t0 = wall_now_ns();
      d = e.listener->on_message(msg, ctx);
      e.wall_ns += wall_now_ns() - t0;
    } else {
      d = e.listener->on_message(msg, ctx);
    }
    if (d == Disposition::Stop) {
      ++e.stops;
      ctx.stopped_by = e.name.c_str();
      return;
    }
  }
}

Verdict MessagePipeline::dispatch(const PipelineMessage& msg) {
  DispatchContext ctx;
  dispatch(msg, ctx);
  return ctx.verdict;
}

const MessagePipeline::Entry* MessagePipeline::find_entry(
    const std::string& name) const {
  for (const Entry& e : chain_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

bool MessagePipeline::set_enabled(const std::string& name, bool enabled) {
  for (Entry& e : chain_) {
    if (e.name == name) {
      e.enabled = enabled;
      return true;
    }
  }
  return false;
}

bool MessagePipeline::is_enabled(const std::string& name) const {
  const Entry* e = find_entry(name);
  return e != nullptr && e->enabled;
}

std::vector<MessagePipeline::ListenerStats> MessagePipeline::stats() const {
  std::vector<ListenerStats> out;
  out.reserve(chain_.size());
  for (const Entry& e : chain_) {
    ListenerStats s;
    s.name = e.name;
    s.priority = e.priority;
    s.enabled = e.enabled;
    s.subscriptions = e.mask;
    s.dispatches = e.dispatches;
    s.stops = e.stops;
    s.wall_ms = static_cast<double>(e.wall_ns) / 1e6;
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<std::string> MessagePipeline::chain_names() const {
  std::vector<std::string> out;
  out.reserve(chain_.size());
  for (const Entry& e : chain_) out.push_back(e.name);
  return out;
}

std::vector<std::string> MessagePipeline::audit() const {
  std::vector<std::string> out;
  for (std::size_t i = 0; i + 1 < chain_.size(); ++i) {
    const Entry& a = chain_[i];
    const Entry& b = chain_[i + 1];
    if (a.priority > b.priority ||
        (a.priority == b.priority && a.name >= b.name)) {
      out.push_back("chain not sorted at " + a.name + " -> " + b.name);
    }
  }
  for (std::size_t i = 0; i < chain_.size(); ++i) {
    for (std::size_t j = i + 1; j < chain_.size(); ++j) {
      if (chain_[i].name == chain_[j].name) {
        out.push_back("duplicate listener name " + chain_[i].name);
      }
    }
    if (chain_[i].stops > chain_[i].dispatches) {
      out.push_back(chain_[i].name + " stopped more dispatches than it saw");
    }
    if (chain_[i].mask == 0) {
      out.push_back(chain_[i].name + " subscribes to nothing");
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace tmg::ctrl
