#include "ctrl/message_pipeline.hpp"

#include <algorithm>
#include <chrono>

#include "check/assert.hpp"
#include "obs/observability.hpp"

namespace tmg::ctrl {

namespace {

/// Host-clock nanoseconds for the opt-in per-listener timing. Purely
/// observability: the value is reported, never fed into the simulation.
std::int64_t wall_now_ns() {
  // determinism-lint: allow(wall-clock) perf observability only, opt-in
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             now.time_since_epoch())
      .count();
}

}  // namespace

const char* to_string(MessageType t) {
  switch (t) {
    case MessageType::PacketIn: return "packet-in";
    case MessageType::PortStatus: return "port-status";
    case MessageType::EchoReply: return "echo-reply";
    case MessageType::FlowRemoved: return "flow-removed";
    case MessageType::FlowStats: return "flow-stats";
    case MessageType::PortStats: return "port-stats";
    case MessageType::LldpObservation: return "lldp-observation";
    case MessageType::HostEvent: return "host-event";
    case MessageType::LinkRemoved: return "link-removed";
    case MessageType::FlowModOut: return "flow-mod-out";
  }
  return "?";
}

PipelineMessage PipelineMessage::from(const of::PacketIn& pi) {
  PipelineMessage m;
  m.type = MessageType::PacketIn;
  m.dpid = pi.dpid;
  m.packet_in = &pi;
  return m;
}

PipelineMessage PipelineMessage::from(of::Dpid dpid,
                                      const of::PortStatus& ps) {
  PipelineMessage m;
  m.type = MessageType::PortStatus;
  m.dpid = dpid;
  m.port_status = &ps;
  return m;
}

PipelineMessage PipelineMessage::from(of::Dpid dpid, const of::EchoReply& er) {
  PipelineMessage m;
  m.type = MessageType::EchoReply;
  m.dpid = dpid;
  m.echo_reply = &er;
  return m;
}

PipelineMessage PipelineMessage::from(of::Dpid dpid,
                                      const of::FlowRemoved& fr) {
  PipelineMessage m;
  m.type = MessageType::FlowRemoved;
  m.dpid = dpid;
  m.flow_removed = &fr;
  return m;
}

PipelineMessage PipelineMessage::from(of::Dpid dpid,
                                      const of::FlowStatsReply& fsr) {
  PipelineMessage m;
  m.type = MessageType::FlowStats;
  m.dpid = dpid;
  m.flow_stats = &fsr;
  return m;
}

PipelineMessage PipelineMessage::from(of::Dpid dpid,
                                      const of::PortStatsReply& psr) {
  PipelineMessage m;
  m.type = MessageType::PortStats;
  m.dpid = dpid;
  m.port_stats = &psr;
  return m;
}

PipelineMessage PipelineMessage::from(const LldpObservation& obs) {
  PipelineMessage m;
  m.type = MessageType::LldpObservation;
  m.dpid = obs.dst.dpid;
  m.lldp_observation = &obs;
  return m;
}

PipelineMessage PipelineMessage::from(const HostEvent& ev) {
  PipelineMessage m;
  m.type = MessageType::HostEvent;
  m.dpid = ev.new_loc.dpid;
  m.host_event = &ev;
  return m;
}

PipelineMessage PipelineMessage::from(const topo::Link& link) {
  PipelineMessage m;
  m.type = MessageType::LinkRemoved;
  m.dpid = link.a.dpid;
  m.link_removed = &link;
  return m;
}

PipelineMessage PipelineMessage::from(of::Dpid dpid, const of::FlowMod& fm) {
  PipelineMessage m;
  m.type = MessageType::FlowModOut;
  m.dpid = dpid;
  m.flow_mod = &fm;
  return m;
}

void MessagePipeline::insert(Entry entry) {
  // Deterministic duplicate-name resolution: the Nth registration of a
  // base name becomes "name#N" (N >= 2).
  std::size_t same = 0;
  const std::string base = entry.name;
  for (const Entry& e : chain_) {
    if (e.name == base ||
        (e.name.size() > base.size() && e.name.compare(0, base.size(), base) == 0 &&
         e.name[base.size()] == '#')) {
      ++same;
    }
  }
  if (same > 0) entry.name = base + "#" + std::to_string(same + 1);
  const auto pos = std::upper_bound(
      chain_.begin(), chain_.end(), entry, [](const Entry& a, const Entry& b) {
        if (a.priority != b.priority) return a.priority < b.priority;
        return a.name < b.name;
      });
  chain_.insert(pos, std::move(entry));
}

void MessagePipeline::add(int priority, MessageListener& listener) {
  Entry e;
  e.priority = priority;
  e.name = listener.name();
  e.listener = &listener;
  e.mask = listener.subscriptions();
  insert(std::move(e));
}

MessageListener& MessagePipeline::add_owned(
    int priority, std::unique_ptr<MessageListener> listener) {
  TMG_ASSERT(listener != nullptr, "MessagePipeline: null listener");
  MessageListener& ref = *listener;
  Entry e;
  e.priority = priority;
  e.name = ref.name();
  e.listener = &ref;
  e.owned = std::move(listener);
  e.mask = ref.subscriptions();
  insert(std::move(e));
  return ref;
}

void MessagePipeline::set_observability(obs::Observability* obs,
                                        const sim::EventLoop* loop) {
  obs_ = obs;
  obs_loop_ = obs == nullptr ? nullptr : loop;
  obs_parent_ = 0;
  if (obs_ != nullptr) {
    obs_dispatches_ = &obs_->metrics().counter("pipeline.dispatches");
    obs_queue_depth_ =
        &obs_->metrics().histogram("pipeline.queue_depth", 0.0, 4096.0, 64);
    obs_visited_ = &obs_->metrics().histogram("pipeline.visited", 0.0, 32.0, 32);
  } else {
    obs_dispatches_ = nullptr;
    obs_queue_depth_ = nullptr;
    obs_visited_ = nullptr;
  }
}

void MessagePipeline::reset_stats() {
  for (Entry& e : chain_) {
    e.dispatches = 0;
    e.stops = 0;
    e.wall_ns = 0;
  }
}

obs::SpanId MessagePipeline::open_dispatch_span(const PipelineMessage& msg) {
  if (!obs_->trace_dispatch()) return 0;
  const sim::SimTime now =
      obs_loop_ != nullptr ? obs_loop_->now() : sim::SimTime::zero();
  return obs_->trace().begin_span(
      now, "pipeline", std::string("dispatch:") + to_string(msg.type),
      obs_parent_);
}

void MessagePipeline::close_listener_span(obs::SpanId span,
                                          const DispatchContext& ctx,
                                          Disposition d,
                                          Verdict verdict_before) {
  if (span == 0) return;
  obs::TraceLog& trace = obs_->trace();
  trace.annotate(span, "disposition",
                 d == Disposition::Stop ? "stop" : "continue");
  if (ctx.verdict != verdict_before) {
    trace.annotate(span, "verdict",
                   ctx.verdict == Verdict::Block ? "block" : "allow");
  }
  trace.end_span(span, obs_loop_ != nullptr ? obs_loop_->now()
                                            : sim::SimTime::zero());
}

void MessagePipeline::dispatch(const PipelineMessage& msg,
                               DispatchContext& ctx) {
  const std::uint32_t bit = mask_of(msg.type);
  // Observed dispatch: a span tree (dispatch -> per-listener children,
  // nested dispatches parent under the listener that published them) and
  // queue-depth/fanout histograms. obs_ == nullptr skips all of it; the
  // simulated walk below is identical either way.
  const bool observed = obs_ != nullptr;
  obs::SpanId dispatch_span = 0;
  obs::SpanId saved_parent = 0;
  if (observed) {
    dispatch_span = open_dispatch_span(msg);
    saved_parent = obs_parent_;
    if (dispatch_span != 0) obs_parent_ = dispatch_span;
    obs_dispatches_->inc();
    if (obs_loop_ != nullptr) {
      obs_queue_depth_->add(static_cast<double>(obs_loop_->live_events()));
    }
  }
  const std::size_t visited_at_entry = ctx.visited;

  // Indexed walk: dispatch re-enters when a service publishes a derived
  // event mid-chain, and registration during dispatch is forbidden, so
  // the vector is stable for the whole walk.
  for (std::size_t i = 0; i < chain_.size(); ++i) {
    Entry& e = chain_[i];
    if (!e.enabled || (e.mask & bit) == 0) continue;
    ++e.dispatches;
    ++ctx.visited;
    obs::SpanId listener_span = 0;
    const Verdict verdict_before = ctx.verdict;
    if (observed && dispatch_span != 0) {
      listener_span = obs_->trace().begin_span(
          obs_loop_ != nullptr ? obs_loop_->now() : sim::SimTime::zero(),
          "pipeline.listener", e.name, dispatch_span);
      if (listener_span != 0) obs_parent_ = listener_span;
    }
    Disposition d;
    if (timing_) {
      const std::int64_t t0 = wall_now_ns();
      d = e.listener->on_message(msg, ctx);
      e.wall_ns += wall_now_ns() - t0;
    } else {
      d = e.listener->on_message(msg, ctx);
    }
    if (observed) {
      if (dispatch_span != 0) obs_parent_ = dispatch_span;
      close_listener_span(listener_span, ctx, d, verdict_before);
    }
    if (d == Disposition::Stop) {
      ++e.stops;
      ctx.stopped_by = e.name.c_str();
      break;
    }
  }

  if (observed) {
    obs_visited_->add(static_cast<double>(ctx.visited - visited_at_entry));
    if (dispatch_span != 0) {
      obs::TraceLog& trace = obs_->trace();
      trace.annotate(dispatch_span, "visited",
                     std::to_string(ctx.visited - visited_at_entry));
      if (ctx.stopped_by != nullptr) {
        trace.annotate(dispatch_span, "stopped_by", ctx.stopped_by);
      }
      trace.annotate(dispatch_span, "verdict",
                     ctx.verdict == Verdict::Block ? "block" : "allow");
      trace.end_span(dispatch_span, obs_loop_ != nullptr
                                        ? obs_loop_->now()
                                        : sim::SimTime::zero());
    }
    obs_parent_ = saved_parent;
  }
}

Verdict MessagePipeline::dispatch(const PipelineMessage& msg) {
  DispatchContext ctx;
  dispatch(msg, ctx);
  return ctx.verdict;
}

const MessagePipeline::Entry* MessagePipeline::find_entry(
    const std::string& name) const {
  for (const Entry& e : chain_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

bool MessagePipeline::set_enabled(const std::string& name, bool enabled) {
  for (Entry& e : chain_) {
    if (e.name == name) {
      e.enabled = enabled;
      return true;
    }
  }
  return false;
}

bool MessagePipeline::is_enabled(const std::string& name) const {
  const Entry* e = find_entry(name);
  return e != nullptr && e->enabled;
}

std::vector<MessagePipeline::ListenerStats> MessagePipeline::stats() const {
  std::vector<ListenerStats> out;
  out.reserve(chain_.size());
  for (const Entry& e : chain_) {
    ListenerStats s;
    s.name = e.name;
    s.priority = e.priority;
    s.enabled = e.enabled;
    s.subscriptions = e.mask;
    s.dispatches = e.dispatches;
    s.stops = e.stops;
    s.wall_ms = static_cast<double>(e.wall_ns) / 1e6;
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<std::string> MessagePipeline::chain_names() const {
  std::vector<std::string> out;
  out.reserve(chain_.size());
  for (const Entry& e : chain_) out.push_back(e.name);
  return out;
}

std::vector<std::string> MessagePipeline::audit() const {
  std::vector<std::string> out;
  for (std::size_t i = 0; i + 1 < chain_.size(); ++i) {
    const Entry& a = chain_[i];
    const Entry& b = chain_[i + 1];
    if (a.priority > b.priority ||
        (a.priority == b.priority && a.name >= b.name)) {
      out.push_back("chain not sorted at " + a.name + " -> " + b.name);
    }
  }
  for (std::size_t i = 0; i < chain_.size(); ++i) {
    for (std::size_t j = i + 1; j < chain_.size(); ++j) {
      if (chain_[i].name == chain_[j].name) {
        out.push_back("duplicate listener name " + chain_[i].name);
      }
    }
    if (chain_[i].stops > chain_[i].dispatches) {
      out.push_back(chain_[i].name + " stopped more dispatches than it saw");
    }
    if (chain_[i].mask == 0) {
      out.push_back(chain_[i].name + " subscribes to nothing");
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace tmg::ctrl
