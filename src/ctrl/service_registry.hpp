// Service registry (Floodlight IFloodlightModuleContext analogue).
//
// Controller services and defense modules publish themselves under a
// stable string name; peers resolve each other through the registry
// instead of reaching through Controller accessors. That keeps the
// dependency graph explicit (DESIGN.md §9 lists the registered names)
// and lets experiments swap or stub a service without touching its
// consumers. Lookups are type-checked: resolving a name under the wrong
// type is a hard assertion, not a silent cast.
#pragma once

#include <map>
#include <string>
#include <typeinfo>
#include <vector>

#include "check/assert.hpp"

namespace tmg::ctrl {

/// Canonical registry names for the controller-core services.
inline constexpr const char* kLinkDiscoveryServiceName = "link-discovery";
inline constexpr const char* kHostTrackingServiceName = "host-tracking";
inline constexpr const char* kRoutingServiceName = "routing";

class ServiceRegistry {
 public:
  /// Publish `service` under `name`. The registry does not own the
  /// pointer; the provider must outlive every consumer. Re-registering
  /// a taken name is a bug (use offer() for idempotent installers).
  template <typename T>
  void provide(const std::string& name, T* service) {
    TMG_ASSERT(service != nullptr, "ServiceRegistry: null service " + name);
    const bool fresh =
        services_.emplace(name, Slot{&typeid(T), service}).second;
    TMG_ASSERT(fresh, "ServiceRegistry: duplicate service " + name);
  }

  /// Like provide(), but a no-op when `name` is already taken (the first
  /// instance wins). For installers that may legitimately run twice,
  /// e.g. a stacked suite that includes TopoGuard through two paths.
  template <typename T>
  void offer(const std::string& name, T* service) {
    if (services_.count(name) == 0) provide(name, service);
  }

  /// Resolve `name`, or nullptr when nothing is registered under it.
  /// A name registered under a different type is a programming error.
  template <typename T>
  [[nodiscard]] T* find(const std::string& name) const {
    const auto it = services_.find(name);
    if (it == services_.end()) return nullptr;
    TMG_ASSERT(*it->second.type == typeid(T),
               "ServiceRegistry: " + name + " is not a " + typeid(T).name());
    return static_cast<T*>(it->second.ptr);
  }

  /// Resolve `name` or die: for dependencies that must be present.
  template <typename T>
  [[nodiscard]] T& require(const std::string& name) const {
    T* service = find<T>(name);
    TMG_ASSERT(service != nullptr,
               "ServiceRegistry: missing required service " + name);
    return *service;
  }

  [[nodiscard]] bool has(const std::string& name) const {
    return services_.count(name) != 0;
  }

  /// All registered names, sorted (std::map order).
  [[nodiscard]] std::vector<std::string> names() const;

  [[nodiscard]] std::size_t size() const { return services_.size(); }

 private:
  struct Slot {
    const std::type_info* type = nullptr;
    void* ptr = nullptr;
  };
  std::map<std::string, Slot> services_;
};

}  // namespace tmg::ctrl
