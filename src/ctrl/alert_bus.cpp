#include "ctrl/alert_bus.hpp"

#include <algorithm>

namespace tmg::ctrl {

const char* to_string(AlertType t) {
  switch (t) {
    case AlertType::LldpFromHostPort: return "LLDP_FROM_HOST_PORT";
    case AlertType::FirstHopFromSwitchPort: return "FIRST_HOP_FROM_SWITCH_PORT";
    case AlertType::InvalidLldpSignature: return "INVALID_LLDP_SIGNATURE";
    case AlertType::HostMigrationPrecondition:
      return "HOST_MIGRATION_PRECONDITION";
    case AlertType::HostMigrationPostcondition:
      return "HOST_MIGRATION_POSTCONDITION";
    case AlertType::SphinxIdentifierConflict:
      return "SPHINX_IDENTIFIER_CONFLICT";
    case AlertType::SphinxFlowInconsistency:
      return "SPHINX_FLOW_INCONSISTENCY";
    case AlertType::SphinxWaypointChange: return "SPHINX_WAYPOINT_CHANGE";
    case AlertType::SphinxLinkAsymmetry: return "SPHINX_LINK_ASYMMETRY";
    case AlertType::CmmControlMessage: return "CMM_CONTROL_MESSAGE";
    case AlertType::LliAbnormalLatency: return "LLI_ABNORMAL_LATENCY";
    case AlertType::LliMissingTimestamp: return "LLI_MISSING_TIMESTAMP";
    case AlertType::SecureBindingViolation: return "SECURE_BINDING_VIOLATION";
    case AlertType::ArpInspectionViolation: return "ARP_INSPECTION_VIOLATION";
    case AlertType::ActiveProbeViolation: return "ACTIVE_PROBE_VIOLATION";
    case AlertType::InvariantViolation: return "INVARIANT_VIOLATION";
    case AlertType::AnomalyDeviation: return "ANOMALY_DEVIATION";
  }
  return "UNKNOWN";
}

void AlertBus::raise(Alert alert) {
  alerts_.push_back(alert);
  for (const auto& l : listeners_) l(alerts_.back());
}

std::size_t AlertBus::count(AlertType t) const {
  return static_cast<std::size_t>(
      std::count_if(alerts_.begin(), alerts_.end(),
                    [&](const Alert& a) { return a.type == t; }));
}

std::size_t AlertBus::count_from(const std::string& module) const {
  return static_cast<std::size_t>(
      std::count_if(alerts_.begin(), alerts_.end(),
                    [&](const Alert& a) { return a.module == module; }));
}

void AlertBus::subscribe(Listener listener) {
  listeners_.push_back(std::move(listener));
}

}  // namespace tmg::ctrl
