#include "ctrl/host_tracker.hpp"

#include "ctrl/controller.hpp"
#include "ctrl/routing.hpp"

namespace tmg::ctrl {

HostTrackingService::HostTrackingService(Controller& ctrl) : ctrl_{ctrl} {}

std::string HostTrackingService::name() const {
  return kHostTrackingServiceName;
}

std::uint32_t HostTrackingService::subscriptions() const {
  return mask_of(MessageType::PacketIn);
}

Disposition HostTrackingService::on_message(const PipelineMessage& msg,
                                            DispatchContext&) {
  handle_packet_in(*msg.packet_in);
  return Disposition::Continue;
}

RoutingService& HostTrackingService::routing_service() {
  if (routing_ == nullptr) {
    routing_ = &ctrl_.services().require<RoutingService>(kRoutingServiceName);
  }
  return *routing_;
}

net::Ipv4Address HostTrackingService::source_ip_of(const net::Packet& pkt) {
  if (const auto* arp = pkt.arp()) return arp->sender_ip;
  if (pkt.ip) return pkt.ip->src;
  return net::Ipv4Address::any();
}

void HostTrackingService::handle_packet_in(const of::PacketIn& pi) {
  const net::Packet& pkt = pi.packet;
  if (pkt.is_lldp()) return;
  if (pkt.src_mac.is_multicast()) return;
  const of::Location loc{pi.dpid, pi.in_port};
  // Traffic on switch-internal ports is transit, not first-hop: it never
  // (re)binds a host. Floodlight's DeviceManager does the same.
  if (ctrl_.topology().is_switch_port(loc)) return;

  const sim::SimTime now = ctrl_.loop().now();
  const net::Ipv4Address src_ip = source_ip_of(pkt);

  HostRecord* existing = hosts_.find(pkt.src_mac);
  if (existing == nullptr) {
    HostEvent ev;
    ev.kind = HostEvent::Kind::New;
    ev.mac = pkt.src_mac;
    ev.ip = src_ip;
    ev.new_loc = loc;
    if (ctrl_.notify_host_event(ev) == Verdict::Block) {
      ++blocked_;
      ctrl_.trace_event(trace::EventKind::HostBlocked,
                        pkt.src_mac.to_string(), loc);
      return;
    }
    hosts_.insert(HostRecord{pkt.src_mac, src_ip, loc, now, now});
    ctrl_.trace_event(trace::EventKind::HostNew,
                      pkt.src_mac.to_string() + " / " + src_ip.to_string(),
                      loc);
    return;
  }

  HostRecord& rec = *existing;
  if (rec.loc == loc) {
    rec.last_seen = now;
    if (src_ip != net::Ipv4Address::any()) rec.ip = src_ip;
    return;
  }

  // Location change: a migration (legitimate or hijack — the controller
  // cannot tell; that ambiguity is the attack surface).
  HostEvent ev;
  ev.kind = HostEvent::Kind::Moved;
  ev.mac = pkt.src_mac;
  ev.ip = src_ip != net::Ipv4Address::any() ? src_ip : rec.ip;
  ev.old_loc = rec.loc;
  ev.new_loc = loc;
  ev.old_last_seen = rec.last_seen;
  if (ctrl_.notify_host_event(ev) == Verdict::Block) {
    ++blocked_;
    ctrl_.trace_event(trace::EventKind::HostBlocked,
                      pkt.src_mac.to_string(), loc);
    return;
  }
  ctrl_.trace_event(trace::EventKind::HostMoved,
                    pkt.src_mac.to_string() + " " + rec.loc.to_string() +
                        " -> " + loc.to_string(),
                    loc);
  rec.loc = loc;
  rec.last_seen = now;
  if (src_ip != net::Ipv4Address::any()) rec.ip = src_ip;
  ++migrations_;
  routing_service().on_host_moved(ev);
}

std::optional<HostRecord> HostTrackingService::find(
    net::MacAddress mac) const {
  const HostRecord* rec = hosts_.find(mac);
  if (rec == nullptr) return std::nullopt;
  return *rec;
}

std::optional<HostRecord> HostTrackingService::find_by_ip(
    net::Ipv4Address ip) const {
  // Several records can claim one IP mid-attack (ARP spoofing, HLH).
  // Resolve to the freshest binding, tie-broken by MAC, so the answer
  // never depends on the table's physical (hash) order — the fold below
  // is an order-free maximum.
  std::optional<HostRecord> best;
  hosts_.for_each([&](const HostRecord& rec) {
    if (rec.ip != ip) return;
    if (!best || rec.last_seen > best->last_seen ||
        (rec.last_seen == best->last_seen && rec.mac < best->mac)) {
      best = rec;
    }
  });
  return best;
}

}  // namespace tmg::ctrl
