#include "ctrl/host_tracker.hpp"

#include "ctrl/controller.hpp"
#include "ctrl/routing.hpp"

namespace tmg::ctrl {

HostTrackingService::HostTrackingService(Controller& ctrl) : ctrl_{ctrl} {}

std::string HostTrackingService::name() const {
  return kHostTrackingServiceName;
}

std::uint32_t HostTrackingService::subscriptions() const {
  return mask_of(MessageType::PacketIn);
}

Disposition HostTrackingService::on_message(const PipelineMessage& msg,
                                            DispatchContext&) {
  handle_packet_in(*msg.packet_in);
  return Disposition::Continue;
}

RoutingService& HostTrackingService::routing_service() {
  if (routing_ == nullptr) {
    routing_ = &ctrl_.services().require<RoutingService>(kRoutingServiceName);
  }
  return *routing_;
}

net::Ipv4Address HostTrackingService::source_ip_of(const net::Packet& pkt) {
  if (const auto* arp = pkt.arp()) return arp->sender_ip;
  if (pkt.ip) return pkt.ip->src;
  return net::Ipv4Address::any();
}

void HostTrackingService::handle_packet_in(const of::PacketIn& pi) {
  const net::Packet& pkt = pi.packet;
  if (pkt.is_lldp()) return;
  if (pkt.src_mac.is_multicast()) return;
  const of::Location loc{pi.dpid, pi.in_port};
  // Traffic on switch-internal ports is transit, not first-hop: it never
  // (re)binds a host. Floodlight's DeviceManager does the same.
  if (ctrl_.topology().is_switch_port(loc)) return;

  const sim::SimTime now = ctrl_.loop().now();
  const net::Ipv4Address src_ip = source_ip_of(pkt);

  HostRecord* existing = hosts_.find(pkt.src_mac);
  if (existing == nullptr) {
    HostEvent ev;
    ev.kind = HostEvent::Kind::New;
    ev.mac = pkt.src_mac;
    ev.ip = src_ip;
    ev.new_loc = loc;
    if (ctrl_.notify_host_event(ev) == Verdict::Block) {
      ++blocked_;
      ctrl_.trace_event(trace::EventKind::HostBlocked,
                        pkt.src_mac.to_string(), loc);
      return;
    }
    hosts_.insert(HostRecord{pkt.src_mac, src_ip, loc, now, now});
    ctrl_.trace_event(trace::EventKind::HostNew,
                      pkt.src_mac.to_string() + " / " + src_ip.to_string(),
                      loc);
    return;
  }

  HostRecord& rec = *existing;
  if (rec.loc == loc) {
    rec.last_seen = now;
    if (src_ip != net::Ipv4Address::any()) rec.ip = src_ip;
    return;
  }

  // Location change: a migration (legitimate or hijack — the controller
  // cannot tell; that ambiguity is the attack surface).
  const net::Ipv4Address move_ip =
      src_ip != net::Ipv4Address::any() ? src_ip : rec.ip;

  if (ctrl_.config().profile.migration == MigrationPolicy::ProbeBeforeMove) {
    // ONOS semantics: verify the old attachment point before rebinding.
    // One probe per MAC is in flight at a time; further sightings at
    // the contested location are dropped until the probe resolves.
    if (pending_moves_.count(pkt.src_mac) != 0) return;
    pending_moves_.emplace(pkt.src_mac, PendingMove{rec.loc, loc, move_ip});
    const net::MacAddress mac = pkt.src_mac;
    ctrl_.probe_reachability(
        rec.loc, pkt.src_mac, rec.ip,
        [this, mac](bool reachable) { finish_move(mac, reachable); },
        ctrl_.config().profile.migration_probe_timeout);
    return;
  }

  commit_move(rec, loc, move_ip);
}

void HostTrackingService::finish_move(net::MacAddress mac,
                                      bool old_loc_reachable) {
  const auto it = pending_moves_.find(mac);
  if (it == pending_moves_.end()) return;
  const PendingMove pending = it->second;
  pending_moves_.erase(it);
  HostRecord* rec = hosts_.find(mac);
  // The binding may have vanished or rebound while the probe was in
  // flight; a verdict about a stale old location is meaningless.
  if (rec == nullptr || !(rec->loc == pending.old_loc)) return;
  if (old_loc_reachable) {
    // The original attachment point still answers: whoever claimed the
    // identity elsewhere does not get the binding (blocks the naive
    // pre-claim hijack while the victim is alive).
    ++moves_rejected_;
    ctrl_.trace_event(trace::EventKind::HostMoveRejected,
                      mac.to_string() + " " + pending.old_loc.to_string() +
                          " -/-> " + pending.new_loc.to_string(),
                      pending.new_loc);
    return;
  }
  commit_move(*rec, pending.new_loc, pending.ip);
}

void HostTrackingService::commit_move(HostRecord& rec, of::Location new_loc,
                                      net::Ipv4Address ip) {
  const sim::SimTime now = ctrl_.loop().now();
  HostEvent ev;
  ev.kind = HostEvent::Kind::Moved;
  ev.mac = rec.mac;
  ev.ip = ip;
  ev.old_loc = rec.loc;
  ev.new_loc = new_loc;
  ev.old_last_seen = rec.last_seen;
  if (ctrl_.notify_host_event(ev) == Verdict::Block) {
    ++blocked_;
    ctrl_.trace_event(trace::EventKind::HostBlocked, rec.mac.to_string(),
                      new_loc);
    return;
  }
  ctrl_.trace_event(trace::EventKind::HostMoved,
                    rec.mac.to_string() + " " + rec.loc.to_string() + " -> " +
                        new_loc.to_string(),
                    new_loc);
  rec.loc = new_loc;
  rec.last_seen = now;
  if (ip != net::Ipv4Address::any()) rec.ip = ip;
  ++migrations_;
  routing_service().on_host_moved(ev);
}

std::optional<HostRecord> HostTrackingService::find(
    net::MacAddress mac) const {
  const HostRecord* rec = hosts_.find(mac);
  if (rec == nullptr) return std::nullopt;
  return *rec;
}

std::optional<HostRecord> HostTrackingService::find_by_ip(
    net::Ipv4Address ip) const {
  // Several records can claim one IP mid-attack (ARP spoofing, HLH).
  // Resolve to the freshest binding, tie-broken by MAC, so the answer
  // never depends on the table's physical (hash) order — the fold below
  // is an order-free maximum.
  std::optional<HostRecord> best;
  hosts_.for_each([&](const HostRecord& rec) {
    if (rec.ip != ip) return;
    if (!best || rec.last_seen > best->last_seen ||
        (rec.last_seen == best->last_seen && rec.mac < best->mac)) {
      best = rec;
    }
  });
  return best;
}

}  // namespace tmg::ctrl
