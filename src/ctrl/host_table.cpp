#include "ctrl/host_table.hpp"

#include <algorithm>

namespace tmg::ctrl {

HostTable::HostTable() : shards_(kShards) {
  for (Shard& s : shards_) {
    s.slots.resize(kInitialSlots);
    s.used.assign(kInitialSlots, 0);
  }
}

std::uint64_t HostTable::mix(net::MacAddress mac) {
  std::uint64_t z = mac.to_u64() + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

HostRecord* HostTable::probe(Shard& shard, net::MacAddress mac,
                             std::uint64_t h, bool& found) {
  const std::size_t mask = shard.slots.size() - 1;
  std::size_t i = static_cast<std::size_t>(h) & mask;
  while (shard.used[i] != 0) {
    if (shard.slots[i].mac == mac) {
      found = true;
      return &shard.slots[i];
    }
    i = (i + 1) & mask;
  }
  found = false;
  return &shard.slots[i];
}

void HostTable::grow(Shard& shard) {
  std::vector<HostRecord> old_slots(shard.slots.size() * 2);
  std::vector<std::uint8_t> old_used(shard.slots.size() * 2, 0);
  old_slots.swap(shard.slots);
  old_used.swap(shard.used);
  // old_* now hold the NEW (doubled, empty) arrays' previous contents:
  // after the swaps, shard.slots/used are the doubled arrays and
  // old_slots/old_used the originals to re-insert.
  const std::size_t mask = shard.slots.size() - 1;
  for (std::size_t i = 0; i < old_slots.size(); ++i) {
    if (old_used[i] == 0) continue;
    std::size_t j = static_cast<std::size_t>(mix(old_slots[i].mac)) & mask;
    while (shard.used[j] != 0) j = (j + 1) & mask;
    shard.slots[j] = old_slots[i];
    shard.used[j] = 1;
  }
}

HostRecord* HostTable::find(net::MacAddress mac) {
  const std::uint64_t h = mix(mac);
  Shard& shard = shards_[shard_of(h)];
  bool found = false;
  HostRecord* slot = probe(shard, mac, h, found);
  return found ? slot : nullptr;
}

const HostRecord* HostTable::find(net::MacAddress mac) const {
  return const_cast<HostTable*>(this)->find(mac);
}

HostRecord& HostTable::insert(const HostRecord& rec) {
  const std::uint64_t h = mix(rec.mac);
  Shard& shard = shards_[shard_of(h)];
  // Grow at 7/8 load so probe runs stay short; records are copied to
  // their new slots, so this is the only allocating path.
  if ((shard.count + 1) * 8 > shard.slots.size() * 7) grow(shard);
  bool found = false;
  HostRecord* slot = probe(shard, rec.mac, h, found);
  if (!found) {
    ++shard.count;
    ++size_;
  }
  *slot = rec;
  const std::size_t i = static_cast<std::size_t>(slot - shard.slots.data());
  shard.used[i] = 1;
  return *slot;
}

std::vector<HostRecord> HostTable::sorted() const {
  std::vector<HostRecord> out;
  out.reserve(size_);
  for_each([&](const HostRecord& rec) { out.push_back(rec); });
  std::sort(out.begin(), out.end(), [](const HostRecord& a,
                                       const HostRecord& b) {
    return a.mac < b.mac;
  });
  return out;
}

std::vector<std::string> HostTable::audit() const {
  std::vector<std::string> issues;
  std::size_t total = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = shards_[s];
    if (shard.slots.size() != shard.used.size() ||
        (shard.slots.size() & (shard.slots.size() - 1)) != 0) {
      issues.push_back("shard " + std::to_string(s) +
                       " capacity is not a power of two");
      continue;
    }
    if (shard.count * 8 > shard.slots.size() * 7) {
      issues.push_back("shard " + std::to_string(s) +
                       " exceeds the 7/8 load bound");
    }
    std::size_t occupied = 0;
    for (std::size_t i = 0; i < shard.slots.size(); ++i) {
      if (shard.used[i] == 0) continue;
      ++occupied;
      const HostRecord& rec = shard.slots[i];
      const std::uint64_t h = mix(rec.mac);
      if (shard_of(h) != s) {
        issues.push_back("record " + rec.mac.to_string() +
                         " stored in wrong shard " + std::to_string(s));
      }
      // Linear probing invariant: the walk from the record's home slot
      // to its actual slot must cross no empty slot, or find() would
      // stop short and miss it.
      const std::size_t mask = shard.slots.size() - 1;
      for (std::size_t j = static_cast<std::size_t>(h) & mask; j != i;
           j = (j + 1) & mask) {
        if (shard.used[j] == 0) {
          issues.push_back("record " + rec.mac.to_string() +
                           " unreachable: empty slot inside its probe run");
          break;
        }
      }
    }
    if (occupied != shard.count) {
      issues.push_back("shard " + std::to_string(s) + " count " +
                       std::to_string(shard.count) + " != occupied slots " +
                       std::to_string(occupied));
    }
    total += occupied;
  }
  if (total != size_) {
    issues.push_back("table size " + std::to_string(size_) +
                     " != total occupied slots " + std::to_string(total));
  }
  std::sort(issues.begin(), issues.end());
  return issues;
}

}  // namespace tmg::ctrl
