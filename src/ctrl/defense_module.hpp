// Defense module interface.
//
// Defenses (TopoGuard, SPHINX, TOPOGUARD+) observe controller events and
// may veto state changes. Mirroring Floodlight's module pipeline,
// every hook runs *before* the corresponding state change is committed;
// a Block verdict suppresses the change. Alerts are raised on the
// controller's AlertBus regardless of verdict (paper Sec. IV-B: alerting
// and blocking are independent).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "of/messages.hpp"
#include "sim/time.hpp"
#include "topo/graph.hpp"

namespace tmg::ctrl {

enum class Verdict { Allow, Block };

/// One LLDP propagation observed by link discovery: emitted by the
/// controller at `emitted_at` toward `src`, received back via `dst`.
struct LldpObservation {
  of::Location src;      // (chassis, port) the packet advertises
  of::Location dst;      // (dpid, port) it was received on
  sim::SimTime emitted_at;   // controller-side construction/emission time
  sim::SimTime received_at;  // controller-side receipt time
  /// Estimated switch-link latency: (received - departure timestamp)
  /// minus both control-link one-way delays. Only present when encrypted
  /// timestamps are enabled and decryption succeeded.
  std::optional<sim::Duration> link_latency;
  bool timestamp_present = false;  // TLV present and decryptable
  bool is_new_link = false;        // would create a topology edge
  bool signature_valid = true;     // authenticator check (if enabled)
};

/// A host appearing or moving, as seen by the Host Tracking Service.
struct HostEvent {
  enum class Kind { New, Moved };
  Kind kind = Kind::New;
  net::MacAddress mac;
  net::Ipv4Address ip;
  std::optional<of::Location> old_loc;  // set for Moved
  of::Location new_loc;
  /// Last time the host was seen at old_loc (Moved only). TopoGuard's
  /// migration precondition compares this against Port-Down history.
  sim::SimTime old_last_seen;
};

class DefenseModule {
 public:
  virtual ~DefenseModule() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Every Packet-In, before any service processes it.
  virtual Verdict on_packet_in(const of::PacketIn&) { return Verdict::Allow; }

  /// Every Port-Status (Up/Down).
  virtual void on_port_status(const of::PortStatus&) {}

  /// Every completed LLDP propagation (new link or refresh). Block stops
  /// a new link from being added / an existing one from being refreshed.
  virtual Verdict on_lldp_observation(const LldpObservation&) {
    return Verdict::Allow;
  }

  /// A link timed out / was removed from the topology.
  virtual void on_link_removed(const topo::Link&) {}

  /// A host is about to be (re)bound in the Host Tracking Service.
  virtual Verdict on_host_event(const HostEvent&) { return Verdict::Allow; }

  /// The controller pushed a Flow-Mod to a switch (SPHINX trusts these).
  virtual void on_flow_mod(of::Dpid, const of::FlowMod&) {}

  /// Periodic per-switch flow counters (SPHINX cross-checking).
  virtual void on_flow_stats(const of::FlowStatsReply&) {}

  /// Periodic per-switch port counters (SPHINX link-symmetry checks).
  virtual void on_port_stats(const of::PortStatsReply&) {}

  /// Internal-coherence self-check, polled by the invariant checker's
  /// cache audit (e.g. the LLI's incremental order statistics against
  /// their naive recompute). Returns violation descriptions, sorted;
  /// empty when healthy.
  [[nodiscard]] virtual std::vector<std::string> audit() const { return {}; }
};

}  // namespace tmg::ctrl
