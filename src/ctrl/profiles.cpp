#include "ctrl/profiles.hpp"

namespace tmg::ctrl {

using sim::Duration;

ControllerProfile floodlight_profile() {
  return {"Floodlight", Duration::seconds(15), Duration::seconds(35)};
}

ControllerProfile pox_profile() {
  return {"POX", Duration::seconds(5), Duration::seconds(10)};
}

ControllerProfile opendaylight_profile() {
  return {"OpenDaylight", Duration::seconds(5), Duration::seconds(15)};
}

std::vector<ControllerProfile> all_profiles() {
  return {floodlight_profile(), pox_profile(), opendaylight_profile()};
}

}  // namespace tmg::ctrl
