#include "ctrl/profiles.hpp"

namespace tmg::ctrl {

using sim::Duration;

// Each profile is built by explicit member assignment (not aggregate
// init) so the non-default pipeline knobs read as data — and so the
// tmglint pipeline pass can harvest the per-profile layout overrides
// (`p.layout.<slot> = <value>;`) statically.

ControllerProfile floodlight_profile() {
  ControllerProfile p;
  p.name = "Floodlight";
  p.lldp_interval = Duration::seconds(15);
  p.link_timeout = Duration::seconds(35);
  return p;
}

ControllerProfile pox_profile() {
  ControllerProfile p;
  p.name = "POX";
  p.lldp_interval = Duration::seconds(5);
  p.link_timeout = Duration::seconds(10);
  return p;
}

ControllerProfile opendaylight_profile() {
  ControllerProfile p;
  p.name = "OpenDaylight";
  p.lldp_interval = Duration::seconds(5);
  p.link_timeout = Duration::seconds(15);
  // MD-SAL notification bus: every subscriber sees every message and
  // defense verdicts never suppress a service commit.
  p.discipline = DispatchDiscipline::BroadcastObserve;
  p.layout.verdict_gate = -1;
  return p;
}

ControllerProfile onos_profile() {
  ControllerProfile p;
  p.name = "ONOS";
  p.lldp_interval = Duration::seconds(3);
  p.link_timeout = Duration::seconds(10);
  // HostLocationProvider verifies the old attachment point before
  // rebinding a host (paper Sec. VII countermeasure discussion).
  p.migration = MigrationPolicy::ProbeBeforeMove;
  p.migration_probe_timeout = Duration::millis(300);
  // Event-triggered discovery: LLDP is re-emitted on a port as soon as
  // it reports Up (sOFTDP-style), not only on the periodic round.
  p.probe_on_port_up = true;
  return p;
}

std::vector<ControllerProfile> all_profiles() {
  return {floodlight_profile(), pox_profile(), opendaylight_profile(),
          onos_profile()};
}

std::vector<std::string> profile_cli_names() {
  return {"floodlight", "pox", "opendaylight", "onos"};
}

std::optional<ControllerProfile> profile_by_name(const std::string& name) {
  if (name == "floodlight") return floodlight_profile();
  if (name == "pox") return pox_profile();
  if (name == "opendaylight") return opendaylight_profile();
  if (name == "onos") return onos_profile();
  return std::nullopt;
}

}  // namespace tmg::ctrl
