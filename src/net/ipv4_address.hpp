// IPv4 addresses.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace tmg::net {

class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t v) : value_{v} {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : value_{(static_cast<std::uint32_t>(a) << 24) |
               (static_cast<std::uint32_t>(b) << 16) |
               (static_cast<std::uint32_t>(c) << 8) |
               static_cast<std::uint32_t>(d)} {}

  /// Parse dotted-quad. Returns nullopt on malformed input.
  static std::optional<Ipv4Address> parse(std::string_view s);

  /// Deterministic 10.0.0.x address for host index i (1-based host byte),
  /// matching the paper's figures (10.0.0.1, 10.0.0.2, ...).
  static Ipv4Address host(std::uint32_t index);

  static constexpr Ipv4Address any() { return Ipv4Address{0}; }

  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] bool same_subnet(Ipv4Address other,
                                 std::uint32_t prefix_len = 24) const;

  constexpr auto operator<=>(const Ipv4Address&) const = default;

 private:
  std::uint32_t value_ = 0;
};

}  // namespace tmg::net

template <>
struct std::hash<tmg::net::Ipv4Address> {
  std::size_t operator()(const tmg::net::Ipv4Address& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value());
  }
};
