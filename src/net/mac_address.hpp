// Ethernet MAC addresses.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

namespace tmg::net {

class MacAddress {
 public:
  constexpr MacAddress() = default;
  constexpr explicit MacAddress(std::array<std::uint8_t, 6> b) : bytes_{b} {}

  /// Parse "aa:bb:cc:dd:ee:ff" (case-insensitive). Returns nullopt on
  /// malformed input.
  static std::optional<MacAddress> parse(std::string_view s);

  /// Deterministic address for host index i (locally administered range
  /// 02:00:00:..) — used by scenario builders.
  static MacAddress host(std::uint32_t index);

  /// ff:ff:ff:ff:ff:ff
  static constexpr MacAddress broadcast() {
    return MacAddress{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}};
  }

  /// 01:80:c2:00:00:0e — the LLDP nearest-bridge multicast address.
  static constexpr MacAddress lldp_multicast() {
    return MacAddress{{0x01, 0x80, 0xc2, 0x00, 0x00, 0x0e}};
  }

  /// 01:80:c2:00:00:03 — the 802.1x PAE group address (EAPOL).
  static constexpr MacAddress pae_group() {
    return MacAddress{{0x01, 0x80, 0xc2, 0x00, 0x00, 0x03}};
  }

  [[nodiscard]] constexpr const std::array<std::uint8_t, 6>& bytes() const {
    return bytes_;
  }
  [[nodiscard]] bool is_broadcast() const { return *this == broadcast(); }
  [[nodiscard]] bool is_multicast() const { return (bytes_[0] & 0x01) != 0; }

  /// 01:80:c2:00:00:0X — the bridge-filtered (link-local) group range;
  /// 802.1D bridges never forward these (LLDP, EAPOL, STP, ...).
  [[nodiscard]] bool is_link_local_group() const {
    return bytes_[0] == 0x01 && bytes_[1] == 0x80 && bytes_[2] == 0xc2 &&
           bytes_[3] == 0x00 && bytes_[4] == 0x00 && (bytes_[5] & 0xf0) == 0;
  }

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::uint64_t to_u64() const;

  constexpr auto operator<=>(const MacAddress&) const = default;

 private:
  std::array<std::uint8_t, 6> bytes_{};
};

}  // namespace tmg::net

template <>
struct std::hash<tmg::net::MacAddress> {
  std::size_t operator()(const tmg::net::MacAddress& m) const noexcept {
    return std::hash<std::uint64_t>{}(m.to_u64());
  }
};
