#include "net/lldp.hpp"

#include <cstring>

namespace tmg::net {

namespace {

// TLV type codes (loosely modeled on 802.1AB: type 1 chassis, 2 port,
// 3 TTL, 127 org-specific with a one-byte subtype).
constexpr std::uint8_t kTlvChassis = 1;
constexpr std::uint8_t kTlvPort = 2;
constexpr std::uint8_t kTlvTtl = 3;
constexpr std::uint8_t kTlvOrg = 127;
constexpr std::uint8_t kSubAuth = 0x01;
constexpr std::uint8_t kSubTimestamp = 0x02;

constexpr std::size_t kAuthLen = 16;

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_tlv(std::vector<std::uint8_t>& out, std::uint8_t type,
             std::span<const std::uint8_t> value) {
  out.push_back(type);
  out.push_back(static_cast<std::uint8_t>(value.size()));
  out.insert(out.end(), value.begin(), value.end());
}

struct Reader {
  std::span<const std::uint8_t> data;
  std::size_t pos = 0;

  [[nodiscard]] bool done() const { return pos >= data.size(); }

  bool read_tlv(std::uint8_t& type, std::span<const std::uint8_t>& value) {
    if (pos + 2 > data.size()) return false;
    type = data[pos];
    const std::size_t len = data[pos + 1];
    if (pos + 2 + len > data.size()) return false;
    value = data.subspan(pos + 2, len);
    pos += 2 + len;
    return true;
  }
};

std::uint16_t get_u16(std::span<const std::uint8_t> v) {
  return static_cast<std::uint16_t>((v[0] << 8) | v[1]);
}

std::uint64_t get_u64(std::span<const std::uint8_t> v) {
  std::uint64_t x = 0;
  for (int i = 0; i < 8; ++i) x = (x << 8) | v[static_cast<std::size_t>(i)];
  return x;
}

}  // namespace

std::vector<std::uint8_t> LldpPacket::core_bytes() const {
  std::vector<std::uint8_t> out;
  out.reserve(24);
  {
    std::vector<std::uint8_t> v;
    put_u64(v, chassis_);
    put_tlv(out, kTlvChassis, v);
  }
  {
    std::vector<std::uint8_t> v;
    put_u16(v, port_);
    put_tlv(out, kTlvPort, v);
  }
  {
    std::vector<std::uint8_t> v;
    put_u16(v, ttl_);
    put_tlv(out, kTlvTtl, v);
  }
  return out;
}

void LldpPacket::sign(const crypto::Key& key) {
  auth_ = crypto::truncated_mac(key, core_bytes(), kAuthLen);
}

bool LldpPacket::verify(const crypto::Key& key) const {
  if (auth_.size() != kAuthLen) return false;
  const auto expect = crypto::truncated_mac(key, core_bytes(), kAuthLen);
  // Constant-time compare.
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < kAuthLen; ++i) diff |= auth_[i] ^ expect[i];
  return diff == 0;
}

void LldpPacket::tamper_authenticator() {
  if (auth_.empty()) auth_.assign(kAuthLen, 0);
  auth_[0] ^= 0xff;
}

void LldpPacket::set_encrypted_timestamp(const crypto::XteaKey& key,
                                         std::uint64_t nonce,
                                         sim::SimTime departure) {
  ts_nonce_ = nonce;
  sealed_ts_ = crypto::seal_u64(
      key, nonce, static_cast<std::uint64_t>(departure.count_nanos()));
}

std::optional<sim::SimTime> LldpPacket::decrypt_timestamp(
    const crypto::XteaKey& key) const {
  if (sealed_ts_.empty()) return std::nullopt;
  std::uint64_t v = 0;
  if (!crypto::open_u64(key, ts_nonce_, sealed_ts_, v)) return std::nullopt;
  return sim::SimTime::from_nanos(static_cast<std::int64_t>(v));
}

void LldpPacket::tamper_timestamp() {
  if (sealed_ts_.empty()) sealed_ts_.assign(8, 0);
  sealed_ts_[0] ^= 0xff;
}

std::vector<std::uint8_t> LldpPacket::serialize() const {
  std::vector<std::uint8_t> out = core_bytes();
  if (!auth_.empty()) {
    std::vector<std::uint8_t> v;
    v.push_back(kSubAuth);
    v.insert(v.end(), auth_.begin(), auth_.end());
    put_tlv(out, kTlvOrg, v);
  }
  if (!sealed_ts_.empty()) {
    std::vector<std::uint8_t> v;
    v.push_back(kSubTimestamp);
    put_u64(v, ts_nonce_);
    v.insert(v.end(), sealed_ts_.begin(), sealed_ts_.end());
    put_tlv(out, kTlvOrg, v);
  }
  // End-of-LLDPDU marker.
  out.push_back(0);
  out.push_back(0);
  return out;
}

std::optional<LldpPacket> LldpPacket::parse(
    std::span<const std::uint8_t> bytes) {
  Reader r{bytes};
  LldpPacket pkt;
  bool have_chassis = false, have_port = false, have_ttl = false;
  while (!r.done()) {
    std::uint8_t type = 0;
    std::span<const std::uint8_t> value;
    if (!r.read_tlv(type, value)) return std::nullopt;
    switch (type) {
      case 0:
        // End of LLDPDU.
        if (!(have_chassis && have_port && have_ttl)) return std::nullopt;
        return pkt;
      case kTlvChassis:
        if (value.size() != 8) return std::nullopt;
        pkt.chassis_ = get_u64(value);
        have_chassis = true;
        break;
      case kTlvPort:
        if (value.size() != 2) return std::nullopt;
        pkt.port_ = get_u16(value);
        have_port = true;
        break;
      case kTlvTtl:
        if (value.size() != 2) return std::nullopt;
        pkt.ttl_ = get_u16(value);
        have_ttl = true;
        break;
      case kTlvOrg: {
        if (value.empty()) return std::nullopt;
        const std::uint8_t sub = value[0];
        const auto body = value.subspan(1);
        if (sub == kSubAuth) {
          if (body.size() != kAuthLen) return std::nullopt;
          pkt.auth_.assign(body.begin(), body.end());
        } else if (sub == kSubTimestamp) {
          if (body.size() != 16) return std::nullopt;
          pkt.ts_nonce_ = get_u64(body.first(8));
          pkt.sealed_ts_.assign(body.begin() + 8, body.end());
        }
        // Unknown subtypes are skipped (forward compatibility).
        break;
      }
      default:
        // Unknown TLV types are skipped.
        break;
    }
  }
  return std::nullopt;  // missing end marker
}

}  // namespace tmg::net
