#include "net/ipv4_address.hpp"

#include <cstdio>

namespace tmg::net {

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view s) {
  std::uint32_t parts[4];
  std::size_t idx = 0;
  std::uint32_t cur = 0;
  bool have_digit = false;
  for (char c : s) {
    if (c >= '0' && c <= '9') {
      cur = cur * 10 + static_cast<std::uint32_t>(c - '0');
      if (cur > 255) return std::nullopt;
      have_digit = true;
    } else if (c == '.') {
      if (!have_digit || idx >= 3) return std::nullopt;
      parts[idx++] = cur;
      cur = 0;
      have_digit = false;
    } else {
      return std::nullopt;
    }
  }
  if (!have_digit || idx != 3) return std::nullopt;
  parts[3] = cur;
  return Ipv4Address{static_cast<std::uint8_t>(parts[0]),
                     static_cast<std::uint8_t>(parts[1]),
                     static_cast<std::uint8_t>(parts[2]),
                     static_cast<std::uint8_t>(parts[3])};
}

Ipv4Address Ipv4Address::host(std::uint32_t index) {
  return Ipv4Address{10, 0, static_cast<std::uint8_t>(index >> 8),
                     static_cast<std::uint8_t>(index)};
}

std::string Ipv4Address::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (value_ >> 24) & 0xff,
                (value_ >> 16) & 0xff, (value_ >> 8) & 0xff, value_ & 0xff);
  return buf;
}

bool Ipv4Address::same_subnet(Ipv4Address other,
                              std::uint32_t prefix_len) const {
  if (prefix_len == 0) return true;
  const std::uint32_t mask =
      prefix_len >= 32 ? 0xffffffffu : ~((1u << (32 - prefix_len)) - 1);
  return (value_ & mask) == (other.value_ & mask);
}

}  // namespace tmg::net
