#include "net/mac_address.hpp"

#include <cctype>
#include <cstdio>

namespace tmg::net {

namespace {
std::optional<int> hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return std::nullopt;
}
}  // namespace

std::optional<MacAddress> MacAddress::parse(std::string_view s) {
  // Expect exactly "xx:xx:xx:xx:xx:xx" (17 chars).
  if (s.size() != 17) return std::nullopt;
  std::array<std::uint8_t, 6> b{};
  for (int i = 0; i < 6; ++i) {
    const std::size_t off = static_cast<std::size_t>(i) * 3;
    const auto hi = hex_digit(s[off]);
    const auto lo = hex_digit(s[off + 1]);
    if (!hi || !lo) return std::nullopt;
    if (i < 5 && s[off + 2] != ':') return std::nullopt;
    b[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(*hi << 4 | *lo);
  }
  return MacAddress{b};
}

MacAddress MacAddress::host(std::uint32_t index) {
  return MacAddress{{0x02, 0x00,
                     static_cast<std::uint8_t>(index >> 24),
                     static_cast<std::uint8_t>(index >> 16),
                     static_cast<std::uint8_t>(index >> 8),
                     static_cast<std::uint8_t>(index)}};
}

std::string MacAddress::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", bytes_[0],
                bytes_[1], bytes_[2], bytes_[3], bytes_[4], bytes_[5]);
  return buf;
}

std::uint64_t MacAddress::to_u64() const {
  std::uint64_t v = 0;
  for (std::uint8_t b : bytes_) v = (v << 8) | b;
  return v;
}

}  // namespace tmg::net
