#include "net/packet.hpp"

#include <cstdio>

namespace tmg::net {

namespace {
thread_local std::uint64_t g_next_trace_id = 1;
}  // namespace

std::uint64_t next_trace_id() { return g_next_trace_id++; }

void reset_trace_ids(std::uint64_t next) { g_next_trace_id = next; }

std::string TcpFlags::to_string() const {
  std::string s;
  if (syn) s += 'S';
  if (ack) s += 'A';
  if (rst) s += 'R';
  if (fin) s += 'F';
  return s.empty() ? "-" : s;
}

std::size_t Packet::wire_size() const {
  constexpr std::size_t kEthHeader = 14;
  constexpr std::size_t kIpHeader = 20;
  std::size_t sz = kEthHeader;
  if (ip) sz += kIpHeader;
  struct Visitor {
    std::size_t operator()(std::monostate) const { return 0; }
    std::size_t operator()(const ArpPayload&) const { return 28; }
    std::size_t operator()(const IcmpPayload&) const { return 8; }
    std::size_t operator()(const TcpPayload& t) const {
      return 20 + t.data_len;
    }
    std::size_t operator()(const LldpPacket& l) const {
      return l.serialize().size();
    }
    std::size_t operator()(const RawPayload& r) const { return r.size; }
  };
  sz += std::visit(Visitor{}, payload);
  return sz < 64 ? 64 : sz;  // Ethernet minimum frame
}

std::string Packet::describe() const {
  char buf[192];
  if (const auto* a = arp()) {
    std::snprintf(buf, sizeof buf, "ARP %s %s(%s) -> %s",
                  a->op == ArpPayload::Op::Request ? "who-has" : "is-at",
                  a->sender_ip.to_string().c_str(),
                  a->sender_mac.to_string().c_str(),
                  a->target_ip.to_string().c_str());
  } else if (const auto* i = icmp()) {
    std::snprintf(buf, sizeof buf, "ICMP %s id=%u seq=%u %s -> %s",
                  i->type == IcmpPayload::Type::EchoRequest ? "echo-req"
                                                            : "echo-rep",
                  i->ident, i->seq,
                  ip ? ip->src.to_string().c_str() : "?",
                  ip ? ip->dst.to_string().c_str() : "?");
  } else if (const auto* t = tcp()) {
    std::snprintf(buf, sizeof buf, "TCP [%s] %s:%u -> %s:%u len=%zu",
                  t->flags.to_string().c_str(),
                  ip ? ip->src.to_string().c_str() : "?", t->src_port,
                  ip ? ip->dst.to_string().c_str() : "?", t->dst_port,
                  t->data_len);
  } else if (const auto* l = lldp()) {
    std::snprintf(buf, sizeof buf, "LLDP chassis=0x%llx port=%u%s%s",
                  static_cast<unsigned long long>(l->chassis_id()),
                  l->port_id(), l->has_authenticator() ? " auth" : "",
                  l->has_timestamp() ? " ts" : "");
  } else if (const auto* r = raw()) {
    std::snprintf(buf, sizeof buf, "RAW %s len=%zu %s -> %s", r->label.c_str(),
                  r->size, ip ? ip->src.to_string().c_str() : "?",
                  ip ? ip->dst.to_string().c_str() : "?");
  } else {
    std::snprintf(buf, sizeof buf, "ETH %s -> %s",
                  src_mac.to_string().c_str(), dst_mac.to_string().c_str());
  }
  return buf;
}

Packet make_arp_request(MacAddress sender_mac, Ipv4Address sender_ip,
                        Ipv4Address target_ip) {
  Packet p;
  p.trace_id = next_trace_id();
  p.src_mac = sender_mac;
  p.dst_mac = MacAddress::broadcast();
  p.ethertype = EtherType::Arp;
  p.payload = ArpPayload{ArpPayload::Op::Request, sender_mac, sender_ip,
                         MacAddress{}, target_ip};
  return p;
}

Packet make_arp_reply(MacAddress sender_mac, Ipv4Address sender_ip,
                      MacAddress target_mac, Ipv4Address target_ip) {
  Packet p;
  p.trace_id = next_trace_id();
  p.src_mac = sender_mac;
  p.dst_mac = target_mac;
  p.ethertype = EtherType::Arp;
  p.payload = ArpPayload{ArpPayload::Op::Reply, sender_mac, sender_ip,
                         target_mac, target_ip};
  return p;
}

Packet make_icmp_echo(MacAddress src_mac, Ipv4Address src_ip,
                      MacAddress dst_mac, Ipv4Address dst_ip,
                      std::uint16_t ident, std::uint16_t seq, bool reply) {
  Packet p;
  p.trace_id = next_trace_id();
  p.src_mac = src_mac;
  p.dst_mac = dst_mac;
  p.ethertype = EtherType::Ipv4;
  p.ip = Ipv4Header{src_ip, dst_ip, 0, IpProto::Icmp, 64};
  p.payload = IcmpPayload{reply ? IcmpPayload::Type::EchoReply
                                : IcmpPayload::Type::EchoRequest,
                          ident, seq};
  return p;
}

Packet make_tcp(MacAddress src_mac, Ipv4Address src_ip, MacAddress dst_mac,
                Ipv4Address dst_ip, std::uint16_t src_port,
                std::uint16_t dst_port, TcpFlags flags, std::size_t data_len) {
  Packet p;
  p.trace_id = next_trace_id();
  p.src_mac = src_mac;
  p.dst_mac = dst_mac;
  p.ethertype = EtherType::Ipv4;
  p.ip = Ipv4Header{src_ip, dst_ip, 0, IpProto::Tcp, 64};
  p.payload = TcpPayload{src_port, dst_port, flags, 0, 0, data_len};
  return p;
}

Packet make_lldp_frame(MacAddress src_mac, LldpPacket lldp) {
  Packet p;
  p.trace_id = next_trace_id();
  p.src_mac = src_mac;
  p.dst_mac = MacAddress::lldp_multicast();
  p.ethertype = EtherType::Lldp;
  p.payload = std::move(lldp);
  return p;
}

Packet make_raw(MacAddress src_mac, Ipv4Address src_ip, MacAddress dst_mac,
                Ipv4Address dst_ip, std::string label, std::size_t size) {
  Packet p;
  p.trace_id = next_trace_id();
  p.src_mac = src_mac;
  p.dst_mac = dst_mac;
  p.ethertype = EtherType::Ipv4;
  p.ip = Ipv4Header{src_ip, dst_ip, 0, IpProto::Udp, 64};
  p.payload = RawPayload{std::move(label), size, {}};
  return p;
}

const char* auth_frame_label() { return "802.1x-auth"; }

Packet make_auth_frame(MacAddress src_mac, Ipv4Address src_ip,
                       std::uint64_t token) {
  Packet p = make_raw(src_mac, src_ip, MacAddress::pae_group(),
                      Ipv4Address::any(), auth_frame_label(), 64);
  auto& bytes = std::get<RawPayload>(p.payload).bytes;
  bytes.resize(8);
  for (int i = 0; i < 8; ++i) {
    bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(token >> (56 - 8 * i));
  }
  return p;
}

std::optional<std::uint64_t> auth_token_of(const Packet& pkt) {
  const auto* raw = pkt.raw();
  if (!raw || raw->label != auth_frame_label() || raw->bytes.size() != 8) {
    return std::nullopt;
  }
  std::uint64_t token = 0;
  for (std::uint8_t b : raw->bytes) token = (token << 8) | b;
  return token;
}

}  // namespace tmg::net
