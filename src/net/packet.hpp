// Dataplane packet model.
//
// Frames carry an Ethernet header, an optional IPv4 header, and a typed
// payload. The model is event-level, not byte-level, except for LLDP
// (which is byte-serialized so authentication is real). The IPv4 `ident`
// field is modeled because the TCP idle scan's side channel depends on
// observing a zombie's IP-ID sequence.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "net/ipv4_address.hpp"
#include "net/lldp.hpp"
#include "net/mac_address.hpp"

namespace tmg::net {

enum class EtherType : std::uint16_t {
  Ipv4 = 0x0800,
  Arp = 0x0806,
  Lldp = 0x88cc,
};

enum class IpProto : std::uint8_t {
  Icmp = 1,
  Tcp = 6,
  Udp = 17,
};

struct ArpPayload {
  enum class Op { Request, Reply };
  Op op = Op::Request;
  MacAddress sender_mac;
  Ipv4Address sender_ip;
  MacAddress target_mac;  // zero for requests
  Ipv4Address target_ip;
};

struct IcmpPayload {
  enum class Type { EchoRequest, EchoReply };
  Type type = Type::EchoRequest;
  std::uint16_t ident = 0;
  std::uint16_t seq = 0;
};

struct TcpFlags {
  bool syn = false;
  bool ack = false;
  bool rst = false;
  bool fin = false;

  [[nodiscard]] std::string to_string() const;
  bool operator==(const TcpFlags&) const = default;
};

struct TcpPayload {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  TcpFlags flags;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::size_t data_len = 0;  // application bytes carried (0 for bare scans)
};

/// Generic application traffic (HTTP, DNS, ...) abstracted as a label +
/// size; enough to drive Packet-In learning, flow counters and SPHINX.
/// `bytes` optionally carries opaque application data (e.g. a covertly
/// encapsulated LLDP frame during an in-band relay attack).
struct RawPayload {
  std::string label;
  std::size_t size = 0;
  std::vector<std::uint8_t> bytes;
};

struct Ipv4Header {
  Ipv4Address src;
  Ipv4Address dst;
  std::uint16_t ident = 0;  // IP-ID (idle-scan side channel)
  IpProto protocol = IpProto::Icmp;
  std::uint8_t ttl = 64;
};

using Payload = std::variant<std::monostate, ArpPayload, IcmpPayload,
                             TcpPayload, LldpPacket, RawPayload>;

struct Packet {
  std::uint64_t trace_id = 0;  // unique per constructed packet
  MacAddress src_mac;
  MacAddress dst_mac;
  EtherType ethertype = EtherType::Ipv4;
  std::optional<Ipv4Header> ip;
  Payload payload;

  [[nodiscard]] bool is_lldp() const {
    return ethertype == EtherType::Lldp;
  }
  [[nodiscard]] const LldpPacket* lldp() const {
    return std::get_if<LldpPacket>(&payload);
  }
  [[nodiscard]] const ArpPayload* arp() const {
    return std::get_if<ArpPayload>(&payload);
  }
  [[nodiscard]] const IcmpPayload* icmp() const {
    return std::get_if<IcmpPayload>(&payload);
  }
  [[nodiscard]] const TcpPayload* tcp() const {
    return std::get_if<TcpPayload>(&payload);
  }
  [[nodiscard]] const RawPayload* raw() const {
    return std::get_if<RawPayload>(&payload);
  }

  /// Approximate on-wire size, for switch byte counters.
  [[nodiscard]] std::size_t wire_size() const;

  /// One-line rendering for traces and alert details.
  [[nodiscard]] std::string describe() const;
};

/// Monotone trace-id source. Thread-local: each worker thread (and so
/// each trial, which runs entirely on one thread) gets its own stream.
std::uint64_t next_trace_id();

/// Reset this thread's trace-id counter so the next packet gets id
/// `next`. The TrialRunner calls this before every trial, making a
/// trial's trace ids independent of whatever ran earlier on the thread
/// (the `--jobs N` == `--jobs 1` byte-identity contract).
void reset_trace_ids(std::uint64_t next = 1);

// ---- Constructors for the common packet shapes ----

Packet make_arp_request(MacAddress sender_mac, Ipv4Address sender_ip,
                        Ipv4Address target_ip);
Packet make_arp_reply(MacAddress sender_mac, Ipv4Address sender_ip,
                      MacAddress target_mac, Ipv4Address target_ip);
Packet make_icmp_echo(MacAddress src_mac, Ipv4Address src_ip,
                      MacAddress dst_mac, Ipv4Address dst_ip,
                      std::uint16_t ident, std::uint16_t seq,
                      bool reply = false);
Packet make_tcp(MacAddress src_mac, Ipv4Address src_ip, MacAddress dst_mac,
                Ipv4Address dst_ip, std::uint16_t src_port,
                std::uint16_t dst_port, TcpFlags flags,
                std::size_t data_len = 0);
Packet make_lldp_frame(MacAddress src_mac, LldpPacket lldp);
Packet make_raw(MacAddress src_mac, Ipv4Address src_ip, MacAddress dst_mac,
                Ipv4Address dst_ip, std::string label, std::size_t size);

// ---- 802.1x-style authentication frames (EAPOL surrogate) ----

/// Label carried by authentication frames.
const char* auth_frame_label();

/// Build an authentication frame carrying `token` toward the PAE group
/// address (link-local: bridges/controllers consume it, never forward).
Packet make_auth_frame(MacAddress src_mac, Ipv4Address src_ip,
                       std::uint64_t token);

/// Extract the credential token, or nullopt if `pkt` is not a
/// well-formed authentication frame.
std::optional<std::uint64_t> auth_token_of(const Packet& pkt);

}  // namespace tmg::net
