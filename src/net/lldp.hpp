// Link Layer Discovery Protocol packets.
//
// The controller's link-discovery service crafts LLDP packets carrying
// the emitting switch's DPID and port. TopoGuard adds an HMAC
// authenticator TLV; TOPOGUARD+ adds an encrypted departure-timestamp
// TLV (paper Sec. VI-D). Packets are (de)serialized to bytes so the
// cryptographic operations run over real wire content.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "crypto/hmac.hpp"
#include "crypto/xtea.hpp"
#include "sim/time.hpp"

namespace tmg::net {

/// Switch datapath identifier.
using Dpid = std::uint64_t;
/// Switch-local port number (1-based; 0 is reserved).
using PortNo = std::uint16_t;

class LldpPacket {
 public:
  LldpPacket() = default;
  LldpPacket(Dpid chassis, PortNo port, std::uint16_t ttl_seconds = 120)
      : chassis_{chassis}, port_{port}, ttl_{ttl_seconds} {}

  [[nodiscard]] Dpid chassis_id() const { return chassis_; }
  [[nodiscard]] PortNo port_id() const { return port_; }
  [[nodiscard]] std::uint16_t ttl() const { return ttl_; }

  // --- Authenticator TLV (TopoGuard) ---

  /// Sign the core TLVs (chassis/port/ttl) with a truncated HMAC-SHA256.
  void sign(const crypto::Key& key);

  /// Verify the authenticator. False if absent or mismatched.
  [[nodiscard]] bool verify(const crypto::Key& key) const;

  [[nodiscard]] bool has_authenticator() const { return !auth_.empty(); }

  /// Corrupt the authenticator (attack modeling / negative tests).
  void tamper_authenticator();

  // --- Encrypted timestamp TLV (TOPOGUARD+ LLI) ---

  /// Seal the departure time under the controller's key. `nonce` must be
  /// unique per packet.
  void set_encrypted_timestamp(const crypto::XteaKey& key,
                               std::uint64_t nonce, sim::SimTime departure);

  /// Decrypt the departure timestamp. nullopt if the TLV is absent.
  [[nodiscard]] std::optional<sim::SimTime> decrypt_timestamp(
      const crypto::XteaKey& key) const;

  [[nodiscard]] bool has_timestamp() const { return !sealed_ts_.empty(); }

  /// Overwrite the sealed timestamp bytes (attacker tampering; the value
  /// decrypts to garbage, which the LLI flags as an implausible latency).
  void tamper_timestamp();

  // --- Wire format ---

  /// Serialize the full packet (core + present optional TLVs).
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Parse from bytes. nullopt on malformed input.
  static std::optional<LldpPacket> parse(std::span<const std::uint8_t> bytes);

  bool operator==(const LldpPacket&) const = default;

 private:
  /// The byte string covered by the authenticator.
  [[nodiscard]] std::vector<std::uint8_t> core_bytes() const;

  Dpid chassis_ = 0;
  PortNo port_ = 0;
  std::uint16_t ttl_ = 120;
  std::vector<std::uint8_t> auth_;        // truncated HMAC (16 bytes)
  std::uint64_t ts_nonce_ = 0;            // CTR nonce for the sealed ts
  std::vector<std::uint8_t> sealed_ts_;   // 8 bytes XTEA-CTR ciphertext
};

}  // namespace tmg::net
