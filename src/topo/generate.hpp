// Deterministic fleet-scale topology generators (DESIGN.md §12).
//
// Three families cover the shapes the paper's attacks care about:
//
//   fat-tree(k)   — the canonical data-center fabric: k pods, k²/4 core
//                   + k²/2 aggregation + k²/2 edge switches, k³/4 host
//                   ports. k=4..32 spans 20 switches/16 hosts up to
//                   1,280 switches/8,192 hosts.
//   leaf-spine    — two-tier Clos: every leaf uplinks to every spine;
//                   host capacity = leaves × hosts_per_leaf, which
//                   scales to millions of attachment records without
//                   changing the switch fabric.
//   isp           — a seeded Waxman/Barabási–Albert hybrid: a
//                   preferential-attachment spanning tree (guaranteed
//                   connectivity) plus distance-decayed Waxman shortcut
//                   edges. The irregular degree distribution is what
//                   distinguishes wide-area topologies from Clos math.
//
// Output is a pure function of the config — the same (family, size,
// seed) always yields byte-identical wiring, dpid assignment, and host
// attachment order, on every platform (sim::Rng is xoshiro256**, not
// std::*_distribution). tests/generate_test.cpp pins this.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/ipv4_address.hpp"
#include "net/mac_address.hpp"
#include "topo/graph.hpp"

namespace tmg::topo {

enum class TopoFamily : std::uint8_t { FatTree, LeafSpine, Isp };

[[nodiscard]] const char* to_string(TopoFamily family);

struct GeneratorConfig {
  TopoFamily family = TopoFamily::FatTree;

  /// Fat-tree arity. Must be even, 4..32.
  int k = 4;

  /// Leaf-spine dimensions.
  int leaves = 4;
  int spines = 2;
  int hosts_per_leaf = 8;

  /// ISP dimensions. alpha scales overall shortcut density, beta the
  /// distance decay (classic Waxman parameters on a unit square).
  int isp_switches = 64;
  int hosts_per_isp_switch = 4;
  double waxman_alpha = 0.4;
  double waxman_beta = 0.2;
  /// Seed for the ISP family's random structure (ignored by the two
  /// deterministic Clos families).
  std::uint64_t seed = 0;
};

/// Where host #i plugs into the fabric. Identity (MAC/IP) is derived
/// from the index alone — see fleet_mac / fleet_ip.
struct HostAttachment {
  Dpid dpid = 0;
  PortNo port = 0;
};

struct GeneratedTopology {
  GeneratorConfig config;
  std::string family;

  /// Inter-switch fabric only; host edge ports are NOT links here, so
  /// is_switch_port() correctly classifies them as host-facing.
  TopologyGraph graph;

  /// Switch dpids grouped into levels, top of the fabric first
  /// (fat-tree: core/aggregation/edge; leaf-spine: spine/leaf;
  /// isp: a single "backbone" tier). Parallel to tier_names.
  std::vector<std::vector<Dpid>> tiers;
  std::vector<std::string> tier_names;

  /// Host attachment points in host-index order.
  std::vector<HostAttachment> hosts;

  [[nodiscard]] std::size_t switch_count() const {
    std::size_t n = 0;
    for (const auto& t : tiers) n += t.size();
    return n;
  }
  [[nodiscard]] std::size_t host_count() const { return hosts.size(); }
};

/// Build the topology described by `cfg`. Pure: no global state, no
/// wall clock; same config -> identical result. Invalid dimensions
/// (odd/out-of-range fat-tree k, non-positive counts) fail a TMG_ASSERT.
[[nodiscard]] GeneratedTopology generate(const GeneratorConfig& cfg);

/// Identity of generated host #index (0-based): locally administered
/// MAC and a 10.0.0.0/8 address with a 24-bit host part, so fleets of
/// millions keep unique identities (net::Ipv4Address::host covers only
/// the paper-size 16-bit range).
[[nodiscard]] net::MacAddress fleet_mac(std::uint32_t index);
[[nodiscard]] net::Ipv4Address fleet_ip(std::uint32_t index);

}  // namespace tmg::topo
