#include "topo/path_cache.hpp"

#include <algorithm>

#include "sim/fastpath.hpp"

namespace tmg::topo {

namespace {

bool same_path(
    const std::optional<std::vector<TopologyGraph::Traversal>>& a,
    const std::optional<std::vector<TopologyGraph::Traversal>>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a.has_value()) return true;
  if (a->size() != b->size()) return false;
  for (std::size_t i = 0; i < a->size(); ++i) {
    if (!((*a)[i].from == (*b)[i].from && (*a)[i].to == (*b)[i].to)) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::optional<std::vector<TopologyGraph::Traversal>> PathCache::path(
    Dpid from, Dpid to) {
  if (!sim::fastpath_enabled()) return graph_.path(from, to);
  if (epoch_ != graph_.epoch()) {
    // Topology changed since the entries were computed (possibly by a
    // fabricated link): nothing stored may be served.
    entries_.clear();
    epoch_ = graph_.epoch();
  }
  const Key key{from, to};
  if (const auto it = entries_.find(key); it != entries_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  auto result = graph_.path(from, to);
  entries_.emplace(key, result);
  return result;
}

void PathCache::clear() {
  entries_.clear();
  hits_ = 0;
  misses_ = 0;
}

std::vector<std::string> PathCache::audit() const {
  std::vector<std::string> issues;
  if (epoch_ != graph_.epoch() || entries_.empty()) return issues;
  // determinism-lint: allow(unordered-iter) issues are sorted below
  for (const auto& [key, cached] : entries_) {
    const auto fresh = graph_.path(key.from, key.to);
    if (!same_path(cached, fresh)) {
      issues.push_back("path cache entry (" + std::to_string(key.from) +
                       " -> " + std::to_string(key.to) +
                       ") diverges from fresh BFS at epoch " +
                       std::to_string(epoch_));
    }
  }
  std::sort(issues.begin(), issues.end());
  return issues;
}

}  // namespace tmg::topo
