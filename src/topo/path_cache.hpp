// Epoch-keyed memoization of TopologyGraph::path().
//
// The controller's routing service answers every unicast packet-in with
// a shortest path between two switches. In steady state the topology is
// static, so the BFS answer for a (src, dst) pair cannot change between
// link events — exactly the memoization production controllers apply.
// Correctness hinges on invalidation: a fabricated link (the paper's
// link-fabrication attack) or a removed one MUST change routing
// immediately. We get that for free by keying every cache entry on
// TopologyGraph::epoch(): any successful add_link/remove_link/clear
// bumps the epoch, so a lookup after tampering misses and re-runs BFS
// against the poisoned graph. A stale path can never be served because
// an entry is only ever returned when its stored epoch equals the
// graph's current epoch.
//
// With the fast path disabled (sim::fastpath_enabled() == false) every
// lookup falls through to a fresh BFS, giving a bit-identical reference
// run for the cross-check gate.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "topo/graph.hpp"

namespace tmg::topo {

class PathCache {
 public:
  explicit PathCache(const TopologyGraph& graph) : graph_{graph} {}

  /// Same contract as TopologyGraph::path(). Serves a memoized traversal
  /// list when one exists for the current topology epoch; otherwise runs
  /// BFS and stores the result (including "unreachable").
  [[nodiscard]] std::optional<std::vector<TopologyGraph::Traversal>> path(
      Dpid from, Dpid to);

  /// Entries stored for the current epoch (stale ones are purged lazily).
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }

  void clear();

  /// Coherence audit: re-runs BFS for every cached pair and reports any
  /// entry whose stored answer differs from the fresh computation.
  /// Returns a deterministic sorted list of violations (empty = healthy).
  /// Wired into check::InvariantChecker's cache audit.
  [[nodiscard]] std::vector<std::string> audit() const;

 private:
  struct Key {
    Dpid from;
    Dpid to;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      return std::hash<std::uint64_t>{}((k.from << 20) ^ k.to);
    }
  };

  const TopologyGraph& graph_;
  std::uint64_t epoch_ = 0;  // epoch the stored entries were computed at
  std::unordered_map<Key, std::optional<std::vector<TopologyGraph::Traversal>>,
                     KeyHash>
      entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace tmg::topo
