#include "topo/generate.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "check/assert.hpp"
#include "sim/rng.hpp"

namespace tmg::topo {
namespace {

// Fat-tree(k): dpids are assigned level-major so structural position is
// readable from the number alone: cores first, then aggregation
// (pod-major), then edge (pod-major), all 1-based.
GeneratedTopology generate_fat_tree(const GeneratorConfig& cfg) {
  const int k = cfg.k;
  TMG_ASSERT(k >= 4 && k <= 32 && k % 2 == 0,
             "fat-tree k must be even and in [4, 32]");
  const int half = k / 2;
  const int n_core = half * half;
  const int n_pod_sw = half;  // per level, per pod

  GeneratedTopology out;
  out.config = cfg;
  out.family = to_string(TopoFamily::FatTree);
  out.tier_names = {"core", "aggregation", "edge"};
  out.tiers.resize(3);

  const auto core_dpid = [&](int c) { return static_cast<Dpid>(1 + c); };
  const auto agg_dpid = [&](int pod, int j) {
    return static_cast<Dpid>(1 + n_core + pod * n_pod_sw + j);
  };
  const auto edge_dpid = [&](int pod, int i) {
    return static_cast<Dpid>(1 + n_core + k * n_pod_sw + pod * n_pod_sw + i);
  };

  for (int c = 0; c < n_core; ++c) out.tiers[0].push_back(core_dpid(c));
  for (int pod = 0; pod < k; ++pod)
    for (int j = 0; j < n_pod_sw; ++j) out.tiers[1].push_back(agg_dpid(pod, j));
  for (int pod = 0; pod < k; ++pod)
    for (int i = 0; i < n_pod_sw; ++i)
      out.tiers[2].push_back(edge_dpid(pod, i));

  // Edge i <-> every aggregation j in the same pod.
  //   edge uplink ports: 1..k/2 (port j+1 to agg j)
  //   agg  downlink ports: 1..k/2 (port i+1 to edge i)
  for (int pod = 0; pod < k; ++pod) {
    for (int i = 0; i < n_pod_sw; ++i) {
      for (int j = 0; j < n_pod_sw; ++j) {
        out.graph.add_link(
            Location{edge_dpid(pod, i), static_cast<PortNo>(1 + j)},
            Location{agg_dpid(pod, j), static_cast<PortNo>(1 + i)});
      }
    }
  }
  // Aggregation j <-> core group j: agg j of every pod uplinks to cores
  // [j*k/2, (j+1)*k/2) on ports k/2+1..k; core c reaches pod p on port
  // p+1.
  for (int pod = 0; pod < k; ++pod) {
    for (int j = 0; j < n_pod_sw; ++j) {
      for (int c = 0; c < n_pod_sw; ++c) {
        out.graph.add_link(
            Location{agg_dpid(pod, j), static_cast<PortNo>(half + 1 + c)},
            Location{core_dpid(j * half + c),
                     static_cast<PortNo>(1 + pod)});
      }
    }
  }
  // Hosts: each edge switch serves k/2 hosts on ports k/2+1..k,
  // edge-major then port-major, so host index -> attachment is a pure
  // address computation.
  out.hosts.reserve(static_cast<std::size_t>(k) * n_pod_sw * n_pod_sw);
  for (int pod = 0; pod < k; ++pod) {
    for (int i = 0; i < n_pod_sw; ++i) {
      for (int h = 0; h < half; ++h) {
        out.hosts.push_back(HostAttachment{
            edge_dpid(pod, i), static_cast<PortNo>(half + 1 + h)});
      }
    }
  }
  return out;
}

GeneratedTopology generate_leaf_spine(const GeneratorConfig& cfg) {
  const int spines = cfg.spines;
  const int leaves = cfg.leaves;
  const int hosts_per_leaf = cfg.hosts_per_leaf;
  TMG_ASSERT(spines >= 1 && leaves >= 1 && hosts_per_leaf >= 0,
             "leaf-spine dimensions must be positive");

  GeneratedTopology out;
  out.config = cfg;
  out.family = to_string(TopoFamily::LeafSpine);
  out.tier_names = {"spine", "leaf"};
  out.tiers.resize(2);

  const auto spine_dpid = [&](int s) { return static_cast<Dpid>(1 + s); };
  const auto leaf_dpid = [&](int l) {
    return static_cast<Dpid>(1 + spines + l);
  };
  for (int s = 0; s < spines; ++s) out.tiers[0].push_back(spine_dpid(s));
  for (int l = 0; l < leaves; ++l) out.tiers[1].push_back(leaf_dpid(l));

  // Full bipartite fabric: leaf l port s+1 <-> spine s port l+1.
  for (int l = 0; l < leaves; ++l) {
    for (int s = 0; s < spines; ++s) {
      out.graph.add_link(Location{leaf_dpid(l), static_cast<PortNo>(1 + s)},
                         Location{spine_dpid(s), static_cast<PortNo>(1 + l)});
    }
  }
  // Hosts fill leaf ports spines+1 .. spines+hosts_per_leaf, leaf-major.
  out.hosts.reserve(static_cast<std::size_t>(leaves) * hosts_per_leaf);
  for (int l = 0; l < leaves; ++l) {
    for (int h = 0; h < hosts_per_leaf; ++h) {
      out.hosts.push_back(HostAttachment{
          leaf_dpid(l), static_cast<PortNo>(spines + 1 + h)});
    }
  }
  return out;
}

// ISP-like: a preferential-attachment spanning tree (every new switch
// wires to an existing one picked with probability proportional to
// degree+1 — the Barabási–Albert rich-get-richer kernel) guarantees one
// connected component; Waxman shortcut edges
// P(i,j) = alpha * exp(-dist / (beta * sqrt(2))) layered on top give
// the distance-local mesh structure of real backbone maps. All draws
// come from one seeded sim::Rng in a fixed order, so the wiring is a
// pure function of (switches, alpha, beta, seed).
GeneratedTopology generate_isp(const GeneratorConfig& cfg) {
  const int n = cfg.isp_switches;
  TMG_ASSERT(n >= 2, "isp topology needs at least 2 switches");
  TMG_ASSERT(cfg.hosts_per_isp_switch >= 0,
             "hosts_per_isp_switch must be non-negative");

  GeneratedTopology out;
  out.config = cfg;
  out.family = to_string(TopoFamily::Isp);
  out.tier_names = {"backbone"};
  out.tiers.resize(1);
  for (int i = 0; i < n; ++i)
    out.tiers[0].push_back(static_cast<Dpid>(1 + i));

  sim::Rng rng(cfg.seed);
  std::vector<double> xs(static_cast<std::size_t>(n));
  std::vector<double> ys(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    xs[static_cast<std::size_t>(i)] = rng.uniform01();
    ys[static_cast<std::size_t>(i)] = rng.uniform01();
  }

  // Ports are consumed in edge-creation order, one counter per switch;
  // `nbrs` mirrors switch-level adjacency for the shortcut dedup (the
  // graph itself keys links by port pairs, not switch pairs).
  std::vector<PortNo> next_port(static_cast<std::size_t>(n), 1);
  std::vector<std::vector<int>> nbrs(static_cast<std::size_t>(n));
  const auto adjacent = [&](int i, int j) {
    const std::vector<int>& v = nbrs[static_cast<std::size_t>(i)];
    return std::find(v.begin(), v.end(), j) != v.end();
  };
  const auto wire = [&](int i, int j) {
    const Location a{static_cast<Dpid>(1 + i),
                     next_port[static_cast<std::size_t>(i)]};
    const Location b{static_cast<Dpid>(1 + j),
                     next_port[static_cast<std::size_t>(j)]};
    out.graph.add_link(a, b);
    ++next_port[static_cast<std::size_t>(i)];
    ++next_port[static_cast<std::size_t>(j)];
    nbrs[static_cast<std::size_t>(i)].push_back(j);
    nbrs[static_cast<std::size_t>(j)].push_back(i);
  };

  // Spanning tree: endpoint multiset realizes degree-proportional
  // selection without a weighted scan.
  std::vector<int> endpoints;
  endpoints.reserve(static_cast<std::size_t>(n) * 4);
  endpoints.push_back(0);
  for (int i = 1; i < n; ++i) {
    const int target = endpoints[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(endpoints.size()) - 1))];
    wire(i, target);
    endpoints.push_back(target);
    endpoints.push_back(i);
  }
  // Waxman shortcuts over all pairs in deterministic (i, j) order.
  const double max_dist = std::sqrt(2.0);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double dx = xs[static_cast<std::size_t>(i)] -
                        xs[static_cast<std::size_t>(j)];
      const double dy = ys[static_cast<std::size_t>(i)] -
                        ys[static_cast<std::size_t>(j)];
      const double dist = std::sqrt(dx * dx + dy * dy);
      const double p =
          cfg.waxman_alpha * std::exp(-dist / (cfg.waxman_beta * max_dist));
      // The draw happens for every pair regardless of whether the edge
      // already exists, so the stream position — and thus every later
      // edge — depends only on the pair index, not on tree shape.
      const bool add = rng.chance(p);
      if (add && !adjacent(i, j)) wire(i, j);
    }
  }
  // Hosts: hosts_per_isp_switch access ports per switch, switch-major,
  // numbered after that switch's final fabric port.
  out.hosts.reserve(static_cast<std::size_t>(n) * cfg.hosts_per_isp_switch);
  for (int i = 0; i < n; ++i) {
    for (int h = 0; h < cfg.hosts_per_isp_switch; ++h) {
      out.hosts.push_back(HostAttachment{
          static_cast<Dpid>(1 + i),
          static_cast<PortNo>(next_port[static_cast<std::size_t>(i)] + h)});
    }
  }
  return out;
}

}  // namespace

const char* to_string(TopoFamily family) {
  switch (family) {
    case TopoFamily::FatTree:
      return "fat-tree";
    case TopoFamily::LeafSpine:
      return "leaf-spine";
    case TopoFamily::Isp:
      return "isp";
  }
  return "?";
}

GeneratedTopology generate(const GeneratorConfig& cfg) {
  switch (cfg.family) {
    case TopoFamily::FatTree:
      return generate_fat_tree(cfg);
    case TopoFamily::LeafSpine:
      return generate_leaf_spine(cfg);
    case TopoFamily::Isp:
      return generate_isp(cfg);
  }
  TMG_ASSERT(false, "unknown topology family");
  return {};
}

net::MacAddress fleet_mac(std::uint32_t index) {
  return net::MacAddress::host(index + 1);
}

net::Ipv4Address fleet_ip(std::uint32_t index) {
  // 10.a.b.c with a 24-bit host part: room for 16M unique addresses.
  return net::Ipv4Address{(10u << 24) | ((index + 1) & 0x00ff'ffffu)};
}

}  // namespace tmg::topo
