// Controller-side topology graph.
//
// Vertices are switch DPIDs; edges are inter-switch links keyed by their
// two (dpid, port) endpoints. This is exactly the state the paper's
// link-fabrication attacks poison: a relayed LLDP packet manufactures an
// edge here that has no physical counterpart.
//
// Fleet-scale layout (DESIGN.md §12): DPIDs are interned into a
// contiguous index space on first sight, and adjacency lives in flat
// per-index vectors instead of per-dpid hash buckets. BFS runs over the
// interned indices with stamp-recycled scratch arrays, so a shortest
// path on a 1k-switch fat-tree allocates nothing in steady state. The
// traversal order (per-switch adjacency in insertion order, FIFO
// frontier) is bit-identical to the original hash-bucket
// implementation, so every paper-size result is unchanged.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "of/messages.hpp"

namespace tmg::topo {

using of::Dpid;
using of::Location;
using of::PortNo;

/// Undirected inter-switch link; endpoints stored in canonical order.
struct Link {
  Location a;
  Location b;

  Link() = default;
  Link(Location x, Location y);

  auto operator<=>(const Link&) const = default;
  [[nodiscard]] std::string to_string() const;
};

class TopologyGraph {
 public:
  /// Insert a link. Returns true if it was new.
  bool add_link(Location x, Location y);

  /// Remove a link. Returns true if it existed.
  bool remove_link(Location x, Location y);

  /// Monotonically increasing mutation counter: bumped by every
  /// successful add_link / remove_link and by clear(). Any structure
  /// memoizing a function of the link set (e.g. topo::PathCache, the
  /// links_view() cache) keys its entries on this epoch, so a
  /// fabricated or removed link — the very state the paper's attacks
  /// poison — invalidates every cached answer by construction.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  [[nodiscard]] bool has_link(Location x, Location y) const;

  /// True if this (dpid, port) is an endpoint of any known link (i.e. a
  /// switch-internal port; host tracking ignores traffic from such ports).
  /// O(log degree): binary search in the switch's sorted port-ref list.
  [[nodiscard]] bool is_switch_port(Location loc) const;

  /// Sorted snapshot of every link (copy). Prefer links_view() on hot
  /// paths — it returns the same sequence without the copy.
  [[nodiscard]] std::vector<Link> links() const;

  /// Sorted link list as a const reference, rebuilt lazily and cached
  /// per topology epoch: repeated calls between mutations are free.
  /// The reference is invalidated by the next mutation or links_view()
  /// call after a mutation.
  [[nodiscard]] const std::vector<Link>& links_view() const;

  [[nodiscard]] std::size_t link_count() const { return link_slots_.size(); }

  /// Number of distinct switch DPIDs ever interned.
  [[nodiscard]] std::size_t switch_count() const {
    return index_to_dpid_.size();
  }

  /// Interned contiguous index for `dpid` (nullopt if never seen). The
  /// index is stable for the graph's lifetime (clear() resets it) —
  /// dense per-switch side tables in other modules key off it.
  [[nodiscard]] std::optional<std::uint32_t> switch_index(Dpid dpid) const;

  /// Inverse of switch_index: the dpid interned at `index`.
  [[nodiscard]] Dpid switch_at(std::uint32_t index) const {
    return index_to_dpid_[index];
  }

  /// Shortest switch-to-switch path (BFS, unweighted). Each element is
  /// the link traversed, oriented from source toward destination: the
  /// first.a.dpid == from, the last "to" endpoint's dpid == to. Returns
  /// an empty vector when from == to, nullopt when unreachable.
  struct Traversal {
    Location from;  // egress on the near switch
    Location to;    // ingress on the far switch
  };
  [[nodiscard]] std::optional<std::vector<Traversal>> path(Dpid from,
                                                           Dpid to) const;

  void clear();

  /// Self-consistency audit: every stored link must appear in the
  /// adjacency index oriented both ways (a->b and b->a), every
  /// adjacency traversal must correspond to a stored link, and the
  /// per-port link refcounts must match the stored link set. Returns a
  /// deterministic, sorted list of violation descriptions (empty when
  /// healthy). Used by the runtime invariant checker.
  [[nodiscard]] std::vector<std::string> audit() const;

 private:
  /// One (port, refcount) entry in a switch's sorted switch-port list.
  /// Distinct links may share an endpoint port (a fabricated link can
  /// claim a port a real link already uses), hence the refcount.
  struct PortRef {
    PortNo port = 0;
    std::uint32_t refs = 0;
  };

  [[nodiscard]] static std::uint64_t key(const Link& l);
  std::uint32_t intern(Dpid dpid);
  void add_port_ref(std::uint32_t index, PortNo port);
  void drop_port_ref(std::uint32_t index, PortNo port);

  // Dense link store: slots in insertion order, removal swap-pops.
  std::vector<Link> link_slots_;
  std::unordered_map<std::uint64_t, std::uint32_t> key_to_slot_;

  // DPID interning: contiguous indices in first-seen order.
  std::unordered_map<Dpid, std::uint32_t> dpid_to_index_;
  std::vector<Dpid> index_to_dpid_;

  // Flat adjacency: index -> oriented traversals out of that switch, in
  // link-insertion order (the order BFS ties break on).
  std::vector<std::vector<Traversal>> adj_;
  // index -> sorted (port, refcount) list backing is_switch_port().
  std::vector<std::vector<PortRef>> switch_ports_;

  std::uint64_t epoch_ = 0;

  // links_view() cache, keyed on epoch_ (~0 = never built).
  mutable std::vector<Link> links_view_;
  mutable std::uint64_t links_view_epoch_ = ~std::uint64_t{0};

  // BFS scratch, recycled across path() calls via a visit stamp: a slot
  // is "seen this query" iff its stamp equals the current round. No
  // allocation once the arrays have grown to the switch count.
  mutable std::vector<std::uint64_t> bfs_stamp_;
  mutable std::vector<Traversal> bfs_parent_;
  mutable std::vector<std::uint32_t> bfs_queue_;
  mutable std::uint64_t bfs_round_ = 0;
};

}  // namespace tmg::topo
