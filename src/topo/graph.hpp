// Controller-side topology graph.
//
// Vertices are switch DPIDs; edges are inter-switch links keyed by their
// two (dpid, port) endpoints. This is exactly the state the paper's
// link-fabrication attacks poison: a relayed LLDP packet manufactures an
// edge here that has no physical counterpart.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "of/messages.hpp"

namespace tmg::topo {

using of::Dpid;
using of::Location;
using of::PortNo;

/// Undirected inter-switch link; endpoints stored in canonical order.
struct Link {
  Location a;
  Location b;

  Link() = default;
  Link(Location x, Location y);

  auto operator<=>(const Link&) const = default;
  [[nodiscard]] std::string to_string() const;
};

class TopologyGraph {
 public:
  /// Insert a link. Returns true if it was new.
  bool add_link(Location x, Location y);

  /// Remove a link. Returns true if it existed.
  bool remove_link(Location x, Location y);

  /// Monotonically increasing mutation counter: bumped by every
  /// successful add_link / remove_link and by clear(). Any structure
  /// memoizing a function of the link set (e.g. topo::PathCache) keys
  /// its entries on this epoch, so a fabricated or removed link — the
  /// very state the paper's attacks poison — invalidates every cached
  /// answer by construction.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  [[nodiscard]] bool has_link(Location x, Location y) const;

  /// True if this (dpid, port) is an endpoint of any known link (i.e. a
  /// switch-internal port; host tracking ignores traffic from such ports).
  [[nodiscard]] bool is_switch_port(Location loc) const;

  [[nodiscard]] std::vector<Link> links() const;
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }

  /// Shortest switch-to-switch path (BFS, unweighted). Each element is
  /// the link traversed, oriented from source toward destination: the
  /// first.a.dpid == from, the last "to" endpoint's dpid == to. Returns
  /// an empty vector when from == to, nullopt when unreachable.
  struct Traversal {
    Location from;  // egress on the near switch
    Location to;    // ingress on the far switch
  };
  [[nodiscard]] std::optional<std::vector<Traversal>> path(Dpid from,
                                                           Dpid to) const;

  void clear();

  /// Self-consistency audit: every stored link must appear in the
  /// adjacency index oriented both ways (a->b and b->a), and every
  /// adjacency traversal must correspond to a stored link. Returns a
  /// deterministic, sorted list of violation descriptions (empty when
  /// healthy). Used by the runtime invariant checker.
  [[nodiscard]] std::vector<std::string> audit() const;

 private:
  [[nodiscard]] static std::uint64_t key(const Link& l);

  std::unordered_map<std::uint64_t, Link> links_;
  // Adjacency: dpid -> oriented traversals out of that switch.
  std::unordered_map<Dpid, std::vector<Traversal>> adj_;
  std::uint64_t epoch_ = 0;
};

}  // namespace tmg::topo
