#include "topo/graph.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace tmg::topo {

Link::Link(Location x, Location y) {
  if (y < x) std::swap(x, y);
  a = x;
  b = y;
}

std::string Link::to_string() const {
  return a.to_string() + "<->" + b.to_string();
}

std::uint64_t TopologyGraph::key(const Link& l) {
  // Mix the four small fields into one 64-bit key.
  const std::uint64_t ha = (l.a.dpid << 16) ^ l.a.port;
  const std::uint64_t hb = (l.b.dpid << 16) ^ l.b.port;
  return ha * 0x9e3779b97f4a7c15ULL ^ (hb + 0x7f4a7c159e3779b9ULL);
}

bool TopologyGraph::add_link(Location x, Location y) {
  const Link l{x, y};
  const auto [it, inserted] = links_.try_emplace(key(l), l);
  if (!inserted) return false;
  ++epoch_;
  adj_[l.a.dpid].push_back(Traversal{l.a, l.b});
  adj_[l.b.dpid].push_back(Traversal{l.b, l.a});
  return true;
}

bool TopologyGraph::remove_link(Location x, Location y) {
  const Link l{x, y};
  if (links_.erase(key(l)) == 0) return false;
  ++epoch_;
  auto drop = [](std::vector<Traversal>& v, Location from, Location to) {
    std::erase_if(v, [&](const Traversal& t) {
      return t.from == from && t.to == to;
    });
  };
  drop(adj_[l.a.dpid], l.a, l.b);
  drop(adj_[l.b.dpid], l.b, l.a);
  return true;
}

bool TopologyGraph::has_link(Location x, Location y) const {
  return links_.contains(key(Link{x, y}));
}

bool TopologyGraph::is_switch_port(Location loc) const {
  const auto it = adj_.find(loc.dpid);
  if (it == adj_.end()) return false;
  return std::any_of(it->second.begin(), it->second.end(),
                     [&](const Traversal& t) { return t.from == loc; });
}

std::vector<Link> TopologyGraph::links() const {
  std::vector<Link> out;
  out.reserve(links_.size());
  // determinism-lint: allow(unordered-iter) sorted before return
  for (const auto& [_, l] : links_) out.push_back(l);
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<std::vector<TopologyGraph::Traversal>> TopologyGraph::path(
    Dpid from, Dpid to) const {
  if (from == to) return std::vector<Traversal>{};
  std::unordered_map<Dpid, Traversal> parent;  // how we reached each dpid
  std::unordered_set<Dpid> seen{from};
  std::deque<Dpid> frontier{from};
  while (!frontier.empty()) {
    const Dpid cur = frontier.front();
    frontier.pop_front();
    const auto it = adj_.find(cur);
    if (it == adj_.end()) continue;
    for (const Traversal& t : it->second) {
      const Dpid next = t.to.dpid;
      if (seen.contains(next)) continue;
      seen.insert(next);
      parent.emplace(next, t);
      if (next == to) {
        std::vector<Traversal> result;
        Dpid walk = to;
        while (walk != from) {
          const Traversal& step = parent.at(walk);
          result.push_back(step);
          walk = step.from.dpid;
        }
        std::reverse(result.begin(), result.end());
        return result;
      }
      frontier.push_back(next);
    }
  }
  return std::nullopt;
}

void TopologyGraph::clear() {
  links_.clear();
  adj_.clear();
  ++epoch_;
}

std::vector<std::string> TopologyGraph::audit() const {
  std::vector<std::string> issues;
  const auto has_traversal = [&](Location from, Location to) {
    const auto it = adj_.find(from.dpid);
    if (it == adj_.end()) return false;
    return std::any_of(it->second.begin(), it->second.end(),
                       [&](const Traversal& t) {
                         return t.from == from && t.to == to;
                       });
  };
  // Every link must be indexed in both orientations (link symmetry).
  // determinism-lint: allow(unordered-iter) issues are sorted below
  for (const auto& [_, l] : links_) {
    if (!has_traversal(l.a, l.b)) {
      issues.push_back("link " + l.to_string() +
                       " missing forward adjacency " + l.a.to_string() +
                       "->" + l.b.to_string());
    }
    if (!has_traversal(l.b, l.a)) {
      issues.push_back("link " + l.to_string() +
                       " missing reverse adjacency " + l.b.to_string() +
                       "->" + l.a.to_string());
    }
  }
  // Every adjacency traversal must be backed by a stored link.
  // determinism-lint: allow(unordered-iter) issues are sorted below
  for (const auto& [dpid, traversals] : adj_) {
    for (const Traversal& t : traversals) {
      if (t.from.dpid != dpid) {
        issues.push_back("adjacency of dpid " + std::to_string(dpid) +
                         " holds foreign traversal " + t.from.to_string() +
                         "->" + t.to.to_string());
      }
      if (!links_.contains(key(Link{t.from, t.to}))) {
        issues.push_back("dangling adjacency " + t.from.to_string() + "->" +
                         t.to.to_string() + " without a stored link");
      }
    }
  }
  std::sort(issues.begin(), issues.end());
  return issues;
}

}  // namespace tmg::topo
