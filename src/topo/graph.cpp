#include "topo/graph.hpp"

#include <algorithm>

namespace tmg::topo {

Link::Link(Location x, Location y) {
  if (y < x) std::swap(x, y);
  a = x;
  b = y;
}

std::string Link::to_string() const {
  return a.to_string() + "<->" + b.to_string();
}

std::uint64_t TopologyGraph::key(const Link& l) {
  // Mix the four small fields into one 64-bit key.
  const std::uint64_t ha = (l.a.dpid << 16) ^ l.a.port;
  const std::uint64_t hb = (l.b.dpid << 16) ^ l.b.port;
  return ha * 0x9e3779b97f4a7c15ULL ^ (hb + 0x7f4a7c159e3779b9ULL);
}

std::uint32_t TopologyGraph::intern(Dpid dpid) {
  const auto [it, inserted] = dpid_to_index_.try_emplace(
      dpid, static_cast<std::uint32_t>(index_to_dpid_.size()));
  if (inserted) {
    index_to_dpid_.push_back(dpid);
    adj_.emplace_back();
    switch_ports_.emplace_back();
  }
  return it->second;
}

std::optional<std::uint32_t> TopologyGraph::switch_index(Dpid dpid) const {
  const auto it = dpid_to_index_.find(dpid);
  if (it == dpid_to_index_.end()) return std::nullopt;
  return it->second;
}

void TopologyGraph::add_port_ref(std::uint32_t index, PortNo port) {
  std::vector<PortRef>& ports = switch_ports_[index];
  const auto it =
      std::lower_bound(ports.begin(), ports.end(), port,
                       [](const PortRef& r, PortNo p) { return r.port < p; });
  if (it != ports.end() && it->port == port) {
    ++it->refs;
  } else {
    ports.insert(it, PortRef{port, 1});
  }
}

void TopologyGraph::drop_port_ref(std::uint32_t index, PortNo port) {
  std::vector<PortRef>& ports = switch_ports_[index];
  const auto it =
      std::lower_bound(ports.begin(), ports.end(), port,
                       [](const PortRef& r, PortNo p) { return r.port < p; });
  if (it == ports.end() || it->port != port) return;
  if (--it->refs == 0) ports.erase(it);
}

bool TopologyGraph::add_link(Location x, Location y) {
  const Link l{x, y};
  const auto [it, inserted] = key_to_slot_.try_emplace(
      key(l), static_cast<std::uint32_t>(link_slots_.size()));
  if (!inserted) return false;
  ++epoch_;
  link_slots_.push_back(l);
  const std::uint32_t ia = intern(l.a.dpid);
  const std::uint32_t ib = intern(l.b.dpid);
  adj_[ia].push_back(Traversal{l.a, l.b});
  adj_[ib].push_back(Traversal{l.b, l.a});
  add_port_ref(ia, l.a.port);
  add_port_ref(ib, l.b.port);
  return true;
}

bool TopologyGraph::remove_link(Location x, Location y) {
  const Link l{x, y};
  const auto it = key_to_slot_.find(key(l));
  if (it == key_to_slot_.end()) return false;
  ++epoch_;
  // Swap-pop the dense slot and repoint the moved link's key.
  const std::uint32_t slot = it->second;
  key_to_slot_.erase(it);
  if (slot + 1 != link_slots_.size()) {
    link_slots_[slot] = link_slots_.back();
    key_to_slot_[key(link_slots_[slot])] = slot;
  }
  link_slots_.pop_back();
  // Adjacency erase keeps relative order, preserving BFS tie-breaks.
  const auto drop = [&](std::uint32_t index, Location from, Location to) {
    std::erase_if(adj_[index], [&](const Traversal& t) {
      return t.from == from && t.to == to;
    });
  };
  const std::uint32_t ia = *switch_index(l.a.dpid);
  const std::uint32_t ib = *switch_index(l.b.dpid);
  drop(ia, l.a, l.b);
  drop(ib, l.b, l.a);
  drop_port_ref(ia, l.a.port);
  drop_port_ref(ib, l.b.port);
  return true;
}

bool TopologyGraph::has_link(Location x, Location y) const {
  return key_to_slot_.contains(key(Link{x, y}));
}

bool TopologyGraph::is_switch_port(Location loc) const {
  const auto idx = switch_index(loc.dpid);
  if (!idx) return false;
  const std::vector<PortRef>& ports = switch_ports_[*idx];
  const auto it =
      std::lower_bound(ports.begin(), ports.end(), loc.port,
                       [](const PortRef& r, PortNo p) { return r.port < p; });
  return it != ports.end() && it->port == loc.port;
}

std::vector<Link> TopologyGraph::links() const { return links_view(); }

const std::vector<Link>& TopologyGraph::links_view() const {
  if (links_view_epoch_ != epoch_) {
    links_view_.assign(link_slots_.begin(), link_slots_.end());
    std::sort(links_view_.begin(), links_view_.end());
    links_view_epoch_ = epoch_;
  }
  return links_view_;
}

std::optional<std::vector<TopologyGraph::Traversal>> TopologyGraph::path(
    Dpid from, Dpid to) const {
  if (from == to) return std::vector<Traversal>{};
  const auto from_idx = switch_index(from);
  const auto to_idx = switch_index(to);
  if (!from_idx || !to_idx) return std::nullopt;

  // Stamp-recycled scratch: grow once, then reuse across queries.
  const std::size_t n = index_to_dpid_.size();
  if (bfs_stamp_.size() < n) {
    bfs_stamp_.resize(n, 0);
    bfs_parent_.resize(n);
  }
  const std::uint64_t round = ++bfs_round_;
  bfs_queue_.clear();

  bfs_stamp_[*from_idx] = round;
  bfs_queue_.push_back(*from_idx);
  for (std::size_t head = 0; head < bfs_queue_.size(); ++head) {
    const std::uint32_t cur = bfs_queue_[head];
    for (const Traversal& t : adj_[cur]) {
      const std::uint32_t next = *switch_index(t.to.dpid);
      if (bfs_stamp_[next] == round) continue;
      bfs_stamp_[next] = round;
      bfs_parent_[next] = t;
      if (next == *to_idx) {
        std::vector<Traversal> result;
        std::uint32_t walk = next;
        while (walk != *from_idx) {
          const Traversal& step = bfs_parent_[walk];
          result.push_back(step);
          walk = *switch_index(step.from.dpid);
        }
        std::reverse(result.begin(), result.end());
        return result;
      }
      bfs_queue_.push_back(next);
    }
  }
  return std::nullopt;
}

void TopologyGraph::clear() {
  link_slots_.clear();
  key_to_slot_.clear();
  dpid_to_index_.clear();
  index_to_dpid_.clear();
  adj_.clear();
  switch_ports_.clear();
  bfs_stamp_.clear();
  bfs_parent_.clear();
  bfs_queue_.clear();
  bfs_round_ = 0;
  ++epoch_;
}

std::vector<std::string> TopologyGraph::audit() const {
  std::vector<std::string> issues;
  const auto has_traversal = [&](Location from, Location to) {
    const auto idx = switch_index(from.dpid);
    if (!idx) return false;
    return std::any_of(
        adj_[*idx].begin(), adj_[*idx].end(),
        [&](const Traversal& t) { return t.from == from && t.to == to; });
  };
  // Every link must be indexed in both orientations (link symmetry).
  for (const Link& l : link_slots_) {
    if (!has_traversal(l.a, l.b)) {
      issues.push_back("link " + l.to_string() + " missing forward adjacency " +
                       l.a.to_string() + "->" + l.b.to_string());
    }
    if (!has_traversal(l.b, l.a)) {
      issues.push_back("link " + l.to_string() + " missing reverse adjacency " +
                       l.b.to_string() + "->" + l.a.to_string());
    }
  }
  // Every adjacency traversal must be backed by a stored link.
  for (std::size_t i = 0; i < adj_.size(); ++i) {
    const Dpid dpid = index_to_dpid_[i];
    for (const Traversal& t : adj_[i]) {
      if (t.from.dpid != dpid) {
        issues.push_back("adjacency of dpid " + std::to_string(dpid) +
                         " holds foreign traversal " + t.from.to_string() +
                         "->" + t.to.to_string());
      }
      if (!key_to_slot_.contains(key(Link{t.from, t.to}))) {
        issues.push_back("dangling adjacency " + t.from.to_string() + "->" +
                         t.to.to_string() + " without a stored link");
      }
    }
  }
  // The slot map must point every key at the slot actually holding it.
  // determinism-lint: allow(unordered-iter) issues are sorted below
  for (const auto& [k, slot] : key_to_slot_) {
    if (slot >= link_slots_.size() || key(link_slots_[slot]) != k) {
      issues.push_back("link slot map entry " + std::to_string(k) +
                       " points at a mismatched slot");
    }
  }
  // Per-port refcounts must equal the number of stored links touching
  // that (switch, port) endpoint.
  for (std::size_t i = 0; i < switch_ports_.size(); ++i) {
    for (const PortRef& r : switch_ports_[i]) {
      const Location loc{index_to_dpid_[i], r.port};
      std::uint32_t expect = 0;
      for (const Link& l : link_slots_) {
        if (l.a == loc || l.b == loc) ++expect;
      }
      if (r.refs != expect) {
        issues.push_back("port ref " + loc.to_string() + " counts " +
                         std::to_string(r.refs) + " links, graph stores " +
                         std::to_string(expect));
      }
    }
  }
  std::sort(issues.begin(), issues.end());
  return issues;
}

}  // namespace tmg::topo
