// Fixed-bin histogram with ASCII rendering.
//
// The benches use this to regenerate the distribution figures (paper
// Figs. 4-8, 10, 11) as text histograms plus CSV series.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace tmg::stats {

class Histogram {
 public:
  /// Bins span [lo, hi) uniformly; values outside are clamped into the
  /// first/last bin so no sample is dropped silently.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  /// Zero every bin (the bucket layout is kept). Lets long-lived handles
  /// (obs::MetricsRegistry) survive a trial reset.
  void reset();

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] double bin_lo(std::size_t bin) const;
  [[nodiscard]] double bin_hi(std::size_t bin) const;

  /// Multi-line ASCII rendering: one row per bin, bar scaled to `width`.
  [[nodiscard]] std::string render(std::size_t width = 50,
                                   const char* unit = "") const;

  /// CSV rows "bin_lo,bin_hi,count" (no header).
  [[nodiscard]] std::string to_csv() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace tmg::stats
