#include "stats/latency_window.hpp"

#include <algorithm>
#include <cassert>

#include "sim/fastpath.hpp"

namespace tmg::stats {

LatencyWindow::LatencyWindow(std::size_t capacity, double k,
                             std::size_t min_samples)
    : capacity_{capacity}, k_{k}, min_samples_{min_samples} {
  assert(capacity_ > 0);
  assert(min_samples_ > 0);
  buf_.reserve(capacity_);
  sorted_.reserve(capacity_);
}

void LatencyWindow::add(double sample) {
  if (sim::fastpath_enabled()) {
    if (full_) {
      // Evict the ring slot we are about to overwrite from the mirror.
      const auto it =
          std::lower_bound(sorted_.begin(), sorted_.end(), buf_[head_]);
      assert(it != sorted_.end() && *it == buf_[head_]);
      sorted_.erase(it);
    }
    sorted_.insert(std::lower_bound(sorted_.begin(), sorted_.end(), sample),
                   sample);
    cache_dirty_ = true;
  }
  if (!full_) {
    buf_.push_back(sample);
    if (buf_.size() == capacity_) full_ = true;
    return;
  }
  buf_[head_] = sample;
  head_ = (head_ + 1) % capacity_;
}

std::optional<double> LatencyWindow::threshold() const {
  if (!warmed_up()) return std::nullopt;
  if (!sim::fastpath_enabled()) {
    const Iqr iqr = compute_iqr(buf_);
    return iqr.upper_fence(k_);
  }
  if (cache_dirty_) {
    // sorted_ is the same multiset of doubles the naive copy+sort would
    // produce, so quantile_sorted computes the identical value.
    cached_threshold_ = compute_iqr_sorted(sorted_).upper_fence(k_);
    cache_dirty_ = false;
  }
  return cached_threshold_;
}

bool LatencyWindow::is_outlier(double sample) const {
  const auto t = threshold();
  return t.has_value() && sample > *t;
}

std::vector<double> LatencyWindow::samples() const {
  if (!full_) return buf_;
  std::vector<double> out;
  out.reserve(buf_.size());
  for (std::size_t i = 0; i < buf_.size(); ++i) {
    out.push_back(buf_[(head_ + i) % capacity_]);
  }
  return out;
}

void LatencyWindow::clear() {
  buf_.clear();
  head_ = 0;
  full_ = false;
  sorted_.clear();
  cached_threshold_.reset();
  cache_dirty_ = true;
}

std::vector<std::string> LatencyWindow::audit() const {
  std::vector<std::string> issues;
  if (!sim::fastpath_enabled()) return issues;
  if (sorted_.size() != buf_.size()) {
    issues.push_back("latency window mirror size " +
                     std::to_string(sorted_.size()) + " != ring size " +
                     std::to_string(buf_.size()));
    return issues;
  }
  if (!std::is_sorted(sorted_.begin(), sorted_.end())) {
    issues.push_back("latency window mirror is not sorted");
  }
  std::vector<double> reference = buf_;
  std::sort(reference.begin(), reference.end());
  if (reference != sorted_) {
    issues.push_back(
        "latency window mirror diverges from sorted ring contents");
  }
  if (!cache_dirty_ && warmed_up() && !reference.empty()) {
    const double naive = compute_iqr_sorted(reference).upper_fence(k_);
    if (!cached_threshold_ || *cached_threshold_ != naive) {
      issues.push_back(
          "latency window cached threshold diverges from naive recompute");
    }
  }
  std::sort(issues.begin(), issues.end());
  return issues;
}

}  // namespace tmg::stats
