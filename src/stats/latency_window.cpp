#include "stats/latency_window.hpp"

#include <cassert>

namespace tmg::stats {

LatencyWindow::LatencyWindow(std::size_t capacity, double k,
                             std::size_t min_samples)
    : capacity_{capacity}, k_{k}, min_samples_{min_samples} {
  assert(capacity_ > 0);
  assert(min_samples_ > 0);
  buf_.reserve(capacity_);
}

void LatencyWindow::add(double sample) {
  if (!full_) {
    buf_.push_back(sample);
    if (buf_.size() == capacity_) full_ = true;
    return;
  }
  buf_[head_] = sample;
  head_ = (head_ + 1) % capacity_;
}

std::optional<double> LatencyWindow::threshold() const {
  if (!warmed_up()) return std::nullopt;
  const Iqr iqr = compute_iqr(buf_);
  return iqr.upper_fence(k_);
}

bool LatencyWindow::is_outlier(double sample) const {
  const auto t = threshold();
  return t.has_value() && sample > *t;
}

std::vector<double> LatencyWindow::samples() const {
  if (!full_) return buf_;
  std::vector<double> out;
  out.reserve(buf_.size());
  for (std::size_t i = 0; i < buf_.size(); ++i) {
    out.push_back(buf_[(head_ + i) % capacity_]);
  }
  return out;
}

void LatencyWindow::clear() {
  buf_.clear();
  head_ = 0;
  full_ = false;
}

}  // namespace tmg::stats
