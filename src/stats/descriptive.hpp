// Descriptive statistics over samples.
//
// Used throughout the benches to report the mean ± stddev rows the paper
// prints (Table I, Figs. 4-8) and by the defenses for calibration.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace tmg::stats {

/// Summary of a sample set.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1)
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Compute all summary fields. Empty input yields a zeroed Summary.
Summary summarize(std::span<const double> samples);

/// Mean of the samples (0 for empty input).
double mean(std::span<const double> samples);

/// Sample standard deviation (n-1 denominator; 0 for n < 2).
double stddev(std::span<const double> samples);

/// Streaming mean/variance accumulator (Welford). Constant memory; used
/// by long-running components that cannot buffer all samples.
class RunningStats {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;  // sample variance
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Format "mean ± stddev" with the given unit suffix, e.g. "0.91 ± 0.04 ms".
std::string format_mean_pm(const Summary& s, const char* unit,
                           int precision = 2);

}  // namespace tmg::stats
