#include "stats/quantile.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tmg::stats {

double quantile_sorted(std::span<const double> sorted, double q) {
  assert(!sorted.empty());
  assert(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted[0];
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double quantile(std::span<const double> samples, double q) {
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  return quantile_sorted(sorted, q);
}

Iqr compute_iqr(std::span<const double> samples) {
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  return compute_iqr_sorted(sorted);
}

Iqr compute_iqr_sorted(std::span<const double> sorted) {
  return Iqr{quantile_sorted(sorted, 0.25), quantile_sorted(sorted, 0.75)};
}

double normal_quantile(double p) {
  assert(p > 0.0 && p < 1.0);
  // Acklam's algorithm.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;

  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double probe_timeout_for_fp_rate(double rtt_mean, double rtt_stddev,
                                 double fp_rate) {
  assert(fp_rate > 0.0 && fp_rate < 1.0);
  return rtt_mean + rtt_stddev * normal_quantile(1.0 - fp_rate);
}

double probe_timeout_from_samples(std::span<const double> rtt_samples,
                                  double fp_rate) {
  return quantile(rtt_samples, 1.0 - fp_rate);
}

}  // namespace tmg::stats
