#include "stats/streaming_quantile.hpp"

#include <algorithm>
#include <cmath>

#include "check/assert.hpp"
#include "stats/quantile.hpp"

namespace tmg::stats {

StreamingQuantile::StreamingQuantile(double q, std::size_t exact_limit)
    : q_{q}, exact_limit_{exact_limit < 8 ? 8 : exact_limit} {
  TMG_ASSERT(q > 0.0 && q < 1.0, "quantile level must be in (0,1)");
  samples_.reserve(exact_limit_ < 4096 ? exact_limit_ : 4096);
}

std::array<double, StreamingQuantile::kMarkers> StreamingQuantile::levels()
    const {
  return {0.0, q_ / 2.0, q_, (1.0 + q_) / 2.0, 1.0};
}

void StreamingQuantile::add(double x) {
  ++count_;
  if (!collapsed_) {
    samples_.push_back(x);
    if (samples_.size() > exact_limit_) collapse();
    return;
  }
  p2_add(x);
}

void StreamingQuantile::collapse() {
  // Seed the five markers from the exact sample: heights at the marker
  // quantile levels, positions at their ideal (fractional) ranks. From
  // here on add() maintains them incrementally.
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const std::array<double, kMarkers> lv = levels();
  const double n = static_cast<double>(sorted.size());
  for (std::size_t i = 0; i < kMarkers; ++i) {
    height_[i] = quantile_sorted(sorted, lv[i]);
    pos_[i] = 1.0 + (n - 1.0) * lv[i];
  }
  samples_.clear();
  samples_.shrink_to_fit();
  collapsed_ = true;
}

void StreamingQuantile::p2_add(double x) {
  // Jain & Chlamtac's P² update: bump the positions of every marker
  // above the cell x lands in, then nudge the three interior markers
  // toward their desired positions with a piecewise-parabolic fit
  // (falling back to linear when the parabola would leave the bracket).
  std::size_t k;
  if (x < height_[0]) {
    height_[0] = x;
    k = 0;
  } else if (x >= height_[kMarkers - 1]) {
    height_[kMarkers - 1] = x;
    k = kMarkers - 2;
  } else {
    k = 0;
    while (k + 1 < kMarkers - 1 && x >= height_[k + 1]) ++k;
  }
  for (std::size_t i = k + 1; i < kMarkers; ++i) pos_[i] += 1.0;

  const std::array<double, kMarkers> lv = levels();
  const double n = static_cast<double>(count_);
  for (std::size_t i = 1; i + 1 < kMarkers; ++i) {
    const double desired = 1.0 + (n - 1.0) * lv[i];
    const double d = desired - pos_[i];
    if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
        (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
      const double sign = d >= 0.0 ? 1.0 : -1.0;
      // Piecewise-parabolic prediction of the marker's new height. The
      // adjust condition above only guarantees the position gap on the
      // movement side exceeds 1, so a coincident neighbor on the other
      // side would divide by zero and poison the marker with inf/NaN.
      // Guard both gaps; on a degenerate gap (or a non-finite / out-of-
      // bracket parabola) fall back to the linear step, whose divisor
      // is the movement-side gap and therefore > 1.
      const double np = pos_[i + 1], nm = pos_[i - 1], ni = pos_[i];
      const double hp = height_[i + 1], hm = height_[i - 1],
                   hi = height_[i];
      bool parabola_ok = false;
      double cand = 0.0;
      if (np - ni > 0.0 && ni - nm > 0.0) {
        cand = hi + sign / (np - nm) *
                        ((ni - nm + sign) * (hp - hi) / (np - ni) +
                         (np - ni - sign) * (hi - hm) / (ni - nm));
        // NaN fails both comparisons, so it can never sneak through as
        // an "in-bracket" candidate.
        parabola_ok = std::isfinite(cand) && cand > hm && cand < hp;
      }
      if (!parabola_ok) {
        // Linear step toward the neighbor in the movement direction.
        const std::size_t j = sign > 0.0 ? i + 1 : i - 1;
        cand = hi + sign * (height_[j] - hi) / (pos_[j] - ni);
      }
      height_[i] = cand;
      pos_[i] += sign;
    }
  }
}

void StreamingQuantile::merge(const StreamingQuantile& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    // Empty self adopts the other state wholesale (exact or collapsed).
    samples_ = other.samples_;
    count_ = other.count_;
    collapsed_ = other.collapsed_;
    height_ = other.height_;
    pos_ = other.pos_;
    // Respect our own exact_limit_, which may be tighter than theirs.
    if (!collapsed_ && samples_.size() > exact_limit_) collapse();
    return;
  }
  if (!collapsed_ && !other.collapsed_) {
    // Exact + exact: concatenate in (self, other) order. Deterministic
    // because callers merge in chunk-index order.
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    count_ += other.count_;
    if (samples_.size() > exact_limit_) collapse();
    return;
  }
  if (!collapsed_) collapse();
  if (!other.collapsed_) {
    // Collapsed + exact: stream the buffered samples through the P²
    // update in their insertion order.
    for (const double x : other.samples_) {
      ++count_;
      p2_add(x);
    }
    return;
  }
  // Collapsed + collapsed: blend the two piecewise-linear marker CDFs.
  // Extremes take the true min/max; interior markers take the
  // count-weighted average of the two inverse CDFs at this estimator's
  // marker levels.
  const std::array<double, kMarkers> lv = levels();
  const double w1 = static_cast<double>(count_);
  const double w2 = static_cast<double>(other.count_);
  std::array<double, kMarkers> blended{};
  blended[0] = height_[0] < other.height_[0] ? height_[0] : other.height_[0];
  blended[kMarkers - 1] = height_[kMarkers - 1] > other.height_[kMarkers - 1]
                              ? height_[kMarkers - 1]
                              : other.height_[kMarkers - 1];
  for (std::size_t i = 1; i + 1 < kMarkers; ++i) {
    blended[i] = (w1 * inverse_cdf(lv[i]) + w2 * other.inverse_cdf(lv[i])) /
                 (w1 + w2);
  }
  count_ += other.count_;
  const double n = static_cast<double>(count_);
  for (std::size_t i = 0; i < kMarkers; ++i) {
    height_[i] = blended[i];
    pos_[i] = 1.0 + (n - 1.0) * lv[i];
  }
  // Blending can violate monotonicity only through floating-point noise;
  // restore it so inverse_cdf stays well-defined.
  for (std::size_t i = 1; i < kMarkers; ++i) {
    if (height_[i] < height_[i - 1]) height_[i] = height_[i - 1];
  }
}

double StreamingQuantile::inverse_cdf(double p) const {
  TMG_ASSERT(collapsed_, "inverse_cdf is a collapsed-state helper");
  const std::array<double, kMarkers> lv = levels();
  if (p <= lv[0]) return height_[0];
  for (std::size_t i = 1; i < kMarkers; ++i) {
    if (p <= lv[i]) {
      const double span = lv[i] - lv[i - 1];
      if (span <= 0.0) return height_[i];
      const double t = (p - lv[i - 1]) / span;
      return height_[i - 1] + t * (height_[i] - height_[i - 1]);
    }
  }
  return height_[kMarkers - 1];
}

double StreamingQuantile::value() const {
  TMG_ASSERT(count_ > 0, "quantile of an empty estimator");
  if (!collapsed_) return stats::quantile(samples_, q_);
  return height_[2];
}

double StreamingQuantile::min() const {
  TMG_ASSERT(count_ > 0, "min of an empty estimator");
  if (!collapsed_) return *std::min_element(samples_.begin(), samples_.end());
  return height_[0];
}

double StreamingQuantile::max() const {
  TMG_ASSERT(count_ > 0, "max of an empty estimator");
  if (!collapsed_) return *std::max_element(samples_.begin(), samples_.end());
  return height_[kMarkers - 1];
}

}  // namespace tmg::stats
