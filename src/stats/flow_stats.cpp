#include "stats/flow_stats.hpp"

#include <algorithm>
#include <cstdio>

namespace tmg::stats {

FlowStats::FlowStats() {
  switches_.slots.assign(kInitialSlots, kEmptySlot);
  ports_.slots.assign(kInitialSlots, kEmptySlot);
}

std::uint64_t FlowStats::mix(Key key) {
  std::uint64_t z = key + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

const FlowStats::Cell* FlowStats::find(const Table& t, Key key) {
  std::size_t i = static_cast<std::size_t>(mix(key)) & t.mask();
  while (t.slots[i] != kEmptySlot) {
    const Cell& cell = t.cells[t.slots[i]];
    if (cell.key == key) return &cell;
    i = (i + 1) & t.mask();
  }
  return nullptr;
}

void FlowStats::grow(Table& t) {
  t.slots.assign(t.slots.size() * 2, kEmptySlot);
  for (std::uint32_t c = 0; c < t.cells.size(); ++c) {
    std::size_t i = static_cast<std::size_t>(mix(t.cells[c].key)) & t.mask();
    while (t.slots[i] != kEmptySlot) i = (i + 1) & t.mask();
    t.slots[i] = c;
  }
}

FlowStats::Cell& FlowStats::upsert(Table& t, Key key) {
  std::size_t i = static_cast<std::size_t>(mix(key)) & t.mask();
  while (t.slots[i] != kEmptySlot) {
    Cell& cell = t.cells[t.slots[i]];
    if (cell.key == key) return cell;
    i = (i + 1) & t.mask();
  }
  // First sighting: append a cell, growing the index at 7/8 load.
  if ((t.cells.size() + 1) * 8 > t.slots.size() * 7) {
    grow(t);
    i = static_cast<std::size_t>(mix(key)) & t.mask();
    while (t.slots[i] != kEmptySlot) i = (i + 1) & t.mask();
  }
  t.slots[i] = static_cast<std::uint32_t>(t.cells.size());
  t.cells.push_back(Cell{});
  t.cells.back().key = key;
  return t.cells.back();
}

void FlowStats::record(Key switch_key, Key port_key, std::uint64_t bytes) {
  const double b = static_cast<double>(bytes);
  const auto bump = [&](Cell& cell) {
    ++cell.packets;
    cell.bytes += bytes;
    cell.size.add(b);
  };
  bump(upsert(switches_, switch_key));
  bump(upsert(ports_, port_key));
  bump(total_);
}

std::vector<FlowStats::Cell> FlowStats::sorted(const Table& t) {
  std::vector<Cell> out = t.cells;
  std::sort(out.begin(), out.end(),
            [](const Cell& a, const Cell& b) { return a.key < b.key; });
  return out;
}

std::vector<FlowStats::Cell> FlowStats::switches_sorted() const {
  return sorted(switches_);
}

std::vector<FlowStats::Cell> FlowStats::ports_sorted() const {
  return sorted(ports_);
}

namespace {

void append_cell(std::string& out, const FlowStats::Cell& cell,
                 bool with_key) {
  char buf[224];
  if (with_key) {
    std::snprintf(buf, sizeof buf,
                  "{\"key\":%llu,\"packets\":%llu,\"bytes\":%llu,"
                  "\"mean\":%.3f,\"variance\":%.3f,\"min\":%.0f,"
                  "\"max\":%.0f}",
                  static_cast<unsigned long long>(cell.key),
                  static_cast<unsigned long long>(cell.packets),
                  static_cast<unsigned long long>(cell.bytes),
                  cell.size.mean, cell.size.variance(),
                  cell.packets ? cell.size.min_v : 0.0,
                  cell.packets ? cell.size.max_v : 0.0);
  } else {
    std::snprintf(buf, sizeof buf,
                  "{\"packets\":%llu,\"bytes\":%llu,\"mean\":%.3f,"
                  "\"variance\":%.3f,\"min\":%.0f,\"max\":%.0f}",
                  static_cast<unsigned long long>(cell.packets),
                  static_cast<unsigned long long>(cell.bytes),
                  cell.size.mean, cell.size.variance(),
                  cell.packets ? cell.size.min_v : 0.0,
                  cell.packets ? cell.size.max_v : 0.0);
  }
  out += buf;
}

void append_cells(std::string& out, const std::vector<FlowStats::Cell>& cells,
                  std::size_t max_cells) {
  const std::size_t n =
      max_cells == 0 ? cells.size() : std::min(cells.size(), max_cells);
  out += "[";
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0) out += ",";
    append_cell(out, cells[i], /*with_key=*/true);
  }
  out += "]";
}

}  // namespace

std::string FlowStats::to_json(std::size_t max_cells) const {
  std::string out = "{\"total\":";
  append_cell(out, total_, /*with_key=*/false);
  out += ",\"switch_cells\":" + std::to_string(switches_.cells.size());
  out += ",\"port_cells\":" + std::to_string(ports_.cells.size());
  out += ",\"switches\":";
  append_cells(out, switches_sorted(), max_cells);
  out += ",\"ports\":";
  append_cells(out, ports_sorted(), max_cells);
  out += "}";
  return out;
}

void FlowStats::reset() {
  switches_.cells.clear();
  switches_.slots.assign(kInitialSlots, kEmptySlot);
  ports_.cells.clear();
  ports_.slots.assign(kInitialSlots, kEmptySlot);
  total_ = Cell{};
}

std::vector<std::string> FlowStats::audit() const {
  std::vector<std::string> issues;
  const auto check_table = [&](const Table& t, const char* label) {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    for (const Cell& cell : t.cells) {
      packets += cell.packets;
      bytes += cell.bytes;
      if (cell.packets == 0) {
        issues.push_back(std::string(label) + " cell " +
                         std::to_string(cell.key) + " recorded no packets");
      }
      if (cell.size.count != cell.packets) {
        issues.push_back(std::string(label) + " cell " +
                         std::to_string(cell.key) +
                         " moment count diverges from packet count");
      }
      if (find(t, cell.key) != &cell) {
        issues.push_back(std::string(label) + " cell " +
                         std::to_string(cell.key) +
                         " not reachable through the index table");
      }
    }
    if (packets != total_.packets || bytes != total_.bytes) {
      issues.push_back(std::string(label) +
                       " totals diverge from the stream total");
    }
    std::size_t used = 0;
    for (const std::uint32_t s : t.slots) {
      if (s == kEmptySlot) continue;
      ++used;
      if (s >= t.cells.size()) {
        issues.push_back(std::string(label) +
                         " index table points past the cell store");
      }
    }
    if (used != t.cells.size()) {
      issues.push_back(std::string(label) +
                       " index table entry count diverges from cell count");
    }
  };
  check_table(switches_, "switch");
  check_table(ports_, "port");
  std::sort(issues.begin(), issues.end());
  return issues;
}

}  // namespace tmg::stats
