// Streaming per-port / per-switch traffic statistics (DESIGN.md §12).
//
// Modeled on ID2T's aggregate-statistics engine: every Packet-In
// contributes to a handful of constant-size accumulators — packet and
// byte totals plus Welford running moments of the packet size — instead
// of being buffered or sampled. Memory is O(active cells), never
// O(packets), and there is no reservoir: moments are exact for the
// whole stream.
//
// The stats layer sits below the protocol layers, so cells are keyed by
// caller-packed opaque u64s (the controller packs (dpid << 16) | port —
// see port_key). Cell storage is a dense vector addressed through an
// open-addressed index table: a record() in steady state probes one
// cache line and allocates nothing; only a first-seen cell appends.
//
// Iteration over the index table is hash-ordered and never exported:
// snapshots go through sorted() / to_json(), which order by key.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tmg::stats {

/// Welford single-pass running moments: numerically stable mean and
/// variance without storing samples.
struct RunningMoments {
  std::uint64_t count = 0;
  double mean = 0.0;
  double m2 = 0.0;
  double min_v = 0.0;
  double max_v = 0.0;

  void add(double x) {
    if (count == 0) {
      min_v = x;
      max_v = x;
    } else {
      if (x < min_v) min_v = x;
      if (x > max_v) max_v = x;
    }
    ++count;
    const double delta = x - mean;
    mean += delta / static_cast<double>(count);
    m2 += delta * (x - mean);
  }

  /// Population variance (0 for fewer than 2 samples).
  [[nodiscard]] double variance() const {
    return count < 2 ? 0.0 : m2 / static_cast<double>(count);
  }
};

class FlowStats {
 public:
  using Key = std::uint64_t;

  /// One traffic cell: totals plus packet-size moments.
  struct Cell {
    Key key = 0;
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    RunningMoments size;
  };

  /// Key for a (switch, port) cell, mirroring std::hash<of::Location>'s
  /// packing. The stats layer never sees the protocol types themselves.
  [[nodiscard]] static constexpr Key port_key(std::uint64_t dpid,
                                              std::uint16_t port) {
    return (dpid << 16) | port;
  }

  FlowStats();

  /// Account one packet of `bytes` bytes to its switch cell, its port
  /// cell, and the stream total. Steady state allocates nothing.
  void record(Key switch_key, Key port_key, std::uint64_t bytes);

  [[nodiscard]] const Cell* find_switch(Key key) const {
    return find(switches_, key);
  }
  [[nodiscard]] const Cell* find_port(Key key) const {
    return find(ports_, key);
  }
  [[nodiscard]] std::size_t switch_cells() const {
    return switches_.cells.size();
  }
  [[nodiscard]] std::size_t port_cells() const { return ports_.cells.size(); }
  [[nodiscard]] const Cell& total() const { return total_; }

  /// Key-sorted snapshots (deterministic export order).
  [[nodiscard]] std::vector<Cell> switches_sorted() const;
  [[nodiscard]] std::vector<Cell> ports_sorted() const;

  /// Byte-stable JSON: {"total": {...}, "switches": [...], "ports":
  /// [...]} with key-sorted arrays and fixed number formats. `max_cells`
  /// truncates the per-cell arrays (totals stay exact); 0 = no limit.
  [[nodiscard]] std::string to_json(std::size_t max_cells = 0) const;

  void reset();

  /// Self-consistency: table/cell cross-references, per-table totals
  /// matching the grand total, moment sanity. Sorted findings.
  [[nodiscard]] std::vector<std::string> audit() const;

 private:
  /// Dense cell store + open-addressed key -> cell-index table.
  struct Table {
    std::vector<Cell> cells;
    std::vector<std::uint32_t> slots;  // cell index or kEmptySlot
    [[nodiscard]] std::size_t mask() const { return slots.size() - 1; }
  };
  static constexpr std::uint32_t kEmptySlot = 0xffff'ffffu;
  static constexpr std::size_t kInitialSlots = 64;

  [[nodiscard]] static std::uint64_t mix(Key key);
  [[nodiscard]] static const Cell* find(const Table& t, Key key);
  static Cell& upsert(Table& t, Key key);
  static void grow(Table& t);
  [[nodiscard]] static std::vector<Cell> sorted(const Table& t);

  Table switches_;
  Table ports_;
  Cell total_;
};

}  // namespace tmg::stats
