// Quantiles, IQR, and the normal quantile function.
//
// Section V-B1 of the paper: the attacker derives the probe timeout for a
// desired false-positive rate by "computing the quantile distribution
// function for the observed measurements". Both the empirical quantile
// (for measured RTTs) and the analytic normal quantile (for the modeled
// N(20ms, 5ms) delay) are provided.
#pragma once

#include <span>
#include <vector>

namespace tmg::stats {

/// Linear-interpolation quantile of a *sorted* sample (type-7, the R/numpy
/// default). q in [0,1]. Requires a non-empty input.
double quantile_sorted(std::span<const double> sorted, double q);

/// Quantile of an unsorted sample (copies and sorts).
double quantile(std::span<const double> samples, double q);

/// Interquartile statistics of a sample.
struct Iqr {
  double q1 = 0.0;
  double q3 = 0.0;
  [[nodiscard]] double range() const { return q3 - q1; }
  /// Tukey-style upper fence with multiplier k. TOPOGUARD+'s LLI uses
  /// k = 3 (paper Sec. VI-D: threshold = Q3 + 3*IQR).
  [[nodiscard]] double upper_fence(double k = 3.0) const {
    return q3 + k * range();
  }
};

/// Compute Q1/Q3 of a sample. Requires a non-empty input.
Iqr compute_iqr(std::span<const double> samples);

/// Q1/Q3 of an already-sorted sample: no copy, no re-sort. Callers that
/// need several order statistics of one sample sort once and use the
/// *_sorted entry points (LatencyWindow's incremental mirror does).
Iqr compute_iqr_sorted(std::span<const double> sorted);

/// Inverse CDF of the standard normal (Acklam's rational approximation,
/// |relative error| < 1.15e-9). p in (0,1).
double normal_quantile(double p);

/// Probe timeout: the (1 - fp_rate) quantile of N(rtt_mean, rtt_stddev).
/// With the paper's parameters (20ms, 5ms, 1% FP) this returns ~31.6ms;
/// the paper rounds up to 35ms.
double probe_timeout_for_fp_rate(double rtt_mean, double rtt_stddev,
                                 double fp_rate);

/// Empirical variant: timeout from observed RTT samples.
double probe_timeout_from_samples(std::span<const double> rtt_samples,
                                  double fp_rate);

}  // namespace tmg::stats
