// Streaming quantile estimation for Monte-Carlo-scale sweeps.
//
// The paper's race-window figures (Figs. 5-8) are distributions over
// thousands of trials; reporting their tails at 10^5-10^6 trials must
// not require materializing a per-trial sample vector. StreamingQuantile
// is a P² estimator (Jain & Chlamtac, CACM 1985: five markers tracking
// {min, q/2, q, (1+q)/2, max} positions, adjusted per sample with a
// piecewise-parabolic fit) with an exact small-sample fallback: below
// `exact_limit` samples the estimator simply stores them and defers to
// stats::quantile, so short runs lose no precision and the P² machinery
// only engages where it pays.
//
// Determinism: add() and merge() are pure functions of the estimator
// state and their argument — no randomness, no iteration-order
// dependence. The trial runner merges per-chunk estimators in
// chunk-index order (a function of the trial count alone), so the
// merged state — and every digit a bench prints from it — is
// byte-identical at any --jobs value. merge() is deliberately *not*
// commutative (neither is floating-point addition); callers must merge
// in a fixed order, which TrialRunner::reduce() guarantees.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace tmg::stats {

class StreamingQuantile {
 public:
  /// Estimator for the q-quantile (q in (0,1)). `exact_limit` bounds
  /// the exact-mode sample buffer; above it the state collapses to the
  /// five P² markers (at least 8; default keeps exact answers for
  /// every per-cell sample count the non-Monte-Carlo benches use).
  explicit StreamingQuantile(double q, std::size_t exact_limit = 512);

  void add(double x);

  /// Absorb `other` (an estimator for the same q). Exact+exact states
  /// concatenate; once either side has collapsed, the merge combines
  /// the two piecewise-linear marker CDFs weighted by sample count.
  void merge(const StreamingQuantile& other);

  /// Current estimate. Exact below exact_limit samples; P² beyond.
  /// Requires count() > 0.
  [[nodiscard]] double value() const;

  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double probability() const { return q_; }
  /// True while the state still holds every sample exactly.
  [[nodiscard]] bool exact() const { return !collapsed_; }

 private:
  static constexpr std::size_t kMarkers = 5;

  /// Quantile levels of the five markers: {0, q/2, q, (1+q)/2, 1}.
  [[nodiscard]] std::array<double, kMarkers> levels() const;

  /// Exact -> P² transition: markers from the sorted sample.
  void collapse();
  void p2_add(double x);
  /// Marker height at CDF level `p` by piecewise-linear interpolation
  /// between this estimator's (height, level) points. Collapsed only.
  [[nodiscard]] double inverse_cdf(double p) const;

  double q_;
  std::size_t exact_limit_;
  std::uint64_t count_ = 0;
  bool collapsed_ = false;
  std::vector<double> samples_;            // exact mode (insertion order)
  std::array<double, kMarkers> height_{};  // marker values, ascending
  std::array<double, kMarkers> pos_{};     // marker positions, 1-based
};

}  // namespace tmg::stats
