#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "stats/quantile.hpp"

namespace tmg::stats {

double mean(std::span<const double> samples) {
  if (samples.empty()) return 0.0;
  double sum = 0.0;
  for (double x : samples) sum += x;
  return sum / static_cast<double>(samples.size());
}

double stddev(std::span<const double> samples) {
  if (samples.size() < 2) return 0.0;
  const double m = mean(samples);
  double ss = 0.0;
  for (double x : samples) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(samples.size() - 1));
}

Summary summarize(std::span<const double> samples) {
  Summary s;
  if (samples.empty()) return s;
  s.count = samples.size();
  s.mean = mean(samples);
  s.stddev = stddev(samples);
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.median = quantile_sorted(sorted, 0.5);
  s.p95 = quantile_sorted(sorted, 0.95);
  s.p99 = quantile_sorted(sorted, 0.99);
  return s;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

std::string format_mean_pm(const Summary& s, const char* unit, int precision) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "%.*f ± %.*f %s", precision, s.mean,
                precision, s.stddev, unit);
  return buf;
}

}  // namespace tmg::stats
