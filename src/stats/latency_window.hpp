// Fixed-size latency data store with IQR outlier detection.
//
// This is the data structure at the heart of TOPOGUARD+'s Link Latency
// Inspector (paper Sec. VI-D): a bounded ring of verified per-link
// latency measurements over which Q1/Q3/IQR are computed, with threshold
// Q3 + k*IQR (k = 3 in the paper).
//
// Fast path: alongside the ring the window maintains a sorted mirror of
// the same samples (O(log n) search + O(n) memmove per add — cheap at
// LLI window sizes) and a cached threshold recomputed only after the
// contents change. Because the mirror holds the identical multiset of
// doubles the naive copy+sort would produce, quantile_sorted sees the
// same sorted sequence and the threshold is bit-identical. With the
// fast path disabled every call recomputes from scratch.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "stats/quantile.hpp"

namespace tmg::stats {

class LatencyWindow {
 public:
  /// @param capacity   max samples retained (oldest evicted first)
  /// @param k          IQR fence multiplier (paper: 3.0)
  /// @param min_samples samples required before a threshold is produced;
  ///        below this, every observation is accepted as calibration.
  explicit LatencyWindow(std::size_t capacity, double k = 3.0,
                         std::size_t min_samples = 5);

  /// Record a verified latency sample (milliseconds or any unit —
  /// consistent units are the caller's responsibility).
  void add(double sample);

  /// Current anomaly threshold (Q3 + k*IQR), or nullopt until warmed up.
  [[nodiscard]] std::optional<double> threshold() const;

  /// True if `sample` exceeds the current threshold. Returns false while
  /// the window is still warming up (no basis for rejection yet).
  [[nodiscard]] bool is_outlier(double sample) const;

  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool warmed_up() const { return buf_.size() >= min_samples_; }

  /// Snapshot of retained samples (oldest first).
  [[nodiscard]] std::vector<double> samples() const;

  void clear();

  /// Coherence audit: the sorted mirror must hold exactly the ring's
  /// samples in nondecreasing order, and the cached threshold must equal
  /// the naive sort-and-compute reference. Sorted list of violations.
  [[nodiscard]] std::vector<std::string> audit() const;

 private:
  std::size_t capacity_;
  double k_;
  std::size_t min_samples_;
  std::vector<double> buf_;  // ring buffer
  std::size_t head_ = 0;     // insertion point once full
  bool full_ = false;
  // Fast path: sorted mirror of buf_'s contents + memoized threshold.
  std::vector<double> sorted_;
  mutable std::optional<double> cached_threshold_;
  mutable bool cache_dirty_ = true;
};

}  // namespace tmg::stats
