#include "stats/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace tmg::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, hi_{hi}, counts_(bins, 0) {
  assert(hi > lo);
  assert(bins > 0);
}

void Histogram::add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width);
  idx = std::clamp<std::ptrdiff_t>(
      idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
}

double Histogram::bin_lo(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const {
  return bin_lo(bin + 1);
}

std::string Histogram::render(std::size_t width, const char* unit) const {
  const std::size_t peak = counts_.empty()
                               ? 0
                               : *std::max_element(counts_.begin(), counts_.end());
  std::string out;
  char line[256];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::size_t bar =
        peak == 0 ? 0 : counts_[i] * width / peak;
    std::snprintf(line, sizeof line, "%10.2f-%-10.2f%s |%-*s %zu\n",
                  bin_lo(i), bin_hi(i), unit, static_cast<int>(width),
                  std::string(bar, '#').c_str(), counts_[i]);
    out += line;
  }
  return out;
}

std::string Histogram::to_csv() const {
  std::string out;
  char line[128];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    std::snprintf(line, sizeof line, "%.6f,%.6f,%zu\n", bin_lo(i), bin_hi(i),
                  counts_[i]);
    out += line;
  }
  return out;
}

}  // namespace tmg::stats
