// Global fast-path toggle (cross-check mode).
//
// The algorithmic fast paths — epoch-keyed route caching
// (topo::PathCache), the dst-MAC-indexed flow table (of::FlowTable),
// and the incremental LLI order statistics (stats::LatencyWindow) —
// are required to be *byte-identical* to the naive recomputations they
// replace. This switch keeps the naive implementations alive so any
// run can be replayed with caching disabled and diffed:
//
//   TMG_DISABLE_FASTPATH=1 ./bench/bench_attack_matrix ...   (env)
//   ./bench/bench_attack_matrix --no-fastpath ...            (flag)
//
// tools/run_bench.py --fastpath-check runs the attack matrix both ways
// and fails if a single output byte differs.
//
// The flag is process-global and must only be flipped before any
// simulation state exists (benches set it while parsing argv, before
// the first trial). It is deliberately a plain bool: trials read it
// concurrently but nobody writes after startup.
#pragma once

namespace tmg::sim {

/// True (default) = incremental/caching implementations; false = naive
/// reference implementations. Initialized from TMG_DISABLE_FASTPATH.
[[nodiscard]] bool fastpath_enabled();

/// Override the environment default. Call before constructing any
/// simulation objects; switching mid-run is unsupported.
void set_fastpath_enabled(bool enabled);

}  // namespace tmg::sim
