// Small-buffer-optimized callable for the event-loop hot path.
//
// std::function heap-allocates once its (implementation-defined, ~16-32
// byte) inline buffer overflows, and libstdc++'s requires the target to
// be copyable. Event callbacks are scheduled and fired millions of times
// per trial, so we use a move-only wrapper with a guaranteed inline
// capacity instead: callables up to `InlineBytes` live inside the Entry
// itself (no allocation); larger ones fall back to a single heap cell.
// Move-only also lets callbacks own shared_ptr / unique_ptr captures,
// which the packet-forwarding path relies on.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace tmg::sim {

template <std::size_t InlineBytes>
class InlineFn {
 public:
  InlineFn() noexcept = default;
  InlineFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineFn(F&& fn) {  // NOLINT(google-explicit-constructor)
    emplace<D>(std::forward<F>(fn));
  }

  InlineFn(InlineFn&& other) noexcept { move_from(other); }
  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;
  ~InlineFn() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  void operator()() { ops_->invoke(&storage_); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(&storage_);
      ops_ = nullptr;
    }
  }

  /// True when the current target lives in the inline buffer (test hook).
  [[nodiscard]] bool is_inline() const noexcept {
    return ops_ != nullptr && ops_->inline_stored;
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src);  // move-construct + destroy src
    void (*destroy)(void*);
    bool inline_stored;
  };

  template <typename D>
  static constexpr bool fits_inline_v =
      sizeof(D) <= InlineBytes && alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D, typename F>
  void emplace(F&& fn) {
    if constexpr (fits_inline_v<D>) {
      ::new (static_cast<void*>(&storage_)) D(std::forward<F>(fn));
      static constexpr Ops ops{
          [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
          [](void* dst, void* src) {
            D* from = std::launder(reinterpret_cast<D*>(src));
            ::new (dst) D(std::move(*from));
            from->~D();
          },
          [](void* s) { std::launder(reinterpret_cast<D*>(s))->~D(); },
          /*inline_stored=*/true,
      };
      ops_ = &ops;
    } else {
      ::new (static_cast<void*>(&storage_)) D*(new D(std::forward<F>(fn)));
      static constexpr Ops ops{
          [](void* s) { (**std::launder(reinterpret_cast<D**>(s)))(); },
          [](void* dst, void* src) {
            ::new (dst) D*(*std::launder(reinterpret_cast<D**>(src)));
          },
          [](void* s) { delete *std::launder(reinterpret_cast<D**>(s)); },
          /*inline_stored=*/false,
      };
      ops_ = &ops;
    }
  }

  void move_from(InlineFn& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(&storage_, &other.storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[InlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace tmg::sim
