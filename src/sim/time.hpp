// Simulated time primitives.
//
// All simulation time is kept as a signed 64-bit nanosecond count wrapped
// in a strong type so that durations and absolute instants cannot be
// mixed accidentally and so that raw integers never leak through module
// interfaces (Core Guidelines I.4: make interfaces precisely and strongly
// typed).
#pragma once

#include <cstdint>
#include <compare>
#include <string>

namespace tmg::sim {

/// A span of simulated time, nanosecond resolution.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr static Duration nanos(std::int64_t n) { return Duration{n}; }
  constexpr static Duration micros(std::int64_t us) { return Duration{us * 1'000}; }
  constexpr static Duration millis(std::int64_t ms) { return Duration{ms * 1'000'000}; }
  constexpr static Duration seconds(std::int64_t s) { return Duration{s * 1'000'000'000}; }
  /// Fractional constructors for model parameters expressed in ms/s.
  constexpr static Duration from_millis_f(double ms) {
    return Duration{static_cast<std::int64_t>(ms * 1e6)};
  }
  constexpr static Duration from_seconds_f(double s) {
    return Duration{static_cast<std::int64_t>(s * 1e9)};
  }
  constexpr static Duration zero() { return Duration{0}; }
  constexpr static Duration max() { return Duration{INT64_MAX}; }

  [[nodiscard]] constexpr std::int64_t count_nanos() const { return ns_; }
  [[nodiscard]] constexpr double to_micros_f() const { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double to_millis_f() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double to_seconds_f() const { return static_cast<double>(ns_) / 1e9; }
  [[nodiscard]] constexpr bool is_negative() const { return ns_ < 0; }

  constexpr auto operator<=>(const Duration&) const = default;
  constexpr Duration operator+(Duration o) const { return Duration{ns_ + o.ns_}; }
  constexpr Duration operator-(Duration o) const { return Duration{ns_ - o.ns_}; }
  constexpr Duration operator-() const { return Duration{-ns_}; }
  constexpr Duration operator*(std::int64_t k) const { return Duration{ns_ * k}; }
  constexpr Duration operator/(std::int64_t k) const { return Duration{ns_ / k}; }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

/// An absolute instant on the simulated clock (ns since simulation start).
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr static SimTime from_nanos(std::int64_t n) { return SimTime{n}; }
  constexpr static SimTime zero() { return SimTime{0}; }
  constexpr static SimTime max() { return SimTime{INT64_MAX}; }

  [[nodiscard]] constexpr std::int64_t count_nanos() const { return ns_; }
  [[nodiscard]] constexpr double to_millis_f() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double to_seconds_f() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const SimTime&) const = default;
  constexpr SimTime operator+(Duration d) const { return SimTime{ns_ + d.count_nanos()}; }
  constexpr SimTime operator-(Duration d) const { return SimTime{ns_ - d.count_nanos()}; }
  constexpr Duration operator-(SimTime o) const { return Duration::nanos(ns_ - o.ns_); }

 private:
  constexpr explicit SimTime(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

/// Render a duration as a compact human-readable string ("3.25ms").
std::string to_string(Duration d);
/// Render an instant as seconds with millisecond precision ("12.345s").
std::string to_string(SimTime t);

namespace literals {
constexpr Duration operator""_ns(unsigned long long n) {
  return Duration::nanos(static_cast<std::int64_t>(n));
}
constexpr Duration operator""_us(unsigned long long n) {
  return Duration::micros(static_cast<std::int64_t>(n));
}
constexpr Duration operator""_ms(unsigned long long n) {
  return Duration::millis(static_cast<std::int64_t>(n));
}
constexpr Duration operator""_s(unsigned long long n) {
  return Duration::seconds(static_cast<std::int64_t>(n));
}
}  // namespace literals

}  // namespace tmg::sim
