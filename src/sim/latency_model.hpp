// Link latency models.
//
// Dataplane and control links draw their per-packet delay from a
// LatencyModel. The evaluation testbed (paper Fig. 9 / Fig. 10) uses a
// fixed base latency with occasional micro-bursts; wide-area models use a
// normal RTT distribution (paper Sec. V-B1 models N(20ms, 5ms)).
#pragma once

#include <memory>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace tmg::sim {

/// Strategy interface: sample a one-way per-packet delay.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  /// One-way delay for the next packet. Never negative.
  virtual Duration sample(Rng& rng) = 0;
  /// The nominal (central) latency, for reporting/calibration.
  [[nodiscard]] virtual Duration nominal() const = 0;
};

/// Constant delay.
class FixedLatency final : public LatencyModel {
 public:
  explicit FixedLatency(Duration d) : d_{d} {}
  Duration sample(Rng&) override { return d_; }
  [[nodiscard]] Duration nominal() const override { return d_; }

 private:
  Duration d_;
};

/// Normal(mean, stddev) delay, truncated at a floor (default 1us).
class NormalLatency final : public LatencyModel {
 public:
  NormalLatency(Duration mean, Duration stddev,
                Duration floor = Duration::micros(1));
  Duration sample(Rng& rng) override;
  [[nodiscard]] Duration nominal() const override { return mean_; }

 private:
  Duration mean_;
  Duration stddev_;
  Duration floor_;
};

/// Base delay plus occasional exponential micro-bursts, reproducing the
/// jitter pattern of paper Fig. 10 (≈5ms links with bursts to ~12ms).
class MicroburstLatency final : public LatencyModel {
 public:
  /// @param base       nominal one-way delay
  /// @param jitter_sd  gaussian jitter stddev applied to every packet
  /// @param burst_p    probability a packet rides a micro-burst
  /// @param burst_mean mean extra delay during a burst (exponential)
  MicroburstLatency(Duration base, Duration jitter_sd, double burst_p,
                    Duration burst_mean);
  Duration sample(Rng& rng) override;
  [[nodiscard]] Duration nominal() const override { return base_; }

 private:
  Duration base_;
  Duration jitter_sd_;
  double burst_p_;
  Duration burst_mean_;
};

/// Convenience factories.
std::unique_ptr<LatencyModel> make_fixed(Duration d);
std::unique_ptr<LatencyModel> make_normal(Duration mean, Duration stddev);
std::unique_ptr<LatencyModel> make_microburst(Duration base,
                                              Duration jitter_sd,
                                              double burst_p,
                                              Duration burst_mean);

}  // namespace tmg::sim
