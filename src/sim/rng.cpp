#include "sim/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace tmg::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // xoshiro256** must not be seeded with all zeros; splitmix64 of any
  // seed cannot produce four zero words, but guard regardless.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::normal() {
  if (cached_normal_) {
    const double v = *cached_normal_;
    cached_normal_.reset();
    return v;
  }
  // Box-Muller. u1 must be strictly positive for the log.
  double u1 = uniform01();
  while (u1 <= 0.0) u1 = uniform01();
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u = uniform01();
  while (u <= 0.0) u = uniform01();
  return -mean * std::log(u);
}

bool Rng::chance(double p) {
  return uniform01() < p;
}

Rng Rng::fork() {
  return Rng{next_u64()};
}

}  // namespace tmg::sim
