#include "sim/fastpath.hpp"

#include <cstdlib>
#include <cstring>

namespace tmg::sim {

namespace {

bool env_default() {
  const char* v = std::getenv("TMG_DISABLE_FASTPATH");
  if (v == nullptr || *v == '\0') return true;
  return std::strcmp(v, "0") == 0;  // "0" keeps the fast path on
}

// Written only during startup (env read / flag parsing), read-only once
// trials run.
bool g_fastpath = env_default();

}  // namespace

bool fastpath_enabled() { return g_fastpath; }

void set_fastpath_enabled(bool enabled) { g_fastpath = enabled; }

}  // namespace tmg::sim
