// Fixed-size thread pool for the parallel trial runner.
//
// Deliberately minimal: one shared FIFO queue, a fixed worker count, no
// work stealing and no dynamic resizing. Simulation code itself stays
// strictly single-threaded — each submitted job must own every object it
// touches (its own EventLoop/Testbed/Rng). The determinism lint
// (tools/lint_determinism.py, rule `threading`) bans threading
// primitives everywhere in src/ except this file and the trial runner,
// so concurrency cannot leak into the simulator core.
//
// Task records are InlineFn<64> — a submitted lambda capturing up to 64
// bytes costs no allocation, so the trial runner's chunk-drainer tasks
// (one pointer of capture) are allocation-free end to end.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/inline_fn.hpp"

namespace tmg::sim {

class ThreadPool {
 public:
  /// Task record: move-only, small-buffer-optimized callable.
  using Job = InlineFn<64>;

  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(std::size_t threads);

  /// Drains outstanding jobs, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a job. Jobs must not submit further jobs to the same pool
  /// and must not throw (wrap and capture exceptions at the call site).
  void submit(Job job);

  /// Block until the queue is empty and every worker is idle.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Dense index of the pool worker the calling thread is, or 0 when the
  /// caller is not a pool worker. The trial runner's serial path runs on
  /// the caller's thread, so "not a worker" and "worker 0" deliberately
  /// share slot 0: per-worker arenas indexed by this value work for both
  /// the serial and the pooled path.
  static std::size_t worker_index();

  /// Default parallelism: one worker per hardware thread (>= 1).
  static std::size_t hardware_jobs();

 private:
  void worker_main(std::size_t index);

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for jobs / stop
  std::condition_variable idle_cv_;   // wait_idle() waits for quiescence
  std::deque<Job> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;  // jobs currently executing
  bool stop_ = false;
};

}  // namespace tmg::sim
