// Fixed-size thread pool for the parallel trial runner.
//
// Deliberately minimal: one shared FIFO queue, a fixed worker count, no
// work stealing and no dynamic resizing. Simulation code itself stays
// strictly single-threaded — each submitted job must own every object it
// touches (its own EventLoop/Testbed/Rng). The determinism lint
// (tools/lint_determinism.py, rule `threading`) bans threading
// primitives everywhere in src/ except this file and the trial runner,
// so concurrency cannot leak into the simulator core.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tmg::sim {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(std::size_t threads);

  /// Drains outstanding jobs, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a job. Jobs must not submit further jobs to the same pool
  /// and must not throw (wrap and capture exceptions at the call site).
  void submit(std::function<void()> job);

  /// Block until the queue is empty and every worker is idle.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Default parallelism: one worker per hardware thread (>= 1).
  static std::size_t hardware_jobs();

 private:
  void worker_main();

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for jobs / stop
  std::condition_variable idle_cv_;   // wait_idle() waits for quiescence
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  std::size_t active_ = 0;  // jobs currently executing
  bool stop_ = false;
};

}  // namespace tmg::sim
