#include "sim/thread_pool.hpp"

#include <utility>

namespace tmg::sim {

namespace {
/// 0 outside pool workers — see ThreadPool::worker_index().
thread_local std::size_t tls_worker_index = 0;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock{mu_};
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(Job job) {
  {
    std::lock_guard<std::mutex> lock{mu_};
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock{mu_};
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_main(std::size_t index) {
  tls_worker_index = index;
  std::unique_lock<std::mutex> lock{mu_};
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ set and nothing left to drain
    Job job = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    job();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

std::size_t ThreadPool::worker_index() { return tls_worker_index; }

std::size_t ThreadPool::hardware_jobs() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<std::size_t>(n);
}

}  // namespace tmg::sim
