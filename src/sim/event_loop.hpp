// Discrete-event simulation loop.
//
// A single-threaded priority-queue scheduler. Events at equal timestamps
// fire in insertion order, which (together with the deterministic Rng)
// makes every experiment bit-reproducible.
//
// Hot-path layout: the pending queue is a binary heap over a flat
// std::vector with sequence-number tie-breaking, and callbacks are
// stored in a small-buffer-optimized InlineFn<64> — a scheduled lambda
// capturing up to 64 bytes costs no callback allocation.
//
// The heap itself holds only 24-byte POD records (time, seq, slot
// index); the callback and cancellation state live in a stable slab
// recycled through a free list. Heap sifts therefore move trivially
// copyable structs instead of running InlineFn relocation thunks —
// the dominant per-event cost before this layout. Fire-and-forget
// events scheduled via post_at/post_after additionally skip the
// TimerHandle control-block allocation entirely.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/inline_fn.hpp"
#include "sim/time.hpp"

namespace tmg::sim {

/// Callback type for scheduled events. 64 bytes of inline capture space
/// covers every scheduling site in the simulator (the packet paths pass
/// shared_ptr payloads precisely to stay under it).
using EventFn = InlineFn<64>;

/// Handle to a scheduled event; allows cancellation. Default-constructed
/// handles are inert. Cancelling an already-fired event is a no-op.
class TimerHandle {
 public:
  TimerHandle() = default;

  /// Prevent the event from firing. Safe to call repeatedly.
  void cancel();

  /// True if the event has neither fired nor been cancelled.
  [[nodiscard]] bool pending() const;

 private:
  friend class EventLoop;
  struct State {
    bool cancelled = false;
    bool fired = false;
    /// Live count of cancelled-but-unpopped queue entries, shared with
    /// the owning loop so live_events() stays O(1). Shared ownership
    /// keeps cancel() safe even after the loop is destroyed.
    std::shared_ptr<std::size_t> cancelled_in_queue;
  };
  explicit TimerHandle(std::shared_ptr<State> state)
      : state_{std::move(state)} {}
  std::shared_ptr<State> state_;
};

/// Profiling probe interface (implemented by obs::Observability). The
/// loop calls it after every executed event when attached; detached
/// (the default) costs one pointer compare per event, and the
/// simulated results are identical either way — probes only read.
class LoopProbe {
 public:
  virtual ~LoopProbe() = default;
  /// `advanced` is how far the clock moved for this event (zero for
  /// same-timestamp cascades); `live_after` is live_events() after it.
  virtual void on_event_executed(SimTime now, Duration advanced,
                                 std::size_t live_after) = 0;
};

/// The simulation clock plus the pending-event queue.
class EventLoop {
 public:
  EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (>= now()).
  TimerHandle schedule_at(SimTime at, EventFn fn);

  /// Schedule `fn` to run `delay` from now. Negative delays are clamped
  /// to zero (models "immediately, after the current event").
  TimerHandle schedule_after(Duration delay, EventFn fn);

  /// Fire-and-forget variants: identical ordering semantics to
  /// schedule_at/schedule_after, but no TimerHandle is produced and no
  /// per-event control block is allocated. Use for events that are never
  /// cancelled (packet deliveries, flow-mod applies, periodic rounds that
  /// re-arm themselves); keep schedule_* when the caller stores the handle.
  void post_at(SimTime at, EventFn fn);
  void post_after(Duration delay, EventFn fn);

  /// Run events until the queue drains or the clock passes `deadline`.
  /// Events stamped exactly at `deadline` do run.
  void run_until(SimTime deadline);

  /// Run until the queue is empty. Only safe for workloads without
  /// self-perpetuating periodic timers.
  void run();

  /// Execute the single earliest pending event. Returns false if the
  /// queue was empty (clock unchanged).
  bool step();

  /// Return the loop to its just-constructed observable state — clock at
  /// zero, no pending events, zero executed count, no hook or probe —
  /// while keeping the heap/slab vector capacity warm. This is the
  /// arena-reset contract (DESIGN.md §7): a reset loop must be
  /// observationally identical to a fresh one, so per-worker trial
  /// arenas can reuse the allocation slabs across trials without
  /// affecting any simulated result. Outstanding TimerHandles become
  /// inert (their events never fire).
  void reset();

  /// Queue entries physically present, including cancelled-but-unpopped
  /// ones. Prefer live_events() for "how much work is left".
  [[nodiscard]] std::size_t pending_events() const { return heap_.size(); }

  /// Events that will actually fire: queue size minus cancelled entries
  /// still awaiting lazy removal. O(1).
  [[nodiscard]] std::size_t live_events() const {
    return heap_.size() - *cancelled_in_queue_;
  }

  /// Total events executed since construction (excludes cancelled).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Install `hook`, invoked after every `every_n`-th executed event
  /// (counted from construction). Used by the invariant checker; one
  /// hook at a time. Passing a null hook clears it.
  void set_post_event_hook(std::uint64_t every_n, std::function<void()> hook);

  /// Attach a profiling probe (borrowed; nullptr detaches). One probe at
  /// a time; independent of the post-event hook.
  void set_probe(LoopProbe* probe) { probe_ = probe; }
  [[nodiscard]] LoopProbe* probe() const { return probe_; }

 private:
  /// POD heap record; the callback lives in slots_[slot].
  struct Entry {
    SimTime at;
    std::uint64_t seq;  // tie-break: insertion order
    std::uint32_t slot;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };
  /// Stable storage for a pending event's callback and (optional)
  /// cancellation state; recycled through an intrusive free list.
  struct Slot {
    EventFn fn;
    /// Null for post_at/post_after events (never cancellable).
    std::shared_ptr<TimerHandle::State> state;
    std::uint32_t next_free = 0;
  };

  [[nodiscard]] bool slot_cancelled(std::uint32_t slot) const {
    const auto& state = slots_[slot].state;
    return state && state->cancelled;
  }
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  void push_entry(SimTime at, std::uint32_t slot);

  /// Drop cancelled entries when they dominate the queue, so a workload
  /// that schedules-and-cancels heavily (e.g. per-packet timeouts) keeps
  /// memory and pop cost proportional to *live* events. In-place
  /// erase + re-heapify: O(n), no element is copied more than once.
  void maybe_compact();

  /// Pop the heap top into a local Entry.
  Entry pop_top();

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  // Min-heap on (at, seq) over a flat vector (std::push_heap/pop_heap
  // with the inverted `Later` comparator).
  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::shared_ptr<std::size_t> cancelled_in_queue_;
  std::function<void()> post_event_hook_;
  std::uint64_t post_event_every_ = 0;
  LoopProbe* probe_ = nullptr;
};

}  // namespace tmg::sim
