// Discrete-event simulation loop.
//
// A single-threaded priority-queue scheduler. Events at equal timestamps
// fire in insertion order, which (together with the deterministic Rng)
// makes every experiment bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/time.hpp"

namespace tmg::sim {

/// Handle to a scheduled event; allows cancellation. Default-constructed
/// handles are inert. Cancelling an already-fired event is a no-op.
class TimerHandle {
 public:
  TimerHandle() = default;

  /// Prevent the event from firing. Safe to call repeatedly.
  void cancel();

  /// True if the event has neither fired nor been cancelled.
  [[nodiscard]] bool pending() const;

 private:
  friend class EventLoop;
  explicit TimerHandle(std::shared_ptr<bool> cancelled)
      : cancelled_{std::move(cancelled)} {}
  std::shared_ptr<bool> cancelled_;
};

/// The simulation clock plus the pending-event queue.
class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current simulated time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `fn` to run at absolute time `at` (>= now()).
  TimerHandle schedule_at(SimTime at, std::function<void()> fn);

  /// Schedule `fn` to run `delay` from now. Negative delays are clamped
  /// to zero (models "immediately, after the current event").
  TimerHandle schedule_after(Duration delay, std::function<void()> fn);

  /// Run events until the queue drains or the clock passes `deadline`.
  /// Events stamped exactly at `deadline` do run.
  void run_until(SimTime deadline);

  /// Run until the queue is empty. Only safe for workloads without
  /// self-perpetuating periodic timers.
  void run();

  /// Execute the single earliest pending event. Returns false if the
  /// queue was empty (clock unchanged).
  bool step();

  /// Number of events waiting (including cancelled-but-unpopped ones).
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Total events executed since construction (excludes cancelled).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;  // tie-break: insertion order
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace tmg::sim
