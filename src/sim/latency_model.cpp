#include "sim/latency_model.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

namespace tmg::sim {

NormalLatency::NormalLatency(Duration mean, Duration stddev, Duration floor)
    : mean_{mean}, stddev_{stddev}, floor_{floor} {}

Duration NormalLatency::sample(Rng& rng) {
  const double ns = rng.normal(static_cast<double>(mean_.count_nanos()),
                               static_cast<double>(stddev_.count_nanos()));
  const auto d = Duration::nanos(static_cast<std::int64_t>(ns));
  return std::max(d, floor_);
}

MicroburstLatency::MicroburstLatency(Duration base, Duration jitter_sd,
                                     double burst_p, Duration burst_mean)
    : base_{base}, jitter_sd_{jitter_sd}, burst_p_{burst_p},
      burst_mean_{burst_mean} {}

Duration MicroburstLatency::sample(Rng& rng) {
  double ns = rng.normal(static_cast<double>(base_.count_nanos()),
                         static_cast<double>(jitter_sd_.count_nanos()));
  if (rng.chance(burst_p_)) {
    ns += rng.exponential(static_cast<double>(burst_mean_.count_nanos()));
  }
  const auto d = Duration::nanos(static_cast<std::int64_t>(ns));
  return std::max(d, Duration::micros(1));
}

std::unique_ptr<LatencyModel> make_fixed(Duration d) {
  return std::make_unique<FixedLatency>(d);
}

std::unique_ptr<LatencyModel> make_normal(Duration mean, Duration stddev) {
  return std::make_unique<NormalLatency>(mean, stddev);
}

std::unique_ptr<LatencyModel> make_microburst(Duration base, Duration jitter_sd,
                                              double burst_p,
                                              Duration burst_mean) {
  return std::make_unique<MicroburstLatency>(base, jitter_sd, burst_p,
                                             burst_mean);
}

// ---- time.hpp helpers (kept here to avoid a one-function TU) ----

std::string to_string(Duration d) {
  char buf[64];
  const std::int64_t ns = d.count_nanos();
  const std::int64_t abs_ns = ns < 0 ? -ns : ns;
  if (abs_ns < 1'000) {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns));
  } else if (abs_ns < 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.2fus", static_cast<double>(ns) / 1e3);
  } else if (abs_ns < 1'000'000'000) {
    std::snprintf(buf, sizeof buf, "%.3fms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof buf, "%.3fs", static_cast<double>(ns) / 1e9);
  }
  return buf;
}

std::string to_string(SimTime t) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3fs", t.to_seconds_f());
  return buf;
}

}  // namespace tmg::sim
