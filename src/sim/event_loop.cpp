#include "sim/event_loop.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace tmg::sim {

void TimerHandle::cancel() {
  if (!state_ || state_->cancelled || state_->fired) return;
  state_->cancelled = true;
  if (state_->cancelled_in_queue) ++*state_->cancelled_in_queue;
}

bool TimerHandle::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

EventLoop::EventLoop()
    : cancelled_in_queue_{std::make_shared<std::size_t>(0)} {}

std::uint32_t EventLoop::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventLoop::release_slot(std::uint32_t slot) {
  slots_[slot].fn = EventFn{};
  slots_[slot].state.reset();
  slots_[slot].next_free = free_head_;
  free_head_ = slot;
}

void EventLoop::push_entry(SimTime at, std::uint32_t slot) {
  heap_.push_back(Entry{at, next_seq_++, slot});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

TimerHandle EventLoop::schedule_at(SimTime at, EventFn fn) {
  assert(static_cast<bool>(fn));
  if (at < now_) at = now_;
  auto state = std::make_shared<TimerHandle::State>();
  state->cancelled_in_queue = cancelled_in_queue_;
  const std::uint32_t slot = acquire_slot();
  slots_[slot].fn = std::move(fn);
  slots_[slot].state = state;
  push_entry(at, slot);
  return TimerHandle{std::move(state)};
}

TimerHandle EventLoop::schedule_after(Duration delay, EventFn fn) {
  if (delay.is_negative()) delay = Duration::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

void EventLoop::post_at(SimTime at, EventFn fn) {
  assert(static_cast<bool>(fn));
  if (at < now_) at = now_;
  const std::uint32_t slot = acquire_slot();
  slots_[slot].fn = std::move(fn);
  push_entry(at, slot);
}

void EventLoop::post_after(Duration delay, EventFn fn) {
  if (delay.is_negative()) delay = Duration::zero();
  post_at(now_ + delay, std::move(fn));
}

void EventLoop::set_post_event_hook(std::uint64_t every_n,
                                    std::function<void()> hook) {
  post_event_hook_ = std::move(hook);
  post_event_every_ = post_event_hook_ ? (every_n == 0 ? 1 : every_n) : 0;
}

void EventLoop::maybe_compact() {
  constexpr std::size_t kMinQueueForCompaction = 64;
  if (heap_.size() < kMinQueueForCompaction ||
      *cancelled_in_queue_ * 2 < heap_.size()) {
    return;
  }
  std::erase_if(heap_, [&](const Entry& e) {
    if (!slot_cancelled(e.slot)) return false;
    release_slot(e.slot);
    return true;
  });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  *cancelled_in_queue_ = 0;
}

EventLoop::Entry EventLoop::pop_top() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  const Entry entry = heap_.back();
  heap_.pop_back();
  return entry;
}

bool EventLoop::step() {
  maybe_compact();
  while (!heap_.empty()) {
    const Entry entry = pop_top();
    Slot& slot = slots_[entry.slot];
    if (slot.state && slot.state->cancelled) {
      --*cancelled_in_queue_;
      release_slot(entry.slot);
      continue;
    }
    if (slot.state) slot.state->fired = true;
    // Move the callback out before releasing: the event may schedule new
    // work that immediately reuses this slot.
    EventFn fn = std::move(slot.fn);
    release_slot(entry.slot);
    const SimTime before = now_;
    now_ = entry.at;
    ++executed_;
    fn();
    if (probe_ != nullptr) {
      probe_->on_event_executed(now_, entry.at - before, live_events());
    }
    if (post_event_every_ != 0 && executed_ % post_event_every_ == 0) {
      post_event_hook_();
    }
    return true;
  }
  return false;
}

void EventLoop::run_until(SimTime deadline) {
  while (!heap_.empty()) {
    // Skip cancelled entries without advancing the clock.
    if (slot_cancelled(heap_.front().slot)) {
      const Entry entry = pop_top();
      release_slot(entry.slot);
      --*cancelled_in_queue_;
      continue;
    }
    if (heap_.front().at > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

void EventLoop::run() {
  while (step()) {
  }
}

void EventLoop::reset() {
  // clear() keeps both vectors' capacity — the warm slab the trial
  // arenas exist to reuse. Destroying the slots releases every pending
  // callback (and any out-of-line InlineFn storage).
  heap_.clear();
  slots_.clear();
  free_head_ = kNoSlot;
  now_ = SimTime::zero();
  next_seq_ = 0;
  executed_ = 0;
  // A fresh counter, not a zeroed one: TimerHandles from before the
  // reset still share the old counter, and a late cancel() through one
  // of them must not skew live_events() of the new epoch.
  cancelled_in_queue_ = std::make_shared<std::size_t>(0);
  post_event_hook_ = nullptr;
  post_event_every_ = 0;
  probe_ = nullptr;
}

}  // namespace tmg::sim
