#include "sim/event_loop.hpp"

#include <cassert>
#include <utility>

namespace tmg::sim {

void TimerHandle::cancel() {
  if (!state_ || state_->cancelled || state_->fired) return;
  state_->cancelled = true;
  if (state_->cancelled_in_queue) ++*state_->cancelled_in_queue;
}

bool TimerHandle::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

EventLoop::EventLoop()
    : cancelled_in_queue_{std::make_shared<std::size_t>(0)} {}

TimerHandle EventLoop::schedule_at(SimTime at, std::function<void()> fn) {
  assert(fn);
  if (at < now_) at = now_;
  auto state = std::make_shared<TimerHandle::State>();
  state->cancelled_in_queue = cancelled_in_queue_;
  queue_.push(Entry{at, next_seq_++, std::move(fn), state});
  return TimerHandle{std::move(state)};
}

TimerHandle EventLoop::schedule_after(Duration delay, std::function<void()> fn) {
  if (delay.is_negative()) delay = Duration::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

void EventLoop::set_post_event_hook(std::uint64_t every_n,
                                    std::function<void()> hook) {
  post_event_hook_ = std::move(hook);
  post_event_every_ = post_event_hook_ ? (every_n == 0 ? 1 : every_n) : 0;
}

void EventLoop::maybe_compact() {
  constexpr std::size_t kMinQueueForCompaction = 64;
  if (queue_.size() < kMinQueueForCompaction ||
      *cancelled_in_queue_ * 2 < queue_.size()) {
    return;
  }
  std::vector<Entry> live;
  live.reserve(queue_.size() - *cancelled_in_queue_);
  while (!queue_.empty()) {
    Entry& top = const_cast<Entry&>(queue_.top());
    if (!top.state->cancelled) live.push_back(std::move(top));
    queue_.pop();
  }
  queue_ = std::priority_queue<Entry, std::vector<Entry>, Later>{
      Later{}, std::move(live)};
  *cancelled_in_queue_ = 0;
}

bool EventLoop::step() {
  maybe_compact();
  while (!queue_.empty()) {
    // priority_queue::top returns const&; entries are popped exactly
    // once, so moving out through const_cast is safe here.
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (entry.state->cancelled) {
      --*cancelled_in_queue_;
      continue;
    }
    entry.state->fired = true;
    now_ = entry.at;
    ++executed_;
    entry.fn();
    if (post_event_every_ != 0 && executed_ % post_event_every_ == 0) {
      post_event_hook_();
    }
    return true;
  }
  return false;
}

void EventLoop::run_until(SimTime deadline) {
  while (!queue_.empty()) {
    // Skip cancelled entries without advancing the clock.
    if (queue_.top().state->cancelled) {
      --*cancelled_in_queue_;
      queue_.pop();
      continue;
    }
    if (queue_.top().at > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

void EventLoop::run() {
  while (step()) {
  }
}

}  // namespace tmg::sim
