#include "sim/event_loop.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace tmg::sim {

void TimerHandle::cancel() {
  if (!state_ || state_->cancelled || state_->fired) return;
  state_->cancelled = true;
  if (state_->cancelled_in_queue) ++*state_->cancelled_in_queue;
}

bool TimerHandle::pending() const {
  return state_ && !state_->cancelled && !state_->fired;
}

EventLoop::EventLoop()
    : cancelled_in_queue_{std::make_shared<std::size_t>(0)} {}

TimerHandle EventLoop::schedule_at(SimTime at, EventFn fn) {
  assert(static_cast<bool>(fn));
  if (at < now_) at = now_;
  auto state = std::make_shared<TimerHandle::State>();
  state->cancelled_in_queue = cancelled_in_queue_;
  heap_.push_back(Entry{at, next_seq_++, std::move(fn), state});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  return TimerHandle{std::move(state)};
}

TimerHandle EventLoop::schedule_after(Duration delay, EventFn fn) {
  if (delay.is_negative()) delay = Duration::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

void EventLoop::set_post_event_hook(std::uint64_t every_n,
                                    std::function<void()> hook) {
  post_event_hook_ = std::move(hook);
  post_event_every_ = post_event_hook_ ? (every_n == 0 ? 1 : every_n) : 0;
}

void EventLoop::maybe_compact() {
  constexpr std::size_t kMinQueueForCompaction = 64;
  if (heap_.size() < kMinQueueForCompaction ||
      *cancelled_in_queue_ * 2 < heap_.size()) {
    return;
  }
  std::erase_if(heap_, [](const Entry& e) { return e.state->cancelled; });
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  *cancelled_in_queue_ = 0;
}

EventLoop::Entry EventLoop::pop_top() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  return entry;
}

bool EventLoop::step() {
  maybe_compact();
  while (!heap_.empty()) {
    Entry entry = pop_top();
    if (entry.state->cancelled) {
      --*cancelled_in_queue_;
      continue;
    }
    entry.state->fired = true;
    now_ = entry.at;
    ++executed_;
    entry.fn();
    if (post_event_every_ != 0 && executed_ % post_event_every_ == 0) {
      post_event_hook_();
    }
    return true;
  }
  return false;
}

void EventLoop::run_until(SimTime deadline) {
  while (!heap_.empty()) {
    // Skip cancelled entries without advancing the clock.
    if (heap_.front().state->cancelled) {
      pop_top();
      --*cancelled_in_queue_;
      continue;
    }
    if (heap_.front().at > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

void EventLoop::run() {
  while (step()) {
  }
}

}  // namespace tmg::sim
