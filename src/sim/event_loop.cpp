#include "sim/event_loop.hpp"

#include <cassert>
#include <cstdio>
#include <utility>

namespace tmg::sim {

void TimerHandle::cancel() {
  if (cancelled_) *cancelled_ = true;
}

bool TimerHandle::pending() const {
  return cancelled_ && !*cancelled_;
}

TimerHandle EventLoop::schedule_at(SimTime at, std::function<void()> fn) {
  assert(fn);
  if (at < now_) at = now_;
  auto flag = std::make_shared<bool>(false);
  queue_.push(Entry{at, next_seq_++, std::move(fn), flag});
  return TimerHandle{std::move(flag)};
}

TimerHandle EventLoop::schedule_after(Duration delay, std::function<void()> fn) {
  if (delay.is_negative()) delay = Duration::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

bool EventLoop::step() {
  while (!queue_.empty()) {
    // priority_queue::top returns const&; we must copy-out before pop.
    // Move via const_cast is the standard idiom but fragile; entries are
    // popped once, so copy the shared_ptr and move the function instead.
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (*entry.cancelled) continue;
    *entry.cancelled = true;  // mark fired so TimerHandle::pending() is false
    now_ = entry.at;
    ++executed_;
    entry.fn();
    return true;
  }
  return false;
}

void EventLoop::run_until(SimTime deadline) {
  while (!queue_.empty()) {
    // Skip cancelled entries without advancing the clock.
    if (*queue_.top().cancelled) {
      queue_.pop();
      continue;
    }
    if (queue_.top().at > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

void EventLoop::run() {
  while (step()) {
  }
}

}  // namespace tmg::sim
