// Deterministic random number generation.
//
// Experiments must be bit-reproducible across platforms, so we do not use
// std::normal_distribution (whose algorithm is implementation-defined).
// Instead we implement xoshiro256** for the raw stream and explicit
// Box-Muller / inverse-CDF transforms on top of it.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/time.hpp"

namespace tmg::sim {

/// xoshiro256** seeded via SplitMix64. Deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal deviate (Box-Muller, cached second value).
  double normal();

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Log-normal deviate: exp(N(mu, sigma)). Heavy-tailed latencies.
  double lognormal(double mu, double sigma);

  /// Exponential deviate with the given mean (mean = 1/lambda).
  double exponential(double mean);

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p);

  /// Derive an independent child stream (for per-component determinism).
  Rng fork();

 private:
  std::uint64_t s_[4];
  std::optional<double> cached_normal_;
};

}  // namespace tmg::sim
