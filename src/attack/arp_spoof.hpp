// Classic ARP cache poisoning (paper Sec. III-A.2's point of contrast).
//
// The attacker periodically sends forged ARP replies to a target host,
// claiming the victim's IP maps to the attacker's MAC. This corrupts
// the *IP-to-MAC* binding in end-host ARP caches — unlike Host Location
// Hijacking, which corrupts the controller's *MAC-to-port* binding.
// Conventional defenses (Dynamic ARP Inspection) stop this attack and,
// as the paper argues, are ineffective against HLH.
#pragma once

#include <cstdint>

#include "attack/host.hpp"
#include "sim/event_loop.hpp"

namespace tmg::attack {

class ArpSpoofAttack {
 public:
  struct Config {
    /// The IP whose traffic the attacker wants (the victim's).
    net::Ipv4Address victim_ip;
    /// The host whose ARP cache is being poisoned.
    net::MacAddress target_mac;
    net::Ipv4Address target_ip;
    /// Re-poisoning period (caches age out / get corrected by genuine
    /// replies, so spoofers repeat).
    sim::Duration period = sim::Duration::millis(500);
    /// Total forged replies (0 = until stopped).
    std::uint64_t budget = 0;
  };

  ArpSpoofAttack(sim::EventLoop& loop, Host& attacker, Config config);

  void start();
  void stop() { running_ = false; }

  [[nodiscard]] std::uint64_t forged_replies() const { return sent_; }

 private:
  void tick();

  sim::EventLoop& loop_;
  Host& host_;
  Config config_;
  std::uint64_t sent_ = 0;
  bool running_ = false;
};

}  // namespace tmg::attack
