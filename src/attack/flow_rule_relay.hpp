// Flow-rule LLDP relay (control-plane link fabrication without hosts).
//
// A compromised application — or any principal with Flow-Mod reach on
// one transit switch — installs a pair of rules explicitly matched on
// the LLDP ethertype that shadow the controller punt and splice the
// discovery frames straight through the switch:
//
//     in_port=<left>,  eth=0x88cc  ->  output(<right>)
//     in_port=<right>, eth=0x88cc  ->  output(<left>)
//
// The controller then receives its own LLDP from the far neighbor's
// port and fabricates a link between the relay switch's two neighbors.
// Unlike the host-based relays (ClassicLinkFabrication, Port Amnesia),
// no HOST-classified port ever sources LLDP, so TopoGuard's port-class
// checks and the LLI's latency bound see nothing abnormal: the frames
// really do traverse only switch hardware, with ordinary switch-hop
// delay. Chen et al. (arXiv:2408.16940) call this class "malicious
// flow-rule" topology poisoning; it is the motivating case for the
// learned anomaly IDS (DESIGN.md §14), which flags the resulting
// never-trained LLDP source on the neighbor ports instead.
#pragma once

#include <cstdint>

#include "of/control_channel.hpp"
#include "of/messages.hpp"

namespace tmg::attack {

class FlowRuleRelay {
 public:
  struct Config {
    /// The relay switch's two inter-switch ports to splice.
    of::PortNo left_port = 11;
    of::PortNo right_port = 10;
    /// Rule priority; anything positive works since benign rules never
    /// pin the LLDP ethertype.
    std::uint16_t priority = 60000;
    /// Marker cookie on the injected rules (forensics / tests).
    std::uint64_t cookie = 0x1e1d'0bad;
  };

  /// `channel` is the relay switch's control channel
  /// (scenario::Testbed::control_channel).
  FlowRuleRelay(of::ControlChannel& channel, Config config);
  explicit FlowRuleRelay(of::ControlChannel& channel)
      : FlowRuleRelay(channel, Config{}) {}

  /// Inject the rule pair. Discovery fabricates the cross-link within
  /// one LLDP period; the relay keeps refreshing it for as long as the
  /// rules stay installed.
  void start();

  /// Remove the rule pair (restores the punt; the fabricated link then
  /// ages out of the topology).
  void stop();

  [[nodiscard]] bool active() const { return active_; }
  [[nodiscard]] std::uint64_t flow_mods_sent() const { return sent_; }

 private:
  void send(of::FlowMod::Command command, of::PortNo in_port,
            of::PortNo out_port);

  of::ControlChannel& channel_;
  Config config_;
  bool active_ = false;
  std::uint64_t sent_ = 0;
};

}  // namespace tmg::attack
