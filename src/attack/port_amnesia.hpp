// Port Amnesia attack (paper Sec. IV-A, Fig. 1).
//
// Two colluding hosts fabricate an inter-switch link by relaying LLDP,
// using interface flaps (Port-Down => TopoGuard profile reset) to erase
// their HOST classification at the right moments.
//
//  * Out-of-band mode: LLDP and MITM transit ride a secret side channel
//    (OutOfBandChannel). With `preposition_flap` the reset happens
//    *between* LLDP rounds, which evades the CMM; the relay's added
//    latency is what the LLI catches instead.
//  * In-band mode: there is no side channel; the relayed LLDP is
//    covertly encapsulated in ordinary host traffic through the SDN
//    itself. Every origination from a SWITCH-profiled port needs a
//    fresh flap ("context switch", >= the 802.3 link-integrity window),
//    so flaps necessarily land inside LLDP propagation windows — the
//    signature the CMM detects.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "attack/host.hpp"
#include "attack/oob_channel.hpp"
#include "obs/trace_log.hpp"
#include "sim/event_loop.hpp"

namespace tmg::obs {
class Observability;
}  // namespace tmg::obs

namespace tmg::attack {

class PortAmnesiaAttack {
 public:
  enum class Mode { OutOfBand, InBand };

  struct Config {
    Mode mode = Mode::OutOfBand;
    /// Carrier-down hold; must exceed the switch's link-integrity
    /// detection window (16±8 ms) to guarantee a Port-Down.
    sim::Duration flap_hold = sim::Duration::millis(30);
    /// Settle time after carrier restore before transmitting (covers
    /// the switch's Port-Up detection delay).
    sim::Duration post_flap_settle = sim::Duration::millis(2);
    /// Out-of-band: flap once ahead of the next LLDP round instead of
    /// during the propagation (CMM-evasive variant).
    bool preposition_flap = true;
    /// Relay LLDP (the link-fabrication core).
    bool relay_lldp = true;
    /// Relay LLDP in both directions (the paper's attack). One-way
    /// relaying still fabricates the (undirected) link and needs far
    /// fewer context switches — the minimal-flap CMM-evasion variant
    /// analyzed in EXPERIMENTS.md.
    bool bidirectional = true;
    /// Faithfully bridge transit traffic over the fabricated link
    /// (man-in-the-middle). SPHINX counters stay consistent.
    bool bridge_transit = true;
    /// Drop transit instead (blackhole DoS; SPHINX counters diverge).
    bool blackhole_transit = false;
  };

  /// @param oob required for Mode::OutOfBand, ignored for InBand.
  PortAmnesiaAttack(sim::EventLoop& loop, Host& a, Host& b,
                    OutOfBandChannel* oob, Config config);

  /// Arm the hooks (and run the prepositioning flap, if configured).
  void start();

  [[nodiscard]] std::uint64_t lldp_relayed() const { return lldp_relayed_; }

  /// Per-relay latency: LLDP captured at one endpoint -> re-emitted at
  /// the other. The paper's Sec. V-A analysis: the out-of-band channel
  /// costs its propagation+codec delay; the in-band channel additionally
  /// pays a >=16 ms context-switch flap whenever the emitting port is
  /// HOST-profiled.
  [[nodiscard]] const std::vector<sim::Duration>& relay_latencies() const {
    return relay_latencies_;
  }
  [[nodiscard]] std::uint64_t transit_bridged() const {
    return transit_bridged_;
  }
  [[nodiscard]] std::uint64_t transit_dropped() const {
    return transit_dropped_;
  }
  [[nodiscard]] std::uint64_t flaps() const { return flaps_; }
  [[nodiscard]] std::uint64_t covert_sends() const { return covert_sends_; }

  /// Attach observability (borrowed; nullptr detaches). Emits
  /// "attack/flap" spans (carrier down -> settled, the profile-amnesia
  /// window) and "attack/relay" spans (LLDP captured -> re-emitted at
  /// the peer, the latency the LLI measures from the other side); relay
  /// and flap totals mirror in at export time via a collector.
  void set_observability(obs::Observability* obs);

 private:
  /// Attacker-side estimate of a port's TopoGuard profile.
  enum class Profile { Any, Host, Switch };

  struct Endpoint {
    Host* host = nullptr;
    Endpoint* peer = nullptr;
    Profile profile = Profile::Host;  // attackers joined as normal hosts
    bool flap_in_progress = false;
    /// Actions queued behind an in-progress profile-reset flap.
    std::deque<std::function<void()>> after_flap;
  };

  void arm(Endpoint& self);
  bool capture(Endpoint& self, const net::Packet& pkt);
  void relay_lldp_oob(Endpoint& from, const net::Packet& pkt);
  void relay_lldp_inband(Endpoint& from, const net::Packet& pkt);
  void bridge_oob(Endpoint& from, const net::Packet& pkt);
  void bridge_inband(Endpoint& from, const net::Packet& pkt);
  /// Emit a host-originated frame from `ep`'s port, context-switching
  /// (flap) first if the port is currently SWITCH-profiled.
  void originate_as_host(Endpoint& ep, net::Packet pkt);
  /// Emit an LLDP frame from `ep`'s port, context-switching first if
  /// the port is currently HOST-profiled. `captured_at` (if valid)
  /// stamps the relay-latency log on emission.
  void emit_lldp(Endpoint& ep, net::Packet pkt,
                 std::optional<sim::SimTime> captured_at = std::nullopt);
  void flap_then(Endpoint& ep, std::function<void()> after);

  sim::EventLoop& loop_;
  Config config_;
  OutOfBandChannel* oob_;
  Endpoint a_;
  Endpoint b_;
  /// In-band covert "encapsulation": payload store keyed by the 8-byte
  /// token carried in the covert frame (event-level stand-in for byte
  /// serialization of arbitrary packets).
  std::map<std::uint64_t, net::Packet> covert_store_;
  std::uint64_t next_covert_key_ = 1;
  std::uint64_t lldp_relayed_ = 0;
  std::uint64_t transit_bridged_ = 0;
  std::uint64_t transit_dropped_ = 0;
  std::uint64_t flaps_ = 0;
  std::uint64_t covert_sends_ = 0;
  std::vector<sim::Duration> relay_latencies_;
  obs::Observability* obs_ = nullptr;
  bool started_ = false;
};

}  // namespace tmg::attack
