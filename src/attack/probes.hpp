// Liveness probe engines (paper Table I / Sec. IV-B.1).
//
// Each probe type runs its real protocol exchange in the simulation
// (ARP request/reply, ICMP echo, TCP SYN handshake, TCP idle scan via a
// zombie's IP-ID side channel). On top of the exchange, an optional
// "tool overhead" models the nmap engine cost the paper measured in
// Table I (scan time excluding RTT):
//   ICMP ping 0.91±0.04 ms | TCP SYN 492.3±1.4 ms |
//   ARP ping 133.5±1.6 ms  | TCP idle scan 1.8±0.1 ms
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "attack/host.hpp"
#include "sim/event_loop.hpp"
#include "sim/rng.hpp"

namespace tmg::attack {

enum class ProbeType { IcmpPing, TcpSyn, ArpPing, TcpIdleScan };

const char* to_string(ProbeType t);

/// Estimated IDS-flagging likelihood, as ranked in Table I.
enum class Stealth { Low, Medium, High, VeryHigh };
Stealth stealth_of(ProbeType t);
const char* to_string(Stealth s);

/// Sample the nmap-style engine overhead for one scan (Table I model).
sim::Duration sample_tool_overhead(ProbeType t, sim::Rng& rng);

struct ProbeTarget {
  net::Ipv4Address ip;
  net::MacAddress mac;         // required for ICMP/TCP (resolved earlier)
  std::uint16_t tcp_port = 80;  // TCP SYN / idle scan target port
};

/// Zombie parameters for the idle scan.
struct ZombieRef {
  net::Ipv4Address ip;
  net::MacAddress mac;
};

struct ProbeOutcome {
  bool alive = false;
  sim::SimTime started;
  sim::SimTime finished;
  [[nodiscard]] sim::Duration duration() const { return finished - started; }
};

/// One-shot liveness probe engine bound to an attacker host.
class LivenessProber {
 public:
  struct Config {
    ProbeType type = ProbeType::ArpPing;
    /// Wait for a response before declaring the target down.
    sim::Duration timeout = sim::Duration::millis(35);
    /// Model nmap engine overhead before the exchange starts.
    bool tool_overhead = false;
    /// Idle scan only: the zombie host to bounce through.
    std::optional<ZombieRef> zombie;
    /// Idle scan only: wait for the spoofed SYN's effect on the zombie.
    sim::Duration idle_settle = sim::Duration::millis(60);
  };

  LivenessProber(sim::EventLoop& loop, sim::Rng rng, Host& attacker,
                 Config config);

  /// Run one probe; `done` fires when the target answered or the
  /// timeout elapsed. Probes do not overlap: calling probe() while one
  /// is outstanding is a logic error.
  void probe(const ProbeTarget& target,
             std::function<void(ProbeOutcome)> done);

  [[nodiscard]] bool busy() const { return static_cast<bool>(done_); }
  [[nodiscard]] std::uint64_t probes_sent() const { return sent_; }

 private:
  void start_exchange(const ProbeTarget& target);
  void run_icmp(const ProbeTarget& target);
  void run_tcp_syn(const ProbeTarget& target);
  void run_arp(const ProbeTarget& target);
  void run_idle_scan(const ProbeTarget& target);
  void arm_timeout();
  void finish(bool alive);

  sim::EventLoop& loop_;
  sim::Rng rng_;
  Host& host_;
  Config config_;
  std::function<void(ProbeOutcome)> done_;
  sim::SimTime started_;
  sim::TimerHandle timeout_;
  std::uint64_t sent_ = 0;
  std::uint16_t next_ident_ = 1;
  std::uint16_t next_port_ = 40000;
  // Current-probe correlation state.
  ProbeTarget target_;
  std::uint16_t probe_ident_ = 0;
  std::uint16_t probe_port_ = 0;
  // Idle-scan state.
  int idle_phase_ = 0;
  std::uint16_t zombie_ipid_before_ = 0;
};

}  // namespace tmg::attack
