#include "attack/probes.hpp"

#include <cassert>

namespace tmg::attack {

const char* to_string(ProbeType t) {
  switch (t) {
    case ProbeType::IcmpPing: return "ICMP Ping";
    case ProbeType::TcpSyn: return "TCP SYN";
    case ProbeType::ArpPing: return "ARP ping";
    case ProbeType::TcpIdleScan: return "TCP Idle Scan";
  }
  return "?";
}

Stealth stealth_of(ProbeType t) {
  switch (t) {
    case ProbeType::IcmpPing: return Stealth::Low;
    case ProbeType::TcpSyn: return Stealth::Medium;
    case ProbeType::ArpPing: return Stealth::High;
    case ProbeType::TcpIdleScan: return Stealth::VeryHigh;
  }
  return Stealth::Low;
}

const char* to_string(Stealth s) {
  switch (s) {
    case Stealth::Low: return "Low";
    case Stealth::Medium: return "Medium";
    case Stealth::High: return "High";
    case Stealth::VeryHigh: return "Very High";
  }
  return "?";
}

sim::Duration sample_tool_overhead(ProbeType t, sim::Rng& rng) {
  // Table I means and standard deviations, in milliseconds.
  double mean_ms = 0.0, sd_ms = 0.0;
  switch (t) {
    case ProbeType::IcmpPing: mean_ms = 0.91; sd_ms = 0.04; break;
    case ProbeType::TcpSyn: mean_ms = 492.3; sd_ms = 1.4; break;
    case ProbeType::ArpPing: mean_ms = 133.5; sd_ms = 1.6; break;
    case ProbeType::TcpIdleScan: mean_ms = 1.8; sd_ms = 0.1; break;
  }
  const double ms = rng.normal(mean_ms, sd_ms);
  return sim::Duration::from_millis_f(ms < 0.0 ? 0.0 : ms);
}

LivenessProber::LivenessProber(sim::EventLoop& loop, sim::Rng rng,
                               Host& attacker, Config config)
    : loop_{loop}, rng_{std::move(rng)}, host_{attacker}, config_{config} {
  host_.add_listener([this](const net::Packet& pkt) {
    if (!done_) return;
    switch (config_.type) {
      case ProbeType::IcmpPing: {
        const auto* icmp = pkt.icmp();
        if (icmp && icmp->type == net::IcmpPayload::Type::EchoReply &&
            icmp->ident == probe_ident_ && pkt.ip &&
            pkt.ip->src == target_.ip) {
          finish(true);
        }
        break;
      }
      case ProbeType::TcpSyn: {
        const auto* tcp = pkt.tcp();
        if (tcp && tcp->dst_port == probe_port_ && pkt.ip &&
            pkt.ip->src == target_.ip &&
            ((tcp->flags.syn && tcp->flags.ack) || tcp->flags.rst)) {
          finish(true);
        }
        break;
      }
      case ProbeType::ArpPing: {
        const auto* arp = pkt.arp();
        if (arp && arp->op == net::ArpPayload::Op::Reply &&
            arp->sender_ip == target_.ip) {
          finish(true);
        }
        break;
      }
      case ProbeType::TcpIdleScan: {
        const auto* tcp = pkt.tcp();
        if (!tcp || !tcp->flags.rst || !pkt.ip || !config_.zombie ||
            pkt.ip->src != config_.zombie->ip ||
            tcp->dst_port != probe_port_) {
          break;
        }
        const std::uint16_t ipid = pkt.ip->ident;
        if (idle_phase_ == 1) {
          zombie_ipid_before_ = ipid;
          idle_phase_ = 2;
          timeout_.cancel();
          // Spoof a SYN claiming the zombie's *IP* (the MAC stays ours:
          // an IP-level spoof, as nmap -S does). A live target SYN-ACKs
          // the zombie, whose RST advances its IP-ID.
          host_.send(net::make_tcp(host_.mac(), config_.zombie->ip,
                                   target_.mac, target_.ip, 40001,
                                   target_.tcp_port,
                                   net::TcpFlags{.syn = true}));
          loop_.post_after(config_.idle_settle, [this] {
            if (!done_ || idle_phase_ != 2) return;
            idle_phase_ = 3;
            probe_port_ = next_port_++;
            host_.send(net::make_tcp(host_.mac(), host_.ip(),
                                     config_.zombie->mac, config_.zombie->ip,
                                     probe_port_, 80,
                                     net::TcpFlags{.syn = true, .ack = true}));
            arm_timeout();
          });
        } else if (idle_phase_ == 3) {
          // IP-ID advanced by >= 2: the zombie RST'd a SYN-ACK the
          // (live) target sent it in between.
          const std::uint16_t delta =
              static_cast<std::uint16_t>(ipid - zombie_ipid_before_);
          finish(delta >= 2);
        }
        break;
      }
    }
  });
}

void LivenessProber::probe(const ProbeTarget& target,
                           std::function<void(ProbeOutcome)> done) {
  assert(!done_ && "probe already in flight");
  done_ = std::move(done);
  target_ = target;
  started_ = loop_.now();
  ++sent_;
  if (config_.tool_overhead) {
    const sim::Duration overhead = sample_tool_overhead(config_.type, rng_);
    loop_.post_after(overhead,
                         [this, target] { start_exchange(target); });
  } else {
    start_exchange(target);
  }
}

void LivenessProber::start_exchange(const ProbeTarget& target) {
  if (!done_) return;
  switch (config_.type) {
    case ProbeType::IcmpPing: run_icmp(target); break;
    case ProbeType::TcpSyn: run_tcp_syn(target); break;
    case ProbeType::ArpPing: run_arp(target); break;
    case ProbeType::TcpIdleScan: run_idle_scan(target); break;
  }
}

void LivenessProber::run_icmp(const ProbeTarget& target) {
  probe_ident_ = next_ident_++;
  host_.send_ping(target.mac, target.ip, probe_ident_, 1);
  arm_timeout();
}

void LivenessProber::run_tcp_syn(const ProbeTarget& target) {
  probe_port_ = next_port_++;
  host_.send(net::make_tcp(host_.mac(), host_.ip(), target.mac, target.ip,
                           probe_port_, target.tcp_port,
                           net::TcpFlags{.syn = true}));
  arm_timeout();
}

void LivenessProber::run_arp(const ProbeTarget& target) {
  host_.send_arp_request(target.ip);
  arm_timeout();
}

void LivenessProber::run_idle_scan(const ProbeTarget& target) {
  (void)target;  // reached through target_; kept for interface symmetry
  assert(config_.zombie && "idle scan requires a zombie");
  idle_phase_ = 1;
  probe_port_ = next_port_++;
  // Query the zombie's current IP-ID with an unsolicited SYN-ACK.
  host_.send(net::make_tcp(host_.mac(), host_.ip(), config_.zombie->mac,
                           config_.zombie->ip, probe_port_, 80,
                           net::TcpFlags{.syn = true, .ack = true}));
  arm_timeout();
}

void LivenessProber::arm_timeout() {
  timeout_ = loop_.schedule_after(config_.timeout, [this] { finish(false); });
}

void LivenessProber::finish(bool alive) {
  if (!done_) return;
  timeout_.cancel();
  idle_phase_ = 0;
  auto done = std::move(done_);
  done_ = nullptr;
  done(ProbeOutcome{alive, started_, loop_.now()});
}

}  // namespace tmg::attack
