// NIC reconfiguration latency models.
//
// The paper measures `ifconfig` operations on real Linux hosts:
//   - a bare interface down/up flap: 3.25 ms mean (Sec. V-A),
//   - a full identity change (down, set MAC+IP, up): 9.94 ms mean with a
//     heavy tail out to ~160 ms (Sec. V-B, Fig. 4).
// We substitute calibrated log-normal distributions (see DESIGN.md §2):
// only the latency distribution matters to the hijack race.
#pragma once

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace tmg::attack {

/// Log-normal latency model for one NIC management operation.
class NicOpModel {
 public:
  /// @param mu_ns, sigma — parameters of ln(latency in ns)
  NicOpModel(double mu_ns, double sigma) : mu_ns_{mu_ns}, sigma_{sigma} {}

  [[nodiscard]] sim::Duration sample(sim::Rng& rng) const;

  /// Analytic mean of the distribution.
  [[nodiscard]] sim::Duration mean() const;

  /// ifconfig down/up flap (paper: 3.25 ms mean).
  static NicOpModel interface_flap();

  /// ifconfig identity change: down + set MAC/IP + up (paper Fig. 4:
  /// 9.94 ms mean, occasional trials out to ~160 ms).
  static NicOpModel identity_change();

 private:
  double mu_ns_;
  double sigma_;
};

}  // namespace tmg::attack
