// Port Probing + Host Location Hijacking (paper Sec. IV-B, Figs. 2-3).
//
// The attacker arpings the victim to learn its MAC, then liveness-probes
// it on a fixed cadence. The instant the victim is declared offline
// (probe timeout, optionally confirmed by consecutive failures), the
// attacker rewrites its own NIC identity to the victim's (ifconfig-model
// latency) and originates traffic, winning the Host Tracking Service
// re-binding race before the victim rejoins elsewhere.
#pragma once

#include <functional>
#include <optional>

#include "attack/host.hpp"
#include "attack/nic_model.hpp"
#include "attack/probes.hpp"
#include "obs/trace_log.hpp"
#include "sim/event_loop.hpp"

namespace tmg::obs {
class Observability;
}  // namespace tmg::obs

namespace tmg::attack {

struct PortProbingConfig {
  net::Ipv4Address victim_ip;
  ProbeType probe_type = ProbeType::ArpPing;
  /// Probe cadence (paper: one probe every 50 ms).
  sim::Duration probe_period = sim::Duration::millis(50);
  /// Probe timeout, derived from the RTT quantile function for the
  /// desired false-positive rate (paper: 35 ms for N(20,5) at 1% FP).
  sim::Duration probe_timeout = sim::Duration::millis(35);
  /// Consecutive failures required before declaring the victim down.
  int confirm_failures = 1;
  /// Model nmap engine overhead per scan (Table I timings).
  bool nmap_overhead = false;
  /// Idle-scan zombie, if probe_type == TcpIdleScan.
  std::optional<ZombieRef> zombie;
  std::uint16_t victim_tcp_port = 80;
  /// ifconfig identity-change latency model (paper Fig. 4).
  NicOpModel ident_model = NicOpModel::identity_change();
  /// After claiming the identity, keep originating gratuitous traffic at
  /// this period so the binding stays fresh ("maintain persistence").
  /// Zero disables.
  sim::Duration maintain_period = sim::Duration::millis(500);
};

class PortProbingAttack {
 public:
  /// Event timeline; all instants are absolute SimTimes. The benches
  /// difference these against the victim's actual down time to
  /// regenerate Figs. 5-8.
  struct Timeline {
    sim::SimTime started;
    std::optional<sim::SimTime> victim_mac_acquired;
    /// Start of the final (timed-out) probe — Fig. 7's reference event.
    std::optional<sim::SimTime> final_probe_start;
    /// Probe timeout fired: attacker believes the victim is down (Fig 8).
    std::optional<sim::SimTime> victim_declared_down;
    /// Attacker NIC back up carrying the victim's identity (Fig. 5).
    std::optional<sim::SimTime> interface_up_as_victim;
    /// First spoofed traffic on the wire.
    std::optional<sim::SimTime> traffic_sent;
    /// Controller re-bound the victim's identity to the attacker
    /// (Fig. 6). Set via mark_hijack_confirmed() by the observer.
    std::optional<sim::SimTime> hijack_confirmed;
  };

  PortProbingAttack(sim::EventLoop& loop, sim::Rng rng, Host& attacker,
                    PortProbingConfig config);

  /// Begin: acquire the victim's MAC via arping, then probe.
  void start();

  [[nodiscard]] const Timeline& timeline() const { return timeline_; }
  [[nodiscard]] std::uint64_t probes_run() const { return probes_run_; }
  [[nodiscard]] bool identity_claimed() const {
    return timeline_.interface_up_as_victim.has_value();
  }

  /// Invoked right after the attacker originates spoofed traffic.
  void set_on_claimed(std::function<void()> cb) { on_claimed_ = std::move(cb); }

  /// The experiment harness calls this when it observes the Host
  /// Tracking Service re-bind the victim's MAC to the attacker's port.
  void mark_hijack_confirmed(sim::SimTime at);

  /// Attach observability (borrowed; nullptr detaches). The attack then
  /// emits a span tree mirroring the Timeline: a root "attack/hijack"
  /// span with per-probe "attack/probe" children, the
  /// "attack/disconnect-detect" window (final probe start -> declared
  /// down), and the "attack/race" window (declared down -> hijack
  /// confirmed) whose "attack/ident-change" child is the ifconfig
  /// latency. Probe totals mirror in at export time via a collector.
  void set_observability(obs::Observability* obs);

 private:
  void acquire_mac();
  void schedule_probe();
  void run_probe();
  void on_probe(const ProbeOutcome& outcome);
  void hijack();
  void maintain();

  sim::EventLoop& loop_;
  sim::Rng rng_;
  Host& host_;
  PortProbingConfig config_;
  LivenessProber prober_;
  Timeline timeline_;
  std::optional<net::MacAddress> victim_mac_;
  int consecutive_failures_ = 0;
  std::uint64_t probes_run_ = 0;
  bool hijacking_ = false;
  std::function<void()> on_claimed_;
  obs::Observability* obs_ = nullptr;
  obs::SpanId span_root_ = 0;   // attack/hijack, whole campaign
  obs::SpanId span_race_ = 0;   // attack/race, down -> confirmed
  obs::SpanId span_ident_ = 0;  // attack/ident-change
};

}  // namespace tmg::attack
