// Out-of-band relay channel.
//
// Models the attackers' secret side channel (an 802.11 link in the
// paper's Fig. 1 / Fig. 9 testbeds): a simple delay pipe outside the
// SDN, with propagation latency plus per-packet encode/decode overhead
// (Ethernet <-> 802.11 re-framing). That irreducible added latency is
// precisely what the TOPOGUARD+ LLI detects.
#pragma once

#include <functional>

#include "net/packet.hpp"
#include "sim/event_loop.hpp"
#include "sim/latency_model.hpp"
#include "sim/rng.hpp"

namespace tmg::attack {

struct OobChannelConfig {
  /// One-way propagation latency (paper Fig. 9: 10 ms).
  sim::Duration latency = sim::Duration::millis(10);
  /// Gaussian jitter on the propagation latency.
  sim::Duration jitter = sim::Duration::micros(500);
  /// Per-packet encode+decode overhead at the endpoints.
  sim::Duration codec_overhead = sim::Duration::millis(1);
};

class OutOfBandChannel {
 public:
  OutOfBandChannel(sim::EventLoop& loop, sim::Rng rng,
                   OobChannelConfig config = {});

  /// Relay `pkt` to the far end; `deliver` runs after the channel delay.
  void transfer(net::Packet pkt,
                std::function<void(net::Packet)> deliver);

  /// Schedule an arbitrary action after one channel traversal (control
  /// coordination between the colluding hosts).
  void signal(std::function<void()> action);

  [[nodiscard]] std::uint64_t transfers() const { return transfers_; }
  [[nodiscard]] sim::Duration nominal_delay() const {
    return config_.latency + config_.codec_overhead;
  }

 private:
  [[nodiscard]] sim::Duration sample_delay();

  sim::EventLoop& loop_;
  sim::Rng rng_;
  OobChannelConfig config_;
  std::uint64_t transfers_ = 0;
};

}  // namespace tmg::attack
