#include "attack/port_probing.hpp"

#include "obs/observability.hpp"

namespace tmg::attack {

namespace {

LivenessProber::Config prober_config(const PortProbingConfig& cfg) {
  LivenessProber::Config pc;
  pc.type = cfg.probe_type;
  pc.timeout = cfg.probe_timeout;
  pc.tool_overhead = cfg.nmap_overhead;
  pc.zombie = cfg.zombie;
  return pc;
}

}  // namespace

PortProbingAttack::PortProbingAttack(sim::EventLoop& loop, sim::Rng rng,
                                     Host& attacker, PortProbingConfig config)
    : loop_{loop},
      rng_{std::move(rng)},
      host_{attacker},
      config_{config},
      prober_{loop, rng_.fork(), attacker, prober_config(config)} {
  // Capture the victim's MAC from the first ARP reply it sends us.
  host_.add_listener([this](const net::Packet& pkt) {
    if (victim_mac_) return;
    const auto* arp = pkt.arp();
    if (arp && arp->op == net::ArpPayload::Op::Reply &&
        arp->sender_ip == config_.victim_ip) {
      victim_mac_ = arp->sender_mac;
      timeline_.victim_mac_acquired = loop_.now();
      if (obs_ != nullptr) {
        obs_->trace().instant(loop_.now(), "attack", "mac-acquired",
                              victim_mac_->to_string(), span_root_);
      }
    }
  });
}

void PortProbingAttack::set_observability(obs::Observability* obs) {
  obs_ = obs;
  if (obs_ == nullptr) return;
  obs_->add_collector([this](obs::MetricsRegistry& m, sim::SimTime) {
    m.gauge("attack.probes_run").set(static_cast<double>(probes_run_));
    m.gauge("attack.identity_claimed").set(identity_claimed() ? 1.0 : 0.0);
  });
}

void PortProbingAttack::start() {
  timeline_.started = loop_.now();
  if (obs_ != nullptr) {
    span_root_ = obs_->trace().begin_span(loop_.now(), "attack", "hijack");
    obs_->trace().annotate(span_root_, "victim_ip",
                           config_.victim_ip.to_string());
  }
  acquire_mac();
}

void PortProbingAttack::acquire_mac() {
  if (victim_mac_) {
    schedule_probe();
    return;
  }
  host_.send_arp_request(config_.victim_ip);
  // Retry until the victim answers (it is online at attack start).
  loop_.post_after(sim::Duration::millis(100), [this] { acquire_mac(); });
}

void PortProbingAttack::schedule_probe() {
  if (hijacking_) return;
  loop_.post_after(config_.probe_period, [this] { run_probe(); });
}

void PortProbingAttack::run_probe() {
  if (hijacking_ || prober_.busy()) {
    schedule_probe();
    return;
  }
  ++probes_run_;
  ProbeTarget target;
  target.ip = config_.victim_ip;
  target.mac = *victim_mac_;
  target.tcp_port = config_.victim_tcp_port;
  prober_.probe(target,
                [this](const ProbeOutcome& outcome) { on_probe(outcome); });
  schedule_probe();
}

void PortProbingAttack::on_probe(const ProbeOutcome& outcome) {
  if (hijacking_) return;
  if (obs_ != nullptr) {
    // Retroactive span: the prober runs one probe at a time, so the
    // outcome carries the exact send/decide instants.
    const obs::SpanId s = obs_->trace().begin_span(outcome.started, "attack",
                                                   "probe", span_root_);
    obs_->trace().annotate(s, "alive", outcome.alive ? "true" : "false");
    obs_->trace().end_span(s, outcome.finished);
  }
  if (outcome.alive) {
    consecutive_failures_ = 0;
    return;
  }
  ++consecutive_failures_;
  timeline_.final_probe_start = outcome.started;
  if (consecutive_failures_ < config_.confirm_failures) return;
  timeline_.victim_declared_down = outcome.finished;
  if (obs_ != nullptr) {
    const obs::SpanId detect = obs_->trace().begin_span(
        outcome.started, "attack", "disconnect-detect", span_root_);
    obs_->trace().annotate(detect, "confirm_failures",
                           std::to_string(consecutive_failures_));
    obs_->trace().end_span(detect, outcome.finished);
    span_race_ = obs_->trace().begin_span(outcome.finished, "attack", "race",
                                          span_root_);
  }
  hijack();
}

void PortProbingAttack::hijack() {
  hijacking_ = true;
  if (obs_ != nullptr) {
    span_ident_ = obs_->trace().begin_span(loop_.now(), "attack",
                                           "ident-change", span_race_);
  }
  // "ifconfig can reset a NIC's MAC and IP rapidly enough that spoofing
  // via packet header rewriting is unnecessary" (paper Sec. IV-B).
  host_.change_identity_timed(
      *victim_mac_, config_.victim_ip, config_.ident_model, [this] {
        timeline_.interface_up_as_victim = loop_.now();
        if (obs_ != nullptr) {
          obs_->trace().end_span(span_ident_, loop_.now());
        }
        // Originate traffic to generate a Packet-In and complete the
        // victim's "move" in the Host Tracking Service. A gratuitous
        // ARP is ordinary, expected dataplane traffic.
        host_.send_arp_request(config_.victim_ip);
        timeline_.traffic_sent = loop_.now();
        if (obs_ != nullptr) {
          obs_->trace().instant(loop_.now(), "attack", "traffic-sent", "",
                                span_race_);
        }
        if (on_claimed_) on_claimed_();
        if (config_.maintain_period > sim::Duration::zero()) maintain();
      });
}

void PortProbingAttack::maintain() {
  host_.send_arp_request(config_.victim_ip);
  loop_.post_after(config_.maintain_period, [this] { maintain(); });
}

void PortProbingAttack::mark_hijack_confirmed(sim::SimTime at) {
  if (timeline_.hijack_confirmed) return;
  timeline_.hijack_confirmed = at;
  if (obs_ != nullptr) {
    obs_->trace().annotate(span_race_, "outcome", "hijack-confirmed");
    obs_->trace().end_span(span_race_, at);
    obs_->trace().end_span(span_root_, at);
  }
}

}  // namespace tmg::attack
