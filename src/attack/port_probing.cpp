#include "attack/port_probing.hpp"

namespace tmg::attack {

namespace {

LivenessProber::Config prober_config(const PortProbingConfig& cfg) {
  LivenessProber::Config pc;
  pc.type = cfg.probe_type;
  pc.timeout = cfg.probe_timeout;
  pc.tool_overhead = cfg.nmap_overhead;
  pc.zombie = cfg.zombie;
  return pc;
}

}  // namespace

PortProbingAttack::PortProbingAttack(sim::EventLoop& loop, sim::Rng rng,
                                     Host& attacker, PortProbingConfig config)
    : loop_{loop},
      rng_{std::move(rng)},
      host_{attacker},
      config_{config},
      prober_{loop, rng_.fork(), attacker, prober_config(config)} {
  // Capture the victim's MAC from the first ARP reply it sends us.
  host_.add_listener([this](const net::Packet& pkt) {
    if (victim_mac_) return;
    const auto* arp = pkt.arp();
    if (arp && arp->op == net::ArpPayload::Op::Reply &&
        arp->sender_ip == config_.victim_ip) {
      victim_mac_ = arp->sender_mac;
      timeline_.victim_mac_acquired = loop_.now();
    }
  });
}

void PortProbingAttack::start() {
  timeline_.started = loop_.now();
  acquire_mac();
}

void PortProbingAttack::acquire_mac() {
  if (victim_mac_) {
    schedule_probe();
    return;
  }
  host_.send_arp_request(config_.victim_ip);
  // Retry until the victim answers (it is online at attack start).
  loop_.post_after(sim::Duration::millis(100), [this] { acquire_mac(); });
}

void PortProbingAttack::schedule_probe() {
  if (hijacking_) return;
  loop_.post_after(config_.probe_period, [this] { run_probe(); });
}

void PortProbingAttack::run_probe() {
  if (hijacking_ || prober_.busy()) {
    schedule_probe();
    return;
  }
  ++probes_run_;
  ProbeTarget target;
  target.ip = config_.victim_ip;
  target.mac = *victim_mac_;
  target.tcp_port = config_.victim_tcp_port;
  prober_.probe(target,
                [this](const ProbeOutcome& outcome) { on_probe(outcome); });
  schedule_probe();
}

void PortProbingAttack::on_probe(const ProbeOutcome& outcome) {
  if (hijacking_) return;
  if (outcome.alive) {
    consecutive_failures_ = 0;
    return;
  }
  ++consecutive_failures_;
  timeline_.final_probe_start = outcome.started;
  if (consecutive_failures_ < config_.confirm_failures) return;
  timeline_.victim_declared_down = outcome.finished;
  hijack();
}

void PortProbingAttack::hijack() {
  hijacking_ = true;
  // "ifconfig can reset a NIC's MAC and IP rapidly enough that spoofing
  // via packet header rewriting is unnecessary" (paper Sec. IV-B).
  host_.change_identity_timed(
      *victim_mac_, config_.victim_ip, config_.ident_model, [this] {
        timeline_.interface_up_as_victim = loop_.now();
        // Originate traffic to generate a Packet-In and complete the
        // victim's "move" in the Host Tracking Service. A gratuitous
        // ARP is ordinary, expected dataplane traffic.
        host_.send_arp_request(config_.victim_ip);
        timeline_.traffic_sent = loop_.now();
        if (on_claimed_) on_claimed_();
        if (config_.maintain_period > sim::Duration::zero()) maintain();
      });
}

void PortProbingAttack::maintain() {
  host_.send_arp_request(config_.victim_ip);
  loop_.post_after(config_.maintain_period, [this] { maintain(); });
}

void PortProbingAttack::mark_hijack_confirmed(sim::SimTime at) {
  if (!timeline_.hijack_confirmed) timeline_.hijack_confirmed = at;
}

}  // namespace tmg::attack
