// Alert flood attack (paper Sec. IV-B, "Alert Floods").
//
// Passive defenses raise alerts but do not change network state, and the
// operator must untangle attacker from victim per alert. An attacker
// exploits this by spoofing many end-host identities from its own port,
// generating a storm of migration/conflict alerts that buries the one
// alert belonging to the real hijack.
#pragma once

#include <cstdint>
#include <vector>

#include "attack/host.hpp"
#include "sim/event_loop.hpp"
#include "sim/rng.hpp"

namespace tmg::attack {

struct SpoofedIdentity {
  net::MacAddress mac;
  net::Ipv4Address ip;
};

class AlertFloodAttack {
 public:
  struct Config {
    /// Identities to impersonate (typically every host the attacker has
    /// enumerated on the subnet).
    std::vector<SpoofedIdentity> identities;
    /// Delay between successive spoofed packets.
    sim::Duration period = sim::Duration::millis(20);
    /// Total spoofed packets to send (0 = run until stopped).
    std::uint64_t budget = 0;
  };

  AlertFloodAttack(sim::EventLoop& loop, sim::Rng rng, Host& attacker,
                   Config config);

  void start();
  void stop() { running_ = false; }

  [[nodiscard]] std::uint64_t packets_sent() const { return sent_; }

 private:
  void tick();

  sim::EventLoop& loop_;
  sim::Rng rng_;
  Host& host_;
  Config config_;
  std::size_t next_identity_ = 0;
  std::uint64_t sent_ = 0;
  bool running_ = false;
};

}  // namespace tmg::attack
