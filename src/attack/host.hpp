// End-host model.
//
// Used for victims, bystanders, attackers, and idle-scan zombies. A host
// owns one NIC attached to a data-link side, auto-responds to ARP/ICMP/
// TCP according to its configuration, and exposes interface and identity
// controls with realistic latencies (NicOpModel).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

#include "attack/nic_model.hpp"
#include "of/data_link.hpp"
#include "sim/event_loop.hpp"
#include "sim/rng.hpp"

namespace tmg::attack {

struct HostConfig {
  net::MacAddress mac;
  net::Ipv4Address ip;
  bool reply_arp = true;
  bool reply_icmp = true;
  /// TCP ports with a listening service (SYN -> SYN-ACK).
  std::set<std::uint16_t> open_tcp_ports;
  /// Closed ports answer RST (a live host is detectable either way).
  bool closed_ports_send_rst = true;
  /// Reply to unsolicited SYN-ACKs with RST and expose a globally
  /// incrementing IP-ID: the side channel a TCP idle scan exploits.
  bool idle_scan_zombie = false;
  /// Host-stack processing delay before an auto-response.
  sim::Duration reply_delay = sim::Duration::micros(100);
  /// How long a packet may wait on ARP resolution before being dropped.
  sim::Duration resolve_timeout = sim::Duration::seconds(1);
  /// Network-access credential (802.1x-style). Non-zero: the host
  /// authenticates whenever its interface comes up or it is re-cabled,
  /// which the SecureBinding defense consumes. Zero: no credential.
  std::uint64_t auth_token = 0;
  /// Delay from link-up to the authentication exchange.
  sim::Duration auth_delay = sim::Duration::millis(5);
};

class Host {
 public:
  Host(sim::EventLoop& loop, sim::Rng rng, HostConfig config);
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  void attach_link(of::DataLink& link, of::Side side);

  /// Unplug from the current link (drops carrier, i.e. the switch will
  /// see a Port-Down after its detection window). Used for migrations.
  void detach_link();

  // --- Identity ---
  [[nodiscard]] net::MacAddress mac() const { return config_.mac; }
  [[nodiscard]] net::Ipv4Address ip() const { return config_.ip; }

  /// Instantaneous identity rewrite (used inside timed sequences).
  void set_identity(net::MacAddress mac, net::Ipv4Address ip);

  /// Full `ifconfig`-style identity change: interface down, identity
  /// rewritten, interface up after a latency drawn from `model`. Invokes
  /// `done` when the interface is back up.
  void change_identity_timed(net::MacAddress mac, net::Ipv4Address ip,
                             const NicOpModel& model,
                             std::function<void()> done = {});

  // --- Interface state ---
  [[nodiscard]] bool interface_up() const { return up_; }
  /// False while unplugged (e.g. mid-migration).
  [[nodiscard]] bool attached() const { return link_ != nullptr; }
  void set_interface(bool up);

  /// Flap: down now, up after `hold`. Invokes `done` on restoration.
  void flap_interface(sim::Duration hold, std::function<void()> done = {});

  // --- Traffic ---
  /// Transmit if the interface is up (silently dropped otherwise, like a
  /// real down NIC).
  void send(net::Packet pkt);

  void send_arp_request(net::Ipv4Address target);
  void send_ping(net::MacAddress dst_mac, net::Ipv4Address dst_ip,
                 std::uint16_t ident, std::uint16_t seq);
  void send_raw(net::MacAddress dst_mac, net::Ipv4Address dst_ip,
                std::string label, std::size_t size = 128);

  /// Pre-send hook: return true to consume the packet before the
  /// auto-responder and inbox see it (attacker sniffing / bridging).
  using PacketHook = std::function<bool(const net::Packet&)>;
  void set_packet_hook(PacketHook hook) { hook_ = std::move(hook); }

  /// Non-consuming observer invoked for every received packet after the
  /// hook (probe engines use this to match replies).
  using PacketListener = std::function<void(const net::Packet&)>;
  void add_listener(PacketListener listener);

  [[nodiscard]] const std::vector<net::Packet>& received() const {
    return inbox_;
  }

  /// ARP-cache lookup (learned from ARP sender fields only, like a real
  /// stack — data-frame source MACs are never trusted for resolution).
  [[nodiscard]] std::optional<net::MacAddress> arp_lookup(
      net::Ipv4Address ip) const;

  /// Send `pkt` to `dst_ip`, resolving the destination MAC via the ARP
  /// cache or an ARP exchange; the packet is queued while resolution is
  /// in flight and dropped if it fails within resolve_timeout.
  void send_resolved(net::Ipv4Address dst_ip, net::Packet pkt);
  [[nodiscard]] std::uint64_t rx_count() const { return rx_; }
  [[nodiscard]] std::uint64_t tx_count() const { return tx_; }
  [[nodiscard]] std::uint16_t current_ip_id() const { return ip_id_; }
  void clear_inbox() { inbox_.clear(); }

 private:
  void on_rx(const net::Packet& pkt);
  void maybe_authenticate();
  void auto_respond(const net::Packet& pkt);
  void reply_later(net::Packet pkt);
  void reply_later_resolved(net::Ipv4Address dst_ip, net::Packet pkt);
  void learn_arp(const net::ArpPayload& arp);
  void flush_pending(net::Ipv4Address ip, net::MacAddress mac);

  sim::EventLoop& loop_;
  sim::Rng rng_;
  HostConfig config_;
  of::DataLink* link_ = nullptr;
  of::Side side_ = of::Side::A;
  bool up_ = true;
  PacketHook hook_;
  std::vector<PacketListener> listeners_;
  std::vector<net::Packet> inbox_;
  std::uint64_t rx_ = 0;
  std::uint64_t tx_ = 0;
  std::uint16_t ip_id_ = 1;
  std::unordered_map<net::Ipv4Address, net::MacAddress> arp_cache_;
  struct PendingResolution {
    std::vector<net::Packet> queue;
    sim::TimerHandle timeout;
  };
  std::unordered_map<net::Ipv4Address, PendingResolution> pending_arp_;
};

}  // namespace tmg::attack
