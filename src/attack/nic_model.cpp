#include "attack/nic_model.hpp"

#include <cmath>

namespace tmg::attack {

sim::Duration NicOpModel::sample(sim::Rng& rng) const {
  const double ns = rng.lognormal(mu_ns_, sigma_);
  return sim::Duration::nanos(static_cast<std::int64_t>(ns));
}

sim::Duration NicOpModel::mean() const {
  const double ns = std::exp(mu_ns_ + sigma_ * sigma_ / 2.0);
  return sim::Duration::nanos(static_cast<std::int64_t>(ns));
}

NicOpModel NicOpModel::interface_flap() {
  // mean = exp(mu + sigma^2/2) = 3.25 ms with sigma = 0.45.
  const double sigma = 0.45;
  const double mu = std::log(3.25e6) - sigma * sigma / 2.0;
  return NicOpModel{mu, sigma};
}

NicOpModel NicOpModel::identity_change() {
  // sigma = 1.0 puts the 99.9th percentile near 130-160 ms while the
  // mean stays at 9.94 ms, matching Fig. 4's heavy tail.
  const double sigma = 1.0;
  const double mu = std::log(9.94e6) - sigma * sigma / 2.0;
  return NicOpModel{mu, sigma};
}

}  // namespace tmg::attack
