#include "attack/port_amnesia.hpp"

#include <cassert>
#include <span>

#include "obs/observability.hpp"

namespace tmg::attack {

namespace {

constexpr const char* kCovertLldpLabel = "covert-lldp";
constexpr const char* kCovertTransitLabel = "covert-transit";

// Covert in-band frames are addressed to a never-bound MAC so the
// controller delivers them by unknown-unicast flooding. Routing them to
// the peer's real MAC would collapse onto the fabricated link itself
// (the shortest "path" to the peer goes through the attackers' own
// ports) and loop.
const net::MacAddress kCovertSink{{0x02, 0xde, 0xad, 0xbe, 0xef, 0x01}};
const net::Ipv4Address kCovertSinkIp{10, 0, 254, 254};

std::uint64_t key_from_bytes(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t k = 0;
  for (std::size_t i = 0; i < 8 && i < bytes.size(); ++i) {
    k = (k << 8) | bytes[i];
  }
  return k;
}

std::vector<std::uint8_t> key_to_bytes(std::uint64_t k) {
  std::vector<std::uint8_t> out(8);
  for (int i = 0; i < 8; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(k >> (56 - 8 * i));
  }
  return out;
}

}  // namespace

PortAmnesiaAttack::PortAmnesiaAttack(sim::EventLoop& loop, Host& a, Host& b,
                                     OutOfBandChannel* oob, Config config)
    : loop_{loop}, config_{config}, oob_{oob} {
  assert(config_.mode == Mode::InBand || oob_ != nullptr);
  a_.host = &a;
  b_.host = &b;
  a_.peer = &b_;
  b_.peer = &a_;
}

void PortAmnesiaAttack::set_observability(obs::Observability* obs) {
  obs_ = obs;
  if (obs_ == nullptr) return;
  obs_->add_collector([this](obs::MetricsRegistry& m, sim::SimTime) {
    m.gauge("attack.lldp_relayed").set(static_cast<double>(lldp_relayed_));
    m.gauge("attack.flaps").set(static_cast<double>(flaps_));
    m.gauge("attack.covert_sends").set(static_cast<double>(covert_sends_));
    m.gauge("attack.transit_bridged")
        .set(static_cast<double>(transit_bridged_));
    m.gauge("attack.transit_dropped")
        .set(static_cast<double>(transit_dropped_));
  });
}

void PortAmnesiaAttack::start() {
  if (started_) return;
  started_ = true;
  arm(a_);
  arm(b_);
  if (config_.mode == Mode::OutOfBand && config_.preposition_flap) {
    // Reset both profiles to ANY *between* LLDP rounds, so no Port-Down
    // lands inside a propagation window (CMM-evasive).
    flap_then(a_, [] {});
    flap_then(b_, [] {});
  }
}

void PortAmnesiaAttack::arm(Endpoint& self) {
  self.host->set_packet_hook(
      [this, &self](const net::Packet& pkt) { return capture(self, pkt); });
}

bool PortAmnesiaAttack::capture(Endpoint& self, const net::Packet& pkt) {
  // LLDP broadcast from our switch: the link-fabrication raw material.
  if (pkt.is_lldp() && config_.relay_lldp) {
    // In one-way mode only endpoint A relays; B just swallows its LLDP.
    if (!config_.bidirectional && &self == &b_) return true;
    if (config_.mode == Mode::OutOfBand) {
      relay_lldp_oob(self, pkt);
    } else {
      relay_lldp_inband(self, pkt);
    }
    return true;
  }

  // In-band covert frames (flood-delivered; skip our own transmissions).
  if (const auto* raw = pkt.raw();
      raw != nullptr && pkt.dst_mac == kCovertSink) {
    if (pkt.src_mac == self.host->mac()) return true;  // our own echo
    if (raw->label == kCovertLldpLabel) {
      // The payload is the LLDPDU followed by an 8-byte capture stamp.
      std::span<const std::uint8_t> body{raw->bytes};
      std::optional<sim::SimTime> captured_at;
      if (body.size() > 8) {
        std::uint64_t stamp = 0;
        for (std::size_t i = body.size() - 8; i < body.size(); ++i) {
          stamp = (stamp << 8) | body[i];
        }
        captured_at =
            sim::SimTime::from_nanos(static_cast<std::int64_t>(stamp));
        body = body.first(body.size() - 8);
      }
      auto lldp = net::LldpPacket::parse(body);
      if (lldp) {
        ++lldp_relayed_;
        emit_lldp(self,
                  net::make_lldp_frame(net::MacAddress::lldp_multicast(),
                                       *lldp),
                  captured_at);
      }
      return true;
    }
    if (raw->label == kCovertTransitLabel) {
      const auto it = covert_store_.find(key_from_bytes(raw->bytes));
      if (it != covert_store_.end()) {
        net::Packet original = it->second;
        covert_store_.erase(it);
        ++transit_bridged_;
        originate_as_host(self, std::move(original));
      }
      return true;
    }
    return false;  // ordinary raw traffic for the attacker itself
  }

  // Transit over the fabricated link: anything not addressed to us.
  if (pkt.dst_mac != self.host->mac() && !pkt.dst_mac.is_broadcast() &&
      !pkt.dst_mac.is_multicast()) {
    if (config_.blackhole_transit) {
      ++transit_dropped_;
      return true;
    }
    if (config_.bridge_transit) {
      if (config_.mode == Mode::OutOfBand) {
        bridge_oob(self, pkt);
      } else {
        bridge_inband(self, pkt);
      }
      return true;
    }
  }
  return false;
}

void PortAmnesiaAttack::relay_lldp_oob(Endpoint& from, const net::Packet& pkt) {
  Endpoint* to = from.peer;
  const sim::SimTime captured_at = loop_.now();
  oob_->transfer(pkt, [this, to, captured_at](net::Packet relayed) {
    ++lldp_relayed_;
    emit_lldp(*to, std::move(relayed), captured_at);
  });
}

void PortAmnesiaAttack::relay_lldp_inband(Endpoint& from,
                                          const net::Packet& pkt) {
  const net::LldpPacket* lldp = pkt.lldp();
  if (!lldp) return;
  net::Packet covert =
      net::make_raw(from.host->mac(), from.host->ip(), kCovertSink,
                    kCovertSinkIp, kCovertLldpLabel, 128);
  auto& bytes = std::get<net::RawPayload>(covert.payload).bytes;
  bytes = lldp->serialize();
  // Append the capture timestamp (attacker-side bookkeeping so the
  // receiving script can log relay latency; 8 bytes past the LLDPDU).
  const auto captured = static_cast<std::uint64_t>(loop_.now().count_nanos());
  for (int i = 0; i < 8; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(captured >> (56 - 8 * i)));
  }
  ++covert_sends_;
  originate_as_host(from, std::move(covert));
}

void PortAmnesiaAttack::bridge_oob(Endpoint& from, const net::Packet& pkt) {
  Endpoint* to = from.peer;
  oob_->transfer(pkt, [this, to](net::Packet relayed) {
    ++transit_bridged_;
    // Out-of-band re-emission needs no profile dance: the port stays
    // SWITCH and the traffic is transit, not first-hop origination.
    to->host->send(std::move(relayed));
  });
}

void PortAmnesiaAttack::bridge_inband(Endpoint& from, const net::Packet& pkt) {
  const std::uint64_t key = next_covert_key_++;
  covert_store_.emplace(key, pkt);
  net::Packet covert =
      net::make_raw(from.host->mac(), from.host->ip(), kCovertSink,
                    kCovertSinkIp, kCovertTransitLabel, pkt.wire_size() + 64);
  std::get<net::RawPayload>(covert.payload).bytes = key_to_bytes(key);
  ++covert_sends_;
  originate_as_host(from, std::move(covert));
}

void PortAmnesiaAttack::originate_as_host(Endpoint& ep, net::Packet pkt) {
  if (ep.profile == Profile::Switch) {
    flap_then(ep, [this, &ep, pkt = std::move(pkt)]() mutable {
      ep.profile = Profile::Host;
      ep.host->send(std::move(pkt));
    });
    return;
  }
  ep.profile = Profile::Host;
  ep.host->send(std::move(pkt));
}

void PortAmnesiaAttack::emit_lldp(Endpoint& ep, net::Packet pkt,
                                  std::optional<sim::SimTime> captured_at) {
  const auto emit = [this, &ep, captured_at](net::Packet frame) {
    ep.profile = Profile::Switch;
    if (captured_at) {
      relay_latencies_.push_back(loop_.now() - *captured_at);
      if (obs_ != nullptr) {
        // Retroactive: the capture instant rode along with the relayed
        // LLDPDU, so the span covers the full capture -> re-emission leg.
        const obs::SpanId s =
            obs_->trace().begin_span(*captured_at, "attack", "relay");
        obs_->trace().end_span(s, loop_.now());
      }
    }
    ep.host->send(std::move(frame));
  };
  if (ep.profile == Profile::Host) {
    flap_then(ep, [emit, pkt = std::move(pkt)]() mutable {
      emit(std::move(pkt));
    });
    return;
  }
  emit(std::move(pkt));
}

void PortAmnesiaAttack::flap_then(Endpoint& ep, std::function<void()> after) {
  ep.after_flap.push_back(std::move(after));
  if (ep.flap_in_progress) return;
  ep.flap_in_progress = true;
  ++flaps_;
  obs::SpanId flap_span = 0;
  if (obs_ != nullptr) {
    flap_span = obs_->trace().begin_span(loop_.now(), "attack", "flap");
    obs_->trace().annotate(flap_span, "endpoint", &ep == &a_ ? "a" : "b");
  }
  ep.host->flap_interface(config_.flap_hold, [this, &ep, flap_span] {
    // Wait out the switch's Port-Up detection before transmitting.
    // tmglint: allow(callback-lifetime) ep aliases member a_/b_, lives as long as this
    loop_.post_after(config_.post_flap_settle, [this, &ep, flap_span] {
      ep.flap_in_progress = false;
      ep.profile = Profile::Any;  // the amnesia: classification forgotten
      if (obs_ != nullptr) obs_->trace().end_span(flap_span, loop_.now());
      auto actions = std::move(ep.after_flap);
      ep.after_flap.clear();
      for (auto& action : actions) action();
    });
  });
}

}  // namespace tmg::attack
