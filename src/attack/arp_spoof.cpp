#include "attack/arp_spoof.hpp"

namespace tmg::attack {

ArpSpoofAttack::ArpSpoofAttack(sim::EventLoop& loop, Host& attacker,
                               Config config)
    : loop_{loop}, host_{attacker}, config_{config} {}

void ArpSpoofAttack::start() {
  if (running_) return;
  running_ = true;
  tick();
}

void ArpSpoofAttack::tick() {
  if (!running_) return;
  if (config_.budget != 0 && sent_ >= config_.budget) {
    running_ = false;
    return;
  }
  // Forged reply: "victim_ip is-at <attacker MAC>", unicast to the
  // target so its cache learns the poisoned mapping.
  host_.send(net::make_arp_reply(host_.mac(), config_.victim_ip,
                                 config_.target_mac, config_.target_ip));
  ++sent_;
  loop_.post_after(config_.period, [this] { tick(); });
}

}  // namespace tmg::attack
