#include "attack/alert_flood.hpp"

namespace tmg::attack {

AlertFloodAttack::AlertFloodAttack(sim::EventLoop& loop, sim::Rng rng,
                                   Host& attacker, Config config)
    : loop_{loop},
      rng_{std::move(rng)},
      host_{attacker},
      config_{std::move(config)} {}

void AlertFloodAttack::start() {
  if (running_ || config_.identities.empty()) return;
  running_ = true;
  tick();
}

void AlertFloodAttack::tick() {
  if (!running_) return;
  if (config_.budget != 0 && sent_ >= config_.budget) {
    running_ = false;
    return;
  }
  const SpoofedIdentity& id = config_.identities[next_identity_];
  next_identity_ = (next_identity_ + 1) % config_.identities.size();
  // A gratuitous ARP with the spoofed identity: cheap, broadcast, and
  // guaranteed to reach the Host Tracking Service as a Packet-In.
  host_.send(net::make_arp_request(id.mac, id.ip, id.ip));
  ++sent_;
  loop_.post_after(config_.period, [this] { tick(); });
}

}  // namespace tmg::attack
