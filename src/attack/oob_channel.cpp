#include "attack/oob_channel.hpp"

#include <algorithm>
#include <utility>

namespace tmg::attack {

OutOfBandChannel::OutOfBandChannel(sim::EventLoop& loop, sim::Rng rng,
                                   OobChannelConfig config)
    : loop_{loop}, rng_{std::move(rng)}, config_{config} {}

sim::Duration OutOfBandChannel::sample_delay() {
  const double ns = rng_.normal(
      static_cast<double>(
          (config_.latency + config_.codec_overhead).count_nanos()),
      static_cast<double>(config_.jitter.count_nanos()));
  return std::max(sim::Duration::nanos(static_cast<std::int64_t>(ns)),
                  sim::Duration::micros(10));
}

void OutOfBandChannel::transfer(net::Packet pkt,
                                std::function<void(net::Packet)> deliver) {
  ++transfers_;
  loop_.post_after(
      sample_delay(),
      [pkt = std::move(pkt), deliver = std::move(deliver)]() mutable {
        deliver(std::move(pkt));
      });
}

void OutOfBandChannel::signal(std::function<void()> action) {
  loop_.post_after(sample_delay(), std::move(action));
}

}  // namespace tmg::attack
