#include "attack/host.hpp"

#include <cassert>
#include <utility>

namespace tmg::attack {

Host::Host(sim::EventLoop& loop, sim::Rng rng, HostConfig config)
    : loop_{loop}, rng_{std::move(rng)}, config_{std::move(config)} {}

void Host::attach_link(of::DataLink& link, of::Side side) {
  link_ = &link;
  side_ = side;
  link.attach(side, of::DataLink::Peer{
                        [this](const net::Packet& pkt) { on_rx(pkt); },
                        // Hosts do not act on the switch's carrier.
                        [](bool) {},
                    });
  link.set_carrier(side, up_);
  if (up_) maybe_authenticate();
}

void Host::maybe_authenticate() {
  if (config_.auth_token == 0) return;
  loop_.post_after(config_.auth_delay, [this] {
    if (!up_ || !link_) return;
    send(net::make_auth_frame(config_.mac, config_.ip, config_.auth_token));
  });
}

void Host::detach_link() {
  if (!link_) return;
  link_->set_carrier(side_, false);
  link_->attach(side_, of::DataLink::Peer{});
  link_ = nullptr;
}

void Host::add_listener(PacketListener listener) {
  listeners_.push_back(std::move(listener));
}

void Host::set_identity(net::MacAddress mac, net::Ipv4Address ip) {
  config_.mac = mac;
  config_.ip = ip;
}

void Host::change_identity_timed(net::MacAddress mac, net::Ipv4Address ip,
                                 const NicOpModel& model,
                                 std::function<void()> done) {
  set_interface(false);
  const sim::Duration latency = model.sample(rng_);
  loop_.post_after(latency,
                       [this, mac, ip, done = std::move(done)]() {
                         set_identity(mac, ip);
                         set_interface(true);
                         if (done) done();
                       });
}

void Host::set_interface(bool up) {
  if (up_ == up) return;
  up_ = up;
  if (link_) link_->set_carrier(side_, up);
  if (up) maybe_authenticate();
}

void Host::flap_interface(sim::Duration hold, std::function<void()> done) {
  set_interface(false);
  loop_.post_after(hold, [this, done = std::move(done)]() {
    set_interface(true);
    if (done) done();
  });
}

void Host::send(net::Packet pkt) {
  if (!up_ || !link_) return;
  ++tx_;
  if (pkt.ip) {
    pkt.ip->ident = ip_id_++;
  }
  link_->send(side_, std::move(pkt));
}

void Host::send_arp_request(net::Ipv4Address target) {
  send(net::make_arp_request(config_.mac, config_.ip, target));
}

void Host::send_ping(net::MacAddress dst_mac, net::Ipv4Address dst_ip,
                     std::uint16_t ident, std::uint16_t seq) {
  send(net::make_icmp_echo(config_.mac, config_.ip, dst_mac, dst_ip, ident,
                           seq));
}

void Host::send_raw(net::MacAddress dst_mac, net::Ipv4Address dst_ip,
                    std::string label, std::size_t size) {
  send(net::make_raw(config_.mac, config_.ip, dst_mac, dst_ip,
                     std::move(label), size));
}

void Host::reply_later(net::Packet pkt) {
  loop_.post_after(config_.reply_delay,
                       [this, pkt = std::move(pkt)]() mutable {
                         send(std::move(pkt));
                       });
}

void Host::reply_later_resolved(net::Ipv4Address dst_ip, net::Packet pkt) {
  loop_.post_after(config_.reply_delay,
                       [this, dst_ip, pkt = std::move(pkt)]() mutable {
                         send_resolved(dst_ip, std::move(pkt));
                       });
}

std::optional<net::MacAddress> Host::arp_lookup(net::Ipv4Address ip) const {
  const auto it = arp_cache_.find(ip);
  if (it == arp_cache_.end()) return std::nullopt;
  return it->second;
}

void Host::send_resolved(net::Ipv4Address dst_ip, net::Packet pkt) {
  if (const auto mac = arp_lookup(dst_ip)) {
    pkt.dst_mac = *mac;
    send(std::move(pkt));
    return;
  }
  auto [it, inserted] = pending_arp_.try_emplace(dst_ip);
  it->second.queue.push_back(std::move(pkt));
  if (!inserted) return;  // resolution already in flight
  send_arp_request(dst_ip);
  it->second.timeout =
      loop_.schedule_after(config_.resolve_timeout, [this, dst_ip] {
        pending_arp_.erase(dst_ip);  // unresolved: drop the queue
      });
}

void Host::learn_arp(const net::ArpPayload& arp) {
  if (arp.sender_mac.is_multicast()) return;
  if (arp.sender_ip == net::Ipv4Address::any()) return;
  arp_cache_[arp.sender_ip] = arp.sender_mac;
  flush_pending(arp.sender_ip, arp.sender_mac);
}

void Host::flush_pending(net::Ipv4Address ip, net::MacAddress mac) {
  const auto it = pending_arp_.find(ip);
  if (it == pending_arp_.end()) return;
  it->second.timeout.cancel();
  std::vector<net::Packet> queue = std::move(it->second.queue);
  pending_arp_.erase(it);
  for (auto& pkt : queue) {
    pkt.dst_mac = mac;
    send(std::move(pkt));
  }
}

void Host::on_rx(const net::Packet& pkt) {
  if (!up_) return;
  ++rx_;
  if (hook_ && hook_(pkt)) return;
  for (const auto& l : listeners_) l(pkt);
  inbox_.push_back(pkt);
  auto_respond(pkt);
}

void Host::auto_respond(const net::Packet& pkt) {
  // ARP: learn the sender mapping (the only trusted source of IP->MAC
  // bindings), and answer requests for our IP.
  if (const auto* arp = pkt.arp()) {
    learn_arp(*arp);
    if (config_.reply_arp && arp->op == net::ArpPayload::Op::Request &&
        arp->target_ip == config_.ip) {
      reply_later(net::make_arp_reply(config_.mac, config_.ip,
                                      arp->sender_mac, arp->sender_ip));
    }
    return;
  }

  // ICMP echo request to our IP -> echo reply, resolved via ARP (not
  // via the frame's source MAC — an IP-spoofed probe must elicit a
  // reply toward the *claimed* source, which is what the TCP idle scan
  // depends on).
  if (const auto* icmp = pkt.icmp()) {
    if (config_.reply_icmp &&
        icmp->type == net::IcmpPayload::Type::EchoRequest && pkt.ip &&
        pkt.ip->dst == config_.ip) {
      reply_later_resolved(
          pkt.ip->src,
          net::make_icmp_echo(config_.mac, config_.ip, pkt.src_mac,
                              pkt.ip->src, icmp->ident, icmp->seq,
                              /*reply=*/true));
    }
    return;
  }

  // TCP.
  if (const auto* tcp = pkt.tcp()) {
    if (!pkt.ip || pkt.ip->dst != config_.ip) return;
    if (tcp->flags.syn && !tcp->flags.ack) {
      // Inbound connection attempt.
      if (config_.open_tcp_ports.contains(tcp->dst_port)) {
        reply_later_resolved(
            pkt.ip->src,
            net::make_tcp(config_.mac, config_.ip, pkt.src_mac, pkt.ip->src,
                          tcp->dst_port, tcp->src_port,
                          net::TcpFlags{.syn = true, .ack = true}));
      } else if (config_.closed_ports_send_rst) {
        reply_later_resolved(
            pkt.ip->src,
            net::make_tcp(config_.mac, config_.ip, pkt.src_mac, pkt.ip->src,
                          tcp->dst_port, tcp->src_port,
                          net::TcpFlags{.rst = true}));
      }
      return;
    }
    if (tcp->flags.syn && tcp->flags.ack) {
      // Unsolicited SYN-ACK: a compliant stack answers RST. This is the
      // idle-scan zombie behavior (its IP-ID increments on the RST).
      if (config_.idle_scan_zombie) {
        reply_later_resolved(
            pkt.ip->src,
            net::make_tcp(config_.mac, config_.ip, pkt.src_mac, pkt.ip->src,
                          tcp->dst_port, tcp->src_port,
                          net::TcpFlags{.rst = true}));
      }
      return;
    }
    return;
  }
}

}  // namespace tmg::attack
