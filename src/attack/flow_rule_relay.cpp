#include "attack/flow_rule_relay.hpp"

namespace tmg::attack {

FlowRuleRelay::FlowRuleRelay(of::ControlChannel& channel, Config config)
    : channel_{channel}, config_{config} {}

void FlowRuleRelay::send(of::FlowMod::Command command, of::PortNo in_port,
                         of::PortNo out_port) {
  of::FlowMod fm;
  fm.command = command;
  fm.cookie = config_.cookie;
  fm.match.in_port = in_port;
  fm.match.ethertype = net::EtherType::Lldp;
  fm.action = of::FlowAction::output(out_port);
  fm.priority = config_.priority;
  fm.notify_on_removal = false;
  channel_.to_switch(fm);
  ++sent_;
}

void FlowRuleRelay::start() {
  if (active_) return;
  active_ = true;
  send(of::FlowMod::Command::Add, config_.left_port, config_.right_port);
  send(of::FlowMod::Command::Add, config_.right_port, config_.left_port);
}

void FlowRuleRelay::stop() {
  if (!active_) return;
  active_ = false;
  send(of::FlowMod::Command::DeleteMatching, config_.left_port,
       config_.right_port);
  send(of::FlowMod::Command::DeleteMatching, config_.right_port,
       config_.left_port);
}

}  // namespace tmg::attack
