#include "attack/link_fabrication.hpp"

namespace tmg::attack {

ClassicLinkFabrication::ClassicLinkFabrication(sim::EventLoop& loop, Host& a,
                                               Host& b, OutOfBandChannel& oob,
                                               Config config)
    : loop_{loop}, config_{config}, oob_{oob}, a_{a}, b_{b} {}

void ClassicLinkFabrication::start() {
  if (started_) return;
  started_ = true;
  arm(a_, b_, true);
  arm(b_, a_, config_.bidirectional);
}

void ClassicLinkFabrication::arm(Host& self, Host& peer, bool relay_lldp) {
  self.set_packet_hook([this, &self, &peer,
                        relay_lldp](const net::Packet& pkt) {
    if (pkt.is_lldp()) {
      if (!relay_lldp) return true;  // swallow silently
      oob_.transfer(pkt, [this, &peer](net::Packet relayed) {
        ++lldp_relayed_;
        peer.send(std::move(relayed));
      });
      return true;
    }
    if (config_.bridge_transit && pkt.dst_mac != self.mac() &&
        !pkt.dst_mac.is_broadcast() && !pkt.dst_mac.is_multicast()) {
      oob_.transfer(pkt, [this, &peer](net::Packet relayed) {
        ++transit_bridged_;
        peer.send(std::move(relayed));
      });
      return true;
    }
    return false;
  });
}

}  // namespace tmg::attack
