// Classic link fabrication (paper Sec. III-A.1) — the pre-Port-Amnesia
// baseline attack.
//
// Two colluding hosts relay LLDP over a side channel *without* resetting
// their behavioral profiles. Against a bare controller this fabricates
// the link; against TopoGuard the relayed LLDP arrives from HOST-
// classified ports and is detected (the motivation for Port Amnesia).
#pragma once

#include <cstdint>

#include "attack/host.hpp"
#include "attack/oob_channel.hpp"
#include "sim/event_loop.hpp"

namespace tmg::attack {

class ClassicLinkFabrication {
 public:
  struct Config {
    /// Relay both directions (fabricates the link from either side).
    bool bidirectional = true;
    /// Also bridge transit traffic (MITM) once the link exists.
    bool bridge_transit = true;
  };

  ClassicLinkFabrication(sim::EventLoop& loop, Host& a, Host& b,
                         OutOfBandChannel& oob, Config config);

  /// Convenience constructor with the default configuration.
  ClassicLinkFabrication(sim::EventLoop& loop, Host& a, Host& b,
                         OutOfBandChannel& oob)
      : ClassicLinkFabrication(loop, a, b, oob, Config{}) {}

  void start();

  [[nodiscard]] std::uint64_t lldp_relayed() const { return lldp_relayed_; }
  [[nodiscard]] std::uint64_t transit_bridged() const {
    return transit_bridged_;
  }

 private:
  void arm(Host& self, Host& peer, bool relay_lldp);

  sim::EventLoop& loop_;
  Config config_;
  OutOfBandChannel& oob_;
  Host& a_;
  Host& b_;
  std::uint64_t lldp_relayed_ = 0;
  std::uint64_t transit_bridged_ = 0;
  bool started_ = false;
};

}  // namespace tmg::attack
