// OpenFlow control-plane messages.
//
// A reduced but faithful subset of OpenFlow 1.0/1.3 semantics: the
// messages the paper's attacks and defenses live on (Packet-In,
// Packet-Out, Flow-Mod, Port-Status, Echo, Flow-Removed).
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace tmg::of {

using net::Dpid;
using net::PortNo;

/// Reserved port numbers (mirroring OFPP_*).
inline constexpr PortNo kPortFlood = 0xfffb;
inline constexpr PortNo kPortController = 0xfffd;
inline constexpr PortNo kPortNone = 0xffff;

/// A (switch, port) network location.
struct Location {
  Dpid dpid = 0;
  PortNo port = 0;

  auto operator<=>(const Location&) const = default;
  [[nodiscard]] std::string to_string() const;
};

/// Header-field match. Unset (nullopt) fields are wildcards.
struct FlowMatch {
  std::optional<PortNo> in_port;
  std::optional<net::MacAddress> src_mac;
  std::optional<net::MacAddress> dst_mac;
  std::optional<net::EtherType> ethertype;
  std::optional<net::Ipv4Address> src_ip;
  std::optional<net::Ipv4Address> dst_ip;

  [[nodiscard]] bool matches(const net::Packet& pkt, PortNo in) const;
  [[nodiscard]] std::string to_string() const;
  bool operator==(const FlowMatch&) const = default;
};

/// Forwarding action for a matched flow.
struct FlowAction {
  enum class Kind { Output, Flood, Drop, ToController } kind = Kind::Drop;
  PortNo out_port = 0;  // meaningful for Kind::Output

  static FlowAction output(PortNo p) { return {Kind::Output, p}; }
  static FlowAction flood() { return {Kind::Flood, 0}; }
  static FlowAction drop() { return {Kind::Drop, 0}; }
  static FlowAction to_controller() { return {Kind::ToController, 0}; }
  bool operator==(const FlowAction&) const = default;
};

// ---- Switch -> Controller ----

struct PacketIn {
  Dpid dpid = 0;
  PortNo in_port = 0;
  enum class Reason { TableMiss, Action } reason = Reason::TableMiss;
  net::Packet packet;
};

struct PortStatus {
  Dpid dpid = 0;
  PortNo port = 0;
  enum class Reason { Up, Down } reason = Reason::Down;
};

struct EchoReply {
  Dpid dpid = 0;
  std::uint64_t token = 0;
};

struct FlowRemoved {
  Dpid dpid = 0;
  std::uint64_t cookie = 0;
  enum class Reason { IdleTimeout, HardTimeout, Delete } reason =
      Reason::IdleTimeout;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
};

/// Per-flow counters, as returned by a stats request (used by SPHINX to
/// cross-check flow volumes along a path).
struct FlowStatsEntry {
  std::uint64_t cookie = 0;
  FlowMatch match;
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
};

struct FlowStatsReply {
  Dpid dpid = 0;
  std::uint32_t xid = 0;
  std::vector<FlowStatsEntry> entries;
};

/// Per-port counters (used by SPHINX's link-symmetry sanity invariant:
/// bytes transmitted into a link must reappear at the far end).
struct PortStatsEntry {
  PortNo port = 0;
  std::uint64_t rx_packets = 0;
  std::uint64_t tx_packets = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t tx_bytes = 0;
};

struct PortStatsReply {
  Dpid dpid = 0;
  std::uint32_t xid = 0;
  std::vector<PortStatsEntry> entries;
};

using SwitchToCtrl = std::variant<PacketIn, PortStatus, EchoReply,
                                  FlowRemoved, FlowStatsReply,
                                  PortStatsReply>;

// ---- Controller -> Switch ----

struct PacketOut {
  PortNo out_port = kPortFlood;  // kPortFlood, kPortController, or a port
  /// For flood actions: the port the packet originally arrived on
  /// (excluded from the flood). kPortNone floods every port.
  PortNo in_port = kPortNone;
  net::Packet packet;
};

struct FlowMod {
  enum class Command { Add, DeleteMatching } command = Command::Add;
  std::uint64_t cookie = 0;
  FlowMatch match;
  FlowAction action;
  std::uint16_t priority = 100;
  sim::Duration idle_timeout = sim::Duration::zero();  // zero = none
  sim::Duration hard_timeout = sim::Duration::zero();  // zero = none
  bool notify_on_removal = true;
};

struct EchoRequest {
  std::uint64_t token = 0;
};

struct FlowStatsRequest {
  std::uint32_t xid = 0;
};

struct PortStatsRequest {
  std::uint32_t xid = 0;
};

using CtrlToSwitch = std::variant<PacketOut, FlowMod, EchoRequest,
                                  FlowStatsRequest, PortStatsRequest>;

}  // namespace tmg::of

template <>
struct std::hash<tmg::of::Location> {
  std::size_t operator()(const tmg::of::Location& l) const noexcept {
    return std::hash<std::uint64_t>{}((l.dpid << 16) ^ l.port);
  }
};
