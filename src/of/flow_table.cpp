#include "of/flow_table.hpp"

#include <algorithm>

#include "sim/fastpath.hpp"

namespace tmg::of {

namespace {

/// The match explicitly pins the LLDP ethertype (override-path gate).
bool pins_lldp(const FlowMatch& m) {
  return m.ethertype.has_value() && *m.ethertype == net::EtherType::Lldp;
}

}  // namespace

std::optional<sim::SimTime> FlowTable::deadline_of(const FlowEntry& e) {
  std::optional<sim::SimTime> d;
  if (e.hard_timeout > sim::Duration::zero()) {
    d = e.installed_at + e.hard_timeout;
  }
  if (e.idle_timeout > sim::Duration::zero()) {
    const sim::SimTime idle_at = e.last_matched_at + e.idle_timeout;
    if (!d || idle_at < *d) d = idle_at;
  }
  return d;
}

void FlowTable::push_deadline(const FlowEntry& e, std::uint64_t id) {
  if (const auto d = deadline_of(e)) {
    expiry_heap_.push_back(HeapItem{*d, id});
    std::push_heap(expiry_heap_.begin(), expiry_heap_.end(), HeapLater{});
  }
}

std::size_t FlowTable::pos_of(std::uint64_t id) const {
  for (std::size_t i = 0; i < ids_.size(); ++i) {
    if (ids_[i] == id) return i;
  }
  return npos;
}

std::uint32_t FlowTable::intern_bucket(const FlowMatch& match) {
  if (!match.dst_mac) return kWildcardBucket;
  const auto [it, inserted] = bucket_of_.try_emplace(
      *match.dst_mac, static_cast<std::uint32_t>(bucket_of_.size() + 1));
  (void)inserted;
  return it->second;
}

void FlowTable::ensure_index() const {
  if (!index_dirty_) return;
  // Every slot already knows its bucket number, so the rebuild is pure
  // array traffic — no per-entry hashing (this runs after every
  // structural change, between bursts of per-packet lookups).
  buckets_.resize(bucket_of_.size() + 1);
  for (auto& bucket : buckets_) bucket.clear();
  for (std::size_t i = 0; i < bucket_no_.size(); ++i) {
    buckets_[bucket_no_[i]].push_back(static_cast<std::uint32_t>(i));
  }
  index_dirty_ = false;
}

void FlowTable::add(FlowEntry entry, sim::SimTime now) {
  entry.installed_at = now;
  entry.last_matched_at = now;
  // Replacements pair on an equal match, so the gate only moves on
  // a genuine insert (both paths below).
  const bool lldp = pins_lldp(entry.match);
  if (!sim::fastpath_enabled()) {
    // Replace an existing identical (match, priority) rule, as OpenFlow
    // does.
    for (auto& e : entries_) {
      if (e.priority == entry.priority && e.match == entry.match) {
        e = entry;
        return;
      }
    }
    const auto pos = std::find_if(
        entries_.begin(), entries_.end(),
        [&](const FlowEntry& e) { return e.priority < entry.priority; });
    entries_.insert(pos, std::move(entry));
    if (lldp) ++lldp_rules_;
    return;
  }

  // Replacement candidates share the entry's dst key, so only that
  // bucket needs scanning. The (match, priority) pair is unique in the
  // table, so "any hit" == "first hit" of the linear scan.
  ensure_index();
  const auto scan_replace = [&](const std::vector<std::uint32_t>& bucket) {
    for (const std::uint32_t pos : bucket) {
      FlowEntry& e = entries_[pos];
      if (e.priority == entry.priority && e.match == entry.match) {
        e = entry;
        // Same position and dst key: the index is untouched. The new
        // timeouts may be shorter than the old heap deadline, so cover
        // them with a fresh heap entry (the stale one dies lazily).
        push_deadline(e, ids_[pos]);
        return true;
      }
    }
    return false;
  };
  if (entry.match.dst_mac) {
    if (const auto it = bucket_of_.find(*entry.match.dst_mac);
        it != bucket_of_.end() && scan_replace(buckets_[it->second])) {
      return;
    }
  } else if (scan_replace(buckets_[kWildcardBucket])) {
    return;
  }

  const auto pos = std::find_if(
      entries_.begin(), entries_.end(),
      [&](const FlowEntry& e) { return e.priority < entry.priority; });
  const std::uint64_t id = next_id_++;
  push_deadline(entry, id);
  const auto offset = pos - entries_.begin();
  ids_.insert(ids_.begin() + offset, id);
  bucket_no_.insert(bucket_no_.begin() + offset, intern_bucket(entry.match));
  entries_.insert(pos, std::move(entry));
  if (lldp) ++lldp_rules_;
  index_dirty_ = true;
}

FlowEntry* FlowTable::lookup_lldp_override(const net::Packet& pkt,
                                           PortNo in_port, sim::SimTime now) {
  if (lldp_rules_ == 0) return nullptr;
  // Linear in priority order: override rules are an attack-path rarity,
  // so this never needs (and must not perturb) the dst-MAC fast path —
  // LLDP multicast frames have no bucket of their own.
  for (auto& e : entries_) {
    if (!pins_lldp(e.match)) continue;
    if (!e.match.matches(pkt, in_port)) continue;
    ++e.packet_count;
    e.byte_count += pkt.wire_size();
    e.last_matched_at = now;  // idle deadline moves later; heap is lazy
    return &e;
  }
  return nullptr;
}

std::vector<FlowEntry> FlowTable::remove_matching(const FlowMatch& match) {
  std::vector<FlowEntry> removed;
  if (!sim::fastpath_enabled()) {
    auto it = entries_.begin();
    while (it != entries_.end()) {
      if (it->match == match) {
        removed.push_back(*it);
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
    if (pins_lldp(match)) lldp_rules_ -= removed.size();
    return removed;
  }

  // Exact-match removal: every victim lives in the bucket keyed by
  // match.dst_mac (ascending positions == table order).
  ensure_index();
  const std::vector<std::uint32_t>* bucket = &buckets_[kWildcardBucket];
  if (match.dst_mac) {
    const auto it = bucket_of_.find(*match.dst_mac);
    if (it == bucket_of_.end()) return removed;
    bucket = &buckets_[it->second];
  }
  std::vector<std::uint32_t> victims;
  for (const std::uint32_t pos : *bucket) {
    if (entries_[pos].match == match) victims.push_back(pos);
  }
  if (victims.empty()) return removed;
  removed.reserve(victims.size());
  for (const std::uint32_t pos : victims) removed.push_back(entries_[pos]);
  // Batch-erase the victim positions (ascending), compacting in place.
  std::size_t out = 0;
  std::size_t next_victim = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (next_victim < victims.size() && victims[next_victim] == i) {
      ++next_victim;
      continue;
    }
    if (out != i) {
      entries_[out] = std::move(entries_[i]);
      ids_[out] = ids_[i];
      bucket_no_[out] = bucket_no_[i];
    }
    ++out;
  }
  entries_.resize(out);
  ids_.resize(out);
  bucket_no_.resize(out);
  if (pins_lldp(match)) lldp_rules_ -= removed.size();
  index_dirty_ = true;
  return removed;
}

FlowEntry* FlowTable::lookup(const net::Packet& pkt, PortNo in_port,
                             sim::SimTime now) {
  const auto hit = [&](FlowEntry& e) {
    ++e.packet_count;
    e.byte_count += pkt.wire_size();
    e.last_matched_at = now;  // idle deadline moves later; heap is lazy
    return &e;
  };
  if (!sim::fastpath_enabled()) {
    for (auto& e : entries_) {
      if (e.match.matches(pkt, in_port)) return hit(e);
    }
    return nullptr;
  }

  // Merge-walk the packet's dst bucket and the wildcard bucket in
  // ascending position order. Entries in other dst buckets require
  // match.dst_mac == their key != pkt.dst_mac, so the linear scan would
  // reject them anyway: the walk tests the same candidates in the same
  // order as the full scan.
  ensure_index();
  static const std::vector<std::uint32_t> kEmpty;
  const std::vector<std::uint32_t>* bucket = &kEmpty;
  if (const auto it = bucket_of_.find(pkt.dst_mac); it != bucket_of_.end()) {
    bucket = &buckets_[it->second];
  }
  const std::vector<std::uint32_t>& wildcard = buckets_[kWildcardBucket];
  std::size_t bi = 0;
  std::size_t wi = 0;
  while (bi < bucket->size() || wi < wildcard.size()) {
    std::uint32_t pos;
    if (wi >= wildcard.size() ||
        (bi < bucket->size() && (*bucket)[bi] < wildcard[wi])) {
      pos = (*bucket)[bi++];
    } else {
      pos = wildcard[wi++];
    }
    FlowEntry& e = entries_[pos];
    if (e.match.matches(pkt, in_port)) return hit(e);
  }
  return nullptr;
}

std::vector<ExpiredEntry> FlowTable::expire(sim::SimTime now) {
  std::vector<ExpiredEntry> expired;
  const auto reason_for = [&](const FlowEntry& e) {
    const bool hard = e.hard_timeout > sim::Duration::zero() &&
                      now - e.installed_at >= e.hard_timeout;
    return hard ? FlowRemoved::Reason::HardTimeout
                : FlowRemoved::Reason::IdleTimeout;
  };
  if (!sim::fastpath_enabled()) {
    auto it = entries_.begin();
    while (it != entries_.end()) {
      const bool hard = it->hard_timeout > sim::Duration::zero() &&
                        now - it->installed_at >= it->hard_timeout;
      const bool idle = it->idle_timeout > sim::Duration::zero() &&
                        now - it->last_matched_at >= it->idle_timeout;
      if (hard || idle) {
        if (pins_lldp(it->match)) --lldp_rules_;
        expired.push_back(ExpiredEntry{
            *it, hard ? FlowRemoved::Reason::HardTimeout
                      : FlowRemoved::Reason::IdleTimeout});
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
    return expired;
  }

  // Drain heap items due at or before `now`; each is a lower bound, so
  // re-check the live entry's true deadline and re-push survivors.
  std::vector<std::uint32_t> victims;
  while (!expiry_heap_.empty() && expiry_heap_.front().at <= now) {
    std::pop_heap(expiry_heap_.begin(), expiry_heap_.end(), HeapLater{});
    const HeapItem item = expiry_heap_.back();
    expiry_heap_.pop_back();
    const std::size_t pos = pos_of(item.id);
    if (pos == npos) continue;  // stale: entry already removed
    const auto d = deadline_of(entries_[pos]);
    if (!d) continue;  // stale: replaced by a timeout-free entry
    if (*d <= now) {
      victims.push_back(static_cast<std::uint32_t>(pos));
    } else {
      expiry_heap_.push_back(HeapItem{*d, item.id});
      std::push_heap(expiry_heap_.begin(), expiry_heap_.end(), HeapLater{});
    }
  }
  if (victims.empty()) return expired;
  // Duplicate heap items can nominate a position twice; the linear scan
  // removes in ascending table order.
  std::sort(victims.begin(), victims.end());
  victims.erase(std::unique(victims.begin(), victims.end()), victims.end());
  expired.reserve(victims.size());
  for (const std::uint32_t pos : victims) {
    if (pins_lldp(entries_[pos].match)) --lldp_rules_;
    expired.push_back(ExpiredEntry{entries_[pos], reason_for(entries_[pos])});
  }
  std::size_t out = 0;
  std::size_t next_victim = 0;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (next_victim < victims.size() && victims[next_victim] == i) {
      ++next_victim;
      continue;
    }
    if (out != i) {
      entries_[out] = std::move(entries_[i]);
      ids_[out] = ids_[i];
      bucket_no_[out] = bucket_no_[i];
    }
    ++out;
  }
  entries_.resize(out);
  ids_.resize(out);
  bucket_no_.resize(out);
  index_dirty_ = true;
  return expired;
}

void FlowTable::clear() {
  entries_.clear();
  lldp_rules_ = 0;
  ids_.clear();
  expiry_heap_.clear();
  bucket_of_.clear();
  bucket_no_.clear();
  buckets_.clear();
  index_dirty_ = true;
}

std::vector<std::string> FlowTable::audit() const {
  std::vector<std::string> issues;
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    if (entries_[i - 1].priority < entries_[i].priority) {
      issues.push_back("flow table not priority-sorted at position " +
                       std::to_string(i));
    }
  }
  const std::size_t lldp_actual = static_cast<std::size_t>(
      std::count_if(entries_.begin(), entries_.end(),
                    [](const FlowEntry& e) { return pins_lldp(e.match); }));
  if (lldp_actual != lldp_rules_) {
    issues.push_back("lldp rule gate " + std::to_string(lldp_rules_) +
                     " != recount " + std::to_string(lldp_actual));
  }
  if (!sim::fastpath_enabled()) {
    std::sort(issues.begin(), issues.end());
    return issues;
  }
  if (ids_.size() != entries_.size()) {
    issues.push_back("id column size " + std::to_string(ids_.size()) +
                     " != table size " + std::to_string(entries_.size()));
  }
  if (bucket_no_.size() != entries_.size()) {
    issues.push_back("bucket column size " +
                     std::to_string(bucket_no_.size()) + " != table size " +
                     std::to_string(entries_.size()));
  }
  // Bucket-number column: each slot must carry the interned number of
  // its own dst key (what makes the hash-free rebuild file it right).
  for (std::size_t i = 0;
       i < entries_.size() && i < bucket_no_.size(); ++i) {
    std::uint32_t want = kWildcardBucket;
    if (entries_[i].match.dst_mac) {
      const auto it = bucket_of_.find(*entries_[i].match.dst_mac);
      want = it == bucket_of_.end() ? static_cast<std::uint32_t>(-1)
                                    : it->second;
    }
    if (bucket_no_[i] != want) {
      issues.push_back("position " + std::to_string(i) +
                       " carries bucket number " +
                       std::to_string(bucket_no_[i]) + " but its dst key " +
                       "interns to " + std::to_string(want));
    }
  }
  // Index partition: every position exactly once, ascending within its
  // bucket, filed under its own bucket number. This is precisely what
  // makes the merge-walk lookup visit the linear scan's candidates in
  // order.
  ensure_index();
  std::vector<std::size_t> seen(entries_.size(), 0);
  for (std::size_t k = 0; k < buckets_.size(); ++k) {
    const std::vector<std::uint32_t>& bucket = buckets_[k];
    const std::string label = std::to_string(k);
    for (std::size_t j = 0; j < bucket.size(); ++j) {
      const std::uint32_t pos = bucket[j];
      if (pos >= entries_.size()) {
        issues.push_back("index bucket " + label +
                         " holds out-of-range position " +
                         std::to_string(pos));
        continue;
      }
      ++seen[pos];
      if (j > 0 && bucket[j - 1] >= pos) {
        issues.push_back("index bucket " + label +
                         " not strictly ascending at position " +
                         std::to_string(pos));
      }
      if (pos < bucket_no_.size() && bucket_no_[pos] != k) {
        issues.push_back("index bucket " + label +
                         " misfiles entry at position " +
                         std::to_string(pos));
      }
    }
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    if (seen[i] != 1) {
      issues.push_back("position " + std::to_string(i) + " indexed " +
                       std::to_string(seen[i]) + " times (expected 1)");
    }
  }
  // Heap coverage: every live entry with a timeout must have a heap item
  // no later than its true deadline (the lower-bound invariant that
  // makes heap expiry equal linear expiry).
  for (std::size_t i = 0; i < entries_.size() && i < ids_.size(); ++i) {
    const auto d = deadline_of(entries_[i]);
    if (!d) continue;
    bool covered = false;
    for (const HeapItem& item : expiry_heap_) {
      if (item.id == ids_[i] && item.at <= *d) {
        covered = true;
        break;
      }
    }
    if (!covered) {
      issues.push_back("entry at position " + std::to_string(i) +
                       " has deadline but no covering heap item");
    }
  }
  std::sort(issues.begin(), issues.end());
  return issues;
}

}  // namespace tmg::of
