#include "of/flow_table.hpp"

#include <algorithm>

namespace tmg::of {

void FlowTable::add(FlowEntry entry, sim::SimTime now) {
  entry.installed_at = now;
  entry.last_matched_at = now;
  // Replace an existing identical (match, priority) rule, as OpenFlow does.
  for (auto& e : entries_) {
    if (e.priority == entry.priority && e.match == entry.match) {
      e = entry;
      return;
    }
  }
  const auto pos = std::find_if(
      entries_.begin(), entries_.end(),
      [&](const FlowEntry& e) { return e.priority < entry.priority; });
  entries_.insert(pos, std::move(entry));
}

std::vector<FlowEntry> FlowTable::remove_matching(const FlowMatch& match) {
  std::vector<FlowEntry> removed;
  auto it = entries_.begin();
  while (it != entries_.end()) {
    if (it->match == match) {
      removed.push_back(*it);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return removed;
}

FlowEntry* FlowTable::lookup(const net::Packet& pkt, PortNo in_port,
                             sim::SimTime now) {
  for (auto& e : entries_) {
    if (e.match.matches(pkt, in_port)) {
      ++e.packet_count;
      e.byte_count += pkt.wire_size();
      e.last_matched_at = now;
      return &e;
    }
  }
  return nullptr;
}

std::vector<ExpiredEntry> FlowTable::expire(sim::SimTime now) {
  std::vector<ExpiredEntry> expired;
  auto it = entries_.begin();
  while (it != entries_.end()) {
    bool hard = it->hard_timeout > sim::Duration::zero() &&
                now - it->installed_at >= it->hard_timeout;
    bool idle = it->idle_timeout > sim::Duration::zero() &&
                now - it->last_matched_at >= it->idle_timeout;
    if (hard || idle) {
      expired.push_back(ExpiredEntry{
          *it, hard ? FlowRemoved::Reason::HardTimeout
                    : FlowRemoved::Reason::IdleTimeout});
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  return expired;
}

}  // namespace tmg::of
