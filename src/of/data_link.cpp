#include "of/data_link.hpp"

#include <cassert>
#include <utility>

namespace tmg::of {

DataLink::DataLink(sim::EventLoop& loop, sim::Rng rng,
                   std::unique_ptr<sim::LatencyModel> latency)
    : loop_{loop}, rng_{std::move(rng)}, latency_{std::move(latency)} {
  assert(latency_);
}

void DataLink::attach(Side side, Peer peer) {
  peers_[idx(side)] = std::move(peer);
}

void DataLink::send(Side from, net::Packet pkt) {
  send(from, std::make_shared<const net::Packet>(std::move(pkt)));
}

void DataLink::send(Side from, std::shared_ptr<const net::Packet> pkt) {
  const Side to = other(from);
  if (!carrier_[idx(from)] || !carrier_[idx(to)]) return;  // no carrier: lost
  if (drop_ && drop_(*pkt)) return;  // injected in-transit loss
  // A wire is FIFO: jitter must not reorder packets in one direction.
  sim::SimTime at = loop_.now() + latency_->sample(rng_);
  if (at < last_delivery_[idx(to)]) at = last_delivery_[idx(to)];
  last_delivery_[idx(to)] = at;
  loop_.post_at(at, [this, to, pkt = std::move(pkt)]() {
    auto& peer = peers_[idx(to)];
    if (!peer.on_packet) return;
    ++delivered_[idx(to)];
    if (tap_) tap_(*pkt, to);
    peer.on_packet(*pkt);
  });
}

void DataLink::set_carrier(Side side, bool up) {
  if (carrier_[idx(side)] == up) return;
  carrier_[idx(side)] = up;
  auto& peer = peers_[idx(other(side))];
  if (peer.on_peer_carrier) peer.on_peer_carrier(up);
}

bool DataLink::carrier(Side side) const { return carrier_[idx(side)]; }

std::uint64_t DataLink::delivered(Side to) const { return delivered_[idx(to)]; }

}  // namespace tmg::of
