#include "of/control_channel.hpp"

#include <cassert>
#include <utility>

namespace tmg::of {

ControlChannel::ControlChannel(sim::EventLoop& loop, sim::Rng rng,
                               std::unique_ptr<sim::LatencyModel> latency)
    : loop_{loop}, rng_{std::move(rng)}, latency_{std::move(latency)} {
  assert(latency_);
}

void ControlChannel::attach_switch(SwitchHandler handler) {
  switch_handler_ = std::move(handler);
}

void ControlChannel::attach_controller(CtrlHandler handler) {
  ctrl_handler_ = std::move(handler);
}

void ControlChannel::to_switch(CtrlToSwitch msg) {
  ++n_down_;
  ++down_counts_[msg.index()];
  // The channel is a TCP session: per-message jitter must not reorder.
  sim::SimTime at = loop_.now() + latency_->sample(rng_);
  if (at < last_down_delivery_) at = last_down_delivery_;
  last_down_delivery_ = at;
  loop_.post_at(at, [this, msg = std::move(msg)]() {
    if (switch_handler_) switch_handler_(msg);
  });
}

void ControlChannel::to_controller(SwitchToCtrl msg) {
  ++n_up_;
  ++up_counts_[msg.index()];
  sim::SimTime at = loop_.now() + latency_->sample(rng_);
  if (at < last_up_delivery_) at = last_up_delivery_;
  last_up_delivery_ = at;
  loop_.post_at(at, [this, msg = std::move(msg)]() {
    if (ctrl_handler_) ctrl_handler_(msg);
  });
}

}  // namespace tmg::of
