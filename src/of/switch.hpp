// OpenFlow switch model.
//
// Forwards dataplane packets per its flow table, punts table misses and
// all LLDP to the controller as Packet-In, honors Packet-Out / Flow-Mod,
// and reports port state transitions. Carrier loss is detected through
// the IEEE 802.3 link-integrity pulse window (16±8 ms by default): a
// flap shorter than the sampled detection delay produces *no* Port-Down,
// which is the physical fact the in-band port-amnesia attack must respect
// (paper Sec. V-A).
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "of/control_channel.hpp"
#include "of/data_link.hpp"
#include "of/flow_table.hpp"
#include "of/messages.hpp"
#include "sim/event_loop.hpp"
#include "sim/rng.hpp"

namespace tmg::of {

struct PortStats {
  std::uint64_t rx_packets = 0;
  std::uint64_t tx_packets = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t tx_bytes = 0;
};

class Switch {
 public:
  struct Config {
    Dpid dpid = 0;
    /// Link-integrity pulse window: carrier loss shorter than a delay
    /// sampled uniformly from [detect_min, detect_max] goes unnoticed.
    sim::Duration detect_min = sim::Duration::millis(8);
    sim::Duration detect_max = sim::Duration::millis(24);
    /// Delay from carrier restoration to operational Port-Up.
    sim::Duration up_detect = sim::Duration::millis(1);
    /// Period of the flow-expiry sweep.
    sim::Duration expiry_sweep = sim::Duration::seconds(1);
    /// Dataplane forwarding latency within the switch.
    sim::Duration forward_delay = sim::Duration::micros(10);
  };

  Switch(sim::EventLoop& loop, sim::Rng rng, Config config,
         ControlChannel& channel);

  Switch(const Switch&) = delete;
  Switch& operator=(const Switch&) = delete;

  /// Attach one side of a data link as port `port`. Port numbers are
  /// switch-local and must be unique.
  void attach_link(PortNo port, DataLink& link, Side side);

  [[nodiscard]] Dpid dpid() const { return config_.dpid; }
  [[nodiscard]] bool port_oper_up(PortNo port) const;
  [[nodiscard]] const PortStats& port_stats(PortNo port) const;
  [[nodiscard]] const FlowTable& flow_table() const { return table_; }
  [[nodiscard]] std::vector<PortNo> ports() const;

 private:
  struct Port {
    DataLink* link = nullptr;
    Side side = Side::A;
    bool peer_carrier_up = true;  // last raw signal from the far end
    bool oper_up = true;          // state as reported to the controller
    std::uint64_t epoch = 0;      // invalidates in-flight detection checks
    PortStats stats;
  };

  void handle_ctrl(const CtrlToSwitch& msg);
  void handle_packet_out(const PacketOut& po);
  void handle_flow_mod(const FlowMod& fm);
  void on_rx(PortNo port, const net::Packet& pkt);
  void on_peer_carrier(PortNo port, bool up);
  void forward(const net::Packet& pkt, PortNo out_port);
  /// Copy-free forwarding core: the packet is shared between the
  /// forward-delay event, the wire event, and (on floods) every egress
  /// port — one Packet copy total per switch traversal.
  void forward_shared(std::shared_ptr<const net::Packet> pkt,
                      PortNo out_port);
  void flood(const net::Packet& pkt, PortNo except_port);
  void apply_action(const net::Packet& pkt, PortNo in_port,
                    const FlowAction& action);
  void send_packet_in(PortNo in_port, const net::Packet& pkt,
                      PacketIn::Reason reason);
  void sweep_expired();

  sim::EventLoop& loop_;
  sim::Rng rng_;
  Config config_;
  ControlChannel& channel_;
  std::map<PortNo, Port> ports_;
  FlowTable table_;
};

}  // namespace tmg::of
