// Controller <-> switch control channel.
//
// Carries OpenFlow messages with a per-message one-way latency. The
// TOPOGUARD+ Link Latency Inspector explicitly measures this channel's
// RTT (echo probes) in order to subtract it from LLDP propagation time,
// so the latency model here matters for reproducing Figs. 10-11.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <variant>

#include "of/messages.hpp"
#include "sim/event_loop.hpp"
#include "sim/latency_model.hpp"
#include "sim/rng.hpp"

namespace tmg::of {

class ControlChannel {
 public:
  using SwitchHandler = std::function<void(const CtrlToSwitch&)>;
  using CtrlHandler = std::function<void(const SwitchToCtrl&)>;

  ControlChannel(sim::EventLoop& loop, sim::Rng rng,
                 std::unique_ptr<sim::LatencyModel> latency);

  void attach_switch(SwitchHandler handler);
  void attach_controller(CtrlHandler handler);

  /// Controller -> switch, delivered after a sampled one-way latency.
  void to_switch(CtrlToSwitch msg);

  /// Switch -> controller.
  void to_controller(SwitchToCtrl msg);

  [[nodiscard]] sim::Duration nominal_latency() const {
    return latency_->nominal();
  }

  [[nodiscard]] std::uint64_t messages_to_switch() const { return n_down_; }
  [[nodiscard]] std::uint64_t messages_to_controller() const { return n_up_; }

  /// Per-message-type counters, indexed by the variant alternative index
  /// of CtrlToSwitch / SwitchToCtrl. Each array sums to the matching
  /// total above; the pipeline observability layer reports them.
  using DownCounts = std::array<std::uint64_t, std::variant_size_v<CtrlToSwitch>>;
  using UpCounts = std::array<std::uint64_t, std::variant_size_v<SwitchToCtrl>>;
  [[nodiscard]] const DownCounts& to_switch_counts() const {
    return down_counts_;
  }
  [[nodiscard]] const UpCounts& to_controller_counts() const {
    return up_counts_;
  }

 private:
  sim::EventLoop& loop_;
  sim::Rng rng_;
  std::unique_ptr<sim::LatencyModel> latency_;
  SwitchHandler switch_handler_;
  CtrlHandler ctrl_handler_;
  std::uint64_t n_down_ = 0;
  std::uint64_t n_up_ = 0;
  DownCounts down_counts_{};
  UpCounts up_counts_{};
  sim::SimTime last_down_delivery_;
  sim::SimTime last_up_delivery_;
};

}  // namespace tmg::of
