// Switch flow table: priority-ordered rules with counters and timeouts.
//
// `entries_` (sorted by descending priority, stable for ties) remains
// the source of truth and defines all observable semantics. On top of
// it the fast path maintains:
//
//  * a dst-MAC index: for each concrete match.dst_mac, the ascending
//    list of table positions holding that key, plus one list for
//    wildcard-dst entries. A packet lookup merge-walks its dst bucket
//    and the wildcard bucket in position order — entries keyed to a
//    different dst MAC can never match the packet, so the walk visits
//    exactly the candidates the full linear scan would test, in the
//    same order. MAC keys are interned once into dense bucket numbers
//    (bucket 0 = wildcard) and each table slot carries its bucket
//    number, so the lazy rebuild after a structural change is pure
//    array traffic — position pushes into flat vectors, no hashing.
//
//  * a lazy min-heap of (deadline, entry id) for timeout expiry. Heap
//    deadlines are lower bounds: an idle deadline only moves later as
//    the rule keeps matching, so a popped entry is re-checked against
//    its true deadline and re-pushed if still alive. A sweep that
//    expires nothing costs O(1) instead of O(table).
//
// With the fast path disabled (sim::fastpath_enabled() == false) every
// operation runs the original linear algorithms; audit() cross-checks
// the index and heap against the vector for the invariant checker.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "of/messages.hpp"
#include "sim/time.hpp"

namespace tmg::of {

struct FlowEntry {
  std::uint64_t cookie = 0;
  FlowMatch match;
  FlowAction action;
  std::uint16_t priority = 100;
  sim::Duration idle_timeout = sim::Duration::zero();
  sim::Duration hard_timeout = sim::Duration::zero();
  bool notify_on_removal = true;

  // Counters / bookkeeping.
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
  sim::SimTime installed_at;
  sim::SimTime last_matched_at;
};

/// Reason a sweep removed an entry.
struct ExpiredEntry {
  FlowEntry entry;
  FlowRemoved::Reason reason = FlowRemoved::Reason::IdleTimeout;
};

class FlowTable {
 public:
  /// Install (or replace an identical-match, identical-priority) entry.
  void add(FlowEntry entry, sim::SimTime now);

  /// Remove all entries whose match equals `match` exactly. Returns the
  /// removed entries.
  std::vector<FlowEntry> remove_matching(const FlowMatch& match);

  /// Find the highest-priority entry matching the packet; updates its
  /// counters and last-match time. Returns nullptr on table miss.
  FlowEntry* lookup(const net::Packet& pkt, PortNo in_port, sim::SimTime now);

  /// Highest-priority entry that matches the packet AND explicitly pins
  /// match.ethertype to LLDP; counters update only on such a hit.
  /// Entries with a wildcard or different ethertype are invisible here,
  /// so pre-existing rules can never start capturing LLDP — only a rule
  /// deliberately installed against 0x88cc overrides the controller
  /// punt (the flow-rule-relay attack surface; see Switch::on_rx).
  FlowEntry* lookup_lldp_override(const net::Packet& pkt, PortNo in_port,
                                  sim::SimTime now);

  /// Cheap gate for the override path: any entry pinned to LLDP?
  [[nodiscard]] bool has_lldp_rule() const { return lldp_rules_ > 0; }

  /// Remove and return entries whose idle/hard timeout elapsed at `now`.
  std::vector<ExpiredEntry> expire(sim::SimTime now);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::vector<FlowEntry>& entries() const {
    return entries_;
  }

  void clear();

  /// Coherence audit: index buckets must exactly partition the table in
  /// ascending position order under the correct key, the table must be
  /// priority-sorted, and every live entry with a timeout must be
  /// covered by a heap entry at or before its true deadline (the
  /// properties that make indexed lookup == linear scan and heap expiry
  /// == linear expiry). Returns a sorted list of violations.
  [[nodiscard]] std::vector<std::string> audit() const;

 private:
  struct HeapItem {
    sim::SimTime at;
    std::uint64_t id;
  };
  // Min-heap comparator (std::push_heap builds a max-heap, so invert).
  struct HeapLater {
    bool operator()(const HeapItem& a, const HeapItem& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };

  /// Earliest time at which the entry can expire, given its current
  /// counters; nullopt if it has no timeouts.
  [[nodiscard]] static std::optional<sim::SimTime> deadline_of(
      const FlowEntry& e);

  void ensure_index() const;
  void push_deadline(const FlowEntry& e, std::uint64_t id);
  /// Position of a live id, or npos. O(n), used on the rare expiry path.
  [[nodiscard]] std::size_t pos_of(std::uint64_t id) const;
  /// Dense bucket number for a match's dst key, interning new MACs
  /// (insert path only; lookups use bucket_of_.find and never intern).
  [[nodiscard]] std::uint32_t intern_bucket(const FlowMatch& match);

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  static constexpr std::uint32_t kWildcardBucket = 0;

  // Kept sorted by descending priority (stable for equal priorities).
  std::vector<FlowEntry> entries_;
  // Live entries with match.ethertype == LLDP (override-path gate).
  std::size_t lldp_rules_ = 0;
  // Stable id per table slot, parallel to entries_ (heap references ids,
  // not positions, because positions shift on erase).
  std::vector<std::uint64_t> ids_;
  std::uint64_t next_id_ = 1;
  // Lazy min-heap on (at, id); may hold stale ids and outdated (always
  // too-early) deadlines, resolved when popped.
  std::vector<HeapItem> expiry_heap_;
  // Grow-only interning of concrete dst MACs into bucket numbers >= 1
  // (kWildcardBucket holds the entries with no dst constraint).
  std::unordered_map<net::MacAddress, std::uint32_t> bucket_of_;
  // Parallel to entries_: each slot's bucket number.
  std::vector<std::uint32_t> bucket_no_;
  // Bucket number -> ascending positions. Rebuilt on demand after
  // structural mutations, without touching bucket_of_.
  mutable std::vector<std::vector<std::uint32_t>> buckets_;
  mutable bool index_dirty_ = true;
};

}  // namespace tmg::of
