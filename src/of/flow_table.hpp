// Switch flow table: priority-ordered rules with counters and timeouts.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "of/messages.hpp"
#include "sim/time.hpp"

namespace tmg::of {

struct FlowEntry {
  std::uint64_t cookie = 0;
  FlowMatch match;
  FlowAction action;
  std::uint16_t priority = 100;
  sim::Duration idle_timeout = sim::Duration::zero();
  sim::Duration hard_timeout = sim::Duration::zero();
  bool notify_on_removal = true;

  // Counters / bookkeeping.
  std::uint64_t packet_count = 0;
  std::uint64_t byte_count = 0;
  sim::SimTime installed_at;
  sim::SimTime last_matched_at;
};

/// Reason a sweep removed an entry.
struct ExpiredEntry {
  FlowEntry entry;
  FlowRemoved::Reason reason = FlowRemoved::Reason::IdleTimeout;
};

class FlowTable {
 public:
  /// Install (or replace an identical-match, identical-priority) entry.
  void add(FlowEntry entry, sim::SimTime now);

  /// Remove all entries whose match equals `match` exactly. Returns the
  /// removed entries.
  std::vector<FlowEntry> remove_matching(const FlowMatch& match);

  /// Find the highest-priority entry matching the packet; updates its
  /// counters and last-match time. Returns nullptr on table miss.
  FlowEntry* lookup(const net::Packet& pkt, PortNo in_port, sim::SimTime now);

  /// Remove and return entries whose idle/hard timeout elapsed at `now`.
  std::vector<ExpiredEntry> expire(sim::SimTime now);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const std::vector<FlowEntry>& entries() const {
    return entries_;
  }

  void clear() { entries_.clear(); }

 private:
  // Kept sorted by descending priority (stable for equal priorities).
  std::vector<FlowEntry> entries_;
};

}  // namespace tmg::of
