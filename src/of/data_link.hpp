// Physical dataplane link.
//
// Connects two attachment points (switch port <-> switch port, or switch
// port <-> host NIC). Transports packets with a sampled per-packet
// latency and propagates carrier (link-pulse) state changes; the port
// logic on the switch side decides when a carrier loss becomes a
// Port-Down (IEEE 802.3 link-integrity pulse window).
#pragma once

#include <functional>
#include <memory>

#include "net/packet.hpp"
#include "sim/event_loop.hpp"
#include "sim/latency_model.hpp"
#include "sim/rng.hpp"

namespace tmg::of {

enum class Side { A, B };

constexpr Side other(Side s) { return s == Side::A ? Side::B : Side::A; }

class DataLink {
 public:
  struct Peer {
    /// Invoked when a packet arrives at this side.
    std::function<void(const net::Packet&)> on_packet;
    /// Invoked when the *remote* side's carrier changes (raw signal; any
    /// debouncing/detection delay is up to the receiver).
    std::function<void(bool carrier_up)> on_peer_carrier;
  };

  DataLink(sim::EventLoop& loop, sim::Rng rng,
           std::unique_ptr<sim::LatencyModel> latency);

  /// Register the handler for one side. Must be called for both sides
  /// before traffic flows.
  void attach(Side side, Peer peer);

  /// Transmit a packet from `from` to the opposite side. Dropped if
  /// either side's carrier is down at transmission time.
  void send(Side from, net::Packet pkt);

  /// Zero-copy variant: the payload is shared, not copied into the
  /// in-flight event (the switch flood path transmits one packet out
  /// many ports). The callback captures only the shared_ptr, so it fits
  /// the event loop's inline storage.
  void send(Side from, std::shared_ptr<const net::Packet> pkt);

  /// Raise/lower this side's carrier. The opposite peer is informed
  /// immediately (signal propagation is negligible at these scales).
  void set_carrier(Side side, bool up);

  [[nodiscard]] bool carrier(Side side) const;
  [[nodiscard]] sim::Duration nominal_latency() const {
    return latency_->nominal();
  }

  /// Passive monitor tap invoked on every delivered packet (IDS span
  /// port). Does not affect delivery.
  using Tap = std::function<void(const net::Packet&, Side delivered_to)>;
  void set_tap(Tap tap) { tap_ = std::move(tap); }

  /// Failure injection: packets for which the predicate returns true
  /// are silently lost in transit (carrier stays up).
  using DropFilter = std::function<bool(const net::Packet&)>;
  void set_drop_filter(DropFilter filter) { drop_ = std::move(filter); }

  // Per-direction delivered-packet counters (A->B, B->A).
  [[nodiscard]] std::uint64_t delivered(Side to) const;

 private:
  sim::EventLoop& loop_;
  sim::Rng rng_;
  std::unique_ptr<sim::LatencyModel> latency_;
  Peer peers_[2];
  Tap tap_;
  DropFilter drop_;
  bool carrier_[2] = {true, true};
  std::uint64_t delivered_[2] = {0, 0};
  sim::SimTime last_delivery_[2];

  static std::size_t idx(Side s) { return s == Side::A ? 0 : 1; }
};

}  // namespace tmg::of
