#include "of/switch.hpp"

#include <cassert>
#include <stdexcept>

namespace tmg::of {

Switch::Switch(sim::EventLoop& loop, sim::Rng rng, Config config,
               ControlChannel& channel)
    : loop_{loop}, rng_{std::move(rng)}, config_{config}, channel_{channel} {
  channel_.attach_switch([this](const CtrlToSwitch& msg) { handle_ctrl(msg); });
  loop_.post_after(config_.expiry_sweep, [this] { sweep_expired(); });
}

void Switch::attach_link(PortNo port, DataLink& link, Side side) {
  assert(port != 0 && port < kPortFlood);
  auto [it, inserted] = ports_.try_emplace(port);
  if (!inserted) throw std::logic_error("port already attached");
  Port& p = it->second;
  p.link = &link;
  p.side = side;
  p.peer_carrier_up = link.carrier(other(side));
  p.oper_up = p.peer_carrier_up;
  link.attach(side,
              DataLink::Peer{
                  [this, port](const net::Packet& pkt) { on_rx(port, pkt); },
                  [this, port](bool up) { on_peer_carrier(port, up); },
              });
}

bool Switch::port_oper_up(PortNo port) const {
  const auto it = ports_.find(port);
  return it != ports_.end() && it->second.oper_up;
}

const PortStats& Switch::port_stats(PortNo port) const {
  return ports_.at(port).stats;
}

std::vector<PortNo> Switch::ports() const {
  std::vector<PortNo> out;
  out.reserve(ports_.size());
  for (const auto& [no, _] : ports_) out.push_back(no);
  return out;
}

void Switch::handle_ctrl(const CtrlToSwitch& msg) {
  struct Visitor {
    Switch& sw;
    void operator()(const PacketOut& po) { sw.handle_packet_out(po); }
    void operator()(const FlowMod& fm) { sw.handle_flow_mod(fm); }
    void operator()(const EchoRequest& er) {
      sw.channel_.to_controller(EchoReply{sw.dpid(), er.token});
    }
    void operator()(const FlowStatsRequest& req) {
      FlowStatsReply reply;
      reply.dpid = sw.dpid();
      reply.xid = req.xid;
      for (const auto& e : sw.table_.entries()) {
        reply.entries.push_back(
            FlowStatsEntry{e.cookie, e.match, e.packet_count, e.byte_count});
      }
      sw.channel_.to_controller(std::move(reply));
    }
    void operator()(const PortStatsRequest& req) {
      PortStatsReply reply;
      reply.dpid = sw.dpid();
      reply.xid = req.xid;
      for (const auto& [no, port] : sw.ports_) {
        reply.entries.push_back(PortStatsEntry{
            no, port.stats.rx_packets, port.stats.tx_packets,
            port.stats.rx_bytes, port.stats.tx_bytes});
      }
      sw.channel_.to_controller(std::move(reply));
    }
  };
  std::visit(Visitor{*this}, msg);
}

void Switch::handle_packet_out(const PacketOut& po) {
  if (po.out_port == kPortController) {
    // Bounce straight back as Packet-In: the TOPOGUARD+ control-link RTT
    // probe (paper Sec. VI-D, "Control Link Latency").
    send_packet_in(kPortController, po.packet, PacketIn::Reason::Action);
    return;
  }
  if (po.out_port == kPortFlood) {
    flood(po.packet, po.in_port);
    return;
  }
  forward(po.packet, po.out_port);
}

void Switch::handle_flow_mod(const FlowMod& fm) {
  if (fm.command == FlowMod::Command::Add) {
    FlowEntry e;
    e.cookie = fm.cookie;
    e.match = fm.match;
    e.action = fm.action;
    e.priority = fm.priority;
    e.idle_timeout = fm.idle_timeout;
    e.hard_timeout = fm.hard_timeout;
    e.notify_on_removal = fm.notify_on_removal;
    table_.add(std::move(e), loop_.now());
    return;
  }
  for (const auto& removed : table_.remove_matching(fm.match)) {
    if (removed.notify_on_removal) {
      channel_.to_controller(FlowRemoved{config_.dpid, removed.cookie,
                                         FlowRemoved::Reason::Delete,
                                         removed.packet_count,
                                         removed.byte_count});
    }
  }
}

void Switch::on_rx(PortNo port, const net::Packet& pkt) {
  auto it = ports_.find(port);
  if (it == ports_.end()) return;
  Port& p = it->second;
  // A port the switch considers down does not accept frames (e.g. during
  // the brief up-detect window after carrier restoration).
  if (!p.oper_up) return;
  ++p.stats.rx_packets;
  p.stats.rx_bytes += pkt.wire_size();

  // LLDP goes to the controller (Floodlight pre-installs this punt rule
  // as part of link discovery) — unless a flow entry explicitly pinned
  // to the LLDP ethertype outranks the punt, mirroring hardware
  // OpenFlow switches where the discovery punt is just another rule an
  // operator (or an attacker with Flow-Mod reach) can shadow. Benign
  // forwarding rules never pin 0x88cc, so absent such a rule this is
  // byte-identical to the unconditional punt.
  if (pkt.is_lldp()) {
    if (FlowEntry* entry = table_.lookup_lldp_override(pkt, port,
                                                       loop_.now())) {
      apply_action(pkt, port, entry->action);
      return;
    }
    send_packet_in(port, pkt, PacketIn::Reason::Action);
    return;
  }

  if (FlowEntry* entry = table_.lookup(pkt, port, loop_.now())) {
    apply_action(pkt, port, entry->action);
    return;
  }
  send_packet_in(port, pkt, PacketIn::Reason::TableMiss);
}

void Switch::apply_action(const net::Packet& pkt, PortNo in_port,
                          const FlowAction& action) {
  switch (action.kind) {
    case FlowAction::Kind::Output:
      forward(pkt, action.out_port);
      break;
    case FlowAction::Kind::Flood:
      flood(pkt, in_port);
      break;
    case FlowAction::Kind::ToController:
      send_packet_in(in_port, pkt, PacketIn::Reason::Action);
      break;
    case FlowAction::Kind::Drop:
      break;
  }
}

void Switch::forward(const net::Packet& pkt, PortNo out_port) {
  forward_shared(std::make_shared<const net::Packet>(pkt), out_port);
}

void Switch::forward_shared(std::shared_ptr<const net::Packet> pkt,
                            PortNo out_port) {
  auto it = ports_.find(out_port);
  if (it == ports_.end()) return;
  Port& p = it->second;
  if (!p.oper_up) return;
  ++p.stats.tx_packets;
  p.stats.tx_bytes += pkt->wire_size();
  DataLink* link = p.link;
  const Side side = p.side;
  loop_.post_after(config_.forward_delay,
                       [link, side, pkt = std::move(pkt)]() mutable {
                         link->send(side, std::move(pkt));
                       });
}

void Switch::flood(const net::Packet& pkt, PortNo except_port) {
  // One shared copy feeds every egress port.
  const auto shared = std::make_shared<const net::Packet>(pkt);
  for (auto& [no, p] : ports_) {
    if (no == except_port || !p.oper_up) continue;
    forward_shared(shared, no);
  }
}

void Switch::send_packet_in(PortNo in_port, const net::Packet& pkt,
                            PacketIn::Reason reason) {
  channel_.to_controller(PacketIn{config_.dpid, in_port, reason, pkt});
}

void Switch::on_peer_carrier(PortNo port, bool up) {
  auto it = ports_.find(port);
  if (it == ports_.end()) return;
  Port& p = it->second;
  p.peer_carrier_up = up;
  ++p.epoch;
  const std::uint64_t epoch = p.epoch;

  if (!up && p.oper_up) {
    // Carrier lost: only a sustained loss (>= link-integrity window)
    // becomes an operational Port-Down.
    const auto lo = config_.detect_min.count_nanos();
    const auto hi = config_.detect_max.count_nanos();
    const auto delay =
        sim::Duration::nanos(rng_.uniform_int(lo, hi > lo ? hi : lo));
    loop_.post_after(delay, [this, port, epoch] {
      auto pit = ports_.find(port);
      if (pit == ports_.end()) return;
      Port& pp = pit->second;
      // A newer carrier change supersedes this check (fast flap).
      if (pp.epoch != epoch) return;
      if (!pp.peer_carrier_up && pp.oper_up) {
        pp.oper_up = false;
        channel_.to_controller(
            PortStatus{config_.dpid, port, PortStatus::Reason::Down});
      }
    });
  } else if (up && !p.oper_up) {
    loop_.post_after(config_.up_detect, [this, port, epoch] {
      auto pit = ports_.find(port);
      if (pit == ports_.end()) return;
      Port& pp = pit->second;
      if (pp.epoch != epoch) return;
      if (pp.peer_carrier_up && !pp.oper_up) {
        pp.oper_up = true;
        channel_.to_controller(
            PortStatus{config_.dpid, port, PortStatus::Reason::Up});
      }
    });
  }
}

void Switch::sweep_expired() {
  for (const auto& expired : table_.expire(loop_.now())) {
    if (expired.entry.notify_on_removal) {
      channel_.to_controller(
          FlowRemoved{config_.dpid, expired.entry.cookie, expired.reason,
                      expired.entry.packet_count, expired.entry.byte_count});
    }
  }
  loop_.post_after(config_.expiry_sweep, [this] { sweep_expired(); });
}

}  // namespace tmg::of
