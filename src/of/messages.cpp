#include "of/messages.hpp"

#include <cstdio>

namespace tmg::of {

std::string Location::to_string() const {
  char buf[48];
  std::snprintf(buf, sizeof buf, "0x%llx:%u",
                static_cast<unsigned long long>(dpid), port);
  return buf;
}

bool FlowMatch::matches(const net::Packet& pkt, PortNo in) const {
  if (in_port && *in_port != in) return false;
  if (src_mac && *src_mac != pkt.src_mac) return false;
  if (dst_mac && *dst_mac != pkt.dst_mac) return false;
  if (ethertype && *ethertype != pkt.ethertype) return false;
  if (src_ip) {
    if (!pkt.ip || pkt.ip->src != *src_ip) return false;
  }
  if (dst_ip) {
    if (!pkt.ip || pkt.ip->dst != *dst_ip) return false;
  }
  return true;
}

std::string FlowMatch::to_string() const {
  std::string s = "{";
  char buf[64];
  if (in_port) {
    std::snprintf(buf, sizeof buf, "in=%u ", *in_port);
    s += buf;
  }
  if (src_mac) s += "smac=" + src_mac->to_string() + " ";
  if (dst_mac) s += "dmac=" + dst_mac->to_string() + " ";
  if (ethertype) {
    std::snprintf(buf, sizeof buf, "eth=0x%04x ",
                  static_cast<unsigned>(*ethertype));
    s += buf;
  }
  if (src_ip) s += "sip=" + src_ip->to_string() + " ";
  if (dst_ip) s += "dip=" + dst_ip->to_string() + " ";
  if (s.size() > 1 && s.back() == ' ') s.pop_back();
  s += "}";
  return s;
}

}  // namespace tmg::of
