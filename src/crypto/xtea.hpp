// XTEA block cipher in CTR mode.
//
// TOPOGUARD+'s Link Latency Inspector embeds the LLDP departure time in
// an *encrypted* timestamp TLV so that relaying hosts can neither read
// nor rewrite it. XTEA-CTR is small, has no external dependencies, and
// its per-64-bit-block cost is representative of the "LLDP construction"
// overhead the paper measures in Table II.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace tmg::crypto {

/// 128-bit XTEA key.
struct XteaKey {
  std::array<std::uint32_t, 4> words{};

  /// Derive from arbitrary bytes via SHA-256 (first 16 bytes).
  static XteaKey derive(std::span<const std::uint8_t> seed);
};

/// Encrypt one 64-bit block (32 rounds).
std::uint64_t xtea_encrypt_block(const XteaKey& key, std::uint64_t block);

/// Decrypt one 64-bit block.
std::uint64_t xtea_decrypt_block(const XteaKey& key, std::uint64_t block);

/// CTR-mode keystream XOR: encrypt == decrypt. `nonce` selects the
/// keystream; reusing a (key, nonce) pair leaks plaintext XORs, so the
/// LLI uses a per-packet nonce.
void xtea_ctr_apply(const XteaKey& key, std::uint64_t nonce,
                    std::span<std::uint8_t> data);

/// Convenience: encrypt a 64-bit timestamp with an authenticating tag is
/// handled at the TLV layer; this seals just the value.
std::vector<std::uint8_t> seal_u64(const XteaKey& key, std::uint64_t nonce,
                                   std::uint64_t value);

/// Inverse of seal_u64. Returns false if `sealed` has the wrong size.
bool open_u64(const XteaKey& key, std::uint64_t nonce,
              std::span<const std::uint8_t> sealed, std::uint64_t& value_out);

}  // namespace tmg::crypto
