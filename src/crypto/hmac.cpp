#include "crypto/hmac.hpp"

#include <algorithm>
#include <cassert>

namespace tmg::crypto {

Key Key::derive(std::span<const std::uint8_t> seed) {
  const Digest256 d = Sha256::hash(seed);
  return Key{std::vector<std::uint8_t>(d.begin(), d.end())};
}

Digest256 hmac_sha256(const Key& key, std::span<const std::uint8_t> data) {
  constexpr std::size_t kBlock = 64;
  std::array<std::uint8_t, kBlock> k{};
  if (key.bytes.size() > kBlock) {
    const Digest256 kd = Sha256::hash(key.bytes);
    std::copy(kd.begin(), kd.end(), k.begin());
  } else {
    std::copy(key.bytes.begin(), key.bytes.end(), k.begin());
  }

  std::array<std::uint8_t, kBlock> ipad{};
  std::array<std::uint8_t, kBlock> opad{};
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(data);
  const Digest256 inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finish();
}

bool digest_equal(const Digest256& a, const Digest256& b) {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

std::vector<std::uint8_t> truncated_mac(const Key& key,
                                        std::span<const std::uint8_t> data,
                                        std::size_t n) {
  assert(n <= 32);
  const Digest256 d = hmac_sha256(key, data);
  return {d.begin(), d.begin() + static_cast<std::ptrdiff_t>(n)};
}

}  // namespace tmg::crypto
