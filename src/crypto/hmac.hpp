// HMAC-SHA256 (RFC 2104).
//
// TopoGuard authenticates controller-emitted LLDP packets with a keyed
// MAC so that end-hosts cannot forge LLDP contents (they can still relay
// intact packets, which is exactly what the port-amnesia attacks exploit).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/sha256.hpp"

namespace tmg::crypto {

/// A symmetric key held by the controller.
struct Key {
  std::vector<std::uint8_t> bytes;

  /// Derive a key deterministically from a seed label (test fixtures and
  /// scenario setup; production code would use a CSPRNG).
  static Key derive(std::span<const std::uint8_t> seed);
};

/// HMAC-SHA256 of `data` under `key`.
Digest256 hmac_sha256(const Key& key, std::span<const std::uint8_t> data);

/// Constant-time comparison of two digests.
bool digest_equal(const Digest256& a, const Digest256& b);

/// Truncated MAC (first `n` bytes of the HMAC), as carried in the LLDP
/// authenticator TLV.
std::vector<std::uint8_t> truncated_mac(const Key& key,
                                        std::span<const std::uint8_t> data,
                                        std::size_t n);

}  // namespace tmg::crypto
