#include "crypto/xtea.hpp"

#include "crypto/sha256.hpp"

namespace tmg::crypto {

namespace {
constexpr std::uint32_t kDelta = 0x9e3779b9;
constexpr int kRounds = 32;
}  // namespace

XteaKey XteaKey::derive(std::span<const std::uint8_t> seed) {
  const Digest256 d = Sha256::hash(seed);
  XteaKey k;
  for (int i = 0; i < 4; ++i) {
    k.words[static_cast<std::size_t>(i)] =
        (static_cast<std::uint32_t>(d[4 * i]) << 24) |
        (static_cast<std::uint32_t>(d[4 * i + 1]) << 16) |
        (static_cast<std::uint32_t>(d[4 * i + 2]) << 8) |
        static_cast<std::uint32_t>(d[4 * i + 3]);
  }
  return k;
}

std::uint64_t xtea_encrypt_block(const XteaKey& key, std::uint64_t block) {
  std::uint32_t v0 = static_cast<std::uint32_t>(block >> 32);
  std::uint32_t v1 = static_cast<std::uint32_t>(block);
  std::uint32_t sum = 0;
  for (int i = 0; i < kRounds; ++i) {
    v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key.words[sum & 3]);
    sum += kDelta;
    v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key.words[(sum >> 11) & 3]);
  }
  return (static_cast<std::uint64_t>(v0) << 32) | v1;
}

std::uint64_t xtea_decrypt_block(const XteaKey& key, std::uint64_t block) {
  std::uint32_t v0 = static_cast<std::uint32_t>(block >> 32);
  std::uint32_t v1 = static_cast<std::uint32_t>(block);
  std::uint32_t sum = kDelta * static_cast<std::uint32_t>(kRounds);
  for (int i = 0; i < kRounds; ++i) {
    v1 -= (((v0 << 4) ^ (v0 >> 5)) + v0) ^ (sum + key.words[(sum >> 11) & 3]);
    sum -= kDelta;
    v0 -= (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key.words[sum & 3]);
  }
  return (static_cast<std::uint64_t>(v0) << 32) | v1;
}

void xtea_ctr_apply(const XteaKey& key, std::uint64_t nonce,
                    std::span<std::uint8_t> data) {
  std::uint64_t counter = 0;
  std::size_t off = 0;
  while (off < data.size()) {
    const std::uint64_t ks = xtea_encrypt_block(key, nonce ^ counter);
    for (int b = 0; b < 8 && off < data.size(); ++b, ++off) {
      data[off] ^= static_cast<std::uint8_t>(ks >> (56 - 8 * b));
    }
    ++counter;
  }
}

std::vector<std::uint8_t> seal_u64(const XteaKey& key, std::uint64_t nonce,
                                   std::uint64_t value) {
  std::vector<std::uint8_t> out(8);
  for (int i = 0; i < 8; ++i) {
    out[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(value >> (56 - 8 * i));
  }
  xtea_ctr_apply(key, nonce, out);
  return out;
}

bool open_u64(const XteaKey& key, std::uint64_t nonce,
              std::span<const std::uint8_t> sealed, std::uint64_t& value_out) {
  if (sealed.size() != 8) return false;
  std::array<std::uint8_t, 8> buf;
  std::copy(sealed.begin(), sealed.end(), buf.begin());
  xtea_ctr_apply(key, nonce, buf);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | buf[static_cast<std::size_t>(i)];
  }
  value_out = v;
  return true;
}

}  // namespace tmg::crypto
