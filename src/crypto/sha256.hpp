// SHA-256 (FIPS 180-4), implemented from scratch for LLDP authentication.
//
// Used by crypto::hmac_sha256 to sign controller-emitted LLDP payloads
// (TopoGuard's "authenticated LLDP" defense) and to key-verify the
// encrypted timestamp TLV added by TOPOGUARD+.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace tmg::crypto {

using Digest256 = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256();

  /// Absorb more input.
  void update(std::span<const std::uint8_t> data);

  /// Finalize and return the digest. The context must not be reused
  /// afterwards without calling reset().
  Digest256 finish();

  /// Reset to the initial state.
  void reset();

  /// One-shot convenience.
  static Digest256 hash(std::span<const std::uint8_t> data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// Hex-encode a digest (lowercase).
std::string to_hex(const Digest256& d);

}  // namespace tmg::crypto
