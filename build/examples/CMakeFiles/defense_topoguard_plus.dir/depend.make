# Empty dependencies file for defense_topoguard_plus.
# This may be replaced when dependencies are built.
