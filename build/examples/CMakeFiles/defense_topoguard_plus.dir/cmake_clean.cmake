file(REMOVE_RECURSE
  "CMakeFiles/defense_topoguard_plus.dir/defense_topoguard_plus.cpp.o"
  "CMakeFiles/defense_topoguard_plus.dir/defense_topoguard_plus.cpp.o.d"
  "defense_topoguard_plus"
  "defense_topoguard_plus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defense_topoguard_plus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
