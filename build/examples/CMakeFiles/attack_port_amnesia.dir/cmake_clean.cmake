file(REMOVE_RECURSE
  "CMakeFiles/attack_port_amnesia.dir/attack_port_amnesia.cpp.o"
  "CMakeFiles/attack_port_amnesia.dir/attack_port_amnesia.cpp.o.d"
  "attack_port_amnesia"
  "attack_port_amnesia.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_port_amnesia.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
