# Empty compiler generated dependencies file for attack_port_amnesia.
# This may be replaced when dependencies are built.
