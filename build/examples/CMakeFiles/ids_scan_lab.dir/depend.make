# Empty dependencies file for ids_scan_lab.
# This may be replaced when dependencies are built.
