file(REMOVE_RECURSE
  "CMakeFiles/ids_scan_lab.dir/ids_scan_lab.cpp.o"
  "CMakeFiles/ids_scan_lab.dir/ids_scan_lab.cpp.o.d"
  "ids_scan_lab"
  "ids_scan_lab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ids_scan_lab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
