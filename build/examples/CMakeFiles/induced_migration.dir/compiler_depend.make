# Empty compiler generated dependencies file for induced_migration.
# This may be replaced when dependencies are built.
