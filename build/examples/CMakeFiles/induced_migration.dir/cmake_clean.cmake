file(REMOVE_RECURSE
  "CMakeFiles/induced_migration.dir/induced_migration.cpp.o"
  "CMakeFiles/induced_migration.dir/induced_migration.cpp.o.d"
  "induced_migration"
  "induced_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/induced_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
