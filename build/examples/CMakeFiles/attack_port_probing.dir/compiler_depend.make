# Empty compiler generated dependencies file for attack_port_probing.
# This may be replaced when dependencies are built.
