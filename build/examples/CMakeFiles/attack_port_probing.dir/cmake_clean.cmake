file(REMOVE_RECURSE
  "CMakeFiles/attack_port_probing.dir/attack_port_probing.cpp.o"
  "CMakeFiles/attack_port_probing.dir/attack_port_probing.cpp.o.d"
  "attack_port_probing"
  "attack_port_probing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_port_probing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
