# Empty compiler generated dependencies file for tmg_scenario.
# This may be replaced when dependencies are built.
