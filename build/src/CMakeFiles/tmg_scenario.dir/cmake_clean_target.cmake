file(REMOVE_RECURSE
  "libtmg_scenario.a"
)
