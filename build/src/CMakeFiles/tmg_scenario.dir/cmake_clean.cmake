file(REMOVE_RECURSE
  "CMakeFiles/tmg_scenario.dir/scenario/experiments.cpp.o"
  "CMakeFiles/tmg_scenario.dir/scenario/experiments.cpp.o.d"
  "CMakeFiles/tmg_scenario.dir/scenario/fig1_testbed.cpp.o"
  "CMakeFiles/tmg_scenario.dir/scenario/fig1_testbed.cpp.o.d"
  "CMakeFiles/tmg_scenario.dir/scenario/fig2_testbed.cpp.o"
  "CMakeFiles/tmg_scenario.dir/scenario/fig2_testbed.cpp.o.d"
  "CMakeFiles/tmg_scenario.dir/scenario/fig9_testbed.cpp.o"
  "CMakeFiles/tmg_scenario.dir/scenario/fig9_testbed.cpp.o.d"
  "CMakeFiles/tmg_scenario.dir/scenario/hypervisor.cpp.o"
  "CMakeFiles/tmg_scenario.dir/scenario/hypervisor.cpp.o.d"
  "CMakeFiles/tmg_scenario.dir/scenario/testbed.cpp.o"
  "CMakeFiles/tmg_scenario.dir/scenario/testbed.cpp.o.d"
  "libtmg_scenario.a"
  "libtmg_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmg_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
