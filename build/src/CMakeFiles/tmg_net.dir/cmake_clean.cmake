file(REMOVE_RECURSE
  "CMakeFiles/tmg_net.dir/net/ipv4_address.cpp.o"
  "CMakeFiles/tmg_net.dir/net/ipv4_address.cpp.o.d"
  "CMakeFiles/tmg_net.dir/net/lldp.cpp.o"
  "CMakeFiles/tmg_net.dir/net/lldp.cpp.o.d"
  "CMakeFiles/tmg_net.dir/net/mac_address.cpp.o"
  "CMakeFiles/tmg_net.dir/net/mac_address.cpp.o.d"
  "CMakeFiles/tmg_net.dir/net/packet.cpp.o"
  "CMakeFiles/tmg_net.dir/net/packet.cpp.o.d"
  "libtmg_net.a"
  "libtmg_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmg_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
