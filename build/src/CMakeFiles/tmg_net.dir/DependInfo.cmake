
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/ipv4_address.cpp" "src/CMakeFiles/tmg_net.dir/net/ipv4_address.cpp.o" "gcc" "src/CMakeFiles/tmg_net.dir/net/ipv4_address.cpp.o.d"
  "/root/repo/src/net/lldp.cpp" "src/CMakeFiles/tmg_net.dir/net/lldp.cpp.o" "gcc" "src/CMakeFiles/tmg_net.dir/net/lldp.cpp.o.d"
  "/root/repo/src/net/mac_address.cpp" "src/CMakeFiles/tmg_net.dir/net/mac_address.cpp.o" "gcc" "src/CMakeFiles/tmg_net.dir/net/mac_address.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/CMakeFiles/tmg_net.dir/net/packet.cpp.o" "gcc" "src/CMakeFiles/tmg_net.dir/net/packet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tmg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmg_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
