# Empty dependencies file for tmg_net.
# This may be replaced when dependencies are built.
