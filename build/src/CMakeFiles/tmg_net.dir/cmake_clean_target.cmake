file(REMOVE_RECURSE
  "libtmg_net.a"
)
