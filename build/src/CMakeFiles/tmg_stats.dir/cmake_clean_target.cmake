file(REMOVE_RECURSE
  "libtmg_stats.a"
)
