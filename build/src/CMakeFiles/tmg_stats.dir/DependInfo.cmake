
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/descriptive.cpp" "src/CMakeFiles/tmg_stats.dir/stats/descriptive.cpp.o" "gcc" "src/CMakeFiles/tmg_stats.dir/stats/descriptive.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/CMakeFiles/tmg_stats.dir/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/tmg_stats.dir/stats/histogram.cpp.o.d"
  "/root/repo/src/stats/latency_window.cpp" "src/CMakeFiles/tmg_stats.dir/stats/latency_window.cpp.o" "gcc" "src/CMakeFiles/tmg_stats.dir/stats/latency_window.cpp.o.d"
  "/root/repo/src/stats/quantile.cpp" "src/CMakeFiles/tmg_stats.dir/stats/quantile.cpp.o" "gcc" "src/CMakeFiles/tmg_stats.dir/stats/quantile.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
