file(REMOVE_RECURSE
  "CMakeFiles/tmg_stats.dir/stats/descriptive.cpp.o"
  "CMakeFiles/tmg_stats.dir/stats/descriptive.cpp.o.d"
  "CMakeFiles/tmg_stats.dir/stats/histogram.cpp.o"
  "CMakeFiles/tmg_stats.dir/stats/histogram.cpp.o.d"
  "CMakeFiles/tmg_stats.dir/stats/latency_window.cpp.o"
  "CMakeFiles/tmg_stats.dir/stats/latency_window.cpp.o.d"
  "CMakeFiles/tmg_stats.dir/stats/quantile.cpp.o"
  "CMakeFiles/tmg_stats.dir/stats/quantile.cpp.o.d"
  "libtmg_stats.a"
  "libtmg_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmg_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
