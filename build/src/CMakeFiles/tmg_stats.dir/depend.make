# Empty dependencies file for tmg_stats.
# This may be replaced when dependencies are built.
