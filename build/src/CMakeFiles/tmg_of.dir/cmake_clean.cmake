file(REMOVE_RECURSE
  "CMakeFiles/tmg_of.dir/of/control_channel.cpp.o"
  "CMakeFiles/tmg_of.dir/of/control_channel.cpp.o.d"
  "CMakeFiles/tmg_of.dir/of/data_link.cpp.o"
  "CMakeFiles/tmg_of.dir/of/data_link.cpp.o.d"
  "CMakeFiles/tmg_of.dir/of/flow_table.cpp.o"
  "CMakeFiles/tmg_of.dir/of/flow_table.cpp.o.d"
  "CMakeFiles/tmg_of.dir/of/messages.cpp.o"
  "CMakeFiles/tmg_of.dir/of/messages.cpp.o.d"
  "CMakeFiles/tmg_of.dir/of/switch.cpp.o"
  "CMakeFiles/tmg_of.dir/of/switch.cpp.o.d"
  "libtmg_of.a"
  "libtmg_of.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmg_of.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
