
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/of/control_channel.cpp" "src/CMakeFiles/tmg_of.dir/of/control_channel.cpp.o" "gcc" "src/CMakeFiles/tmg_of.dir/of/control_channel.cpp.o.d"
  "/root/repo/src/of/data_link.cpp" "src/CMakeFiles/tmg_of.dir/of/data_link.cpp.o" "gcc" "src/CMakeFiles/tmg_of.dir/of/data_link.cpp.o.d"
  "/root/repo/src/of/flow_table.cpp" "src/CMakeFiles/tmg_of.dir/of/flow_table.cpp.o" "gcc" "src/CMakeFiles/tmg_of.dir/of/flow_table.cpp.o.d"
  "/root/repo/src/of/messages.cpp" "src/CMakeFiles/tmg_of.dir/of/messages.cpp.o" "gcc" "src/CMakeFiles/tmg_of.dir/of/messages.cpp.o.d"
  "/root/repo/src/of/switch.cpp" "src/CMakeFiles/tmg_of.dir/of/switch.cpp.o" "gcc" "src/CMakeFiles/tmg_of.dir/of/switch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tmg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmg_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
