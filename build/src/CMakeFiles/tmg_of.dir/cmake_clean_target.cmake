file(REMOVE_RECURSE
  "libtmg_of.a"
)
