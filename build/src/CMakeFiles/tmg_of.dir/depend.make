# Empty dependencies file for tmg_of.
# This may be replaced when dependencies are built.
