file(REMOVE_RECURSE
  "CMakeFiles/tmg_trace.dir/trace/tracer.cpp.o"
  "CMakeFiles/tmg_trace.dir/trace/tracer.cpp.o.d"
  "libtmg_trace.a"
  "libtmg_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmg_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
