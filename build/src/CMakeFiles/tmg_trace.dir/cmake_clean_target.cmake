file(REMOVE_RECURSE
  "libtmg_trace.a"
)
