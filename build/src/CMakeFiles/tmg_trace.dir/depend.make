# Empty dependencies file for tmg_trace.
# This may be replaced when dependencies are built.
