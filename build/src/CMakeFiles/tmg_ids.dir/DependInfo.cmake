
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ids/ids.cpp" "src/CMakeFiles/tmg_ids.dir/ids/ids.cpp.o" "gcc" "src/CMakeFiles/tmg_ids.dir/ids/ids.cpp.o.d"
  "/root/repo/src/ids/rules.cpp" "src/CMakeFiles/tmg_ids.dir/ids/rules.cpp.o" "gcc" "src/CMakeFiles/tmg_ids.dir/ids/rules.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tmg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmg_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
