file(REMOVE_RECURSE
  "libtmg_ids.a"
)
