# Empty compiler generated dependencies file for tmg_ids.
# This may be replaced when dependencies are built.
