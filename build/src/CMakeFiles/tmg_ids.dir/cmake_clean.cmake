file(REMOVE_RECURSE
  "CMakeFiles/tmg_ids.dir/ids/ids.cpp.o"
  "CMakeFiles/tmg_ids.dir/ids/ids.cpp.o.d"
  "CMakeFiles/tmg_ids.dir/ids/rules.cpp.o"
  "CMakeFiles/tmg_ids.dir/ids/rules.cpp.o.d"
  "libtmg_ids.a"
  "libtmg_ids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmg_ids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
