file(REMOVE_RECURSE
  "libtmg_crypto.a"
)
