# Empty compiler generated dependencies file for tmg_crypto.
# This may be replaced when dependencies are built.
