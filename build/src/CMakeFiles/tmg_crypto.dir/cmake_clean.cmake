file(REMOVE_RECURSE
  "CMakeFiles/tmg_crypto.dir/crypto/hmac.cpp.o"
  "CMakeFiles/tmg_crypto.dir/crypto/hmac.cpp.o.d"
  "CMakeFiles/tmg_crypto.dir/crypto/sha256.cpp.o"
  "CMakeFiles/tmg_crypto.dir/crypto/sha256.cpp.o.d"
  "CMakeFiles/tmg_crypto.dir/crypto/xtea.cpp.o"
  "CMakeFiles/tmg_crypto.dir/crypto/xtea.cpp.o.d"
  "libtmg_crypto.a"
  "libtmg_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmg_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
