file(REMOVE_RECURSE
  "libtmg_ctrl.a"
)
