file(REMOVE_RECURSE
  "CMakeFiles/tmg_ctrl.dir/ctrl/alert_bus.cpp.o"
  "CMakeFiles/tmg_ctrl.dir/ctrl/alert_bus.cpp.o.d"
  "CMakeFiles/tmg_ctrl.dir/ctrl/controller.cpp.o"
  "CMakeFiles/tmg_ctrl.dir/ctrl/controller.cpp.o.d"
  "CMakeFiles/tmg_ctrl.dir/ctrl/host_tracker.cpp.o"
  "CMakeFiles/tmg_ctrl.dir/ctrl/host_tracker.cpp.o.d"
  "CMakeFiles/tmg_ctrl.dir/ctrl/link_discovery.cpp.o"
  "CMakeFiles/tmg_ctrl.dir/ctrl/link_discovery.cpp.o.d"
  "CMakeFiles/tmg_ctrl.dir/ctrl/profiles.cpp.o"
  "CMakeFiles/tmg_ctrl.dir/ctrl/profiles.cpp.o.d"
  "CMakeFiles/tmg_ctrl.dir/ctrl/routing.cpp.o"
  "CMakeFiles/tmg_ctrl.dir/ctrl/routing.cpp.o.d"
  "libtmg_ctrl.a"
  "libtmg_ctrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmg_ctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
