
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ctrl/alert_bus.cpp" "src/CMakeFiles/tmg_ctrl.dir/ctrl/alert_bus.cpp.o" "gcc" "src/CMakeFiles/tmg_ctrl.dir/ctrl/alert_bus.cpp.o.d"
  "/root/repo/src/ctrl/controller.cpp" "src/CMakeFiles/tmg_ctrl.dir/ctrl/controller.cpp.o" "gcc" "src/CMakeFiles/tmg_ctrl.dir/ctrl/controller.cpp.o.d"
  "/root/repo/src/ctrl/host_tracker.cpp" "src/CMakeFiles/tmg_ctrl.dir/ctrl/host_tracker.cpp.o" "gcc" "src/CMakeFiles/tmg_ctrl.dir/ctrl/host_tracker.cpp.o.d"
  "/root/repo/src/ctrl/link_discovery.cpp" "src/CMakeFiles/tmg_ctrl.dir/ctrl/link_discovery.cpp.o" "gcc" "src/CMakeFiles/tmg_ctrl.dir/ctrl/link_discovery.cpp.o.d"
  "/root/repo/src/ctrl/profiles.cpp" "src/CMakeFiles/tmg_ctrl.dir/ctrl/profiles.cpp.o" "gcc" "src/CMakeFiles/tmg_ctrl.dir/ctrl/profiles.cpp.o.d"
  "/root/repo/src/ctrl/routing.cpp" "src/CMakeFiles/tmg_ctrl.dir/ctrl/routing.cpp.o" "gcc" "src/CMakeFiles/tmg_ctrl.dir/ctrl/routing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tmg_of.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmg_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmg_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmg_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
