# Empty dependencies file for tmg_ctrl.
# This may be replaced when dependencies are built.
