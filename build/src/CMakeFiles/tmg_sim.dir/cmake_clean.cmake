file(REMOVE_RECURSE
  "CMakeFiles/tmg_sim.dir/sim/event_loop.cpp.o"
  "CMakeFiles/tmg_sim.dir/sim/event_loop.cpp.o.d"
  "CMakeFiles/tmg_sim.dir/sim/latency_model.cpp.o"
  "CMakeFiles/tmg_sim.dir/sim/latency_model.cpp.o.d"
  "CMakeFiles/tmg_sim.dir/sim/rng.cpp.o"
  "CMakeFiles/tmg_sim.dir/sim/rng.cpp.o.d"
  "libtmg_sim.a"
  "libtmg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
