# Empty dependencies file for tmg_sim.
# This may be replaced when dependencies are built.
