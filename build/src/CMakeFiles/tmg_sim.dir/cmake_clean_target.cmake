file(REMOVE_RECURSE
  "libtmg_sim.a"
)
