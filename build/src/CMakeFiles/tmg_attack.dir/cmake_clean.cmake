file(REMOVE_RECURSE
  "CMakeFiles/tmg_attack.dir/attack/alert_flood.cpp.o"
  "CMakeFiles/tmg_attack.dir/attack/alert_flood.cpp.o.d"
  "CMakeFiles/tmg_attack.dir/attack/arp_spoof.cpp.o"
  "CMakeFiles/tmg_attack.dir/attack/arp_spoof.cpp.o.d"
  "CMakeFiles/tmg_attack.dir/attack/host.cpp.o"
  "CMakeFiles/tmg_attack.dir/attack/host.cpp.o.d"
  "CMakeFiles/tmg_attack.dir/attack/link_fabrication.cpp.o"
  "CMakeFiles/tmg_attack.dir/attack/link_fabrication.cpp.o.d"
  "CMakeFiles/tmg_attack.dir/attack/nic_model.cpp.o"
  "CMakeFiles/tmg_attack.dir/attack/nic_model.cpp.o.d"
  "CMakeFiles/tmg_attack.dir/attack/oob_channel.cpp.o"
  "CMakeFiles/tmg_attack.dir/attack/oob_channel.cpp.o.d"
  "CMakeFiles/tmg_attack.dir/attack/port_amnesia.cpp.o"
  "CMakeFiles/tmg_attack.dir/attack/port_amnesia.cpp.o.d"
  "CMakeFiles/tmg_attack.dir/attack/port_probing.cpp.o"
  "CMakeFiles/tmg_attack.dir/attack/port_probing.cpp.o.d"
  "CMakeFiles/tmg_attack.dir/attack/probes.cpp.o"
  "CMakeFiles/tmg_attack.dir/attack/probes.cpp.o.d"
  "libtmg_attack.a"
  "libtmg_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmg_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
