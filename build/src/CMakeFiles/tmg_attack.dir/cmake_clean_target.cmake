file(REMOVE_RECURSE
  "libtmg_attack.a"
)
