
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/alert_flood.cpp" "src/CMakeFiles/tmg_attack.dir/attack/alert_flood.cpp.o" "gcc" "src/CMakeFiles/tmg_attack.dir/attack/alert_flood.cpp.o.d"
  "/root/repo/src/attack/arp_spoof.cpp" "src/CMakeFiles/tmg_attack.dir/attack/arp_spoof.cpp.o" "gcc" "src/CMakeFiles/tmg_attack.dir/attack/arp_spoof.cpp.o.d"
  "/root/repo/src/attack/host.cpp" "src/CMakeFiles/tmg_attack.dir/attack/host.cpp.o" "gcc" "src/CMakeFiles/tmg_attack.dir/attack/host.cpp.o.d"
  "/root/repo/src/attack/link_fabrication.cpp" "src/CMakeFiles/tmg_attack.dir/attack/link_fabrication.cpp.o" "gcc" "src/CMakeFiles/tmg_attack.dir/attack/link_fabrication.cpp.o.d"
  "/root/repo/src/attack/nic_model.cpp" "src/CMakeFiles/tmg_attack.dir/attack/nic_model.cpp.o" "gcc" "src/CMakeFiles/tmg_attack.dir/attack/nic_model.cpp.o.d"
  "/root/repo/src/attack/oob_channel.cpp" "src/CMakeFiles/tmg_attack.dir/attack/oob_channel.cpp.o" "gcc" "src/CMakeFiles/tmg_attack.dir/attack/oob_channel.cpp.o.d"
  "/root/repo/src/attack/port_amnesia.cpp" "src/CMakeFiles/tmg_attack.dir/attack/port_amnesia.cpp.o" "gcc" "src/CMakeFiles/tmg_attack.dir/attack/port_amnesia.cpp.o.d"
  "/root/repo/src/attack/port_probing.cpp" "src/CMakeFiles/tmg_attack.dir/attack/port_probing.cpp.o" "gcc" "src/CMakeFiles/tmg_attack.dir/attack/port_probing.cpp.o.d"
  "/root/repo/src/attack/probes.cpp" "src/CMakeFiles/tmg_attack.dir/attack/probes.cpp.o" "gcc" "src/CMakeFiles/tmg_attack.dir/attack/probes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tmg_of.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmg_ids.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmg_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmg_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
