# Empty dependencies file for tmg_attack.
# This may be replaced when dependencies are built.
