file(REMOVE_RECURSE
  "CMakeFiles/tmg_defense.dir/defense/active_probe.cpp.o"
  "CMakeFiles/tmg_defense.dir/defense/active_probe.cpp.o.d"
  "CMakeFiles/tmg_defense.dir/defense/arp_inspection.cpp.o"
  "CMakeFiles/tmg_defense.dir/defense/arp_inspection.cpp.o.d"
  "CMakeFiles/tmg_defense.dir/defense/cmm.cpp.o"
  "CMakeFiles/tmg_defense.dir/defense/cmm.cpp.o.d"
  "CMakeFiles/tmg_defense.dir/defense/lli.cpp.o"
  "CMakeFiles/tmg_defense.dir/defense/lli.cpp.o.d"
  "CMakeFiles/tmg_defense.dir/defense/secure_binding.cpp.o"
  "CMakeFiles/tmg_defense.dir/defense/secure_binding.cpp.o.d"
  "CMakeFiles/tmg_defense.dir/defense/sphinx.cpp.o"
  "CMakeFiles/tmg_defense.dir/defense/sphinx.cpp.o.d"
  "CMakeFiles/tmg_defense.dir/defense/topoguard.cpp.o"
  "CMakeFiles/tmg_defense.dir/defense/topoguard.cpp.o.d"
  "CMakeFiles/tmg_defense.dir/defense/topoguard_plus.cpp.o"
  "CMakeFiles/tmg_defense.dir/defense/topoguard_plus.cpp.o.d"
  "libtmg_defense.a"
  "libtmg_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmg_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
