
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/defense/active_probe.cpp" "src/CMakeFiles/tmg_defense.dir/defense/active_probe.cpp.o" "gcc" "src/CMakeFiles/tmg_defense.dir/defense/active_probe.cpp.o.d"
  "/root/repo/src/defense/arp_inspection.cpp" "src/CMakeFiles/tmg_defense.dir/defense/arp_inspection.cpp.o" "gcc" "src/CMakeFiles/tmg_defense.dir/defense/arp_inspection.cpp.o.d"
  "/root/repo/src/defense/cmm.cpp" "src/CMakeFiles/tmg_defense.dir/defense/cmm.cpp.o" "gcc" "src/CMakeFiles/tmg_defense.dir/defense/cmm.cpp.o.d"
  "/root/repo/src/defense/lli.cpp" "src/CMakeFiles/tmg_defense.dir/defense/lli.cpp.o" "gcc" "src/CMakeFiles/tmg_defense.dir/defense/lli.cpp.o.d"
  "/root/repo/src/defense/secure_binding.cpp" "src/CMakeFiles/tmg_defense.dir/defense/secure_binding.cpp.o" "gcc" "src/CMakeFiles/tmg_defense.dir/defense/secure_binding.cpp.o.d"
  "/root/repo/src/defense/sphinx.cpp" "src/CMakeFiles/tmg_defense.dir/defense/sphinx.cpp.o" "gcc" "src/CMakeFiles/tmg_defense.dir/defense/sphinx.cpp.o.d"
  "/root/repo/src/defense/topoguard.cpp" "src/CMakeFiles/tmg_defense.dir/defense/topoguard.cpp.o" "gcc" "src/CMakeFiles/tmg_defense.dir/defense/topoguard.cpp.o.d"
  "/root/repo/src/defense/topoguard_plus.cpp" "src/CMakeFiles/tmg_defense.dir/defense/topoguard_plus.cpp.o" "gcc" "src/CMakeFiles/tmg_defense.dir/defense/topoguard_plus.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tmg_ctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmg_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmg_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmg_of.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmg_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
