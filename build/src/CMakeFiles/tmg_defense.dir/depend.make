# Empty dependencies file for tmg_defense.
# This may be replaced when dependencies are built.
