file(REMOVE_RECURSE
  "libtmg_defense.a"
)
