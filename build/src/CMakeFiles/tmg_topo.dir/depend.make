# Empty dependencies file for tmg_topo.
# This may be replaced when dependencies are built.
