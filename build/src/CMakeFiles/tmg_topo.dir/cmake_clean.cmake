file(REMOVE_RECURSE
  "CMakeFiles/tmg_topo.dir/topo/graph.cpp.o"
  "CMakeFiles/tmg_topo.dir/topo/graph.cpp.o.d"
  "libtmg_topo.a"
  "libtmg_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmg_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
