file(REMOVE_RECURSE
  "libtmg_topo.a"
)
