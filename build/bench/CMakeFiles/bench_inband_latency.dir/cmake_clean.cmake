file(REMOVE_RECURSE
  "CMakeFiles/bench_inband_latency.dir/bench_inband_latency.cpp.o"
  "CMakeFiles/bench_inband_latency.dir/bench_inband_latency.cpp.o.d"
  "bench_inband_latency"
  "bench_inband_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inband_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
