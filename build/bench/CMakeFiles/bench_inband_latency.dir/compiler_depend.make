# Empty compiler generated dependencies file for bench_inband_latency.
# This may be replaced when dependencies are built.
