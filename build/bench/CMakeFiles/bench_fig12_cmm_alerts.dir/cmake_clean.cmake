file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_cmm_alerts.dir/bench_fig12_cmm_alerts.cpp.o"
  "CMakeFiles/bench_fig12_cmm_alerts.dir/bench_fig12_cmm_alerts.cpp.o.d"
  "bench_fig12_cmm_alerts"
  "bench_fig12_cmm_alerts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_cmm_alerts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
