# Empty dependencies file for bench_fig12_cmm_alerts.
# This may be replaced when dependencies are built.
