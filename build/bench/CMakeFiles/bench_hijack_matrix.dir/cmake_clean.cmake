file(REMOVE_RECURSE
  "CMakeFiles/bench_hijack_matrix.dir/bench_hijack_matrix.cpp.o"
  "CMakeFiles/bench_hijack_matrix.dir/bench_hijack_matrix.cpp.o.d"
  "bench_hijack_matrix"
  "bench_hijack_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hijack_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
