# Empty dependencies file for bench_hijack_matrix.
# This may be replaced when dependencies are built.
