file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_ping_timeout.dir/bench_fig8_ping_timeout.cpp.o"
  "CMakeFiles/bench_fig8_ping_timeout.dir/bench_fig8_ping_timeout.cpp.o.d"
  "bench_fig8_ping_timeout"
  "bench_fig8_ping_timeout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_ping_timeout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
