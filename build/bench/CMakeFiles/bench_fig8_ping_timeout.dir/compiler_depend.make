# Empty compiler generated dependencies file for bench_fig8_ping_timeout.
# This may be replaced when dependencies are built.
