file(REMOVE_RECURSE
  "CMakeFiles/bench_cmm_evasion.dir/bench_cmm_evasion.cpp.o"
  "CMakeFiles/bench_cmm_evasion.dir/bench_cmm_evasion.cpp.o.d"
  "bench_cmm_evasion"
  "bench_cmm_evasion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cmm_evasion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
