# Empty dependencies file for bench_cmm_evasion.
# This may be replaced when dependencies are built.
