# Empty compiler generated dependencies file for bench_fig7_last_ping_start.
# This may be replaced when dependencies are built.
