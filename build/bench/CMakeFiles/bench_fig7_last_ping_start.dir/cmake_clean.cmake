file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_last_ping_start.dir/bench_fig7_last_ping_start.cpp.o"
  "CMakeFiles/bench_fig7_last_ping_start.dir/bench_fig7_last_ping_start.cpp.o.d"
  "bench_fig7_last_ping_start"
  "bench_fig7_last_ping_start.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_last_ping_start.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
