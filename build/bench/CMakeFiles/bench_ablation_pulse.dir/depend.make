# Empty dependencies file for bench_ablation_pulse.
# This may be replaced when dependencies are built.
