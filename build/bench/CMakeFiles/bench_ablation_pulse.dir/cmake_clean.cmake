file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_pulse.dir/bench_ablation_pulse.cpp.o"
  "CMakeFiles/bench_ablation_pulse.dir/bench_ablation_pulse.cpp.o.d"
  "bench_ablation_pulse"
  "bench_ablation_pulse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pulse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
