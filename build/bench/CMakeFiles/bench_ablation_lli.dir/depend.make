# Empty dependencies file for bench_ablation_lli.
# This may be replaced when dependencies are built.
