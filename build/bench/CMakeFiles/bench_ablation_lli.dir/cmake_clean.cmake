file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_lli.dir/bench_ablation_lli.cpp.o"
  "CMakeFiles/bench_ablation_lli.dir/bench_ablation_lli.cpp.o.d"
  "bench_ablation_lli"
  "bench_ablation_lli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_lli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
