file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_iface_up.dir/bench_fig5_iface_up.cpp.o"
  "CMakeFiles/bench_fig5_iface_up.dir/bench_fig5_iface_up.cpp.o.d"
  "bench_fig5_iface_up"
  "bench_fig5_iface_up.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_iface_up.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
