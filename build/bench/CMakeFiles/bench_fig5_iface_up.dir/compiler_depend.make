# Empty compiler generated dependencies file for bench_fig5_iface_up.
# This may be replaced when dependencies are built.
