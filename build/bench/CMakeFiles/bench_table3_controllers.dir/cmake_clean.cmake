file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_controllers.dir/bench_table3_controllers.cpp.o"
  "CMakeFiles/bench_table3_controllers.dir/bench_table3_controllers.cpp.o.d"
  "bench_table3_controllers"
  "bench_table3_controllers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_controllers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
