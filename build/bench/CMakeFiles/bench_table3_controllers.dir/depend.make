# Empty dependencies file for bench_table3_controllers.
# This may be replaced when dependencies are built.
