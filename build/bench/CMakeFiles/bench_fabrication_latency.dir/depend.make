# Empty dependencies file for bench_fabrication_latency.
# This may be replaced when dependencies are built.
