file(REMOVE_RECURSE
  "CMakeFiles/bench_fabrication_latency.dir/bench_fabrication_latency.cpp.o"
  "CMakeFiles/bench_fabrication_latency.dir/bench_fabrication_latency.cpp.o.d"
  "bench_fabrication_latency"
  "bench_fabrication_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fabrication_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
