file(REMOVE_RECURSE
  "CMakeFiles/bench_active_defense.dir/bench_active_defense.cpp.o"
  "CMakeFiles/bench_active_defense.dir/bench_active_defense.cpp.o.d"
  "bench_active_defense"
  "bench_active_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_active_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
