file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_ident_change.dir/bench_fig4_ident_change.cpp.o"
  "CMakeFiles/bench_fig4_ident_change.dir/bench_fig4_ident_change.cpp.o.d"
  "bench_fig4_ident_change"
  "bench_fig4_ident_change.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_ident_change.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
