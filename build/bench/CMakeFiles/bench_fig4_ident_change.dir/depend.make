# Empty dependencies file for bench_fig4_ident_change.
# This may be replaced when dependencies are built.
