file(REMOVE_RECURSE
  "CMakeFiles/bench_scan_detection.dir/bench_scan_detection.cpp.o"
  "CMakeFiles/bench_scan_detection.dir/bench_scan_detection.cpp.o.d"
  "bench_scan_detection"
  "bench_scan_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scan_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
