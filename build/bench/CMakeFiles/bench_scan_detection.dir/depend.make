# Empty dependencies file for bench_scan_detection.
# This may be replaced when dependencies are built.
