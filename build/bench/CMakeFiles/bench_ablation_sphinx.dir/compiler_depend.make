# Empty compiler generated dependencies file for bench_ablation_sphinx.
# This may be replaced when dependencies are built.
