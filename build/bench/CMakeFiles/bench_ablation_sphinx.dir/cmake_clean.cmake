file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sphinx.dir/bench_ablation_sphinx.cpp.o"
  "CMakeFiles/bench_ablation_sphinx.dir/bench_ablation_sphinx.cpp.o.d"
  "bench_ablation_sphinx"
  "bench_ablation_sphinx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sphinx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
