file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_lli_alerts.dir/bench_fig13_lli_alerts.cpp.o"
  "CMakeFiles/bench_fig13_lli_alerts.dir/bench_fig13_lli_alerts.cpp.o.d"
  "bench_fig13_lli_alerts"
  "bench_fig13_lli_alerts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_lli_alerts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
