# Empty dependencies file for bench_fig13_lli_alerts.
# This may be replaced when dependencies are built.
