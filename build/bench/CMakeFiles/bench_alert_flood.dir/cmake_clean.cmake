file(REMOVE_RECURSE
  "CMakeFiles/bench_alert_flood.dir/bench_alert_flood.cpp.o"
  "CMakeFiles/bench_alert_flood.dir/bench_alert_flood.cpp.o.d"
  "bench_alert_flood"
  "bench_alert_flood.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_alert_flood.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
