# Empty dependencies file for bench_alert_flood.
# This may be replaced when dependencies are built.
