file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_controller_ack.dir/bench_fig6_controller_ack.cpp.o"
  "CMakeFiles/bench_fig6_controller_ack.dir/bench_fig6_controller_ack.cpp.o.d"
  "bench_fig6_controller_ack"
  "bench_fig6_controller_ack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_controller_ack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
