# Empty dependencies file for bench_fig6_controller_ack.
# This may be replaced when dependencies are built.
