# Empty dependencies file for bench_downtime_window.
# This may be replaced when dependencies are built.
