file(REMOVE_RECURSE
  "CMakeFiles/bench_downtime_window.dir/bench_downtime_window.cpp.o"
  "CMakeFiles/bench_downtime_window.dir/bench_downtime_window.cpp.o.d"
  "bench_downtime_window"
  "bench_downtime_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_downtime_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
