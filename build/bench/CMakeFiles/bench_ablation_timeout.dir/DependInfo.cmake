
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_timeout.cpp" "bench/CMakeFiles/bench_ablation_timeout.dir/bench_ablation_timeout.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_timeout.dir/bench_ablation_timeout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tmg_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmg_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmg_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmg_ids.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmg_ctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmg_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmg_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmg_of.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmg_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmg_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmg_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tmg_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
