# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/of_test[1]_include.cmake")
include("/root/repo/build/tests/topo_test[1]_include.cmake")
include("/root/repo/build/tests/ctrl_test[1]_include.cmake")
include("/root/repo/build/tests/defense_topoguard_test[1]_include.cmake")
include("/root/repo/build/tests/defense_sphinx_test[1]_include.cmake")
include("/root/repo/build/tests/defense_tgplus_test[1]_include.cmake")
include("/root/repo/build/tests/defense_secure_binding_test[1]_include.cmake")
include("/root/repo/build/tests/ids_test[1]_include.cmake")
include("/root/repo/build/tests/attack_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/hypervisor_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/scale_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/arp_defense_test[1]_include.cmake")
include("/root/repo/build/tests/attack_amnesia_test[1]_include.cmake")
include("/root/repo/build/tests/chaos_test[1]_include.cmake")
include("/root/repo/build/tests/defense_active_probe_test[1]_include.cmake")
