file(REMOVE_RECURSE
  "CMakeFiles/attack_amnesia_test.dir/attack_amnesia_test.cpp.o"
  "CMakeFiles/attack_amnesia_test.dir/attack_amnesia_test.cpp.o.d"
  "attack_amnesia_test"
  "attack_amnesia_test.pdb"
  "attack_amnesia_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_amnesia_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
