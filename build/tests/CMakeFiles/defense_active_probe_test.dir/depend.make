# Empty dependencies file for defense_active_probe_test.
# This may be replaced when dependencies are built.
