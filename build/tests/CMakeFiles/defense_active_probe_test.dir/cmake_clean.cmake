file(REMOVE_RECURSE
  "CMakeFiles/defense_active_probe_test.dir/defense_active_probe_test.cpp.o"
  "CMakeFiles/defense_active_probe_test.dir/defense_active_probe_test.cpp.o.d"
  "defense_active_probe_test"
  "defense_active_probe_test.pdb"
  "defense_active_probe_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defense_active_probe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
