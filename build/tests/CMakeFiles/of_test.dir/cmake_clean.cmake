file(REMOVE_RECURSE
  "CMakeFiles/of_test.dir/of_test.cpp.o"
  "CMakeFiles/of_test.dir/of_test.cpp.o.d"
  "of_test"
  "of_test.pdb"
  "of_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/of_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
