# Empty dependencies file for of_test.
# This may be replaced when dependencies are built.
