# Empty dependencies file for defense_sphinx_test.
# This may be replaced when dependencies are built.
