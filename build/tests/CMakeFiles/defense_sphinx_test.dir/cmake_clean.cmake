file(REMOVE_RECURSE
  "CMakeFiles/defense_sphinx_test.dir/defense_sphinx_test.cpp.o"
  "CMakeFiles/defense_sphinx_test.dir/defense_sphinx_test.cpp.o.d"
  "defense_sphinx_test"
  "defense_sphinx_test.pdb"
  "defense_sphinx_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defense_sphinx_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
