# Empty compiler generated dependencies file for defense_secure_binding_test.
# This may be replaced when dependencies are built.
