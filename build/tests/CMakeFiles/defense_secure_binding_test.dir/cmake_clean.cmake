file(REMOVE_RECURSE
  "CMakeFiles/defense_secure_binding_test.dir/defense_secure_binding_test.cpp.o"
  "CMakeFiles/defense_secure_binding_test.dir/defense_secure_binding_test.cpp.o.d"
  "defense_secure_binding_test"
  "defense_secure_binding_test.pdb"
  "defense_secure_binding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defense_secure_binding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
