# Empty compiler generated dependencies file for arp_defense_test.
# This may be replaced when dependencies are built.
