file(REMOVE_RECURSE
  "CMakeFiles/arp_defense_test.dir/arp_defense_test.cpp.o"
  "CMakeFiles/arp_defense_test.dir/arp_defense_test.cpp.o.d"
  "arp_defense_test"
  "arp_defense_test.pdb"
  "arp_defense_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arp_defense_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
