# Empty dependencies file for defense_topoguard_test.
# This may be replaced when dependencies are built.
