file(REMOVE_RECURSE
  "CMakeFiles/defense_topoguard_test.dir/defense_topoguard_test.cpp.o"
  "CMakeFiles/defense_topoguard_test.dir/defense_topoguard_test.cpp.o.d"
  "defense_topoguard_test"
  "defense_topoguard_test.pdb"
  "defense_topoguard_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defense_topoguard_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
