file(REMOVE_RECURSE
  "CMakeFiles/defense_tgplus_test.dir/defense_tgplus_test.cpp.o"
  "CMakeFiles/defense_tgplus_test.dir/defense_tgplus_test.cpp.o.d"
  "defense_tgplus_test"
  "defense_tgplus_test.pdb"
  "defense_tgplus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/defense_tgplus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
