# Empty compiler generated dependencies file for defense_tgplus_test.
# This may be replaced when dependencies are built.
