#!/usr/bin/env python3
"""Run the TopoMirage bench suite and aggregate a single BENCH.json.

Each trial-looping bench binary under build/bench accepts the shared
harness flags (bench/bench_harness.hpp):

    --trials N    trials (meaning is bench-specific: per cell / per row)
    --jobs N      worker threads (0/default = hardware concurrency)
    --quick       smaller CI-friendly trial counts
    --json PATH   write a one-object JSON result

This driver runs the suite, collects the per-bench JSON objects, and
writes them to one combined file:

    {"benches": [{"bench": ..., "trials": ..., "jobs": ..., "wall_ms": ...,
                  "events": ..., "events_per_sec": ...}, ...],
     "speedup": {...}}          # only with --speedup

Every run also archives an identical timestamped copy next to --out
(BENCH_<utcstamp>.json) so successive runs accumulate a comparable
local history; the archives are never overwritten.

--history merges those archives (plus the current run) into a
"trajectory" block in the combined file — per-bench wall_ms and
events_per_sec over time, keyed by the archive stamp — and warns on
any bench whose wall clock regressed more than 10% against the
previous comparable archive (same trials and jobs). Warnings are
advisory: wall clock is host time, so the exit status never changes.

--speedup runs the 200-trial attack-matrix workload
(bench_attack_matrix --trials 10) across a jobs sweep (1, 2, 4, 8) and
records the whole scaling curve plus the host's CPU count. The tables
printed at every sweep point must match the --jobs 1 run byte-for-byte
— the driver diffs them and fails if parallelism changed any simulated
result. One extra --legacy-runner run at --jobs 1 attributes how much
of the serial wall clock the chunked scheduler + arenas bought on
their own.

--montecarlo-check runs bench_montecarlo --quick at --jobs 1 and
--jobs 8 and fails unless the deterministic part of the JSON result
(trial/event counts and every quantile table) and the stdout tables
are identical — the streaming-quantile merge must be byte-stable
across worker counts.

--fleet-check does the same for bench_fleet --quick: the fleet cells
(generated fabrics under background load) must produce identical
stdout tables and deterministic-JSON payloads at --jobs 1 and 8.

--fastpath-check runs the same serial attack-matrix workload once with
the algorithmic fast paths enabled and once with --no-fastpath (naive
reference algorithms), diffs the stdout (minus [bench] timing lines),
and fails if the fast paths changed any simulated result. The
wall-clock ratio is recorded as the fast paths' end-to-end speedup.

Usage:
    python3 tools/run_bench.py [--quick] [--jobs N] [--build-dir build]
                               [--out BENCH.json] [--speedup]
                               [--fastpath-check] [--montecarlo-check]
                               [--fleet-check] [--history]
"""

import argparse
import glob
import json
import os
import subprocess
import sys
import tempfile
from datetime import datetime, timezone

# --history flags a bench whose wall clock grew past this factor of the
# previous comparable archive's.
REGRESSION_FACTOR = 1.10

# Benches that implement the harness flags. Order is the report order.
BENCHES = [
    "bench_event_loop",
    "bench_routing",
    "bench_flow_table",
    "bench_table1_probes",
    "bench_scan_detection",
    "bench_fig5_iface_up",
    "bench_fig6_controller_ack",
    "bench_fig7_last_ping_start",
    "bench_fig8_ping_timeout",
    "bench_attack_matrix",
    "bench_hijack_matrix",
    "bench_downtime_window",
    "bench_ablation_channel",
    "bench_montecarlo",
    "bench_fleet",
    "bench_anomaly",
]

# The jobs sweep recorded by --speedup. Points above the host's core
# count still run (oversubscribed) so the curve shape is comparable
# across machines.
SWEEP_JOBS = [1, 2, 4, 8]


def run_bench(binary, extra_args, quiet=True):
    """Run one bench with --json into a temp file; return (result, stdout)."""
    with tempfile.NamedTemporaryFile(mode="r", suffix=".json",
                                     delete=False) as tmp:
        json_path = tmp.name
    try:
        cmd = [binary, "--json", json_path] + extra_args
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout + proc.stderr)
            raise RuntimeError(f"{os.path.basename(binary)} exited "
                               f"{proc.returncode}")
        with open(json_path) as f:
            result = json.load(f)
        if not quiet:
            sys.stdout.write(proc.stdout)
        return result, proc.stdout
    finally:
        os.unlink(json_path)


def strip_bench_lines(text):
    """Drop the timing footer so outputs can be compared across --jobs."""
    return "\n".join(line for line in text.splitlines()
                     if not line.startswith("[bench]"))


def deterministic_part(result):
    # Everything except the host-timing keys (and "jobs", which names
    # the worker count and differs by construction).
    return {k: v for k, v in result.items()
            if k not in ("jobs", "wall_ms", "events_per_sec")}


def check_jobs_stable(bench_dir, name, workload, what):
    """Run `name` at --jobs 1 and 8; fail unless stdout tables and the
    deterministic JSON payload are byte-identical. Returns the jobs-1
    result for the report."""
    binary = os.path.join(bench_dir, name)
    one, one_out = run_bench(binary, workload + ["--jobs", "1"])
    eight, eight_out = run_bench(binary, workload + ["--jobs", "8"])
    if strip_bench_lines(one_out) != strip_bench_lines(eight_out):
        sys.exit(f"error: {name} stdout differs between --jobs 1 and "
                 f"--jobs 8 — {what} is not worker-count stable")
    if deterministic_part(one) != deterministic_part(eight):
        sys.exit(f"error: {name} JSON differs between --jobs 1 and "
                 f"--jobs 8 — {what} is not worker-count stable")
    return one


def archive_report(out_path, report):
    """Keep a timestamped copy next to the combined file so successive
    runs build a local history (BENCH_<utc>.json, never overwritten)."""
    stamp = datetime.now(timezone.utc).strftime("%Y%m%dT%H%M%SZ")
    base, ext = os.path.splitext(out_path)
    archive = f"{base}_{stamp}{ext or '.json'}"
    n = 1
    while os.path.exists(archive):  # same-second rerun
        archive = f"{base}_{stamp}-{n}{ext or '.json'}"
        n += 1
    with open(archive, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    return archive


def collect_history(out_path):
    """Parse every BENCH_<stamp>.json archive next to `out_path` into
    trajectory points (stamp-sorted; the filename stamp is UTC, so
    lexical order is chronological). Unreadable archives are skipped
    with a note, never fatal."""
    base, ext = os.path.splitext(out_path)
    points = []
    for path in sorted(glob.glob(f"{base}_*{ext or '.json'}")):
        stamp = os.path.basename(path)[len(os.path.basename(base)) + 1:]
        stamp = stamp[:-len(ext or ".json")]
        try:
            with open(path) as f:
                data = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"[run_bench] history: skipping {path}: {e}")
            continue
        benches = {}
        for b in data.get("benches", []):
            if not isinstance(b, dict) or "bench" not in b:
                continue
            benches[b["bench"]] = {
                "trials": b.get("trials"),
                "jobs": b.get("jobs"),
                "wall_ms": b.get("wall_ms"),
                "events_per_sec": b.get("events_per_sec"),
            }
        points.append({"stamp": stamp, "archive": os.path.basename(path),
                       "benches": benches})
    return points


def history_regressions(points):
    """Compare each bench's latest point against the most recent earlier
    archive with the same {trials, jobs} shape; return warning lines for
    >10% wall-clock growth."""
    if len(points) < 2:
        return []
    latest = points[-1]
    warnings = []
    for name, cur in sorted(latest["benches"].items()):
        if not cur.get("wall_ms"):
            continue
        for earlier in reversed(points[:-1]):
            prev = earlier["benches"].get(name)
            if not prev or not prev.get("wall_ms"):
                continue
            if (prev["trials"], prev["jobs"]) != (cur["trials"],
                                                  cur["jobs"]):
                continue
            if cur["wall_ms"] > prev["wall_ms"] * REGRESSION_FACTOR:
                pct = 100.0 * (cur["wall_ms"] / prev["wall_ms"] - 1.0)
                warnings.append(
                    f"{name}: wall {prev['wall_ms']:.0f} ms "
                    f"({earlier['stamp']}) -> {cur['wall_ms']:.0f} ms "
                    f"(+{pct:.0f}%)")
            break
    return warnings


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build",
                    help="CMake build directory holding bench/ binaries")
    ap.add_argument("--jobs", type=int, default=0,
                    help="worker threads per bench (0 = hardware)")
    ap.add_argument("--quick", action="store_true",
                    help="CI-sized trial counts")
    ap.add_argument("--out", default="BENCH.json",
                    help="combined output path (default BENCH.json)")
    ap.add_argument("--speedup", action="store_true",
                    help="also sweep --jobs 1/2/4/8 over the 200-trial "
                         "attack-matrix workload and record the scaling "
                         "curve")
    ap.add_argument("--montecarlo-check", action="store_true",
                    help="also run bench_montecarlo --quick at --jobs 1 "
                         "and 8 and fail unless the quantile tables are "
                         "byte-identical")
    ap.add_argument("--fleet-check", action="store_true",
                    help="also run bench_fleet --quick at --jobs 1 and 8 "
                         "and fail unless the fleet cells are "
                         "byte-identical")
    ap.add_argument("--history", action="store_true",
                    help="merge the BENCH_<utc>.json archives into a "
                         "trajectory block and warn on >10%% wall-clock "
                         "regressions against the previous comparable run")
    ap.add_argument("--fastpath-check", action="store_true",
                    help="also run the serial attack-matrix workload with "
                         "and without --no-fastpath and fail unless the "
                         "outputs are identical")
    args = ap.parse_args()

    bench_dir = os.path.join(args.build_dir, "bench")
    if not os.path.isdir(bench_dir):
        sys.exit(f"error: {bench_dir} not found — build the tree first "
                 f"(cmake -B {args.build_dir} -S . && "
                 f"cmake --build {args.build_dir} -j)")

    common = []
    if args.quick:
        common.append("--quick")
    if args.jobs:
        common += ["--jobs", str(args.jobs)]

    report = {"benches": []}
    missing = []
    for name in BENCHES:
        binary = os.path.join(bench_dir, name)
        if not os.path.exists(binary):
            missing.append(name)
            continue
        result, _ = run_bench(binary, list(common))
        print(f"[run_bench] {result['bench']}: trials={result['trials']} "
              f"jobs={result['jobs']} wall={result['wall_ms']:.1f} ms "
              f"({result['events_per_sec']:.3g} events/s)")
        report["benches"].append(result)
    if missing:
        print(f"[run_bench] skipped (not built): {', '.join(missing)}")

    if args.speedup:
        binary = os.path.join(bench_dir, "bench_attack_matrix")
        workload = ["--trials", "10"]  # 10 trials x 20 cells = 200 runs
        curve = []
        serial_wall = None
        serial_stripped = None
        for jobs in SWEEP_JOBS:
            result, out = run_bench(binary, workload + ["--jobs", str(jobs)])
            stripped = strip_bench_lines(out)
            if serial_stripped is None:
                serial_wall = result["wall_ms"]
                serial_stripped = stripped
            elif stripped != serial_stripped:
                sys.exit(f"error: attack-matrix output at --jobs {jobs} "
                         f"differs from --jobs 1 — determinism violation")
            curve.append({
                "jobs": jobs,
                "wall_ms": result["wall_ms"],
                "speedup": serial_wall / result["wall_ms"],
            })
            print(f"[run_bench] speedup: jobs={jobs} "
                  f"wall={result['wall_ms']:.0f} ms "
                  f"({curve[-1]['speedup']:.2f}x vs jobs=1, "
                  f"identical output)")
        # Legacy-scheduler baseline at jobs=1: attributes the serial-path
        # win (chunked dispatch + warm arenas) separately from threading.
        legacy, legacy_out = run_bench(
            binary, workload + ["--jobs", "1", "--legacy-runner"])
        if strip_bench_lines(legacy_out) != serial_stripped:
            sys.exit("error: attack-matrix output differs between the "
                     "chunked and legacy runners — scheduler changed a "
                     "simulated result")
        best = min(curve, key=lambda p: p["wall_ms"])
        report["speedup"] = {
            "workload": "attack_matrix --trials 10 (200 experiments)",
            "host_cpus": os.cpu_count(),
            "curve": curve,
            "legacy_runner_jobs1_wall_ms": legacy["wall_ms"],
            "serial_vs_legacy_speedup": legacy["wall_ms"] / serial_wall,
            "jobs": best["jobs"],
            "serial_wall_ms": serial_wall,
            "parallel_wall_ms": best["wall_ms"],
            "speedup": best["speedup"],
            "output_identical": True,
        }
        print(f"[run_bench] speedup: best {best['speedup']:.2f}x at "
              f"jobs={best['jobs']} on {os.cpu_count()} host CPUs; "
              f"legacy-runner serial baseline "
              f"{legacy['wall_ms']:.0f} ms "
              f"({legacy['wall_ms'] / serial_wall:.2f}x vs chunked serial)")

    if args.fastpath_check:
        binary = os.path.join(bench_dir, "bench_attack_matrix")
        workload = ["--trials", "10", "--jobs", "1"]
        # Interleaved best-of-3 per mode: the equivalence gate needs one
        # run, but a meaningful wall-clock ratio needs noise control.
        fast, naive = None, None
        for _ in range(3):
            f, fast_out = run_bench(binary, list(workload))
            n, naive_out = run_bench(binary, workload + ["--no-fastpath"])
            if strip_bench_lines(fast_out) != strip_bench_lines(naive_out):
                sys.exit("error: attack-matrix output differs between the "
                         "fast-path and --no-fastpath runs — the fast "
                         "paths changed a simulated result")
            if fast is None or f["wall_ms"] < fast["wall_ms"]:
                fast = f
            if naive is None or n["wall_ms"] < naive["wall_ms"]:
                naive = n
        ratio = naive["wall_ms"] / fast["wall_ms"]
        report["fastpath_check"] = {
            "workload": "attack_matrix --trials 10 --jobs 1 "
                        "(200 experiments)",
            "fastpath_wall_ms": fast["wall_ms"],
            "no_fastpath_wall_ms": naive["wall_ms"],
            "speedup": ratio,
            "output_identical": True,
        }
        print(f"[run_bench] fastpath: {naive['wall_ms']:.0f} ms naive -> "
              f"{fast['wall_ms']:.0f} ms fast path "
              f"({ratio:.2f}x, identical output)")

    if args.montecarlo_check:
        one = check_jobs_stable(bench_dir, "bench_montecarlo", ["--quick"],
                                "streaming-quantile merge")
        report["montecarlo_check"] = {
            "workload": "bench_montecarlo --quick",
            "trials": one["trials"],
            "jobs_compared": [1, 8],
            "output_identical": True,
        }
        print(f"[run_bench] montecarlo-check: {one['trials']} trials, "
              f"jobs 1 vs 8 identical (tables + JSON)")

    if args.fleet_check:
        one = check_jobs_stable(bench_dir, "bench_fleet", ["--quick"],
                                "the fleet sweep")
        report["fleet_check"] = {
            "workload": "bench_fleet --quick",
            "trials": one["trials"],
            "jobs_compared": [1, 8],
            "output_identical": True,
        }
        print(f"[run_bench] fleet-check: {one['trials']} trials, "
              f"jobs 1 vs 8 identical (tables + JSON)")

    # Archive before assembling the trajectory so the current run is the
    # history's final point (the combined file alone gets the block; the
    # archives stay pure per-run records).
    archive = archive_report(args.out, report)
    if args.history:
        points = collect_history(args.out)
        warnings = history_regressions(points)
        report["trajectory"] = {
            "points": points,
            "regression_factor": REGRESSION_FACTOR,
            "regressions": warnings,
        }
        print(f"[run_bench] history: {len(points)} archived run(s)")
        for w in warnings:
            print(f"[run_bench] warning: {w}")
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"[run_bench] wrote {args.out} ({len(report['benches'])} benches), "
          f"archived {archive}")


if __name__ == "__main__":
    main()
