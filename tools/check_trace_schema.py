#!/usr/bin/env python3
"""Validate an observability trace export (JSONL) against the schema.

Usage:
    tools/check_trace_schema.py TRACE.jsonl [...]

Checks every line of each file:
  - parses as a single JSON object;
  - "ph" is "span" or "instant";
  - spans carry {id, parent, cat, name, t0_ns, t1_ns, args},
    instants carry {id, parent, cat, name, t_ns, args} -- no extras;
  - ids are positive, strictly increasing (the TraceLog allocates them
    sequentially), and unique;
  - parent is 0 or a previously seen id (causality: parents open first);
  - timestamps are non-negative integers; a closed span has t1 >= t0;
  - args is a string->string object.

Exit status: 0 when every file is clean, 1 otherwise. Used by the CI
obs-smoke leg on the defense_stacked --trace-out export.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

SPAN_KEYS = {"ph", "id", "parent", "cat", "name", "t0_ns", "t1_ns", "args"}
INSTANT_KEYS = {"ph", "id", "parent", "cat", "name", "t_ns", "args"}


def check_file(path: Path) -> list[str]:
    errors: list[str] = []
    seen_ids: set[int] = set()
    last_id = 0

    def err(lineno: int, msg: str) -> None:
        errors.append(f"{path}:{lineno}: {msg}")

    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        return [f"{path}: unreadable: {exc}"]

    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            err(lineno, "blank line (JSONL must be dense)")
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            err(lineno, f"invalid JSON: {exc}")
            continue
        if not isinstance(rec, dict):
            err(lineno, "line is not a JSON object")
            continue

        ph = rec.get("ph")
        if ph == "span":
            expect = SPAN_KEYS
        elif ph == "instant":
            expect = INSTANT_KEYS
        else:
            err(lineno, f'"ph" must be "span" or "instant", got {ph!r}')
            continue
        if set(rec) != expect:
            missing = expect - set(rec)
            extra = set(rec) - expect
            detail = []
            if missing:
                detail.append(f"missing {sorted(missing)}")
            if extra:
                detail.append(f"unexpected {sorted(extra)}")
            err(lineno, f"{ph} keys: " + ", ".join(detail))
            continue

        rid = rec["id"]
        if not isinstance(rid, int) or rid <= 0:
            err(lineno, f'"id" must be a positive integer, got {rid!r}')
            continue
        if rid in seen_ids:
            err(lineno, f"duplicate id {rid}")
        if rid <= last_id:
            err(lineno, f"id {rid} not increasing (last was {last_id})")
        seen_ids.add(rid)
        last_id = max(last_id, rid)

        parent = rec["parent"]
        if not isinstance(parent, int) or parent < 0:
            err(lineno, f'"parent" must be a non-negative int, got {parent!r}')
        elif parent != 0 and parent not in seen_ids:
            err(lineno, f"parent {parent} not a previously seen id")

        for key in ("cat", "name"):
            if not isinstance(rec[key], str) or not rec[key]:
                err(lineno, f'"{key}" must be a non-empty string')

        if ph == "span":
            t0, t1 = rec["t0_ns"], rec["t1_ns"]
            if not isinstance(t0, int) or t0 < 0:
                err(lineno, f'"t0_ns" must be a non-negative int, got {t0!r}')
            if t1 is not None:
                if not isinstance(t1, int) or t1 < 0:
                    err(lineno,
                        f'"t1_ns" must be null or non-negative int, got {t1!r}')
                elif isinstance(t0, int) and t1 < t0:
                    err(lineno, f"span ends before it begins ({t1} < {t0})")
        else:
            t = rec["t_ns"]
            if not isinstance(t, int) or t < 0:
                err(lineno, f'"t_ns" must be a non-negative int, got {t!r}')

        args = rec["args"]
        if not isinstance(args, dict):
            err(lineno, '"args" must be an object')
        else:
            for k, v in args.items():
                if not isinstance(k, str) or not isinstance(v, str):
                    err(lineno, f"args entry {k!r}: {v!r} is not str->str")

    return errors


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    all_errors: list[str] = []
    for arg in sys.argv[1:]:
        path = Path(arg)
        errs = check_file(path)
        if errs:
            all_errors.extend(errs)
        else:
            lines = sum(1 for _ in path.open(encoding="utf-8"))
            print(f"{path}: OK ({lines} records)")
    if all_errors:
        print(f"trace schema: {len(all_errors)} error(s)")
        for e in all_errors[:50]:
            print("  " + e)
        if len(all_errors) > 50:
            print(f"  ... and {len(all_errors) - 50} more")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
