#!/usr/bin/env python3
"""Validate an observability trace export (JSONL) against the schema.

Usage:
    tools/check_trace_schema.py TRACE.jsonl [...]
    tools/check_trace_schema.py --profile PROFILE.json [...]

Checks every line of each file:
  - parses as a single JSON object;
  - "ph" is "span" or "instant";
  - spans carry {id, parent, cat, name, t0_ns, t1_ns, args},
    instants carry {id, parent, cat, name, t_ns, args} -- no extras;
  - ids are positive, strictly increasing (the TraceLog allocates them
    sequentially), and unique;
  - parent is 0 or a previously seen id (causality: parents open first);
  - timestamps are non-negative integers; a closed span has t1 >= t0;
  - args is a string->string object;
  - "ids"-category instants (the anomaly IDS deviation stream) use one
    of the six ANOMALY_* names and carry a well-formed "loc" argument.

With --profile, each file is instead validated as a
tmg-behavior-profile-v1 document (the tools/train_profile output and
ids::BehaviorProfile::to_json shape): port entries keyed by
"0x<dpid>:<port>" locations, bigram/trigram tables over the ten-symbol
alphabet, non-negative rate envelopes, and ordered duration quantiles.

Exit status: 0 when every file is clean, 1 otherwise. Used by the CI
obs-smoke leg on the defense_stacked --trace-out export and the
anomaly-smoke leg on the trained profile.
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

SPAN_KEYS = {"ph", "id", "parent", "cat", "name", "t0_ns", "t1_ns", "args"}
INSTANT_KEYS = {"ph", "id", "parent", "cat", "name", "t_ns", "args"}

ANOMALY_NAMES = {
    "ANOMALY_PORT",
    "ANOMALY_TRANSITION",
    "ANOMALY_TRIGRAM",
    "ANOMALY_LLDP_SRC",
    "ANOMALY_RATE",
    "ANOMALY_DURATION",
}

SYMBOLS = {
    "Start", "PktArp", "PktIp", "PktLldp", "PktOther",
    "PortUp", "PortDown", "HostNew", "HostMoved", "LinkRemoved",
}

LOC_RE = re.compile(r"^0x[0-9a-f]+:\d+$")


def check_file(path: Path) -> list[str]:
    errors: list[str] = []
    seen_ids: set[int] = set()
    last_id = 0

    def err(lineno: int, msg: str) -> None:
        errors.append(f"{path}:{lineno}: {msg}")

    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as exc:
        return [f"{path}: unreadable: {exc}"]

    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            err(lineno, "blank line (JSONL must be dense)")
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            err(lineno, f"invalid JSON: {exc}")
            continue
        if not isinstance(rec, dict):
            err(lineno, "line is not a JSON object")
            continue

        ph = rec.get("ph")
        if ph == "span":
            expect = SPAN_KEYS
        elif ph == "instant":
            expect = INSTANT_KEYS
        else:
            err(lineno, f'"ph" must be "span" or "instant", got {ph!r}')
            continue
        if set(rec) != expect:
            missing = expect - set(rec)
            extra = set(rec) - expect
            detail = []
            if missing:
                detail.append(f"missing {sorted(missing)}")
            if extra:
                detail.append(f"unexpected {sorted(extra)}")
            err(lineno, f"{ph} keys: " + ", ".join(detail))
            continue

        rid = rec["id"]
        if not isinstance(rid, int) or rid <= 0:
            err(lineno, f'"id" must be a positive integer, got {rid!r}')
            continue
        if rid in seen_ids:
            err(lineno, f"duplicate id {rid}")
        if rid <= last_id:
            err(lineno, f"id {rid} not increasing (last was {last_id})")
        seen_ids.add(rid)
        last_id = max(last_id, rid)

        parent = rec["parent"]
        if not isinstance(parent, int) or parent < 0:
            err(lineno, f'"parent" must be a non-negative int, got {parent!r}')
        elif parent != 0 and parent not in seen_ids:
            err(lineno, f"parent {parent} not a previously seen id")

        for key in ("cat", "name"):
            if not isinstance(rec[key], str) or not rec[key]:
                err(lineno, f'"{key}" must be a non-empty string')

        if ph == "span":
            t0, t1 = rec["t0_ns"], rec["t1_ns"]
            if not isinstance(t0, int) or t0 < 0:
                err(lineno, f'"t0_ns" must be a non-negative int, got {t0!r}')
            if t1 is not None:
                if not isinstance(t1, int) or t1 < 0:
                    err(lineno,
                        f'"t1_ns" must be null or non-negative int, got {t1!r}')
                elif isinstance(t0, int) and t1 < t0:
                    err(lineno, f"span ends before it begins ({t1} < {t0})")
        else:
            t = rec["t_ns"]
            if not isinstance(t, int) or t < 0:
                err(lineno, f'"t_ns" must be a non-negative int, got {t!r}')

        args = rec["args"]
        if not isinstance(args, dict):
            err(lineno, '"args" must be an object')
        else:
            for k, v in args.items():
                if not isinstance(k, str) or not isinstance(v, str):
                    err(lineno, f"args entry {k!r}: {v!r} is not str->str")

        # Anomaly-IDS deviation stream: the "ids" category is reserved
        # for the six ANOMALY_* instants, each tagged with the deviating
        # port's location.
        if ph == "instant" and rec.get("cat") == "ids":
            name = rec.get("name")
            if name not in ANOMALY_NAMES:
                err(lineno, f'"ids" instant name {name!r} is not one of '
                            f"{sorted(ANOMALY_NAMES)}")
            if isinstance(args, dict):
                loc = args.get("loc")
                if not isinstance(loc, str) or not LOC_RE.match(loc):
                    err(lineno, f'"ids" instant "loc" {loc!r} is not a '
                                '"0x<dpid>:<port>" location')
                if not args.get("detail"):
                    err(lineno, '"ids" instant without a "detail" message')

    return errors


def check_profile(path: Path) -> list[str]:
    """Validate one tmg-behavior-profile-v1 document."""
    errors: list[str] = []

    def err(msg: str) -> None:
        errors.append(f"{path}: {msg}")

    def check_uint(obj: dict, key: str, where: str) -> None:
        v = obj.get(key)
        if not isinstance(v, int) or isinstance(v, bool) or v < 0:
            err(f"{where}: \"{key}\" must be a non-negative integer, "
                f"got {v!r}")

    def check_num(obj: dict, key: str, where: str) -> None:
        v = obj.get(key)
        if not isinstance(v, (int, float)) or isinstance(v, bool) or v < 0:
            err(f"{where}: \"{key}\" must be a non-negative number, "
                f"got {v!r}")

    def check_ngram_table(table: object, arity: int, where: str) -> None:
        if not isinstance(table, dict):
            err(f"{where}: not an object")
            return
        for key, count in table.items():
            syms = key.split(">")
            if len(syms) != arity or not all(s in SYMBOLS for s in syms):
                err(f"{where}: key {key!r} is not {arity} \">\"-joined "
                    "alphabet symbols")
            if not isinstance(count, int) or isinstance(count, bool) \
                    or count < 1:
                err(f"{where}: count for {key!r} must be a positive "
                    f"integer, got {count!r}")

    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        return [f"{path}: unreadable: {exc}"]
    except json.JSONDecodeError as exc:
        return [f"{path}: invalid JSON: {exc}"]
    if not isinstance(doc, dict):
        return [f"{path}: document is not a JSON object"]

    if doc.get("format") != "tmg-behavior-profile-v1":
        err(f'"format" must be "tmg-behavior-profile-v1", '
            f"got {doc.get('format')!r}")
    check_uint(doc, "trials", "profile")
    check_uint(doc, "events", "profile")

    ports = doc.get("ports")
    if not isinstance(ports, list):
        err('"ports" must be an array')
        ports = []
    seen_ports: set[str] = set()
    for i, entry in enumerate(ports):
        where = f"ports[{i}]"
        if not isinstance(entry, dict):
            err(f"{where}: not an object")
            continue
        loc = entry.get("port")
        if not isinstance(loc, str) or not LOC_RE.match(loc):
            err(f"{where}: \"port\" {loc!r} is not a "
                '"0x<dpid>:<port>" location')
        elif loc in seen_ports:
            err(f"{where}: duplicate port {loc!r}")
        else:
            seen_ports.add(loc)
        check_uint(entry, "events", where)
        check_uint(entry, "peak_rate_per_s", where)
        check_num(entry, "mean_rate_per_s", where)
        check_ngram_table(entry.get("bigrams"), 2, f"{where}.bigrams")
        check_ngram_table(entry.get("trigrams"), 3, f"{where}.trigrams")
        srcs = entry.get("lldp_srcs")
        if not isinstance(srcs, list):
            err(f"{where}: \"lldp_srcs\" must be an array")
        else:
            for src in srcs:
                if not isinstance(src, str) or not LOC_RE.match(src):
                    err(f"{where}: lldp_src {src!r} is not a "
                        '"0x<dpid>:<port>" location')

    durations = doc.get("durations")
    if not isinstance(durations, list):
        err('"durations" must be an array')
        durations = []
    for i, entry in enumerate(durations):
        where = f"durations[{i}]"
        if not isinstance(entry, dict):
            err(f"{where}: not an object")
            continue
        if not isinstance(entry.get("kind"), str) or not entry["kind"]:
            err(f"{where}: \"kind\" must be a non-empty string")
        check_uint(entry, "count", where)
        for key in ("p50_ns", "p90_ns", "p99_ns", "max_ns"):
            check_num(entry, key, where)
        if all(isinstance(entry.get(k), (int, float))
               for k in ("p50_ns", "p90_ns", "p99_ns", "max_ns")):
            p50, p90 = entry["p50_ns"], entry["p90_ns"]
            p99, mx = entry["p99_ns"], entry["max_ns"]
            if not (p50 <= p90 <= p99 <= mx):
                err(f"{where}: quantiles not ordered "
                    f"(p50 {p50} <= p90 {p90} <= p99 {p99} <= max {mx})")

    return errors


def main() -> int:
    argv = sys.argv[1:]
    profile_mode = False
    if argv and argv[0] == "--profile":
        profile_mode = True
        argv = argv[1:]
    if not argv:
        print(__doc__, file=sys.stderr)
        return 2
    all_errors: list[str] = []
    for arg in argv:
        path = Path(arg)
        if profile_mode:
            errs = check_profile(path)
            if errs:
                all_errors.extend(errs)
            else:
                doc = json.loads(path.read_text(encoding="utf-8"))
                print(f"{path}: OK (profile: {doc['trials']} trials, "
                      f"{len(doc['ports'])} ports, "
                      f"{len(doc['durations'])} duration kinds)")
            continue
        errs = check_file(path)
        if errs:
            all_errors.extend(errs)
        else:
            lines = sum(1 for _ in path.open(encoding="utf-8"))
            print(f"{path}: OK ({lines} records)")
    if all_errors:
        print(f"trace schema: {len(all_errors)} error(s)")
        for e in all_errors[:50]:
            print("  " + e)
        if len(all_errors) > 50:
            print(f"  ... and {len(all_errors) - 50} more")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
