#!/usr/bin/env python3
"""Offline anomaly-IDS round-trip: export -> train -> validate.

Drives the full offline training loop end to end and fails if any link
breaks (the CI anomaly-smoke leg and the obs.profile_roundtrip ctest):

  1. run a bench with --trace-out to export a clean-run TraceLog JSONL;
  2. schema-check the export (check_trace_schema.check_file);
  3. train a behavior profile from it (build/tools/train_profile);
  4. schema-check the profile (check_trace_schema.check_profile);
  5. assert the profile is non-trivial — at least one port and one
     event. This pins the featurization contract: if the trace instant
     names or detail formats ever drift from what the offline trainer
     parses (DESIGN.md §14), training silently yields an empty profile,
     and this gate is what catches it.

Usage:
    python3 tools/check_profile_roundtrip.py BENCH_BINARY TRAINER_BINARY \
        WORK_DIR [extra bench args...]
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import check_trace_schema


def run(cmd: list[str]) -> None:
    proc = subprocess.run(cmd, stdout=subprocess.DEVNULL)
    if proc.returncode != 0:
        sys.exit(f"error: {' '.join(cmd)} exited {proc.returncode}")


def main() -> int:
    if len(sys.argv) < 4:
        print(__doc__, file=sys.stderr)
        return 2
    bench = Path(sys.argv[1])
    trainer = Path(sys.argv[2])
    work = Path(sys.argv[3])
    extra = sys.argv[4:]
    for binary in (bench, trainer):
        if not binary.exists():
            sys.exit(f"error: {binary} not found — build the tree first")
    work.mkdir(parents=True, exist_ok=True)

    trace = work / "clean.jsonl"
    profile = work / "profile.json"

    run([str(bench), "--quick", f"--trace-out={trace}"] + extra)
    errors = check_trace_schema.check_file(trace)
    if errors:
        for e in errors[:20]:
            print("  " + e, file=sys.stderr)
        sys.exit(f"error: exported trace fails the schema "
                 f"({len(errors)} error(s))")

    run([str(trainer), "--out", str(profile), str(trace)])
    errors = check_trace_schema.check_profile(profile)
    if errors:
        for e in errors[:20]:
            print("  " + e, file=sys.stderr)
        sys.exit(f"error: trained profile fails the schema "
                 f"({len(errors)} error(s))")

    doc = json.loads(profile.read_text(encoding="utf-8"))
    if doc["events"] == 0 or not doc["ports"]:
        sys.exit("error: profile trained to nothing (0 events or 0 ports) "
                 "— the trace featurization contract has drifted "
                 "(DESIGN.md §14)")

    print(f"profile round-trip OK: {doc['trials']} trial(s), "
          f"{doc['events']} events, {len(doc['ports'])} ports, "
          f"{len(doc['durations'])} duration kind(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
