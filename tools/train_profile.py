#!/usr/bin/env python3
"""Train an anomaly-IDS behavior profile from clean-run trace exports.

Thin wrapper over the C++ trainer (build/tools/train_profile): collects
TraceLog JSONL exports — written by the benches' --trace-out flag — and
emits the tmg-behavior-profile-v1 JSON the online IDS scores against.

Typical flow (README "Anomaly IDS quickstart"):

    build/bench/bench_montecarlo --quick --trace-out clean.jsonl
    python3 tools/train_profile.py clean.jsonl --out profile.json
    python3 tools/check_trace_schema.py --profile profile.json

The binary is deterministic: the same traces in the same order yield a
byte-identical profile. This wrapper only locates the binary, forwards
arguments, and checks the output parses as JSON.

Usage:
    python3 tools/train_profile.py [--build-dir build] [--out PATH]
                                   TRACE.jsonl [TRACE.jsonl ...]
"""

import argparse
import json
import os
import subprocess
import sys


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("traces", nargs="+", metavar="TRACE.jsonl",
                    help="TraceLog JSONL exports, one clean trial each "
                         "(training order = argument order)")
    ap.add_argument("--build-dir", default="build",
                    help="CMake build directory holding tools/train_profile")
    ap.add_argument("--out", default="",
                    help="profile output path (default: stdout)")
    args = ap.parse_args()

    binary = os.path.join(args.build_dir, "tools", "train_profile")
    if not os.path.exists(binary):
        sys.exit(f"error: {binary} not found — build the tree first "
                 f"(cmake -B {args.build_dir} -S . && "
                 f"cmake --build {args.build_dir} -j)")
    for path in args.traces:
        if not os.path.exists(path):
            sys.exit(f"error: trace file {path} not found")

    cmd = [binary] + (["--out", args.out] if args.out else []) + args.traces
    proc = subprocess.run(cmd, capture_output=True, text=True)
    sys.stderr.write(proc.stderr)
    if proc.returncode != 0:
        sys.exit(proc.returncode)

    profile_text = proc.stdout
    if args.out:
        with open(args.out) as f:
            profile_text = f.read()
    try:
        profile = json.loads(profile_text)
    except json.JSONDecodeError as e:
        sys.exit(f"error: trainer emitted invalid JSON: {e}")
    if profile.get("format") != "tmg-behavior-profile-v1":
        sys.exit("error: trainer output is not a tmg-behavior-profile-v1 "
                 "document")
    if not args.out:
        sys.stdout.write(proc.stdout)
    print(f"[train_profile] profile: {profile['trials']} trials, "
          f"{profile['events']} events, {len(profile['ports'])} ports",
          file=sys.stderr)


if __name__ == "__main__":
    main()
