#!/usr/bin/env python3
"""Pipeline-equivalence gate for the message-pipeline refactor.

The refactor's correctness contract (DESIGN.md §9) has two halves:

  1. Golden equivalence -- with a single defense per cell, the
     attack-matrix stdout must be byte-identical to the pre-refactor
     output. Routing every PacketIn / PortStatus / LLDP event through
     the ordered listener chain may not change a single simulated
     result. The `[bench]` timing footers are the only nondeterministic
     lines and are stripped before the diff.

  2. Stacked determinism -- with TopoGuard + SPHINX + TOPOGUARD+
     stacked on the same chain (`--stacked`), two runs at different
     worker counts must produce identical output, including the
     per-listener dispatch counters (`--pipeline-stats`).

The per-controller profile layer adds two more:

  3. Floodlight-profile golden equivalence -- `--profile=floodlight`
     spells out the default, so its table must stay byte-identical to
     the profile-less golden (the profile plumbing itself may not
     perturb the default chain).

  4. Per-profile determinism -- every profile (including ONOS's
     probe-before-move migration and OpenDaylight's gate-less
     broadcast chain) must produce identical tables at --jobs 1 vs 8.

Usage: check_pipeline_equivalence.py <bench_attack_matrix> <golden_dir>

Exit status: 0 all checks pass, 1 a diff was found, 2 setup error.
"""

from __future__ import annotations

import difflib
import subprocess
import sys
from pathlib import Path

BENCH_PREFIX = "[bench]"


def run_bench(binary: Path, *flags: str) -> list[str]:
    proc = subprocess.run(
        [str(binary), *flags],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        check=False,
        timeout=1800,
    )
    if proc.returncode != 0:
        print(f"check_pipeline_equivalence: {binary.name} "
              f"{' '.join(flags)} exited {proc.returncode}",
              file=sys.stderr)
        sys.stderr.write(proc.stderr)
        sys.exit(2)
    return [
        line
        for line in proc.stdout.splitlines()
        if not line.startswith(BENCH_PREFIX)
    ]


def show_diff(label: str, want: list[str], got: list[str]) -> bool:
    if want == got:
        print(f"  PASS {label}")
        return True
    print(f"  FAIL {label}")
    for line in difflib.unified_diff(
        want, got, fromfile="expected", tofile="actual", lineterm="", n=2
    ):
        print("    " + line)
    return False


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    binary = Path(sys.argv[1])
    golden_dir = Path(sys.argv[2])
    if not binary.exists():
        print(f"check_pipeline_equivalence: no such binary {binary}",
              file=sys.stderr)
        return 2

    ok = True
    print("pipeline equivalence: single-defense goldens")
    for golden_name, flags in [
        ("attack_matrix_single_defense.txt", ["--trials", "1"]),
        ("attack_matrix_single_defense_t3.txt", ["--trials", "3"]),
    ]:
        golden = golden_dir / golden_name
        if not golden.exists():
            print(f"check_pipeline_equivalence: missing golden {golden}",
                  file=sys.stderr)
            return 2
        want = golden.read_text(encoding="utf-8").splitlines()
        got = run_bench(binary, *flags, "--jobs", "1")
        ok &= show_diff(golden_name, want, got)

    print("pipeline equivalence: stacked determinism across worker counts")
    stacked = ["--trials", "1", "--stacked", "--pipeline-stats"]
    first = run_bench(binary, *stacked, "--jobs", "4")
    second = run_bench(binary, *stacked, "--jobs", "8")
    ok &= show_diff("stacked --jobs 4 vs --jobs 8", first, second)

    print("pipeline equivalence: --profile=floodlight is the default")
    golden = golden_dir / "attack_matrix_single_defense.txt"
    want = golden.read_text(encoding="utf-8").splitlines()
    got = run_bench(binary, "--trials", "1", "--jobs", "1",
                    "--profile=floodlight")
    ok &= show_diff("floodlight profile vs golden", want, got)

    print("pipeline equivalence: per-profile determinism across worker "
          "counts")
    for profile in ["floodlight", "pox", "opendaylight", "onos"]:
        flags = ["--trials", "2", f"--profile={profile}"]
        first = run_bench(binary, *flags, "--jobs", "1")
        second = run_bench(binary, *flags, "--jobs", "8")
        ok &= show_diff(f"{profile} --jobs 1 vs --jobs 8", first, second)

    if not ok:
        print("pipeline equivalence: FAILED -- the listener chain changed "
              "a simulated result")
        return 1
    print("pipeline equivalence: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
