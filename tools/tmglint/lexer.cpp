#include "token.hpp"

#include <cctype>
#include <cstddef>

namespace tmg::tmglint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

class Lexer {
 public:
  explicit Lexer(const std::string& text) : s_{text} {}

  LexOutput run() {
    while (i_ < s_.size()) step();
    return std::move(out_);
  }

 private:
  void step() {
    const char c = s_[i_];
    if (c == '\n') {
      ++line_;
      ++i_;
      at_line_start_ = true;
      return;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i_;
      return;
    }
    if (c == '/' && peek(1) == '/') {
      line_comment();
      return;
    }
    if (c == '/' && peek(1) == '*') {
      block_comment();
      return;
    }
    const bool line_start = at_line_start_;
    at_line_start_ = false;
    if (c == '#' && line_start) {
      directive();
      return;
    }
    if (c == 'R' && peek(1) == '"') {
      raw_string();
      return;
    }
    // Encoding prefixes (L"", u8"", ...) are irrelevant here: the
    // prefix lexes as an identifier and the quote as a string token.
    if (c == '"') {
      quoted_string();
      return;
    }
    if (c == '\'') {
      char_literal();
      return;
    }
    if (ident_start(c)) {
      identifier();
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))) != 0)) {
      number();
      return;
    }
    punct();
  }

  [[nodiscard]] char peek(std::size_t ahead) const {
    return i_ + ahead < s_.size() ? s_[i_ + ahead] : '\0';
  }

  void emit(TokKind kind, std::string text, int line) {
    out_.tokens.push_back(Token{kind, std::move(text), line});
  }

  void line_comment() {
    const int start = line_;
    std::size_t j = i_;
    while (j < s_.size() && s_[j] != '\n') ++j;
    out_.comments.push_back(Comment{start, s_.substr(i_, j - i_)});
    i_ = j;
  }

  void block_comment() {
    const int start = line_;
    std::size_t j = i_ + 2;
    while (j + 1 < s_.size() && !(s_[j] == '*' && s_[j + 1] == '/')) {
      if (s_[j] == '\n') ++line_;
      ++j;
    }
    const std::size_t end = j + 1 < s_.size() ? j + 2 : s_.size();
    out_.comments.push_back(Comment{start, s_.substr(i_, end - i_)});
    i_ = end;
  }

  /// Preprocessor directive. `#include "x"` is captured for the
  /// layering pass and the target emitted as a String token; every
  /// other directive just contributes its body tokens (macro bodies are
  /// real code the determinism rules must still see). Angled include
  /// targets are swallowed so `<vector>` never lexes as comparisons.
  void directive() {
    const int start = line_;
    emit(TokKind::Directive, "#", start);
    ++i_;
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t')) ++i_;
    std::size_t j = i_;
    while (j < s_.size() && ident_char(s_[j])) ++j;
    const std::string name = s_.substr(i_, j - i_);
    if (!name.empty()) emit(TokKind::Ident, name, start);
    i_ = j;
    if (name != "include") return;  // body lexes via normal rules
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t')) ++i_;
    if (i_ < s_.size() && s_[i_] == '"') {
      const std::size_t open = i_ + 1;
      std::size_t close = open;
      while (close < s_.size() && s_[close] != '"' && s_[close] != '\n') {
        ++close;
      }
      std::string target = s_.substr(open, close - open);
      emit(TokKind::String, target, start);
      out_.includes.push_back(IncludeDirective{start, std::move(target)});
      i_ = close < s_.size() && s_[close] == '"' ? close + 1 : close;
    } else if (i_ < s_.size() && s_[i_] == '<') {
      std::size_t close = i_ + 1;
      while (close < s_.size() && s_[close] != '>' && s_[close] != '\n') {
        ++close;
      }
      emit(TokKind::String, s_.substr(i_ + 1, close - i_ - 1), start);
      i_ = close < s_.size() && s_[close] == '>' ? close + 1 : close;
    }
  }

  void quoted_string() {
    const int start = line_;
    std::size_t j = i_ + 1;
    std::string body;
    while (j < s_.size() && s_[j] != '"') {
      if (s_[j] == '\\' && j + 1 < s_.size()) {
        body.push_back(s_[j]);
        body.push_back(s_[j + 1]);
        j += 2;
        continue;
      }
      if (s_[j] == '\n') ++line_;  // ill-formed, but keep lines honest
      body.push_back(s_[j]);
      ++j;
    }
    emit(TokKind::String, std::move(body), start);
    i_ = j < s_.size() ? j + 1 : j;
  }

  void raw_string() {
    const int start = line_;
    std::size_t j = i_ + 2;  // past R"
    std::string delim;
    while (j < s_.size() && s_[j] != '(') delim.push_back(s_[j++]);
    const std::string closer = ")" + delim + "\"";
    const std::size_t body_start = j + 1;
    const std::size_t end = s_.find(closer, body_start);
    const std::size_t body_end = end == std::string::npos ? s_.size() : end;
    for (std::size_t k = i_; k < body_end; ++k) {
      if (s_[k] == '\n') ++line_;
    }
    emit(TokKind::String, s_.substr(body_start, body_end - body_start), start);
    i_ = end == std::string::npos ? s_.size() : end + closer.size();
  }

  void char_literal() {
    const int start = line_;
    std::size_t j = i_ + 1;
    std::string body;
    while (j < s_.size() && s_[j] != '\'') {
      if (s_[j] == '\\' && j + 1 < s_.size()) {
        body.push_back(s_[j]);
        body.push_back(s_[j + 1]);
        j += 2;
        continue;
      }
      body.push_back(s_[j]);
      ++j;
    }
    emit(TokKind::CharLit, std::move(body), start);
    i_ = j < s_.size() ? j + 1 : j;
  }

  void identifier() {
    std::size_t j = i_;
    while (j < s_.size() && ident_char(s_[j])) ++j;
    emit(TokKind::Ident, s_.substr(i_, j - i_), line_);
    i_ = j;
  }

  void number() {
    std::size_t j = i_;
    while (j < s_.size()) {
      const char c = s_[j];
      if (ident_char(c) || c == '.' || c == '\'') {
        ++j;
        continue;
      }
      // Exponent signs: 1e-5, 0x1p+3.
      if ((c == '+' || c == '-') && j > i_ &&
          (s_[j - 1] == 'e' || s_[j - 1] == 'E' || s_[j - 1] == 'p' ||
           s_[j - 1] == 'P')) {
        ++j;
        continue;
      }
      break;
    }
    emit(TokKind::Number, s_.substr(i_, j - i_), line_);
    i_ = j;
  }

  /// `::` and `->` are the only fused operators: the passes match
  /// qualified names and member accesses constantly, and every other
  /// multi-char operator can be recognized as adjacent single tokens.
  void punct() {
    if (s_[i_] == ':' && peek(1) == ':') {
      emit(TokKind::Punct, "::", line_);
      i_ += 2;
      return;
    }
    if (s_[i_] == '-' && peek(1) == '>') {
      emit(TokKind::Punct, "->", line_);
      i_ += 2;
      return;
    }
    emit(TokKind::Punct, std::string(1, s_[i_]), line_);
    ++i_;
  }

  const std::string& s_;
  std::size_t i_ = 0;
  int line_ = 1;
  bool at_line_start_ = true;
  LexOutput out_;
};

}  // namespace

LexOutput lex(const std::string& text) { return Lexer{text}.run(); }

}  // namespace tmg::tmglint
