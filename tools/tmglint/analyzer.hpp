// tmglint: analysis driver.
//
// Four passes over a lexed SourceTree (DESIGN.md §11):
//
//   determinism  — the nine legacy lint_determinism.py rules, re-hosted
//                  on the token stream (no string/comment false
//                  positives), same suppression grammar and scoping.
//   lifetime     — posted-callback lifetime: lambdas handed to
//                  EventLoop::post_at/post_after that capture stack
//                  locals by reference, or `this` through a loop the
//                  caller merely borrowed.
//   layering     — the module include DAG: layer ranks, the obs
//                  floating-module rule, and file-level cycle
//                  rejection.
//   pipeline     — MessagePipeline wiring: every registration in
//                  src/ctrl + src/defense is statically extracted
//                  (PipelineLayout slots and priority constants folded,
//                  listener names resolved through name() bodies),
//                  instantiated once per harvested `<key>_profile()`
//                  layout, and diffed against the checked-in
//                  tools/tmglint/pipeline_spec_<key>.txt files.
//
// A suppression audit runs whenever every suppressable pass ran: any
// `allow(<rule>)` that suppressed nothing is itself a finding.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "findings.hpp"
#include "source.hpp"
#include "spec.hpp"

namespace tmg::tmglint {

enum class Pass { Determinism, Lifetime, Layering, Pipeline };

struct Options {
  std::string root;
  /// Empty = all passes.
  std::set<Pass> passes;
  /// Defaults to <root>/tools/tmglint/pipeline_spec.txt. Per-profile
  /// spec files live next to it as pipeline_spec_<key>.txt; the path
  /// itself is only read in legacy single-spec mode (fixture trees with
  /// no profile functions).
  std::string spec_path;
  /// Extract the pipeline spec without diffing it (--emit-pipeline-spec).
  bool skip_spec_diff = false;
  /// Force the suppression audit on/off; by default it runs exactly
  /// when both suppressable passes (determinism + lifetime) run.
  int audit_override = -1;  // -1 auto, 0 off, 1 on
};

struct AnalysisResult {
  std::vector<Finding> findings;  // sorted
  /// Pipeline pass output (if it ran): one spec per harvested profile,
  /// or a single keyless spec in legacy single-spec mode.
  std::vector<ProfileSpec> extracted;
  bool pipeline_ran = false;
};

/// Load <root>/src and run the selected passes.
[[nodiscard]] AnalysisResult analyze(const Options& opts);

// Individual passes (analyze() composes these; tests drive them
// directly against fixture trees).
void run_determinism_pass(const SourceTree& tree,
                          std::vector<Finding>& findings);
void run_lifetime_pass(const SourceTree& tree, std::vector<Finding>& findings);
void run_layering_pass(const SourceTree& tree, std::vector<Finding>& findings);
[[nodiscard]] std::vector<ProfileSpec> run_pipeline_pass(
    const SourceTree& tree, const std::string& spec_path, bool skip_spec_diff,
    std::vector<Finding>& findings);
/// Report allow()/skip-file directives that suppressed nothing. Must
/// run after the suppressable passes (they set the consumption flags).
void run_suppression_audit(const SourceTree& tree,
                           std::vector<Finding>& findings);

}  // namespace tmg::tmglint
