// tmglint CLI.
//
//   tmglint --root <repo> [--pass <p>]... [--spec <file>]
//           [--emit-pipeline-spec [--profile <key>]]
//           [--audit | --no-audit]
//
// Passes: determinism, lifetime, layering, pipeline (default: all four
// plus the suppression audit). Exit 0 clean, 1 findings, 2 usage or
// I/O error.
//
// --emit-pipeline-spec prints the extracted chain(s) in the checked-in
// spec format and exits. With --profile <key> only that profile's
// chain is printed; redirect it over
// tools/tmglint/pipeline_spec_<key>.txt after a deliberate wiring
// change. Without --profile every extracted spec is printed, each
// under its own header.
#include <cstdio>
#include <cstring>
#include <exception>
#include <string>

#include "analyzer.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --root <repo> [--pass "
      "determinism|lifetime|layering|pipeline]...\n"
      "          [--spec <file>] [--emit-pipeline-spec [--profile <key>]]\n"
      "          [--audit | --no-audit]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using tmg::tmglint::Pass;
  tmg::tmglint::Options opts;
  opts.root = ".";
  bool emit_spec = false;
  std::string emit_profile;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      opts.root = argv[++i];
    } else if (arg == "--spec" && i + 1 < argc) {
      opts.spec_path = argv[++i];
    } else if (arg == "--profile" && i + 1 < argc) {
      emit_profile = argv[++i];
    } else if (arg == "--pass" && i + 1 < argc) {
      const std::string p = argv[++i];
      if (p == "determinism") {
        opts.passes.insert(Pass::Determinism);
      } else if (p == "lifetime") {
        opts.passes.insert(Pass::Lifetime);
      } else if (p == "layering") {
        opts.passes.insert(Pass::Layering);
      } else if (p == "pipeline") {
        opts.passes.insert(Pass::Pipeline);
      } else {
        std::fprintf(stderr, "tmglint: unknown pass '%s'\n", p.c_str());
        return usage(argv[0]);
      }
    } else if (arg == "--emit-pipeline-spec") {
      emit_spec = true;
    } else if (arg == "--audit") {
      opts.audit_override = 1;
    } else if (arg == "--no-audit") {
      opts.audit_override = 0;
    } else {
      std::fprintf(stderr, "tmglint: unknown argument '%s'\n", arg.c_str());
      return usage(argv[0]);
    }
  }

  if (emit_spec) {
    opts.passes = {Pass::Pipeline};
    opts.skip_spec_diff = true;
    opts.audit_override = 0;
  } else if (!emit_profile.empty()) {
    std::fprintf(stderr,
                 "tmglint: --profile only applies to --emit-pipeline-spec\n");
    return usage(argv[0]);
  }

  try {
    const tmg::tmglint::AnalysisResult result = tmg::tmglint::analyze(opts);
    if (emit_spec) {
      std::string out;
      bool matched = emit_profile.empty();
      for (const auto& ps : result.extracted) {
        if (!emit_profile.empty() && ps.key != emit_profile) continue;
        matched = true;
        out += tmg::tmglint::emit_pipeline_spec(ps.spec, ps.key);
      }
      if (!matched) {
        std::fprintf(stderr, "tmglint: no extracted profile named '%s'\n",
                     emit_profile.c_str());
        return 2;
      }
      std::fwrite(out.data(), 1, out.size(), stdout);
      // Extraction problems (unresolvable registrations) still fail.
      return result.findings.empty() ? 0 : 1;
    }
    const std::string report = tmg::tmglint::render_report(result.findings);
    std::fwrite(report.data(), 1, report.size(), stdout);
    return result.findings.empty() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tmglint: %s\n", e.what());
    return 2;
  }
}
