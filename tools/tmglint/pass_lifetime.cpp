// Posted-callback lifetime analysis.
//
// EventLoop::post_at/post_after are fire-and-forget: the callback runs
// when the simulated clock reaches the deadline, long after the posting
// frame has returned. A lambda that captures stack locals by reference
// — or `this` of an object the loop does not co-own — is therefore a
// use-after-return waiting for the right event ordering, which is
// exactly the kind of stale-state bug the paper's attacks weaponize.
//
// Rule `callback-lifetime` flags an inline lambda argument to
// post_at/post_after when it captures:
//
//   * `[&]` (default reference capture), or
//   * `&ident` / `&ident = expr` (a by-reference capture — captured
//     names are always locals or parameters; members ride in via
//     `this`), or
//   * `this`, when the loop is reached through a non-member receiver
//     chain (`loop.post_after(...)` where `loop` is a borrowed local or
//     parameter): an object posting `this` onto a loop it does not hold
//     as a member has no lifetime tie to that loop's queue. The
//     ubiquitous `loop_.post_after(..., [this]{...})` module idiom —
//     where the object and the loop share a trial's lifetime — passes.
//
// Exemption: a function that *drains* the loop before returning
// (lexically contains a run()/run_until()/run_for() call in its
// outermost body) keeps every local alive for every queued callback;
// the scenario drivers post `[&state]` ticker lambdas and then block in
// run_for(), which is sound and stays quiet.
//
// Genuinely safe sites that the heuristic cannot prove (e.g. a
// reference parameter that aliases a member) take
// `// tmglint: allow(callback-lifetime) <why>`.
#include <string>
#include <vector>

#include "analyzer.hpp"
#include "matcher.hpp"

namespace tmg::tmglint {

namespace {

bool member_anchor(const std::string& anchor) {
  return anchor == "this" || (!anchor.empty() && anchor.back() == '_');
}

bool drains_loop(const std::vector<Token>& t, std::size_t begin,
                 std::size_t end) {
  for (std::size_t i = begin; i + 1 < end; ++i) {
    if (t[i].kind != TokKind::Ident || !is_punct(t[i + 1], "(")) continue;
    if (t[i].text == "run" || t[i].text == "run_until" ||
        t[i].text == "run_for") {
      return true;
    }
  }
  return false;
}

/// Offending captures of one lambda, e.g. {"&", "&host", "this"}.
std::vector<std::string> risky_captures(const std::vector<Token>& t,
                                        std::size_t bracket,
                                        bool anchor_is_member) {
  std::vector<std::string> risky;
  for (const auto& [b, e] : split_args(t, bracket)) {
    if (b >= e) continue;
    if (is_punct(t[b], "&")) {
      if (e - b == 1) {
        risky.push_back("&");  // [&] default capture
      } else if (t[b + 1].kind == TokKind::Ident) {
        risky.push_back("&" + t[b + 1].text);  // &x and &x = expr alike
      }
      continue;
    }
    if (is_ident(t[b], "this") && e - b == 1 && !anchor_is_member) {
      risky.push_back("this");
    }
    // `=`, `*this`, `x`, `x = expr`: by value, safe.
  }
  return risky;
}

}  // namespace

void run_lifetime_pass(const SourceTree& tree,
                       std::vector<Finding>& findings) {
  for (const auto& f : tree.files) {
    const auto& t = f.tokens;
    std::vector<std::pair<std::size_t, std::size_t>> spans;
    bool spans_ready = false;
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].kind != TokKind::Ident ||
          (t[i].text != "post_at" && t[i].text != "post_after")) {
        continue;
      }
      if (!is_punct(t[i + 1], "(")) continue;
      if (i == 0 ||
          (!is_punct(t[i - 1], ".") && !is_punct(t[i - 1], "->"))) {
        continue;  // declaration or definition, not a call
      }
      const std::string anchor = receiver_anchor(t, i);
      const bool anchored_in_member = member_anchor(anchor);
      for (const auto& [b, e] : split_args(t, i + 1)) {
        if (b >= e || !is_punct(t[b], "[")) continue;
        const std::vector<std::string> risky =
            risky_captures(t, b, anchored_in_member);
        if (risky.empty()) continue;
        if (!spans_ready) {
          spans = callable_spans(t);
          spans_ready = true;
        }
        const auto span = enclosing_callable(spans, i);
        if (span && drains_loop(t, span->first, span->second)) continue;
        const int line = t[i].line;
        if (f.suppressions.skip_file) {
          f.suppressions.skip_file_used = true;
          continue;
        }
        if (f.suppressions.allowed("callback-lifetime", line)) continue;
        std::string captures;
        for (const auto& r : risky) {
          if (!captures.empty()) captures += ", ";
          captures += r;
        }
        findings.push_back(Finding{
            f.rel, line, "callback-lifetime",
            "lambda posted to the event loop captures [" + captures +
                "] — stack-scoped state may be gone when the callback "
                "fires (" +
                f.excerpt(line) + ")"});
      }
    }
  }
}

}  // namespace tmg::tmglint
