#include "source.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace tmg::tmglint {

namespace fs = std::filesystem;

bool Suppressions::allowed(const std::string& rule, int line) const {
  for (const auto& a : allows) {
    if (a.line != line && a.line != line - 1) continue;
    for (std::size_t i = 0; i < a.rules.size(); ++i) {
      if (a.rules[i] == rule) {
        a.used[i] = true;
        return true;
      }
    }
  }
  return false;
}

std::string SourceFile::excerpt(int line) const {
  if (line < 1 || static_cast<std::size_t>(line) > lines.size()) return "";
  const std::string& raw = lines[static_cast<std::size_t>(line) - 1];
  const auto b = raw.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  const auto e = raw.find_last_not_of(" \t\r");
  return raw.substr(b, e - b + 1);
}

const SourceFile* SourceTree::sibling(const SourceFile& file) const {
  const auto dot = file.rel.rfind('.');
  if (dot == std::string::npos) return nullptr;
  const std::string ext = file.rel.substr(dot);
  const std::string other =
      file.rel.substr(0, dot) + (ext == ".cpp" ? ".hpp" : ".cpp");
  return find(other);
}

const SourceFile* SourceTree::find(const std::string& rel) const {
  const auto it = std::lower_bound(
      files.begin(), files.end(), rel,
      [](const SourceFile& f, const std::string& r) { return f.rel < r; });
  return it != files.end() && it->rel == rel ? &*it : nullptr;
}

std::string module_of(const std::string& rel) {
  // rel is "src/<dir>/<file>" (or a deeper path; the first component
  // after src/ names the module).
  std::vector<std::string> parts;
  std::stringstream ss{rel};
  std::string part;
  while (std::getline(ss, part, '/')) parts.push_back(part);
  if (parts.size() < 3 || parts[0] != "src") return "";
  const std::string& dir = parts[1];
  if (dir == "check") {
    const std::string& stem = parts.back();
    return stem.rfind("assert.", 0) == 0 ? "check_assert" : "check_invariants";
  }
  return dir;
}

Suppressions parse_suppressions(const std::vector<Comment>& comments) {
  Suppressions out;
  for (const auto& c : comments) {
    std::size_t tag = c.text.find("tmglint:");
    std::size_t after = tag == std::string::npos ? 0 : tag + 8;
    if (tag == std::string::npos) {
      tag = c.text.find("determinism-lint:");
      if (tag == std::string::npos) continue;
      after = tag + 17;
    }
    // Skip whitespace after the tag.
    while (after < c.text.size() &&
           (c.text[after] == ' ' || c.text[after] == '\t')) {
      ++after;
    }
    if (c.text.compare(after, 9, "skip-file") == 0) {
      out.skip_file = true;
      out.skip_file_line = c.line;
      continue;
    }
    if (c.text.compare(after, 6, "allow(") != 0) continue;
    const std::size_t open = after + 6;
    const std::size_t close = c.text.find(')', open);
    if (close == std::string::npos) continue;
    AllowDirective d;
    d.line = c.line;
    std::stringstream rules{c.text.substr(open, close - open)};
    std::string rule;
    while (std::getline(rules, rule, ',')) {
      const auto b = rule.find_first_not_of(" \t");
      const auto e = rule.find_last_not_of(" \t");
      if (b == std::string::npos) continue;
      d.rules.push_back(rule.substr(b, e - b + 1));
    }
    d.used.assign(d.rules.size(), false);
    if (!d.rules.empty()) out.allows.push_back(std::move(d));
  }
  return out;
}

SourceTree load_source_tree(const std::string& root) {
  const fs::path src = fs::path{root} / "src";
  if (!fs::is_directory(src)) {
    throw std::runtime_error("tmglint: no src/ directory under " + root);
  }
  SourceTree tree;
  tree.root = root;
  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".hpp" || ext == ".cpp") paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& p : paths) {
    std::ifstream in{p, std::ios::binary};
    std::ostringstream buf;
    buf << in.rdbuf();
    SourceFile f;
    f.rel = fs::relative(p, fs::path{root}).generic_string();
    f.module = module_of(f.rel);
    const std::string text = buf.str();
    std::stringstream liner{text};
    std::string line;
    while (std::getline(liner, line)) f.lines.push_back(line);
    LexOutput lexed = lex(text);
    f.tokens = std::move(lexed.tokens);
    f.comments = std::move(lexed.comments);
    f.includes = std::move(lexed.includes);
    f.suppressions = parse_suppressions(f.comments);
    tree.files.push_back(std::move(f));
  }
  return tree;
}

}  // namespace tmg::tmglint
