#include "findings.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

namespace tmg::tmglint {

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
}

std::string render_report(const std::vector<Finding>& findings) {
  std::ostringstream out;
  if (findings.empty()) {
    out << "tmglint: clean\n";
    return out.str();
  }
  out << "tmglint: " << findings.size() << " finding(s)\n";
  for (const auto& f : findings) {
    out << "  " << f.file << ":" << f.line << ": " << f.rule << ": "
        << f.message << "\n";
  }
  out << "\nIf an occurrence is genuinely safe, annotate it with\n"
         "// tmglint: allow(<rule>) <reason> — layering, include-cycle,\n"
         "and pipeline-wiring findings are architectural and cannot be\n"
         "suppressed (fix the code or the spec).\n";
  return out.str();
}

}  // namespace tmg::tmglint
