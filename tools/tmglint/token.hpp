// tmglint: token model.
//
// The lexer reduces a C++ translation unit to a flat token stream with
// file:line provenance. Comments, string literals, raw strings, and
// char literals are lexed as single tokens (or recorded out-of-band for
// comments), which is the whole point of the tool: a rule that walks
// tokens can never be fooled by `"std::steady_clock"` inside a log
// message or a banned identifier quoted in a comment — the two failure
// modes the old line-regex linter was known for.
#pragma once

#include <string>
#include <vector>

namespace tmg::tmglint {

enum class TokKind {
  Ident,      // identifiers and keywords
  Number,     // numeric literals (integer/float, any base)
  String,     // string literal; text holds the *contents* (no quotes)
  CharLit,    // character literal
  Punct,      // operators/punctuation; `::` and `->` are single tokens
  Directive,  // the `#` introducing a preprocessor directive
};

struct Token {
  TokKind kind = TokKind::Punct;
  std::string text;
  int line = 0;
};

/// A comment, kept out of the token stream but retained for the
/// suppression grammar (`// tmglint: allow(<rule>) <why>`).
struct Comment {
  int line = 0;  // line the comment starts on
  std::string text;
};

/// A quoted first-party `#include "mod/file.hpp"` directive. Angled
/// system includes are lexed but not recorded: the layering pass only
/// reasons about in-repo edges.
struct IncludeDirective {
  int line = 0;
  std::string target;
};

struct LexOutput {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<IncludeDirective> includes;
};

[[nodiscard]] LexOutput lex(const std::string& text);

}  // namespace tmg::tmglint
