// fixture: upward include — net (layer 1) reaching ctrl (layer 6).
#include "ctrl/brain.hpp"
namespace fx::net {
struct Wire {
  fx::ctrl::Brain* brain = nullptr;
};
}  // namespace fx::net
