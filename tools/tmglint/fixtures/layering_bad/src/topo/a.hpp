// fixture: half of an include cycle within one module.
#include "topo/b.hpp"
namespace fx::topo {
struct A {
  int x = 0;
};
}  // namespace fx::topo
