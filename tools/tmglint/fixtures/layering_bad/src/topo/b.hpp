// fixture: the other half of the cycle.
#include "topo/a.hpp"
namespace fx::topo {
struct B {
  int y = 0;
};
}  // namespace fx::topo
