// fixture: ...but obs including ids back is both an obs-leak rank
// violation and a file-level include cycle. Pins that instrumenting
// the IDS can never quietly become circular.
#include "ids/profile.hpp"
namespace fx::obs {
struct Export {
  int snapshots = 0;
};
}  // namespace fx::obs
