// fixture: obs violation — the floating leaf reaches up into topo.
#include "topo/graph.hpp"
namespace fx::obs {
struct Metrics {
  fx::topo::Graph graph;
};
}  // namespace fx::obs
