// fixture: the legal half of the ids <-> obs cycle — ids may include
// the floating obs leaf...
#include "obs/export.hpp"
namespace fx::ids {
struct Profile {
  int events = 0;
};
}  // namespace fx::ids
