// fixture: a defense-layer peer with no includes of its own.
namespace fx::ids {
struct Detector {
  int alerts = 0;
};
}  // namespace fx::ids
