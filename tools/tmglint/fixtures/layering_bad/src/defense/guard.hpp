// fixture: peer violation — defense and ids share layer 7 and must
// coordinate through the pipeline, not headers.
#include "ids/detector.hpp"
namespace fx::defense {
struct Guard {
  fx::ids::Detector detector;
};
}  // namespace fx::defense
