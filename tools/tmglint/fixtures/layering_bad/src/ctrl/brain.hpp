// fixture: ctrl (layer 6) includes topo (layer 3) and obs (floating):
// both allowed.
#include "obs/metrics.hpp"
#include "topo/graph.hpp"
namespace fx::ctrl {
struct Brain {
  fx::topo::Graph graph;
  fx::obs::Metrics metrics;
};
}  // namespace fx::ctrl
