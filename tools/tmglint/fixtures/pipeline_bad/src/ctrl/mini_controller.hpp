// fixture: a miniature controller whose wiring the pipeline pass must
// reconstruct — priority constants here, listener bodies in the .cpp,
// one name routed through a string constant, one resolved only at
// runtime.
#include <memory>
#include <vector>

namespace fx::ctrl {

inline constexpr int kPriorityCore = 0;
inline constexpr int kPriorityAudit = 500;
inline constexpr int kPriorityDefenseBase = 100;
inline constexpr int kPriorityDefenseStep = 10;
inline constexpr const char* kAuditName = "audit-listener";

class AuditListener;
class AdapterListener;
class ExtraListener;

class MiniController {
 public:
  void wire();
  void add_defense();

 private:
  class CoreListener;
  MessagePipeline pipeline_;
  std::unique_ptr<AuditListener> audit_;
  std::unique_ptr<AdapterListener> adapter_;
  std::unique_ptr<ExtraListener> extra_;
  std::vector<int> mods_;
};

}  // namespace fx::ctrl
