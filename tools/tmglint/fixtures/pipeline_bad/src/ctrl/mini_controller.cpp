// fixture: three wiring defects — a duplicate chain priority, a
// listener class nobody registers, and (via pipeline_spec.txt) a spec
// that drifted from the source.
#include "ctrl/mini_controller.hpp"

namespace fx::ctrl {

class MiniController::CoreListener final : public MessageListener {
 public:
  std::string name() const override { return "core"; }
  std::uint32_t subscriptions() const override {
    return mask_of(MessageType::PacketIn);
  }
};

class AuditListener final : public MessageListener {
 public:
  std::string name() const override { return kAuditName; }
  std::uint32_t subscriptions() const override {
    return mask_of(MessageType::PacketIn) | mask_of(MessageType::FlowStats);
  }
};

class ExtraListener final : public MessageListener {
 public:
  std::string name() const override { return "extra"; }
  std::uint32_t subscriptions() const override {
    return mask_of(MessageType::PacketIn);
  }
};

// Defect: derives MessageListener but is never added to the chain.
class OrphanListener final : public MessageListener {
 public:
  std::string name() const override { return "orphan"; }
  std::uint32_t subscriptions() const override {
    return mask_of(MessageType::PortStats);
  }
};

void MiniController::wire() {
  pipeline_.add_owned(kPriorityCore, std::make_unique<CoreListener>());
  pipeline_.add(kPriorityAudit, *audit_);
  // Defect: same priority as the audit listener — chain order now
  // depends on the name tie-break.
  pipeline_.add(500, *extra_);
}

}  // namespace fx::ctrl
