// fixture: a stale suppression — the code below it was cleaned up long
// ago, so the audit must flag the directive for removal.
namespace fx {

int clean_roll(Rng& rng) {
  // tmglint: allow(libc-rand) obsolete: this used rand() once
  return rng.next() % 6;
}

}  // namespace fx
