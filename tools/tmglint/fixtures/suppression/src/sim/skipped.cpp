// tmglint: skip-file generated table, reviewed by hand
#include <cstdlib>

namespace fx {

int raw_entropy() { return rand(); }

}  // namespace fx
