// fixture: a live suppression — the allow covers a real finding, so the
// audit must stay quiet about it.
#include <cstdlib>

namespace fx {

int seeded_roll() {
  return rand() % 6;  // tmglint: allow(libc-rand) fixture exercises libc
}

}  // namespace fx
