// tmglint: skip-file nothing here needs it any more
namespace fx {

int tidy(int x) { return x * 3; }

}  // namespace fx
