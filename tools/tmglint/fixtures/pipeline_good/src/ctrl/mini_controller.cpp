#include "ctrl/mini_controller.hpp"

namespace fx::ctrl {

class MiniController::CoreListener final : public MessageListener {
 public:
  std::string name() const override { return "core"; }
  std::uint32_t subscriptions() const override {
    return mask_of(MessageType::PacketIn);
  }
};

class AuditListener final : public MessageListener {
 public:
  std::string name() const override { return kAuditName; }
  std::uint32_t subscriptions() const override {
    return mask_of(MessageType::PacketIn) | mask_of(MessageType::FlowStats);
  }
};

class AdapterListener final : public MessageListener {
 public:
  std::string name() const override { return module_.name(); }
  std::uint32_t subscriptions() const override {
    return mask_of(MessageType::PacketIn) | mask_of(MessageType::PortStatus);
  }
};

void MiniController::wire() {
  pipeline_.add_owned(kPriorityCore, std::make_unique<CoreListener>());
  pipeline_.add(kPriorityAudit, *audit_);
}

void MiniController::add_defense() {
  mods_.push_back(1);
  const int priority =
      kPriorityDefenseBase +
      kPriorityDefenseStep * static_cast<int>(mods_.size() - 1);
  pipeline_.add(priority, *adapter_);
}

}  // namespace fx::ctrl
