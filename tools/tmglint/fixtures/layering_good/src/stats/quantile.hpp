// fixture: a stats-layer leaf (rank 1), includable from ids.
namespace fx::stats {
struct Quantile {
  double q = 0.5;
};
}  // namespace fx::stats
