// fixture: the anomaly-IDS edges — ids (layer 7) may include the
// floating obs leaf and the stats layer below it.
#include "obs/metrics.hpp"
#include "stats/quantile.hpp"
namespace fx::ids {
struct Profile {
  fx::obs::Metrics metrics;
  fx::stats::Quantile q;
};
}  // namespace fx::ids
