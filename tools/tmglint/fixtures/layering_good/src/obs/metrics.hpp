// fixture: obs is a floating leaf and may include sim.
#include "sim/clock.hpp"
namespace fx::obs {
struct Metrics {
  fx::sim::Clock clock;
};
}  // namespace fx::obs
