// fixture: leaf module, no first-party includes.
namespace fx::sim {
struct Clock {
  long now = 0;
};
}  // namespace fx::sim
