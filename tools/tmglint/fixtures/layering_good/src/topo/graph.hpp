// fixture: topo (layer 3) includes sim (layer 0): allowed.
#include "sim/clock.hpp"
namespace fx::topo {
struct Graph {
  fx::sim::Clock clock;
};
}  // namespace fx::topo
