// fixture: wall-clock positives — real host-clock reads.
#include <chrono>
#include <ctime>

namespace fx {

long stamp() {
  const auto now = std::chrono::system_clock::now();
  return now.time_since_epoch().count();
}

long epoch() { return static_cast<long>(time(nullptr)); }

}  // namespace fx
