// fixture: wall-clock negatives. The legacy regex linter flagged the
// string literal below; the token engine must not.
namespace fx {

// A comment mentioning std::chrono::steady_clock is documentation.
const char* label() { return "uses system_clock? never"; }

const char* raw() {
  return R"(gettimeofday(&tv, nullptr) inside a raw string)";
}

// `time(x)` with a real argument is someone's own function, not libc.
long sample(long x) { return time_scaled(x); }
long time_scaled(long x) { return x * 2; }

}  // namespace fx
