// fixture: random-device negative — only a std-qualified use counts.
namespace fx {

struct random_device {  // somebody's own type, not std's
  unsigned operator()() { return 1; }
};

unsigned local() {
  random_device rd;
  return rd();
}

}  // namespace fx
