// fixture: random-device positive.
#include <random>

namespace fx {

unsigned host_entropy() {
  std::random_device rd;
  return rd();
}

}  // namespace fx
