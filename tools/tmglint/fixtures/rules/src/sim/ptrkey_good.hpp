// fixture: pointer-key negatives — value keys, and a pointer in the
// mapped position (ordering still follows the key).
#include <cstdint>
#include <map>
#include <set>

namespace fx {

struct Node;
using NodeId = std::uint64_t;

class Owners {
 private:
  std::map<NodeId, Node*> node_of_;
  std::set<NodeId> visited_;
};

}  // namespace fx
