// fixture: libc-rand negatives — member calls and foreign namespaces.
namespace fx {

struct Die;

int roll(Die& d) { return d.random(); }

int foreign() { return mylib::rand(); }

// `random` without a call is a plain identifier, `rand()` in a string
// or comment is prose: rand() stays legal here.
int random_seed = 42;
const char* doc() { return "call rand() and lose reproducibility"; }

}  // namespace fx
