// fixture: threading negative — src/sim/thread_pool.hpp is on the
// allowlist (the one sanctioned worker pool), so real primitives pass.
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

namespace fx::sim {

class ThreadPool {
 private:
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace fx::sim
