// fixture: pointer-key positives — containers ordered on raw pointers.
#include <map>
#include <set>

namespace fx {

struct Node;

class Owners {
 private:
  std::map<Node*, int> owner_of_;
  std::set<const Node*> visited_;
};

}  // namespace fx
