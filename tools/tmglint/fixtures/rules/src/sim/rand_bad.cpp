// fixture: libc-rand positives.
#include <cstdlib>

namespace fx {

int roll() { return rand() % 6; }

void reseed(unsigned s) { std::srand(s); }

double unit() { return drand48(); }

}  // namespace fx
