// fixture: unordered-iter — the member lives here, the iteration in the
// sibling .cpp; the rule must pair the two files.
#include <string>
#include <unordered_map>

namespace fx::net {

class FlowTableBad {
 public:
  void dump() const;

 private:
  std::unordered_map<int, std::string> entries_;
};

}  // namespace fx::net
