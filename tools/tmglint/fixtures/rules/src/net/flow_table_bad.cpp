// fixture: unordered-iter positive — range-for over a hash container
// member declared in the header sibling.
#include "net/flow_table_bad.hpp"

namespace fx::net {

void FlowTableBad::dump() const {
  for (const auto& kv : entries_) {
    use(kv);
  }
}

}  // namespace fx::net
