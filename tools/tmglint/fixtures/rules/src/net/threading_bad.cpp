// fixture: threading positive — a mutex outside the two sanctioned
// concurrency sites.
#include <mutex>

namespace fx::net {

std::mutex table_mu;

int guarded(int x) {
  std::lock_guard<std::mutex> lk(table_mu);
  return x + 1;
}

}  // namespace fx::net
