// fixture: unordered-iter negative — same shape, but the iteration in
// the .cpp goes through a sorted copy.
#include <string>
#include <unordered_map>

namespace fx::net {

class FlowTableGood {
 public:
  void dump() const;

 private:
  std::unordered_map<int, std::string> entries_;
};

}  // namespace fx::net
