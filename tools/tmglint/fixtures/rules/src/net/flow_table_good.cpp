// fixture: unordered-iter negative — iterate a sorted snapshot, not the
// hash container itself.
#include "net/flow_table_good.hpp"

#include <map>

namespace fx::net {

void FlowTableGood::dump() const {
  const std::map<int, std::string> sorted(entries_.begin(), entries_.end());
  for (const auto& kv : sorted) {
    use(kv);
  }
}

}  // namespace fx::net
