// fixture: cache-coherence positive — a cache over topology state with
// no mutation-generation tie: stale entries survive graph churn.
namespace fx::topo {

class StaleRouteCache {
 public:
  int lookup(const TopologyGraph& g, int src, int dst);

 private:
  int hit_count_ = 0;
};

}  // namespace fx::topo
