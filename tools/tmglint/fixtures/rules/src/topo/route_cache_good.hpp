// fixture: cache-coherence negative — the cache checks the graph's
// mutation epoch before every read, so entries can never go stale.
namespace fx::topo {

class EpochRouteCache {
 public:
  int lookup(const TopologyGraph& g, int src, int dst);

 private:
  unsigned long epoch_seen_ = 0;
  int hit_count_ = 0;
};

}  // namespace fx::topo
