// fixture: shared-rng positives — a process-global Rng and an Rng held
// by reference member: both share draw order across trials.
namespace fx::scenario {

static sim::Rng g_rng{42};

class LeakyHarness {
 private:
  Rng& rng_;
  Rng* fallback_ = nullptr;
};

}  // namespace fx::scenario
