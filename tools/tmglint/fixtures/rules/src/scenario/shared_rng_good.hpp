// fixture: shared-rng negatives — each trial owns its Rng; borrowing
// one through a parameter stays inside a single trial's call stack.
namespace fx::scenario {

class OwnedHarness {
 public:
  explicit OwnedHarness(sim::Rng rng) : rng_{rng} {}
  int draw(sim::Rng& scratch) { return scratch.next() + rng_.next(); }

 private:
  sim::Rng rng_;
};

}  // namespace fx::scenario
