// fixture: inside src/obs the wall-clock rule is hard — the allow
// directive below must NOT suppress the finding.
#include <chrono>

namespace fx::obs {

long export_stamp() {
  // tmglint: allow(wall-clock) tempting, but exports diff byte-for-byte
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fx::obs
