// fixture: registry-bypass positive — a ctrl-layer module reaching a
// peer through the Controller accessor instead of the ServiceRegistry.
namespace fx::ctrl {

void Auditor::sweep() {
  for (const auto& rec : snapshot(ctrl_.host_tracker().hosts())) {
    inspect(rec);
  }
  ctrl_.routing().invalidate();
}

}  // namespace fx::ctrl
