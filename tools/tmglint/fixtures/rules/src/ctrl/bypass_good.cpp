// fixture: registry-bypass negative — the same lookup routed through
// the ServiceRegistry, which respects swap/disable semantics.
namespace fx::ctrl {

void Auditor::sweep() {
  auto* tracker = ctrl_.services().find<HostTrackingService>("host-tracking");
  if (tracker != nullptr) {
    inspect_all(*tracker);
  }
}

}  // namespace fx::ctrl
