// fixture: callback-lifetime positives — posted lambdas that outlive
// the stack frames they capture, with no drain before return.
namespace fx::of {

void arm_counter(EventLoop& loop) {
  int counter = 0;
  loop.post_after(Duration{5}, [&counter] { ++counter; });
}

void Chatty::arm(EventLoop& loop) {
  // `this` through a borrowed loop: nothing ties the object's lifetime
  // to the callback's.
  loop.post_at(Time{9}, [this] { tick(); });
}

}  // namespace fx::of
