// fixture: callback-lifetime negatives.
namespace fx::of {

// A driver that drains the loop before returning keeps every local
// alive for every queued callback.
int pump(EventLoop& loop) {
  int beats = 0;
  loop.post_after(Duration{1}, [&beats] { ++beats; });
  loop.run_for(Duration{10});
  return beats;
}

struct Module {
  // The module idiom: the object and its member loop share a trial's
  // lifetime, so `this` is safe.
  void arm() {
    loop_.post_after(Duration{2}, [this] { tick(); });
  }
  // By-value captures carry their own copies.
  void snapshot(Frame frame) {
    loop_.post_after(Duration{3}, [frame] { emit(frame); });
  }
  EventLoop& loop_;
};

}  // namespace fx::of
