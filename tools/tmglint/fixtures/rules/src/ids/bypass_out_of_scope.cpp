// fixture: registry-bypass negative — the rule is scoped to src/ctrl +
// src/defense; an out-of-band observer in src/ids may use the accessor.
namespace fx::ids {

void Sensor::observe() { record(ctrl_.host_tracker().count()); }

}  // namespace fx::ids
