// Pipeline-wiring extraction.
//
// Statically reconstructs the controller's MessagePipeline chain from
// src/ctrl + src/defense and diffs it against the checked-in spec
// (tools/tmglint/pipeline_spec.txt). What the regex linter could never
// do, this pass does across files:
//
//   * fold `kPriority*` integer constants (and the one locally-computed
//     defense-band priority `kPriorityDefenseBase + kPriorityDefenseStep
//     * N`) into concrete chain positions;
//   * resolve each registered listener expression to its class —
//     `std::make_unique<CoreListener>(...)` directly, `*links_` through
//     the `std::unique_ptr<LinkDiscoveryService> links_;` member
//     declaration — then to the string its `name()` returns, chasing
//     `return kLinkDiscoveryServiceName;` through the constant table;
//   * pull each listener's subscription mask out of its
//     `subscriptions()` body;
//   * flag duplicate chain priorities and MessageListener subclasses
//     that are never registered at all.
//
// Findings are architectural and not suppressible: fix the wiring, or
// regenerate the spec if the change is deliberate
// (`tmglint --emit-pipeline-spec`).
#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyzer.hpp"
#include "matcher.hpp"

namespace tmg::tmglint {

namespace {

constexpr const char* kSpecRel = "tools/tmglint/pipeline_spec.txt";

struct Registration {
  std::string file;
  int line = 0;
  std::string class_name;
  bool is_band = false;
  long priority = 0;  // numeric entries
  long base = 0;      // band entries
  long step = 0;
};

struct Extraction {
  std::map<std::string, long> int_consts;
  std::map<std::string, std::string> string_consts;
  std::vector<ClassInfo> classes;
  std::map<std::string, std::string> members;  // member_ -> Type
  std::vector<Registration> regs;
};

const ClassInfo* find_class(const Extraction& ex, const std::string& name) {
  for (const auto& c : ex.classes) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

bool derives_message_listener(const Extraction& ex, const ClassInfo& c,
                              int depth = 0) {
  if (depth > 8) return false;
  for (const auto& base : c.bases) {
    if (base == "MessageListener") return true;
    const ClassInfo* bc = find_class(ex, base);
    if (bc != nullptr && derives_message_listener(ex, *bc, depth + 1)) {
      return true;
    }
  }
  return false;
}

/// Resolve a priority argument [b, e): a literal, a kConstant, a local
/// variable assigned from a band expression, or a band expression
/// inline. Returns false when unresolvable.
bool resolve_priority(const Extraction& ex, const std::vector<Token>& t,
                      std::size_t b, std::size_t e, std::size_t call_idx,
                      Registration& reg) {
  const auto band_from_expr = [&](std::size_t xb, std::size_t xe) -> bool {
    // kBase + kStep * <anything>
    std::vector<std::string> idents;
    bool plus = false;
    bool times = false;
    for (std::size_t k = xb; k < xe; ++k) {
      if (t[k].kind == TokKind::Ident &&
          ex.int_consts.count(t[k].text) != 0) {
        idents.push_back(t[k].text);
      }
      if (is_punct(t[k], "+")) plus = true;
      if (is_punct(t[k], "*")) times = true;
    }
    if (idents.size() != 2 || !plus || !times) return false;
    reg.is_band = true;
    reg.base = ex.int_consts.at(idents[0]);
    reg.step = ex.int_consts.at(idents[1]);
    return true;
  };

  if (e == b + 1 && t[b].kind == TokKind::Number) {
    reg.priority = std::stol(t[b].text, nullptr, 0);
    return true;
  }
  if (e == b + 1 && t[b].kind == TokKind::Ident) {
    const auto it = ex.int_consts.find(t[b].text);
    if (it != ex.int_consts.end()) {
      reg.priority = it->second;
      return true;
    }
    // A local variable: look backwards in the enclosing region for
    // `<name> = <expr> ;` and try the band shape on the expression.
    const std::string& var = t[b].text;
    for (std::size_t k = call_idx; k-- > 0;) {
      if (call_idx - k > 600) break;  // same function, not same file
      if (!is_ident(t[k], var.c_str()) || k + 1 >= t.size() ||
          !is_punct(t[k + 1], "=")) {
        continue;
      }
      std::size_t end = k + 2;
      while (end < t.size() && !is_punct(t[end], ";")) ++end;
      if (band_from_expr(k + 2, end)) return true;
    }
    return false;
  }
  return band_from_expr(b, e);
}

/// Resolve a listener argument [b, e) to a class name:
/// `std::make_unique<T>(...)` or `*member_`.
std::string resolve_listener_class(const Extraction& ex,
                                   const std::vector<Token>& t, std::size_t b,
                                   std::size_t e) {
  for (std::size_t k = b; k + 2 < e; ++k) {
    if (is_ident(t[k], "make_unique") && is_punct(t[k + 1], "<")) {
      const std::size_t close = match_angle(t, k + 1);
      if (close >= t.size()) return "";
      std::string last;
      for (std::size_t m = k + 2; m < close; ++m) {
        if (t[m].kind == TokKind::Ident) last = t[m].text;
      }
      return last;
    }
  }
  if (e - b == 2 && is_punct(t[b], "*") && t[b + 1].kind == TokKind::Ident) {
    const auto it = ex.members.find(t[b + 1].text);
    if (it != ex.members.end()) return it->second;
  }
  if (e - b == 1 && t[b].kind == TokKind::Ident) {
    const auto it = ex.members.find(t[b].text);
    if (it != ex.members.end()) return it->second;
  }
  return "";
}

/// The listener name a class reports, chased through the constant
/// table; "<dynamic>" when name() returns a runtime value.
std::string resolve_name(const Extraction& ex, const ClassInfo& c) {
  if (!c.name_literal.empty()) return c.name_literal;
  if (!c.name_constant.empty()) {
    const auto it = ex.string_consts.find(c.name_constant);
    if (it != ex.string_consts.end()) return it->second;
  }
  return "<dynamic>";
}

}  // namespace

PipelineSpec run_pipeline_pass(const SourceTree& tree,
                               const std::string& spec_path,
                               bool skip_spec_diff,
                               std::vector<Finding>& findings) {
  // Concatenate the controller-layer token streams so cross-file
  // declarations (class in .hpp, name() in .cpp, constants in a third
  // header) resolve in one harvest. A `;` separator keeps an unbalanced
  // file from bleeding into the next.
  Extraction ex;
  std::vector<Token> all;
  std::vector<const SourceFile*> scanned;
  for (const auto& f : tree.files) {
    if (!f.in_module("ctrl") && !f.in_module("defense")) continue;
    scanned.push_back(&f);
    all.insert(all.end(), f.tokens.begin(), f.tokens.end());
    all.push_back(Token{TokKind::Punct, ";", 0});
  }
  ex.int_consts = harvest_int_constants(all);
  ex.string_consts = harvest_string_constants(all);
  ex.classes = harvest_classes(all);
  ex.members = harvest_unique_ptr_members(all);

  // Registration sites, located per file for accurate line numbers.
  for (const SourceFile* fp : scanned) {
    const auto& t = fp->tokens;
    for (std::size_t i = 0; i + 3 < t.size(); ++i) {
      if (!is_ident(t[i], "pipeline_") || !is_punct(t[i + 1], ".")) continue;
      if (!is_ident(t[i + 2], "add") && !is_ident(t[i + 2], "add_owned")) {
        continue;
      }
      if (!is_punct(t[i + 3], "(")) continue;
      const auto args = split_args(t, i + 3);
      Registration reg;
      reg.file = fp->rel;
      reg.line = t[i].line;
      if (args.size() != 2) {
        findings.push_back(Finding{fp->rel, reg.line, "pipeline-wiring",
                                   "cannot parse registration arguments: " +
                                       fp->excerpt(reg.line)});
        continue;
      }
      if (!resolve_priority(ex, t, args[0].first, args[0].second, i, reg)) {
        findings.push_back(Finding{
            fp->rel, reg.line, "pipeline-wiring",
            "cannot statically resolve the registration priority: " +
                fp->excerpt(reg.line)});
        continue;
      }
      reg.class_name =
          resolve_listener_class(ex, t, args[1].first, args[1].second);
      if (reg.class_name.empty() ||
          find_class(ex, reg.class_name) == nullptr) {
        findings.push_back(Finding{
            fp->rel, reg.line, "pipeline-wiring",
            "cannot resolve the registered listener to a class: " +
                fp->excerpt(reg.line)});
        continue;
      }
      ex.regs.push_back(std::move(reg));
    }
  }

  // Duplicate fixed priorities: the chain tie-breaks on name, so two
  // listeners at one priority make dispatch order depend on naming —
  // always a wiring accident here.
  std::map<long, const Registration*> by_priority;
  for (const auto& r : ex.regs) {
    if (r.is_band) continue;
    const auto [it, fresh] = by_priority.emplace(r.priority, &r);
    if (!fresh) {
      findings.push_back(Finding{
          r.file, r.line, "pipeline-wiring",
          "duplicate chain priority " + std::to_string(r.priority) +
              " (also registered at " + it->second->file + ":" +
              std::to_string(it->second->line) + ")"});
    }
  }

  // Every concrete MessageListener subclass in the controller layer
  // must be registered somewhere; a listener class nobody adds to the
  // chain is dead wiring (or a forgotten registration).
  std::set<std::string> registered;
  for (const auto& r : ex.regs) registered.insert(r.class_name);
  for (const auto& c : ex.classes) {
    if (c.name == "MessageListener" || !derives_message_listener(ex, c)) {
      continue;
    }
    if (registered.count(c.name) == 0) {
      findings.push_back(Finding{
          kSpecRel, 0, "pipeline-wiring",
          "listener class " + c.name +
              " derives MessageListener but is never registered with "
              "the pipeline"});
    }
  }

  // Assemble the extracted spec in dispatch order.
  PipelineSpec extracted;
  for (const auto& r : ex.regs) {
    const ClassInfo* c = find_class(ex, r.class_name);
    SpecEntry e;
    e.priority = r.is_band ? std::to_string(r.base) + "+" +
                                 std::to_string(r.step) + "N"
                           : std::to_string(r.priority);
    e.name = resolve_name(ex, *c);
    e.subs.assign(c->subscriptions.begin(), c->subscriptions.end());
    extracted.entries.push_back(std::move(e));
  }
  sort_spec_entries(extracted.entries);

  if (!skip_spec_diff) {
    std::string error;
    const auto spec = parse_pipeline_spec(spec_path, &error);
    if (!spec) {
      findings.push_back(Finding{kSpecRel, 0, "pipeline-wiring", error});
      return extracted;
    }
    const std::size_t n =
        std::max(spec->entries.size(), extracted.entries.size());
    for (std::size_t i = 0; i < n; ++i) {
      const bool have_spec = i < spec->entries.size();
      const bool have_src = i < extracted.entries.size();
      if (have_spec && have_src &&
          spec->entries[i] == extracted.entries[i]) {
        continue;
      }
      findings.push_back(Finding{
          kSpecRel, static_cast<int>(i + 1), "pipeline-wiring",
          "chain[" + std::to_string(i) + "] spec " +
              (have_spec ? "`" + to_line(spec->entries[i]) + "`"
                         : "(missing)") +
              " != source " +
              (have_src ? "`" + to_line(extracted.entries[i]) + "`"
                        : "(missing)") +
              " — fix the wiring or regenerate with --emit-pipeline-spec"});
    }
  }
  return extracted;
}

}  // namespace tmg::tmglint
