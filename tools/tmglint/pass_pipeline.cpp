// Pipeline-wiring extraction.
//
// Statically reconstructs the controller's MessagePipeline chain from
// src/ctrl + src/defense and diffs it against the checked-in specs
// (tools/tmglint/pipeline_spec_<profile>.txt). What the regex linter
// could never do, this pass does across files:
//
//   * fold the PipelineLayout slot table into concrete chain positions:
//     struct defaults (`int verdict_gate = 900;`) overlaid with each
//     `<key>_profile()` body's `p.layout.<slot> = <value>;` overrides,
//     plus legacy `kPriority*` constants and the locally-computed
//     defense-band priority `layout.defense_base + layout.defense_step
//     * N`;
//   * resolve each registered listener expression to its class —
//     `std::make_unique<CoreListener>(...)` directly, `*links_` through
//     the `std::unique_ptr<LinkDiscoveryService> links_;` member
//     declaration — then to the string its `name()` returns, chasing
//     `return kLinkDiscoveryServiceName;` through the constant table;
//   * pull each listener's subscription mask out of its
//     `subscriptions()` body, falling back to the profile's
//     defense_subscriptions mask for the defense-band adapter (whose
//     mask is a constructor argument, not a literal);
//   * instantiate the chain once per profile, dropping negative slots
//     (OpenDaylight compiles the verdict gate out entirely);
//   * flag duplicate chain priorities (per profile) and
//     MessageListener subclasses that are never registered at all.
//
// Trees with no `<key>_profile()` functions — the test fixtures — fall
// back to legacy single-spec mode: one keyless spec diffed against
// `spec_path` itself.
//
// Findings are architectural and not suppressible: fix the wiring, or
// regenerate the specs if the change is deliberate
// (`tmglint --emit-pipeline-spec --profile <key>`).
#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "analyzer.hpp"
#include "matcher.hpp"

namespace tmg::tmglint {

namespace {

constexpr const char* kSpecRel = "tools/tmglint/pipeline_spec.txt";

struct Registration {
  std::string file;
  int line = 0;
  std::string class_name;
  bool is_band = false;
  long priority = 0;       // numeric entries
  long base = 0;           // band entries (numeric constants)
  long step = 0;
  std::string field;       // fixed slot taken from `layout.<field>`
  std::string base_field;  // band base/step taken from `layout.<field>`
  std::string step_field;
};

/// One harvested `<key>_profile()` function: which layout slots it
/// overrides and (if it reassigns defense_subscriptions) which
/// MessageType identifiers the new mask names.
struct ProfileInfo {
  std::string key;  // "floodlight" from floodlight_profile()
  std::map<std::string, long> layout_overrides;
  std::set<std::string> subs_override;  // empty = keep the default
};

struct Extraction {
  std::map<std::string, long> int_consts;
  std::map<std::string, std::string> string_consts;
  std::vector<ClassInfo> classes;
  std::map<std::string, std::string> members;  // member_ -> Type
  std::vector<Registration> regs;
  std::map<std::string, long> layout_defaults;  // PipelineLayout fields
  std::vector<ProfileInfo> profiles;            // definition order
  std::set<std::string> default_subs;  // ControllerProfile default mask
};

const ClassInfo* find_class(const Extraction& ex, const std::string& name) {
  for (const auto& c : ex.classes) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

bool derives_message_listener(const Extraction& ex, const ClassInfo& c,
                              int depth = 0) {
  if (depth > 8) return false;
  for (const auto& base : c.bases) {
    if (base == "MessageListener") return true;
    const ClassInfo* bc = find_class(ex, base);
    if (bc != nullptr && derives_message_listener(ex, *bc, depth + 1)) {
      return true;
    }
  }
  return false;
}

/// Find `struct <name> {` and return the [body-open, body-close] span,
/// or nullopt when the struct is not declared in this stream.
std::optional<std::pair<std::size_t, std::size_t>> struct_body(
    const std::vector<Token>& t, const char* name) {
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!is_ident(t[i], "struct") || !is_ident(t[i + 1], name) ||
        !is_punct(t[i + 2], "{")) {
      continue;
    }
    const std::size_t close = match_balanced(t, i + 2);
    if (close >= t.size()) return std::nullopt;
    return std::make_pair(i + 2, close);
  }
  return std::nullopt;
}

/// `int <name> = [-]<num>;` declarations inside `struct PipelineLayout`:
/// the slot table's defaults.
std::map<std::string, long> harvest_layout_defaults(
    const std::vector<Token>& t) {
  std::map<std::string, long> out;
  const auto body = struct_body(t, "PipelineLayout");
  if (!body) return out;
  for (std::size_t k = body->first + 1; k + 3 < body->second; ++k) {
    if (!is_ident(t[k], "int") || t[k + 1].kind != TokKind::Ident ||
        !is_punct(t[k + 2], "=")) {
      continue;
    }
    long sign = 1;
    std::size_t v = k + 3;
    if (is_punct(t[v], "-")) {
      sign = -1;
      ++v;
    }
    if (v >= body->second || t[v].kind != TokKind::Number ||
        v + 1 >= body->second || !is_punct(t[v + 1], ";")) {
      continue;
    }
    out[t[k + 1].text] = sign * std::stol(t[v].text, nullptr, 0);
  }
  return out;
}

/// The MessageType identifiers named by a `defense_subscriptions = ...;`
/// initializer/assignment starting at the `=` token.
std::set<std::string> subs_idents(const std::vector<Token>& t,
                                  std::size_t eq, std::size_t limit) {
  std::set<std::string> out;
  for (std::size_t k = eq + 1; k < limit && !is_punct(t[k], ";"); ++k) {
    if (t[k].kind == TokKind::Ident && k >= 2 && is_punct(t[k - 1], "::") &&
        is_ident(t[k - 2], "MessageType")) {
      out.insert(t[k].text);
    }
  }
  return out;
}

/// The default defense mask from `struct ControllerProfile`'s
/// `defense_subscriptions = MessageType::A | ...;` member initializer.
std::set<std::string> harvest_default_subscriptions(
    const std::vector<Token>& t) {
  const auto body = struct_body(t, "ControllerProfile");
  if (!body) return {};
  for (std::size_t k = body->first + 1; k + 1 < body->second; ++k) {
    if (is_ident(t[k], "defense_subscriptions") && is_punct(t[k + 1], "=")) {
      return subs_idents(t, k + 1, body->second);
    }
  }
  return {};
}

/// `ControllerProfile <key>_profile() { ... }` definitions: each body's
/// `layout.<slot> = [-]<num>;` and `defense_subscriptions = ...;`
/// statements become that profile's overrides.
std::vector<ProfileInfo> harvest_profiles(const std::vector<Token>& t) {
  std::vector<ProfileInfo> out;
  constexpr const char* kSuffix = "_profile";
  for (std::size_t i = 0; i + 4 < t.size(); ++i) {
    if (!is_ident(t[i], "ControllerProfile") ||
        t[i + 1].kind != TokKind::Ident || !is_punct(t[i + 2], "(") ||
        !is_punct(t[i + 3], ")") || !is_punct(t[i + 4], "{")) {
      continue;
    }
    const std::string& fn = t[i + 1].text;
    if (fn.size() <= std::string(kSuffix).size() ||
        fn.compare(fn.size() - 8, 8, kSuffix) != 0) {
      continue;
    }
    const std::size_t close = match_balanced(t, i + 4);
    if (close >= t.size()) continue;
    ProfileInfo info;
    info.key = fn.substr(0, fn.size() - 8);
    for (std::size_t k = i + 5; k < close; ++k) {
      if (is_ident(t[k], "layout") && k + 4 < close &&
          is_punct(t[k + 1], ".") && t[k + 2].kind == TokKind::Ident &&
          is_punct(t[k + 3], "=")) {
        long sign = 1;
        std::size_t v = k + 4;
        if (is_punct(t[v], "-") && v + 1 < close) {
          sign = -1;
          ++v;
        }
        if (t[v].kind == TokKind::Number) {
          info.layout_overrides[t[k + 2].text] =
              sign * std::stol(t[v].text, nullptr, 0);
        }
      }
      if (is_ident(t[k], "defense_subscriptions") && k + 1 < close &&
          is_punct(t[k + 1], "=")) {
        info.subs_override = subs_idents(t, k + 1, close);
      }
    }
    out.push_back(std::move(info));
  }
  return out;
}

/// Resolve a priority argument [b, e): a literal, a kConstant, a
/// `layout.<field>` slot reference, a local variable assigned from a
/// band expression, or a band expression inline. Returns false when
/// unresolvable.
bool resolve_priority(const Extraction& ex, const std::vector<Token>& t,
                      std::size_t b, std::size_t e, std::size_t call_idx,
                      Registration& reg) {
  const auto band_from_expr = [&](std::size_t xb, std::size_t xe) -> bool {
    // kBase + kStep * <anything>, or the layout form
    // layout.defense_base + layout.defense_step * <anything>.
    std::vector<std::string> idents;
    std::vector<std::string> fields;
    bool plus = false;
    bool times = false;
    for (std::size_t k = xb; k < xe; ++k) {
      if (is_ident(t[k], "layout") && k + 2 < xe && is_punct(t[k + 1], ".") &&
          t[k + 2].kind == TokKind::Ident) {
        fields.push_back(t[k + 2].text);
        k += 2;
        continue;
      }
      if (t[k].kind == TokKind::Ident &&
          ex.int_consts.count(t[k].text) != 0) {
        idents.push_back(t[k].text);
      }
      if (is_punct(t[k], "+")) plus = true;
      if (is_punct(t[k], "*")) times = true;
    }
    if (!plus || !times) return false;
    if (fields.size() == 2 && idents.empty()) {
      reg.is_band = true;
      reg.base_field = fields[0];
      reg.step_field = fields[1];
      return true;
    }
    if (idents.size() == 2 && fields.empty()) {
      reg.is_band = true;
      reg.base = ex.int_consts.at(idents[0]);
      reg.step = ex.int_consts.at(idents[1]);
      return true;
    }
    return false;
  };

  if (e == b + 1 && t[b].kind == TokKind::Number) {
    reg.priority = std::stol(t[b].text, nullptr, 0);
    return true;
  }
  // `layout.<field>`: a symbolic slot, resolved per profile.
  if (e == b + 3 && is_ident(t[b], "layout") && is_punct(t[b + 1], ".") &&
      t[b + 2].kind == TokKind::Ident) {
    reg.field = t[b + 2].text;
    return true;
  }
  if (e == b + 1 && t[b].kind == TokKind::Ident) {
    const auto it = ex.int_consts.find(t[b].text);
    if (it != ex.int_consts.end()) {
      reg.priority = it->second;
      return true;
    }
    // A local variable: look backwards in the enclosing region for
    // `<name> = <expr> ;` and try the band shape on the expression.
    const std::string& var = t[b].text;
    for (std::size_t k = call_idx; k-- > 0;) {
      if (call_idx - k > 600) break;  // same function, not same file
      if (!is_ident(t[k], var.c_str()) || k + 1 >= t.size() ||
          !is_punct(t[k + 1], "=")) {
        continue;
      }
      std::size_t end = k + 2;
      while (end < t.size() && !is_punct(t[end], ";")) ++end;
      if (band_from_expr(k + 2, end)) return true;
    }
    return false;
  }
  return band_from_expr(b, e);
}

/// Resolve a listener argument [b, e) to a class name:
/// `std::make_unique<T>(...)` or `*member_`.
std::string resolve_listener_class(const Extraction& ex,
                                   const std::vector<Token>& t, std::size_t b,
                                   std::size_t e) {
  for (std::size_t k = b; k + 2 < e; ++k) {
    if (is_ident(t[k], "make_unique") && is_punct(t[k + 1], "<")) {
      const std::size_t close = match_angle(t, k + 1);
      if (close >= t.size()) return "";
      std::string last;
      for (std::size_t m = k + 2; m < close; ++m) {
        if (t[m].kind == TokKind::Ident) last = t[m].text;
      }
      return last;
    }
  }
  if (e - b == 2 && is_punct(t[b], "*") && t[b + 1].kind == TokKind::Ident) {
    const auto it = ex.members.find(t[b + 1].text);
    if (it != ex.members.end()) return it->second;
  }
  if (e - b == 1 && t[b].kind == TokKind::Ident) {
    const auto it = ex.members.find(t[b].text);
    if (it != ex.members.end()) return it->second;
  }
  return "";
}

/// The listener name a class reports, chased through the constant
/// table; "<dynamic>" when name() returns a runtime value.
std::string resolve_name(const Extraction& ex, const ClassInfo& c) {
  if (!c.name_literal.empty()) return c.name_literal;
  if (!c.name_constant.empty()) {
    const auto it = ex.string_consts.find(c.name_constant);
    if (it != ex.string_consts.end()) return it->second;
  }
  return "<dynamic>";
}

/// A registration's resolved slot under one profile's layout, or
/// nullopt when it references a slot the layout never declares.
std::optional<long> resolve_slot(const Extraction& ex,
                                 const ProfileInfo& profile,
                                 const std::string& field) {
  const auto ov = profile.layout_overrides.find(field);
  if (ov != profile.layout_overrides.end()) return ov->second;
  const auto def = ex.layout_defaults.find(field);
  if (def != ex.layout_defaults.end()) return def->second;
  return std::nullopt;
}

/// Instantiate the registration list under one profile's layout:
/// resolve symbolic slots, drop negative (compiled-out) ones, run the
/// per-profile duplicate check, and assemble the sorted spec.
PipelineSpec instantiate_profile(const Extraction& ex,
                                 const ProfileInfo& profile,
                                 std::vector<Finding>& findings) {
  const std::string tag =
      profile.key.empty() ? std::string{} : " [profile " + profile.key + "]";
  struct Resolved {
    const Registration* reg;
    bool is_band = false;
    long priority = 0;
    long base = 0;
    long step = 0;
  };
  std::vector<Resolved> resolved;
  for (const auto& r : ex.regs) {
    Resolved rr;
    rr.reg = &r;
    rr.is_band = r.is_band;
    const auto slot_or_flag =
        [&](const std::string& field, long fallback) -> std::optional<long> {
      if (field.empty()) return fallback;
      const auto slot = resolve_slot(ex, profile, field);
      if (!slot) {
        findings.push_back(Finding{
            r.file, r.line, "pipeline-wiring",
            "layout." + field + " has no PipelineLayout default or " +
                (profile.key.empty() ? std::string("profile")
                                     : profile.key + "_profile()") +
                " override"});
      }
      return slot;
    };
    if (r.is_band) {
      const auto base = slot_or_flag(r.base_field, r.base);
      const auto step = slot_or_flag(r.step_field, r.step);
      if (!base || !step) continue;
      rr.base = *base;
      rr.step = *step;
      if (rr.base < 0) continue;  // band compiled out under this profile
    } else {
      const auto slot = slot_or_flag(r.field, r.priority);
      if (!slot) continue;
      rr.priority = *slot;
      if (rr.priority < 0) continue;  // slot compiled out
    }
    resolved.push_back(rr);
  }

  // Duplicate fixed priorities: the chain tie-breaks on name, so two
  // listeners at one priority make dispatch order depend on naming —
  // always a wiring accident here.
  std::map<long, const Registration*> by_priority;
  for (const auto& rr : resolved) {
    if (rr.is_band) continue;
    const auto [it, fresh] = by_priority.emplace(rr.priority, rr.reg);
    if (!fresh) {
      findings.push_back(Finding{
          rr.reg->file, rr.reg->line, "pipeline-wiring",
          "duplicate chain priority " + std::to_string(rr.priority) + tag +
              " (also registered at " + it->second->file + ":" +
              std::to_string(it->second->line) + ")"});
    }
  }

  PipelineSpec spec;
  for (const auto& rr : resolved) {
    const ClassInfo* c = find_class(ex, rr.reg->class_name);
    SpecEntry e;
    e.priority = rr.is_band ? std::to_string(rr.base) + "+" +
                                  std::to_string(rr.step) + "N"
                            : std::to_string(rr.priority);
    e.name = resolve_name(ex, *c);
    e.subs.assign(c->subscriptions.begin(), c->subscriptions.end());
    if (rr.is_band && e.subs.empty()) {
      // The defense-band adapter's mask is a constructor argument (the
      // profile's defense_subscriptions), not a literal in its
      // subscriptions() body — substitute the profile mask.
      const auto& subs = profile.subs_override.empty()
                             ? ex.default_subs
                             : profile.subs_override;
      e.subs.assign(subs.begin(), subs.end());
    }
    spec.entries.push_back(std::move(e));
  }
  sort_spec_entries(spec.entries);
  return spec;
}

/// tools/tmglint/pipeline_spec_<key>.txt next to the legacy spec path.
std::string profile_spec_path(const std::string& spec_path,
                              const std::string& key) {
  const auto slash = spec_path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "" : spec_path.substr(0, slash + 1);
  return dir + "pipeline_spec_" + key + ".txt";
}

void diff_against_spec(const ProfileSpec& ps, const std::string& path,
                       const std::string& rel,
                       std::vector<Finding>& findings) {
  std::string error;
  const auto spec = parse_pipeline_spec(path, &error);
  if (!spec) {
    findings.push_back(Finding{rel, 0, "pipeline-wiring", error});
    return;
  }
  const std::string regen =
      ps.key.empty() ? std::string("--emit-pipeline-spec")
                     : "--emit-pipeline-spec --profile " + ps.key;
  const std::size_t n =
      std::max(spec->entries.size(), ps.spec.entries.size());
  for (std::size_t i = 0; i < n; ++i) {
    const bool have_spec = i < spec->entries.size();
    const bool have_src = i < ps.spec.entries.size();
    if (have_spec && have_src &&
        spec->entries[i] == ps.spec.entries[i]) {
      continue;
    }
    findings.push_back(Finding{
        rel, static_cast<int>(i + 1), "pipeline-wiring",
        "chain[" + std::to_string(i) + "] spec " +
            (have_spec ? "`" + to_line(spec->entries[i]) + "`"
                       : "(missing)") +
            " != source " +
            (have_src ? "`" + to_line(ps.spec.entries[i]) + "`"
                      : "(missing)") +
            " — fix the wiring or regenerate with " + regen});
  }
}

}  // namespace

std::vector<ProfileSpec> run_pipeline_pass(const SourceTree& tree,
                                           const std::string& spec_path,
                                           bool skip_spec_diff,
                                           std::vector<Finding>& findings) {
  // Concatenate the controller-layer token streams so cross-file
  // declarations (class in .hpp, name() in .cpp, constants in a third
  // header) resolve in one harvest. A `;` separator keeps an unbalanced
  // file from bleeding into the next.
  Extraction ex;
  std::vector<Token> all;
  std::vector<const SourceFile*> scanned;
  for (const auto& f : tree.files) {
    if (!f.in_module("ctrl") && !f.in_module("defense")) continue;
    scanned.push_back(&f);
    all.insert(all.end(), f.tokens.begin(), f.tokens.end());
    all.push_back(Token{TokKind::Punct, ";", 0});
  }
  ex.int_consts = harvest_int_constants(all);
  ex.string_consts = harvest_string_constants(all);
  ex.classes = harvest_classes(all);
  ex.members = harvest_unique_ptr_members(all);
  ex.layout_defaults = harvest_layout_defaults(all);
  ex.profiles = harvest_profiles(all);
  ex.default_subs = harvest_default_subscriptions(all);

  // Registration sites, located per file for accurate line numbers.
  for (const SourceFile* fp : scanned) {
    const auto& t = fp->tokens;
    for (std::size_t i = 0; i + 3 < t.size(); ++i) {
      if (!is_ident(t[i], "pipeline_") || !is_punct(t[i + 1], ".")) continue;
      if (!is_ident(t[i + 2], "add") && !is_ident(t[i + 2], "add_owned")) {
        continue;
      }
      if (!is_punct(t[i + 3], "(")) continue;
      const auto args = split_args(t, i + 3);
      Registration reg;
      reg.file = fp->rel;
      reg.line = t[i].line;
      if (args.size() != 2) {
        findings.push_back(Finding{fp->rel, reg.line, "pipeline-wiring",
                                   "cannot parse registration arguments: " +
                                       fp->excerpt(reg.line)});
        continue;
      }
      if (!resolve_priority(ex, t, args[0].first, args[0].second, i, reg)) {
        findings.push_back(Finding{
            fp->rel, reg.line, "pipeline-wiring",
            "cannot statically resolve the registration priority: " +
                fp->excerpt(reg.line)});
        continue;
      }
      reg.class_name =
          resolve_listener_class(ex, t, args[1].first, args[1].second);
      if (reg.class_name.empty() ||
          find_class(ex, reg.class_name) == nullptr) {
        findings.push_back(Finding{
            fp->rel, reg.line, "pipeline-wiring",
            "cannot resolve the registered listener to a class: " +
                fp->excerpt(reg.line)});
        continue;
      }
      ex.regs.push_back(std::move(reg));
    }
  }

  // Every concrete MessageListener subclass in the controller layer
  // must be registered somewhere; a listener class nobody adds to the
  // chain is dead wiring (or a forgotten registration).
  std::set<std::string> registered;
  for (const auto& r : ex.regs) registered.insert(r.class_name);
  for (const auto& c : ex.classes) {
    if (c.name == "MessageListener" || !derives_message_listener(ex, c)) {
      continue;
    }
    if (registered.count(c.name) == 0) {
      findings.push_back(Finding{
          kSpecRel, 0, "pipeline-wiring",
          "listener class " + c.name +
              " derives MessageListener but is never registered with "
              "the pipeline"});
    }
  }

  // Instantiate per harvested profile; a tree with no profile functions
  // (the fixtures) gets one keyless instantiation over the layout
  // defaults — i.e. the legacy single-spec behaviour.
  std::vector<ProfileInfo> profiles = ex.profiles;
  if (profiles.empty()) profiles.push_back(ProfileInfo{});

  std::vector<ProfileSpec> out;
  for (const auto& profile : profiles) {
    ProfileSpec ps;
    ps.key = profile.key;
    ps.spec = instantiate_profile(ex, profile, findings);
    out.push_back(std::move(ps));
  }

  if (!skip_spec_diff) {
    for (const auto& ps : out) {
      const std::string path =
          ps.key.empty() ? spec_path : profile_spec_path(spec_path, ps.key);
      const std::string rel =
          ps.key.empty()
              ? std::string(kSpecRel)
              : "tools/tmglint/pipeline_spec_" + ps.key + ".txt";
      diff_against_spec(ps, path, rel, findings);
    }
  }
  return out;
}

}  // namespace tmg::tmglint
