#include "spec.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <tuple>

namespace tmg::tmglint {

namespace {

/// Numeric sort key of a priority field ("900" -> 900, "100+10N" -> 100).
long priority_key(const std::string& p) {
  return std::strtol(p.c_str(), nullptr, 10);
}

}  // namespace

std::string to_line(const SpecEntry& e) {
  std::ostringstream out;
  out << e.priority << " " << e.name << " ";
  if (e.subs.empty()) {
    out << "-";
  } else {
    for (std::size_t i = 0; i < e.subs.size(); ++i) {
      if (i > 0) out << "|";
      out << e.subs[i];
    }
  }
  return out.str();
}

std::string emit_pipeline_spec(const PipelineSpec& spec,
                               const std::string& profile_key) {
  std::ostringstream out;
  out << "# tmglint pipeline spec — the controller's listener chain in\n"
         "# dispatch order: <priority> <name> <subscriptions>.\n"
         "# `B+SN` is the defense band (base B, step S per installed\n"
         "# module); `<dynamic>` marks a name resolved only at runtime.\n";
  if (profile_key.empty()) {
    out << "# Regenerate after a deliberate wiring change:\n"
           "#   tmglint --root . --emit-pipeline-spec > "
           "tools/tmglint/pipeline_spec.txt\n";
  } else {
    out << "# Profile: " << profile_key << " — ctrl::" << profile_key
        << "_profile()'s PipelineLayout applied to the registration\n"
           "# sites (negative slots compiled out of the chain).\n"
           "# Regenerate after a deliberate wiring change:\n"
           "#   tmglint --root . --emit-pipeline-spec --profile "
        << profile_key << " > tools/tmglint/pipeline_spec_" << profile_key
        << ".txt\n";
  }
  for (const auto& e : spec.entries) out << to_line(e) << "\n";
  return out.str();
}

std::optional<PipelineSpec> parse_pipeline_spec(const std::string& path,
                                                std::string* error) {
  std::ifstream in{path};
  if (!in) {
    if (error != nullptr) *error = "cannot open spec file " + path;
    return std::nullopt;
  }
  PipelineSpec spec;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields{line};
    SpecEntry e;
    std::string subs;
    if (!(fields >> e.priority >> e.name >> subs)) {
      if (error != nullptr) {
        *error = path + ":" + std::to_string(lineno) +
                 ": expected `<priority> <name> <subscriptions>`";
      }
      return std::nullopt;
    }
    if (subs != "-") {
      std::stringstream ss{subs};
      std::string sub;
      while (std::getline(ss, sub, '|')) {
        if (!sub.empty()) e.subs.push_back(sub);
      }
    }
    spec.entries.push_back(std::move(e));
  }
  return spec;
}

void sort_spec_entries(std::vector<SpecEntry>& entries) {
  std::sort(entries.begin(), entries.end(),
            [](const SpecEntry& a, const SpecEntry& b) {
              return std::make_tuple(priority_key(a.priority), a.name) <
                     std::make_tuple(priority_key(b.priority), b.name);
            });
}

}  // namespace tmg::tmglint
