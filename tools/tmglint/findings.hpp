// tmglint: findings and report rendering.
#pragma once

#include <string>
#include <vector>

namespace tmg::tmglint {

struct Finding {
  std::string file;  // tree-relative path
  int line = 0;
  std::string rule;
  std::string message;
};

/// Sort by (file, line, rule, message). The report is diffed byte for
/// byte in tests, so ordering is part of the output contract.
void sort_findings(std::vector<Finding>& findings);

/// Render the standard report: a count header, one indented
/// `file:line: rule: message` per finding, and the remediation footer.
/// Deterministic for a given finding set.
[[nodiscard]] std::string render_report(const std::vector<Finding>& findings);

}  // namespace tmg::tmglint
