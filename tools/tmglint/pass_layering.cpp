// Include-layering DAG.
//
// The module layer order (DESIGN.md §11; mirrors the library edges in
// src/CMakeLists.txt):
//
//   rank 0  sim, crypto, check/assert.*     (leaf utilities)
//   rank 1  stats, net
//   rank 2  of
//   rank 3  topo
//   rank 4  obs      — floating: includable from ANY module, but may
//                      itself include only sim/stats/check-assert, so
//                      instrumenting a layer can never create a cycle
//   rank 5  trace
//   rank 6  ctrl
//   rank 7  defense, ids, attack            (peers; no cross-includes)
//   rank 8  check/invariants.*              (audits the layers below)
//   rank 9  scenario
//
// A file may include its own module and any strictly lower rank.
// Same-rank peers (defense/ids/attack) may not include each other:
// cross-module defense coordination goes through the pipeline and the
// ServiceRegistry, not headers. On top of the rank rules the pass
// rejects any cycle in the file-level include graph, so a future
// same-rank exception can never quietly become circular.
//
// These findings are architectural and not suppressible.
#include <map>
#include <string>
#include <vector>

#include "analyzer.hpp"

namespace tmg::tmglint {

namespace {

const std::map<std::string, int>& rank_table() {
  static const std::map<std::string, int> kRanks = {
      {"sim", 0},   {"crypto", 0}, {"check_assert", 0},
      {"stats", 1}, {"net", 1},
      {"of", 2},
      {"topo", 3},
      {"obs", 4},
      {"trace", 5},
      {"ctrl", 6},
      {"defense", 7}, {"ids", 7}, {"attack", 7},
      {"check_invariants", 8},
      {"scenario", 9},
  };
  return kRanks;
}

/// Modules obs may include: instrumentation must stay a leaf.
bool obs_may_include(const std::string& target) {
  return target == "sim" || target == "stats" || target == "check_assert" ||
         target == "obs";
}

struct Edge {
  std::size_t from = 0;  // index into tree.files
  std::size_t to = 0;
  int line = 0;
};

}  // namespace

void run_layering_pass(const SourceTree& tree,
                       std::vector<Finding>& findings) {
  const auto& ranks = rank_table();
  std::map<std::string, std::size_t> index;
  for (std::size_t i = 0; i < tree.files.size(); ++i) {
    index[tree.files[i].rel] = i;
  }

  std::vector<std::vector<Edge>> graph(tree.files.size());
  for (std::size_t i = 0; i < tree.files.size(); ++i) {
    const SourceFile& f = tree.files[i];
    const auto self = ranks.find(f.module);
    if (self == ranks.end()) {
      findings.push_back(
          Finding{f.rel, 1, "layering",
                  "module '" + f.module +
                      "' is not in the layer table — add it to "
                      "tools/tmglint/pass_layering.cpp deliberately"});
      continue;
    }
    for (const auto& inc : f.includes) {
      const std::string target_rel = "src/" + inc.target;
      const std::string target_mod = module_of(target_rel);
      const auto it = index.find(target_rel);
      if (it != index.end()) graph[i].push_back(Edge{i, it->second, inc.line});
      if (target_mod.empty()) continue;  // not a first-party module path
      const auto tgt = ranks.find(target_mod);
      if (tgt == ranks.end()) {
        findings.push_back(Finding{
            f.rel, inc.line, "layering",
            "include of unknown module '" + target_mod + "' (" + inc.target +
                ")"});
        continue;
      }
      if (f.module == "obs") {
        if (!obs_may_include(target_mod)) {
          findings.push_back(Finding{
              f.rel, inc.line, "layering",
              "obs is a floating leaf: it may include only sim/stats/"
              "check-assert, not '" + inc.target + "'"});
        }
        continue;
      }
      if (target_mod == f.module || target_mod == "obs") continue;
      if (tgt->second >= self->second) {
        findings.push_back(Finding{
            f.rel, inc.line, "layering",
            "module '" + f.module + "' (layer " +
                std::to_string(self->second) + ") may not include '" +
                target_mod + "' (layer " + std::to_string(tgt->second) +
                "): " + inc.target});
      }
    }
  }

  // File-level cycle rejection (iterative DFS, deterministic order).
  enum class Color { White, Grey, Black };
  std::vector<Color> color(tree.files.size(), Color::White);
  for (std::size_t start = 0; start < tree.files.size(); ++start) {
    if (color[start] != Color::White) continue;
    struct Frame {
      std::size_t node;
      std::size_t next = 0;
    };
    std::vector<Frame> stack{{start, 0}};
    color[start] = Color::Grey;
    while (!stack.empty()) {
      Frame& top = stack.back();
      if (top.next >= graph[top.node].size()) {
        color[top.node] = Color::Black;
        stack.pop_back();
        continue;
      }
      const Edge& e = graph[top.node][top.next++];
      if (color[e.to] == Color::Grey) {
        // Reconstruct the cycle path from the DFS stack.
        std::string cycle;
        bool in_cycle = false;
        for (const Frame& fr : stack) {
          if (fr.node == e.to) in_cycle = true;
          if (in_cycle) cycle += tree.files[fr.node].rel + " -> ";
        }
        cycle += tree.files[e.to].rel;
        findings.push_back(Finding{tree.files[e.from].rel, e.line,
                                   "include-cycle",
                                   "include cycle: " + cycle});
        continue;
      }
      if (color[e.to] == Color::White) {
        color[e.to] = Color::Grey;
        stack.push_back(Frame{e.to, 0});
      }
    }
  }
}

}  // namespace tmg::tmglint
