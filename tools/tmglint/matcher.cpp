#include "matcher.hpp"

#include <algorithm>

namespace tmg::tmglint {

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokKind::Ident && t.text == text;
}

bool is_punct(const Token& t, const char* text) {
  return t.kind == TokKind::Punct && t.text == text;
}

std::size_t match_balanced(const std::vector<Token>& t, std::size_t open) {
  const std::string& o = t[open].text;
  const char close = o == "(" ? ')' : o == "[" ? ']' : '}';
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].kind != TokKind::Punct || t[i].text.size() != 1) continue;
    const char c = t[i].text[0];
    if (c == o[0]) ++depth;
    if (c == close && --depth == 0) return i;
  }
  return t.size();
}

std::size_t match_angle(const std::vector<Token>& t, std::size_t open) {
  int angle = 0;
  int paren = 0;
  const std::size_t limit = std::min(t.size(), open + 400);
  for (std::size_t i = open; i < limit; ++i) {
    if (t[i].kind != TokKind::Punct || t[i].text.size() != 1) continue;
    const char c = t[i].text[0];
    if (c == '(' || c == '[' || c == '{') ++paren;
    if (c == ')' || c == ']' || c == '}') {
      if (paren == 0) return t.size();
      --paren;
    }
    if (paren > 0) continue;
    if (c == ';') return t.size();
    if (c == '<') ++angle;
    if (c == '>' && --angle == 0) return i;
  }
  return t.size();
}

std::vector<std::pair<std::size_t, std::size_t>> split_args(
    const std::vector<Token>& t, std::size_t open) {
  std::vector<std::pair<std::size_t, std::size_t>> args;
  const std::size_t close = match_balanced(t, open);
  if (close >= t.size()) return args;
  std::size_t start = open + 1;
  int depth = 0;
  for (std::size_t i = open + 1; i < close; ++i) {
    if (t[i].kind == TokKind::Punct && t[i].text.size() == 1) {
      const char c = t[i].text[0];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') --depth;
      if (c == ',' && depth == 0) {
        args.emplace_back(start, i);
        start = i + 1;
        continue;
      }
    }
  }
  if (start < close || close > open + 1) args.emplace_back(start, close);
  return args;
}

namespace {

bool is_body_qualifier(const Token& t) {
  return is_ident(t, "const") || is_ident(t, "override") ||
         is_ident(t, "final") || is_ident(t, "noexcept") ||
         is_ident(t, "mutable");
}

}  // namespace

std::vector<std::pair<std::size_t, std::size_t>> callable_spans(
    const std::vector<Token>& t) {
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (!is_punct(t[i], "{")) continue;
    // Walk back over trailing qualifiers and a trailing-return type
    // (a `-> Type` of identifiers/::/<>/*&) to find what introduced
    // this brace.
    std::size_t p = i;
    bool saw_arrow = false;
    while (p > 0) {
      const Token& prev = t[p - 1];
      if (is_body_qualifier(prev)) {
        --p;
        continue;
      }
      if (is_punct(prev, "->")) {
        saw_arrow = true;
        --p;
        continue;
      }
      if (saw_arrow &&
          (prev.kind == TokKind::Ident || is_punct(prev, "::") ||
           is_punct(prev, "<") || is_punct(prev, ">") ||
           is_punct(prev, "*") || is_punct(prev, "&"))) {
        --p;
        continue;
      }
      // `noexcept(...)` / return-type template args end with ')' or
      // '>' too; treating those as call parens is fine (see header).
      break;
    }
    if (p > 0 && is_punct(t[p - 1], ")")) {
      const std::size_t end = match_balanced(t, i);
      if (end < t.size()) spans.emplace_back(i, end);
    }
  }
  return spans;
}

std::optional<std::pair<std::size_t, std::size_t>> enclosing_callable(
    const std::vector<std::pair<std::size_t, std::size_t>>& spans,
    std::size_t i) {
  std::optional<std::pair<std::size_t, std::size_t>> best;
  for (const auto& s : spans) {
    if (s.first >= i || s.second <= i) continue;
    if (!best || s.second - s.first > best->second - best->first) best = s;
  }
  return best;
}

std::string receiver_anchor(const std::vector<Token>& t, std::size_t method) {
  std::size_t p = method;
  std::string anchor;
  while (p > 0) {
    const Token& sep = t[p - 1];
    if (!is_punct(sep, ".") && !is_punct(sep, "->")) break;
    if (p < 2) return "";
    std::size_t q = p - 2;  // token before the separator
    if (is_punct(t[q], ")")) {
      // Walk back over the call's argument list to its callee name.
      int depth = 0;
      while (q > 0) {
        if (is_punct(t[q], ")")) ++depth;
        if (is_punct(t[q], "(") && --depth == 0) break;
        --q;
      }
      if (q == 0 || t[q - 1].kind != TokKind::Ident) return "";
      --q;
    }
    if (t[q].kind != TokKind::Ident) return "";
    anchor = t[q].text;
    p = q;
  }
  return anchor;
}

std::map<std::string, long> harvest_int_constants(
    const std::vector<Token>& t) {
  std::map<std::string, long> out;
  for (std::size_t i = 0; i + 4 < t.size(); ++i) {
    if (!is_ident(t[i], "constexpr")) continue;
    std::size_t j = i + 1;
    if (is_ident(t[j], "int") || is_ident(t[j], "auto") ||
        is_ident(t[j], "long")) {
      ++j;
    }
    if (j + 3 >= t.size() || t[j].kind != TokKind::Ident ||
        !is_punct(t[j + 1], "=")) {
      continue;
    }
    // Value: a plain number, or a unary minus then a number.
    std::size_t v = j + 2;
    long sign = 1;
    if (is_punct(t[v], "-")) {
      sign = -1;
      ++v;
    }
    if (v + 1 >= t.size() || t[v].kind != TokKind::Number ||
        !is_punct(t[v + 1], ";")) {
      continue;
    }
    try {
      out[t[j].text] = sign * std::stol(t[v].text, nullptr, 0);
    } catch (...) {  // NOLINT(bugprone-empty-catch)
      // Not an integer literal we understand; leave unresolved.
    }
  }
  return out;
}

std::map<std::string, std::string> harvest_string_constants(
    const std::vector<Token>& t) {
  std::map<std::string, std::string> out;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!is_ident(t[i], "constexpr")) continue;
    // Scan the declarator up to `=`, remembering the last identifier
    // (the constant's name). Bail at statement end.
    std::size_t eq = i + 1;
    std::string name;
    while (eq < t.size() && !is_punct(t[eq], "=") && !is_punct(t[eq], ";") &&
           !is_punct(t[eq], "{")) {
      if (t[eq].kind == TokKind::Ident) name = t[eq].text;
      ++eq;
    }
    if (eq + 1 >= t.size() || !is_punct(t[eq], "=") || name.empty()) continue;
    if (t[eq + 1].kind != TokKind::String) continue;
    out[name] = t[eq + 1].text;
  }
  return out;
}

namespace {

/// Parses `return <literal-or-ident> ;` bodies for name() methods and
/// collects MessageType::X mentions for subscriptions() bodies.
void analyze_method_body(const std::vector<Token>& t, std::size_t body_open,
                         std::size_t body_close, const std::string& method,
                         ClassInfo& info) {
  if (method == "name") {
    info.has_name_method = true;
    if (body_open + 2 < body_close && is_ident(t[body_open + 1], "return")) {
      const Token& v = t[body_open + 2];
      if (v.kind == TokKind::String && is_punct(t[body_open + 3], ";")) {
        info.name_literal = v.text;
        return;
      }
      if (v.kind == TokKind::Ident && is_punct(t[body_open + 3], ";")) {
        info.name_constant = v.text;
        return;
      }
    }
    info.name_dynamic = true;
    return;
  }
  if (method == "subscriptions") {
    for (std::size_t i = body_open; i + 2 < body_close; ++i) {
      if (is_ident(t[i], "MessageType") && is_punct(t[i + 1], "::") &&
          t[i + 2].kind == TokKind::Ident) {
        info.subscriptions.insert(t[i + 2].text);
      }
    }
  }
}

/// Is token index `i` a method-name identifier followed by `(` `)` and
/// eventually a `{` body (skipping qualifiers)? Returns the body-open
/// index, or npos.
std::size_t method_body_open(const std::vector<Token>& t, std::size_t i) {
  if (i + 1 >= t.size() || !is_punct(t[i + 1], "(")) return t.size();
  std::size_t close = match_balanced(t, i + 1);
  if (close >= t.size()) return t.size();
  std::size_t j = close + 1;
  while (j < t.size() && (is_body_qualifier(t[j]) || is_punct(t[j], "->") ||
                          (j > 0 && is_punct(t[j - 1], "->") &&
                           t[j].kind == TokKind::Ident))) {
    ++j;
  }
  return j < t.size() && is_punct(t[j], "{") ? j : t.size();
}

}  // namespace

std::vector<ClassInfo> harvest_classes(const std::vector<Token>& t) {
  std::vector<ClassInfo> classes;
  // Pass 1: class declarations with bodies.
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!is_ident(t[i], "class") && !is_ident(t[i], "struct")) continue;
    if (t[i + 1].kind != TokKind::Ident) continue;
    // `class Outer::Nested final : ...` — the declared class is the
    // last identifier of the qualified name.
    std::size_t j = i + 1;
    while (j + 2 < t.size() && is_punct(t[j + 1], "::") &&
           t[j + 2].kind == TokKind::Ident) {
      j += 2;
    }
    ClassInfo info;
    info.name = t[j].text;
    info.line = t[j].line;
    ++j;
    if (is_ident(t[j], "final")) ++j;
    if (is_punct(t[j], ";")) continue;  // forward declaration
    if (is_punct(t[j], ":")) {
      ++j;
      // Base list: qualified names separated by commas; keep the last
      // identifier of each qualified name.
      std::string last;
      while (j < t.size() && !is_punct(t[j], "{")) {
        if (t[j].kind == TokKind::Ident && !is_ident(t[j], "public") &&
            !is_ident(t[j], "private") && !is_ident(t[j], "protected") &&
            !is_ident(t[j], "virtual")) {
          last = t[j].text;
        }
        if (is_punct(t[j], ",") && !last.empty()) {
          info.bases.push_back(last);
          last.clear();
        }
        if (is_punct(t[j], "<")) {  // skip template args in base names
          const std::size_t end = match_angle(t, j);
          if (end >= t.size()) break;
          j = end;
        }
        ++j;
      }
      if (!last.empty()) info.bases.push_back(last);
    }
    if (j >= t.size() || !is_punct(t[j], "{")) continue;
    const std::size_t body_end = match_balanced(t, j);
    if (body_end >= t.size()) continue;
    // In-class name()/subscriptions() bodies.
    for (std::size_t k = j + 1; k < body_end; ++k) {
      if (t[k].kind != TokKind::Ident ||
          (t[k].text != "name" && t[k].text != "subscriptions")) {
        continue;
      }
      const std::size_t open = method_body_open(t, k);
      if (open >= t.size()) continue;
      analyze_method_body(t, open, match_balanced(t, open), t[k].text, info);
    }
    classes.push_back(std::move(info));
  }
  // Pass 2: out-of-class `T Class::name() const { ... }` definitions.
  for (std::size_t i = 0; i + 3 < t.size(); ++i) {
    if (t[i].kind != TokKind::Ident || !is_punct(t[i + 1], "::")) continue;
    const Token& m = t[i + 2];
    if (m.kind != TokKind::Ident ||
        (m.text != "name" && m.text != "subscriptions")) {
      continue;
    }
    const std::size_t open = method_body_open(t, i + 2);
    if (open >= t.size()) continue;
    for (auto& info : classes) {
      if (info.name == t[i].text) {
        analyze_method_body(t, open, match_balanced(t, open), m.text, info);
      }
    }
  }
  return classes;
}

std::map<std::string, std::string> harvest_unique_ptr_members(
    const std::vector<Token>& t) {
  std::map<std::string, std::string> out;
  for (std::size_t i = 0; i + 4 < t.size(); ++i) {
    if (!is_ident(t[i], "unique_ptr") || !is_punct(t[i + 1], "<")) continue;
    const std::size_t close = match_angle(t, i + 1);
    if (close + 2 >= t.size()) continue;
    // Type = last identifier inside the angle brackets.
    std::string type;
    for (std::size_t k = i + 2; k < close; ++k) {
      if (t[k].kind == TokKind::Ident) type = t[k].text;
    }
    if (t[close + 1].kind == TokKind::Ident && is_punct(t[close + 2], ";") &&
        !type.empty()) {
      out[t[close + 1].text] = type;
    }
  }
  return out;
}

std::set<std::string> harvest_unordered_members(const std::vector<Token>& t) {
  std::set<std::string> out;
  for (std::size_t i = 0; i + 3 < t.size(); ++i) {
    if (!is_ident(t[i], "unordered_map") && !is_ident(t[i], "unordered_set")) {
      continue;
    }
    if (!is_punct(t[i + 1], "<")) continue;
    const std::size_t close = match_angle(t, i + 1);
    if (close + 1 >= t.size() || t[close + 1].kind != TokKind::Ident) continue;
    if (close + 2 < t.size() &&
        (is_punct(t[close + 2], ";") || is_punct(t[close + 2], "{") ||
         is_punct(t[close + 2], "="))) {
      out.insert(t[close + 1].text);
    }
  }
  return out;
}

}  // namespace tmg::tmglint
