// tmglint: source model.
//
// A SourceTree is every .hpp/.cpp under <root>/src, each lexed once.
// Files carry their suppression directives (parsed from the comment
// stream, so a directive inside a string literal is inert) and a
// consumption flag per directive that feeds the suppression audit.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "token.hpp"

namespace tmg::tmglint {

/// One `allow(<rules>)` directive. `used` flips when the directive
/// actually suppresses (or annotates) a finding; the audit reports
/// directives that never flip.
struct AllowDirective {
  int line = 0;
  std::vector<std::string> rules;
  mutable std::vector<bool> used;  // parallel to `rules`
};

struct Suppressions {
  std::vector<AllowDirective> allows;
  bool skip_file = false;
  int skip_file_line = 0;
  mutable bool skip_file_used = false;

  /// True when `rule` at `line` is covered by an allow on the same or
  /// the preceding line (the legacy linter's attachment rule). Marks
  /// the matching directive used.
  [[nodiscard]] bool allowed(const std::string& rule, int line) const;
};

struct SourceFile {
  std::string rel;     // path relative to the tree root, '/'-separated
  std::string module;  // "sim", "ctrl", ... ("check" splits, see below)
  std::vector<std::string> lines;  // raw lines, for finding excerpts
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<IncludeDirective> includes;
  Suppressions suppressions;

  [[nodiscard]] bool in_module(const char* m) const { return module == m; }
  /// Whitespace-trimmed source line (1-based), for finding messages.
  [[nodiscard]] std::string excerpt(int line) const;
};

struct SourceTree {
  std::string root;
  std::vector<SourceFile> files;  // sorted by rel path

  /// The paired header/implementation of `file` (foo.cpp <-> foo.hpp),
  /// or nullptr. Several rules are file-pair properties: a member
  /// declared in the .hpp is iterated in the .cpp.
  [[nodiscard]] const SourceFile* sibling(const SourceFile& file) const;
  [[nodiscard]] const SourceFile* find(const std::string& rel) const;
};

/// Module assignment for `src/<dir>/<file>`. `src/check` splits in two:
/// assert.* is a leaf utility every layer may use ("check_assert"),
/// invariants.* sits above the controller it audits ("check_invariants").
[[nodiscard]] std::string module_of(const std::string& rel);

/// Load and lex every src/**.{hpp,cpp} under `root`. Throws
/// std::runtime_error when root/src does not exist.
[[nodiscard]] SourceTree load_source_tree(const std::string& root);

/// Parse suppression directives out of a comment stream. Recognizes
/// both spellings — `tmglint:` and the legacy `determinism-lint:` —
/// with identical grammar: `allow(<rule>[, <rule>...]) <reason>` and
/// `skip-file <reason>`.
[[nodiscard]] Suppressions parse_suppressions(
    const std::vector<Comment>& comments);

}  // namespace tmg::tmglint
