// tmglint: pipeline wiring spec.
//
// The spec files (tools/tmglint/pipeline_spec_<profile>.txt, one per
// ControllerProfile) are the checked-in source of truth for the
// controller's listener chain: one line per registration,
// `<priority> <name> <subscriptions>`, in dispatch order. Priorities
// are either integers or a band expression `B+SN` (base B, step S per
// installed module — the defense band); names are either literal
// listener names or `<dynamic>` for adapters whose name is a runtime
// value; subscriptions are `|`-joined MessageType identifiers in
// sorted order, `-` when none could be extracted.
//
// The pipeline pass reconstructs the same structure from the sources —
// instantiating the PipelineLayout slot table once per harvested
// `<key>_profile()` override set, dropping negative (compiled-out)
// slots — and diffs each against its file; tests/tmglint_test.cpp
// additionally diffs every spec against the chain a live
// MessagePipeline reports at runtime under that profile.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace tmg::tmglint {

struct SpecEntry {
  std::string priority;           // "0", "900", or "100+10N"
  std::string name;               // "link-discovery" or "<dynamic>"
  std::vector<std::string> subs;  // sorted MessageType identifiers

  [[nodiscard]] bool operator==(const SpecEntry& o) const {
    return priority == o.priority && name == o.name && subs == o.subs;
  }
};

struct PipelineSpec {
  std::vector<SpecEntry> entries;  // dispatch order
};

/// One instantiated chain: the layout of `<key>_profile()` applied to
/// the registration sites. `key` is the profile's CLI name; empty in
/// legacy single-spec mode (trees with no profile functions — the
/// fixtures — extract exactly one keyless spec).
struct ProfileSpec {
  std::string key;
  PipelineSpec spec;
};

/// Render one entry as a spec line.
[[nodiscard]] std::string to_line(const SpecEntry& e);

/// Canonical file contents (header comment + one line per entry). A
/// non-empty `profile_key` names the profile in the header and points
/// the regeneration command at that profile's spec file.
[[nodiscard]] std::string emit_pipeline_spec(const PipelineSpec& spec,
                                             const std::string& profile_key =
                                                 "");

/// Parse a spec file. Returns nullopt (with *error set) on I/O or
/// syntax problems.
[[nodiscard]] std::optional<PipelineSpec> parse_pipeline_spec(
    const std::string& path, std::string* error);

/// Sort key for dispatch order: band entries order by their base, ties
/// break on name (mirrors MessagePipeline's (priority, name) order).
void sort_spec_entries(std::vector<SpecEntry>& entries);

}  // namespace tmg::tmglint
