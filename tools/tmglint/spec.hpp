// tmglint: pipeline wiring spec.
//
// The spec file (tools/tmglint/pipeline_spec.txt) is the checked-in
// source of truth for the controller's listener chain: one line per
// registration, `<priority> <name> <subscriptions>`, in dispatch order.
// Priorities are either integers or a band expression `B+SN` (base B,
// step S per installed module — the defense band); names are either
// literal listener names or `<dynamic>` for adapters whose name is a
// runtime value; subscriptions are `|`-joined MessageType identifiers
// in sorted order, `-` when none could be extracted.
//
// The pipeline pass reconstructs the same structure from the sources
// and diffs the two; tests/tmglint_test.cpp additionally diffs the spec
// against the chain a live MessagePipeline reports at runtime.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace tmg::tmglint {

struct SpecEntry {
  std::string priority;           // "0", "900", or "100+10N"
  std::string name;               // "link-discovery" or "<dynamic>"
  std::vector<std::string> subs;  // sorted MessageType identifiers

  [[nodiscard]] bool operator==(const SpecEntry& o) const {
    return priority == o.priority && name == o.name && subs == o.subs;
  }
};

struct PipelineSpec {
  std::vector<SpecEntry> entries;  // dispatch order
};

/// Render one entry as a spec line.
[[nodiscard]] std::string to_line(const SpecEntry& e);

/// Canonical file contents (header comment + one line per entry).
[[nodiscard]] std::string emit_pipeline_spec(const PipelineSpec& spec);

/// Parse a spec file. Returns nullopt (with *error set) on I/O or
/// syntax problems.
[[nodiscard]] std::optional<PipelineSpec> parse_pipeline_spec(
    const std::string& path, std::string* error);

/// Sort key for dispatch order: band entries order by their base, ties
/// break on name (mirrors MessagePipeline's (priority, name) order).
void sort_spec_entries(std::vector<SpecEntry>& entries);

}  // namespace tmg::tmglint
