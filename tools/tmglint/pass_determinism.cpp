// Determinism rules v2: the nine lint_determinism.py rules on the
// token stream. Scope, suppression grammar, and verdicts mirror the
// legacy regex linter exactly (tools/lint_determinism.py keeps running
// as a thin wrapper over this pass); the difference is that a banned
// identifier inside a comment, string literal, or raw string can no
// longer trigger — or mask — a finding.
#include <array>
#include <set>
#include <string>
#include <vector>

#include "analyzer.hpp"
#include "matcher.hpp"

namespace tmg::tmglint {

namespace {

struct RawFinding {
  std::string rule;
  int line = 0;
};

bool threading_allowed_file(const std::string& rel) {
  static const std::array<const char*, 4> kAllowed = {
      "src/sim/thread_pool.hpp",
      "src/sim/thread_pool.cpp",
      "src/scenario/trial_runner.hpp",
      "src/scenario/trial_runner.cpp",
  };
  for (const char* a : kAllowed) {
    if (rel == a) return true;
  }
  return false;
}

bool is_rng_module_file(const SourceFile& f) {
  return f.rel == "src/sim/rng.hpp" || f.rel == "src/sim/rng.cpp";
}

bool std_qualified(const std::vector<Token>& t, std::size_t i) {
  return i >= 2 && is_punct(t[i - 1], "::") && is_ident(t[i - 2], "std");
}

// rule wall-clock: host-clock reads. Inside src/obs the rule is hard:
// exports are diffed byte-for-byte across runs, so no suppression —
// not even skip-file — applies there.
void rule_wall_clock(const SourceFile& f, std::vector<RawFinding>& out) {
  static const std::set<std::string> kClocks = {
      "system_clock", "steady_clock", "high_resolution_clock"};
  const auto& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::Ident) continue;
    if (kClocks.count(t[i].text) != 0) {
      out.push_back({"wall-clock", t[i].line});
      continue;
    }
    if ((t[i].text == "gettimeofday" || t[i].text == "clock_gettime") &&
        i + 1 < t.size() && is_punct(t[i + 1], "(")) {
      out.push_back({"wall-clock", t[i].line});
      continue;
    }
    if (t[i].text == "time" && i + 3 < t.size() && is_punct(t[i + 1], "(") &&
        is_punct(t[i + 3], ")") &&
        (is_ident(t[i + 2], "nullptr") || is_ident(t[i + 2], "NULL") ||
         (t[i + 2].kind == TokKind::Number && t[i + 2].text == "0"))) {
      out.push_back({"wall-clock", t[i].line});
    }
  }
}

// rule libc-rand: C-library entropy. A member call (`obj.random()`) or
// a non-std qualification (`mylib::rand()`) is fine.
void rule_libc_rand(const SourceFile& f, std::vector<RawFinding>& out) {
  static const std::set<std::string> kFns = {"rand", "srand", "rand_r",
                                             "drand48", "random"};
  const auto& t = f.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::Ident || kFns.count(t[i].text) == 0) continue;
    if (!is_punct(t[i + 1], "(")) continue;
    if (i > 0 && (is_punct(t[i - 1], ".") || is_punct(t[i - 1], "->"))) {
      continue;
    }
    if (i > 0 && is_punct(t[i - 1], "::") && !std_qualified(t, i)) continue;
    out.push_back({"libc-rand", t[i].line});
  }
}

// rule random-device: std::random_device seeds differ per run.
void rule_random_device(const SourceFile& f, std::vector<RawFinding>& out) {
  const auto& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (is_ident(t[i], "random_device") && std_qualified(t, i)) {
      out.push_back({"random-device", t[i].line});
    }
  }
}

// rule pointer-key: map/set ordered (or hashed) on a raw pointer key —
// iteration order follows allocation addresses.
void rule_pointer_key(const SourceFile& f, std::vector<RawFinding>& out) {
  static const std::set<std::string> kMapLike = {"map", "unordered_map"};
  static const std::set<std::string> kSetLike = {"set", "unordered_set"};
  const auto& t = f.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != TokKind::Ident) continue;
    const bool map_like = kMapLike.count(t[i].text) != 0;
    const bool set_like = kSetLike.count(t[i].text) != 0;
    if ((!map_like && !set_like) || !is_punct(t[i + 1], "<")) continue;
    const std::size_t close = match_angle(t, i + 1);
    if (close >= t.size()) continue;
    // First top-level template argument: up to the first depth-1 comma.
    std::size_t arg_end = close;
    int angle = 1;
    int paren = 0;
    for (std::size_t k = i + 2; k < close; ++k) {
      if (t[k].kind != TokKind::Punct || t[k].text.size() != 1) continue;
      const char c = t[k].text[0];
      if (c == '(' || c == '[' || c == '{') ++paren;
      if (c == ')' || c == ']' || c == '}') --paren;
      if (paren != 0) continue;
      if (c == '<') ++angle;
      if (c == '>') --angle;
      if (c == ',' && angle == 1) {
        arg_end = k;
        break;
      }
    }
    if (map_like && arg_end == close) continue;  // map with one arg: not ours
    if (arg_end > i + 2 && is_punct(t[arg_end - 1], "*")) {
      out.push_back({"pointer-key", t[i].line});
    }
  }
}

// rule threading: the simulator core is single-threaded by contract;
// only the thread pool and the trial fan-out may use std threading.
void rule_threading(const SourceFile& f, std::vector<RawFinding>& out) {
  static const std::set<std::string> kPrims = {
      "thread",         "jthread",
      "async",          "mutex",
      "timed_mutex",    "recursive_mutex",
      "shared_mutex",   "condition_variable",
      "condition_variable_any",
      "future",         "promise",
      "packaged_task",  "latch",
      "barrier",        "stop_token",
      "stop_source",    "counting_semaphore",
      "binary_semaphore",
      "scoped_lock",    "unique_lock",
      "lock_guard",     "shared_lock",
      "call_once",      "once_flag",
      "this_thread"};
  if (threading_allowed_file(f.rel)) return;
  const auto& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::Ident || !std_qualified(t, i)) continue;
    if (kPrims.count(t[i].text) != 0 ||
        t[i].text.rfind("atomic", 0) == 0) {
      out.push_back({"threading", t[i].line});
    }
  }
}

// rule shared-rng: a static/global Rng, or an Rng held by ref/pointer
// as a member-style declaration. Parameters are fine (they borrow
// within one trial's call stack).
void rule_shared_rng(const SourceFile& f, std::vector<RawFinding>& out) {
  const auto& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::Ident) continue;
    // static/thread_local/inline [tmg::][sim::] Rng
    if (t[i].text == "static" || t[i].text == "thread_local" ||
        t[i].text == "inline") {
      std::size_t j = i + 1;
      while (j + 1 < t.size() &&
             (is_ident(t[j], "tmg") || is_ident(t[j], "sim")) &&
             is_punct(t[j + 1], "::")) {
        j += 2;
      }
      if (j < t.size() && is_ident(t[j], "Rng")) {
        out.push_back({"shared-rng", t[i].line});
      }
      continue;
    }
    // Statement-start `Rng [&*] name ;|=` (possibly tmg::/sim::
    // qualified). Statement start == preceded by ; { } or an access
    // label's colon, which is what the legacy ^-anchored regex caught.
    if (t[i].text != "Rng") continue;
    std::size_t start = i;
    while (start >= 2 && is_punct(t[start - 1], "::") &&
           (is_ident(t[start - 2], "tmg") || is_ident(t[start - 2], "sim"))) {
      start -= 2;
    }
    if (start > 0 && !is_punct(t[start - 1], ";") &&
        !is_punct(t[start - 1], "{") && !is_punct(t[start - 1], "}") &&
        !is_punct(t[start - 1], ":")) {
      continue;
    }
    if (i + 3 >= t.size()) continue;
    if (!is_punct(t[i + 1], "&") && !is_punct(t[i + 1], "*")) continue;
    if (t[i + 2].kind != TokKind::Ident) continue;
    const bool terminated =
        is_punct(t[i + 3], ";") ||
        (is_punct(t[i + 3], "=") &&
         (i + 4 >= t.size() || !is_punct(t[i + 4], "=")));
    if (terminated) out.push_back({"shared-rng", t[i].line});
  }
}

// rule registry-bypass: inside src/ctrl and src/defense, peer modules
// must be resolved through the ServiceRegistry, not the Controller
// accessors (DESIGN.md §9).
void rule_registry_bypass(const SourceFile& f, std::vector<RawFinding>& out) {
  if (!f.in_module("ctrl") && !f.in_module("defense")) return;
  const auto& t = f.tokens;
  for (std::size_t i = 0; i + 3 < t.size(); ++i) {
    if (!is_ident(t[i], "ctrl_") || !is_punct(t[i + 1], ".")) continue;
    if ((is_ident(t[i + 2], "host_tracker") || is_ident(t[i + 2], "routing") ||
         is_ident(t[i + 2], "link_discovery")) &&
        is_punct(t[i + 3], "(")) {
      out.push_back({"registry-bypass", t[i].line});
    }
  }
}

// rule unordered-iter: range-for directly over an unordered_{map,set}
// member (declared in this file or its header/impl sibling).
void rule_unordered_iter(const SourceFile& f, const SourceFile* sibling,
                         std::vector<RawFinding>& out) {
  std::set<std::string> members = harvest_unordered_members(f.tokens);
  if (sibling != nullptr) {
    for (const auto& m : harvest_unordered_members(sibling->tokens)) {
      members.insert(m);
    }
  }
  if (members.empty()) return;
  const auto& t = f.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (!is_ident(t[i], "for") || !is_punct(t[i + 1], "(")) continue;
    const std::size_t close = match_balanced(t, i + 1);
    if (close >= t.size() || close < i + 4) continue;
    // `... : [*]name)` — the ranged expression must be a bare
    // identifier (a member access like obj.m_ never matches, same as
    // the legacy regex).
    if (t[close - 1].kind != TokKind::Ident) continue;
    const std::size_t before = close - 2;
    const bool direct =
        is_punct(t[before], ":") ||
        (is_punct(t[before], "*") && before > 0 &&
         is_punct(t[before - 1], ":"));
    if (direct && members.count(t[close - 1].text) != 0) {
      out.push_back({"unordered-iter", t[close - 1].line});
    }
  }
}

// rule cache-coherence: a file pair that defines a cache and touches
// the topology must reference the graph's mutation epoch, or delegate
// to the epoch-keyed topo::PathCache (DESIGN.md §8).
void rule_cache_coherence(const SourceFile& f, const SourceFile* sibling,
                          std::vector<RawFinding>& out) {
  const auto scan = [](const std::vector<Token>& t, bool& topo, bool& epoch) {
    for (std::size_t i = 0; i < t.size(); ++i) {
      if (t[i].kind != TokKind::Ident) continue;
      if (t[i].text == "TopologyGraph" ||
          (t[i].text == "topology" && i + 1 < t.size() &&
           is_punct(t[i + 1], "("))) {
        topo = true;
      }
      if (t[i].text == "PathCache" || t[i].text.rfind("epoch", 0) == 0) {
        epoch = true;
      }
    }
  };
  bool topo = false;
  bool epoch = false;
  scan(f.tokens, topo, epoch);
  if (sibling != nullptr) scan(sibling->tokens, topo, epoch);
  if (!topo || epoch) return;
  const auto& t = f.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != TokKind::Ident) continue;
    const std::string& s = t[i].text;
    if (is_ident(t[i], "class") && i + 1 < t.size() &&
        t[i + 1].kind == TokKind::Ident &&
        t[i + 1].text.size() >= 5 &&
        t[i + 1].text.compare(t[i + 1].text.size() - 5, 5, "Cache") == 0) {
      out.push_back({"cache-coherence", t[i].line});
      continue;
    }
    if (s.size() >= 6 && s.compare(s.size() - 6, 6, "cache_") == 0 &&
        i + 1 < t.size() &&
        (is_punct(t[i + 1], ";") || is_punct(t[i + 1], "{") ||
         is_punct(t[i + 1], "="))) {
      out.push_back({"cache-coherence", t[i].line});
    }
  }
}

}  // namespace

void run_determinism_pass(const SourceTree& tree,
                          std::vector<Finding>& findings) {
  for (const auto& f : tree.files) {
    if (is_rng_module_file(f)) continue;  // the sanctioned entropy source
    const SourceFile* sibling = tree.sibling(f);
    std::vector<RawFinding> raw;
    rule_wall_clock(f, raw);
    rule_libc_rand(f, raw);
    rule_random_device(f, raw);
    rule_pointer_key(f, raw);
    rule_threading(f, raw);
    rule_shared_rng(f, raw);
    rule_registry_bypass(f, raw);
    rule_unordered_iter(f, sibling, raw);
    rule_cache_coherence(f, sibling, raw);

    const bool hard_wallclock = f.in_module("obs");
    for (const auto& r : raw) {
      const bool hard = hard_wallclock && r.rule == "wall-clock";
      if (hard) {
        findings.push_back(Finding{f.rel, r.line, "wall-clock",
                                   "(hard, src/obs) " + f.excerpt(r.line)});
        continue;
      }
      if (f.suppressions.skip_file) {
        f.suppressions.skip_file_used = true;
        continue;
      }
      if (f.suppressions.allowed(r.rule, r.line)) continue;
      findings.push_back(Finding{f.rel, r.line, r.rule, f.excerpt(r.line)});
    }
  }
}

}  // namespace tmg::tmglint
