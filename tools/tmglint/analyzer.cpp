#include "analyzer.hpp"

#include <algorithm>

namespace tmg::tmglint {

namespace {

bool wants(const Options& opts, Pass p) {
  return opts.passes.empty() || opts.passes.count(p) != 0;
}

}  // namespace

void run_suppression_audit(const SourceTree& tree,
                           std::vector<Finding>& findings) {
  for (const auto& f : tree.files) {
    const auto& s = f.suppressions;
    if (s.skip_file && !s.skip_file_used) {
      findings.push_back(
          Finding{f.rel, s.skip_file_line, "stale-suppression",
                  "skip-file directive but the file is clean without it — "
                  "remove the directive"});
    }
    for (const auto& allow : s.allows) {
      for (std::size_t k = 0; k < allow.rules.size(); ++k) {
        if (allow.used[k]) continue;
        findings.push_back(
            Finding{f.rel, allow.line, "stale-suppression",
                    "allow(" + allow.rules[k] +
                        ") no longer suppresses anything — remove it"});
      }
    }
  }
}

AnalysisResult analyze(const Options& opts) {
  AnalysisResult result;
  const SourceTree tree = load_source_tree(opts.root);

  if (wants(opts, Pass::Determinism)) {
    run_determinism_pass(tree, result.findings);
  }
  if (wants(opts, Pass::Lifetime)) {
    run_lifetime_pass(tree, result.findings);
  }
  if (wants(opts, Pass::Layering)) {
    run_layering_pass(tree, result.findings);
  }
  if (wants(opts, Pass::Pipeline)) {
    const std::string spec_path =
        opts.spec_path.empty()
            ? opts.root + "/tools/tmglint/pipeline_spec.txt"
            : opts.spec_path;
    result.extracted = run_pipeline_pass(tree, spec_path, opts.skip_spec_diff,
                                         result.findings);
    result.pipeline_ran = true;
  }

  // The audit needs every suppressable pass to have run, else a
  // directive for the skipped pass would be misreported as stale.
  const bool audit =
      opts.audit_override == 1 ||
      (opts.audit_override == -1 && wants(opts, Pass::Determinism) &&
       wants(opts, Pass::Lifetime));
  if (audit) run_suppression_audit(tree, result.findings);

  sort_findings(result.findings);
  return result;
}

}  // namespace tmg::tmglint
