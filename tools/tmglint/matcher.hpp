// tmglint: lightweight declaration/statement matching over the token
// stream. These helpers are the middle layer between the lexer and the
// passes: balanced-delimiter scanning, argument splitting, callable
// (function/lambda body) segmentation, and the declaration harvesters
// the pipeline pass uses to resolve constants, members, and listener
// classes across files.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "token.hpp"

namespace tmg::tmglint {

// --- token predicates ---------------------------------------------------

[[nodiscard]] bool is_ident(const Token& t, const char* text);
[[nodiscard]] bool is_punct(const Token& t, const char* text);

// --- balanced scanning --------------------------------------------------

/// Index of the token matching the opener at `open` ('(', '[', '{'),
/// or tokens.size() when unbalanced. `open` must hold the opener.
[[nodiscard]] std::size_t match_balanced(const std::vector<Token>& t,
                                         std::size_t open);

/// Index of the `>` matching a template `<` at `open`, treating nested
/// (), [], {} as opaque. Gives up (returns t.size()) at `;`, at an
/// unbalanced closer, or after a bounded scan — the callers only match
/// declaration-sized template argument lists, never whole files.
[[nodiscard]] std::size_t match_angle(const std::vector<Token>& t,
                                      std::size_t open);

/// Split the argument tokens of a call whose `(` sits at `open` into
/// top-level comma-separated [first, last) index ranges.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> split_args(
    const std::vector<Token>& t, std::size_t open);

// --- callable segmentation ----------------------------------------------

/// [open-brace, close-brace] index spans of every brace block that
/// looks like a callable body: a `{` preceded by `)` modulo trailing
/// qualifiers (const/override/noexcept/trailing-return). Control-flow
/// blocks (`if (...) {`) match too; that is harmless because callers
/// take the *outermost* enclosing span, which for any token inside a
/// function is the function body itself.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
callable_spans(const std::vector<Token>& t);

/// The widest callable span containing token index `i`, if any.
[[nodiscard]] std::optional<std::pair<std::size_t, std::size_t>>
enclosing_callable(
    const std::vector<std::pair<std::size_t, std::size_t>>& spans,
    std::size_t i);

// --- member-access chains -----------------------------------------------

/// For a member call `a.b().c.post_after(...)` with the final method
/// name at index `method`, return the identifier anchoring the chain
/// (`a`). Empty when the call is not a member access (free function).
[[nodiscard]] std::string receiver_anchor(const std::vector<Token>& t,
                                          std::size_t method);

// --- declaration harvesting (pipeline pass) -----------------------------

/// `inline constexpr int kFoo = 42;` style integer constants.
[[nodiscard]] std::map<std::string, long> harvest_int_constants(
    const std::vector<Token>& t);

/// `inline constexpr const char* kFoo = "bar";` style string constants.
[[nodiscard]] std::map<std::string, std::string> harvest_string_constants(
    const std::vector<Token>& t);

/// A class/struct declaration with a body, plus what the pipeline pass
/// needs from it: base names, the literal its `name()` returns (or the
/// constant it returns by name), and the MessageType identifiers its
/// `subscriptions()` body mentions.
struct ClassInfo {
  std::string name;
  int line = 0;
  std::vector<std::string> bases;       // unqualified base names
  std::string name_literal;             // `return "x";`
  std::string name_constant;            // `return kX;`
  bool name_dynamic = false;            // returns something else
  bool has_name_method = false;
  std::set<std::string> subscriptions;  // MessageType::X identifiers
};

/// Harvest class declarations and their name()/subscriptions() bodies,
/// including out-of-class `T Class::name() const { ... }` definitions
/// appearing in the same token stream.
[[nodiscard]] std::vector<ClassInfo> harvest_classes(
    const std::vector<Token>& t);

/// `std::unique_ptr<Type> member_;` declarations: member name -> Type.
[[nodiscard]] std::map<std::string, std::string> harvest_unique_ptr_members(
    const std::vector<Token>& t);

/// Names of members declared as `unordered_map<...> m_;` or
/// `unordered_set<...> s_;` (the unordered-iter rule's universe).
[[nodiscard]] std::set<std::string> harvest_unordered_members(
    const std::vector<Token>& t);

}  // namespace tmg::tmglint
