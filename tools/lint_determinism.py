#!/usr/bin/env python3
"""Determinism lint for the topomirage simulator core.

The simulator's contract (src/sim/event_loop.hpp:1-5) is that every run
is bit-reproducible: all randomness flows through the seeded tmg::sim::Rng
and all time flows through the simulated clock. This checker bans the
usual ways nondeterminism sneaks back in:

  rule `wall-clock`     -- std::chrono system/steady/hires clocks,
                           gettimeofday, clock_gettime, time(nullptr)
  rule `libc-rand`      -- rand(), srand(), rand_r(), drand48(), random()
  rule `random-device`  -- std::random_device (seeds differ per run)
  rule `unordered-iter` -- range-for over a std::unordered_{map,set}
                           member: iteration order is hash/libc++-version
                           dependent, so anything it feeds (traces, alert
                           order, CSV rows) varies run to run
  rule `pointer-key`    -- std::map/std::set keyed on a raw pointer:
                           ordering follows allocation addresses (ASLR)
  rule `threading`      -- std::thread/jthread/async/mutex/atomic/
                           condition_variable/future/latch/barrier:
                           the simulator core is single-threaded by
                           contract; the ONLY concurrency lives in
                           src/sim/thread_pool.* and the trial fan-out
                           in src/scenario/trial_runner.* (whole trials
                           run in parallel, each on its own EventLoop)
  rule `shared-rng`     -- a static/global sim::Rng, or an Rng held by
                           reference/pointer member: sharing one Rng
                           across trials makes draw order depend on
                           thread scheduling. Each trial must own its
                           Rng (seeded via TrialRunner::trial_seed or
                           forked from the trial's own Testbed).
  rule `registry-bypass`-- inside src/ctrl and src/defense, a module
                           reaching a peer module through the Controller
                           accessors (`ctrl_.host_tracker()`,
                           `ctrl_.routing()`, `ctrl_.link_discovery()`)
                           instead of resolving it through the
                           ServiceRegistry. Direct accessor calls pin
                           the concrete core modules and break the
                           pipeline's swap/disable semantics (DESIGN.md
                           §9); use ctrl_.services().find<T>(name).
  rule `cache-coherence`-- a file that defines a cache (a `class *Cache`
                           or a `*cache_` member) and touches the
                           topology must reference the graph's mutation
                           epoch -- or delegate to the epoch-keyed
                           topo::PathCache. A topology-keyed cache with
                           no epoch tie can serve results computed
                           before a link was fabricated or torn down,
                           which is exactly the stale state the paper's
                           attacks exploit.

Scope: every .hpp/.cpp under src/, except src/sim/rng.* (the one module
allowed to own entropy).

Suppressions (use sparingly, always with a reason):
  // determinism-lint: allow(<rule>) <why>      -- same or preceding line
  // determinism-lint: skip-file <why>          -- whole file

Hard rule: inside src/obs/ the `wall-clock` rule is absolute. The
observability exports (metrics JSON/CSV, trace JSONL) are diffed byte
for byte across runs and --jobs counts, so a host-clock read there is
always a bug -- neither allow() nor skip-file can suppress it.

Exit status: 0 clean, 1 findings (printed as file:line: rule: excerpt).
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

ALLOW_RE = re.compile(r"determinism-lint:\s*allow\(([\w, -]+)\)")
SKIP_FILE_RE = re.compile(r"determinism-lint:\s*skip-file")

# Rules applied line by line.
LINE_RULES = [
    (
        "wall-clock",
        re.compile(
            r"\b(?:std::chrono::)?(?:system_clock|steady_clock|"
            r"high_resolution_clock)\b"
            r"|\bgettimeofday\s*\("
            r"|\bclock_gettime\s*\("
            r"|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"
        ),
    ),
    (
        "libc-rand",
        re.compile(r"(?<![\w:.])(?:std::)?(?:s?rand|rand_r|drand48|random)\s*\("),
    ),
    ("random-device", re.compile(r"\bstd::random_device\b")),
    (
        "pointer-key",
        re.compile(
            r"\b(?:std::)?(?:unordered_)?map\s*<[^,;<>]*\*\s*,"
            r"|\b(?:std::)?(?:unordered_)?set\s*<[^,;<>]*\*\s*>"
        ),
    ),
    (
        "threading",
        re.compile(
            r"\bstd::(?:thread|jthread|async|mutex|timed_mutex|"
            r"recursive_mutex|shared_mutex|condition_variable(?:_any)?|"
            r"atomic\w*|future|promise|packaged_task|latch|barrier|"
            r"stop_token|stop_source|counting_semaphore|binary_semaphore|"
            r"scoped_lock|unique_lock|lock_guard|shared_lock|call_once|"
            r"once_flag|this_thread)\b"
        ),
    ),
    (
        "registry-bypass",
        re.compile(
            r"\bctrl_\s*\.\s*(?:host_tracker|routing|link_discovery)\s*\("
        ),
    ),
    (
        "shared-rng",
        re.compile(
            # static/global Rng instances, and Rng held by ref/pointer
            # as a member-style declaration (parameter lists are fine:
            # they borrow within one trial's call stack).
            r"\bstatic\s+(?:tmg::)?(?:sim::)?Rng\b"
            r"|\b(?:thread_local|inline)\s+(?:tmg::)?(?:sim::)?Rng\b"
            r"|^\s*(?:tmg::)?(?:sim::)?Rng\s*[&*]\s*\w+\s*(?:;|=[^=])"
        ),
    ),
]

# Files allowed to use threading primitives: the pool itself and the
# trial fan-out that drives it. Everything else in src/ is reached only
# from within a single trial and must stay single-threaded.
THREADING_ALLOWED_FILES = {
    Path("src/sim/thread_pool.hpp"),
    Path("src/sim/thread_pool.cpp"),
    Path("src/scenario/trial_runner.hpp"),
    Path("src/scenario/trial_runner.cpp"),
}

# registry-bypass only applies where modules talk to *peer* modules:
# the controller core and the defense listeners. Infrastructure outside
# these directories (scenario drivers, the invariant checker) may use
# the Controller accessors directly -- it is not part of the pipeline.
REGISTRY_BYPASS_SCOPE = {("src", "ctrl"), ("src", "defense")}

# Finds `std::unordered_map<...> name` declarations (whitespace-normalized
# text, so multi-line declarations resolve). Backtracking lets the
# character class swallow nested `>`.
UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set)\s*<[^;{}]{0,300}?>\s+(\w+)\s*[;{=]"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\([^)]*:\s*\*?(\w+)\s*\)")

# cache-coherence: cache definitions, topology use, and the two ways a
# cache can prove it tracks topology mutations (the epoch counter
# itself, or delegating to the epoch-keyed PathCache).
CACHE_DECL_RE = re.compile(r"\bclass\s+\w*Cache\b|\b\w*cache_\s*[;{=]")
TOPOLOGY_USE_RE = re.compile(r"\bTopologyGraph\b|\btopology\s*\(")
EPOCH_TIE_RE = re.compile(r"\bepoch|\bPathCache\b")


def unordered_members(*sources: str) -> set[str]:
    names: set[str] = set()
    for text in sources:
        flat = re.sub(r"\s+", " ", text)
        names.update(UNORDERED_DECL_RE.findall(flat))
    return names


def allowed(rule: str, lines: list[str], idx: int) -> bool:
    for probe in (idx, idx - 1):
        if 0 <= probe < len(lines):
            m = ALLOW_RE.search(lines[probe])
            if m and rule in [r.strip() for r in m.group(1).split(",")]:
                return True
    return False


def lint_file(path: Path, root: Path) -> list[str]:
    text = path.read_text(encoding="utf-8", errors="replace")
    rel = path.relative_to(root)
    # src/obs exports are diffed byte-for-byte across runs, so its
    # wall-clock ban is absolute: no allow()/skip-file escape hatch.
    hard_wallclock = tuple(rel.parts[:2]) == ("src", "obs")
    skipped = SKIP_FILE_RE.search(text) is not None
    if skipped and not hard_wallclock:
        return []
    lines = text.splitlines()

    # Pair a .cpp with its header so members declared in the .hpp are
    # known when the .cpp iterates them (and vice versa).
    sibling = path.with_suffix(".hpp" if path.suffix == ".cpp" else ".cpp")
    sibling_text = (
        sibling.read_text(encoding="utf-8", errors="replace")
        if sibling.exists()
        else ""
    )
    unordered = unordered_members(text, sibling_text)

    findings = []
    for i, line in enumerate(lines):
        stripped = line.split("//", 1)[0]
        for rule, rx in LINE_RULES:
            hard = rule == "wall-clock" and hard_wallclock
            if skipped and not hard:
                continue
            if rule == "threading" and rel in THREADING_ALLOWED_FILES:
                continue
            if (
                rule == "registry-bypass"
                and tuple(rel.parts[:2]) not in REGISTRY_BYPASS_SCOPE
            ):
                continue
            if not rx.search(stripped):
                continue
            if hard:
                findings.append(
                    f"{rel}:{i + 1}: wall-clock(hard, src/obs): "
                    f"{line.strip()}"
                )
            elif not allowed(rule, lines, i):
                findings.append(f"{rel}:{i + 1}: {rule}: {line.strip()}")
        m = RANGE_FOR_RE.search(stripped)
        if (
            not skipped
            and m
            and m.group(1) in unordered
            and not allowed("unordered-iter", lines, i)
        ):
            findings.append(
                f"{rel}:{i + 1}: unordered-iter: {line.strip()}"
            )

    # cache-coherence is a file-pair property: the epoch reference may
    # live in either the .hpp or the .cpp.
    combined = text + sibling_text
    if (
        not skipped
        and TOPOLOGY_USE_RE.search(combined)
        and not EPOCH_TIE_RE.search(combined)
    ):
        for i, line in enumerate(lines):
            stripped = line.split("//", 1)[0]
            if CACHE_DECL_RE.search(stripped) and not allowed(
                "cache-coherence", lines, i
            ):
                findings.append(
                    f"{rel}:{i + 1}: cache-coherence: {line.strip()}"
                )
    return findings


def find_tmglint(root: Path) -> Path | None:
    """The compiled token-aware engine, when a build has produced one.

    Honors TMGLINT_BIN; otherwise scans build*/ for the binary.
    """
    env = os.environ.get("TMGLINT_BIN")
    if env:
        p = Path(env)
        return p if p.is_file() and os.access(p, os.X_OK) else None
    for cand in sorted(root.glob("build*/tools/tmglint/tmglint")):
        if cand.is_file() and os.access(cand, os.X_OK):
            return cand
    return None


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path.cwd()
    src = root / "src"
    if not src.is_dir():
        print(f"lint_determinism: no src/ under {root}", file=sys.stderr)
        return 2

    # This file is now a thin entry point: the nine rules live in the
    # compiled tmglint (tools/tmglint/pass_determinism.cpp), which runs
    # them on a real token stream instead of regexes. The regex engine
    # below is kept only as a fallback for environments without a build
    # tree (e.g. a bare checkout running lint before the first compile).
    tmglint = find_tmglint(root)
    if tmglint is not None and os.environ.get("TMGLINT_FORCE_LEGACY") != "1":
        proc = subprocess.run(
            [str(tmglint), "--root", str(root), "--pass", "determinism"],
            check=False,
        )
        return proc.returncode

    findings: list[str] = []
    for path in sorted(src.rglob("*")):
        if path.suffix not in {".hpp", ".cpp"}:
            continue
        if path.parent.name == "sim" and path.stem == "rng":
            continue  # the one sanctioned entropy source
        findings.extend(lint_file(path, root))

    if findings:
        print(f"determinism lint: {len(findings)} finding(s)")
        for f in findings:
            print("  " + f)
        print(
            "\nRoute randomness through tmg::sim::Rng and time through the"
            "\nsimulated clock. If an occurrence is genuinely order-safe,"
            "\nannotate it: // determinism-lint: allow(<rule>) <reason>"
        )
        return 1
    print("determinism lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
