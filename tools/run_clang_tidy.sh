#!/usr/bin/env bash
# clang-tidy driver: runs the repo .clang-tidy profile over first-party
# translation units using the compile database of an existing build
# tree.
#
# Usage: tools/run_clang_tidy.sh [BUILD_DIR] [--fix] [FILTER...]
#
#   BUILD_DIR  build tree with compile_commands.json (default: build/)
#   --fix      apply clang-tidy's suggested fixes in place
#   FILTER     substring filters; when present, only .cpp files whose
#              path contains at least one filter are checked, e.g.
#                tools/run_clang_tidy.sh build src/ctrl
#                tools/run_clang_tidy.sh build --fix message_pipeline
#
# Exit codes: 0 clean, 1 findings, 77 clang-tidy unavailable (ctest
# maps 77 to SKIPPED via SKIP_RETURN_CODE).
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

BUILD_DIR=""
FIX=0
FILTERS=()
for arg in "$@"; do
  case "$arg" in
    --fix) FIX=1 ;;
    *)
      if [ -z "$BUILD_DIR" ] && [ -d "$arg" ] && \
         [ -f "$arg/compile_commands.json" ]; then
        BUILD_DIR="$arg"
      else
        FILTERS+=("$arg")
      fi
      ;;
  esac
done
BUILD_DIR="${BUILD_DIR:-$ROOT/build}"

TIDY="${CLANG_TIDY:-}"
if [ -z "$TIDY" ]; then
  for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
              clang-tidy-15 clang-tidy-14; do
    if command -v "$cand" >/dev/null 2>&1; then
      TIDY="$cand"
      break
    fi
  done
fi
if [ -z "$TIDY" ]; then
  echo "run_clang_tidy: clang-tidy not found; skipping (exit 77)" >&2
  exit 77
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: no compile_commands.json under $BUILD_DIR." >&2
  echo "Configure first: cmake --preset default" >&2
  exit 1
fi

cd "$ROOT"
# tmglint's fixture trees are analyzer test inputs, not buildable TUs.
FILES=$(find src tests examples tools/tmglint -name '*.cpp' \
          -not -path 'tools/tmglint/fixtures/*' | sort)
if [ "${#FILTERS[@]}" -gt 0 ]; then
  SELECTED=""
  for f in $FILES; do
    for pat in "${FILTERS[@]}"; do
      case "$f" in
        *"$pat"*) SELECTED="$SELECTED $f"; break ;;
      esac
    done
  done
  FILES="$SELECTED"
  if [ -z "${FILES// /}" ]; then
    echo "run_clang_tidy: no .cpp files match: ${FILTERS[*]}" >&2
    exit 1
  fi
fi

TIDY_ARGS=(--quiet)
if [ "$FIX" -eq 1 ]; then
  TIDY_ARGS+=(--fix)
fi

if [ "$FIX" -eq 0 ] && command -v run-clang-tidy >/dev/null 2>&1; then
  # The parallel wrapper, when available, is much faster. (Serial path
  # for --fix: parallel fixers race on shared headers.)
  run-clang-tidy -clang-tidy-binary "$TIDY" -p "$BUILD_DIR" -quiet $FILES
  exit $?
fi

status=0
for f in $FILES; do
  "$TIDY" -p "$BUILD_DIR" "${TIDY_ARGS[@]}" "$f" || status=1
done
exit $status
