#!/usr/bin/env bash
# clang-tidy driver: runs the repo .clang-tidy profile over every
# first-party translation unit using the compile database of an existing
# build tree.
#
# Usage: tools/run_clang_tidy.sh [BUILD_DIR]
#
# Exit codes: 0 clean, 1 findings, 77 clang-tidy unavailable (ctest
# maps 77 to SKIPPED via SKIP_RETURN_CODE).
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$ROOT/build}"

TIDY="${CLANG_TIDY:-}"
if [ -z "$TIDY" ]; then
  for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
              clang-tidy-15 clang-tidy-14; do
    if command -v "$cand" >/dev/null 2>&1; then
      TIDY="$cand"
      break
    fi
  done
fi
if [ -z "$TIDY" ]; then
  echo "run_clang_tidy: clang-tidy not found; skipping (exit 77)" >&2
  exit 77
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: no compile_commands.json under $BUILD_DIR." >&2
  echo "Configure first: cmake --preset default" >&2
  exit 1
fi

cd "$ROOT"
FILES=$(find src tests examples -name '*.cpp' | sort)

if command -v run-clang-tidy >/dev/null 2>&1; then
  # The parallel wrapper, when available, is much faster.
  run-clang-tidy -clang-tidy-binary "$TIDY" -p "$BUILD_DIR" -quiet $FILES
  exit $?
fi

status=0
for f in $FILES; do
  "$TIDY" -p "$BUILD_DIR" --quiet "$f" || status=1
done
exit $status
